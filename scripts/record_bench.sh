#!/usr/bin/env bash
# Records BENCH_<binary>.json baselines from the paper-reproduction
# binaries (see EXPERIMENTS.md "Baselines"). Small-n smoke scale by
# default: the goal is an end-to-end health anchor, not a publishable
# number.
set -euo pipefail
cd "$(dirname "$0")/.."

N="${PARGEO_N:-50000}"
BINARIES=("$@")
if [ ${#BINARIES[@]} -eq 0 ]; then
    BINARIES=(table1 fig8_hull2d rangequery dyn_engine geostore shard_sweep incr_derived snapshot_pipeline sched_sweep scale_sweep)
fi

cargo build --release -p pargeo-bench 2>&1 | tail -1

for bin in "${BINARIES[@]}"; do
    # The shard sweep records as BENCH_shard.json (the sharding baseline),
    # the snapshot pipeline as BENCH_snapshot.json, the scheduler sweep as
    # BENCH_sched.json, and the scale sweep as BENCH_scale.json. The scale
    # sweep sizes itself from PARGEO_SCALE (default tops out at 10^6; set
    # PARGEO_SCALE=full for the 10^7 tier), not PARGEO_N.
    out="${bin/shard_sweep/shard}"
    out="${out/snapshot_pipeline/snapshot}"
    out="${out/sched_sweep/sched}"
    out="BENCH_${out/scale_sweep/scale}.json"
    echo "recording ${bin} (PARGEO_N=${N}) -> ${out}"
    PARGEO_N="$N" "./target/release/${bin}" | python3 scripts/bench_to_json.py \
        --binary "$bin" --n "$N" > "$out"
done
