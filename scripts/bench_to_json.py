#!/usr/bin/env python3
"""Parses a bench binary's markdown-table stdout into a baseline JSON.

Used by record_bench.sh; keeps only machine-comparable facts (command,
size, thread count, table rows) so baselines diff cleanly.
"""
import argparse
import json
import os
import sys


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--binary", required=True)
    ap.add_argument("--n", type=int, required=True)
    args = ap.parse_args()

    header: list[str] = []
    rows = []
    title = ""
    anchors = []
    for line in sys.stdin:
        line = line.strip()
        if line.startswith("# "):
            title = line[2:]
            continue
        # Correctness/observability anchor lines ("anchor: ...",
        # "obs anchor: ...") are part of the baseline: they assert the
        # timed runs were also correct runs.
        if "anchor:" in line.split("|")[0]:
            anchors.append(line)
            continue
        if not (line.startswith("|") and line.endswith("|")):
            continue
        cells = [c.strip() for c in line.strip("|").split("|")]
        if all(set(c) <= {"-"} for c in cells):
            continue  # separator row
        if not header:
            header = cells
        else:
            rows.append(dict(zip(header, cells)))

    json.dump(
        {
            "binary": args.binary,
            "title": title,
            "n": args.n,
            "threads": os.cpu_count(),
            "columns": header,
            "rows": rows,
            "anchors": anchors,
        },
        sys.stdout,
        indent=2,
    )
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
