#!/usr/bin/env python3
"""Validates the observability dump of an instrumented bench run.

The `geostore` binary, run with PARGEO_OBS_DUMP=1, prints its observed
store's registry rendered as JSON and as Prometheus text between
`--- obs json ---` / `--- obs prometheus ---` / `--- obs end ---`
markers. This script asserts both renderings parse and contain the
expected metric families — the CI gate that exposition stays well-formed.
"""
import json
import re
import sys

EXPECTED_COUNTERS = {
    "geostore_requests_total",
    "geostore_memo_total",
    "geostore_write_epochs_total",
    "shard_write_ops_total",
    "shard_routed_points_total",
}
EXPECTED_HISTOGRAMS = {"geostore_request_nanos", "span_nanos"}

PROM_SAMPLE = re.compile(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?\d+(\.\d+)?$')


def section(text: str, start: str, end: str) -> str:
    i = text.index(start) + len(start)
    return text[i : text.index(end, i)]


def main() -> None:
    text = open(sys.argv[1]).read()

    blob = json.loads(section(text, "--- obs json ---", "--- obs prometheus ---"))
    counters = {c["name"] for c in blob["counters"]}
    missing = EXPECTED_COUNTERS - counters
    assert not missing, f"JSON missing counter families: {missing}"
    hists = {h["name"] for h in blob["histograms"]}
    missing = EXPECTED_HISTOGRAMS - hists
    assert not missing, f"JSON missing histogram families: {missing}"
    for h in blob["histograms"]:
        assert h["p50"] <= h["p90"] <= h["p99"] <= h["max"], (
            f'{h["name"]}: quantiles out of order'
        )
        assert h["count"] == 0 or h["sum"] >= h["max"], (
            f'{h["name"]}: sum below max'
        )
    served = sum(
        c["value"] for c in blob["counters"] if c["name"] == "geostore_requests_total"
    )
    assert served > 0, "instrumented run served no requests"

    prom = section(text, "--- obs prometheus ---", "--- obs end ---")
    typed = set(re.findall(r"^# TYPE (\S+) (?:counter|gauge|histogram)$", prom, re.M))
    missing = (EXPECTED_COUNTERS | EXPECTED_HISTOGRAMS) - typed
    assert not missing, f"Prometheus missing # TYPE lines: {missing}"
    bad = [
        line
        for line in prom.splitlines()
        if line and not line.startswith("#") and not PROM_SAMPLE.match(line)
    ]
    assert not bad, f"malformed Prometheus sample lines: {bad[:5]}"

    print(
        f"obs dump ok: {len(counters)} counter / {len(hists)} histogram "
        f"families, {served} requests served"
    )


if __name__ == "__main__":
    main()
