//! The GeoStore façade — a serving-style scenario: one store owns the
//! point set plus a batch-dynamic index and answers *mixed* traffic
//! (inserts, deletes, k-NN, range, and whole-dataset analytics like hull /
//! EMST / Delaunay) through one typed Request/Response surface. Shows the
//! epoch planner coalescing writes, the memo cache absorbing repeated
//! analytics between writes, and typed errors on degenerate input.
//!
//! ```sh
//! cargo run --release --example geostore
//! ```

use pargeo::datagen::uniform_cube;
use pargeo::prelude::*;
use std::time::Instant;

fn main() {
    let n = std::env::var("PARGEO_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000usize);
    let pts = uniform_cube::<2>(n, 21);
    println!("== GeoStore: mixed serving over {n} points ==\n");

    for backend in Backend::all() {
        let mut store: GeoStore<2> = GeoStore::builder().backend(backend).build();
        let t = Instant::now();
        store.insert(&pts);
        let load = t.elapsed();

        // A mixed batch through the epoch planner: the two deletes
        // coalesce into one index batch, the reads fan out data-parallel.
        let queries: Vec<Point2> = pts.iter().step_by(101).copied().collect();
        let t = Instant::now();
        let responses = store.execute(&[
            Request::Delete(pts[..n / 10].to_vec()),
            Request::Delete(pts[n / 10..n / 5].to_vec()),
            Request::Knn {
                queries: queries.clone(),
                k: 8,
            },
            Request::Hull,
            Request::Seb,
            Request::ClosestPair,
        ]);
        let mixed = t.elapsed();
        assert!(responses.iter().all(|r| r.is_ok()));

        // Analytics between writes are cache hits.
        let t = Instant::now();
        let h1 = store.hull().unwrap();
        let h2 = store.hull().unwrap();
        let cached = t.elapsed();
        assert_eq!(h1, h2);

        let stats = store.stats();
        println!(
            "{:<8} load {:>8.1?}  mixed batch {:>8.1?}  2x cached hull {:>8.1?}  \
             live {}  epochs {}  cache {}/{} hit/miss",
            backend.label(),
            load,
            mixed,
            cached,
            store.len(),
            stats.write_epoch,
            stats.cache.hits,
            stats.cache.misses,
        );
    }

    // Sharded execution: the same backend behind a morton-prefix router.
    // Writes apply in parallel across shards, reads fan out only to the
    // shards whose region can contribute — and the answers (here: the
    // k-NN rows of the same queries) are bit-identical to the unsharded
    // store's at every shard count.
    println!("\n== Sharded spatial core (Backend::Zd) ==\n");
    let queries: Vec<Point2> = pts.iter().step_by(101).copied().collect();
    let mut unsharded: GeoStore<2> = GeoStore::builder().backend(Backend::Zd).build();
    unsharded.insert(&pts);
    let want = unsharded.knn(&queries, 8).unwrap();
    for shards in [1usize, 4, 16] {
        let mut store: GeoStore<2> = GeoStore::builder()
            .backend(Backend::Zd)
            .shards(shards)
            .build();
        let t = Instant::now();
        store.insert(&pts);
        let load = t.elapsed();
        let t = Instant::now();
        let got = store.knn(&queries, 8).unwrap();
        let knn = t.elapsed();
        assert_eq!(got, want, "sharded answers diverged");
        println!(
            "shards {:>2}  load {:>8.1?}  knn batch {:>8.1?}  (answers identical)",
            store.shard_count(),
            load,
            knn,
        );
    }

    // Degenerate input is a typed error, never a panic.
    let mut empty: GeoStore<2> = GeoStore::builder().build();
    println!("\nhull of empty store  -> {}", empty.hull().unwrap_err());
    println!(
        "knn with k too large -> {}",
        empty.knn(&pts[..1], 3).unwrap_err()
    );
    let line: Vec<Point2> = (0..10).map(|i| Point2::new([i as f64, i as f64])).collect();
    empty.insert(&line);
    println!("hull of collinear set-> {}", empty.hull().unwrap_err());
}
