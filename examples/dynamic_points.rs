//! Streaming spatial index — a robotics/telemetry-style scenario for the
//! batch-dynamic trees of §5: points arrive and expire in batches while
//! k-NN queries run between updates. Compares the BDL-tree against the B1
//! (rebuild) and B2 (no-rebalance) baselines and the Zd-tree.
//!
//! ```sh
//! cargo run --release --example dynamic_points
//! ```

use pargeo::datagen::uniform_cube;
use pargeo::prelude::*;
use std::time::Instant;

fn main() {
    let n = std::env::var("PARGEO_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000usize);
    let batches = 10;
    let batch = n / batches;
    let pts = uniform_cube::<3>(n, 13);
    let queries: Vec<Point3> = pts.iter().step_by(50).copied().collect();
    println!(
        "== Streaming updates: {batches} batches of {batch} points, {} queries ==\n",
        queries.len()
    );

    // BDL-tree: the paper's contribution.
    let t = Instant::now();
    let mut bdl = BdlTree::<3>::new();
    for chunk in pts.chunks(batch) {
        bdl.insert(chunk);
    }
    let bdl_ins = t.elapsed();
    let t = Instant::now();
    let _ = bdl.knn_batch(&queries, 5);
    let bdl_knn = t.elapsed();
    let t = Instant::now();
    for chunk in pts.chunks(batch).take(batches / 2) {
        bdl.delete(chunk);
    }
    let bdl_del = t.elapsed();
    println!(
        "BDL  insert {:>9.2?}   knn {:>9.2?}   delete {:>9.2?}   live {}",
        bdl_ins,
        bdl_knn,
        bdl_del,
        bdl.len()
    );

    // B1: rebuild on every batch.
    let t = Instant::now();
    let mut b1 = B1Tree::<3>::new(SplitRule::ObjectMedian);
    for chunk in pts.chunks(batch) {
        b1.insert(chunk);
    }
    let b1_ins = t.elapsed();
    let t = Instant::now();
    let _ = b1.knn_batch(&queries, 5);
    let b1_knn = t.elapsed();
    let t = Instant::now();
    for chunk in pts.chunks(batch).take(batches / 2) {
        b1.delete(chunk);
    }
    let b1_del = t.elapsed();
    println!(
        "B1   insert {:>9.2?}   knn {:>9.2?}   delete {:>9.2?}   live {}",
        b1_ins,
        b1_knn,
        b1_del,
        b1.len()
    );

    // B2: fixed structure, tombstones.
    let t = Instant::now();
    let mut b2 = B2Tree::<3>::new(SplitRule::ObjectMedian);
    for chunk in pts.chunks(batch) {
        b2.insert(chunk);
    }
    let b2_ins = t.elapsed();
    let t = Instant::now();
    let _ = b2.knn_batch(&queries, 5);
    let b2_knn = t.elapsed();
    let t = Instant::now();
    for chunk in pts.chunks(batch).take(batches / 2) {
        b2.delete(chunk);
    }
    let b2_del = t.elapsed();
    println!(
        "B2   insert {:>9.2?}   knn {:>9.2?}   delete {:>9.2?}   live {}",
        b2_ins,
        b2_knn,
        b2_del,
        b2.len()
    );

    // Zd-tree comparator (§6.3).
    let t = Instant::now();
    let mut zd = ZdTree::from_points(&pts[..batch]);
    for chunk in pts[batch..].chunks(batch) {
        zd.insert(chunk);
    }
    let zd_ins = t.elapsed();
    let t = Instant::now();
    let _ = zd.knn_batch(&queries, 5);
    let zd_knn = t.elapsed();
    let t = Instant::now();
    for chunk in pts.chunks(batch).take(batches / 2) {
        zd.delete(chunk);
    }
    let zd_del = t.elapsed();
    println!(
        "Zd   insert {:>9.2?}   knn {:>9.2?}   delete {:>9.2?}   live {}",
        zd_ins,
        zd_knn,
        zd_del,
        zd.len()
    );

    // Cross-check: all structures agree on a query's nearest neighbor
    // distance after the same update sequence.
    let q = &queries[0];
    let d_bdl = bdl.knn(q, 1)[0].dist_sq;
    let d_b1 = b1.knn(q, 1)[0].dist_sq;
    let d_b2 = b2.knn(q, 1)[0].dist_sq;
    let d_zd = zd.knn(q, 1)[0].dist_sq;
    assert!(
        (d_bdl - d_b1).abs() < 1e-9 && (d_b1 - d_b2).abs() < 1e-9 && (d_b2 - d_zd).abs() < 1e-9
    );
    println!("\nall four structures agree on nearest-neighbor distances ✓");
}
