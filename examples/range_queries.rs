//! Range, segment, and rectangle queries: the `rangequery` subsystem on a
//! batched workload, with the kd-tree as a swappable backend.
//!
//! ```sh
//! cargo run --release --example range_queries
//! ```

use pargeo::prelude::*;
use std::time::Instant;

fn main() {
    let n = std::env::var("PARGEO_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000usize);
    let q = (n / 10).max(1);
    println!("== ParGeo-rs range queries (n = {n}, batch = {q} queries) ==\n");

    // Workload: points, intervals, and rectangles from the seeded datagen
    // families, plus a batch of query boxes.
    let pts = pargeo::datagen::uniform_cube::<2>(n, 42);
    let intervals = pargeo::datagen::uniform_intervals(n, 43, 0.01);
    let rects = pargeo::datagen::uniform_rects::<2>(n, 44, 0.01);
    let query_boxes = pargeo::datagen::uniform_rects::<2>(q, 45, 0.02);
    let count_queries: Vec<Count<Bbox<2>>> = query_boxes.iter().map(|&b| Count(b)).collect();

    // 2D range tree: build once, answer the whole batch data-parallel.
    let t = Instant::now();
    let range_tree = RangeTree2d::build(&pts);
    println!(
        "range tree build                     {:>10.2?}",
        t.elapsed()
    );
    let t = Instant::now();
    let rt_counts = range_tree.answer_batch(&count_queries);
    let total: usize = rt_counts.iter().sum();
    println!(
        "range count batch: {:>9} hits     {:>10.2?}",
        total,
        t.elapsed()
    );

    // The kd-tree answers the same queries through the same trait.
    let t = Instant::now();
    let kd_tree = KdTree::build(&pts, SplitRule::ObjectMedian);
    println!(
        "kd-tree build (comparison backend)   {:>10.2?}",
        t.elapsed()
    );
    let t = Instant::now();
    let kd_counts = kd_tree.answer_batch(&count_queries);
    assert_eq!(rt_counts, kd_counts, "backends disagree");
    println!(
        "kd-tree count batch (same answers)   {:>10.2?}",
        t.elapsed()
    );

    // Reporting: ids come back sorted from both backends.
    let report_queries: Vec<Report<Bbox<2>>> =
        query_boxes.iter().take(100).map(|&b| Report(b)).collect();
    let reports = range_tree.answer_batch(&report_queries);
    let reported: usize = reports.iter().map(Vec::len).sum();
    println!("range report batch (100 queries): {reported} ids, sorted");

    // Interval stabbing over the 1D segment set.
    let t = Instant::now();
    let interval_tree = IntervalTree::build(&intervals);
    println!(
        "interval tree build                  {:>10.2?}",
        t.elapsed()
    );
    let side = pargeo::datagen::cube_side(n);
    let stabs: Vec<Count<f64>> = (0..q).map(|i| Count(side * i as f64 / q as f64)).collect();
    let t = Instant::now();
    let stab_counts = interval_tree.answer_batch(&stabs);
    println!(
        "stabbing count batch: {:>8} hits  {:>10.2?}",
        stab_counts.iter().sum::<usize>(),
        t.elapsed()
    );
    let crossing = interval_tree.stab_report(side / 2.0);
    println!("intervals crossing the midline: {}", crossing.len());

    // Rectangle-intersection counting, composed from the two structures.
    let t = Instant::now();
    let rect_set = RectangleSet::build(&rects);
    println!(
        "rectangle set build                  {:>10.2?}",
        t.elapsed()
    );
    let t = Instant::now();
    let rect_counts = rect_set.answer_batch(&count_queries);
    println!(
        "rect-intersection count batch: {:>6} {:>10.2?}",
        rect_counts.iter().sum::<usize>(),
        t.elapsed()
    );

    println!("\nAll rangequery structures exercised; see crates/rangequery.");
}
