//! Spatial-network construction on clustered data — the workload the
//! paper's introduction motivates (GIS / clustering pipelines): generate a
//! clustered point set, build the spatial graphs ParGeo offers, and compare
//! their sizes and weights.
//!
//! ```sh
//! cargo run --release --example spatial_graphs
//! ```

use pargeo::datagen::{seed_spreader, SeedSpreaderParams};
use pargeo::prelude::*;
use std::time::Instant;

fn main() {
    let n = std::env::var("PARGEO_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000usize);
    println!("== Spatial graphs on clustered (seed-spreader) data, n = {n} ==\n");
    let pts = seed_spreader::<2>(n, 7, SeedSpreaderParams::default());

    let t = Instant::now();
    let del = pargeo::delaunay::delaunay(&pts);
    let del_edges = delaunay_edges(&del);
    println!(
        "Delaunay graph     {:>8} edges   {:>10.2?}",
        del_edges.len(),
        t.elapsed()
    );

    let t = Instant::now();
    let gabriel = gabriel_graph(&pts, &del);
    println!(
        "Gabriel graph      {:>8} edges   {:>10.2?}",
        gabriel.len(),
        t.elapsed()
    );

    let t = Instant::now();
    let b15 = beta_skeleton(&pts, 1.5);
    println!(
        "1.5-skeleton       {:>8} edges   {:>10.2?}",
        b15.len(),
        t.elapsed()
    );

    let t = Instant::now();
    let knn4 = knn_graph(&pts, 4);
    println!(
        "4-NN graph         {:>8} edges   {:>10.2?}",
        knn4.len(),
        t.elapsed()
    );

    let t = Instant::now();
    let mst = emst(&pts);
    let w: f64 = mst.iter().map(|e| e.weight).sum();
    println!(
        "EMST               {:>8} edges   {:>10.2?}   weight {w:.1}",
        mst.len(),
        t.elapsed()
    );

    let t = Instant::now();
    let sp = spanner(&pts, 2.0);
    println!(
        "2-spanner          {:>8} edges   {:>10.2?}",
        sp.len(),
        t.elapsed()
    );

    // Sanity relationships the theory promises.
    assert!(gabriel.len() <= del_edges.len(), "Gabriel ⊆ Delaunay");
    assert!(b15.len() <= gabriel.len(), "β=1.5 ⊆ Gabriel");
    assert_eq!(mst.len(), n - 1, "EMST spans");
    println!("\ncontainment checks passed: EMST ⊆ … ⊆ Delaunay hierarchy holds");

    // The EMST weight is a lower bound on any spanning structure weight;
    // report the spanner/EMST weight ratio as a quality indicator.
    let sp_weight: f64 = sp.iter().map(|e| e.weight).sum();
    println!(
        "spanner/EMST weight ratio: {:.2} ({} vs {} edges)",
        sp_weight / w,
        sp.len(),
        mst.len()
    );
}
