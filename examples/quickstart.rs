//! Quickstart: one pass through the main ParGeo-rs modules.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pargeo::prelude::*;
use std::time::Instant;

fn main() {
    let n = std::env::var("PARGEO_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000usize);
    println!("== ParGeo-rs quickstart (n = {n}) ==\n");

    // Module (4): generate a uniform point set (the paper's U family).
    let t = Instant::now();
    let pts2 = pargeo::datagen::uniform_cube::<2>(n, 42);
    let pts3 = pargeo::datagen::uniform_cube::<3>(n, 42);
    println!("datagen: 2D + 3D uniform cubes      {:>10.2?}", t.elapsed());

    // Module (1): kd-tree, k-NN, range search.
    let t = Instant::now();
    let tree = KdTree::build(&pts2, SplitRule::ObjectMedian);
    println!("kd-tree build (2d)                  {:>10.2?}", t.elapsed());
    let t = Instant::now();
    let neighbors = tree.knn_batch(&pts2[..10_000.min(n)], 5);
    println!(
        "batch 5-NN over {:>7} queries      {:>10.2?}",
        neighbors.len(),
        t.elapsed()
    );
    let center = Bbox::from_points(&pts2).center();
    let in_range = tree.range_ball(&center, pargeo::datagen::cube_side(n) * 0.05);
    println!("range search hits near the center:  {:>10}", in_range.len());

    // Module (2): convex hull (reservation-based parallel), SEB, closest pair.
    let t = Instant::now();
    let hull2 = hull2d_divide_conquer(&pts2);
    println!(
        "2D hull (divide & conquer): {:>5} vertices in {:.2?}",
        hull2.len(),
        t.elapsed()
    );
    let t = Instant::now();
    let hull3 = hull3d_quickhull_parallel(&pts3);
    println!(
        "3D hull (reservation quickhull): {:>5} vertices / {:>5} facets in {:.2?}",
        hull3.num_vertices(),
        hull3.num_facets(),
        t.elapsed()
    );
    let t = Instant::now();
    let ball = seb_sampling(&pts3);
    println!(
        "smallest enclosing ball: r = {:.3} in {:.2?}",
        ball.radius,
        t.elapsed()
    );
    let t = Instant::now();
    let cp = closest_pair(&pts2);
    println!(
        "closest pair: ({}, {}) at distance {:.4} in {:.2?}",
        cp.a,
        cp.b,
        cp.dist,
        t.elapsed()
    );

    // Module (3): spatial graphs.
    let m = 20_000.min(n);
    let sub = &pts2[..m];
    let t = Instant::now();
    let knn_edges = knn_graph(sub, 4);
    println!(
        "4-NN graph over {m} points: {} edges in {:.2?}",
        knn_edges.len(),
        t.elapsed()
    );
    let t = Instant::now();
    let mst = emst(sub);
    let weight: f64 = mst.iter().map(|e| e.weight).sum();
    println!(
        "EMST: {} edges, total weight {:.1}, in {:.2?}",
        mst.len(),
        weight,
        t.elapsed()
    );

    // Batch-dynamic trees (§5).
    let t = Instant::now();
    let mut bdl = BdlTree::from_points(&pts3[..m]);
    bdl.insert(&pts3[m..(2 * m).min(n)]);
    let removed = bdl.delete(&pts3[..m / 2]);
    println!(
        "BDL-tree: {} live after insert+delete ({} removed) in {:.2?}",
        bdl.len(),
        removed,
        t.elapsed()
    );
    let nn = bdl.knn(&pts3[m / 2], 3);
    println!(
        "BDL 3-NN of a survivor: {:?}",
        nn.iter().map(|x| x.id).collect::<Vec<_>>()
    );

    println!("\nAll modules exercised. See EXPERIMENTS.md for the paper reproduction.");
}
