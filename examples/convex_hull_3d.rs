//! 3D convex hull of a synthetic "scanned statue" — the graphics-style
//! workload of Figure 9 (Thai statue / Dragon stand-in). Compares every
//! hull implementation and verifies they agree.
//!
//! ```sh
//! cargo run --release --example convex_hull_3d
//! ```

use pargeo::datagen::statue_surface;
use pargeo::hull::hull3d::validate::check_hull3d;
use pargeo::prelude::*;
use std::time::Instant;

fn main() {
    let n = std::env::var("PARGEO_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300_000usize);
    println!("== 3D convex hull of a synthetic statue scan (n = {n}) ==\n");
    let pts = statue_surface(n, 2022);

    let mut reference: Option<Vec<u32>> = None;
    let algos: Vec<(&str, fn(&[Point3]) -> Hull3d)> = vec![
        ("SeqQuickhull (CGAL/Qhull stand-in)", hull3d_seq),
        ("RandInc  (reservation)", hull3d_randinc),
        ("QuickHull (reservation)", hull3d_quickhull_parallel),
        ("DivideConquer", hull3d_divide_conquer),
        ("Pseudo (culling + quickhull)", hull3d_pseudo),
    ];
    for (name, f) in algos {
        let t = Instant::now();
        let h = f(&pts);
        let dt = t.elapsed();
        check_hull3d(&pts, &h).expect("valid hull");
        println!(
            "{name:<38} {:>9.2?}   {:>6} vertices   {:>6} facets",
            dt,
            h.num_vertices(),
            h.num_facets()
        );
        match &reference {
            None => reference = Some(h.vertices),
            Some(r) => assert_eq!(r, &h.vertices, "{name} disagrees"),
        }
    }
    println!("\nall five implementations produced the identical hull ✓");

    // The pseudohull's selling point: how much of the input it prunes
    // before the exact hull runs. Report the hull-output ratio that
    // Figure 9's analysis hinges on.
    let hull_size = reference.unwrap().len();
    println!(
        "hull output ratio: {hull_size}/{n} = {:.2}% (surface scans keep large hulls)",
        100.0 * hull_size as f64 / n as f64
    );
}
