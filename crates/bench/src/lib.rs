//! # pargeo-bench — the paper-reproduction harness
//!
//! One binary per table/figure of the paper's evaluation (§6):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — runtimes and self-relative speedups across all modules |
//! | `fig8_hull2d` | Figure 8 — 2D convex hull across datasets and methods |
//! | `fig9_hull3d` | Figure 9 — 3D convex hull across datasets and methods |
//! | `fig10_seb` | Figure 10 — smallest enclosing ball across datasets and methods |
//! | `fig11_bdltree` | Figure 11 — BDL vs B1/B2 throughput over thread counts |
//! | `fig12_reservation` | Figure 12 — reservation overhead counters (Appendix B) |
//! | `fig14_knn_k` | Figure 14 — k-NN throughput vs k after incremental builds |
//! | `zdtree_compare` | §6.3 — BDL-tree vs Zd-tree |
//! | `rangequery` | range/segment/rectangle query engine (Sun & Blelloch family): build + batch-query T1/Tp, kd-tree backend, brute-force baseline |
//! | `dyn_engine` | unified batch-dynamic engine: `SpatialIndex` backends × mixed-workload presets × T1/Tp, oracle-anchored |
//! | `geostore` | GeoStore service façade: backends × store presets (mixed serving + analytics) × T1/Tp, oracle-anchored |
//! | `shard_sweep` | morton-routed sharded execution: backends × shard counts {1, 4, 16} × store presets × T1/Tp, cross-shard digest anchors |
//! | `incr_derived` | delta maintenance of memoized hull/Delaunay: insert-batch sweep across the incremental-vs-rebuild crossover + delete-churn fallback, digest-anchored across maintenance modes |
//! | `sched_sweep` | the work-stealing pool itself: fork-join microbench + skewed-shard workload at 1/2/4 workers, task/steal/park counters, digest-anchored across worker counts |
//! | `scale_sweep` | large-n trajectory of the flat-arena/SoA layouts: build/query throughput + peak RSS per backend at n ∈ {10⁵, 10⁶, 10⁷} (`PARGEO_SCALE=full`), digest-anchored against the pre-arena layouts |
//!
//! Sizes scale with `PARGEO_N` (default laptop-scale; the paper used
//! 10M–100M on 36 cores). `PARGEO_THREADS` caps the sweep. Shapes — which
//! method wins where, crossovers — are the reproduction target, not
//! absolute times; see EXPERIMENTS.md.

pub mod scale;

use std::time::Instant;

/// Input size from `PARGEO_N` (with a per-binary default).
pub fn env_n(default: usize) -> usize {
    std::env::var("PARGEO_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Thread counts to sweep: 1, 2, 4, … up to the machine (or
/// `PARGEO_THREADS`).
pub fn thread_sweep() -> Vec<usize> {
    let max = std::env::var("PARGEO_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(2)
        });
    let mut v = vec![1];
    let mut t = 2;
    while t < max {
        v.push(t);
        t *= 2;
    }
    if *v.last().unwrap() != max {
        v.push(max);
    }
    v
}

/// Largest thread count of the sweep.
pub fn max_threads() -> usize {
    *thread_sweep().last().unwrap()
}

/// Wall-clock seconds of one invocation.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Best of `reps` invocations (seconds).
pub fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    // (callers warm up separately when measuring cross-pool speedups)
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let (_, s) = time(&mut f);
        best = best.min(s);
    }
    best
}

/// `T1` and `Tp` for a closure run under 1-thread and max-thread pools,
/// with the paper's speedup column. One untimed warmup run (page faults,
/// lazy allocation) precedes the measurements; each measurement is the
/// best of two.
pub fn t1_tp<R: Send>(f: impl Fn() -> R + Sync + Send) -> (f64, f64, f64) {
    let p = max_threads();
    let _ = f(); // warmup on the ambient pool
    let t1 = pargeo::parlay::with_threads(1, || time_best(2, &f));
    let tp = pargeo::parlay::with_threads(p, || time_best(2, &f));
    (t1, tp, t1 / tp)
}

/// Milliseconds, formatted like the paper's log-scale plots.
pub fn ms(secs: f64) -> String {
    format!("{:.1}", secs * 1e3)
}

/// Prints a markdown-ish table header.
pub fn header(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
    println!(
        "|{}|",
        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_starts_at_one_and_is_increasing() {
        let s = thread_sweep();
        assert_eq!(s[0], 1);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn timing_is_positive() {
        let (_, s) = time(|| (0..100_000u64).sum::<u64>());
        assert!(s >= 0.0);
        assert!(time_best(2, || 1 + 1) >= 0.0);
    }
}
