//! Figure 10 reproduction: smallest enclosing ball running times (ms)
//! across the paper's twelve dataset panels and six methods. `CGAL` is
//! stood in for by our sequential Welzl with move-to-front.

use pargeo::datagen;
use pargeo::prelude::*;
use pargeo::seb::seb_welzl_parallel_mtf;
use pargeo_bench::{env_n, header, max_threads, ms, time_best};

fn bench2(name: &str, pts: &[Point2], p: usize) {
    let cgal = time_best(2, || seb_welzl_seq(pts));
    let (w, wm, wmp, scan, samp) = pargeo::parlay::with_threads(p, || {
        (
            time_best(2, || seb_welzl_parallel(pts)),
            time_best(2, || seb_welzl_parallel_mtf(pts)),
            time_best(2, || seb_welzl_parallel_mtf_pivot(pts)),
            time_best(2, || seb_orthant_scan(pts)),
            time_best(2, || seb_sampling(pts)),
        )
    });
    println!(
        "| {name} | {} | {} | {} | {} | {} | {} |",
        ms(cgal),
        ms(w),
        ms(wm),
        ms(wmp),
        ms(scan),
        ms(samp)
    );
}

fn bench3(name: &str, pts: &[Point3], p: usize) {
    let cgal = time_best(2, || seb_welzl_seq(pts));
    let (w, wm, wmp, scan, samp) = pargeo::parlay::with_threads(p, || {
        (
            time_best(2, || seb_welzl_parallel(pts)),
            time_best(2, || seb_welzl_parallel_mtf(pts)),
            time_best(2, || seb_welzl_parallel_mtf_pivot(pts)),
            time_best(2, || seb_orthant_scan(pts)),
            time_best(2, || seb_sampling(pts)),
        )
    });
    println!(
        "| {name} | {} | {} | {} | {} | {} | {} |",
        ms(cgal),
        ms(w),
        ms(wm),
        ms(wmp),
        ms(scan),
        ms(samp)
    );
}

fn main() {
    let n = env_n(500_000);
    let big = 5 * n;
    let p = max_threads();
    println!("# Figure 10 — smallest enclosing ball, times in ms on {p} threads\n");
    header(&[
        "dataset",
        "WelzlSeq (CGAL)",
        "Welzl",
        "WelzlMtf",
        "WelzlMtfPivot",
        "Scan",
        "Sampling",
    ]);
    bench2(&format!("2D-IS-{n}"), &datagen::in_sphere::<2>(n, 1), p);
    bench2(&format!("2D-OS-{n}"), &datagen::on_sphere::<2>(n, 2), p);
    bench3(&format!("3D-IS-{n}"), &datagen::in_sphere::<3>(n, 3), p);
    bench3(&format!("3D-OS-{n}"), &datagen::on_sphere::<3>(n, 4), p);
    bench2(&format!("2D-U-{n}"), &datagen::uniform_cube::<2>(n, 5), p);
    bench2(&format!("2D-OC-{n}"), &datagen::on_cube::<2>(n, 6), p);
    bench3(&format!("3D-U-{n}"), &datagen::uniform_cube::<3>(n, 7), p);
    bench3(&format!("3D-OC-{n}"), &datagen::on_cube::<3>(n, 8), p);
    bench3(
        &format!("3D-Thai-{}", n / 2),
        &datagen::statue_surface(n / 2, 9),
        p,
    );
    bench3(
        &format!("3D-Dragon-{}", n * 36 / 100),
        &datagen::statue_surface(n * 36 / 100, 10),
        p,
    );
    bench2(
        &format!("2D-OS-{big}"),
        &datagen::on_sphere::<2>(big, 11),
        p,
    );
    bench3(
        &format!("3D-OS-{big}"),
        &datagen::on_sphere::<3>(big, 12),
        p,
    );
}
