//! Mixed-workload sweep of the unified batch-dynamic engine: every
//! `SpatialIndex` backend (dyn-kd, BDL, Zd) × every named workload preset
//! (uniform mix, insert-heavy IS, sliding window, hotspot reads,
//! seed-spreader churn) × T1/Tp thread counts. Answer digests are asserted
//! equal across backends at full scale, and against the brute-force oracle
//! at 1/10 scale, so every timed run is also a correctness run.
//! Scale with `PARGEO_N` (initial load is `n/2`).

use pargeo::prelude::*;
use pargeo_bench::{env_n, header, max_threads, t1_tp};

fn make_backend(which: usize) -> Box<dyn SpatialIndex<2> + Send + Sync> {
    match which {
        0 => Box::new(DynKdTree::<2>::new()),
        1 => Box::new(BdlTree::<2>::new()),
        _ => Box::new(ZdTree::<2>::new()),
    }
}

const BACKENDS: [&str; 3] = ["dyn-kd", "bdl", "zd"];

fn main() {
    let n = env_n(50_000);
    let p = max_threads();
    println!(
        "# Batch-dynamic engine — mixed workloads, initial = {}, Tp at {p} threads\n",
        n / 2
    );

    // Correctness anchor at 1/10 scale: every backend vs the Vec oracle,
    // bare and behind the morton-routed 4-shard executor (the full shard
    // sweep lives in the `shard_sweep` binary).
    let small = WorkloadSpec::presets((n / 10).max(500));
    for spec in &small {
        let w: Workload<2> = spec.generate();
        let mut oracle = VecIndex::<2>::new();
        let want = run_workload(&mut oracle, &w);
        for which in 0..BACKENDS.len() {
            let mut b = make_backend(which);
            let got = run_workload(b.as_mut(), &w);
            assert_eq!(
                got.digest(),
                want.digest(),
                "{} diverged from oracle on {}",
                got.backend,
                spec.name
            );
            let mut sharded = ShardedIndex::<2>::new(4, |_| make_backend(which));
            let got = run_workload(&mut sharded, &w);
            assert_eq!(
                got.digest(),
                want.digest(),
                "{} diverged from oracle on {}",
                got.backend,
                spec.name
            );
        }
    }
    println!(
        "anchor: {} small-scale workloads match the brute-force oracle on all backends (S in {{1, 4}})\n",
        small.len()
    );

    header(&[
        "Scenario",
        "Backend",
        "T1 (s)",
        "Tp (s)",
        "Speedup",
        "kNN p50 (ms)",
        "kNN p99 (ms)",
        "Range p99 (ms)",
    ]);
    for spec in WorkloadSpec::presets(n) {
        let w: Workload<2> = spec.generate();
        // Full-scale digests must agree across backends (checked once,
        // outside the timed region); the same untimed runs supply the
        // per-batch latency percentiles.
        let reports: Vec<WorkloadReport> = (0..BACKENDS.len())
            .map(|which| {
                let mut b = make_backend(which);
                run_workload(b.as_mut(), &w)
            })
            .collect();
        assert!(
            reports.windows(2).all(|r| r[0].digest() == r[1].digest()),
            "backends disagree on workload {}",
            spec.name
        );
        for ((which, name), full) in BACKENDS.iter().enumerate().zip(&reports) {
            let (t1, tp, speedup) = t1_tp(|| {
                let mut b = make_backend(which);
                run_workload(b.as_mut(), &w).final_live
            });
            println!(
                "| {} | {name} | {t1:.3} | {tp:.3} | {speedup:.2}x | {:.3} | {:.3} | {:.3} |",
                spec.name,
                full.knn_lat.p50_ms(),
                full.knn_lat.p99_ms(),
                full.range_lat.p99_ms(),
            );
        }
    }
}
