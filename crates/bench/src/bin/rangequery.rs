//! Rangequery figure (after Sun & Blelloch, Figures 7–9 in spirit):
//! build-batch and query-batch runtimes with self-relative speedups for the
//! range tree, interval tree, and rectangle counter, with the kd-tree as a
//! swappable `BatchQuery` backend and O(n·q) brute force as the baseline.
//! Scale with `PARGEO_N`; the query batch is `n / 10`.

use pargeo::prelude::*;
use pargeo_bench::{env_n, header, max_threads, t1_tp};
use rayon::prelude::*;

fn row(name: &str, f: impl Fn() + Sync + Send) {
    let (t1, tp, speedup) = t1_tp(f);
    println!("| {name} | {t1:.3} | {tp:.3} | {speedup:.2}x |");
}

fn main() {
    let n = env_n(100_000);
    let q = (n / 10).max(1);
    let p = max_threads();
    println!("# Range/segment/rectangle queries — n = {n}, batch = {q}, Tp at {p} threads\n");

    let pts = pargeo::datagen::uniform_cube::<2>(n, 1);
    let intervals = pargeo::datagen::uniform_intervals(n, 2, 0.01);
    let rects = pargeo::datagen::uniform_rects::<2>(n, 3, 0.01);
    let boxes = pargeo::datagen::uniform_rects::<2>(q, 4, 0.02);
    let box_counts: Vec<Count<Bbox<2>>> = boxes.iter().map(|&b| Count(b)).collect();
    let box_reports: Vec<Report<Bbox<2>>> = boxes.iter().map(|&b| Report(b)).collect();
    let side = pargeo::datagen::cube_side(n);
    let stabs: Vec<Count<f64>> = (0..q).map(|i| Count(side * i as f64 / q as f64)).collect();
    let stab_reports: Vec<Report<f64>> = stabs.iter().map(|c| Report(c.0)).collect();
    let segs: Vec<Count<(f64, f64)>> = pargeo::datagen::uniform_intervals(q, 5, 0.02)
        .into_iter()
        .map(Count)
        .collect();

    // Literal "Tp": on a 1-thread recorder `format!("T{p} (s)")` would
    // collide with the T1 column and the JSON baseline would lose it.
    header(&["Operation", "T1 (s)", "Tp (s)", "Speedup"]);

    // Build batch.
    row("range-tree build", || {
        let _ = RangeTree2d::build(&pts);
    });
    row("interval-tree build", || {
        let _ = IntervalTree::build(&intervals);
    });
    row("rectangle-set build", || {
        let _ = RectangleSet::build(&rects);
    });
    row("kd-tree build (backend)", || {
        let _ = KdTree::build(&pts, SplitRule::ObjectMedian);
    });

    // Query batch, data-parallel over queries through BatchQuery.
    let range_tree = RangeTree2d::build(&pts);
    let kd_tree = KdTree::build(&pts, SplitRule::ObjectMedian);
    let interval_tree = IntervalTree::build(&intervals);
    let rect_set = RectangleSet::build(&rects);

    row("range count batch (range tree)", || {
        let _ = range_tree.answer_batch(&box_counts);
    });
    row("range count batch (kd-tree)", || {
        let _ = kd_tree.answer_batch(&box_counts);
    });
    row("range report batch (range tree)", || {
        let _ = range_tree.answer_batch(&box_reports);
    });
    row("range report batch (kd-tree)", || {
        let _ = kd_tree.answer_batch(&box_reports);
    });
    row("stab count batch (interval tree)", || {
        let _ = interval_tree.answer_batch(&stabs);
    });
    row("stab report batch (interval tree)", || {
        let _ = interval_tree.answer_batch(&stab_reports);
    });
    row("segment intersect count batch", || {
        let _ = interval_tree.answer_batch(&segs);
    });
    row("rect intersect count batch", || {
        let _ = rect_set.answer_batch(&box_counts);
    });

    // Brute-force baseline on a 1/20 query subsample (O(n·q) full scale
    // would dwarf everything else); still data-parallel over queries.
    let sub = &box_counts[..(q / 20).max(1)];
    row("brute count batch (q/20 subsample)", || {
        let _: Vec<usize> = sub
            .par_iter()
            .map(|c| pts.iter().filter(|p| c.0.contains(p)).count())
            .collect();
    });

    // Correctness anchor (commentary; the JSON recorder keeps table rows).
    let want: Vec<usize> = sub
        .iter()
        .map(|c| pts.iter().filter(|p| c.0.contains(p)).count())
        .collect();
    let got = range_tree.answer_batch(sub);
    let kd_got = kd_tree.answer_batch(sub);
    assert_eq!(got, want, "range tree disagrees with brute force");
    assert_eq!(kd_got, want, "kd-tree disagrees with brute force");
    println!(
        "\nanchor: {} subsampled counts match brute force on both backends",
        sub.len()
    );
}
