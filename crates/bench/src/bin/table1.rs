//! Table 1 reproduction: runtimes (seconds) and self-relative speedups
//! (`T1 / Tp`) for every ParGeo-rs implementation on uniform hypercube
//! data. The paper runs n = 10M on 36 cores; scale with `PARGEO_N`.

use pargeo::prelude::*;
use pargeo_bench::{env_n, header, max_threads, t1_tp};

fn row(name: &str, f: impl Fn() + Sync + Send) {
    let (t1, tp, speedup) = t1_tp(f);
    println!("| {name} | {t1:.3} | {tp:.3} | {speedup:.2}x |");
}

fn main() {
    let n = env_n(200_000);
    let p = max_threads();
    println!("# Table 1 — uniform hypercube, n = {n}, Tp at {p} threads\n");
    header(&["Implementation", "T1 (s)", &format!("T{p} (s)"), "Speedup"]);

    let pts2 = pargeo::datagen::uniform_cube::<2>(n, 1);
    let pts3 = pargeo::datagen::uniform_cube::<3>(n, 2);
    let pts5 = pargeo::datagen::uniform_cube::<5>(n, 3);
    let batch = n / 10;

    row("kd-tree Build (2d)", || {
        let _ = KdTree::build(&pts2, SplitRule::ObjectMedian);
    });
    row("kd-tree Build (5d)", || {
        let _ = KdTree::build(&pts5, SplitRule::ObjectMedian);
    });
    {
        let tree2 = KdTree::build(&pts2, SplitRule::ObjectMedian);
        row("kd-tree k-NN (2d, k=5)", || {
            let _ = tree2.knn_batch(&pts2, 5);
        });
        let r = pargeo::datagen::cube_side(n) * 0.01;
        let queries: Vec<(Point2, f64)> = pts2.iter().map(|&p| (p, r)).collect();
        row("kd-tree Range Search (2d, report)", || {
            let _ = tree2.range_ball_batch(&queries);
        });
        row("kd-tree Range Search (2d, count)", || {
            let _ = tree2.count_ball_batch(&queries);
        });
    }
    row("Batch-dynamic kd-tree Construction (5d)", || {
        let _ = BdlTree::from_points(&pts5);
    });
    {
        row("Batch-dynamic kd-tree Insert (5d, 10x10%)", || {
            let mut t = BdlTree::<5>::new();
            for chunk in pts5.chunks(batch) {
                t.insert(chunk);
            }
        });
        row("Batch-dynamic kd-tree Delete (5d, 10x10%)", || {
            let mut t = BdlTree::from_points(&pts5);
            for chunk in pts5.chunks(batch) {
                t.delete(chunk);
            }
        });
    }
    row("WSPD (2d, s=2)", || {
        let _ = wspd(&pts2, 2.0);
    });
    row("EMST (2d)", || {
        let _ = emst(&pts2);
    });
    row("Convex Hull (2d)", || {
        let _ = hull2d_divide_conquer(&pts2);
    });
    row("Convex Hull (3d)", || {
        let _ = hull3d_divide_conquer(&pts3);
    });
    row("Smallest Enclosing Ball (2d)", || {
        let _ = seb_sampling(&pts2);
    });
    row("Smallest Enclosing Ball (5d)", || {
        let _ = seb_sampling(&pts5);
    });
    row("Closest Pair (2d)", || {
        let _ = closest_pair(&pts2);
    });
    row("Closest Pair (3d)", || {
        let _ = closest_pair(&pts3);
    });
    row("k-NN Graph (2d, k=5)", || {
        let _ = knn_graph(&pts2, 5);
    });
    row("Delaunay Graph (2d)", || {
        let _ = pargeo::graphgen::delaunay_graph(&pts2);
    });
    {
        let d = pargeo::delaunay::delaunay(&pts2);
        row("Gabriel Graph (2d)", || {
            let _ = gabriel_graph(&pts2, &d);
        });
    }
    row("beta-skeleton Graph (2d, beta=1.5)", || {
        let _ = beta_skeleton(&pts2, 1.5);
    });
    row("Spanner (2d, t=2)", || {
        let _ = spanner(&pts2, 2.0);
    });
    row("Morton Sort (2d)", || {
        let mut v = pts2.clone();
        let _ = pargeo::morton::morton_sort(&mut v);
    });
    row("Bichromatic Closest Pair (2d)", || {
        let half = pts2.len() / 2;
        let _ = bccp_points(&pts2[..half], &pts2[half..]);
    });
}
