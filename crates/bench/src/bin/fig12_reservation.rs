//! Figure 12 / Appendix B reproduction: the overhead of the reservation
//! technique. Compares the sequential quickhull ("no-reservation") with
//! the reservation-based randomized incremental algorithm, both on ONE
//! thread, counting (a) visible points touched, (b) visible facets
//! touched, and (c) wall-clock time, on 3D-IS and 3D-IC (uniform-in-cube).

use pargeo::datagen;
use pargeo::hull::hull3d::{hull3d_randinc_with_stats, hull3d_seq_with_stats};
use pargeo_bench::{env_n, header, ms, time};

fn main() {
    let n = env_n(200_000);
    println!("# Figure 12 — reservation overhead (single thread), n = {n}\n");
    let datasets = vec![
        ("3D-IS", datagen::in_sphere::<3>(n, 1)),
        ("3D-IC", datagen::uniform_cube::<3>(n, 2)),
    ];
    header(&[
        "dataset",
        "method",
        "(a) points touched",
        "(b) facets touched",
        "(c) time (ms)",
        "rounds",
    ]);
    for (name, pts) in &datasets {
        pargeo::parlay::with_threads(1, || {
            let ((_, s_seq), t_seq) = time(|| hull3d_seq_with_stats(pts));
            println!(
                "| {name} | no-reservation | {} | {} | {} | {} |",
                s_seq.points_touched,
                s_seq.facets_touched,
                ms(t_seq),
                s_seq.rounds
            );
            let ((_, s_par), t_par) = time(|| hull3d_randinc_with_stats(pts));
            println!(
                "| {name} | reservation | {} | {} | {} | {} |",
                s_par.points_touched,
                s_par.facets_touched,
                ms(t_par),
                s_par.rounds
            );
            println!(
                "| {name} | ratio | {:.2}x | {:.2}x | {:.2}x | |",
                s_par.points_touched as f64 / s_seq.points_touched.max(1) as f64,
                s_par.facets_touched as f64 / s_seq.facets_touched.max(1) as f64,
                t_par / t_seq
            );
        });
    }
    println!(
        "\nAppendix B claim: the reservation work overhead is a modest constant \
         factor; most reservations succeed, so points/facets touched stay close \
         to the sequential counts."
    );
}
