//! §6.3 "Comparison with Zd-tree" reproduction: construction, 10% batch
//! insert, 10% batch delete, and full k-NN on 3D uniform data, BDL-tree vs
//! the Morton-based Zd-tree.

use pargeo::datagen::uniform_cube;
use pargeo::prelude::*;
use pargeo_bench::{env_n, header, max_threads, time};

fn main() {
    let n = env_n(200_000);
    let p = max_threads();
    println!("# Zd-tree comparison — 3D-U-{n}, {p} threads, times in seconds\n");
    let pts = uniform_cube::<3>(n, 1);
    let batch = n / 10;
    header(&[
        "structure",
        "construct",
        "insert 10%",
        "delete 10%",
        "k-NN (k=5)",
    ]);
    pargeo::parlay::with_threads(p, || {
        // BDL.
        let (mut bdl, c) = time(|| BdlTree::from_points(&pts));
        let (_, i) = time(|| bdl.insert(&pts[..batch]));
        let (_, d) = time(|| bdl.delete(&pts[..batch]));
        let (_, k) = time(|| bdl.knn_batch(&pts, 5));
        println!("| BDL-tree | {c:.3} | {i:.3} | {d:.3} | {k:.3} |");
        // Zd.
        let (mut zd, zc) = time(|| ZdTree::from_points(&pts));
        let (_, zi) = time(|| zd.insert(&pts[..batch]));
        let (_, zd_t) = time(|| zd.delete(&pts[..batch]));
        let (_, zk) = time(|| zd.knn_batch(&pts, 5));
        println!("| Zd-tree | {zc:.3} | {zi:.3} | {zd_t:.3} | {zk:.3} |");
        println!(
            "| BDL / Zd | {:.2}x | {:.2}x | {:.2}x | {:.2}x |",
            c / zc,
            i / zi,
            d / zd_t,
            k / zk
        );
    });
    println!(
        "\nPaper: BDL was 3.3x / 23.1x / 45.8x slower for construct / insert / \
         delete and comparable for k-NN on 36 cores at n = 10M."
    );
}
