//! Ablation studies for the design choices DESIGN.md §6 calls out:
//!
//! 1. pseudohull facet-threshold cutoff (stack-overflow guard vs pruning
//!    quality),
//! 2. SEB sampling segment size `c` (Figure 6's constant),
//! 3. BDL buffer size `X`,
//! 4. comparison-sort engine (our merge sort vs sample sort vs std parallel
//!    fallback) under the hull's typical key type,
//! 5. reservation boundary ring on/off is structural (cannot be toggled
//!    without forfeiting disjointness), so its cost shows in
//!    `fig12_reservation` instead.

use pargeo::datagen;
use pargeo::prelude::*;
use pargeo_bench::{env_n, header, ms, time_best};

fn main() {
    let n = env_n(100_000);
    println!("# Ablations (n = {n})\n");

    // 1. Pseudohull threshold.
    println!("## Pseudohull stop threshold (3D-IS)\n");
    let pts3 = datagen::in_sphere::<3>(n, 1);
    header(&["threshold", "time (ms)"]);
    for th in [1usize, 8, 32, 128, 1024, 16_384] {
        let t = time_best(2, || {
            pargeo::hull::hull3d::hull3d_pseudo_with_threshold(&pts3, th)
        });
        println!("| {th} | {} |", ms(t));
    }

    // 2. SEB sampling batch size.
    println!("\n## SEB sampling segment size c (3D-U)\n");
    let ptsu = datagen::uniform_cube::<3>(n, 2);
    header(&["c", "time (ms)"]);
    for c in [256usize, 1_024, 4_096, 10_000, 40_000] {
        let t = time_best(3, || pargeo::seb::seb_sampling_with_batch(&ptsu, c));
        println!("| {c} | {} |", ms(t));
    }
    let t_scan = time_best(3, || seb_orthant_scan(&ptsu));
    println!("| (no sampling: Scan) | {} |", ms(t_scan));

    // 3. BDL buffer size X.
    println!("\n## BDL buffer size X (5D-U, 10x10% inserts)\n");
    let pts5 = datagen::uniform_cube::<5>(n, 3);
    header(&["X", "insert time (ms)", "k-NN time (ms)"]);
    for x in [64usize, 256, 1_024, 4_096, 16_384] {
        let ins = time_best(1, || {
            let mut t = BdlTree::<5>::with_buffer_size(x);
            for chunk in pts5.chunks(n / 10) {
                t.insert(chunk);
            }
            t
        });
        let mut tree = BdlTree::<5>::with_buffer_size(x);
        tree.insert(&pts5);
        let knn = time_best(1, || tree.knn_batch(&pts5[..n / 10], 5));
        println!("| {x} | {} | {} |", ms(ins), ms(knn));
    }

    // 4. Sort engine shootout on Morton keys.
    println!("\n## Comparison sorts on Morton-key pairs\n");
    let pts2 = datagen::uniform_cube::<2>(n, 4);
    let bbox = pargeo::morton::parallel_bbox(&pts2);
    let keyed: Vec<(u64, u32)> = pts2
        .iter()
        .enumerate()
        .map(|(i, p)| (pargeo::morton::morton_code(p, &bbox), i as u32))
        .collect();
    header(&["engine", "time (ms)"]);
    let t = time_best(3, || {
        let mut v = keyed.clone();
        pargeo::parlay::merge_sort_by(&mut v, |a, b| a.0.cmp(&b.0));
        v
    });
    println!("| parallel merge sort | {} |", ms(t));
    let t = time_best(3, || {
        let mut v = keyed.clone();
        pargeo::parlay::sample_sort_by(&mut v, |a, b| a.0.cmp(&b.0));
        v
    });
    println!("| parallel sample sort | {} |", ms(t));
    let t = time_best(3, || {
        let mut v = keyed.clone();
        pargeo::parlay::radix_sort_u64_by_key(&mut v, |x| x.0);
        v
    });
    println!("| parallel radix sort | {} |", ms(t));
    let t = time_best(3, || {
        let mut v = keyed.clone();
        v.sort_unstable_by_key(|x| x.0);
        v
    });
    println!("| std sequential sort | {} |", ms(t));
}
