//! Snapshot-pipelined serving vs the epoch-serial planner: every dynamic
//! backend × every store workload preset, T1/Tp for both executors. The
//! pipelined executor pins a copy-on-write snapshot per read run and
//! overlaps the run's fan-out with the next write epoch's apply; the
//! overlap ratio column reports how many read runs actually found a write
//! epoch to hide behind (from the `geostore_pipeline_*` counters). Every
//! timed stream is also a correctness run: pipelined responses are
//! asserted per-request identical to the serial executor's at full scale,
//! and both are digest-anchored against the brute-force oracle store at
//! 1/10 scale. Scale with `PARGEO_N` (initial load is `n/2`).

use pargeo::prelude::*;
use pargeo::store::digest_responses;
use pargeo_bench::{env_n, header, max_threads, t1_tp};

fn to_requests(w: &Workload<2>) -> Vec<Request<2>> {
    let mut reqs = vec![Request::Insert(w.initial.clone())];
    reqs.extend(w.ops.iter().map(|op| match op {
        WorkloadOp::Insert(batch) => Request::Insert(batch.clone()),
        WorkloadOp::Delete(batch) => Request::Delete(batch.clone()),
        WorkloadOp::Knn(queries, k) => Request::Knn {
            queries: queries.clone(),
            k: *k,
        },
        WorkloadOp::Range(boxes) => Request::Range(boxes.clone()),
        WorkloadOp::Derived(d) => match d {
            DerivedOp::Hull => Request::Hull,
            DerivedOp::Seb => Request::Seb,
            DerivedOp::ClosestPair => Request::ClosestPair,
            DerivedOp::Emst => Request::Emst,
            DerivedOp::KnnGraph(k) => Request::KnnGraph { k: *k },
            DerivedOp::DelaunayGraph => Request::DelaunayGraph,
        },
    }));
    reqs
}

fn make(backend: Backend, pipeline: bool) -> GeoStore<2> {
    GeoStore::builder()
        .backend(backend)
        .pipeline(pipeline)
        .build()
}

fn main() {
    let n = env_n(50_000);
    let p = max_threads();
    println!(
        "# Snapshot pipeline — epoch-pinned reads over live writes, initial = {}, Tp at {p} threads\n",
        n / 2
    );

    // Correctness anchor at 1/10 scale: pipelined responses equal the
    // serial planner's per request, and both match the oracle store's
    // digest, for every preset and backend.
    let small = WorkloadSpec::store_presets((n / 10).max(500));
    for spec in &small {
        let w: Workload<2> = spec.generate();
        let reqs = to_requests(&w);
        let mut oracle = make(Backend::Oracle, false);
        let want_digest = digest_responses(&oracle.execute(&reqs));
        for backend in Backend::all() {
            let serial = make(backend, false).execute(&reqs);
            let piped = make(backend, true).execute(&reqs);
            assert_eq!(
                serial.len(),
                piped.len(),
                "{} response count on {}",
                backend.label(),
                spec.name
            );
            for (i, (a, b)) in serial.iter().zip(&piped).enumerate() {
                assert_eq!(
                    a,
                    b,
                    "{} pipelined response {i} diverged on {}",
                    backend.label(),
                    spec.name
                );
            }
            assert_eq!(
                digest_responses(&serial),
                want_digest,
                "{} serial diverged from oracle on {}",
                backend.label(),
                spec.name
            );
        }
    }
    println!(
        "anchor: {} small-scale presets pipelined == serial per request, oracle-anchored, all backends\n",
        small.len()
    );

    header(&[
        "Scenario",
        "Backend",
        "Serial T1 (s)",
        "Serial Tp (s)",
        "Piped T1 (s)",
        "Piped Tp (s)",
        "Piped/Serial Tp",
        "Overlap",
        "Pinned end",
    ]);
    for spec in WorkloadSpec::store_presets(n) {
        let w: Workload<2> = spec.generate();
        let reqs = to_requests(&w);
        for backend in Backend::all() {
            let (s1, sp, _) = t1_tp(|| make(backend, false).execute(&reqs).len());
            let (p1, pp, _) = t1_tp(|| make(backend, true).execute(&reqs).len());

            // Overlap ratio from an observed (untimed) pipelined run; the
            // pinned-view gauge must be back to zero when the stream ends.
            let mut observed: GeoStore<2> = GeoStore::builder()
                .backend(backend)
                .pipeline(true)
                .observe(ObsLevel::Metrics)
                .build();
            observed.execute(&reqs);
            let registry = observed.registry().expect("observed store");
            let counter = |name: &str| {
                registry
                    .counter_values()
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| *v)
                    .unwrap_or(0)
            };
            let runs = counter("geostore_pipeline_runs_total");
            let overlapped = counter("geostore_pipeline_overlapped_total");
            let pinned_end = registry.gauge("geostore_pinned_views", &[]).get();
            assert_eq!(pinned_end, 0, "pipelined executor leaked a pinned view");

            println!(
                "| {} | {} | {s1:.3} | {sp:.3} | {p1:.3} | {pp:.3} | {:.2}x | {overlapped}/{runs} | {pinned_end} |",
                spec.name,
                backend.label(),
                sp / pp,
            );
        }
    }
}
