//! Incremental-vs-rebuild crossover for maintained derived structures:
//! repeated rounds of "insert a batch, re-ask hull + Delaunay" served by
//! the delta-maintaining store (the default) against the
//! wholesale-recompute baseline (`.incremental(false)`), sweeping the
//! batch size from far below to near the live-set size. Small batches are
//! the incremental regime (the engines absorb the delta in place); large
//! batches cross over as the damage budget sends the store back to full
//! recomputes. A delete-churn scenario pins the rebuild fallback. Every
//! timed configuration first asserts digest equality between the two
//! maintenance modes, so the sweep is also a correctness run. Scale with
//! `PARGEO_N` (initial live set; batches are fractions of it).

use pargeo::prelude::*;
use pargeo::store::digest_responses;
use pargeo_bench::{env_n, header, ms, time_best};

/// Builds the request stream for one churn scenario: the initial load,
/// then `rounds` epochs of (insert `batch` points[, delete some], ask
/// hull + Delaunay).
fn stream(
    initial: &[Point2],
    pool: &[Point2],
    rounds: usize,
    batch: usize,
    delete_every: Option<usize>,
) -> Vec<Request<2>> {
    let mut reqs = vec![Request::Insert(initial.to_vec())];
    reqs.push(Request::Hull);
    reqs.push(Request::DelaunayGraph);
    let mut cursor = 0usize;
    for round in 0..rounds {
        let b: Vec<Point2> = pool
            .iter()
            .cycle()
            .skip(cursor)
            .take(batch)
            .copied()
            .collect();
        cursor = (cursor + batch) % pool.len().max(1);
        reqs.push(Request::Insert(b));
        if let Some(every) = delete_every {
            if round % every == every - 1 {
                // Delete a slice of the initial load: engines cannot
                // survive this, the next compute is a rebuild.
                let s = (round / every * 16) % (initial.len() / 2);
                reqs.push(Request::Delete(initial[s..s + 8].to_vec()));
            }
        }
        reqs.push(Request::Hull);
        reqs.push(Request::DelaunayGraph);
    }
    reqs
}

fn run(reqs: &[Request<2>], incremental: bool) -> (u64, CacheStats) {
    let mut store: GeoStore<2> = GeoStore::builder().incremental(incremental).build();
    let responses = store.execute(reqs);
    (digest_responses(&responses), store.stats().cache)
}

/// Replays the stream once through an observed store (digest must match
/// the unobserved run) and returns the per-request derived-structure
/// latency distribution from the store's registry.
fn observed_derived_lat(reqs: &[Request<2>], want_digest: u64) -> HistSummary {
    let mut store: GeoStore<2> = GeoStore::builder().observe(ObsLevel::Metrics).build();
    let responses = store.execute(reqs);
    assert_eq!(
        digest_responses(&responses),
        want_digest,
        "observe(Metrics) perturbed the digest"
    );
    store
        .registry()
        .expect("observed store has a registry")
        .histogram("geostore_request_nanos", &[("class", "derived")])
        .summary()
}

fn main() {
    let n = env_n(20_000);
    let rounds = 8usize;
    let pool = pargeo::datagen::uniform_cube::<2>(n * 3, 11);

    // Pin the dataset bbox into the initial load (its four corners), so
    // later batches never land outside the Delaunay engine's super
    // bounds: bbox growth is a legitimate rebuild trigger, but this sweep
    // measures the damage-budget crossover, not bbox churn.
    let (mut lo, mut hi) = ([f64::MAX; 2], [f64::MIN; 2]);
    for p in &pool {
        for d in 0..2 {
            lo[d] = lo[d].min(p.coords[d]);
            hi[d] = hi[d].max(p.coords[d]);
        }
    }
    let mut initial: Vec<Point2> = vec![
        Point2::new([lo[0], lo[1]]),
        Point2::new([hi[0], lo[1]]),
        Point2::new([lo[0], hi[1]]),
        Point2::new([hi[0], hi[1]]),
    ];
    initial.extend_from_slice(&pool[..n]);
    let spare = &pool[n..];

    println!(
        "# incr_derived — delta maintenance vs wholesale recompute, initial = {}, {rounds} insert rounds\n",
        initial.len()
    );
    header(&[
        "Scenario",
        "Batch",
        "Incr (s)",
        "Rebuild (s)",
        "Speedup",
        "Applies",
        "Fallbacks",
        "Derived p50 (ms)",
        "Derived p99 (ms)",
    ]);

    // Insert-only churn: batch fraction sweeps across the crossover.
    for frac in [0.0005f64, 0.005, 0.05, 0.5] {
        let batch = ((n as f64 * frac) as usize).max(1);
        let reqs = stream(&initial, spare, rounds, batch, None);
        let (digest_inc, cache) = run(&reqs, true);
        let (digest_whole, _) = run(&reqs, false);
        assert_eq!(
            digest_inc, digest_whole,
            "maintenance modes disagree at batch {batch}"
        );
        let lat = observed_derived_lat(&reqs, digest_inc);
        let t_inc = time_best(3, || run(&reqs, true).0);
        let t_whole = time_best(3, || run(&reqs, false).0);
        println!(
            "| insert-only | {batch} | {} | {} | {:.2}x | {} | {} | {:.3} | {:.3} |",
            ms(t_inc),
            ms(t_whole),
            t_whole / t_inc,
            cache.incremental,
            cache.rebuilds,
            lat.p50_ms(),
            lat.p99_ms(),
        );
    }

    // Delete churn: every other round removes points, forcing the
    // rebuild fallback — both modes should track each other closely.
    let batch = ((n as f64 * 0.005) as usize).max(1);
    let reqs = stream(&initial, spare, rounds, batch, Some(2));
    let (digest_inc, cache) = run(&reqs, true);
    let (digest_whole, _) = run(&reqs, false);
    assert_eq!(
        digest_inc, digest_whole,
        "maintenance modes disagree under deletes"
    );
    let lat = observed_derived_lat(&reqs, digest_inc);
    let t_inc = time_best(3, || run(&reqs, true).0);
    let t_whole = time_best(3, || run(&reqs, false).0);
    println!(
        "| delete-churn | {batch} | {} | {} | {:.2}x | {} | {} | {:.3} | {:.3} |",
        ms(t_inc),
        ms(t_whole),
        t_whole / t_inc,
        cache.incremental,
        cache.rebuilds,
        lat.p50_ms(),
        lat.p99_ms(),
    );

    println!("\nanchor: all configurations digest-identical across maintenance modes");
}
