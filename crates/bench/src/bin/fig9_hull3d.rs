//! Figure 9 reproduction: 3D convex hull running times (ms) across the
//! paper's dataset families (the Stanford Thai/Dragon scans are stood in
//! for by the synthetic statue surface; see DESIGN.md §5).

use pargeo::datagen;
use pargeo::prelude::*;
use pargeo_bench::{env_n, header, max_threads, ms, time_best};

fn main() {
    let n = env_n(200_000);
    let big = 5 * n;
    let p = max_threads();
    println!("# Figure 9 — 3D convex hull, times in ms on {p} threads\n");
    let datasets: Vec<(String, Vec<Point3>)> = vec![
        (format!("3D-IS-{n}"), datagen::in_sphere::<3>(n, 1)),
        (format!("3D-OS-{n}"), datagen::on_sphere::<3>(n, 2)),
        (format!("3D-U-{n}"), datagen::uniform_cube::<3>(n, 3)),
        (format!("3D-OC-{n}"), datagen::on_cube::<3>(n, 4)),
        (
            format!("3D-Thai-{}", n / 2),
            datagen::statue_surface(n / 2, 5),
        ),
        (
            format!("3D-Dragon-{}", n * 36 / 100),
            datagen::statue_surface(n * 36 / 100, 6),
        ),
        (format!("3D-OS-{big}"), datagen::on_sphere::<3>(big, 7)),
        (format!("3D-OC-{big}"), datagen::on_cube::<3>(big, 8)),
    ];
    header(&[
        "dataset",
        "SeqQuickhull (CGAL/Qhull)",
        "RandInc",
        "QuickHull",
        "DivideConquer",
        "Pseudo",
        "hull size",
    ]);
    for (name, pts) in &datasets {
        let seq = time_best(1, || hull3d_seq(pts));
        let (ri, qh, dc, ps, sz) = pargeo::parlay::with_threads(p, || {
            let ri = time_best(1, || hull3d_randinc(pts));
            let qh = time_best(1, || hull3d_quickhull_parallel(pts));
            let dc = time_best(1, || hull3d_divide_conquer(pts));
            let ps = time_best(1, || hull3d_pseudo(pts));
            let sz = hull3d_divide_conquer(pts).num_vertices();
            (ri, qh, dc, ps, sz)
        });
        println!(
            "| {name} | {} | {} | {} | {} | {} | {sz} |",
            ms(seq),
            ms(ri),
            ms(qh),
            ms(dc),
            ms(ps)
        );
    }
}
