//! Figure 11 reproduction: throughput (points/sec) of construction,
//! 10×10% batch insertion, 10×10% batch deletion, and full k-NN (k = 5)
//! over the thread sweep, for B1 / B2 / BDL under both split rules, on
//! 7D uniform data.

use pargeo::datagen::uniform_cube;
use pargeo::prelude::*;
use pargeo_bench::{env_n, header, thread_sweep, time};

const D: usize = 7;

#[derive(Clone, Copy, PartialEq)]
enum Which {
    B1,
    B2,
    Bdl,
}

fn op_name(i: usize) -> &'static str {
    [
        "Construction",
        "Insert (10x10%)",
        "Delete (10x10%)",
        "k-NN (k=5)",
    ][i]
}

/// Returns seconds for (construct, insert-batches, delete-batches, knn).
fn run(which: Which, rule: SplitRule, pts: &[Point<D>]) -> [f64; 4] {
    let n = pts.len();
    let batch = n / 10;
    match which {
        Which::B1 => {
            let (_, c) = time(|| B1Tree::from_points(pts, rule));
            let (mut t, i) = time(|| {
                let mut t = B1Tree::new(rule);
                for chunk in pts.chunks(batch) {
                    t.insert(chunk);
                }
                t
            });
            let (_, d) = time(|| {
                for chunk in pts.chunks(batch) {
                    t.delete(chunk);
                }
            });
            let full = B1Tree::from_points(pts, rule);
            let (_, k) = time(|| full.knn_batch(pts, 5));
            [c, i, d, k]
        }
        Which::B2 => {
            let (_, c) = time(|| B2Tree::from_points(pts, rule));
            let (mut t, i) = time(|| {
                let mut t = B2Tree::new(rule);
                for chunk in pts.chunks(batch) {
                    t.insert(chunk);
                }
                t
            });
            let (_, d) = time(|| {
                for chunk in pts.chunks(batch) {
                    t.delete(chunk);
                }
            });
            let full = B2Tree::from_points(pts, rule);
            let (_, k) = time(|| full.knn_batch(pts, 5));
            [c, i, d, k]
        }
        Which::Bdl => {
            let x = pargeo::bdltree::bdl::DEFAULT_BUFFER_SIZE;
            let (_, c) = time(|| {
                let mut t = BdlTree::with_config(x, rule);
                t.insert(pts);
                t
            });
            let (mut t, i) = time(|| {
                let mut t = BdlTree::with_config(x, rule);
                for chunk in pts.chunks(batch) {
                    t.insert(chunk);
                }
                t
            });
            let (_, d) = time(|| {
                for chunk in pts.chunks(batch) {
                    t.delete(chunk);
                }
            });
            let mut full = BdlTree::with_config(x, rule);
            full.insert(pts);
            let (_, k) = time(|| full.knn_batch(pts, 5));
            [c, i, d, k]
        }
    }
}

fn main() {
    let n = env_n(100_000);
    println!("# Figure 11 — batch-dynamic trees on 7D-U-{n}, throughput (points/s)\n");
    let pts = uniform_cube::<D>(n, 1);
    let configs: Vec<(&str, Which, SplitRule)> = vec![
        ("B1-object", Which::B1, SplitRule::ObjectMedian),
        ("B1-spatial", Which::B1, SplitRule::SpatialMedian),
        ("B2-object", Which::B2, SplitRule::ObjectMedian),
        ("B2-spatial", Which::B2, SplitRule::SpatialMedian),
        ("BDL-object", Which::Bdl, SplitRule::ObjectMedian),
        ("BDL-spatial", Which::Bdl, SplitRule::SpatialMedian),
    ];
    let sweep = thread_sweep();
    // Warm up page tables / allocator before the measured sweep.
    let _ = run(Which::Bdl, SplitRule::ObjectMedian, &pts);
    for op in 0..4 {
        println!("\n## ({}) {}\n", (b'a' + op as u8) as char, op_name(op));
        let mut cols = vec!["impl".to_string()];
        cols.extend(sweep.iter().map(|t| format!("{t} thr")));
        cols.push("speedup".into());
        header(&cols.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        for (name, which, rule) in &configs {
            let mut cells = vec![name.to_string()];
            let mut first = 0.0;
            let mut last = 0.0;
            for &t in &sweep {
                let secs = pargeo::parlay::with_threads(t, || run(*which, *rule, &pts))[op];
                let thru = n as f64 / secs;
                if t == sweep[0] {
                    first = secs;
                }
                last = secs;
                cells.push(format!("{:.2e}", thru));
            }
            cells.push(format!("{:.2}x", first / last));
            println!("| {} |", cells.join(" | "));
        }
    }
}
