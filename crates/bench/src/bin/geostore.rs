//! Mixed-serving sweep of the GeoStore façade: every dynamic backend
//! (dyn-kd, BDL, Zd) × every store workload preset (mixed serving,
//! analytics-heavy, churn + analytics, hotspot reads, seed-spreader) ×
//! T1/Tp thread counts. Each preset mixes index updates, spatial queries,
//! and whole-dataset derived structures (hull, SEB, closest pair, EMST,
//! k-NN graph, Delaunay), so the epoch planner and the per-epoch memo
//! cache are on the measured path. Answer digests are asserted equal
//! across backends at full scale, and against the brute-force oracle
//! store at 1/10 scale, so every timed run is also a correctness run.
//! Scale with `PARGEO_N` (initial load is `n/2`).

use pargeo::prelude::*;
use pargeo_bench::{env_n, header, max_threads, t1_tp};

fn make_store(backend: Backend) -> GeoStore<2> {
    GeoStore::builder().backend(backend).build()
}

fn main() {
    let n = env_n(50_000);
    let p = max_threads();
    println!(
        "# GeoStore façade — mixed serving + analytics, initial = {}, Tp at {p} threads\n",
        n / 2
    );

    // Correctness anchor at 1/10 scale: every backend vs the oracle
    // store, unsharded and through the morton-routed 4-shard executor
    // (the full shard sweep lives in the `shard_sweep` binary).
    let small = WorkloadSpec::store_presets((n / 10).max(500));
    for spec in &small {
        let w: Workload<2> = spec.generate();
        let mut oracle = make_store(Backend::Oracle);
        let want = run_store_workload(&mut oracle, &w);
        for backend in Backend::all() {
            let mut store = make_store(backend);
            let got = run_store_workload(&mut store, &w);
            assert_eq!(
                got.digest, want.digest,
                "{} diverged from oracle on {}",
                got.backend, spec.name
            );
            assert_eq!(got.errors, want.errors, "{}", spec.name);
            let mut sharded = GeoStore::builder().backend(backend).shards(4).build();
            let got = run_store_workload(&mut sharded, &w);
            assert_eq!(
                got.digest, want.digest,
                "{} S=4 diverged from oracle on {}",
                got.backend, spec.name
            );
        }
    }
    println!(
        "anchor: {} small-scale workloads match the oracle store on all backends (S in {{1, 4}})\n",
        small.len()
    );

    header(&[
        "Scenario",
        "Backend",
        "Shards",
        "T1 (s)",
        "Tp (s)",
        "Speedup",
        "Derived",
        "Cache h/m",
    ]);
    for spec in WorkloadSpec::store_presets(n) {
        let w: Workload<2> = spec.generate();
        // Full-scale digests must agree across backends (checked once,
        // outside the timed region).
        let reports: Vec<StoreReport> = Backend::all()
            .into_iter()
            .map(|b| {
                let mut store = make_store(b);
                run_store_workload(&mut store, &w)
            })
            .collect();
        assert!(
            reports.windows(2).all(|r| r[0].digest == r[1].digest),
            "backends disagree on workload {}",
            spec.name
        );
        for (backend, full) in Backend::all().into_iter().zip(&reports) {
            let (t1, tp, speedup) = t1_tp(|| {
                let mut store = make_store(backend);
                run_store_workload(&mut store, &w).final_live
            });
            println!(
                "| {} | {} | {} | {t1:.3} | {tp:.3} | {speedup:.2}x | {} | {}/{} |",
                spec.name,
                backend.label(),
                full.shards,
                full.ops.4,
                full.cache.hits,
                full.cache.misses,
            );
        }
    }
}
