//! Mixed-serving sweep of the GeoStore façade: every dynamic backend
//! (dyn-kd, BDL, Zd) × every store workload preset (mixed serving,
//! analytics-heavy, churn + analytics, hotspot reads, seed-spreader) ×
//! T1/Tp thread counts. Each preset mixes index updates, spatial queries,
//! and whole-dataset derived structures (hull, SEB, closest pair, EMST,
//! k-NN graph, Delaunay), so the epoch planner and the per-epoch memo
//! cache are on the measured path. Answer digests are asserted equal
//! across backends at full scale, and against the brute-force oracle
//! store at 1/10 scale, so every timed run is also a correctness run.
//! Scale with `PARGEO_N` (initial load is `n/2`).

use pargeo::prelude::*;
use pargeo_bench::{env_n, header, max_threads, t1_tp};

fn make_store(backend: Backend) -> GeoStore<2> {
    GeoStore::builder().backend(backend).build()
}

fn main() {
    let n = env_n(50_000);
    let p = max_threads();
    println!(
        "# GeoStore façade — mixed serving + analytics, initial = {}, Tp at {p} threads\n",
        n / 2
    );

    // Correctness anchor at 1/10 scale: every backend vs the oracle
    // store, unsharded and through the morton-routed 4-shard executor
    // (the full shard sweep lives in the `shard_sweep` binary).
    let small = WorkloadSpec::store_presets((n / 10).max(500));
    for spec in &small {
        let w: Workload<2> = spec.generate();
        let mut oracle = make_store(Backend::Oracle);
        let want = run_store_workload(&mut oracle, &w);
        for backend in Backend::all() {
            let mut store = make_store(backend);
            let got = run_store_workload(&mut store, &w);
            assert_eq!(
                got.digest, want.digest,
                "{} diverged from oracle on {}",
                got.backend, spec.name
            );
            assert_eq!(got.errors, want.errors, "{}", spec.name);
            let mut sharded = GeoStore::builder().backend(backend).shards(4).build();
            let got = run_store_workload(&mut sharded, &w);
            assert_eq!(
                got.digest, want.digest,
                "{} S=4 diverged from oracle on {}",
                got.backend, spec.name
            );
        }
    }
    println!(
        "anchor: {} small-scale workloads match the oracle store on all backends (S in {{1, 4}})\n",
        small.len()
    );

    // Observability anchor: the same preset served with `.observe(..)`
    // on must produce a bit-identical digest, non-empty per-class latency
    // histograms, and memo-path counters that mirror CacheStats. Set
    // PARGEO_OBS_DUMP=1 to dump the rendered registry (JSON then
    // Prometheus text) for external validation.
    {
        let spec = &small[0];
        let w: Workload<2> = spec.generate();
        let mut plain = make_store(Backend::DynKd);
        let want = run_store_workload(&mut plain, &w);
        let mut observed: GeoStore<2> = GeoStore::builder()
            .backend(Backend::DynKd)
            .shards(4)
            .observe(ObsLevel::Trace)
            .build();
        let got = run_store_workload(&mut observed, &w);
        assert_eq!(
            got.digest, want.digest,
            "observe(Trace) perturbed the digest on {}",
            spec.name
        );
        let registry = observed.registry().expect("observed store has a registry");
        let counters = registry.counter_values();
        let memo_compute: u64 = counters
            .iter()
            .filter(|(key, _)| {
                key.starts_with("geostore_memo_total")
                    && ["fresh", "incremental", "rebuilt"]
                        .iter()
                        .any(|p| key.contains(&format!("path=\"{p}\"")))
            })
            .map(|(_, v)| *v)
            .sum();
        let cache = observed.stats().cache;
        assert_eq!(
            memo_compute, cache.misses,
            "memo-path counters diverged from CacheStats"
        );
        println!(
            "obs anchor: observe(Trace) digest-identical on {}; {} span events traced, read p50 {:.3} ms / p99 {:.3} ms",
            spec.name,
            registry.trace_events().len(),
            got.read_lat.p50_ms(),
            got.read_lat.p99_ms(),
        );
        if std::env::var("PARGEO_OBS_DUMP").is_ok() {
            println!("--- obs json ---");
            println!("{}", registry.render_json());
            println!("--- obs prometheus ---");
            println!("{}", registry.render_prometheus());
            println!("--- obs end ---");
        }
    }
    println!();

    header(&[
        "Scenario",
        "Backend",
        "Shards",
        "T1 (s)",
        "Tp (s)",
        "Speedup",
        "Derived",
        "Cache h/m",
        "Read p50 (ms)",
        "Read p99 (ms)",
        "Derived p50 (ms)",
        "Derived p99 (ms)",
    ]);
    for spec in WorkloadSpec::store_presets(n) {
        let w: Workload<2> = spec.generate();
        // Full-scale digests must agree across backends (checked once,
        // outside the timed region).
        let reports: Vec<StoreReport> = Backend::all()
            .into_iter()
            .map(|b| {
                let mut store = make_store(b);
                run_store_workload(&mut store, &w)
            })
            .collect();
        assert!(
            reports.windows(2).all(|r| r[0].digest == r[1].digest),
            "backends disagree on workload {}",
            spec.name
        );
        for (backend, full) in Backend::all().into_iter().zip(&reports) {
            let (t1, tp, speedup) = t1_tp(|| {
                let mut store = make_store(backend);
                run_store_workload(&mut store, &w).final_live
            });
            println!(
                "| {} | {} | {} | {t1:.3} | {tp:.3} | {speedup:.2}x | {} | {}/{} | {:.3} | {:.3} | {:.3} | {:.3} |",
                spec.name,
                backend.label(),
                full.shards,
                full.ops.4,
                full.cache.hits,
                full.cache.misses,
                full.read_lat.p50_ms(),
                full.read_lat.p99_ms(),
                full.derived_lat.p50_ms(),
                full.derived_lat.p99_ms(),
            );
        }
    }
}
