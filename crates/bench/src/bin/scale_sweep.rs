//! Large-n trajectory: build/query throughput and peak RSS for every
//! batch-dynamic backend at n ∈ {10^5, 10^6, 10^7} (the ROADMAP's
//! three-orders-of-magnitude ladder; `PARGEO_SCALE=full` enables the 10^7
//! tier, the default stops at 10^6, `smoke` at 10^5).
//!
//! Every timed run is also a correctness run, twice over: per tier, the
//! answer digests must agree across all backends, and against the
//! hard-coded [`ANCHORS`] captured from the pre-arena pointer layouts —
//! the proof that the flat arena + SoA refactor is bit-identical at every
//! scale, not just at test size. The 10^5 tier is additionally checked
//! against the brute-force oracle.

use pargeo::datagen::uniform_cube_range;
use pargeo::prelude::*;
use pargeo_bench::scale;
use pargeo_bench::{header, max_threads, time};

fn make_backend(which: usize) -> Box<dyn SpatialIndex<2> + Send + Sync> {
    match which {
        0 => Box::new(DynKdTree::<2>::new()),
        1 => Box::new(BdlTree::<2>::new()),
        _ => Box::new(ZdTree::<2>::new()),
    }
}

const BACKENDS: [&str; 3] = ["dyn-kd", "bdl", "zd"];

/// Per-tier answer digests `(n, knn, range)` captured from the
/// pre-refactor (pointer-layout, array-of-structs) backends. The sweep
/// asserts today's layouts still produce them — see scale::tests for the
/// frozen-workload guarantee that makes the comparison meaningful.
const ANCHORS: &[(usize, u64, u64)] = &[
    (100_000, 0x8682b334203acec7, 0x070915a5e24599f3),
    (1_000_000, 0x3294d77052040977, 0x9858849acee20516),
    (10_000_000, 0xc2cbd0d88b086abc, 0xad74ba5e2d1786c6),
];

fn main() {
    let tiers = scale::tiers();
    let p = max_threads();
    println!(
        "# Scale sweep — backends at n up to 10^7, chunked ingest of {} per batch, {p} threads\n",
        scale::CHUNK
    );
    header(&[
        "n",
        "Backend",
        "Build (s)",
        "Build Mpt/s",
        "kNN (s)",
        "kNN q/s",
        "Range (s)",
        "Range q/s",
        "Peak RSS (MB)",
    ]);

    let rss_resets = scale::reset_peak_rss();
    for &n in &tiers {
        let queries = scale::knn_queries(n);
        let boxes = scale::range_boxes(n);
        let mut digests: Vec<(u64, u64)> = Vec::new();
        for (which, name) in BACKENDS.iter().enumerate() {
            scale::reset_peak_rss();
            let mut b = make_backend(which);
            let mut build_secs = 0.0;
            let mut start = 0;
            while start < n {
                let end = (start + scale::CHUNK).min(n);
                let chunk = uniform_cube_range::<2>(n, scale::DATA_SEED, start..end);
                let (_, s) = time(|| b.insert(&chunk));
                build_secs += s;
                start = end;
            }
            assert_eq!(b.len(), n, "{name} lost points");
            let (knn_rows, knn_secs) = time(|| b.knn_batch(&queries, scale::KNN_K));
            let (range_rows, range_secs) = time(|| b.range_batch(&boxes));
            digests.push((
                scale::knn_digest(&knn_rows),
                scale::range_digest(&range_rows),
            ));
            let peak = scale::peak_rss_bytes() as f64 / (1024.0 * 1024.0);
            println!(
                "| {n} | {name} | {build_secs:.3} | {:.2} | {knn_secs:.3} | {:.0} | {range_secs:.3} | {:.0} | {peak:.0} |",
                n as f64 / build_secs / 1e6,
                queries.len() as f64 / knn_secs,
                boxes.len() as f64 / range_secs,
            );
        }
        assert!(
            digests.windows(2).all(|d| d[0] == d[1]),
            "backends disagree at n={n}: {digests:x?}"
        );
        let (knn, range) = digests[0];
        if let Some(&(_, k0, r0)) = ANCHORS.iter().find(|&&(m, ..)| m == n) {
            assert_eq!(
                (knn, range),
                (k0, r0),
                "n={n}: digests diverged from the pre-arena pointer layouts"
            );
        }
        println!(
            "anchor: n={n} digests knn=0x{knn:016x} range=0x{range:016x} equal across {BACKENDS:?}"
        );
    }

    // Oracle anchor at the smallest tier: the digests above are not just
    // self-consistent but correct.
    let n = scale::TIERS[0];
    let mut oracle = VecIndex::<2>::new();
    oracle.insert(&uniform_cube_range::<2>(n, scale::DATA_SEED, 0..n));
    let knn = scale::knn_digest(&oracle.knn_batch(&scale::knn_queries(n), scale::KNN_K));
    let range = scale::range_digest(&SpatialIndex::range_batch(&oracle, &scale::range_boxes(n)));
    if let Some(&(_, k0, r0)) = ANCHORS.iter().find(|&&(m, ..)| m == n) {
        assert_eq!((knn, range), (k0, r0), "oracle disagrees with anchors");
    }
    println!("anchor: n={n} brute-force oracle digests knn=0x{knn:016x} range=0x{range:016x}");
    if !rss_resets {
        println!("note: peak-RSS watermark reset unavailable; RSS column is monotone");
    }
}
