//! Sharded-store sweep: every dynamic backend (dyn-kd, BDL, Zd) × shard
//! counts {1, 4, 16} × every store workload preset (including the
//! `hotspot-shard` write-skew stressor) × T1/Tp thread counts, through the
//! GeoStore façade's morton-routed `ShardedIndex` executor. Cross-shard
//! digest anchors make every timed run a correctness run: at full scale
//! each sharded digest must equal the unsharded store's, and at 1/10 scale
//! everything must equal the brute-force oracle store. Sharding pays off
//! with cores (parallel per-shard write batches, pruned read fan-out);
//! on a single-core container Tp ≈ T1 and the anchor is the point.
//! Scale with `PARGEO_N` (initial load is `n/2`).

use pargeo::prelude::*;
use pargeo_bench::{env_n, header, max_threads, t1_tp};

const SHARDS: [usize; 3] = [1, 4, 16];

fn make(backend: Backend, shards: usize) -> GeoStore<2> {
    let b = GeoStore::builder().backend(backend);
    match shards {
        0 => b.build(),
        s => b.shards(s).build(),
    }
}

fn main() {
    let n = env_n(50_000);
    let p = max_threads();
    println!(
        "# Sharded GeoStore — morton-routed shard sweep, initial = {}, Tp at {p} threads\n",
        n / 2
    );

    // Correctness anchor at 1/10 scale: every backend × every shard count
    // vs the (unsharded) oracle store.
    let small = WorkloadSpec::store_presets((n / 10).max(500));
    for spec in &small {
        let w: Workload<2> = spec.generate();
        let mut oracle = make(Backend::Oracle, 0);
        let want = run_store_workload(&mut oracle, &w);
        for backend in Backend::all() {
            for s in SHARDS {
                let mut store = make(backend, s);
                let got = run_store_workload(&mut store, &w);
                assert_eq!(
                    got.digest, want.digest,
                    "{} S={s} diverged from oracle on {}",
                    got.backend, spec.name
                );
                assert_eq!(got.errors, want.errors, "{} S={s}", spec.name);
            }
        }
    }
    println!(
        "anchor: {} small-scale workloads match the oracle store on all backends x shard counts\n",
        small.len()
    );

    header(&[
        "Scenario",
        "Backend",
        "Shards",
        "T1 (s)",
        "Tp (s)",
        "Speedup",
        "Live",
        "Shard live min..max",
        "Read p99 (ms)",
    ]);
    for spec in WorkloadSpec::store_presets(n) {
        let w: Workload<2> = spec.generate();
        for backend in Backend::all() {
            // Full-scale cross-shard anchor (outside the timed region):
            // sharding must be invisible in the digest.
            let mut base = make(backend, 0);
            let base_r = run_store_workload(&mut base, &w);
            for s in SHARDS {
                let mut store = make(backend, s);
                let r = run_store_workload(&mut store, &w);
                assert_eq!(
                    r.digest, base_r.digest,
                    "{} S={s} diverged from unsharded on {}",
                    r.backend, spec.name
                );
                let (t1, tp, speedup) = t1_tp(|| {
                    let mut store = make(backend, s);
                    run_store_workload(&mut store, &w).final_live
                });
                // Router balance: live points per morton shard, as
                // reported by the store's per-shard snapshots.
                debug_assert_eq!(r.shard_live.iter().sum::<usize>(), r.final_live);
                let lo = r.shard_live.iter().min().copied().unwrap_or(0);
                let hi = r.shard_live.iter().max().copied().unwrap_or(0);
                println!(
                    "| {} | {} | {s} | {t1:.3} | {tp:.3} | {speedup:.2}x | {} | {lo}..{hi} | {:.3} |",
                    spec.name,
                    backend.label(),
                    r.final_live,
                    r.read_lat.p99_ms(),
                );
            }
        }
    }
}
