//! Figure 8 reproduction: 2D convex hull running times (ms) across the
//! paper's dataset families and methods, on the full machine. `CGAL` and
//! `Qhull` are stood in for by our optimized sequential quickhull (see
//! DESIGN.md §5).

use pargeo::datagen;
use pargeo::prelude::*;
use pargeo_bench::{env_n, header, max_threads, ms, time_best};

fn main() {
    let n = env_n(500_000);
    let big = 5 * n; // the paper's 100M rows are 10× its 10M rows
    let p = max_threads();
    println!("# Figure 8 — 2D convex hull, times in ms on {p} threads\n");
    let datasets: Vec<(String, Vec<Point2>)> = vec![
        (format!("2D-IS-{n}"), datagen::in_sphere::<2>(n, 1)),
        (format!("2D-OS-{n}"), datagen::on_sphere::<2>(n, 2)),
        (format!("2D-U-{n}"), datagen::uniform_cube::<2>(n, 3)),
        (format!("2D-OC-{n}"), datagen::on_cube::<2>(n, 4)),
        (format!("2D-OS-{big}"), datagen::on_sphere::<2>(big, 5)),
        (format!("2D-OC-{big}"), datagen::on_cube::<2>(big, 6)),
    ];
    header(&[
        "dataset",
        "SeqQuickhull (CGAL/Qhull)",
        "RandInc",
        "QuickHull",
        "DivideConquer",
        "hull size",
    ]);
    for (name, pts) in &datasets {
        let seq = time_best(2, || hull2d_seq(pts));
        let (randinc, quick, dnc, hull_len) = pargeo::parlay::with_threads(p, || {
            let ri = time_best(2, || hull2d_randinc(pts));
            let qh = time_best(2, || hull2d_quickhull_parallel(pts));
            let dc = time_best(2, || hull2d_divide_conquer(pts));
            (ri, qh, dc, hull2d_divide_conquer(pts).len())
        });
        println!(
            "| {name} | {} | {} | {} | {} | {hull_len} |",
            ms(seq),
            ms(randinc),
            ms(quick),
            ms(dnc)
        );
    }
}
