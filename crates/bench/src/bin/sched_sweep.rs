//! Scheduler sweep (DESIGN.md §2.8, EXPERIMENTS.md "sched_sweep"): the
//! work-stealing pool under two workloads at worker counts {1, 2, 4},
//! each on a dedicated pool so [`SchedStats`](pargeo::sched::SchedStats)
//! reads as a per-run delta.
//!
//! 1. **Fork-join microbench** — a balanced `rayon::join` tree-sum over
//!    `PARGEO_N` leaves with a deliberately non-commutative combine: the
//!    digest is order-sensitive, so a scheduler that perturbed the merge
//!    structure would be caught, not averaged away.
//! 2. **Skewed-shard workload** — per-shard cost grows quadratically with
//!    the shard index, driven through the lazy-splitting parallel
//!    iterator. A static split would strand the heavy tail on one worker;
//!    stealing is the whole point, and the steal counter is asserted
//!    non-zero at ≥2 workers.
//!
//! Both workloads reduce to a digest asserted identical across all worker
//! counts *before* anything is timed — every timed run is also a
//! correctness run. The iterator grain is pinned (`PARGEO_GRAIN`,
//! default 8) so recorded baselines don't depend on calibration noise.
//! On a single-core container wall times don't improve with workers;
//! the counters and digest anchors are the reproduction target.

use pargeo::sched;
use pargeo_bench::{env_n, header, time_best};
use rayon::prelude::*;

const WORKERS: [usize; 3] = [1, 2, 4];
/// Leaves folded sequentially at the bottom of the fork-join tree.
const LEAF_SPAN: u64 = 64;

/// SplitMix64 finalizer: cheap, statistically decent per-leaf hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Non-commutative, structure-following combine: `combine(a, b)` differs
/// from `combine(b, a)`, so the digest pins the merge order to the
/// recursion tree.
fn combine(a: u64, b: u64) -> u64 {
    mix(a.rotate_left(17) ^ b).wrapping_add(b)
}

/// Balanced fork-join tree-sum over leaves `[lo, hi)` via `rayon::join`.
/// Each leaf element spins the mixer a few rounds so the tree carries
/// real work, not just task overhead.
fn tree_digest(lo: u64, hi: u64) -> u64 {
    if hi - lo <= LEAF_SPAN {
        return (lo..hi).fold(0u64, |acc, i| {
            let mut h = i;
            for _ in 0..32 {
                h = mix(h);
            }
            combine(acc, h)
        });
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = rayon::join(|| tree_digest(lo, mid), || tree_digest(mid, hi));
    combine(a, b)
}

/// One shard's work: spin the mixer for a number of rounds that grows
/// quadratically with the shard index — the imbalance the lazy splitter
/// has to absorb.
fn shard_work(i: usize, shards: usize) -> u64 {
    let rounds = 64 + (i * i * 100_000) / (shards * shards);
    let mut h = i as u64;
    for _ in 0..rounds {
        h = mix(h);
    }
    h
}

/// Skewed-shard digest through the parallel-iterator layer. The combine
/// is associative (wrapping add), so any split depth the lazy splitter
/// picks yields the same value; the per-shard hashes make it
/// position-sensitive anyway.
fn skewed_digest(shards: usize) -> u64 {
    (0..shards)
        .into_par_iter()
        .map(|i| shard_work(i, shards).wrapping_add((i as u64) << 32))
        .reduce(|| 0u64, u64::wrapping_add)
}

fn pool(workers: usize, grain: usize) -> sched::Pool {
    sched::PoolBuilder::new()
        .num_threads(workers)
        .grain(grain)
        .build()
        .expect("dedicated bench pool")
}

fn main() {
    let n = env_n(200_000) as u64;
    let shards = ((n / 64) as usize).clamp(64, 4096);
    let grain = std::env::var("PARGEO_GRAIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8usize);
    println!(
        "# Work-stealing scheduler sweep — fork-join over {n} leaves + {shards} skewed shards, grain = {grain}\n"
    );

    // Digest anchors, outside the timed region: both workloads must be
    // bit-identical at every worker count.
    let want_tree = pool(1, grain).install(|| tree_digest(0, n));
    let want_skew = pool(1, grain).install(|| skewed_digest(shards));
    for w in WORKERS {
        let p = pool(w, grain);
        assert_eq!(
            p.install(|| tree_digest(0, n)),
            want_tree,
            "fork-join digest perturbed at {w} workers"
        );
        assert_eq!(
            p.install(|| skewed_digest(shards)),
            want_skew,
            "skewed-shard digest perturbed at {w} workers"
        );
    }
    println!("anchor: both workloads are bit-identical at 1, 2 and 4 workers\n");

    header(&[
        "Workload", "Workers", "Time (s)", "Tasks", "Steals", "Parks", "Digest",
    ]);
    let runs: [(&str, &(dyn Fn() -> u64 + Sync)); 2] = [
        ("fork-join", &|| tree_digest(0, n)),
        ("skewed-shard", &|| skewed_digest(shards)),
    ];
    for (name, run) in runs {
        for w in WORKERS {
            // Fresh pool per cell: SchedStats is a lifetime counter, so
            // on a dedicated pool it reads as this cell's delta.
            let p = pool(w, grain);
            let digest = p.install(run); // warmup + per-cell anchor
            assert_eq!(
                digest,
                if name == "fork-join" {
                    want_tree
                } else {
                    want_skew
                }
            );
            let t = time_best(2, || p.install(run));
            let s = p.stats();
            if name == "skewed-shard" && w >= 2 {
                // Acceptance criterion: work actually migrates off the
                // overloaded worker.
                assert!(
                    s.steals_total > 0,
                    "no steals on the skewed-shard workload at {w} workers"
                );
            }
            assert_eq!(s.per_worker_tasks.iter().sum::<u64>(), s.tasks_total);
            println!(
                "| {name} | {w} | {t:.3} | {} | {} | {} | {digest:016x} |",
                s.tasks_total, s.steals_total, s.parks_total
            );
        }
    }
    println!("\nanchor: skewed-shard steal counter non-zero at >=2 workers");
}
