//! Figure 14 / Appendix D reproduction: k-NN throughput vs k on trees
//! built through a sequence of 5% batch insertions (not one bulk build).
//! B2's skew shows up as the gap to B1/BDL.

use pargeo::datagen::{seed_spreader, uniform_cube, SeedSpreaderParams};
use pargeo::prelude::*;
use pargeo_bench::{env_n, header, max_threads, time};

fn bench<const D: usize>(label: &str, pts: &[Point<D>], p: usize) {
    let batch = (pts.len() / 20).max(1); // 5% batches
    let (b1, b2, bdl) = pargeo::parlay::with_threads(p, || {
        let mut b1 = B1Tree::<D>::new(SplitRule::ObjectMedian);
        let mut b2 = B2Tree::<D>::new(SplitRule::ObjectMedian);
        let mut bdl = BdlTree::<D>::new();
        for chunk in pts.chunks(batch) {
            b1.insert(chunk);
            b2.insert(chunk);
            bdl.insert(chunk);
        }
        (b1, b2, bdl)
    });
    println!("\n## {label} (incremental build, 5% batches)\n");
    let ks: Vec<usize> = (2..=11).collect();
    let mut cols = vec!["impl".to_string()];
    cols.extend(ks.iter().map(|k| format!("k={k}")));
    header(&cols.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    let n = pts.len() as f64;
    pargeo::parlay::with_threads(p, || {
        let mut row1 = vec!["B1-object".to_string()];
        let mut row2 = vec!["B2-object".to_string()];
        let mut row3 = vec!["BDL-object".to_string()];
        for &k in &ks {
            let (_, s) = time(|| b1.knn_batch(pts, k));
            row1.push(format!("{:.2e}", n / s));
            let (_, s) = time(|| b2.knn_batch(pts, k));
            row2.push(format!("{:.2e}", n / s));
            let (_, s) = time(|| bdl.knn_batch(pts, k));
            row3.push(format!("{:.2e}", n / s));
        }
        println!("| {} |", row1.join(" | "));
        println!("| {} |", row2.join(" | "));
        println!("| {} |", row3.join(" | "));
    });
}

fn main() {
    let n = env_n(100_000);
    let p = max_threads();
    println!("# Figure 14 — k-NN throughput (queries/s) vs k on {p} threads");
    let v2 = seed_spreader::<2>(n, 1, SeedSpreaderParams::default());
    bench("2D-V (seed spreader)", &v2, p);
    let u7 = uniform_cube::<7>(n, 2);
    bench("7D-U", &u7, p);
}
