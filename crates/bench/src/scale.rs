//! Shared definition of the `scale_sweep` workload.
//!
//! The sweep's answer digests only prove layout changes harmless if the
//! workload itself is frozen: every run — old layout or new, smoke tier or
//! full — must generate bit-identical data, queries, and boxes. That
//! definition lives here, in one place, instead of inside the binary.
//!
//! Frame convention: the data cube is `[0, √n]^2` (the paper's density
//! normalization). Queries and boxes are generated at a fixed count and
//! rescaled into the data frame by a single multiply, so their bit
//! patterns depend only on `(count, seed, n)` — never on how the data was
//! chunked or which backend serves them.

use pargeo::datagen::{cube_side, uniform_cube, uniform_rects};
use pargeo::kdtree::Neighbor;
use pargeo::parlay::mix64 as mix;
use pargeo::prelude::{Bbox, Point2};

/// The sweep's size tiers: the ROADMAP's three-orders-of-magnitude ladder.
pub const TIERS: [usize; 3] = [100_000, 1_000_000, 10_000_000];

/// Points per insert batch — also the chunked-datagen chunk size, so a
/// 10^7-point stream never materializes twice.
pub const CHUNK: usize = 100_000;

/// Queries per tier (both k-NN points and range boxes).
pub const N_QUERIES: usize = 1_000;

/// Neighbors per k-NN query.
pub const KNN_K: usize = 8;

/// Seed of the data stream (chunk `c` covers indices `[c·CHUNK, …)`).
pub const DATA_SEED: u64 = 42;

const QUERY_SEED: u64 = 9_001;
const BOX_SEED: u64 = 9_002;

/// Range boxes span up to this fraction of the query frame's side per
/// axis (≈0.01% of the area), keeping report sizes O(1) as n grows.
const BOX_FRAC: f64 = 0.01;

/// Size tiers selected by `PARGEO_SCALE`: `full` runs all three tiers,
/// `smoke` only 10^5; the default (CI) runs 10^5 and 10^6.
pub fn tiers() -> Vec<usize> {
    match std::env::var("PARGEO_SCALE").as_deref() {
        Ok("full") => TIERS.to_vec(),
        Ok("smoke") => vec![TIERS[0]],
        _ => vec![TIERS[0], TIERS[1]],
    }
}

#[inline]
fn rescale(p: Point2, s: f64) -> Point2 {
    Point2::new([p.coords[0] * s, p.coords[1] * s])
}

/// The tier's k-NN query points: `N_QUERIES` uniform points rescaled into
/// the data frame `[0, √n]^2`.
pub fn knn_queries(n: usize) -> Vec<Point2> {
    let s = cube_side(n) / cube_side(N_QUERIES);
    uniform_cube::<2>(N_QUERIES, QUERY_SEED)
        .into_iter()
        .map(|p| rescale(p, s))
        .collect()
}

/// The tier's range boxes, rescaled into the data frame.
pub fn range_boxes(n: usize) -> Vec<Bbox<2>> {
    let s = cube_side(n) / cube_side(N_QUERIES);
    uniform_rects::<2>(N_QUERIES, BOX_SEED, BOX_FRAC)
        .into_iter()
        .map(|b| Bbox {
            min: rescale(b.min, s),
            max: rescale(b.max, s),
        })
        .collect()
}

/// Order-sensitive digest of every reported neighbor id (the
/// `WorkloadReport` fold, applied to one batch).
pub fn knn_digest(rows: &[Vec<Neighbor>]) -> u64 {
    let mut h = 0u64;
    for row in rows {
        for nb in row {
            h = mix(h, nb.id as u64);
        }
    }
    h
}

/// Order-sensitive digest of every reported range id.
pub fn range_digest(rows: &[Vec<u32>]) -> u64 {
    let mut h = 0u64;
    for row in rows {
        for id in row {
            h = mix(h, *id as u64);
        }
    }
    h
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 where unavailable (non-Linux).
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Resets the kernel's peak-RSS watermark (Linux: writing `5` to
/// `/proc/self/clear_refs`), so per-phase peaks don't inherit an earlier
/// phase's high-water mark. Returns false (and the sweep reports monotone
/// peaks) where unsupported.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_frozen() {
        // The digests recorded in BENCH_scale.json stay comparable across
        // sessions only if these streams never change.
        let q = knn_queries(TIERS[0]);
        let b = range_boxes(TIERS[0]);
        assert_eq!(q.len(), N_QUERIES);
        assert_eq!(b.len(), N_QUERIES);
        assert_eq!(q, knn_queries(TIERS[0]));
        let side = cube_side(TIERS[0]);
        assert!(q
            .iter()
            .all(|p| p.coords.iter().all(|&c| (0.0..=side).contains(&c))));
        assert!(b
            .iter()
            .all(|bx| bx.max.coords[0] - bx.min.coords[0] <= BOX_FRAC * side));
    }

    #[test]
    fn rss_probe_reports_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes() > 0);
        }
    }
}
