//! Criterion companion to Figure 10: SEB methods across dataset families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pargeo::datagen;
use pargeo::prelude::*;
use pargeo::seb::seb_welzl_parallel_mtf;
use std::hint::black_box;

fn bench_n() -> usize {
    std::env::var("PARGEO_BENCH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000)
}

fn fig10(c: &mut Criterion) {
    let n = bench_n();
    let datasets: Vec<(&str, Vec<Point3>)> = vec![
        ("3D-IS", datagen::in_sphere::<3>(n, 1)),
        ("3D-OS", datagen::on_sphere::<3>(n, 2)),
        ("3D-U", datagen::uniform_cube::<3>(n, 3)),
        ("3D-Statue", datagen::statue_surface(n, 4)),
    ];
    let methods: Vec<(&str, fn(&[Point3]) -> Ball<3>)> = vec![
        ("WelzlSeq", seb_welzl_seq),
        ("Welzl", seb_welzl_parallel),
        ("WelzlMtf", seb_welzl_parallel_mtf),
        ("WelzlMtfPivot", seb_welzl_parallel_mtf_pivot),
        ("Scan", seb_orthant_scan),
        ("Sampling", seb_sampling),
    ];
    let mut g = c.benchmark_group("fig10_seb");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (ds, pts) in &datasets {
        for (m, f) in &methods {
            g.bench_with_input(BenchmarkId::new(*m, ds), pts, |b, pts| {
                b.iter(|| f(black_box(pts)).radius)
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
