//! Criterion companion to Figure 14: k-NN throughput vs k after
//! incremental (5% batch) construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pargeo::datagen::{seed_spreader, SeedSpreaderParams};
use pargeo::prelude::*;
use std::hint::black_box;

fn bench_n() -> usize {
    std::env::var("PARGEO_BENCH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

fn fig14(c: &mut Criterion) {
    let n = bench_n();
    let pts = seed_spreader::<2>(n, 1, SeedSpreaderParams::default());
    let batch = (n / 20).max(1);
    let mut b1 = B1Tree::<2>::new(SplitRule::ObjectMedian);
    let mut b2 = B2Tree::<2>::new(SplitRule::ObjectMedian);
    let mut bdl = BdlTree::<2>::new();
    for chunk in pts.chunks(batch) {
        b1.insert(chunk);
        b2.insert(chunk);
        bdl.insert(chunk);
    }
    let mut g = c.benchmark_group("fig14_knn_k");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for k in [2usize, 5, 8, 11] {
        g.bench_with_input(BenchmarkId::new("B1", k), &k, |b, &k| {
            b.iter(|| b1.knn_batch(black_box(&pts), k).len())
        });
        g.bench_with_input(BenchmarkId::new("B2", k), &k, |b, &k| {
            b.iter(|| b2.knn_batch(black_box(&pts), k).len())
        });
        g.bench_with_input(BenchmarkId::new("BDL", k), &k, |b, &k| {
            b.iter(|| bdl.knn_batch(black_box(&pts), k).len())
        });
    }
    g.finish();
}

criterion_group!(benches, fig14);
criterion_main!(benches);
