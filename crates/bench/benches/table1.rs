//! Criterion companion to the `table1` binary: micro-scale versions of
//! every Table 1 row (run `cargo bench` for statistics; run the binary for
//! the paper-style T1/Tp table).

use criterion::{criterion_group, criterion_main, Criterion};
use pargeo::prelude::*;
use std::hint::black_box;

fn bench_n() -> usize {
    std::env::var("PARGEO_BENCH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

fn table1(c: &mut Criterion) {
    let n = bench_n();
    let pts2 = pargeo::datagen::uniform_cube::<2>(n, 1);
    let pts3 = pargeo::datagen::uniform_cube::<3>(n, 2);
    let pts5 = pargeo::datagen::uniform_cube::<5>(n, 3);
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));

    g.bench_function("kdtree_build_2d", |b| {
        b.iter(|| KdTree::build(black_box(&pts2), SplitRule::ObjectMedian))
    });
    g.bench_function("kdtree_build_5d", |b| {
        b.iter(|| KdTree::build(black_box(&pts5), SplitRule::ObjectMedian))
    });
    let tree2 = KdTree::build(&pts2, SplitRule::ObjectMedian);
    g.bench_function("kdtree_knn_2d_k5", |b| {
        b.iter(|| tree2.knn_batch(black_box(&pts2), 5))
    });
    let r = pargeo::datagen::cube_side(n) * 0.01;
    let queries: Vec<(Point2, f64)> = pts2.iter().map(|&p| (p, r)).collect();
    g.bench_function("kdtree_range_2d", |b| {
        b.iter(|| tree2.range_ball_batch(black_box(&queries)))
    });
    g.bench_function("bdl_construct_5d", |b| {
        b.iter(|| BdlTree::from_points(black_box(&pts5)))
    });
    g.bench_function("bdl_insert_5d_10pct", |b| {
        b.iter(|| {
            let mut t = BdlTree::<5>::new();
            for chunk in pts5.chunks(n / 10) {
                t.insert(chunk);
            }
            t.len()
        })
    });
    g.bench_function("bdl_delete_5d_10pct", |b| {
        b.iter(|| {
            let mut t = BdlTree::from_points(&pts5);
            for chunk in pts5.chunks(n / 10) {
                t.delete(chunk);
            }
            t.len()
        })
    });
    g.bench_function("wspd_2d", |b| {
        b.iter(|| wspd(black_box(&pts2), 2.0).1.len())
    });
    g.bench_function("emst_2d", |b| b.iter(|| emst(black_box(&pts2)).len()));
    g.bench_function("hull_2d", |b| {
        b.iter(|| hull2d_divide_conquer(black_box(&pts2)).len())
    });
    g.bench_function("hull_3d", |b| {
        b.iter(|| hull3d_divide_conquer(black_box(&pts3)).num_vertices())
    });
    g.bench_function("seb_2d", |b| {
        b.iter(|| seb_sampling(black_box(&pts2)).radius)
    });
    g.bench_function("seb_5d", |b| {
        b.iter(|| seb_sampling(black_box(&pts5)).radius)
    });
    g.bench_function("closest_pair_2d", |b| {
        b.iter(|| closest_pair(black_box(&pts2)).dist)
    });
    g.bench_function("knn_graph_2d_k5", |b| {
        b.iter(|| knn_graph(black_box(&pts2), 5).len())
    });
    g.bench_function("delaunay_2d", |b| {
        b.iter(|| pargeo::delaunay::delaunay(black_box(&pts2)).len())
    });
    g.bench_function("spanner_2d_t2", |b| {
        b.iter(|| spanner(black_box(&pts2), 2.0).len())
    });
    g.bench_function("morton_sort_2d", |b| {
        b.iter(|| {
            let mut v = pts2.clone();
            pargeo::morton::morton_sort(&mut v).len()
        })
    });
    g.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
