//! Criterion companion to Figure 8: 2D hull methods across dataset
//! families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pargeo::datagen;
use pargeo::prelude::*;
use std::hint::black_box;

fn bench_n() -> usize {
    std::env::var("PARGEO_BENCH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000)
}

fn fig8(c: &mut Criterion) {
    let n = bench_n();
    let datasets: Vec<(&str, Vec<Point2>)> = vec![
        ("2D-IS", datagen::in_sphere::<2>(n, 1)),
        ("2D-OS", datagen::on_sphere::<2>(n, 2)),
        ("2D-U", datagen::uniform_cube::<2>(n, 3)),
        ("2D-OC", datagen::on_cube::<2>(n, 4)),
    ];
    let methods: Vec<(&str, fn(&[Point2]) -> Vec<u32>)> = vec![
        ("SeqQuickhull", hull2d_seq),
        ("RandInc", hull2d_randinc),
        ("QuickHull", hull2d_quickhull_parallel),
        ("DivideConquer", hull2d_divide_conquer),
    ];
    let mut g = c.benchmark_group("fig8_hull2d");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (ds, pts) in &datasets {
        for (m, f) in &methods {
            g.bench_with_input(BenchmarkId::new(*m, ds), pts, |b, pts| {
                b.iter(|| f(black_box(pts)).len())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
