//! Criterion companion to Figure 9: 3D hull methods across dataset
//! families (statue = Thai/Dragon stand-in).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pargeo::datagen;
use pargeo::prelude::*;
use std::hint::black_box;

fn bench_n() -> usize {
    std::env::var("PARGEO_BENCH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

fn fig9(c: &mut Criterion) {
    let n = bench_n();
    let datasets: Vec<(&str, Vec<Point3>)> = vec![
        ("3D-IS", datagen::in_sphere::<3>(n, 1)),
        ("3D-OS", datagen::on_sphere::<3>(n, 2)),
        ("3D-U", datagen::uniform_cube::<3>(n, 3)),
        ("3D-OC", datagen::on_cube::<3>(n, 4)),
        ("3D-Statue", datagen::statue_surface(n, 5)),
    ];
    let methods: Vec<(&str, fn(&[Point3]) -> Hull3d)> = vec![
        ("SeqQuickhull", hull3d_seq),
        ("RandInc", hull3d_randinc),
        ("QuickHull", hull3d_quickhull_parallel),
        ("DivideConquer", hull3d_divide_conquer),
        ("Pseudo", hull3d_pseudo),
    ];
    let mut g = c.benchmark_group("fig9_hull3d");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (ds, pts) in &datasets {
        for (m, f) in &methods {
            g.bench_with_input(BenchmarkId::new(*m, ds), pts, |b, pts| {
                b.iter(|| f(black_box(pts)).num_vertices())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
