//! Criterion companion to Figure 11: batch-dynamic tree operations
//! (B1 / B2 / BDL, object median) on 7D uniform data, plus the buffer-size
//! ablation called out in DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pargeo::datagen::uniform_cube;
use pargeo::prelude::*;
use std::hint::black_box;

fn bench_n() -> usize {
    std::env::var("PARGEO_BENCH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

fn fig11(c: &mut Criterion) {
    let n = bench_n();
    let pts = uniform_cube::<7>(n, 1);
    let batch = n / 10;
    let mut g = c.benchmark_group("fig11_bdltree");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));

    g.bench_function("B1_construct", |b| {
        b.iter(|| B1Tree::from_points(black_box(&pts), SplitRule::ObjectMedian).len())
    });
    g.bench_function("B2_construct", |b| {
        b.iter(|| B2Tree::from_points(black_box(&pts), SplitRule::ObjectMedian).len())
    });
    g.bench_function("BDL_construct", |b| {
        b.iter(|| BdlTree::from_points(black_box(&pts)).len())
    });

    g.bench_function("B1_insert_batches", |b| {
        b.iter(|| {
            let mut t = B1Tree::new(SplitRule::ObjectMedian);
            for chunk in pts.chunks(batch) {
                t.insert(chunk);
            }
            t.len()
        })
    });
    g.bench_function("B2_insert_batches", |b| {
        b.iter(|| {
            let mut t = B2Tree::new(SplitRule::ObjectMedian);
            for chunk in pts.chunks(batch) {
                t.insert(chunk);
            }
            t.len()
        })
    });
    g.bench_function("BDL_insert_batches", |b| {
        b.iter(|| {
            let mut t = BdlTree::<7>::new();
            for chunk in pts.chunks(batch) {
                t.insert(chunk);
            }
            t.len()
        })
    });

    g.bench_function("B1_delete_batches", |b| {
        b.iter(|| {
            let mut t = B1Tree::from_points(&pts, SplitRule::ObjectMedian);
            for chunk in pts.chunks(batch) {
                t.delete(chunk);
            }
            t.len()
        })
    });
    g.bench_function("BDL_delete_batches", |b| {
        b.iter(|| {
            let mut t = BdlTree::from_points(&pts);
            for chunk in pts.chunks(batch) {
                t.delete(chunk);
            }
            t.len()
        })
    });

    let b1 = B1Tree::from_points(&pts, SplitRule::ObjectMedian);
    let bdl = BdlTree::from_points(&pts);
    g.bench_function("B1_knn_k5", |b| {
        b.iter(|| b1.knn_batch(black_box(&pts), 5).len())
    });
    g.bench_function("BDL_knn_k5", |b| {
        b.iter(|| bdl.knn_batch(black_box(&pts), 5).len())
    });

    // Ablation: BDL buffer size X.
    for x in [64usize, 256, 1024, 4096] {
        g.bench_with_input(BenchmarkId::new("BDL_insert_bufsize", x), &x, |b, &x| {
            b.iter(|| {
                let mut t = BdlTree::<7>::with_buffer_size(x);
                for chunk in pts.chunks(batch) {
                    t.insert(chunk);
                }
                t.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
