//! Mixed-workload generators for the batch-dynamic engine.
//!
//! A [`WorkloadSpec`] describes a stream of batched operations — inserts,
//! value-deletes, k-NN query batches, and orthogonal range query batches —
//! over one of the paper's point distributions, with two serving-style
//! twists the static figures never exercise:
//!
//! * **sliding-window churn** — deletes target the *oldest* live points
//!   (FIFO expiry), the telemetry/robotics pattern where data ages out;
//! * **query hotspots** — a configurable fraction of queries concentrates
//!   in a small subregion, the skew real read traffic shows.
//!
//! [`WorkloadSpec::generate`] expands the spec into a concrete, fully
//! deterministic [`Workload`] (same seed ⇒ same ops, regardless of thread
//! count), which `pargeo-engine`'s driver replays against any
//! `SpatialIndex` backend. [`WorkloadSpec::presets`] names the standard
//! scenario set the `dyn_engine` bench sweeps.

use crate::SeedSpreaderParams;
use crate::{cube_side, in_sphere, on_cube, on_sphere, seed_spreader, uniform_cube};
use pargeo_geometry::{Bbox, Point};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// The point-data families of the paper's evaluation (§6 "Data Sets"),
/// selectable per workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// **U** — uniform in a hypercube ([`uniform_cube`]).
    UniformCube,
    /// **IS** — uniform inside a hypersphere ([`in_sphere`]).
    InSphere,
    /// **OS** — on a hypersphere shell ([`on_sphere`]).
    OnSphere,
    /// **OC** — on the hypercube surface ([`on_cube`]).
    OnCube,
    /// **V** — Gan–Tao seed-spreader clusters ([`seed_spreader`]).
    SeedSpreader,
}

impl Distribution {
    /// Generates `n` points of this family with the given seed.
    pub fn points<const D: usize>(self, n: usize, seed: u64) -> Vec<Point<D>> {
        match self {
            Distribution::UniformCube => uniform_cube(n, seed),
            Distribution::InSphere => in_sphere(n, seed),
            Distribution::OnSphere => on_sphere(n, seed),
            Distribution::OnCube => on_cube(n, seed),
            Distribution::SeedSpreader => seed_spreader(n, seed, SeedSpreaderParams::default()),
        }
    }

    /// Short label for tables and reports.
    pub fn label(self) -> &'static str {
        match self {
            Distribution::UniformCube => "U",
            Distribution::InSphere => "IS",
            Distribution::OnSphere => "OS",
            Distribution::OnCube => "OC",
            Distribution::SeedSpreader => "V",
        }
    }
}

/// How the query half of a workload splits between k-NN and range search.
#[derive(Debug, Clone, Copy)]
pub struct QueryMix {
    /// Fraction of query batches that are k-NN (the rest are range).
    pub knn_frac: f64,
    /// `k` for the k-NN batches.
    pub k: usize,
    /// Range-query box side, as a fraction of the domain side.
    pub range_extent: f64,
}

impl Default for QueryMix {
    fn default() -> Self {
        Self {
            knn_frac: 0.5,
            k: 8,
            range_extent: 0.05,
        }
    }
}

/// A whole-dataset derived structure requested by a workload — the
/// analytics half of mixed serving traffic, executed by `pargeo-store`'s
/// `GeoStore` (the engine's index-only driver skips them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DerivedOp {
    /// Convex hull of the live set.
    Hull,
    /// Smallest enclosing ball of the live set.
    Seb,
    /// Closest pair of the live set.
    ClosestPair,
    /// Euclidean minimum spanning tree of the live set.
    Emst,
    /// Directed k-NN graph with this `k`.
    KnnGraph(usize),
    /// Delaunay edge graph (2D point sets only).
    DelaunayGraph,
}

/// A skewed read region: a sub-box of the domain that attracts a fixed
/// fraction of all queries.
#[derive(Debug, Clone, Copy)]
pub struct Hotspot {
    /// Fraction of queries drawn from the hotspot region.
    pub frac: f64,
    /// Hotspot side length as a fraction of the domain side.
    pub extent: f64,
}

/// Declarative description of a mixed batch-dynamic workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Scenario name (used in bench tables and reports).
    pub name: String,
    /// Initial bulk-load size (inserted as one batch before the op stream).
    pub initial: usize,
    /// Number of operation batches after the initial load.
    pub batches: usize,
    /// Points (or queries) per batch.
    pub batch_size: usize,
    /// Probability that a batch is an insert.
    pub insert_frac: f64,
    /// Probability that a batch is a delete (`insert_frac + delete_frac ≤
    /// 1`; the remainder are query batches).
    pub delete_frac: f64,
    /// Point-data family for inserts.
    pub dist: Distribution,
    /// Query-side composition.
    pub query: QueryMix,
    /// Fraction of query batches that request a whole-dataset derived
    /// structure (hull, SEB, closest pair, EMST, k-NN graph, Delaunay)
    /// instead of point queries. The analytics share of mixed traffic;
    /// `0.0` (the default) reproduces the index-only streams.
    pub derived_frac: f64,
    /// When true, deletes expire the oldest live points (FIFO) instead of
    /// uniformly random victims.
    pub sliding_window: bool,
    /// Optional query-skew region.
    pub hotspot: Option<Hotspot>,
    /// Optional *write*-skew region: after the initial load (which keeps
    /// the base distribution, so a store's routing universe still spans
    /// the full domain), this fraction of op-stream insert points is
    /// squeezed into a small sub-box — the "hot shard" pattern where one
    /// spatial region absorbs most write traffic. `None` (the default)
    /// leaves every stream bit-identical to the pre-skew generator.
    pub write_hotspot: Option<Hotspot>,
    /// Master seed; everything derives deterministically from it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A balanced default spec over the given distribution: half queries,
    /// 30% inserts, 20% random deletes.
    pub fn new(name: &str, dist: Distribution, initial: usize, batches: usize) -> Self {
        Self {
            name: name.to_string(),
            initial,
            batches,
            batch_size: (initial / batches.max(1)).max(1),
            insert_frac: 0.3,
            delete_frac: 0.2,
            dist,
            query: QueryMix::default(),
            derived_frac: 0.0,
            sliding_window: false,
            hotspot: None,
            write_hotspot: None,
            seed: 42,
        }
    }

    /// The named scenario set the `dyn_engine` bench sweeps, scaled so the
    /// initial load is `n/2` points and the op stream touches about `n`
    /// more.
    pub fn presets(n: usize) -> Vec<WorkloadSpec> {
        let initial = (n / 2).max(64);
        let batches = 20;
        let mut uniform =
            WorkloadSpec::new("uniform-mixed", Distribution::UniformCube, initial, batches);
        uniform.seed = 101;

        let mut insert_heavy =
            WorkloadSpec::new("insert-heavy-IS", Distribution::InSphere, initial, batches);
        insert_heavy.insert_frac = 0.7;
        insert_heavy.delete_frac = 0.1;
        insert_heavy.seed = 102;

        let mut window = WorkloadSpec::new(
            "sliding-window",
            Distribution::UniformCube,
            initial,
            batches,
        );
        window.insert_frac = 0.4;
        window.delete_frac = 0.4;
        window.sliding_window = true;
        window.seed = 103;

        let mut hotspot = WorkloadSpec::new("hotspot-read", Distribution::OnCube, initial, batches);
        hotspot.insert_frac = 0.1;
        hotspot.delete_frac = 0.1;
        hotspot.hotspot = Some(Hotspot {
            frac: 0.9,
            extent: 0.05,
        });
        hotspot.seed = 104;

        let mut spreader = WorkloadSpec::new(
            "seed-spreader-churn",
            Distribution::SeedSpreader,
            initial,
            batches,
        );
        spreader.insert_frac = 0.4;
        spreader.delete_frac = 0.3;
        spreader.seed = 105;

        vec![uniform, insert_heavy, window, hotspot, spreader]
    }

    /// The named scenario set the `geostore` bench sweeps: the engine's
    /// serving axes plus a derived-structure (analytics) share, so the
    /// store's planner and memo cache see realistic mixed traffic.
    pub fn store_presets(n: usize) -> Vec<WorkloadSpec> {
        let initial = (n / 2).max(64);
        let batches = 24;

        let mut mixed =
            WorkloadSpec::new("mixed-serving", Distribution::UniformCube, initial, batches);
        mixed.derived_frac = 0.25;
        mixed.seed = 201;

        let mut analytics =
            WorkloadSpec::new("analytics-heavy", Distribution::InSphere, initial, batches);
        analytics.insert_frac = 0.15;
        analytics.delete_frac = 0.05;
        analytics.derived_frac = 0.7;
        analytics.seed = 202;

        let mut churn = WorkloadSpec::new(
            "churn-analytics",
            Distribution::UniformCube,
            initial,
            batches,
        );
        churn.insert_frac = 0.35;
        churn.delete_frac = 0.35;
        churn.sliding_window = true;
        churn.derived_frac = 0.5;
        churn.seed = 203;

        let mut hotspot =
            WorkloadSpec::new("hotspot-serving", Distribution::OnCube, initial, batches);
        hotspot.insert_frac = 0.1;
        hotspot.delete_frac = 0.1;
        hotspot.derived_frac = 0.15;
        hotspot.hotspot = Some(Hotspot {
            frac: 0.9,
            extent: 0.05,
        });
        hotspot.seed = 204;

        let mut spreader = WorkloadSpec::new(
            "spreader-analytics",
            Distribution::SeedSpreader,
            initial,
            batches,
        );
        spreader.insert_frac = 0.3;
        spreader.delete_frac = 0.25;
        spreader.derived_frac = 0.35;
        spreader.seed = 205;

        // The sharding stressor: most op-stream inserts (and most reads)
        // pile onto one tiny region, so one shard absorbs the write
        // traffic while the initial load keeps the full domain populated.
        let mut hot_shard =
            WorkloadSpec::new("hotspot-shard", Distribution::UniformCube, initial, batches);
        hot_shard.insert_frac = 0.45;
        hot_shard.delete_frac = 0.15;
        hot_shard.derived_frac = 0.35;
        hot_shard.write_hotspot = Some(Hotspot {
            frac: 0.85,
            extent: 0.05,
        });
        hot_shard.hotspot = Some(Hotspot {
            frac: 0.8,
            extent: 0.08,
        });
        hot_shard.seed = 253;

        vec![mixed, analytics, churn, hotspot, spreader, hot_shard]
    }

    /// Expands the spec into a concrete operation stream.
    ///
    /// Deterministic in `seed` and independent of thread count. Panics if
    /// `insert_frac + delete_frac > 1` or either is negative.
    pub fn generate<const D: usize>(&self) -> Workload<D> {
        assert!(self.insert_frac >= 0.0 && self.delete_frac >= 0.0);
        assert!(self.insert_frac + self.delete_frac <= 1.0 + 1e-12);
        let pool_size = self.initial + self.batches * self.batch_size;
        let pool = self.dist.points::<D>(pool_size, self.seed);
        let side = cube_side(pool_size);
        let domain = Bbox::from_points(&pool);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        // Hotspot regions: random sub-boxes of the domain. The query box
        // is drawn first, then (only when write skew is requested, so
        // skew-free streams stay bit-identical) the write box.
        let hot_box = self.hotspot.map(|h| sub_box(&mut rng, &domain, h.extent));
        let write_box = self
            .write_hotspot
            .map(|h| sub_box(&mut rng, &domain, h.extent));

        let mut cursor = 0usize; // next fresh pool point
        let mut live: VecDeque<Point<D>> = VecDeque::new();
        let take = |cursor: &mut usize, want: usize| -> Vec<Point<D>> {
            let got = want.min(pool_size - *cursor);
            let batch = pool[*cursor..*cursor + got].to_vec();
            *cursor += got;
            batch
        };

        // The initial load keeps the base distribution even under write
        // skew: it spans the full domain, so an index universe derived
        // from it covers the op stream's hotspot too.
        let initial = take(&mut cursor, self.initial);
        live.extend(initial.iter().copied());
        let mut ops: Vec<WorkloadOp<D>> = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let r: f64 = rng.gen();
            if r < self.insert_frac && cursor < pool_size {
                let mut batch = take(&mut cursor, self.batch_size);
                if let (Some(wb), Some(h)) = (write_box, self.write_hotspot) {
                    // Squeeze this fraction of fresh points into the hot
                    // box (an affine map — distinct points stay distinct,
                    // so delete-by-value semantics are unchanged).
                    for p in batch.iter_mut() {
                        if rng.gen::<f64>() < h.frac {
                            for d in 0..D {
                                let side = (domain.max[d] - domain.min[d]).max(f64::MIN_POSITIVE);
                                let t = (p[d] - domain.min[d]) / side;
                                p[d] = wb.min[d] + t * (wb.max[d] - wb.min[d]);
                            }
                        }
                    }
                }
                live.extend(batch.iter().copied());
                ops.push(WorkloadOp::Insert(batch));
            } else if r < self.insert_frac + self.delete_frac && !live.is_empty() {
                let want = self.batch_size.min(live.len());
                let batch: Vec<Point<D>> = if self.sliding_window {
                    live.drain(..want).collect()
                } else {
                    (0..want)
                        .map(|_| {
                            let i = rng.gen_range(0..live.len());
                            live.swap_remove_back(i).unwrap()
                        })
                        .collect()
                };
                ops.push(WorkloadOp::Delete(batch));
            } else if self.derived_frac > 0.0 && rng.gen::<f64>() < self.derived_frac {
                let palette = [
                    DerivedOp::Hull,
                    DerivedOp::Seb,
                    DerivedOp::ClosestPair,
                    DerivedOp::Emst,
                    DerivedOp::KnnGraph(self.query.k.max(1)),
                    DerivedOp::DelaunayGraph,
                ];
                ops.push(WorkloadOp::Derived(
                    palette[rng.gen_range(0..palette.len())],
                ));
            } else {
                let centers: Vec<Point<D>> = (0..self.batch_size)
                    .map(|_| {
                        let region = match (hot_box, self.hotspot) {
                            (Some(hb), Some(h)) if rng.gen::<f64>() < h.frac => hb,
                            _ => domain,
                        };
                        let mut c = [0.0; D];
                        for d in 0..D {
                            c[d] =
                                region.min[d] + rng.gen::<f64>() * (region.max[d] - region.min[d]);
                        }
                        Point::new(c)
                    })
                    .collect();
                if rng.gen::<f64>() < self.query.knn_frac {
                    ops.push(WorkloadOp::Knn(centers, self.query.k.max(1)));
                } else {
                    let half = 0.5 * self.query.range_extent * side;
                    let boxes = centers
                        .into_iter()
                        .map(|c| {
                            let mut lo = [0.0; D];
                            let mut hi = [0.0; D];
                            for d in 0..D {
                                lo[d] = c[d] - half;
                                hi[d] = c[d] + half;
                            }
                            Bbox {
                                min: Point::new(lo),
                                max: Point::new(hi),
                            }
                        })
                        .collect();
                    ops.push(WorkloadOp::Range(boxes));
                }
            }
        }
        Workload { initial, ops }
    }
}

/// A random `extent`-sided sub-box of the domain (one `gen` per
/// dimension — the draw order every pre-existing stream depends on).
fn sub_box<const D: usize>(rng: &mut ChaCha8Rng, domain: &Bbox<D>, extent: f64) -> Bbox<D> {
    let mut min = [0.0; D];
    let mut max = [0.0; D];
    for d in 0..D {
        let side = (domain.max[d] - domain.min[d]) * extent;
        let lo = domain.min[d] + rng.gen::<f64>() * (domain.max[d] - domain.min[d] - side).max(0.0);
        min[d] = lo;
        max[d] = lo + side;
    }
    Bbox {
        min: Point::new(min),
        max: Point::new(max),
    }
}

/// One batched operation of a generated workload.
#[derive(Debug, Clone)]
pub enum WorkloadOp<const D: usize> {
    /// Insert this batch of fresh points.
    Insert(Vec<Point<D>>),
    /// Delete these points by value.
    Delete(Vec<Point<D>>),
    /// Answer a k-NN batch (`queries`, `k`).
    Knn(Vec<Point<D>>, usize),
    /// Answer an orthogonal range-report batch.
    Range(Vec<Bbox<D>>),
    /// Compute a whole-dataset derived structure over the live set
    /// (served by `pargeo-store`; index-only drivers skip it).
    Derived(DerivedOp),
}

/// A concrete, replayable operation stream produced by
/// [`WorkloadSpec::generate`].
#[derive(Debug, Clone)]
pub struct Workload<const D: usize> {
    /// Bulk load applied before the op stream.
    pub initial: Vec<Point<D>>,
    /// The operation batches, in order.
    pub ops: Vec<WorkloadOp<D>>,
}

impl<const D: usize> Workload<D> {
    /// Counts of (insert, delete, knn, range) batches in the stream
    /// (derived-structure batches are counted by [`derived_count`][d]).
    ///
    /// [d]: Workload::derived_count
    pub fn op_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for op in &self.ops {
            match op {
                WorkloadOp::Insert(_) => c.0 += 1,
                WorkloadOp::Delete(_) => c.1 += 1,
                WorkloadOp::Knn(..) => c.2 += 1,
                WorkloadOp::Range(_) => c.3 += 1,
                WorkloadOp::Derived(_) => {}
            }
        }
        c
    }

    /// Number of derived-structure batches in the stream.
    pub fn derived_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, WorkloadOp::Derived(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        let mut s = WorkloadSpec::new("t", Distribution::UniformCube, 1_000, 30);
        s.seed = 7;
        s
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Workload<2> = spec().generate();
        let b: Workload<2> = spec().generate();
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.ops.len(), b.ops.len());
        for (x, y) in a.ops.iter().zip(&b.ops) {
            match (x, y) {
                (WorkloadOp::Insert(p), WorkloadOp::Insert(q)) => assert_eq!(p, q),
                (WorkloadOp::Delete(p), WorkloadOp::Delete(q)) => assert_eq!(p, q),
                (WorkloadOp::Knn(p, k), WorkloadOp::Knn(q, l)) => {
                    assert_eq!(p, q);
                    assert_eq!(k, l);
                }
                (WorkloadOp::Range(p), WorkloadOp::Range(q)) => assert_eq!(p, q),
                _ => panic!("op kind mismatch"),
            }
        }
        let mut c = spec();
        c.seed = 8;
        let w: Workload<2> = c.generate();
        assert_ne!(w.initial, a.initial);
    }

    #[test]
    fn deletes_only_target_live_points() {
        // Replay the stream against a multiset; every delete victim must be
        // currently live.
        let mut s = spec();
        s.delete_frac = 0.4;
        let w: Workload<2> = s.generate();
        let mut live: std::collections::HashMap<[u64; 2], usize> = std::collections::HashMap::new();
        let key = |p: &Point<2>| [p[0].to_bits(), p[1].to_bits()];
        for p in &w.initial {
            *live.entry(key(p)).or_insert(0) += 1;
        }
        for op in &w.ops {
            match op {
                WorkloadOp::Insert(batch) => {
                    for p in batch {
                        *live.entry(key(p)).or_insert(0) += 1;
                    }
                }
                WorkloadOp::Delete(batch) => {
                    for p in batch {
                        let c = live.get_mut(&key(p)).expect("delete of non-live point");
                        *c -= 1;
                        if *c == 0 {
                            live.remove(&key(p));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn sliding_window_deletes_oldest_first() {
        let mut s = spec();
        s.sliding_window = true;
        s.insert_frac = 0.0;
        s.delete_frac = 1.0;
        let w: Workload<2> = s.generate();
        // With only deletes, victims must replay the initial load in order.
        let mut expect = w.initial.iter();
        for op in &w.ops {
            if let WorkloadOp::Delete(batch) = op {
                for p in batch {
                    assert_eq!(Some(p), expect.next());
                }
            }
        }
    }

    #[test]
    fn hotspot_queries_concentrate() {
        let mut s = spec();
        s.insert_frac = 0.0;
        s.delete_frac = 0.0;
        s.query.knn_frac = 1.0;
        s.hotspot = Some(Hotspot {
            frac: 1.0,
            extent: 0.05,
        });
        let w: Workload<2> = s.generate();
        let (_, _, knn, _) = w.op_counts();
        assert_eq!(knn, 30);
        // All query points land in one tiny box: their bbox is small.
        let mut all = Vec::new();
        for op in &w.ops {
            if let WorkloadOp::Knn(qs, _) = op {
                all.extend(qs.iter().copied());
            }
        }
        let bb = Bbox::from_points(&all);
        let side = cube_side(1_000 + 30 * (1_000 / 30));
        for d in 0..2 {
            assert!(bb.max[d] - bb.min[d] <= 0.06 * side, "hotspot too wide");
        }
    }

    #[test]
    fn derived_ops_are_deterministic_and_opt_in() {
        // Default spec: no analytics traffic, bit-identical to the pre-
        // derived-op streams.
        let w: Workload<2> = spec().generate();
        assert_eq!(w.derived_count(), 0);

        let mut s = spec();
        s.insert_frac = 0.2;
        s.delete_frac = 0.2;
        s.derived_frac = 0.6;
        let a: Workload<2> = s.generate();
        let b: Workload<2> = s.generate();
        assert!(a.derived_count() > 0);
        assert_eq!(a.derived_count(), b.derived_count());
        for (x, y) in a.ops.iter().zip(&b.ops) {
            if let (WorkloadOp::Derived(p), WorkloadOp::Derived(q)) = (x, y) {
                assert_eq!(p, q);
            }
        }
    }

    #[test]
    fn store_presets_cover_the_analytics_axes() {
        let ps = WorkloadSpec::store_presets(10_000);
        assert_eq!(ps.len(), 6);
        assert!(ps.iter().all(|p| p.derived_frac > 0.0));
        assert!(ps.iter().any(|p| p.sliding_window));
        assert!(ps.iter().any(|p| p.hotspot.is_some()));
        assert!(ps.iter().any(|p| p.write_hotspot.is_some()));
        assert!(ps.iter().any(|p| p.dist == Distribution::SeedSpreader));
        for p in &ps {
            let w: Workload<2> = p.generate();
            assert_eq!(w.initial.len(), 5_000);
            assert!(w.derived_count() > 0, "{}: no analytics ops", p.name);
        }
    }

    #[test]
    fn write_hotspot_concentrates_op_inserts_but_not_the_initial_load() {
        let mut s = spec();
        s.insert_frac = 1.0;
        s.delete_frac = 0.0;
        s.write_hotspot = Some(Hotspot {
            frac: 1.0,
            extent: 0.05,
        });
        let w: Workload<2> = s.generate();
        let mut op_inserts = Vec::new();
        for op in &w.ops {
            if let WorkloadOp::Insert(batch) = op {
                op_inserts.extend(batch.iter().copied());
            }
        }
        assert!(!op_inserts.is_empty());
        let domain = Bbox::from_points(&w.initial);
        let hot = Bbox::from_points(&op_inserts);
        for d in 0..2 {
            // All op-stream inserts squeeze into ≤ 6% of the domain side;
            // the initial load still spans it.
            assert!(
                hot.max[d] - hot.min[d] <= 0.06 * (domain.max[d] - domain.min[d]),
                "write hotspot too wide in dim {d}"
            );
        }
        // Deterministic, and distinctness survives the affine squeeze
        // (delete-by-value semantics rely on it).
        let again: Workload<2> = s.generate();
        for (x, y) in w.ops.iter().zip(&again.ops) {
            if let (WorkloadOp::Insert(p), WorkloadOp::Insert(q)) = (x, y) {
                assert_eq!(p, q);
            }
        }
        let mut keys: Vec<[u64; 2]> = op_inserts.iter().map(|p| p.bits_key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), op_inserts.len(), "squeeze collided points");
    }

    #[test]
    fn presets_cover_the_scenario_axes() {
        let ps = WorkloadSpec::presets(10_000);
        assert_eq!(ps.len(), 5);
        assert!(ps.iter().any(|p| p.sliding_window));
        assert!(ps.iter().any(|p| p.hotspot.is_some()));
        assert!(ps.iter().any(|p| p.dist == Distribution::SeedSpreader));
        for p in &ps {
            let w: Workload<2> = p.generate();
            assert_eq!(w.initial.len(), 5_000);
            assert_eq!(w.ops.len(), 20);
        }
    }
}
