//! # pargeo-datagen — synthetic point-set generators (paper Module 4)
//!
//! Deterministic, seedable generators for every data-set family in the
//! paper's evaluation (§6 "Data Sets"):
//!
//! * [`uniform_cube`] — **U**: uniform in a hypercube of side `√n`.
//! * [`in_sphere`] — **IS**: uniform inside a hypersphere of diameter `√n`.
//! * [`on_sphere`] — **OS**: uniform on the sphere surface with shell
//!   thickness `0.1 ×` diameter.
//! * [`on_cube`] — **OC**: uniform on the hypercube surface with thickness
//!   `0.1 ×` side.
//! * [`seed_spreader`] — **V** ("VisualVar"): clustered data of varying
//!   density in the style of Gan & Tao's seed spreader \[33\].
//! * [`statue_surface`] — stand-in for the Stanford *Thai Statue* / *Dragon*
//!   scans: a dense sample of a closed, bumpy 2-manifold in `R³` (see
//!   DESIGN.md §5 for the substitution rationale).
//! * [`uniform_segments`] / [`uniform_rects`] / [`uniform_intervals`] —
//!   object families for the `rangequery` subsystem (segment, rectangle,
//!   and interval query workloads à la Sun & Blelloch).
//!
//! All generators except the (inherently sequential) seed spreader produce
//! point `i` from a counter-mode hash of `(seed, i)`, so generation is
//! embarrassingly parallel and the output is identical regardless of thread
//! count.
//!
//! The [`workload`] module layers mixed batch-dynamic *operation streams*
//! on top of the point families: [`WorkloadSpec`] describes
//! insert/delete/query ratios, sliding-window churn, and query hotspots,
//! and expands into a deterministic [`Workload`] for the engine driver.

#![warn(missing_docs)]

pub mod workload;

pub use workload::{
    DerivedOp, Distribution, Hotspot, QueryMix, Workload, WorkloadOp, WorkloadSpec,
};

use pargeo_geometry::{Bbox, Point};
use pargeo_parlay::shuffle::splitmix64;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Per-point deterministic RNG state derived from `(seed, index)`.
struct Counter {
    state: u64,
}

impl Counter {
    #[inline]
    fn new(seed: u64, i: usize) -> Self {
        Self {
            state: splitmix64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next uniform f64 in [0, 1).
    #[inline]
    fn next_f64(&mut self) -> f64 {
        self.state = splitmix64(self.state);
        (self.state >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next standard normal via Box–Muller.
    #[inline]
    fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Counter-mode generation harness: `f(i)` produces object `i`, in
/// parallel above the sequential cutoff (works for points, segment pairs,
/// boxes — anything `Send`).
fn gen_parallel<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    gen_parallel_range(0..n, f)
}

/// [`gen_parallel`] restricted to a sub-range of the stream. Because every
/// object is derived from `(seed, i)` alone, generating `[start, end)` is
/// bit-identical to slicing the monolithic output — the property the
/// chunked `*_range` generators below rely on to feed 10^7-point streams
/// without a second full-size temporary allocation.
fn gen_parallel_range<T, F>(range: std::ops::Range<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    if range.len() < 4096 {
        range.map(f).collect()
    } else {
        range.into_par_iter().map(f).collect()
    }
}

/// Side length of the paper's hypercube: `√n`.
pub fn cube_side(n: usize) -> f64 {
    (n as f64).sqrt()
}

/// **U**: `n` points uniform in `[0, √n]^D`.
pub fn uniform_cube<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    uniform_cube_range(n, seed, 0..n)
}

/// Chunk `[range.start, range.end)` of the `uniform_cube(n, seed)` stream —
/// bit-identical to slicing the monolithic output (each point depends only
/// on `(seed, i)` plus the domain side `√n`), so a large stream can be
/// generated in fixed-size chunks with peak temporary memory of one chunk.
pub fn uniform_cube_range<const D: usize>(
    n: usize,
    seed: u64,
    range: std::ops::Range<usize>,
) -> Vec<Point<D>> {
    let side = cube_side(n);
    gen_parallel_range(range, |i| {
        let mut rng = Counter::new(seed, i);
        let mut c = [0.0; D];
        for x in c.iter_mut() {
            *x = rng.next_f64() * side;
        }
        Point::new(c)
    })
}

/// **IS**: `n` points uniform inside a hypersphere of radius `√n / 2`
/// centered at the origin.
pub fn in_sphere<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    in_sphere_range(n, seed, 0..n)
}

/// Chunk of the `in_sphere(n, seed)` stream (see [`uniform_cube_range`]).
pub fn in_sphere_range<const D: usize>(
    n: usize,
    seed: u64,
    range: std::ops::Range<usize>,
) -> Vec<Point<D>> {
    let radius = cube_side(n) / 2.0;
    gen_parallel_range(range, |i| {
        let mut rng = Counter::new(seed, i);
        unit_ball_point::<D>(&mut rng) * radius
    })
}

/// **OS**: `n` points uniform on the hypersphere surface (radius `√n / 2`),
/// jittered inward within a shell of thickness `0.1 ×` diameter.
pub fn on_sphere<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    on_sphere_range(n, seed, 0..n)
}

/// Chunk of the `on_sphere(n, seed)` stream (see [`uniform_cube_range`]).
pub fn on_sphere_range<const D: usize>(
    n: usize,
    seed: u64,
    range: std::ops::Range<usize>,
) -> Vec<Point<D>> {
    let radius = cube_side(n) / 2.0;
    let thickness = 0.1 * 2.0 * radius;
    gen_parallel_range(range, |i| {
        let mut rng = Counter::new(seed, i);
        let dir = unit_sphere_point::<D>(&mut rng);
        let r = radius - rng.next_f64() * thickness;
        dir * r
    })
}

/// **OC**: `n` points uniform on the hypercube surface (side `√n`),
/// jittered inward within a slab of thickness `0.1 ×` side.
pub fn on_cube<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    on_cube_range(n, seed, 0..n)
}

/// Chunk of the `on_cube(n, seed)` stream (see [`uniform_cube_range`]).
pub fn on_cube_range<const D: usize>(
    n: usize,
    seed: u64,
    range: std::ops::Range<usize>,
) -> Vec<Point<D>> {
    let side = cube_side(n);
    let thickness = 0.1 * side;
    gen_parallel_range(range, |i| {
        let mut rng = Counter::new(seed, i);
        let mut c = [0.0; D];
        for x in c.iter_mut() {
            *x = rng.next_f64() * side;
        }
        // Pick a facet (a dimension and a side), then push the point onto it
        // with inward jitter.
        let facet = (rng.next_f64() * D as f64) as usize % D;
        let inward = rng.next_f64() * thickness;
        if rng.next_f64() < 0.5 {
            c[facet] = inward;
        } else {
            c[facet] = side - inward;
        }
        Point::new(c)
    })
}

/// Parameters for [`seed_spreader`].
#[derive(Debug, Clone, Copy)]
pub struct SeedSpreaderParams {
    /// Probability of teleporting the spreader to a fresh uniform location
    /// (creates a new cluster). Gan–Tao use `10/n`; we default to `1e-4`.
    pub restart_prob: f64,
    /// Base vicinity radius as a fraction of the domain side.
    pub base_vicinity: f64,
    /// Per-step drift as a fraction of the vicinity radius.
    pub drift: f64,
}

impl Default for SeedSpreaderParams {
    fn default() -> Self {
        Self {
            restart_prob: 1e-4,
            base_vicinity: 0.01,
            drift: 0.2,
        }
    }
}

/// **V**: clustered points of varying density (Gan–Tao seed spreader, the
/// paper's "VisualVar"/`2D-V` generator).
///
/// A spreader performs a random walk: each step emits one point uniformly in
/// a ball around the current location, then drifts; with probability
/// `restart_prob` it teleports and re-samples the local density, producing
/// clusters whose densities vary by orders of magnitude.
///
/// Unlike the counter-mode families this walk is inherently sequential —
/// point `i` depends on the entire prefix — so it has no chunked `*_range`
/// variant: re-seeding per chunk would change the stream.
pub fn seed_spreader<const D: usize>(
    n: usize,
    seed: u64,
    params: SeedSpreaderParams,
) -> Vec<Point<D>> {
    let side = cube_side(n);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut loc = [0.0f64; D].map(|_| rng.gen::<f64>() * side);
    let mut vicinity = side * params.base_vicinity;
    for _ in 0..n {
        if rng.gen::<f64>() < params.restart_prob {
            loc = loc.map(|_| rng.gen::<f64>() * side);
            // New cluster density: radius varies over ~2 orders of magnitude.
            let scale = 10f64.powf(rng.gen::<f64>() * 2.0 - 1.0);
            vicinity = side * params.base_vicinity * scale;
        }
        let mut c = [0.0f64; D];
        for (x, l) in c.iter_mut().zip(loc.iter()) {
            *x = l + (rng.gen::<f64>() * 2.0 - 1.0) * vicinity;
        }
        out.push(Point::new(c));
        for l in loc.iter_mut() {
            *l += (rng.gen::<f64>() * 2.0 - 1.0) * vicinity * params.drift;
            *l = l.rem_euclid(side);
        }
    }
    out
}

/// Synthetic "scanned statue" surface in `R³` — the stand-in for the
/// Stanford Thai-statue / Dragon data sets.
///
/// Points sample a closed surface `r(θ, φ) = R · (1 + Σ bumps)` — a sphere
/// modulated by a few low-frequency lobes — plus fine scan noise. Like a
/// real scan it is a dense 2-manifold sample: hull output is large and
/// normals vary smoothly, which is what distinguishes Thai/Dragon from the
/// synthetic U/IS families in Figures 9 and 10.
pub fn statue_surface(n: usize, seed: u64) -> Vec<Point<3>> {
    statue_surface_range(n, seed, 0..n)
}

/// Chunk of the `statue_surface(n, seed)` stream (see
/// [`uniform_cube_range`]).
pub fn statue_surface_range(n: usize, seed: u64, range: std::ops::Range<usize>) -> Vec<Point<3>> {
    let radius = cube_side(n) / 2.0;
    gen_parallel_range(range, |i| {
        let mut rng = Counter::new(seed, i);
        let dir = unit_sphere_point::<3>(&mut rng);
        let (x, y, z) = (dir[0], dir[1], dir[2]);
        let theta = z.clamp(-1.0, 1.0).asin();
        let phi = y.atan2(x);
        // Low-frequency lobes (statue "features")...
        let bumps = 0.18 * (3.0 * phi).sin() * (2.0 * theta).cos()
            + 0.12 * (5.0 * phi + 1.3).cos() * (3.0 * theta).sin()
            + 0.08 * (7.0 * theta).sin();
        // ...plus fine scan noise.
        let noise = 0.002 * rng.next_gaussian();
        dir * (radius * (1.0 + bumps + noise))
    })
}

/// `n` random segments in the standard `[0, √n]^D` domain: first endpoint
/// uniform, direction uniform on the sphere, length uniform in
/// `(0, max_len_frac × √n]`. Seeded and counter-mode parallel like the
/// point generators. The second endpoint may stick out of the domain by up
/// to the segment length — query workloads don't care, and clamping would
/// bias directions near the boundary.
pub fn uniform_segments<const D: usize>(
    n: usize,
    seed: u64,
    max_len_frac: f64,
) -> Vec<(Point<D>, Point<D>)> {
    let side = cube_side(n);
    gen_parallel(n, |i| {
        let mut rng = Counter::new(seed, i);
        let mut c = [0.0; D];
        for x in c.iter_mut() {
            *x = rng.next_f64() * side;
        }
        let a = Point::new(c);
        let dir = unit_sphere_point::<D>(&mut rng);
        let len = rng.next_f64() * max_len_frac * side;
        (a, a + dir * len)
    })
}

/// `n` random axis-aligned boxes in the `[0, √n]^D` domain: center uniform,
/// each side length uniform in `(0, max_side_frac × √n]`. Seeded and
/// counter-mode parallel.
pub fn uniform_rects<const D: usize>(n: usize, seed: u64, max_side_frac: f64) -> Vec<Bbox<D>> {
    let side = cube_side(n);
    gen_parallel(n, |i| {
        let mut rng = Counter::new(seed, i);
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for d in 0..D {
            let center = rng.next_f64() * side;
            let half = rng.next_f64() * max_side_frac * side / 2.0;
            lo[d] = center - half;
            hi[d] = center + half;
        }
        Bbox {
            min: Point::new(lo),
            max: Point::new(hi),
        }
    })
}

/// `n` random closed intervals `(lo, hi)` with `lo ≤ hi` in `[0, √n]` —
/// the 1D specialization of [`uniform_segments`], pre-normalized for
/// interval-tree workloads.
pub fn uniform_intervals(n: usize, seed: u64, max_len_frac: f64) -> Vec<(f64, f64)> {
    uniform_segments::<1>(n, seed, max_len_frac)
        .into_iter()
        .map(|(a, b)| (a[0].min(b[0]), a[0].max(b[0])))
        .collect()
}

/// Uniform direction on the unit sphere (Gaussian normalization).
fn unit_sphere_point<const D: usize>(rng: &mut Counter) -> Point<D> {
    loop {
        let mut c = [0.0; D];
        for x in c.iter_mut() {
            *x = rng.next_gaussian();
        }
        let p = Point::new(c);
        let norm = p.norm();
        if norm > 1e-12 {
            return p * (1.0 / norm);
        }
    }
}

/// Uniform point in the unit ball (direction × radius^(1/D)).
fn unit_ball_point<const D: usize>(rng: &mut Counter) -> Point<D> {
    let dir = unit_sphere_point::<D>(rng);
    let r = rng.next_f64().powf(1.0 / D as f64);
    dir * r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cube_bounds_and_determinism() {
        let a = uniform_cube::<3>(10_000, 1);
        let b = uniform_cube::<3>(10_000, 1);
        let c = uniform_cube::<3>(10_000, 2);
        assert_eq!(a.len(), 10_000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let side = cube_side(10_000);
        for p in &a {
            for d in 0..3 {
                assert!(p[d] >= 0.0 && p[d] < side);
            }
        }
    }

    #[test]
    fn in_sphere_within_radius() {
        let pts = in_sphere::<4>(5_000, 7);
        let r = cube_side(5_000) / 2.0;
        for p in &pts {
            assert!(p.norm() <= r * (1.0 + 1e-9));
        }
        // Points should genuinely fill the ball, not hug the surface.
        let inner = pts.iter().filter(|p| p.norm() < 0.5 * r).count();
        assert!(inner > 100, "inner={inner}");
    }

    #[test]
    fn on_sphere_shell() {
        let pts = on_sphere::<3>(5_000, 3);
        let r = cube_side(5_000) / 2.0;
        for p in &pts {
            let d = p.norm();
            assert!(d <= r * (1.0 + 1e-9), "d={d} r={r}");
            assert!(d >= r - 0.2 * r - 1e-9, "d={d} r={r}");
        }
    }

    #[test]
    fn on_cube_near_surface() {
        let n = 5_000;
        let pts = on_cube::<3>(n, 11);
        let side = cube_side(n);
        for p in &pts {
            let near =
                (0..3).any(|d| p[d] <= 0.1 * side + 1e-9 || p[d] >= side - 0.1 * side - 1e-9);
            assert!(near, "{:?}", p);
            for d in 0..3 {
                assert!(p[d] >= 0.0 && p[d] <= side);
            }
        }
    }

    #[test]
    fn seed_spreader_is_clustered() {
        let n = 20_000;
        let pts = seed_spreader::<2>(n, 5, SeedSpreaderParams::default());
        assert_eq!(pts.len(), n);
        // Clustering proxy: occupancy of a 20×20 grid is far more skewed
        // than for uniform data (coefficient of variation ≫ that of a
        // Poisson distribution with the same mean).
        let side = cube_side(n);
        let g = 20usize;
        let mut counts = vec![0usize; g * g];
        for p in &pts {
            let cx = ((p[0] / side * g as f64) as usize).min(g - 1);
            let cy = ((p[1] / side * g as f64) as usize).min(g - 1);
            counts[cy * g + cx] += 1;
        }
        let mean = n as f64 / (g * g) as f64;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / (g * g) as f64;
        let cv = var.sqrt() / mean;
        let poisson_cv = 1.0 / mean.sqrt();
        assert!(cv > 5.0 * poisson_cv, "cv={cv} poisson_cv={poisson_cv}");
    }

    #[test]
    fn statue_is_a_closed_surface_sample() {
        let n = 10_000;
        let pts = statue_surface(n, 9);
        let r = cube_side(n) / 2.0;
        for p in &pts {
            let d = p.norm();
            // 1 ± (0.18 + 0.12 + 0.08 + noise) envelope.
            assert!(d > 0.5 * r && d < 1.5 * r, "d={d} r={r}");
        }
        // Not a thin sphere: radial spread should be wide.
        let mean: f64 = pts.iter().map(|p| p.norm()).sum::<f64>() / n as f64;
        let var: f64 = pts.iter().map(|p| (p.norm() - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(var.sqrt() > 0.05 * r);
    }

    #[test]
    fn segments_are_bounded_and_deterministic() {
        let n = 5_000;
        let segs = uniform_segments::<2>(n, 1, 0.1);
        assert_eq!(segs.len(), n);
        assert_eq!(segs, uniform_segments::<2>(n, 1, 0.1));
        assert_ne!(segs, uniform_segments::<2>(n, 2, 0.1));
        let side = cube_side(n);
        for (a, b) in &segs {
            for d in 0..2 {
                assert!(a[d] >= 0.0 && a[d] < side);
            }
            assert!(a.dist(b) <= 0.1 * side * (1.0 + 1e-9));
        }
    }

    #[test]
    fn rects_are_well_formed_and_bounded() {
        let n = 5_000;
        let rects = uniform_rects::<3>(n, 4, 0.2);
        assert_eq!(rects.len(), n);
        assert_eq!(rects, uniform_rects::<3>(n, 4, 0.2));
        let side = cube_side(n);
        for r in &rects {
            assert!(!r.is_empty());
            for d in 0..3 {
                assert!(r.max[d] - r.min[d] <= 0.2 * side * (1.0 + 1e-9));
                assert!(r.min[d] > -0.5 * side && r.max[d] < 1.5 * side);
            }
        }
    }

    #[test]
    fn intervals_are_normalized() {
        let iv = uniform_intervals(3_000, 7, 0.05);
        assert_eq!(iv.len(), 3_000);
        for &(lo, hi) in &iv {
            assert!(lo <= hi);
        }
        // Matches the 1D segment generator it is built on.
        let segs = uniform_segments::<1>(3_000, 7, 0.05);
        for ((lo, hi), (a, b)) in iv.iter().zip(&segs) {
            assert_eq!(*lo, a[0].min(b[0]));
            assert_eq!(*hi, a[0].max(b[0]));
        }
    }

    #[test]
    fn chunked_generation_is_bit_identical_to_monolithic() {
        // Every counter-mode family: concatenating fixed-size chunks must
        // reproduce the monolithic stream bit for bit, for chunk sizes
        // that do and do not divide n (and straddle the parallel cutoff).
        let n = 10_000;
        for chunk in [1_000, 4_096, 7_777] {
            let stitch = |f: &dyn Fn(std::ops::Range<usize>) -> Vec<Point<3>>| {
                let mut out = Vec::with_capacity(n);
                let mut s = 0;
                while s < n {
                    let e = (s + chunk).min(n);
                    out.extend(f(s..e));
                    s = e;
                }
                out
            };
            assert_eq!(
                uniform_cube::<3>(n, 1),
                stitch(&|r| uniform_cube_range::<3>(n, 1, r))
            );
            assert_eq!(
                in_sphere::<3>(n, 2),
                stitch(&|r| in_sphere_range::<3>(n, 2, r))
            );
            assert_eq!(
                on_sphere::<3>(n, 3),
                stitch(&|r| on_sphere_range::<3>(n, 3, r))
            );
            assert_eq!(on_cube::<3>(n, 4), stitch(&|r| on_cube_range::<3>(n, 4, r)));
            assert_eq!(
                statue_surface(n, 5),
                stitch(&|r| statue_surface_range(n, 5, r))
            );
        }
        // A chunk is exactly the monolithic slice, at any offset.
        assert_eq!(
            uniform_cube_range::<2>(n, 9, 137..4_321),
            uniform_cube::<2>(n, 9)[137..4_321]
        );
    }

    #[test]
    fn generators_are_parallel_deterministic() {
        // Same output under different pool sizes.
        let a = pargeo_parlay::with_threads(1, || uniform_cube::<2>(50_000, 42));
        let b = pargeo_parlay::with_threads(4, || uniform_cube::<2>(50_000, 42));
        assert_eq!(a, b);
    }
}
