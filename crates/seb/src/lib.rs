//! # pargeo-seb — smallest enclosing ball (paper §4)
//!
//! The paper's second algorithmic contribution. Implementations:
//!
//! * [`seb_welzl_seq`] — the classic sequential Welzl recursion with
//!   move-to-front (the CGAL baseline stand-in of Figure 10).
//! * [`seb_welzl_parallel`] / [`seb_welzl_parallel_mtf`] /
//!   [`seb_welzl_parallel_mtf_pivot`] — the first parallel implementation
//!   of Welzl's algorithm (Blelloch et al.'s prefix-doubling scheme \[23\]),
//!   plus the move-to-front and Gärtner pivoting heuristics lifted to the
//!   parallel setting (§4 "Parallel Welzl's Algorithm and Optimizations").
//!   Prefixes below a sequential cutoff run the sequential algorithm, as
//!   the paper prescribes.
//! * [`seb_orthant_scan`] — Larsson et al.'s iterative orthant scan \[41\],
//!   parallelized over input blocks.
//! * [`seb_sampling`] — the paper's new sampling-based two-phase algorithm
//!   (Figure 6): cheap orthant scans over random samples build a
//!   near-optimal ball before the full scans start.

#![warn(missing_docs)]

mod scan;
mod welzl;

pub use scan::{orthant_scan_pass, seb_orthant_scan, seb_sampling, seb_sampling_with_batch};
pub use welzl::{
    seb_welzl_parallel, seb_welzl_parallel_mtf, seb_welzl_parallel_mtf_pivot, seb_welzl_seq,
    welzl_support,
};

use pargeo_geometry::{Ball, GeoError, GeoResult, Point};

/// Non-panicking smallest enclosing ball: rejects an empty input with
/// [`GeoError::EmptyInput`] instead of panicking, then runs `algo` (any of
/// this crate's `seb_*` entry points).
///
/// ```
/// use pargeo_seb::{try_seb_with, seb_sampling};
/// use pargeo_geometry::Point2;
/// assert!(try_seb_with::<2>(&[], seb_sampling).is_err());
/// let pts = [Point2::new([0.0, 0.0]), Point2::new([2.0, 0.0])];
/// assert!((try_seb_with(&pts, seb_sampling).unwrap().radius - 1.0).abs() < 1e-12);
/// ```
pub fn try_seb_with<const D: usize>(
    points: &[Point<D>],
    algo: fn(&[Point<D>]) -> Ball<D>,
) -> GeoResult<Ball<D>> {
    if points.is_empty() {
        return Err(GeoError::EmptyInput { op: "seb" });
    }
    Ok(algo(points))
}

/// Non-panicking [`seb_sampling`] (the paper's fastest method), via
/// [`try_seb_with`].
pub fn try_seb<const D: usize>(points: &[Point<D>]) -> GeoResult<Ball<D>> {
    try_seb_with(points, seb_sampling)
}

/// Brute-force smallest enclosing ball for testing (exponential in `D`,
/// cubic-ish in `n`; only for tiny inputs).
pub fn seb_brute_force<const D: usize>(points: &[Point<D>]) -> Ball<D> {
    assert!(!points.is_empty());
    let n = points.len();
    let mut best = Ball::empty();
    let mut best_r = f64::INFINITY;
    let mut consider = |support: &[Point<D>]| {
        let b = pargeo_geometry::ball_through(support);
        if b.radius >= 0.0 && b.radius < best_r && points.iter().all(|p| b.contains(p)) {
            best = b;
            best_r = b.radius;
        }
    };
    for i in 0..n {
        consider(&[points[i]]);
        for j in i + 1..n {
            consider(&[points[i], points[j]]);
            if D >= 2 {
                for k in j + 1..n {
                    consider(&[points[i], points[j], points[k]]);
                    if D >= 3 {
                        for l in k + 1..n {
                            consider(&[points[i], points[j], points[k], points[l]]);
                        }
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::{in_sphere, on_sphere, uniform_cube};

    type Algo2 = fn(&[Point<2>]) -> Ball<2>;
    type Algo3 = fn(&[Point<3>]) -> Ball<3>;

    fn algos2() -> Vec<(&'static str, Algo2)> {
        vec![
            ("welzl_seq", seb_welzl_seq as Algo2),
            ("welzl_par", seb_welzl_parallel as Algo2),
            ("welzl_mtf", seb_welzl_parallel_mtf as Algo2),
            ("welzl_mtf_pivot", seb_welzl_parallel_mtf_pivot as Algo2),
            ("orthant_scan", seb_orthant_scan as Algo2),
            ("sampling", seb_sampling as Algo2),
        ]
    }

    fn algos3() -> Vec<(&'static str, Algo3)> {
        vec![
            ("welzl_seq", seb_welzl_seq as Algo3),
            ("welzl_par", seb_welzl_parallel as Algo3),
            ("welzl_mtf", seb_welzl_parallel_mtf as Algo3),
            ("welzl_mtf_pivot", seb_welzl_parallel_mtf_pivot as Algo3),
            ("orthant_scan", seb_orthant_scan as Algo3),
            ("sampling", seb_sampling as Algo3),
        ]
    }

    fn check2(points: &[Point<2>], want_radius: f64) {
        for (name, f) in algos2() {
            let b = f(points);
            for (i, p) in points.iter().enumerate() {
                assert!(b.contains(p), "{name}: point {i} escapes ball {b:?}");
            }
            assert!(
                (b.radius - want_radius).abs() <= 1e-7 * (1.0 + want_radius),
                "{name}: radius {} vs optimal {want_radius}",
                b.radius
            );
        }
    }

    fn check3(points: &[Point<3>], want_radius: f64) {
        for (name, f) in algos3() {
            let b = f(points);
            for (i, p) in points.iter().enumerate() {
                assert!(b.contains(p), "{name}: point {i} escapes ball {b:?}");
            }
            assert!(
                (b.radius - want_radius).abs() <= 1e-7 * (1.0 + want_radius),
                "{name}: radius {} vs optimal {want_radius}",
                b.radius
            );
        }
    }

    #[test]
    fn matches_brute_force_2d() {
        for seed in 0..5 {
            let pts = uniform_cube::<2>(25, seed);
            let want = seb_brute_force(&pts);
            check2(&pts, want.radius);
        }
    }

    #[test]
    fn matches_brute_force_3d() {
        for seed in 5..8 {
            let pts = uniform_cube::<3>(18, seed);
            let want = seb_brute_force(&pts);
            check3(&pts, want.radius);
        }
    }

    #[test]
    fn all_agree_on_large_uniform_2d() {
        let pts = uniform_cube::<2>(20_000, 100);
        let want = seb_welzl_seq(&pts);
        check2(&pts, want.radius);
    }

    #[test]
    fn all_agree_on_sphere_3d() {
        // On-sphere data: nearly all points touch the optimum — the hard
        // case for scan-based methods.
        let pts = on_sphere::<3>(5_000, 101);
        let want = seb_welzl_seq(&pts);
        check3(&pts, want.radius);
    }

    #[test]
    fn all_agree_in_sphere_3d() {
        let pts = in_sphere::<3>(10_000, 102);
        let want = seb_welzl_seq(&pts);
        check3(&pts, want.radius);
    }

    #[test]
    fn known_optimum_antipodal() {
        // Two antipodal points on a circle of radius 5 define the ball.
        let mut pts = vec![Point::new([5.0, 0.0]), Point::new([-5.0, 0.0])];
        pts.extend(in_sphere::<2>(1_000, 103).iter().map(|p| *p * 0.05));
        check2(&pts, 5.0);
    }

    #[test]
    fn degenerate_inputs() {
        for (name, f) in algos2() {
            let one = [Point::new([3.0, 4.0])];
            let b = f(&one);
            assert_eq!(b.radius, 0.0, "{name}");
            assert!(b.contains(&one[0]), "{name}");

            let same = [Point::new([1.0, 1.0]); 40];
            let b = f(&same);
            assert!(b.radius <= 1e-9, "{name}");

            let collinear: Vec<Point<2>> = (0..50).map(|i| Point::new([i as f64, 0.0])).collect();
            let b = f(&collinear);
            assert!((b.radius - 24.5).abs() < 1e-7, "{name}: {}", b.radius);
        }
    }

    #[test]
    fn try_rejects_empty_input_for_every_algorithm() {
        for (name, f) in algos2() {
            let err = try_seb_with(&[], f).unwrap_err();
            assert_eq!(err, GeoError::EmptyInput { op: "seb" }, "{name}");
        }
        assert_eq!(try_seb::<3>(&[]), Err(GeoError::EmptyInput { op: "seb" }));
        let one = [Point::new([3.0, 4.0])];
        assert_eq!(try_seb(&one).unwrap().radius, 0.0);
    }

    #[test]
    fn deterministic_across_pool_sizes() {
        let pts = uniform_cube::<3>(10_000, 104);
        for (name, f) in algos3() {
            let a = pargeo_parlay::with_threads(1, || f(&pts));
            let b = pargeo_parlay::with_threads(4, || f(&pts));
            assert!(
                (a.radius - b.radius).abs() <= 1e-9 * (1.0 + a.radius),
                "{name}"
            );
        }
    }
}
