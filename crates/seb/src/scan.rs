//! Larsson et al.'s orthant scan and the paper's sampling-based two-phase
//! algorithm (Figure 6).

use crate::welzl::welzl_support;
use pargeo_geometry::{Ball, Point};
use rayon::prelude::*;

/// Safety valve: rounds before falling back to exact Welzl (never reached
/// on real data; guards pathological floating-point stalls).
const MAX_ROUNDS: usize = 200;

/// One parallel orthant scan: for every orthant around `ball.center`, the
/// furthest point *outside* the ball. Returns `(has_outlier, extremes)`.
///
/// The input is cut into blocks scanned sequentially but in parallel across
/// blocks; per-block extreme tables are merged (§4 "We parallelize the
/// orthant scan").
pub fn orthant_scan_pass<const D: usize>(
    points: &[Point<D>],
    ball: &Ball<D>,
) -> (bool, Vec<Point<D>>) {
    let orthants = 1usize << D.min(8);
    let center = ball.center;
    let merge = |mut a: Vec<Option<(f64, Point<D>)>>, b: Vec<Option<(f64, Point<D>)>>| {
        for (x, y) in a.iter_mut().zip(b) {
            if let Some((dy, py)) = y {
                match x {
                    Some((dx, _)) if *dx >= dy => {}
                    _ => *x = Some((dy, py)),
                }
            }
        }
        a
    };
    let scan_block = |chunk: &[Point<D>]| {
        let mut table: Vec<Option<(f64, Point<D>)>> = vec![None; orthants];
        for p in chunk {
            if ball.contains(p) {
                continue;
            }
            let mut o = 0usize;
            for i in 0..D.min(8) {
                o = (o << 1) | ((p[i] >= center[i]) as usize);
            }
            let d = p.dist_sq(&center);
            match &table[o] {
                Some((best, _)) if *best >= d => {}
                _ => table[o] = Some((d, *p)),
            }
        }
        table
    };
    let table = if points.len() < 8192 {
        scan_block(points)
    } else {
        points
            .par_chunks(8192)
            .map(scan_block)
            .reduce(|| vec![None; orthants], merge)
    };
    let extremes: Vec<Point<D>> = table.into_iter().flatten().map(|(_, p)| p).collect();
    (!extremes.is_empty(), extremes)
}

/// `constructBall`: the next intermediate ball from the current support set
/// and the scan's extreme points (exact miniball of the ≤ `D+1 + 2^D`
/// candidates).
fn construct_ball<const D: usize>(
    support: &[Point<D>],
    extremes: &[Point<D>],
) -> (Ball<D>, Vec<Point<D>>) {
    let mut cand: Vec<Point<D>> = support.to_vec();
    cand.extend_from_slice(extremes);
    welzl_support(&cand)
}

/// Larsson et al.'s iterative orthant scan over the full input.
pub fn seb_orthant_scan<const D: usize>(points: &[Point<D>]) -> Ball<D> {
    assert!(!points.is_empty(), "smallest enclosing ball of nothing");
    let (mut ball, mut support) = initial_ball(points);
    for _ in 0..MAX_ROUNDS {
        let (has_outlier, extremes) = orthant_scan_pass(points, &ball);
        if !has_outlier {
            return ball;
        }
        let (b, s) = construct_ball(&support, &extremes);
        // Monotone growth guard against floating-point stalls.
        ball = if b.radius > ball.radius {
            b
        } else {
            grow(ball, &extremes)
        };
        support = s;
    }
    crate::welzl::seb_welzl_parallel_mtf_pivot(points)
}

/// The paper's sampling-based algorithm (Figure 6): scan constant-size
/// random samples until one produces no outlier, then finish with full
/// orthant scans.
pub fn seb_sampling<const D: usize>(points: &[Point<D>]) -> Ball<D> {
    seb_sampling_with_batch(points, 10_000)
}

/// Sampling SEB with an explicit sample-segment size `c`.
pub fn seb_sampling_with_batch<const D: usize>(points: &[Point<D>], c: usize) -> Ball<D> {
    assert!(!points.is_empty(), "smallest enclosing ball of nothing");
    let c = c.max(D + 2);
    let n = points.len();
    // Each round scans a constant-size random sample. The paper permutes
    // the whole input and walks segments; materializing the permutation
    // costs a full O(n) shuffle, which can exceed the scans it saves, so we
    // gather each segment by counter-mode hashed indices instead — the same
    // "random sample at negligible cost" the paper's sampling phase is
    // after, without the O(n) preprocessing.
    let (mut ball, mut support) = initial_ball(points);
    let mut seg: Vec<Point<D>> = Vec::with_capacity(c);
    // Sampling phase (Figure 6 lines 5–13).
    let mut scanned = 0usize;
    while scanned < n {
        seg.clear();
        for j in 0..c.min(n - scanned) {
            let h = pargeo_parlay::shuffle::splitmix64(0x5A11 ^ (scanned + j) as u64) as usize % n;
            seg.push(points[h]);
        }
        scanned += c;
        let (has_outlier, extremes) = orthant_scan_pass(&seg, &ball);
        if !has_outlier {
            break; // the current sample does not violate B
        }
        let (b, s) = construct_ball(&support, &extremes);
        ball = if b.radius > ball.radius {
            b
        } else {
            grow(ball, &extremes)
        };
        support = s;
    }
    // Final computation phase (lines 15–20).
    for _ in 0..MAX_ROUNDS {
        let (has_outlier, extremes) = orthant_scan_pass(points, &ball);
        if !has_outlier {
            return ball;
        }
        let (b, s) = construct_ball(&support, &extremes);
        ball = if b.radius > ball.radius {
            b
        } else {
            grow(ball, &extremes)
        };
        support = s;
    }
    crate::welzl::seb_welzl_parallel_mtf_pivot(points)
}

/// Initial ball: the diameter pair heuristic (a point, its furthest mate,
/// and the furthest point from their midpoint ball).
fn initial_ball<const D: usize>(points: &[Point<D>]) -> (Ball<D>, Vec<Point<D>>) {
    let a = points[0];
    let b = points[pargeo_parlay::max_index_by(points, |p| p.dist_sq(&a)).unwrap()];
    welzl_support(&[a, b])
}

/// Fallback growth step: expand `ball` minimally to cover `extremes`
/// (keeps the radius strictly increasing when the miniball update stalls
/// in floating point).
fn grow<const D: usize>(ball: Ball<D>, extremes: &[Point<D>]) -> Ball<D> {
    let mut b = ball;
    for p in extremes {
        let d = b.center.dist(p);
        if d > b.radius {
            // Shift the center toward p and grow to the midpoint ball of
            // the far boundary and p.
            let new_r = 0.5 * (b.radius + d);
            let t = (d - b.radius) / (2.0 * d);
            b = Ball {
                center: b.center + (*p - b.center) * t,
                radius: new_r,
            };
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_cube;

    #[test]
    fn scan_pass_finds_extremes_per_orthant() {
        let pts = vec![
            Point::new([2.0, 2.0]),
            Point::new([-3.0, 2.0]),
            Point::new([0.1, 0.1]),
        ];
        let ball = Ball {
            center: Point::new([0.0, 0.0]),
            radius: 1.0,
        };
        let (has, ext) = orthant_scan_pass(&pts, &ball);
        assert!(has);
        assert_eq!(ext.len(), 2); // two distinct orthants outside
    }

    #[test]
    fn scan_pass_none_when_enclosed() {
        let pts = uniform_cube::<2>(1_000, 1);
        let (ball, _) = welzl_support(&pts);
        let (has, ext) = orthant_scan_pass(&pts, &ball);
        assert!(!has, "{ext:?}");
    }

    #[test]
    fn grow_covers_points() {
        let ball = Ball {
            center: Point::new([0.0, 0.0]),
            radius: 1.0,
        };
        let p = Point::new([5.0, 0.0]);
        let g = grow(ball, &[p]);
        assert!(g.contains(&p));
        assert!(g.contains(&Point::new([-1.0, 0.0]))); // old boundary kept
        assert!((g.radius - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_with_tiny_batches() {
        let pts = uniform_cube::<2>(5_000, 2);
        let b = seb_sampling_with_batch(&pts, 16);
        assert!(pts.iter().all(|p| b.contains(p)));
    }
}
