//! Welzl's algorithm: sequential (with move-to-front) and the parallel
//! prefix-doubling scheme with the paper's heuristics.

use pargeo_geometry::{ball_through, Ball, Point};
use pargeo_parlay as parlay;
use rayon::prelude::*;

/// Prefix size below which the parallel algorithm runs sequentially
/// (the paper uses 500 000 on a 36-core machine; scaled for laptops).
const SEQ_CUTOFF: usize = 50_000;

/// Sequential Welzl with move-to-front — the Figure 10 "CGAL" stand-in.
pub fn seb_welzl_seq<const D: usize>(points: &[Point<D>]) -> Ball<D> {
    assert!(!points.is_empty(), "smallest enclosing ball of nothing");
    let mut pts = points.to_vec();
    parlay::shuffle_seeded(&mut pts, 0x5EB);
    let mut support = Vec::with_capacity(D + 1);
    seq_md(&mut pts, &mut support, true)
}

/// Sequential Welzl that also returns the support set (used by the orthant
/// scan's `constructBall` and by tests).
pub fn welzl_support<const D: usize>(points: &[Point<D>]) -> (Ball<D>, Vec<Point<D>>) {
    assert!(!points.is_empty());
    let mut pts = points.to_vec();
    parlay::shuffle_seeded(&mut pts, 0x5EB);
    let mut support = Vec::with_capacity(D + 1);
    let ball = seq_md(&mut pts, &mut support, true);
    // Recover the support as the input points on the boundary (≤ D+1).
    let r = ball.radius.max(1e-300);
    let mut sup: Vec<Point<D>> = Vec::new();
    for p in points {
        if ((p.dist(&ball.center) - r) / r).abs() < 1e-7 && !sup.iter().any(|s| s == p) {
            sup.push(*p);
            if sup.len() == D + 1 {
                break;
            }
        }
    }
    if sup.is_empty() {
        sup.push(points[0]);
    }
    (ball, sup)
}

/// Welzl's recursion over `pts` with the boundary set `support`.
/// `mtf` enables the move-to-front heuristic.
fn seq_md<const D: usize>(pts: &mut [Point<D>], support: &mut Vec<Point<D>>, mtf: bool) -> Ball<D> {
    let mut ball = ball_through(support);
    if support.len() == D + 1 {
        return ball;
    }
    for i in 0..pts.len() {
        if !ball.contains(&pts[i]) {
            let p = pts[i];
            support.push(p);
            ball = seq_md(&mut pts[..i], support, mtf);
            support.pop();
            if mtf {
                // Move the violator to the front so later recursions meet
                // it early.
                pts[..=i].rotate_right(1);
            }
        }
    }
    ball
}

/// Heuristic set for the parallel Welzl driver.
#[derive(Clone, Copy, Default)]
struct Opts {
    mtf: bool,
    pivot: bool,
}

/// Parallel Welzl (prefix doubling), no heuristics.
pub fn seb_welzl_parallel<const D: usize>(points: &[Point<D>]) -> Ball<D> {
    drive(points, Opts::default())
}

/// Parallel Welzl with move-to-front.
pub fn seb_welzl_parallel_mtf<const D: usize>(points: &[Point<D>]) -> Ball<D> {
    drive(
        points,
        Opts {
            mtf: true,
            pivot: false,
        },
    )
}

/// Parallel Welzl with move-to-front and Gärtner pivoting (the pivot is
/// located with a parallel maximum-finding pass).
pub fn seb_welzl_parallel_mtf_pivot<const D: usize>(points: &[Point<D>]) -> Ball<D> {
    drive(
        points,
        Opts {
            mtf: true,
            pivot: true,
        },
    )
}

fn drive<const D: usize>(points: &[Point<D>], opts: Opts) -> Ball<D> {
    assert!(!points.is_empty(), "smallest enclosing ball of nothing");
    let mut pts = points.to_vec();
    parlay::shuffle_seeded(&mut pts, 0x5EB);
    par_md(&mut pts, &mut Vec::with_capacity(D + 1), opts)
}

/// Parallel analogue of [`seq_md`]: processes prefixes of exponentially
/// increasing size; each prefix is scanned in parallel for its earliest
/// violator, which is pushed onto the support for a recursive call on the
/// points before it.
fn par_md<const D: usize>(
    pts: &mut [Point<D>],
    support: &mut Vec<Point<D>>,
    opts: Opts,
) -> Ball<D> {
    if support.len() == D + 1 {
        return ball_through(support);
    }
    let n = pts.len();
    if n <= SEQ_CUTOFF {
        return seq_md(pts, support, opts.mtf);
    }
    // Sequential warm-up prefix (limited parallelism there — §4).
    let mut ball = seq_md(&mut pts[..SEQ_CUTOFF], support, opts.mtf);
    let mut lo = SEQ_CUTOFF;
    let mut hi = (2 * SEQ_CUTOFF).min(n);
    while lo < n {
        match first_violator(&pts[lo..hi], &ball) {
            None => {
                lo = hi;
                hi = (2 * hi).max(lo + 1).min(n);
            }
            Some(rel) => {
                let mut idx = lo + rel;
                if opts.pivot {
                    // Use the globally furthest point from the current
                    // center instead (parallel maximum-finding); it is a
                    // violator because one exists. Its big radius jump cuts
                    // the number of subsequent violators (Gärtner).
                    let center = ball.center;
                    let far = parlay::max_index_by(pts, |p| p.dist_sq(&center)).expect("non-empty");
                    if !ball.contains(&pts[far]) {
                        idx = far;
                    }
                }
                let p = pts[idx];
                if opts.mtf {
                    pts[..=idx].rotate_right(1);
                    support.push(p);
                    ball = par_md(&mut pts[1..=idx], support, opts);
                    support.pop();
                } else {
                    support.push(p);
                    ball = par_md(&mut pts[..idx], support, opts);
                    support.pop();
                }
                // Everything up to and including idx is now enclosed; with
                // a pivot behind `lo` the scan backs up and revalidates the
                // stretch in between (radius strictly grew, so this
                // terminates).
                lo = idx + 1;
                hi = (2 * lo).max(SEQ_CUTOFF).min(n);
            }
        }
    }
    ball
}

/// Index of the first point outside `ball` (parallel reduce).
fn first_violator<const D: usize>(pts: &[Point<D>], ball: &Ball<D>) -> Option<usize> {
    const BLOCK: usize = 8192;
    if pts.len() <= BLOCK {
        return pts.iter().position(|p| !ball.contains(p));
    }
    pts.par_chunks(BLOCK)
        .enumerate()
        .filter_map(|(b, chunk)| {
            chunk
                .iter()
                .position(|p| !ball.contains(p))
                .map(|i| b * BLOCK + i)
        })
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_cube;

    #[test]
    fn seq_md_supports_full_support() {
        // Equilateral-ish triangle: all three points on the boundary.
        let pts = [
            Point::new([0.0, 0.0]),
            Point::new([4.0, 0.0]),
            Point::new([2.0, 3.0]),
        ];
        let b = seb_welzl_seq(&pts);
        for p in &pts {
            assert!((b.center.dist(p) - b.radius).abs() < 1e-9);
        }
    }

    #[test]
    fn first_violator_finds_earliest() {
        let mut pts = vec![Point::new([0.0, 0.0]); 100_000];
        pts[70_001] = Point::new([10.0, 0.0]);
        pts[90_000] = Point::new([11.0, 0.0]);
        let ball = Ball {
            center: Point::new([0.0, 0.0]),
            radius: 1.0,
        };
        assert_eq!(first_violator(&pts, &ball), Some(70_001));
    }

    #[test]
    fn parallel_equals_sequential_radius() {
        let pts = uniform_cube::<3>(200_000, 7);
        let seq = seb_welzl_seq(&pts);
        for f in [
            seb_welzl_parallel,
            seb_welzl_parallel_mtf,
            seb_welzl_parallel_mtf_pivot,
        ] {
            let par = f(&pts);
            assert!((par.radius - seq.radius).abs() < 1e-9 * (1.0 + seq.radius));
            assert!(pts.iter().all(|p| par.contains(p)));
        }
    }

    #[test]
    fn support_recovery() {
        let pts = uniform_cube::<2>(500, 8);
        let (ball, sup) = welzl_support(&pts);
        assert!(!sup.is_empty() && sup.len() <= 3);
        for s in &sup {
            assert!((ball.center.dist(s) - ball.radius).abs() < 1e-6 * (1.0 + ball.radius));
        }
    }
}
