//! Property-based tests for the smallest enclosing ball: all six methods
//! enclose everything and agree on the radius, over arbitrary inputs
//! including duplicate-heavy lattices.

use pargeo_geometry::{Ball, Point2};
use pargeo_seb::*;
use proptest::prelude::*;

fn lattice_points() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (0i32..64, 0i32..64).prop_map(|(x, y)| Point2::new([x as f64, y as f64])),
        1..200,
    )
}

fn smooth_points() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (-1e5f64..1e5, -1e5f64..1e5).prop_map(|(x, y)| Point2::new([x, y])),
        1..200,
    )
}

fn check_all(pts: &[Point2]) -> Result<(), TestCaseError> {
    let reference = seb_welzl_seq(pts);
    for p in pts {
        prop_assert!(reference.contains(p));
    }
    let algos: Vec<(&str, fn(&[Point2]) -> Ball<2>)> = vec![
        ("welzl_par", seb_welzl_parallel),
        ("welzl_mtf", seb_welzl_parallel_mtf),
        ("welzl_mtf_pivot", seb_welzl_parallel_mtf_pivot),
        ("scan", seb_orthant_scan),
        ("sampling", seb_sampling),
    ];
    for (name, f) in algos {
        let b = f(pts);
        for p in pts {
            prop_assert!(b.contains(p), "{} lost a point: {:?}", name, b);
        }
        prop_assert!(
            (b.radius - reference.radius).abs() <= 1e-6 * (1.0 + reference.radius),
            "{}: {} vs {}",
            name,
            b.radius,
            reference.radius
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_methods_agree_on_lattices(pts in lattice_points()) {
        check_all(&pts)?;
    }

    #[test]
    fn all_methods_agree_on_smooth_points(pts in smooth_points()) {
        check_all(&pts)?;
    }

    /// The SEB radius is at least half the diameter and at most the
    /// diameter (Jung-type sanity bounds in the plane it is ≤ d/√3, we
    /// check the loose bound).
    #[test]
    fn radius_bounds(pts in lattice_points()) {
        prop_assume!(pts.len() >= 2);
        let b = seb_welzl_seq(&pts);
        let mut diam: f64 = 0.0;
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                diam = diam.max(pts[i].dist(&pts[j]));
            }
        }
        prop_assert!(b.radius >= diam / 2.0 - 1e-9);
        prop_assert!(b.radius <= diam / 3f64.sqrt() + 1e-9);
    }

    /// Adding interior points never changes the ball.
    #[test]
    fn interior_points_are_irrelevant(pts in lattice_points(), extra in 0usize..50) {
        prop_assume!(pts.len() >= 3);
        let base = seb_welzl_seq(&pts);
        let mut fat = pts.clone();
        // Add points on the segment between the center and existing points
        // (strictly inside the ball).
        for p in pts.iter().take(extra) {
            fat.push(base.center.midpoint(p));
        }
        let b2 = seb_welzl_seq(&fat);
        prop_assert!((b2.radius - base.radius).abs() <= 1e-9 * (1.0 + base.radius));
    }
}
