//! Balls and circumballs of support sets — the numeric core of the smallest
//! enclosing ball module.
//!
//! [`ball_through`] returns the smallest ball whose boundary passes through
//! all given points (at most `D + 1` of them) with its center in their
//! affine hull: the base operation of Welzl's recursion and of Larsson's
//! orthant-scan update step.

use crate::point::Point;

/// Relative tolerance used to decide affine dependence and boundary
/// membership. Matches the slack used by practical miniball codes
/// (Gärtner's uses 1e-32 on squared quantities; we work on relative scale).
const REL_TOL: f64 = 1e-10;

/// A `D`-dimensional ball. The *empty* ball (`radius < 0`) contains nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ball<const D: usize> {
    /// Center.
    pub center: Point<D>,
    /// Radius; negative for the empty ball.
    pub radius: f64,
}

impl<const D: usize> Ball<D> {
    /// The empty ball.
    pub fn empty() -> Self {
        Self {
            center: Point::origin(),
            radius: -1.0,
        }
    }

    /// The degenerate ball `{p}`.
    pub fn from_point(p: &Point<D>) -> Self {
        Self {
            center: *p,
            radius: 0.0,
        }
    }

    /// True iff this is the empty ball.
    pub fn is_empty(&self) -> bool {
        self.radius < 0.0
    }

    /// Squared radius (negative radius squares to a *negative* sentinel to
    /// keep the empty ball containing nothing).
    pub fn radius_sq(&self) -> f64 {
        if self.radius < 0.0 {
            -1.0
        } else {
            self.radius * self.radius
        }
    }

    /// Containment with a relative slack — a point on the boundary is
    /// inside. This is the test used by all SEB algorithms to decide whether
    /// a point is a *visible point* (outside the current ball).
    #[inline]
    pub fn contains(&self, p: &Point<D>) -> bool {
        if self.radius < 0.0 {
            return false;
        }
        let r2 = self.radius * self.radius;
        p.dist_sq(&self.center) <= r2 * (1.0 + REL_TOL) + REL_TOL
    }

    /// Strict containment with no slack (used by tests).
    #[inline]
    pub fn contains_strict(&self, p: &Point<D>) -> bool {
        self.radius >= 0.0 && p.dist_sq(&self.center) <= self.radius * self.radius
    }
}

/// Smallest ball with every point of `support` on its boundary and center in
/// the support's affine hull.
///
/// Affinely dependent points are detected by Gram–Schmidt with a relative
/// tolerance and skipped, so the call never fails on (near-)degenerate
/// supports; at most `D + 1` points are meaningful. Returns the empty ball
/// for an empty support.
pub fn ball_through<const D: usize>(support: &[Point<D>]) -> Ball<D> {
    if support.is_empty() {
        return Ball::empty();
    }
    let p0 = support[0];
    // Collect an affinely independent subset of direction vectors.
    let mut basis: Vec<Point<D>> = Vec::new(); // original v_i kept
    let mut ortho: Vec<Point<D>> = Vec::new(); // orthogonalized copies
    for p in &support[1..] {
        let v = *p - p0;
        let vn = v.norm_sq();
        if vn == 0.0 {
            continue; // duplicate of p0
        }
        let mut r = v;
        for q in &ortho {
            let qn = q.norm_sq();
            if qn > 0.0 {
                r = r - *q * (r.dot(q) / qn);
            }
        }
        if r.norm_sq() > REL_TOL * REL_TOL * vn {
            basis.push(v);
            ortho.push(r);
            if basis.len() == D {
                break;
            }
        }
    }
    let k = basis.len();
    if k == 0 {
        return Ball::from_point(&p0);
    }
    // Solve the Gram system 2 (v_i . v_j) lambda_j = |v_i|^2.
    let mut a = vec![vec![0.0f64; k + 1]; k];
    for i in 0..k {
        for j in 0..k {
            a[i][j] = 2.0 * basis[i].dot(&basis[j]);
        }
        a[i][k] = basis[i].norm_sq();
    }
    let lambda = match solve_linear(&mut a) {
        Some(l) => l,
        None => return Ball::from_point(&p0), // numerically degenerate
    };
    let mut center = p0;
    for (l, v) in lambda.iter().zip(&basis) {
        center = center + *v * *l;
    }
    Ball {
        center,
        radius: center.dist(&p0),
    }
}

/// Gaussian elimination with partial pivoting on an augmented `k × (k+1)`
/// system. Returns `None` when (nearly) singular.
fn solve_linear(a: &mut [Vec<f64>]) -> Option<Vec<f64>> {
    let k = a.len();
    let scale: f64 = a
        .iter()
        .flat_map(|row| row[..k].iter())
        .fold(0.0f64, |m, &x| m.max(x.abs()));
    for col in 0..k {
        let (pivot_row, pivot_val) = (col..k)
            .map(|r| (r, a[r][col].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
            .unwrap();
        if pivot_val <= REL_TOL * scale {
            return None;
        }
        a.swap(col, pivot_row);
        for r in col + 1..k {
            let f = a[r][col] / a[col][col];
            for c in col..=k {
                a[r][c] -= f * a[col][c];
            }
        }
    }
    let mut x = vec![0.0f64; k];
    for row in (0..k).rev() {
        let mut s = a[row][k];
        for c in row + 1..k {
            s -= a[row][c] * x[c];
        }
        x[row] = s / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{Point2, Point3};

    #[test]
    fn empty_and_singleton() {
        let e = Ball::<2>::empty();
        assert!(e.is_empty());
        assert!(!e.contains(&Point2::new([0.0, 0.0])));
        let p = Point2::new([1.0, 2.0]);
        let b = ball_through(&[p]);
        assert_eq!(b.radius, 0.0);
        assert!(b.contains(&p));
        assert!(!b.contains(&Point2::new([1.1, 2.0])));
    }

    #[test]
    fn two_points_diameter() {
        let a = Point2::new([0.0, 0.0]);
        let b = Point2::new([2.0, 0.0]);
        let ball = ball_through(&[a, b]);
        assert!((ball.center[0] - 1.0).abs() < 1e-12);
        assert!(ball.center[1].abs() < 1e-12);
        assert!((ball.radius - 1.0).abs() < 1e-12);
        assert!(ball.contains(&a) && ball.contains(&b));
    }

    #[test]
    fn three_points_circumcircle() {
        // Right triangle: circumcenter at hypotenuse midpoint.
        let a = Point2::new([0.0, 0.0]);
        let b = Point2::new([4.0, 0.0]);
        let c = Point2::new([0.0, 3.0]);
        let ball = ball_through(&[a, b, c]);
        assert!((ball.center[0] - 2.0).abs() < 1e-12);
        assert!((ball.center[1] - 1.5).abs() < 1e-12);
        assert!((ball.radius - 2.5).abs() < 1e-12);
    }

    #[test]
    fn four_points_circumsphere_3d() {
        // Regular tetrahedron corners of the unit cube.
        let pts = [
            Point3::new([0.0, 0.0, 0.0]),
            Point3::new([1.0, 1.0, 0.0]),
            Point3::new([1.0, 0.0, 1.0]),
            Point3::new([0.0, 1.0, 1.0]),
        ];
        let ball = ball_through(&pts);
        for p in &pts {
            assert!((ball.center.dist(p) - ball.radius).abs() < 1e-12);
        }
        assert!((ball.center[0] - 0.5).abs() < 1e-12);
        assert!((ball.radius - (0.75f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn duplicate_points_are_skipped() {
        let a = Point2::new([0.0, 0.0]);
        let b = Point2::new([2.0, 0.0]);
        let ball = ball_through(&[a, a, b, b]);
        assert!((ball.radius - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collinear_three_points_fall_back_to_diameter_span() {
        let a = Point2::new([0.0, 0.0]);
        let b = Point2::new([1.0, 0.0]);
        let c = Point2::new([2.0, 0.0]);
        // c is affinely dependent on {a, b} in 1D subspace; the solver keeps
        // a maximal independent subset. The result must still have finite
        // radius and its boundary passes through the kept points.
        let ball = ball_through(&[a, c, b]);
        assert!(ball.radius.is_finite());
        assert!((ball.center.dist(&a) - ball.radius).abs() < 1e-9);
        assert!((ball.center.dist(&c) - ball.radius).abs() < 1e-9);
    }

    #[test]
    fn boundary_points_count_as_contained() {
        let a = Point2::new([-1.0, 0.0]);
        let b = Point2::new([1.0, 0.0]);
        let ball = ball_through(&[a, b]);
        assert!(ball.contains(&Point2::new([0.0, 1.0])));
        assert!(!ball.contains(&Point2::new([0.0, 1.0 + 1e-4])));
    }
}
