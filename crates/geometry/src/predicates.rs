//! Exact geometric predicates with static filters.
//!
//! Each predicate first evaluates the determinant in plain double precision
//! together with a forward error bound (Shewchuk's "stage A" filter). When
//! the magnitude of the determinant exceeds the bound, its sign is provably
//! correct and is returned immediately — this is the overwhelmingly common
//! case. Otherwise the determinant is recomputed *exactly* over
//! floating-point expansions ([`crate::expansion`]) and the exact sign is
//! returned. The result is therefore always the sign of the true real-valued
//! determinant.

use crate::expansion::Expansion;
use crate::point::{Point2, Point3};

/// Machine epsilon used in Shewchuk's error bounds (2^-53).
const EPSILON: f64 = 1.110_223_024_625_156_5e-16;
/// Error bound coefficient for the 2D orientation filter.
const CCW_ERRBOUND_A: f64 = (3.0 + 16.0 * EPSILON) * EPSILON;
/// Error bound coefficient for the 3D orientation filter.
const O3D_ERRBOUND_A: f64 = (7.0 + 56.0 * EPSILON) * EPSILON;
/// Error bound coefficient for the in-circle filter.
const ICC_ERRBOUND_A: f64 = (10.0 + 96.0 * EPSILON) * EPSILON;

/// The sign of an exact determinant test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Determinant > 0 (counterclockwise / below / inside, per predicate).
    Positive,
    /// Determinant < 0.
    Negative,
    /// Exactly degenerate (collinear / coplanar / cocircular).
    Zero,
}

impl Orientation {
    fn from_sign(s: i32) -> Self {
        match s.cmp(&0) {
            std::cmp::Ordering::Greater => Orientation::Positive,
            std::cmp::Ordering::Less => Orientation::Negative,
            std::cmp::Ordering::Equal => Orientation::Zero,
        }
    }

    fn from_f64(x: f64) -> Self {
        if x > 0.0 {
            Orientation::Positive
        } else if x < 0.0 {
            Orientation::Negative
        } else {
            Orientation::Zero
        }
    }

    /// +1 / 0 / -1.
    pub fn sign(self) -> i32 {
        match self {
            Orientation::Positive => 1,
            Orientation::Zero => 0,
            Orientation::Negative => -1,
        }
    }
}

/// Orientation of `c` relative to the directed line `a → b`.
///
/// `Positive` iff the triangle `(a, b, c)` winds counterclockwise, i.e. `c`
/// lies to the *left* of `a → b`. Exact.
pub fn orient2d(a: &Point2, b: &Point2, c: &Point2) -> Orientation {
    let detleft = (a[0] - c[0]) * (b[1] - c[1]);
    let detright = (a[1] - c[1]) * (b[0] - c[0]);
    let det = detleft - detright;
    let detsum = detleft.abs() + detright.abs();
    let errbound = CCW_ERRBOUND_A * detsum;
    if det > errbound || -det > errbound {
        return Orientation::from_f64(det);
    }
    orient2d_exact(a, b, c)
}

fn orient2d_exact(a: &Point2, b: &Point2, c: &Point2) -> Orientation {
    let acx = Expansion::from_diff(a[0], c[0]);
    let acy = Expansion::from_diff(a[1], c[1]);
    let bcx = Expansion::from_diff(b[0], c[0]);
    let bcy = Expansion::from_diff(b[1], c[1]);
    let det = acx.mul(&bcy).sub(&acy.mul(&bcx));
    Orientation::from_sign(det.sign())
}

/// Orientation of `d` relative to the oriented plane through `a, b, c`.
///
/// `Positive` iff `d` lies *below* the plane, where "above" is the direction
/// from which the triangle `(a, b, c)` appears counterclockwise (that is,
/// the side pointed to by `(b - a) × (c - a)`). Exact.
pub fn orient3d(a: &Point3, b: &Point3, c: &Point3, d: &Point3) -> Orientation {
    let adx = a[0] - d[0];
    let bdx = b[0] - d[0];
    let cdx = c[0] - d[0];
    let ady = a[1] - d[1];
    let bdy = b[1] - d[1];
    let cdy = c[1] - d[1];
    let adz = a[2] - d[2];
    let bdz = b[2] - d[2];
    let cdz = c[2] - d[2];

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;

    let det = adz * (bdxcdy - cdxbdy) + bdz * (cdxady - adxcdy) + cdz * (adxbdy - bdxady);
    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * adz.abs()
        + (cdxady.abs() + adxcdy.abs()) * bdz.abs()
        + (adxbdy.abs() + bdxady.abs()) * cdz.abs();
    let errbound = O3D_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        return Orientation::from_f64(det);
    }
    orient3d_exact(a, b, c, d)
}

fn orient3d_exact(a: &Point3, b: &Point3, c: &Point3, d: &Point3) -> Orientation {
    let adx = Expansion::from_diff(a[0], d[0]);
    let bdx = Expansion::from_diff(b[0], d[0]);
    let cdx = Expansion::from_diff(c[0], d[0]);
    let ady = Expansion::from_diff(a[1], d[1]);
    let bdy = Expansion::from_diff(b[1], d[1]);
    let cdy = Expansion::from_diff(c[1], d[1]);
    let adz = Expansion::from_diff(a[2], d[2]);
    let bdz = Expansion::from_diff(b[2], d[2]);
    let cdz = Expansion::from_diff(c[2], d[2]);

    let m1 = bdx.mul(&cdy).sub(&cdx.mul(&bdy)).mul(&adz);
    let m2 = cdx.mul(&ady).sub(&adx.mul(&cdy)).mul(&bdz);
    let m3 = adx.mul(&bdy).sub(&bdx.mul(&ady)).mul(&cdz);
    let det = m1.add(&m2).add(&m3);
    Orientation::from_sign(det.sign())
}

/// In-circle test: `Positive` iff `d` lies strictly inside the circle
/// through `a, b, c`, **provided** `(a, b, c)` is counterclockwise
/// (if clockwise, the meaning flips). Exact.
pub fn incircle(a: &Point2, b: &Point2, c: &Point2, d: &Point2) -> Orientation {
    let adx = a[0] - d[0];
    let bdx = b[0] - d[0];
    let cdx = c[0] - d[0];
    let ady = a[1] - d[1];
    let bdy = b[1] - d[1];
    let cdy = c[1] - d[1];

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);
    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = ICC_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        return Orientation::from_f64(det);
    }
    incircle_exact(a, b, c, d)
}

fn incircle_exact(a: &Point2, b: &Point2, c: &Point2, d: &Point2) -> Orientation {
    let adx = Expansion::from_diff(a[0], d[0]);
    let bdx = Expansion::from_diff(b[0], d[0]);
    let cdx = Expansion::from_diff(c[0], d[0]);
    let ady = Expansion::from_diff(a[1], d[1]);
    let bdy = Expansion::from_diff(b[1], d[1]);
    let cdy = Expansion::from_diff(c[1], d[1]);

    let alift = adx.mul(&adx).add(&ady.mul(&ady));
    let blift = bdx.mul(&bdx).add(&bdy.mul(&bdy));
    let clift = cdx.mul(&cdx).add(&cdy.mul(&cdy));

    let bc = bdx.mul(&cdy).sub(&cdx.mul(&bdy));
    let ca = cdx.mul(&ady).sub(&adx.mul(&cdy));
    let ab = adx.mul(&bdy).sub(&bdx.mul(&ady));

    let det = alift.mul(&bc).add(&blift.mul(&ca)).add(&clift.mul(&ab));
    Orientation::from_sign(det.sign())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p2(x: f64, y: f64) -> Point2 {
        Point2::new([x, y])
    }
    fn p3(x: f64, y: f64, z: f64) -> Point3 {
        Point3::new([x, y, z])
    }

    #[test]
    fn orient2d_basic() {
        let a = p2(0.0, 0.0);
        let b = p2(1.0, 0.0);
        assert_eq!(orient2d(&a, &b, &p2(0.0, 1.0)), Orientation::Positive);
        assert_eq!(orient2d(&a, &b, &p2(0.0, -1.0)), Orientation::Negative);
        assert_eq!(orient2d(&a, &b, &p2(2.0, 0.0)), Orientation::Zero);
    }

    #[test]
    fn orient2d_near_degenerate_is_exact() {
        // Classic adversarial case: points nearly collinear along a line of
        // slope 1 with coordinates that round badly in double precision.
        let a = p2(0.5, 0.5);
        let b = p2(12.0, 12.0);
        // c on the line y = x exactly:
        assert_eq!(orient2d(&a, &b, &p2(24.0, 24.0)), Orientation::Zero);
        // c off the line by one ulp:
        let tiny = f64::EPSILON;
        assert_eq!(
            orient2d(&a, &b, &p2(24.0, 24.0 * (1.0 + tiny))),
            Orientation::Positive
        );
        assert_eq!(
            orient2d(&a, &b, &p2(24.0, 24.0 * (1.0 - tiny))),
            Orientation::Negative
        );
    }

    #[test]
    fn orient2d_consistency_under_rotation_of_args() {
        let a = p2(0.1, 0.2);
        let b = p2(0.3, 0.9);
        let c = p2(0.7, 0.4);
        let o = orient2d(&a, &b, &c);
        assert_eq!(orient2d(&b, &c, &a), o);
        assert_eq!(orient2d(&c, &a, &b), o);
        // Swapping two args flips the sign.
        assert_eq!(orient2d(&b, &a, &c).sign(), -o.sign());
    }

    #[test]
    fn orient3d_basic() {
        let a = p3(0.0, 0.0, 0.0);
        let b = p3(1.0, 0.0, 0.0);
        let c = p3(0.0, 1.0, 0.0);
        // d above the plane (direction of (b-a)x(c-a) = +z) => Negative.
        assert_eq!(
            orient3d(&a, &b, &c, &p3(0.0, 0.0, 1.0)),
            Orientation::Negative
        );
        assert_eq!(
            orient3d(&a, &b, &c, &p3(0.0, 0.0, -1.0)),
            Orientation::Positive
        );
        assert_eq!(orient3d(&a, &b, &c, &p3(5.0, 7.0, 0.0)), Orientation::Zero);
    }

    #[test]
    fn orient3d_near_coplanar_is_exact() {
        let a = p3(0.0, 0.0, 0.0);
        let b = p3(1.0, 0.0, 0.0);
        let c = p3(0.0, 1.0, 0.0);
        let eps = 2f64.powi(-60);
        assert_eq!(
            orient3d(&a, &b, &c, &p3(0.3, 0.3, eps)),
            Orientation::Negative
        );
        assert_eq!(
            orient3d(&a, &b, &c, &p3(0.3, 0.3, -eps)),
            Orientation::Positive
        );
        assert_eq!(orient3d(&a, &b, &c, &p3(0.3, 0.3, 0.0)), Orientation::Zero);
    }

    #[test]
    fn incircle_basic() {
        // Unit circle through these three ccw points.
        let a = p2(1.0, 0.0);
        let b = p2(0.0, 1.0);
        let c = p2(-1.0, 0.0);
        assert_eq!(incircle(&a, &b, &c, &p2(0.0, 0.0)), Orientation::Positive);
        assert_eq!(incircle(&a, &b, &c, &p2(0.0, -2.0)), Orientation::Negative);
        assert_eq!(incircle(&a, &b, &c, &p2(0.0, -1.0)), Orientation::Zero);
    }

    #[test]
    fn incircle_near_cocircular_is_exact() {
        let a = p2(1.0, 0.0);
        let b = p2(0.0, 1.0);
        let c = p2(-1.0, 0.0);
        // On the circle up to one ulp.
        let d_in = p2(0.0, -(1.0 - f64::EPSILON));
        let d_out = p2(0.0, -(1.0 + f64::EPSILON));
        assert_eq!(incircle(&a, &b, &c, &d_in), Orientation::Positive);
        assert_eq!(incircle(&a, &b, &c, &d_out), Orientation::Negative);
    }

    #[test]
    fn exact_paths_agree_with_filtered_on_clear_cases() {
        // For well-separated inputs the exact path must agree with the
        // filtered fast path.
        let a = p2(0.12, 3.4);
        let b = p2(5.6, 0.78);
        let c = p2(2.0, 2.0);
        assert_eq!(orient2d_exact(&a, &b, &c), orient2d(&a, &b, &c));
        let a3 = p3(0.1, 0.2, 0.3);
        let b3 = p3(1.1, 0.2, 0.4);
        let c3 = p3(0.3, 1.5, 0.1);
        let d3 = p3(0.7, 0.7, 2.0);
        assert_eq!(
            orient3d_exact(&a3, &b3, &c3, &d3),
            orient3d(&a3, &b3, &c3, &d3)
        );
        let d2 = p2(1.0, 1.0);
        assert_eq!(incircle_exact(&a, &b, &c, &d2), incircle(&a, &b, &c, &d2));
    }

    #[test]
    fn orientation_sign_helper() {
        assert_eq!(Orientation::Positive.sign(), 1);
        assert_eq!(Orientation::Zero.sign(), 0);
        assert_eq!(Orientation::Negative.sign(), -1);
    }
}
