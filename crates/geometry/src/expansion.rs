//! Floating-point expansion arithmetic.
//!
//! An *expansion* is a sum of `f64` components, nonoverlapping and ordered by
//! increasing magnitude, that represents a real number exactly
//! (Shewchuk, "Adaptive Precision Floating-Point Arithmetic and Fast Robust
//! Geometric Predicates", 1997). All operations below are exact: no bit of
//! the true value is lost. They are the slow path behind the statically
//! filtered predicates in [`crate::predicates`].
//!
//! We deliberately use `Vec<f64>`-valued expansions rather than the fixed
//! arrays of Shewchuk's hand-unrolled C: the exact path only runs on
//! (near-)degenerate inputs, so clarity wins over constant factors here.

/// Exact sum: returns `(x, y)` with `x + y == a + b` exactly, `x = fl(a+b)`.
/// (Knuth's TwoSum; no assumption on magnitudes.)
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bv = x - a;
    let av = x - bv;
    let br = b - bv;
    let ar = a - av;
    (x, ar + br)
}

/// Exact sum assuming `|a| >= |b|` (Dekker's FastTwoSum).
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bv = x - a;
    (x, b - bv)
}

/// Exact difference: `(x, y)` with `x + y == a - b` exactly.
#[inline]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let x = a - b;
    let bv = a - x;
    let av = x + bv;
    let br = bv - b;
    let ar = a - av;
    (x, ar + br)
}

/// Splits `a` into two half-precision (26-bit) pieces (Dekker).
#[inline]
fn split(a: f64) -> (f64, f64) {
    const SPLITTER: f64 = 134_217_729.0; // 2^27 + 1
    let c = SPLITTER * a;
    let hi = c - (c - a);
    (hi, a - hi)
}

/// Exact product: `(x, y)` with `x + y == a * b` exactly.
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let x = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let e1 = x - ahi * bhi;
    let e2 = e1 - alo * bhi;
    let e3 = e2 - ahi * blo;
    (x, alo * blo - e3)
}

/// An exact multi-component value. Components are stored in increasing order
/// of magnitude with zeros eliminated; the empty expansion is zero.
#[derive(Debug, Clone, PartialEq)]
pub struct Expansion(pub Vec<f64>);

impl Expansion {
    /// The zero expansion.
    pub fn zero() -> Self {
        Expansion(Vec::new())
    }

    /// A single-component expansion (which may be zero).
    pub fn from_f64(a: f64) -> Self {
        if a == 0.0 {
            Self::zero()
        } else {
            Expansion(vec![a])
        }
    }

    /// The exact difference `a - b` as a two-component expansion.
    pub fn from_diff(a: f64, b: f64) -> Self {
        let (x, y) = two_diff(a, b);
        let mut v = Vec::with_capacity(2);
        if y != 0.0 {
            v.push(y);
        }
        if x != 0.0 {
            v.push(x);
        }
        Expansion(v)
    }

    /// The exact product `a * b` as a two-component expansion.
    pub fn from_product(a: f64, b: f64) -> Self {
        let (x, y) = two_product(a, b);
        let mut v = Vec::with_capacity(2);
        if y != 0.0 {
            v.push(y);
        }
        if x != 0.0 {
            v.push(x);
        }
        Expansion(v)
    }

    /// Exact sum of two expansions (fast expansion sum with zero
    /// elimination).
    pub fn add(&self, other: &Self) -> Self {
        let (e, f) = (&self.0, &other.0);
        if e.is_empty() {
            return other.clone();
        }
        if f.is_empty() {
            return self.clone();
        }
        // Merge by increasing magnitude.
        let mut g: Vec<f64> = Vec::with_capacity(e.len() + f.len());
        let (mut i, mut j) = (0, 0);
        while i < e.len() && j < f.len() {
            if e[i].abs() < f[j].abs() {
                g.push(e[i]);
                i += 1;
            } else {
                g.push(f[j]);
                j += 1;
            }
        }
        g.extend_from_slice(&e[i..]);
        g.extend_from_slice(&f[j..]);
        // Linear pass of two-sums, eliminating zeros.
        let mut h: Vec<f64> = Vec::with_capacity(g.len());
        let mut q = g[0];
        for &gi in &g[1..] {
            let (qnew, hterm) = two_sum(q, gi);
            if hterm != 0.0 {
                h.push(hterm);
            }
            q = qnew;
        }
        if q != 0.0 {
            h.push(q);
        }
        Expansion(h)
    }

    /// Exact negation.
    pub fn neg(&self) -> Self {
        Expansion(self.0.iter().map(|&x| -x).collect())
    }

    /// Exact difference.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// Exact product with a scalar (scale-expansion with zero elimination).
    pub fn scale(&self, b: f64) -> Self {
        if self.0.is_empty() || b == 0.0 {
            return Self::zero();
        }
        let e = &self.0;
        let mut h: Vec<f64> = Vec::with_capacity(2 * e.len());
        let (mut q, lo) = two_product(e[0], b);
        if lo != 0.0 {
            h.push(lo);
        }
        for &ei in &e[1..] {
            let (t1, t0) = two_product(ei, b);
            let (q2, h1) = two_sum(q, t0);
            if h1 != 0.0 {
                h.push(h1);
            }
            let (q3, h2) = fast_two_sum(t1, q2);
            if h2 != 0.0 {
                h.push(h2);
            }
            q = q3;
        }
        if q != 0.0 {
            h.push(q);
        }
        Expansion(h)
    }

    /// Exact product of two expansions (distribute-and-sum).
    pub fn mul(&self, other: &Self) -> Self {
        let mut acc = Self::zero();
        for &b in &other.0 {
            acc = acc.add(&self.scale(b));
        }
        acc
    }

    /// Sign of the exact value: -1, 0, or +1. The largest-magnitude
    /// component carries the sign after zero elimination.
    pub fn sign(&self) -> i32 {
        match self.0.last() {
            None => 0,
            Some(&x) if x > 0.0 => 1,
            Some(&x) if x < 0.0 => -1,
            _ => 0,
        }
    }

    /// Closest `f64` approximation (sum of components, largest last).
    pub fn estimate(&self) -> f64 {
        self.0.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_exact() {
        let a = 1.0e16;
        let b = 1.0;
        let (x, y) = two_sum(a, b);
        // x alone rounds; x + y recovers the truth.
        assert_eq!(x, 1.0e16); // 1e16 + 1 rounds to 1e16 under f64? (ulp at 1e16 is 2)
        assert_eq!(y, 1.0);
    }

    #[test]
    fn two_diff_is_exact() {
        let (x, y) = two_diff(1.0e16, 1.0);
        // reconstruct exactly in higher precision by checking the identity
        // x + y = a - b via integer arithmetic at this scale
        assert_eq!(x as i64 + y as i64, 10_000_000_000_000_000 - 1);
    }

    #[test]
    fn two_product_is_exact() {
        let a = 1.0 + 2f64.powi(-30);
        let b = 1.0 + 2f64.powi(-30);
        let (x, y) = two_product(a, b);
        // a*b = 1 + 2^-29 + 2^-60 exactly; x misses the 2^-60 tail.
        assert_eq!(x, 1.0 + 2f64.powi(-29));
        assert_eq!(y, 2f64.powi(-60));
    }

    #[test]
    fn expansion_add_exact_cancellation() {
        let e = Expansion::from_f64(1.0e20).add(&Expansion::from_f64(1.0));
        let f = Expansion::from_f64(-1.0e20);
        let s = e.add(&f);
        assert_eq!(s.estimate(), 1.0);
        assert_eq!(s.sign(), 1);
    }

    #[test]
    fn expansion_scale_and_sign() {
        let e = Expansion::from_diff(1.0 + 2f64.powi(-52), 1.0); // = 2^-52
        assert_eq!(e.estimate(), 2f64.powi(-52));
        let s = e.scale(-3.0);
        assert_eq!(s.sign(), -1);
        assert_eq!(s.estimate(), -3.0 * 2f64.powi(-52));
    }

    #[test]
    fn expansion_mul_matches_integer_arithmetic() {
        // Exact integer products stay exact through the expansion path.
        let a = Expansion::from_f64(94_906_265.0); // ~2^26.5
        let b = Expansion::from_f64(94_906_267.0);
        let p = a.mul(&b);
        let want = 94_906_265i128 * 94_906_267i128;
        // The product exceeds 2^53 so a single f64 cannot hold it, but the
        // expansion components sum to it exactly.
        let exact: i128 = p.0.iter().map(|&c| c as i128).sum();
        assert_eq!(exact, want);
        assert_eq!(p.sign(), 1);
    }

    #[test]
    fn zero_expansion() {
        let z = Expansion::zero();
        assert_eq!(z.sign(), 0);
        assert_eq!(z.estimate(), 0.0);
        let e = Expansion::from_f64(5.0);
        assert_eq!(z.add(&e).estimate(), 5.0);
        assert_eq!(e.sub(&e).sign(), 0);
        assert_eq!(e.mul(&z).sign(), 0);
    }

    #[test]
    fn sign_of_tiny_difference() {
        // (1 + eps) - 1 - eps == 0 exactly.
        let eps = 2f64.powi(-52);
        let e = Expansion::from_diff(1.0 + eps, 1.0).sub(&Expansion::from_f64(eps));
        assert_eq!(e.sign(), 0);
    }
}
