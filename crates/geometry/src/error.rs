//! The shared error type of the library's non-panicking API surface.
//!
//! Historically every algorithm crate policed its own preconditions with
//! `assert!`, so degenerate input (an empty point set, a closest-pair call
//! on one point, `k` larger than the live set) crashed the process — fine
//! for paper benchmarks, fatal for a serving system. [`GeoError`] is the
//! one vocabulary those preconditions now speak: algorithm crates expose
//! `try_*` entry points returning [`GeoResult`], and the `pargeo-store`
//! façade maps every request through them so no client input can panic the
//! store.

use std::error::Error;
use std::fmt;

/// Everything that can go wrong with a geometric request.
///
/// Each variant carries `op`, the name of the operation that rejected the
/// input (e.g. `"closest_pair"`, `"hull3d"`), so a batched caller can tell
/// which request of a mixed batch failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeoError {
    /// The operation needs at least one point and got none.
    EmptyInput {
        /// Operation that rejected the input.
        op: &'static str,
    },
    /// The operation needs more points than it got (e.g. closest pair
    /// needs two, a 3D hull needs four).
    TooFewPoints {
        /// Operation that rejected the input.
        op: &'static str,
        /// Minimum number of points required.
        needed: usize,
        /// Number of points actually supplied.
        got: usize,
    },
    /// The input is geometrically degenerate for this operation — e.g. all
    /// points collinear for a 2D hull or Delaunay triangulation, all
    /// coplanar for a 3D hull.
    Degenerate {
        /// Operation that rejected the input.
        op: &'static str,
        /// What degeneracy was detected (`"collinear"`, `"coplanar"`, …).
        what: &'static str,
    },
    /// The operation is not defined in this dimension (e.g. Delaunay
    /// triangulation outside `D = 2`, convex hull outside `D ∈ {2, 3}`).
    DimensionUnsupported {
        /// Operation that rejected the input.
        op: &'static str,
        /// The dimension that was requested.
        dim: usize,
    },
    /// A `k`-nearest-neighbor style parameter exceeds the live point count.
    KTooLarge {
        /// Operation that rejected the input.
        op: &'static str,
        /// The requested `k`.
        k: usize,
        /// The number of live points available.
        n: usize,
    },
    /// A numeric or structural parameter is out of range.
    BadParameter {
        /// Operation that rejected the input.
        op: &'static str,
        /// Which constraint was violated.
        what: &'static str,
    },
}

impl GeoError {
    /// The name of the operation that produced this error.
    pub fn op(&self) -> &'static str {
        match self {
            GeoError::EmptyInput { op }
            | GeoError::TooFewPoints { op, .. }
            | GeoError::Degenerate { op, .. }
            | GeoError::DimensionUnsupported { op, .. }
            | GeoError::KTooLarge { op, .. }
            | GeoError::BadParameter { op, .. } => op,
        }
    }
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::EmptyInput { op } => write!(f, "{op}: empty input"),
            GeoError::TooFewPoints { op, needed, got } => {
                write!(f, "{op}: needs at least {needed} points, got {got}")
            }
            GeoError::Degenerate { op, what } => {
                write!(f, "{op}: degenerate ({what}) input")
            }
            GeoError::DimensionUnsupported { op, dim } => {
                write!(f, "{op}: not defined in dimension {dim}")
            }
            GeoError::KTooLarge { op, k, n } => {
                write!(f, "{op}: k = {k} exceeds live point count {n}")
            }
            GeoError::BadParameter { op, what } => write!(f, "{op}: {what}"),
        }
    }
}

impl Error for GeoError {}

/// Shorthand for `Result<T, GeoError>`.
pub type GeoResult<T> = Result<T, GeoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_operation() {
        let cases: Vec<(GeoError, &str)> = vec![
            (GeoError::EmptyInput { op: "seb" }, "seb: empty input"),
            (
                GeoError::TooFewPoints {
                    op: "closest_pair",
                    needed: 2,
                    got: 1,
                },
                "closest_pair: needs at least 2 points, got 1",
            ),
            (
                GeoError::Degenerate {
                    op: "hull3d",
                    what: "coplanar",
                },
                "hull3d: degenerate (coplanar) input",
            ),
            (
                GeoError::DimensionUnsupported {
                    op: "delaunay",
                    dim: 5,
                },
                "delaunay: not defined in dimension 5",
            ),
            (
                GeoError::KTooLarge {
                    op: "knn",
                    k: 10,
                    n: 3,
                },
                "knn: k = 10 exceeds live point count 3",
            ),
            (
                GeoError::BadParameter {
                    op: "knn_graph",
                    what: "k must be positive",
                },
                "knn_graph: k must be positive",
            ),
        ];
        for (e, want) in cases {
            assert_eq!(e.to_string(), want);
            assert_eq!(e.op(), want.split(':').next().unwrap());
        }
    }
}
