//! Columnar (structure-of-arrays) point storage.
//!
//! The tree backends' hot loops — k-NN leaf scans, range filters, kd
//! splits — touch one axis at a time. Array-of-structs `[(x, y), …]`
//! layouts drag every axis through cache on each scan; [`SoaPoints`]
//! stores one `Vec<f64>` per axis plus an id column, so an axis scan is a
//! dense sequential read and the point count per cache line doubles in 2D
//! (quadruples for the 1-axis scans of a kd split). `Point<D>` values are
//! materialized only at API boundaries ([`SoaPoints::get`]).
//!
//! The container is deliberately dumb: no parallelism (this crate sits
//! below the scheduler), no geometry beyond per-row distance. Tree crates
//! build it with their own parallel gathers via [`SoaPoints::axis_mut`].

use crate::point::Point;

/// Points in structure-of-arrays layout: one coordinate column per axis
/// plus an id column, all of equal length.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaPoints<const D: usize> {
    coords: [Vec<f64>; D],
    ids: Vec<u32>,
}

impl<const D: usize> std::default::Default for SoaPoints<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> SoaPoints<D> {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            coords: std::array::from_fn(|_| Vec::new()),
            ids: Vec::new(),
        }
    }

    /// A zero-filled store of `n` rows, ready for scatter via
    /// [`axis_mut`](Self::axis_mut) / [`ids_mut`](Self::ids_mut).
    pub fn with_len(n: usize) -> Self {
        Self {
            coords: std::array::from_fn(|_| vec![0.0; n]),
            ids: vec![0; n],
        }
    }

    /// Gathers `items` into columns.
    pub fn from_items(items: &[(Point<D>, u32)]) -> Self {
        let mut s = Self::with_len(items.len());
        for d in 0..D {
            for (x, (p, _)) in s.coords[d].iter_mut().zip(items) {
                *x = p.coords[d];
            }
        }
        for (slot, (_, id)) in s.ids.iter_mut().zip(items) {
            *slot = *id;
        }
        s
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True iff no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends one row.
    pub fn push(&mut self, p: Point<D>, id: u32) {
        for d in 0..D {
            self.coords[d].push(p.coords[d]);
        }
        self.ids.push(id);
    }

    /// Row `i` as a `Point` (the API-boundary conversion).
    #[inline]
    pub fn get(&self, i: usize) -> Point<D> {
        Point::new(std::array::from_fn(|d| self.coords[d][i]))
    }

    /// Id of row `i`.
    #[inline]
    pub fn id(&self, i: usize) -> u32 {
        self.ids[i]
    }

    /// Coordinate of row `i` on `axis`.
    #[inline]
    pub fn coord(&self, i: usize, axis: usize) -> f64 {
        self.coords[axis][i]
    }

    /// The full column of `axis`.
    #[inline]
    pub fn axis(&self, axis: usize) -> &[f64] {
        &self.coords[axis]
    }

    /// Mutable column of `axis` (scatter target for bulk builds).
    #[inline]
    pub fn axis_mut(&mut self, axis: usize) -> &mut [f64] {
        &mut self.coords[axis]
    }

    /// The id column.
    #[inline]
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Mutable id column (scatter target for bulk builds).
    #[inline]
    pub fn ids_mut(&mut self) -> &mut [u32] {
        &mut self.ids
    }

    /// Overwrites row `i`.
    #[inline]
    pub fn set(&mut self, i: usize, p: Point<D>, id: u32) {
        for d in 0..D {
            self.coords[d][i] = p.coords[d];
        }
        self.ids[i] = id;
    }

    /// Squared Euclidean distance from row `i` to `q`, column-wise — no
    /// `Point` materialization.
    #[inline]
    pub fn dist_sq(&self, i: usize, q: &Point<D>) -> f64 {
        let mut s = 0.0;
        for d in 0..D {
            let diff = self.coords[d][i] - q.coords[d];
            s += diff * diff;
        }
        s
    }

    /// Iterates rows as `(Point, id)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Point<D>, u32)> + '_ {
        (0..self.len()).map(|i| (self.get(i), self.id(i)))
    }

    /// Heap bytes held by the columns (capacity, not length) — the arena
    /// accounting surfaced as `index_arena_bytes`.
    pub fn bytes(&self) -> usize {
        // Lengths, not capacities: the figure must be a deterministic
        // function of the stored points so clone-based snapshot pins
        // report identically to a reference structure with a different
        // allocation history.
        let coord: usize = self
            .coords
            .iter()
            .map(|c| c.len() * std::mem::size_of::<f64>())
            .sum();
        coord + self.ids.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_items() {
        let items: Vec<(Point<3>, u32)> = (0..100)
            .map(|i| (Point::new([i as f64, -(i as f64), 0.5 * i as f64]), i))
            .collect();
        let s = SoaPoints::from_items(&items);
        assert_eq!(s.len(), 100);
        assert_eq!(s.bytes(), 100 * (3 * 8 + 4));
        for (i, &(p, id)) in items.iter().enumerate() {
            assert_eq!(s.get(i), p);
            assert_eq!(s.id(i), id);
            assert_eq!(s.coord(i, 1), p.coords[1]);
            assert_eq!(s.dist_sq(i, &p), 0.0);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), items);
        let q = Point::new([0.0, 0.0, 0.0]);
        assert_eq!(s.dist_sq(2, &q), items[2].0.dist_sq(&q));
    }

    #[test]
    fn scatter_via_columns() {
        let mut s = SoaPoints::<2>::with_len(4);
        s.axis_mut(0).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        s.axis_mut(1).copy_from_slice(&[5.0, 6.0, 7.0, 8.0]);
        s.ids_mut().copy_from_slice(&[10, 11, 12, 13]);
        assert_eq!(s.get(2), Point::new([3.0, 7.0]));
        assert_eq!(s.id(3), 13);
        s.set(0, Point::new([9.0, 9.0]), 99);
        assert_eq!(s.get(0), Point::new([9.0, 9.0]));
        assert_eq!(s.id(0), 99);
        let mut t = SoaPoints::<2>::new();
        assert!(t.is_empty());
        t.push(Point::new([1.0, 2.0]), 7);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0), Point::new([1.0, 2.0]));
    }
}
