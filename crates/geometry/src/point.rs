//! Fixed-dimension points over `f64`.
//!
//! `Point<D>` is a `Copy` value type — geometry modules move points around in
//! flat arrays (the paper's implementations are array-of-structs too), so the
//! type stays `#[repr(transparent)]`-thin: just `[f64; D]`.

use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A point (or vector) in `D`-dimensional Euclidean space.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(transparent)]
pub struct Point<const D: usize> {
    /// Cartesian coordinates.
    pub coords: [f64; D],
}

/// 2-dimensional point.
pub type Point2 = Point<2>;
/// 3-dimensional point.
pub type Point3 = Point<3>;
/// 4-dimensional point.
pub type Point4 = Point<4>;
/// 5-dimensional point.
pub type Point5 = Point<5>;
/// 7-dimensional point (the paper's BDL-tree evaluation dimension).
pub type Point7 = Point<7>;

impl<const D: usize> Point<D> {
    /// The number of dimensions.
    pub const DIM: usize = D;

    /// Creates a point from its coordinate array.
    #[inline]
    pub const fn new(coords: [f64; D]) -> Self {
        Self { coords }
    }

    /// The origin.
    #[inline]
    pub fn origin() -> Self {
        Self { coords: [0.0; D] }
    }

    /// Coordinate bit pattern, usable as an exact-equality hash key (the
    /// delete-by-value semantics shared by every dynamic index). Note that
    /// `to_bits` distinguishes `-0.0` from `+0.0` and distinct NaN
    /// payloads, so this is bitwise identity, not float `==`.
    #[inline]
    pub fn bits_key(&self) -> [u64; D] {
        self.coords.map(f64::to_bits)
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &Self) -> f64 {
        let mut s = 0.0;
        for i in 0..D {
            s += self.coords[i] * other.coords[i];
        }
        s
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist_sq(&self, other: &Self) -> f64 {
        let mut s = 0.0;
        for i in 0..D {
            let d = self.coords[i] - other.coords[i];
            s += d * d;
        }
        s
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Self) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared L2 norm.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.dot(self)
    }

    /// L2 norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: &Self) -> Self {
        let mut c = [0.0; D];
        for i in 0..D {
            c[i] = self.coords[i].min(other.coords[i]);
        }
        Self { coords: c }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &Self) -> Self {
        let mut c = [0.0; D];
        for i in 0..D {
            c[i] = self.coords[i].max(other.coords[i]);
        }
        Self { coords: c }
    }

    /// Scales by `1 / s`.
    #[inline]
    pub fn div(&self, s: f64) -> Self {
        *self * (1.0 / s)
    }

    /// Midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Self) -> Self {
        let mut c = [0.0; D];
        for i in 0..D {
            c[i] = 0.5 * (self.coords[i] + other.coords[i]);
        }
        Self { coords: c }
    }

    /// True if all coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }
}

impl Point<3> {
    /// 3D cross product.
    #[inline]
    pub fn cross(&self, o: &Self) -> Self {
        Point::new([
            self.coords[1] * o.coords[2] - self.coords[2] * o.coords[1],
            self.coords[2] * o.coords[0] - self.coords[0] * o.coords[2],
            self.coords[0] * o.coords[1] - self.coords[1] * o.coords[0],
        ])
    }
}

impl Point<2> {
    /// 2D cross product (z-component of the 3D cross of the embedded vectors).
    #[inline]
    pub fn cross2(&self, o: &Self) -> f64 {
        self.coords[0] * o.coords[1] - self.coords[1] * o.coords[0]
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        let mut c = [0.0; D];
        for i in 0..D {
            c[i] = self.coords[i] + o.coords[i];
        }
        Self { coords: c }
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        let mut c = [0.0; D];
        for i in 0..D {
            c[i] = self.coords[i] - o.coords[i];
        }
        Self { coords: c }
    }
}

impl<const D: usize> Mul<f64> for Point<D> {
    type Output = Self;
    #[inline]
    fn mul(self, s: f64) -> Self {
        let mut c = [0.0; D];
        for i in 0..D {
            c[i] = self.coords[i] * s;
        }
        Self { coords: c }
    }
}

impl<const D: usize> Neg for Point<D> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        self * -1.0
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.coords[i]
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::origin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Point2::new([1.0, 2.0]);
        let b = Point2::new([3.0, 5.0]);
        assert_eq!((a + b).coords, [4.0, 7.0]);
        assert_eq!((b - a).coords, [2.0, 3.0]);
        assert_eq!((a * 2.0).coords, [2.0, 4.0]);
        assert_eq!((-a).coords, [-1.0, -2.0]);
    }

    #[test]
    fn distances() {
        let a = Point3::new([0.0, 0.0, 0.0]);
        let b = Point3::new([3.0, 4.0, 0.0]);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn cross_products() {
        let x = Point3::new([1.0, 0.0, 0.0]);
        let y = Point3::new([0.0, 1.0, 0.0]);
        assert_eq!(x.cross(&y).coords, [0.0, 0.0, 1.0]);
        let u = Point2::new([1.0, 0.0]);
        let v = Point2::new([0.0, 1.0]);
        assert_eq!(u.cross2(&v), 1.0);
        assert_eq!(v.cross2(&u), -1.0);
    }

    #[test]
    fn min_max_midpoint() {
        let a = Point2::new([1.0, 5.0]);
        let b = Point2::new([3.0, 2.0]);
        assert_eq!(a.min(&b).coords, [1.0, 2.0]);
        assert_eq!(a.max(&b).coords, [3.0, 5.0]);
        assert_eq!(a.midpoint(&b).coords, [2.0, 3.5]);
    }

    #[test]
    fn indexing() {
        let mut a = Point5::new([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a[3], 4.0);
        a[3] = 9.0;
        assert_eq!(a[3], 9.0);
    }

    #[test]
    fn finiteness() {
        assert!(Point2::new([1.0, 2.0]).is_finite());
        assert!(!Point2::new([f64::NAN, 2.0]).is_finite());
        assert!(!Point2::new([1.0, f64::INFINITY]).is_finite());
    }
}
