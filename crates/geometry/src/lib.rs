//! # pargeo-geometry — geometry kernel
//!
//! The numeric substrate shared by every ParGeo-rs module:
//!
//! * [`point`] — const-generic fixed-dimension points (`Point<D>`) with the
//!   vector arithmetic the algorithms need and nothing more.
//! * [`bbox`] — axis-aligned bounding boxes with the distance/separation
//!   queries used by kd-trees, WSPD and dual-tree traversals.
//! * [`expansion`] — floating-point expansion arithmetic (Dekker/Knuth
//!   two-sum and two-product ladders, Shewchuk's zero-eliminating sums).
//! * [`predicates`] — *exact* orientation and in-circle tests with a cheap
//!   static filter in front: the fast path is a plain double-precision
//!   determinant accepted only when it clears a forward error bound; the slow
//!   path evaluates the determinant exactly over expansions. This plays the
//!   role CGAL's exact predicates play for the original ParGeo.
//! * [`ball`] — spheres through support sets (the Welzl base case), solved
//!   via a small Gram-system Gaussian elimination.
//! * [`error`] — [`GeoError`], the shared vocabulary of the library's
//!   non-panicking `try_*` entry points and of the `pargeo-store` façade.

#![warn(missing_docs)]

pub mod ball;
pub mod bbox;
pub mod error;
pub mod expansion;
pub mod point;
pub mod predicates;
pub mod soa;

pub use ball::{ball_through, Ball};
pub use bbox::Bbox;
pub use error::{GeoError, GeoResult};
pub use point::{Point, Point2, Point3, Point4, Point5, Point7};
pub use predicates::{incircle, orient2d, orient3d, Orientation};
pub use soa::SoaPoints;
