//! Axis-aligned bounding boxes.
//!
//! `Bbox<D>` supports the queries the tree modules need: point containment,
//! box/box and box/point distances (k-NN pruning), the widest dimension
//! (kd-splits), and the well-separation test of Callahan–Kosaraju (WSPD).

use crate::point::Point;

/// An axis-aligned box `[min, max]` in `D` dimensions. An *empty* box has
/// `min[i] > max[i]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bbox<const D: usize> {
    /// Componentwise lower corner.
    pub min: Point<D>,
    /// Componentwise upper corner.
    pub max: Point<D>,
}

impl<const D: usize> Bbox<D> {
    /// The empty box (identity for [`Bbox::union`]).
    pub fn empty() -> Self {
        Self {
            min: Point::new([f64::INFINITY; D]),
            max: Point::new([f64::NEG_INFINITY; D]),
        }
    }

    /// The degenerate box containing a single point.
    pub fn from_point(p: &Point<D>) -> Self {
        Self { min: *p, max: *p }
    }

    /// The smallest box containing all `points`.
    pub fn from_points(points: &[Point<D>]) -> Self {
        let mut b = Self::empty();
        for p in points {
            b.extend(p);
        }
        b
    }

    /// True iff the box contains no point.
    pub fn is_empty(&self) -> bool {
        (0..D).any(|i| self.min[i] > self.max[i])
    }

    /// Grows the box to contain `p`.
    #[inline]
    pub fn extend(&mut self, p: &Point<D>) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// The smallest box containing both operands.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        Self {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// True iff `p` lies inside (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: &Point<D>) -> bool {
        (0..D).all(|i| self.min[i] <= p[i] && p[i] <= self.max[i])
    }

    /// [`Bbox::contains`] for row `i` of a columnar store — reads the
    /// coordinate columns directly, no `Point` materialization.
    #[inline]
    pub fn contains_soa(&self, pts: &crate::soa::SoaPoints<D>, i: usize) -> bool {
        (0..D).all(|d| {
            let c = pts.coord(i, d);
            self.min[d] <= c && c <= self.max[d]
        })
    }

    /// True iff `other` lies entirely inside `self`.
    pub fn contains_box(&self, other: &Self) -> bool {
        (0..D).all(|i| self.min[i] <= other.min[i] && other.max[i] <= self.max[i])
    }

    /// True iff the boxes share at least one point.
    pub fn intersects(&self, other: &Self) -> bool {
        (0..D).all(|i| self.min[i] <= other.max[i] && other.min[i] <= self.max[i])
    }

    /// Squared distance from `p` to the nearest point of the box
    /// (0 if inside). The k-NN pruning bound.
    #[inline]
    pub fn dist_sq_to_point(&self, p: &Point<D>) -> f64 {
        let mut s = 0.0;
        for i in 0..D {
            let d = if p[i] < self.min[i] {
                self.min[i] - p[i]
            } else if p[i] > self.max[i] {
                p[i] - self.max[i]
            } else {
                0.0
            };
            s += d * d;
        }
        s
    }

    /// Squared distance from `p` to the farthest point of the box.
    #[inline]
    pub fn max_dist_sq_to_point(&self, p: &Point<D>) -> f64 {
        let mut s = 0.0;
        for i in 0..D {
            let d = (p[i] - self.min[i]).abs().max((p[i] - self.max[i]).abs());
            s += d * d;
        }
        s
    }

    /// Squared distance between the closest points of two boxes (0 if they
    /// intersect).
    #[inline]
    pub fn dist_sq_to_box(&self, other: &Self) -> f64 {
        let mut s = 0.0;
        for i in 0..D {
            let d = if other.max[i] < self.min[i] {
                self.min[i] - other.max[i]
            } else if self.max[i] < other.min[i] {
                other.min[i] - self.max[i]
            } else {
                0.0
            };
            s += d * d;
        }
        s
    }

    /// Side length along dimension `i` (0 for empty boxes).
    #[inline]
    pub fn side(&self, i: usize) -> f64 {
        (self.max[i] - self.min[i]).max(0.0)
    }

    /// The dimension with the largest extent.
    pub fn widest_dim(&self) -> usize {
        let mut best = 0;
        let mut w = self.side(0);
        for i in 1..D {
            let s = self.side(i);
            if s > w {
                w = s;
                best = i;
            }
        }
        best
    }

    /// Squared length of the diagonal.
    pub fn diag_sq(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..D {
            let d = self.side(i);
            s += d * d;
        }
        s
    }

    /// Center point.
    pub fn center(&self) -> Point<D> {
        self.min.midpoint(&self.max)
    }

    /// Callahan–Kosaraju well-separation: both boxes fit in balls of radius
    /// `r` (circumradius of the larger box), and the balls are at least
    /// `s · r` apart.
    pub fn well_separated(&self, other: &Self, s: f64) -> bool {
        let r_sq = self.diag_sq().max(other.diag_sq()) / 4.0;
        let center_dist_sq = self.center().dist_sq(&other.center());
        // ||c1 - c2|| >= (s + 2) * r  (gap of s·r between balls of radius r)
        center_dist_sq >= (s + 2.0) * (s + 2.0) * r_sq
    }
}

impl<const D: usize> Default for Bbox<D> {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{Point2, Point3};

    #[test]
    fn empty_box_behaviour() {
        let b = Bbox::<2>::empty();
        assert!(b.is_empty());
        assert!(!b.contains(&Point2::new([0.0, 0.0])));
        let u = b.union(&Bbox::from_point(&Point2::new([1.0, 2.0])));
        assert!(!u.is_empty());
        assert_eq!(u.min.coords, [1.0, 2.0]);
    }

    #[test]
    fn from_points_and_contains() {
        let pts = vec![
            Point2::new([0.0, 0.0]),
            Point2::new([2.0, 1.0]),
            Point2::new([1.0, 3.0]),
        ];
        let b = Bbox::from_points(&pts);
        assert_eq!(b.min.coords, [0.0, 0.0]);
        assert_eq!(b.max.coords, [2.0, 3.0]);
        for p in &pts {
            assert!(b.contains(p));
        }
        assert!(!b.contains(&Point2::new([2.1, 0.0])));
    }

    #[test]
    fn point_distances() {
        let b = Bbox {
            min: Point2::new([0.0, 0.0]),
            max: Point2::new([1.0, 1.0]),
        };
        assert_eq!(b.dist_sq_to_point(&Point2::new([0.5, 0.5])), 0.0);
        assert_eq!(b.dist_sq_to_point(&Point2::new([2.0, 0.5])), 1.0);
        assert_eq!(b.dist_sq_to_point(&Point2::new([2.0, 2.0])), 2.0);
        assert_eq!(b.max_dist_sq_to_point(&Point2::new([0.0, 0.0])), 2.0);
    }

    #[test]
    fn box_distances() {
        let a = Bbox {
            min: Point2::new([0.0, 0.0]),
            max: Point2::new([1.0, 1.0]),
        };
        let c = Bbox {
            min: Point2::new([3.0, 0.0]),
            max: Point2::new([4.0, 1.0]),
        };
        assert_eq!(a.dist_sq_to_box(&c), 4.0);
        assert_eq!(a.dist_sq_to_box(&a), 0.0);
        assert!(a.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn widest_dim_and_diag() {
        let b = Bbox {
            min: Point3::new([0.0, 0.0, 0.0]),
            max: Point3::new([1.0, 5.0, 2.0]),
        };
        assert_eq!(b.widest_dim(), 1);
        assert_eq!(b.diag_sq(), 1.0 + 25.0 + 4.0);
        assert_eq!(b.center().coords, [0.5, 2.5, 1.0]);
    }

    #[test]
    fn well_separated_scaling() {
        let a = Bbox {
            min: Point2::new([0.0, 0.0]),
            max: Point2::new([1.0, 1.0]),
        };
        let far = Bbox {
            min: Point2::new([100.0, 0.0]),
            max: Point2::new([101.0, 1.0]),
        };
        let near = Bbox {
            min: Point2::new([1.5, 0.0]),
            max: Point2::new([2.5, 1.0]),
        };
        assert!(a.well_separated(&far, 2.0));
        assert!(!a.well_separated(&near, 2.0));
    }
}
