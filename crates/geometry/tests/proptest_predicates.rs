//! Property-based tests for the exact predicates: algebraic identities
//! that must hold for *every* input, including adversarially degenerate
//! ones.

use pargeo_geometry::{incircle, orient2d, orient3d, Orientation, Point2, Point3};
use proptest::prelude::*;

fn small_coord() -> impl Strategy<Value = f64> {
    // Mix of smooth values and tiny-grid values that force near-degeneracy.
    prop_oneof![-1e3f64..1e3, (-100i64..100).prop_map(|i| i as f64 * 0.5),]
}

fn p2() -> impl Strategy<Value = Point2> {
    (small_coord(), small_coord()).prop_map(|(x, y)| Point2::new([x, y]))
}

fn p3() -> impl Strategy<Value = Point3> {
    (small_coord(), small_coord(), small_coord()).prop_map(|(x, y, z)| Point3::new([x, y, z]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Swapping two arguments flips the orientation sign.
    #[test]
    fn orient2d_antisymmetry(a in p2(), b in p2(), c in p2()) {
        prop_assert_eq!(orient2d(&a, &b, &c).sign(), -orient2d(&b, &a, &c).sign());
        prop_assert_eq!(orient2d(&a, &b, &c).sign(), orient2d(&b, &c, &a).sign());
    }

    /// Translation invariance (exact: translations by representable values
    /// still shift all points identically, so signs cannot change when the
    /// arithmetic is exact — catches filter/exact-path disagreements).
    #[test]
    fn orient2d_translation_invariance(a in p2(), b in p2(), c in p2(),
                                       dx in -64i64..64, dy in -64i64..64) {
        let t = Point2::new([dx as f64 * 1024.0, dy as f64 * 1024.0]);
        let o1 = orient2d(&a, &b, &c);
        let o2 = orient2d(&(a + t), &(b + t), &(c + t));
        // Exact only when the translated coordinates are exactly
        // representable; powers-of-two offsets on our strategies are.
        prop_assert_eq!(o1, o2);
    }

    /// Exactly collinear triples report Zero.
    #[test]
    fn orient2d_detects_exact_collinearity(
        x0 in -1000i64..1000, y0 in -1000i64..1000,
        dx in -50i64..50, dy in -50i64..50,
        s in 1i64..20, t in 1i64..20,
    ) {
        let a = Point2::new([x0 as f64, y0 as f64]);
        let b = Point2::new([(x0 + s * dx) as f64, (y0 + s * dy) as f64]);
        let c = Point2::new([(x0 + (s + t) * dx) as f64, (y0 + (s + t) * dy) as f64]);
        prop_assert_eq!(orient2d(&a, &b, &c), Orientation::Zero);
    }

    /// 3D antisymmetry under swapping the first two arguments.
    #[test]
    fn orient3d_antisymmetry(a in p3(), b in p3(), c in p3(), d in p3()) {
        prop_assert_eq!(orient3d(&a, &b, &c, &d).sign(), -orient3d(&b, &a, &c, &d).sign());
    }

    /// Exactly coplanar quadruples report Zero (points on an integer
    /// lattice plane).
    #[test]
    fn orient3d_detects_exact_coplanarity(
        ax in -100i64..100, ay in -100i64..100,
        bx in -100i64..100, by in -100i64..100,
        cx in -100i64..100, cy in -100i64..100,
        dx in -100i64..100, dy in -100i64..100,
        px in -5i64..5, py in -5i64..5,
    ) {
        // All points on the plane z = px*x + py*y (integer arithmetic,
        // exactly representable).
        let z = |x: i64, y: i64| (px * x + py * y) as f64;
        let a = Point3::new([ax as f64, ay as f64, z(ax, ay)]);
        let b = Point3::new([bx as f64, by as f64, z(bx, by)]);
        let c = Point3::new([cx as f64, cy as f64, z(cx, cy)]);
        let d = Point3::new([dx as f64, dy as f64, z(dx, dy)]);
        prop_assert_eq!(orient3d(&a, &b, &c, &d), Orientation::Zero);
    }

    /// incircle is symmetric under rotation of the first three points and
    /// flips under swaps.
    #[test]
    fn incircle_symmetries(a in p2(), b in p2(), c in p2(), d in p2()) {
        let o = incircle(&a, &b, &c, &d);
        prop_assert_eq!(incircle(&b, &c, &a, &d), o);
        prop_assert_eq!(incircle(&c, &a, &b, &d).sign(), o.sign());
        prop_assert_eq!(incircle(&b, &a, &c, &d).sign(), -o.sign());
    }

    /// A point inside the triangle (strictly) is inside the circumcircle
    /// when the triangle is CCW.
    #[test]
    fn incircle_contains_triangle_interior(a in p2(), b in p2(), c in p2(),
                                           wa in 1u32..100, wb in 1u32..100, wc in 1u32..100) {
        prop_assume!(orient2d(&a, &b, &c) == Orientation::Positive);
        let wsum = (wa + wb + wc) as f64;
        let d = (a * (wa as f64) + b * (wb as f64) + c * (wc as f64)) * (1.0 / wsum);
        // The weighted centroid can round onto an edge; require strict
        // interiority first.
        prop_assume!(orient2d(&a, &b, &d) == Orientation::Positive);
        prop_assume!(orient2d(&b, &c, &d) == Orientation::Positive);
        prop_assume!(orient2d(&c, &a, &d) == Orientation::Positive);
        prop_assert_eq!(incircle(&a, &b, &c, &d), Orientation::Positive);
    }
}
