//! # pargeo-rangequery — parallel range, segment, and rectangle queries
//!
//! The orthogonal-query module family of Sun & Blelloch's *"Parallel Range,
//! Segment and Rectangle Queries with Augmented Maps"* (see PAPERS.md),
//! grafted onto this workspace's ParGeo substrate. The original ParGeo stops
//! at kd-tree spatial search; this crate adds the classic static structures
//! for **batched** orthogonal queries over large query sets:
//!
//! * [`rangetree`] — a static 2D range tree ([`RangeTree2d`]): points sorted
//!   by `x` with a layered hierarchy of `y`-sorted auxiliary arrays (the
//!   flat-array form of the fractional-cascading range tree), built
//!   bottom-up in parallel. Answers axis-aligned **count** and **report**
//!   queries in `O(log² n)` / `O(log² n + k log k)` (the `k log k` pays
//!   for the sorted-ids output contract).
//! * [`interval`] — a centered interval tree ([`IntervalTree`]) over 1D
//!   intervals. Answers **stabbing** count/report and interval
//!   **intersection counting** (the 1D segment-query problem).
//! * [`rect`] — a rectangle-intersection counter ([`RectangleSet`]) composed
//!   from the two structures above: interval trees over the rectangles'
//!   `x`/`y` shadows plus four dominance range trees over their corners.
//! * [`batch`] — the shared [`BatchQuery`] trait: one `answer` per query
//!   plus a data-parallel `answer_batch`, with [`Count`]/[`Report`] wrappers
//!   selecting the answer mode. The kd-tree from `pargeo-kdtree` implements
//!   the same trait, so tree backends are swappable in the benches.
//!
//! All structures are static (build once, query many), built with the
//! `pargeo-parlay` primitives (`sample_sort_by`, fork-join recursion) and
//! queried data-parallel over the batch — the parallelization strategy of
//! the source paper, where inter-query parallelism dominates once batches
//! are large.
//!
//! ```
//! use pargeo_rangequery::{BatchQuery, Count, RangeTree2d};
//! use pargeo_geometry::{Bbox, Point2};
//!
//! let pts = vec![
//!     Point2::new([0.0, 0.0]),
//!     Point2::new([1.0, 2.0]),
//!     Point2::new([2.0, 1.0]),
//! ];
//! let tree = RangeTree2d::build(&pts);
//! let q = Count(Bbox { min: Point2::new([0.5, 0.5]), max: Point2::new([2.5, 2.5]) });
//! assert_eq!(tree.answer(&q), 2);
//! assert_eq!(tree.answer_batch(&[q]), vec![2]);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod interval;
pub mod rangetree;
pub mod rect;

pub use batch::{BatchQuery, Count, Report, BATCH_GRAIN};
pub use interval::IntervalTree;
pub use rangetree::RangeTree2d;
pub use rect::RectangleSet;
