//! Static 2D range tree with layered `y`-sorted auxiliary arrays.
//!
//! The structure is the flat-array form of the classic layered range tree
//! (Willard/Lueker — the same layering fractional cascading refines):
//! points are sorted by `x`, and an implicit complete binary tree is laid
//! over the sorted order. The node at level `k`, index `i` covers the index
//! range `[i·2ᵏ, (i+1)·2ᵏ)` and stores that range's points **sorted by
//! `y`**, all nodes of one level packed into a single flat array. Because a
//! level-`k` array is exactly the pairwise merge of the level-`k−1` array,
//! construction is a bottom-up parallel merge ladder — one
//! [`sample_sort_by`] for the base order, then `⌈log₂ n⌉` rounds of
//! data-parallel node merges — with `O(n log n)` work.
//!
//! A query box `[x₀,x₁]×[y₀,y₁]` maps to an index range via two binary
//! searches on the sorted `x`s, decomposes into `O(log n)` size-aligned
//! canonical nodes, and resolves each node with two binary searches on its
//! `y`-sorted run: `O(log² n)` per count; reports add `O(k log k)` to sort
//! the `k` collected ids (the deterministic-output contract). Batched
//! queries are data-parallel through [`BatchQuery`].

use crate::batch::{BatchQuery, Count, Report};
use pargeo_geometry::{Bbox, Point};
use pargeo_parlay::sample_sort_by;
use rayon::prelude::*;

/// A static 2D range tree over points, answering orthogonal range count and
/// report queries. Build once with [`RangeTree2d::build`], query many.
#[derive(Debug, Clone)]
pub struct RangeTree2d {
    /// `x` of every point, sorted ascending (ties broken by `y`, then id).
    xs: Vec<f64>,
    /// `levels[k]` holds `(y, id)` for every point, grouped by the level-`k`
    /// node covering it and sorted by `y` within each node. `levels[0]` is
    /// the base (singleton nodes, i.e. the `x`-sorted point order).
    levels: Vec<Vec<(f64, u32)>>,
}

/// Total order on `(y, id)` entries (ties broken by id for determinism).
#[inline]
fn entry_lt(a: &(f64, u32), b: &(f64, u32)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    }
}

impl RangeTree2d {
    /// Builds the tree: one parallel sort by `x`, then bottom-up parallel
    /// pairwise merges of the `y`-sorted node arrays.
    pub fn build(points: &[Point<2>]) -> Self {
        let n = points.len();
        let mut items: Vec<(f64, f64, u32)> = if n >= pargeo_parlay::GRANULARITY {
            points
                .par_iter()
                .enumerate()
                .map(|(i, p)| (p[0], p[1], i as u32))
                .collect()
        } else {
            points
                .iter()
                .enumerate()
                .map(|(i, p)| (p[0], p[1], i as u32))
                .collect()
        };
        sample_sort_by(&mut items, |a, b| {
            a.0.total_cmp(&b.0)
                .then(a.1.total_cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        let xs: Vec<f64> = items.iter().map(|t| t.0).collect();
        let base: Vec<(f64, u32)> = items.iter().map(|t| (t.1, t.2)).collect();
        let mut levels = vec![base];
        let mut width = 1usize;
        while width < n {
            let prev = levels.last().unwrap();
            let next = merge_level(prev, width);
            levels.push(next);
            width *= 2;
        }
        Self { xs, levels }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True iff the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Index range `[lo, hi)` of points with `x ∈ [x0, x1]`.
    #[inline]
    fn x_range(&self, x0: f64, x1: f64) -> (usize, usize) {
        let lo = self.xs.partition_point(|&x| x < x0);
        let hi = self.xs.partition_point(|&x| x <= x1);
        (lo, hi)
    }

    /// Visits the `y`-sorted run of every canonical node covering `[lo, hi)`.
    ///
    /// Greedy decomposition: the largest power-of-two block that starts at
    /// `lo`, is aligned to its own size, and fits in the range — `O(log n)`
    /// blocks, each exactly one node of its level.
    fn for_each_canonical<F: FnMut(&[(f64, u32)])>(&self, mut lo: usize, hi: usize, mut f: F) {
        while lo < hi {
            let span = hi - lo;
            let fit = 1usize << (usize::BITS - 1 - span.leading_zeros());
            let align = if lo == 0 {
                fit
            } else {
                1usize << lo.trailing_zeros()
            };
            let len = fit.min(align);
            let k = len.trailing_zeros() as usize;
            f(&self.levels[k][lo..lo + len]);
            lo += len;
        }
    }

    /// Number of points inside `query` (boundary inclusive).
    pub fn count(&self, query: &Bbox<2>) -> usize {
        if self.is_empty() {
            return 0;
        }
        let (lo, hi) = self.x_range(query.min[0], query.max[0]);
        let (y0, y1) = (query.min[1], query.max[1]);
        let mut total = 0;
        self.for_each_canonical(lo, hi, |run| {
            let a = run.partition_point(|e| e.0 < y0);
            let b = run.partition_point(|e| e.0 <= y1);
            total += b - a;
        });
        total
    }

    /// Original ids of all points inside `query`, sorted ascending.
    pub fn report(&self, query: &Bbox<2>) -> Vec<u32> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        let (lo, hi) = self.x_range(query.min[0], query.max[0]);
        let (y0, y1) = (query.min[1], query.max[1]);
        self.for_each_canonical(lo, hi, |run| {
            let a = run.partition_point(|e| e.0 < y0);
            let b = run.partition_point(|e| e.0 <= y1);
            out.extend(run[a..b].iter().map(|e| e.1));
        });
        out.sort_unstable();
        out
    }

    /// Number of points strictly dominated by `(x, y)`: `pₓ < x ∧ p_y < y`.
    ///
    /// The 2D dominance primitive [`crate::RectangleSet`] composes its
    /// rectangle-intersection counts from.
    pub fn count_dominated(&self, x: f64, y: f64) -> usize {
        let hi = self.xs.partition_point(|&px| px < x);
        let mut total = 0;
        self.for_each_canonical(0, hi, |run| {
            total += run.partition_point(|e| e.0 < y);
        });
        total
    }
}

/// One merge round: level-`width` nodes pairwise-merged into `2·width`
/// nodes, data-parallel over output nodes (sequential two-way merge within
/// each; the top rounds have few wide nodes, the bottom rounds many narrow
/// ones — total work per round is `O(n)` either way).
fn merge_level(prev: &[(f64, u32)], width: usize) -> Vec<(f64, u32)> {
    let n = prev.len();
    let out_width = 2 * width;
    let mut next = vec![(0.0f64, 0u32); n];
    next.par_chunks_mut(out_width)
        .enumerate()
        .for_each(|(node, chunk)| {
            let start = node * out_width;
            let mid = (start + width).min(n);
            let end = (start + chunk.len()).min(n);
            let (left, right) = (&prev[start..mid], &prev[mid..end]);
            let (mut i, mut j) = (0, 0);
            for slot in chunk.iter_mut() {
                *slot = if j >= right.len() || (i < left.len() && entry_lt(&left[i], &right[j])) {
                    i += 1;
                    left[i - 1]
                } else {
                    j += 1;
                    right[j - 1]
                };
            }
        });
    next
}

impl BatchQuery<Count<Bbox<2>>> for RangeTree2d {
    type Answer = usize;

    fn answer(&self, query: &Count<Bbox<2>>) -> usize {
        self.count(&query.0)
    }
}

impl BatchQuery<Report<Bbox<2>>> for RangeTree2d {
    type Answer = Vec<u32>;

    fn answer(&self, query: &Report<Bbox<2>>) -> Vec<u32> {
        self.report(&query.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::{uniform_cube, uniform_rects};
    use pargeo_geometry::Point2;

    fn brute_report(pts: &[Point<2>], q: &Bbox<2>) -> Vec<u32> {
        pts.iter()
            .enumerate()
            .filter(|(_, p)| q.contains(p))
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn count_and_report_match_brute_force() {
        let pts = uniform_cube::<2>(3_000, 1);
        let tree = RangeTree2d::build(&pts);
        assert_eq!(tree.len(), pts.len());
        for q in &uniform_rects::<2>(100, 2, 0.5) {
            let want = brute_report(&pts, q);
            assert_eq!(tree.count(q), want.len());
            assert_eq!(tree.report(q), want);
        }
    }

    #[test]
    fn duplicate_heavy_lattice_is_exact() {
        // Many equal xs and ys stress the tie-breaking and the inclusive
        // boundary semantics.
        let pts: Vec<Point2> = (0..500)
            .map(|i| Point2::new([(i % 8) as f64, (i % 5) as f64]))
            .collect();
        let tree = RangeTree2d::build(&pts);
        for x0 in 0..8 {
            for y0 in 0..5 {
                let q = Bbox {
                    min: Point2::new([x0 as f64, y0 as f64]),
                    max: Point2::new([(x0 + 2) as f64, (y0 + 1) as f64]),
                };
                let want = brute_report(&pts, &q);
                assert_eq!(tree.count(&q), want.len());
                assert_eq!(tree.report(&q), want);
            }
        }
    }

    #[test]
    fn dominance_counts_are_strict() {
        let pts = vec![
            Point2::new([0.0, 0.0]),
            Point2::new([1.0, 1.0]),
            Point2::new([1.0, 3.0]),
            Point2::new([2.0, 2.0]),
        ];
        let tree = RangeTree2d::build(&pts);
        assert_eq!(tree.count_dominated(1.0, 1.0), 1); // only (0,0): strict
        assert_eq!(tree.count_dominated(2.0, 4.0), 3);
        assert_eq!(tree.count_dominated(0.0, 0.0), 0);
        assert_eq!(tree.count_dominated(f64::INFINITY, f64::INFINITY), 4);
    }

    #[test]
    fn empty_and_singleton_trees() {
        let empty = RangeTree2d::build(&[]);
        assert!(empty.is_empty());
        let q = Bbox {
            min: Point2::new([-1.0, -1.0]),
            max: Point2::new([1.0, 1.0]),
        };
        assert_eq!(empty.count(&q), 0);
        assert!(empty.report(&q).is_empty());
        let one = RangeTree2d::build(&[Point2::new([0.0, 0.0])]);
        assert_eq!(one.count(&q), 1);
        assert_eq!(one.report(&q), vec![0]);
        assert_eq!(one.count_dominated(1.0, 1.0), 1);
    }

    #[test]
    fn build_is_thread_count_independent() {
        let pts = uniform_cube::<2>(20_000, 7);
        let queries = uniform_rects::<2>(50, 8, 0.3);
        let a = pargeo_parlay::with_threads(1, || {
            let t = RangeTree2d::build(&pts);
            queries.iter().map(|q| t.report(q)).collect::<Vec<_>>()
        });
        let b = pargeo_parlay::with_threads(4, || {
            let t = RangeTree2d::build(&pts);
            queries.iter().map(|q| t.report(q)).collect::<Vec<_>>()
        });
        assert_eq!(a, b);
    }
}
