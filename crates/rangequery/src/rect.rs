//! Rectangle-intersection counting, composed from the interval tree and the
//! range tree.
//!
//! Given a static set of axis-aligned rectangles, answer for a query
//! rectangle `q` how many of them intersect it (touching counts, matching
//! [`Bbox::intersects`]). Rather than a dedicated multi-level structure,
//! the count is assembled by inclusion–exclusion from the crate's two
//! simpler engines — the decomposition Sun & Blelloch's rectangle queries
//! reduce to:
//!
//! With `X` = rectangles whose `x`-shadow meets `q`'s and `Y` likewise for
//! `y`, the answer is `|X ∩ Y| = |X| + |Y| − n + |X̄ ∩ Ȳ|`. The shadow
//! counts `|X|, |Y|` are 1D interval-intersection counts
//! ([`IntervalTree::intersect_count`]). A rectangle fails both axes in one
//! of four mutually exclusive ways (left-and-below, left-and-above, …),
//! each a strict 2D dominance count over one corner set — four
//! [`RangeTree2d::count_dominated`] calls on sign-flipped corners. Every
//! query is therefore `O(log² n)` with no output-sensitive term.

use crate::batch::{BatchQuery, Count};
use crate::interval::IntervalTree;
use crate::rangetree::RangeTree2d;
use pargeo_geometry::{Bbox, Point2};
use pargeo_parlay::par_do;

/// A static set of axis-aligned rectangles answering batched
/// rectangle-intersection counting. Build once with [`RectangleSet::build`].
#[derive(Debug, Clone)]
pub struct RectangleSet {
    n: usize,
    /// `x`-shadows `[xlo, xhi]` of every rectangle.
    x_shadows: IntervalTree,
    /// `y`-shadows `[ylo, yhi]` of every rectangle.
    y_shadows: IntervalTree,
    /// Corner set `(xhi, yhi)` — dominance ⇔ entirely left *and* below `q`.
    high_high: RangeTree2d,
    /// Corner set `(xhi, −ylo)` — entirely left and above.
    high_low: RangeTree2d,
    /// Corner set `(−xlo, yhi)` — entirely right and below.
    low_high: RangeTree2d,
    /// Corner set `(−xlo, −ylo)` — entirely right and above.
    low_low: RangeTree2d,
}

impl RectangleSet {
    /// Builds the composite index: two interval trees over the axis
    /// shadows and four dominance range trees over the corners, the two
    /// halves constructed in parallel.
    pub fn build(rects: &[Bbox<2>]) -> Self {
        let shadow = |dim: usize| -> Vec<(f64, f64)> {
            rects.iter().map(|r| (r.min[dim], r.max[dim])).collect()
        };
        let corners = |fx: f64, fy: f64| -> Vec<Point2> {
            rects
                .iter()
                .map(|r| {
                    let x = if fx < 0.0 { -r.min[0] } else { r.max[0] };
                    let y = if fy < 0.0 { -r.min[1] } else { r.max[1] };
                    Point2::new([x, y])
                })
                .collect()
        };
        let ((x_shadows, y_shadows), ((high_high, high_low), (low_high, low_low))) = par_do(
            || {
                par_do(
                    || IntervalTree::build(&shadow(0)),
                    || IntervalTree::build(&shadow(1)),
                )
            },
            || {
                par_do(
                    || {
                        par_do(
                            || RangeTree2d::build(&corners(1.0, 1.0)),
                            || RangeTree2d::build(&corners(1.0, -1.0)),
                        )
                    },
                    || {
                        par_do(
                            || RangeTree2d::build(&corners(-1.0, 1.0)),
                            || RangeTree2d::build(&corners(-1.0, -1.0)),
                        )
                    },
                )
            },
        );
        Self {
            n: rects.len(),
            x_shadows,
            y_shadows,
            high_high,
            high_low,
            low_high,
            low_low,
        }
    }

    /// Number of stored rectangles.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff no rectangles are stored.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of stored rectangles intersecting `query` (touching counts).
    pub fn count_intersecting(&self, query: &Bbox<2>) -> usize {
        let x_hits = self.x_shadows.intersect_count(query.min[0], query.max[0]);
        let y_hits = self.y_shadows.intersect_count(query.min[1], query.max[1]);
        // Rectangles failing both axes, split by which side of `q` they
        // fall on — the four cases are mutually exclusive, so the counts
        // add. Dominance is strict, so touching never counts as a miss.
        let both_fail = self.high_high.count_dominated(query.min[0], query.min[1])
            + self.high_low.count_dominated(query.min[0], -query.max[1])
            + self.low_high.count_dominated(-query.max[0], query.min[1])
            + self.low_low.count_dominated(-query.max[0], -query.max[1]);
        x_hits + y_hits + both_fail - self.n
    }
}

impl BatchQuery<Count<Bbox<2>>> for RectangleSet {
    type Answer = usize;

    fn answer(&self, query: &Count<Bbox<2>>) -> usize {
        self.count_intersecting(&query.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_rects;

    fn brute(rects: &[Bbox<2>], q: &Bbox<2>) -> usize {
        rects.iter().filter(|r| r.intersects(q)).count()
    }

    #[test]
    fn counts_match_brute_force() {
        let rects = uniform_rects::<2>(2_000, 1, 0.05);
        let set = RectangleSet::build(&rects);
        assert_eq!(set.len(), rects.len());
        for q in &uniform_rects::<2>(300, 2, 0.2) {
            assert_eq!(set.count_intersecting(q), brute(&rects, q), "{q:?}");
        }
    }

    #[test]
    fn touching_rectangles_count_as_intersecting() {
        let unit = Bbox {
            min: Point2::new([0.0, 0.0]),
            max: Point2::new([1.0, 1.0]),
        };
        let set = RectangleSet::build(&[unit]);
        // Shares only the corner point (1, 1).
        let corner = Bbox {
            min: Point2::new([1.0, 1.0]),
            max: Point2::new([2.0, 2.0]),
        };
        assert_eq!(set.count_intersecting(&corner), 1);
        // Shifted off by any margin: a miss.
        let off = Bbox {
            min: Point2::new([1.0 + 1e-12, 1.0]),
            max: Point2::new([2.0, 2.0]),
        };
        assert_eq!(set.count_intersecting(&off), 0);
    }

    #[test]
    fn grid_of_rectangles_exact_everywhere() {
        // 10×10 unit cells with 0.25 overlap margins.
        let mut rects = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                rects.push(Bbox {
                    min: Point2::new([i as f64 - 0.25, j as f64 - 0.25]),
                    max: Point2::new([i as f64 + 1.25, j as f64 + 1.25]),
                });
            }
        }
        let set = RectangleSet::build(&rects);
        for q in &uniform_rects::<2>(200, 3, 0.5) {
            // Map the query into the grid's [0,10]² domain.
            let scale = 10.0 / pargeo_datagen::cube_side(200);
            let q = Bbox {
                min: Point2::new([q.min[0] * scale, q.min[1] * scale]),
                max: Point2::new([q.max[0] * scale, q.max[1] * scale]),
            };
            assert_eq!(set.count_intersecting(&q), brute(&rects, &q), "{q:?}");
        }
    }

    #[test]
    fn empty_set() {
        let set = RectangleSet::build(&[]);
        assert!(set.is_empty());
        let q = Bbox {
            min: Point2::new([0.0, 0.0]),
            max: Point2::new([1.0, 1.0]),
        };
        assert_eq!(set.count_intersecting(&q), 0);
    }
}
