//! Parallel centered interval tree for stabbing and segment queries.
//!
//! The 1D member of the Sun & Blelloch query family: a static set of closed
//! intervals `[l, r]` answering
//!
//! * **stabbing count/report** — which intervals contain a point `x`, and
//! * **intersection counting** — how many intervals meet a query interval
//!   `[a, b]` (the segment-query analogue on the line).
//!
//! Counting needs no tree at all: with the left and right endpoints each
//! sorted (two parallel [`sample_sort_by`] calls), a stab count is
//! `|{l ≤ x}| − |{r < x}|` and an intersection count is
//! `|{l ≤ b}| − |{r < a}|` — two binary searches per query, embarrassingly
//! parallel over a batch. Reporting uses the classic centered interval
//! tree, built with fork-join recursion ([`par_do`]): each node stores the
//! intervals crossing its center sorted by left endpoint (ascending) and by
//! right endpoint (descending), so a stab reports `k` intervals in
//! `O(log n + k)`.
//!
//! The finished tree is **flat**: nodes live in one preorder arena with
//! `u32` child indices, and every node's crossing lists occupy a
//! `[start, end)` range of two shared slabs — three allocations total
//! instead of four-plus per node, so a stab walk touches contiguous
//! memory.

use crate::batch::{BatchQuery, Count, Report};
use pargeo_parlay::{par_do, sample_sort_by};

/// Recursion size below which the build runs sequentially.
const SEQ_BUILD_CUTOFF: usize = 2048;

/// One arena node of the centered tree. Crossing intervals occupy
/// `[start, end)` of both shared slabs; `u32::MAX` marks a missing child.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// The partition point: every stored interval satisfies `l ≤ c ≤ r`.
    center: f64,
    /// Arena index of the subtree entirely left of `center` (`r < c`).
    left: u32,
    /// Arena index of the subtree entirely right of `center` (`l > c`).
    right: u32,
    start: u32,
    end: u32,
}

/// Transient build-time node (freed once flattened into the arena).
struct Boxed {
    center: f64,
    by_left: Vec<(f64, u32)>,
    by_right: Vec<(f64, u32)>,
    left: Option<Box<Boxed>>,
    right: Option<Box<Boxed>>,
}

/// A static set of closed 1D intervals supporting stabbing and
/// intersection queries. Build once with [`IntervalTree::build`].
#[derive(Debug, Clone)]
pub struct IntervalTree {
    n: usize,
    /// All left endpoints, sorted ascending.
    lefts: Vec<f64>,
    /// All right endpoints, sorted ascending.
    rights: Vec<f64>,
    /// Preorder node arena (`nodes[0]` is the root when non-empty).
    nodes: Vec<Node>,
    /// Crossing intervals as `(l, id)`, per-node ranges sorted by `l`
    /// ascending.
    by_left: Vec<(f64, u32)>,
    /// Crossing intervals as `(r, id)`, per-node ranges sorted by `r`
    /// descending.
    by_right: Vec<(f64, u32)>,
}

impl IntervalTree {
    /// Builds the tree over `intervals`; each `(a, b)` is normalized to the
    /// closed interval `[min(a,b), max(a,b)]` and identified by its index.
    pub fn build(intervals: &[(f64, f64)]) -> Self {
        let n = intervals.len();
        let mut items: Vec<(f64, f64, u32)> = intervals
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| (a.min(b), a.max(b), i as u32))
            .collect();
        let mut lefts: Vec<f64> = items.iter().map(|t| t.0).collect();
        let mut rights: Vec<f64> = items.iter().map(|t| t.1).collect();
        let (root, _) = par_do(
            || build_node(&mut items),
            || {
                par_do(
                    || sample_sort_by(&mut lefts, f64::total_cmp),
                    || sample_sort_by(&mut rights, f64::total_cmp),
                )
            },
        );
        // Flatten the build-time tree into the preorder arena + slabs.
        let mut nodes = Vec::new();
        let mut by_left = Vec::with_capacity(n);
        let mut by_right = Vec::with_capacity(n);
        if let Some(root) = root {
            flatten(&root, &mut nodes, &mut by_left, &mut by_right);
        }
        Self {
            n,
            lefts,
            rights,
            nodes,
            by_left,
            by_right,
        }
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff no intervals are stored.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of intervals containing `x` (boundary inclusive).
    pub fn stab_count(&self, x: f64) -> usize {
        let started = self.lefts.partition_point(|&l| l <= x);
        let ended = self.rights.partition_point(|&r| r < x);
        started - ended
    }

    /// Ids of all intervals containing `x`, sorted ascending.
    pub fn stab_report(&self, x: f64) -> Vec<u32> {
        let mut out = Vec::new();
        let mut idx = if self.nodes.is_empty() { u32::MAX } else { 0 };
        while idx != u32::MAX {
            let nd = &self.nodes[idx as usize];
            if x < nd.center {
                for &(l, id) in &self.by_left[nd.start as usize..nd.end as usize] {
                    if l <= x {
                        out.push(id);
                    } else {
                        break;
                    }
                }
                idx = nd.left;
            } else {
                for &(r, id) in &self.by_right[nd.start as usize..nd.end as usize] {
                    if r >= x {
                        out.push(id);
                    } else {
                        break;
                    }
                }
                idx = nd.right;
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of intervals intersecting `[a, b]` (touching counts).
    pub fn intersect_count(&self, a: f64, b: f64) -> usize {
        let (a, b) = (a.min(b), a.max(b));
        let possible = self.lefts.partition_point(|&l| l <= b);
        let gone = self.rights.partition_point(|&r| r < a);
        possible - gone
    }

    /// Heap bytes held by the flat arenas (node array, crossing slabs,
    /// sorted endpoint columns).
    pub fn arena_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + (self.by_left.len() + self.by_right.len()) * std::mem::size_of::<(f64, u32)>()
            + (self.lefts.len() + self.rights.len()) * std::mem::size_of::<f64>()
    }

    /// Number of arena nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Preorder arena flatten: appends `b`'s crossing lists to the shared
/// slabs, then recurses. Returns the arena index of the flattened node.
fn flatten(
    b: &Boxed,
    nodes: &mut Vec<Node>,
    by_left: &mut Vec<(f64, u32)>,
    by_right: &mut Vec<(f64, u32)>,
) -> u32 {
    let my = nodes.len() as u32;
    let start = by_left.len() as u32;
    by_left.extend_from_slice(&b.by_left);
    by_right.extend_from_slice(&b.by_right);
    nodes.push(Node {
        center: b.center,
        left: u32::MAX,
        right: u32::MAX,
        start,
        end: by_left.len() as u32,
    });
    if let Some(l) = &b.left {
        let li = flatten(l, nodes, by_left, by_right);
        nodes[my as usize].left = li;
    }
    if let Some(r) = &b.right {
        let ri = flatten(r, nodes, by_left, by_right);
        nodes[my as usize].right = ri;
    }
    my
}

/// Recursive centered build: center = median interval midpoint; crossing
/// intervals stay at the node, the rest split left/right and recurse in
/// parallel. Both sides shrink strictly (at least one midpoint lies on each
/// side of the median), so depth is bounded even on adversarial inputs.
fn build_node(items: &mut [(f64, f64, u32)]) -> Option<Box<Boxed>> {
    if items.is_empty() {
        return None;
    }
    let mid = items.len() / 2;
    pargeo_parlay::select_nth_unstable_by(items, mid, |a, b| {
        (a.0 + a.1).total_cmp(&(b.0 + b.1)).then(a.2.cmp(&b.2))
    });
    let center = {
        let (l, r, _) = items[mid];
        (l + r) / 2.0
    };
    let mut cross: Vec<(f64, f64, u32)> = Vec::new();
    let mut left_items: Vec<(f64, f64, u32)> = Vec::new();
    let mut right_items: Vec<(f64, f64, u32)> = Vec::new();
    for &it in items.iter() {
        if it.1 < center {
            left_items.push(it);
        } else if it.0 > center {
            right_items.push(it);
        } else {
            cross.push(it);
        }
    }
    let mut by_left: Vec<(f64, u32)> = cross.iter().map(|&(l, _, id)| (l, id)).collect();
    let mut by_right: Vec<(f64, u32)> = cross.iter().map(|&(_, r, id)| (r, id)).collect();
    by_left.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    by_right.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let (left, right) = if items.len() >= SEQ_BUILD_CUTOFF {
        par_do(
            || build_node(&mut left_items),
            || build_node(&mut right_items),
        )
    } else {
        (build_node(&mut left_items), build_node(&mut right_items))
    };
    Some(Box::new(Boxed {
        center,
        by_left,
        by_right,
        left,
        right,
    }))
}

impl BatchQuery<Count<f64>> for IntervalTree {
    type Answer = usize;

    fn answer(&self, query: &Count<f64>) -> usize {
        self.stab_count(query.0)
    }
}

impl BatchQuery<Report<f64>> for IntervalTree {
    type Answer = Vec<u32>;

    fn answer(&self, query: &Report<f64>) -> Vec<u32> {
        self.stab_report(query.0)
    }
}

/// Interval-intersection counting: `Count((a, b))` answers how many stored
/// intervals meet `[a, b]`.
impl BatchQuery<Count<(f64, f64)>> for IntervalTree {
    type Answer = usize;

    fn answer(&self, query: &Count<(f64, f64)>) -> usize {
        self.intersect_count(query.0 .0, query.0 .1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_intervals;

    fn brute_stab(iv: &[(f64, f64)], x: f64) -> Vec<u32> {
        iv.iter()
            .enumerate()
            .filter(|(_, &(l, r))| l <= x && x <= r)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn stabbing_matches_brute_force() {
        let iv = uniform_intervals(2_000, 1, 0.1);
        let tree = IntervalTree::build(&iv);
        assert_eq!(tree.len(), iv.len());
        let domain = pargeo_datagen::cube_side(2_000);
        for i in 0..200 {
            let x = domain * i as f64 / 199.0;
            let want = brute_stab(&iv, x);
            assert_eq!(tree.stab_count(x), want.len(), "x={x}");
            assert_eq!(tree.stab_report(x), want, "x={x}");
        }
    }

    #[test]
    fn stabbing_endpoints_are_inclusive() {
        let iv = [(0.0, 1.0), (1.0, 2.0), (3.0, 3.0)];
        let tree = IntervalTree::build(&iv);
        assert_eq!(tree.stab_report(1.0), vec![0, 1]);
        assert_eq!(tree.stab_report(3.0), vec![2]);
        assert_eq!(tree.stab_count(2.5), 0);
        // Reversed endpoints normalize.
        let rev = IntervalTree::build(&[(5.0, 4.0)]);
        assert_eq!(rev.stab_count(4.5), 1);
    }

    #[test]
    fn intersection_counts_match_brute_force() {
        let iv = uniform_intervals(1_500, 2, 0.05);
        let tree = IntervalTree::build(&iv);
        let queries = uniform_intervals(300, 3, 0.2);
        for &(a, b) in &queries {
            let want = iv.iter().filter(|&&(l, r)| l <= b && r >= a).count();
            assert_eq!(tree.intersect_count(a, b), want);
        }
        // Touching intervals count.
        let t = IntervalTree::build(&[(0.0, 1.0)]);
        assert_eq!(t.intersect_count(1.0, 2.0), 1);
        assert_eq!(t.intersect_count(1.0 + 1e-12, 2.0), 0);
    }

    #[test]
    fn nested_and_duplicate_intervals() {
        // All intervals share the center: everything lands in one node.
        let iv: Vec<(f64, f64)> = (0..100).map(|i| (-(i as f64), i as f64)).collect();
        let tree = IntervalTree::build(&iv);
        for x in [-50.5, 0.0, 50.5] {
            assert_eq!(tree.stab_report(x), brute_stab(&iv, x), "x={x}");
        }
        let dup = vec![(1.0, 2.0); 64];
        let tree = IntervalTree::build(&dup);
        assert_eq!(tree.stab_count(1.5), 64);
        assert_eq!(tree.stab_report(1.5).len(), 64);
    }

    #[test]
    fn empty_tree() {
        let tree = IntervalTree::build(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.stab_count(0.0), 0);
        assert!(tree.stab_report(0.0).is_empty());
        assert_eq!(tree.intersect_count(-1.0, 1.0), 0);
    }
}
