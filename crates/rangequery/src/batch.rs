//! The shared batched-query surface.
//!
//! Every structure in this crate — and the kd-tree from `pargeo-kdtree` —
//! answers queries through [`BatchQuery`]: `answer` for one query,
//! `answer_batch` for a whole slice, data-parallel over the queries. The
//! [`Count`] / [`Report`] wrappers select the answer mode at the type level,
//! so a bench or test can be generic over the backend:
//!
//! ```
//! use pargeo_rangequery::{BatchQuery, Count, RangeTree2d};
//! use pargeo_geometry::{Bbox, Point2};
//! use pargeo_kdtree::{KdTree, SplitRule};
//!
//! fn total<B: BatchQuery<Count<Bbox<2>>, Answer = usize>>(
//!     backend: &B,
//!     queries: &[Count<Bbox<2>>],
//! ) -> usize {
//!     backend.answer_batch(queries).iter().sum()
//! }
//!
//! let pts = vec![Point2::new([0.0, 0.0]), Point2::new([1.0, 1.0])];
//! let q = [Count(Bbox { min: pts[0], max: pts[1] })];
//! let range_tree = RangeTree2d::build(&pts);
//! let kd_tree = KdTree::build(&pts, SplitRule::ObjectMedian);
//! assert_eq!(total(&range_tree, &q), total(&kd_tree, &q));
//! ```

use pargeo_geometry::Bbox;
use pargeo_kdtree::{DynKdTree, KdTree};
use rayon::prelude::*;

/// Number of queries below which `answer_batch` stays sequential.
pub const BATCH_GRAIN: usize = 16;

/// Query wrapper: answer with the number of matches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Count<Q>(pub Q);

/// Query wrapper: answer with the matching original ids, sorted ascending.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Report<Q>(pub Q);

/// A static spatial index answering one query type, batched data-parallel.
///
/// Implementors only provide [`BatchQuery::answer`]; the batch form is
/// derived, parallelizing over queries on the ambient rayon pool (the
/// inter-query parallelism of Sun & Blelloch's evaluation). Answers are
/// positionally aligned with the input and independent of thread count.
pub trait BatchQuery<Q: Sync>: Sync {
    /// The per-query answer (a count, or a sorted id list).
    type Answer: Send;

    /// Answers a single query.
    fn answer(&self, query: &Q) -> Self::Answer;

    /// Answers every query, in order, data-parallel over the batch.
    fn answer_batch(&self, queries: &[Q]) -> Vec<Self::Answer> {
        if queries.len() < BATCH_GRAIN {
            queries.iter().map(|q| self.answer(q)).collect()
        } else {
            queries.par_iter().map(|q| self.answer(q)).collect()
        }
    }
}

/// Kd-tree backend: box counting. Makes `KdTree` interchangeable with
/// [`crate::RangeTree2d`] wherever a `BatchQuery<Count<Bbox<2>>>` is
/// expected (and likewise in higher dimensions, which the range tree does
/// not cover).
impl<const D: usize> BatchQuery<Count<Bbox<D>>> for KdTree<D> {
    type Answer = usize;

    fn answer(&self, query: &Count<Bbox<D>>) -> usize {
        self.count_box(&query.0)
    }
}

/// Kd-tree backend: box reporting (sorted ids, see `pargeo-kdtree`'s
/// deterministic-output guarantee).
impl<const D: usize> BatchQuery<Report<Bbox<D>>> for KdTree<D> {
    type Answer = Vec<u32>;

    fn answer(&self, query: &Report<Bbox<D>>) -> Vec<u32> {
        self.range_box(&query.0)
    }
}

/// Dynamic kd-tree backend: box counting over the live points — the
/// batch-dynamic engine's kd-tree served through the same read surface as
/// the static structures.
impl<const D: usize> BatchQuery<Count<Bbox<D>>> for DynKdTree<D> {
    type Answer = usize;

    fn answer(&self, query: &Count<Bbox<D>>) -> usize {
        self.count_box(&query.0)
    }
}

/// Dynamic kd-tree backend: box reporting (sorted insertion-order ids).
impl<const D: usize> BatchQuery<Report<Bbox<D>>> for DynKdTree<D> {
    type Answer = Vec<u32>;

    fn answer(&self, query: &Report<Bbox<D>>) -> Vec<u32> {
        self.range_box(&query.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::{uniform_cube, uniform_rects};
    use pargeo_kdtree::SplitRule;

    #[test]
    fn kdtree_backend_matches_direct_calls() {
        let pts = uniform_cube::<2>(2_000, 1);
        let tree = KdTree::build(&pts, SplitRule::ObjectMedian);
        let boxes = uniform_rects::<2>(64, 2, 0.4);
        let counts: Vec<Count<Bbox<2>>> = boxes.iter().map(|&b| Count(b)).collect();
        let reports: Vec<Report<Bbox<2>>> = boxes.iter().map(|&b| Report(b)).collect();
        let got_counts = tree.answer_batch(&counts);
        let got_reports = tree.answer_batch(&reports);
        for ((b, c), r) in boxes.iter().zip(&got_counts).zip(&got_reports) {
            assert_eq!(*c, tree.count_box(b));
            assert_eq!(*r, tree.range_box(b));
            assert_eq!(*c, r.len());
        }
    }

    #[test]
    fn small_batches_stay_sequential_and_aligned() {
        let pts = uniform_cube::<2>(500, 3);
        let tree = KdTree::build(&pts, SplitRule::SpatialMedian);
        let boxes = uniform_rects::<2>(BATCH_GRAIN - 1, 4, 0.3);
        let qs: Vec<Count<Bbox<2>>> = boxes.iter().map(|&b| Count(b)).collect();
        let got = tree.answer_batch(&qs);
        assert_eq!(got.len(), qs.len());
        for (q, c) in qs.iter().zip(got) {
            assert_eq!(c, tree.answer(q));
        }
    }
}
