//! Property-based cross-validation of the rangequery structures against
//! O(n·q) brute force on adversarial (duplicate-heavy, axis-aligned
//! lattice) inputs — the inputs most likely to expose boundary-semantics
//! and tie-breaking bugs in the sorted auxiliary arrays.

use pargeo_geometry::{Bbox, Point2};
use pargeo_kdtree::{KdTree, SplitRule};
use pargeo_rangequery::{BatchQuery, Count, IntervalTree, RangeTree2d, RectangleSet, Report};
use proptest::prelude::*;

fn lattice_points() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (0i32..24, 0i32..24).prop_map(|(x, y)| Point2::new([x as f64, y as f64])),
        1..300,
    )
}

fn lattice_boxes() -> impl Strategy<Value = Vec<Bbox<2>>> {
    prop::collection::vec(
        (0i32..24, 0i32..24, 0i32..12, 0i32..12).prop_map(|(x, y, w, h)| Bbox {
            min: Point2::new([x as f64, y as f64]),
            max: Point2::new([(x + w) as f64, (y + h) as f64]),
        }),
        1..120,
    )
}

fn lattice_intervals() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(
        (0i32..48, 0i32..24).prop_map(|(l, w)| (l as f64, (l + w) as f64)),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Range-tree counts and reports agree with brute force and with the
    /// kd-tree backend through the shared BatchQuery trait.
    #[test]
    fn range_tree_matches_brute_force_and_kdtree(pts in lattice_points(),
                                                 queries in lattice_boxes()) {
        let rt = RangeTree2d::build(&pts);
        let kd = KdTree::build(&pts, SplitRule::ObjectMedian);
        let count_qs: Vec<Count<Bbox<2>>> = queries.iter().map(|&q| Count(q)).collect();
        let report_qs: Vec<Report<Bbox<2>>> = queries.iter().map(|&q| Report(q)).collect();
        let rt_counts = rt.answer_batch(&count_qs);
        let kd_counts = kd.answer_batch(&count_qs);
        let rt_reports = rt.answer_batch(&report_qs);
        let kd_reports = kd.answer_batch(&report_qs);
        for (i, q) in queries.iter().enumerate() {
            let want: Vec<u32> = pts.iter().enumerate()
                .filter(|(_, p)| q.contains(p))
                .map(|(j, _)| j as u32)
                .collect();
            prop_assert_eq!(rt_counts[i], want.len());
            prop_assert_eq!(kd_counts[i], want.len());
            prop_assert_eq!(&rt_reports[i], &want);
            prop_assert_eq!(&kd_reports[i], &want);
        }
    }

    /// Interval-tree stabbing and intersection counting agree with brute
    /// force, including on degenerate (zero-length) intervals.
    #[test]
    fn interval_tree_matches_brute_force(iv in lattice_intervals(),
                                         stabs in prop::collection::vec(0i32..72, 1..60),
                                         seg in (0i32..72, 0i32..24)) {
        let tree = IntervalTree::build(&iv);
        for &x in &stabs {
            let x = x as f64;
            let want: Vec<u32> = iv.iter().enumerate()
                .filter(|(_, &(l, r))| l <= x && x <= r)
                .map(|(j, _)| j as u32)
                .collect();
            prop_assert_eq!(tree.stab_count(x), want.len());
            prop_assert_eq!(tree.stab_report(x), want);
        }
        let (a, b) = (seg.0 as f64, (seg.0 + seg.1) as f64);
        let want = iv.iter().filter(|&&(l, r)| l <= b && r >= a).count();
        prop_assert_eq!(tree.intersect_count(a, b), want);
    }

    /// Rectangle-intersection counts agree with brute force.
    #[test]
    fn rectangle_counts_match_brute_force(rects in lattice_boxes(),
                                          queries in lattice_boxes()) {
        let set = RectangleSet::build(&rects);
        let qs: Vec<Count<Bbox<2>>> = queries.iter().map(|&q| Count(q)).collect();
        let got = set.answer_batch(&qs);
        for (i, q) in queries.iter().enumerate() {
            let want = rects.iter().filter(|r| r.intersects(q)).count();
            prop_assert_eq!(got[i], want, "query {:?}", q);
        }
    }

    /// Batched answers are positionally identical to one-at-a-time answers
    /// (the BatchQuery alignment contract), for every backend.
    #[test]
    fn batch_answers_align_with_single_answers(pts in lattice_points(),
                                               queries in lattice_boxes()) {
        let rt = RangeTree2d::build(&pts);
        let qs: Vec<Report<Bbox<2>>> = queries.iter().map(|&q| Report(q)).collect();
        let batch = rt.answer_batch(&qs);
        for (q, row) in qs.iter().zip(&batch) {
            prop_assert_eq!(row, &rt.answer(q));
        }
    }
}
