//! Divide-and-conquer 2D convex hull (paper §3 "Parallel
//! Divide-and-Conquer").
//!
//! The input is split into `c · numProc` equal chunks; each chunk's hull is
//! computed by one processor with the optimized *sequential* quickhull (all
//! chunks in parallel); the union of the sub-hull vertices — a small set —
//! is then resolved with the reservation-based parallel algorithm.

use super::{degenerate_hull, hull2d_randinc, hull2d_seq};
use pargeo_geometry::Point2;
use pargeo_parlay as parlay;
use rayon::prelude::*;

/// Chunks per processor (the paper's small constant `c`).
const CHUNKS_PER_PROC: usize = 4;

/// Divide-and-conquer hull. Returns CCW hull vertex indices.
pub fn hull2d_divide_conquer(points: &[Point2]) -> Vec<u32> {
    if let Some(h) = degenerate_hull(points) {
        return h;
    }
    let n = points.len();
    let nchunks = (CHUNKS_PER_PROC * parlay::num_threads()).clamp(1, n.div_ceil(8));
    if nchunks <= 1 {
        return hull2d_seq(points);
    }
    let chunk = n.div_ceil(nchunks);
    // Sub-hulls in parallel, each sequential.
    let candidate_ids: Vec<u32> = (0..nchunks)
        .into_par_iter()
        .flat_map_iter(|c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(n);
            let local = hull2d_seq(&points[lo..hi]);
            local.into_iter().map(move |v| v + lo as u32)
        })
        .collect();
    // Conquer over the (few) candidates with the reservation algorithm.
    let cand_points: Vec<Point2> = candidate_ids.iter().map(|&i| points[i as usize]).collect();
    let final_local = hull2d_randinc(&cand_points);
    final_local
        .into_iter()
        .map(|i| candidate_ids[i as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull2d::validate::check_hull2d;
    use pargeo_datagen::{on_sphere, uniform_cube};

    #[test]
    fn matches_sequential() {
        let pts = uniform_cube::<2>(30_000, 31);
        let mut got = hull2d_divide_conquer(&pts);
        check_hull2d(&pts, &got).unwrap();
        let mut want = hull2d_seq(&pts);
        let rg = got
            .iter()
            .position(|v| v == got.iter().min().unwrap())
            .unwrap();
        got.rotate_left(rg);
        let rw = want
            .iter()
            .position(|v| v == want.iter().min().unwrap())
            .unwrap();
        want.rotate_left(rw);
        assert_eq!(got, want);
    }

    #[test]
    fn surface_data() {
        let pts = on_sphere::<2>(8_000, 32);
        let h = hull2d_divide_conquer(&pts);
        check_hull2d(&pts, &h).unwrap();
    }

    #[test]
    fn small_input_falls_back() {
        let pts = uniform_cube::<2>(20, 33);
        let h = hull2d_divide_conquer(&pts);
        check_hull2d(&pts, &h).unwrap();
    }
}
