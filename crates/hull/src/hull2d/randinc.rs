//! Reservation-based parallel randomized incremental convex hull in R²
//! (the paper's Figure 5 specialized to two dimensions, where facets are
//! directed hull edges and the horizon is the pair of chain endpoints).
//!
//! Each round takes a prefix of the remaining (randomly permuted) visible
//! points; every point walks its contiguous visible chain, priority-writes
//! its rank onto the chain **and** the two edges just beyond it (see the
//! crate-level note on boundary reservation), and winners replace their
//! chains with two new edges in parallel. Conflict lists (one visible edge
//! per point) are redistributed exactly as in the paper: points of deleted
//! edges move to one of the winner's new edges or become interior.

use super::{degenerate_hull, sees};
use pargeo_geometry::Point2;
use pargeo_parlay as parlay;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

const EMPTY: usize = usize::MAX;

struct Edge {
    a: u32,
    b: u32,
    prev: u32,
    next: u32,
    alive: bool,
    pts: Vec<u32>,
}

/// Reservation-based randomized incremental hull (default seed).
pub fn hull2d_randinc(points: &[Point2]) -> Vec<u32> {
    hull2d_randinc_seeded(points, 42)
}

/// Reservation-based randomized incremental hull with an explicit
/// permutation seed.
pub fn hull2d_randinc_seeded(points: &[Point2], seed: u64) -> Vec<u32> {
    if let Some(h) = degenerate_hull(points) {
        return h;
    }
    let n = points.len();
    let perm = parlay::random_permutation(n, seed);

    // Initial triangle: first two distinct points in permutation order plus
    // the first point off their line (degenerate_hull guarantees one).
    let t0 = perm[0];
    let t1 = *perm[1..]
        .iter()
        .find(|&&q| points[q as usize] != points[t0 as usize])
        .expect("distinct point exists");
    let t2 = *perm
        .iter()
        .find(|&&q| {
            pargeo_geometry::orient2d(
                &points[t0 as usize],
                &points[t1 as usize],
                &points[q as usize],
            ) != pargeo_geometry::Orientation::Zero
        })
        .expect("non-collinear point exists");
    let (v0, v1, v2) = if pargeo_geometry::orient2d(
        &points[t0 as usize],
        &points[t1 as usize],
        &points[t2 as usize],
    ) == pargeo_geometry::Orientation::Positive
    {
        (t0, t1, t2)
    } else {
        (t0, t2, t1)
    };
    let mut edges: Vec<Edge> = vec![
        Edge {
            a: v0,
            b: v1,
            prev: 2,
            next: 1,
            alive: true,
            pts: Vec::new(),
        },
        Edge {
            a: v1,
            b: v2,
            prev: 0,
            next: 2,
            alive: true,
            pts: Vec::new(),
        },
        Edge {
            a: v2,
            b: v0,
            prev: 1,
            next: 0,
            alive: true,
            pts: Vec::new(),
        },
    ];
    let mut reservations: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(EMPTY)).collect();

    // Initial conflict assignment, in permutation order.
    let mut edge_of: Vec<u32> = vec![u32::MAX; n];
    let mut visible: Vec<bool> = vec![false; n];
    let assignments: Vec<(u32, u32)> = perm
        .par_iter()
        .filter_map(|&q| {
            if q == v0 || q == v1 || q == v2 {
                return None;
            }
            (0..3u32)
                .find(|&e| sees(points, edges[e as usize].a, edges[e as usize].b, q))
                .map(|e| (q, e))
        })
        .collect();
    let mut p: Vec<u32> = Vec::with_capacity(assignments.len());
    for &(q, e) in &assignments {
        edge_of[q as usize] = e;
        visible[q as usize] = true;
        edges[e as usize].pts.push(q);
        p.push(q);
    }

    // Main reservation rounds (Figure 5).
    let mut alive_edges = 3usize;
    while !p.is_empty() {
        let r = round_size(alive_edges, parlay::num_threads(), p.len());
        let q_batch = &p[..r];
        // Phase A: find visible chains and reserve them (+ boundary).
        let plans: Vec<ChainPlan> = q_batch
            .par_iter()
            .enumerate()
            .map(|(rank, &q)| {
                let plan = find_chain(points, &edges, edge_of[q as usize], q);
                for &e in plan.chain.iter().chain([plan.left, plan.right].iter()) {
                    let cur = reservations[e as usize].load(Ordering::Relaxed);
                    if cur > rank {
                        reservations[e as usize].fetch_min(rank, Ordering::Relaxed);
                    }
                }
                plan
            })
            .collect();
        // Phase A2: check reservations.
        let success: Vec<bool> = plans
            .par_iter()
            .enumerate()
            .map(|(rank, plan)| {
                plan.chain
                    .iter()
                    .chain([plan.left, plan.right].iter())
                    .all(|&e| reservations[e as usize].load(Ordering::Relaxed) == rank)
            })
            .collect();
        // Phase B (sequential, O(#winners)): structural surgery.
        let mut winner_ids: Vec<usize> = Vec::new();
        for (rank, plan) in plans.iter().enumerate() {
            if !success[rank] {
                continue;
            }
            let q = q_batch[rank];
            let first = plan.chain[0] as usize;
            let last = *plan.chain.last().unwrap() as usize;
            let (u, v) = (edges[first].a, edges[last].b);
            let n1 = edges.len() as u32;
            let n2 = n1 + 1;
            edges.push(Edge {
                a: u,
                b: q,
                prev: plan.left,
                next: n2,
                alive: true,
                pts: Vec::new(),
            });
            edges.push(Edge {
                a: q,
                b: v,
                prev: n1,
                next: plan.right,
                alive: true,
                pts: Vec::new(),
            });
            reservations.push(AtomicUsize::new(EMPTY));
            reservations.push(AtomicUsize::new(EMPTY));
            edges[plan.left as usize].next = n1;
            edges[plan.right as usize].prev = n2;
            for &e in &plan.chain {
                edges[e as usize].alive = false;
            }
            alive_edges += 2;
            alive_edges -= plan.chain.len();
            visible[q as usize] = false;
            winner_ids.push(rank);
        }
        // Phase C (parallel over winners): redistribute conflict points of
        // deleted edges onto the winner's two new edges. Winners touch
        // disjoint edges and disjoint points, so raw-pointer sharing is
        // sound.
        {
            let edges_ptr = SendPtr(edges.as_mut_ptr());
            let edge_of_ptr = SendPtr(edge_of.as_mut_ptr());
            let visible_ptr = SendPtr(visible.as_mut_ptr());
            let plans_ref = &plans;
            let q_batch_ref = q_batch;
            winner_ids.par_iter().for_each(|&rank| {
                // Capture the Send wrappers whole (2021 disjoint-field
                // capture would otherwise move the raw pointers).
                let (edges_ptr, edge_of_ptr, visible_ptr) = (edges_ptr, edge_of_ptr, visible_ptr);
                let plan = &plans_ref[rank];
                let q = q_batch_ref[rank];
                // The two new edges of this winner are the last pushed for
                // this rank; recover them through the boundary links.
                // SAFETY: this winner exclusively owns its chain edges, its
                // new edges, and every point in its chain's conflict lists.
                unsafe {
                    let left_edge = &*edges_ptr.0.add(plan.left as usize);
                    let n1 = left_edge.next;
                    let n2 = (*edges_ptr.0.add(n1 as usize)).next;
                    let (e1a, e1b) = {
                        let e = &*edges_ptr.0.add(n1 as usize);
                        (e.a, e.b)
                    };
                    let (e2a, e2b) = {
                        let e = &*edges_ptr.0.add(n2 as usize);
                        (e.a, e.b)
                    };
                    for &dead in &plan.chain {
                        let dead_pts = std::mem::take(&mut (*edges_ptr.0.add(dead as usize)).pts);
                        for t in dead_pts {
                            if t == q {
                                continue;
                            }
                            if sees(points, e1a, e1b, t) {
                                *edge_of_ptr.0.add(t as usize) = n1;
                                (*edges_ptr.0.add(n1 as usize)).pts.push(t);
                            } else if sees(points, e2a, e2b, t) {
                                *edge_of_ptr.0.add(t as usize) = n2;
                                (*edges_ptr.0.add(n2 as usize)).pts.push(t);
                            } else {
                                *visible_ptr.0.add(t as usize) = false;
                            }
                        }
                    }
                }
            });
        }
        // Phase D: reset reservations touched this round.
        plans.par_iter().for_each(|plan| {
            for &e in plan.chain.iter().chain([plan.left, plan.right].iter()) {
                reservations[e as usize].store(EMPTY, Ordering::Relaxed);
            }
        });
        // Line 17: pack the remaining visible points (losers retry).
        p = parlay::filter(&p, |&t| visible[t as usize]);
    }

    walk_hull(points, &edges)
}

/// Round size: at least `c · numProc` (the paper's floor), growing with
/// the remaining-point count so the number of rounds stays logarithmic
/// (each round packs `P`, so `Θ(n)`-many tiny rounds would be quadratic).
/// Degraded to one point per round while the hull is tiny (high
/// reservation contention — Appendix B).
fn round_size(alive_edges: usize, threads: usize, remaining: usize) -> usize {
    if alive_edges < 8 {
        return 1;
    }
    let floor = (8 * threads).max(1);
    let adaptive = (remaining / 8).min(alive_edges / 2);
    floor.max(adaptive).min(remaining)
}

struct ChainPlan {
    /// Contiguous visible edges, in hull order.
    chain: Vec<u32>,
    /// Surviving edge before the chain.
    left: u32,
    /// Surviving edge after the chain.
    right: u32,
}

fn find_chain(points: &[Point2], edges: &[Edge], e0: u32, q: u32) -> ChainPlan {
    debug_assert!(edges[e0 as usize].alive);
    debug_assert!(sees(points, edges[e0 as usize].a, edges[e0 as usize].b, q));
    let mut first = e0;
    loop {
        let prev = edges[first as usize].prev;
        if prev == e0 {
            break; // guarded: cannot see the whole cycle
        }
        if sees(points, edges[prev as usize].a, edges[prev as usize].b, q) {
            first = prev;
        } else {
            break;
        }
    }
    let mut chain = vec![first];
    let mut last = first;
    loop {
        let next = edges[last as usize].next;
        if next == first {
            break;
        }
        if sees(points, edges[next as usize].a, edges[next as usize].b, q) {
            chain.push(next);
            last = next;
        } else {
            break;
        }
    }
    ChainPlan {
        left: edges[first as usize].prev,
        right: edges[last as usize].next,
        chain,
    }
}

fn walk_hull(points: &[Point2], edges: &[Edge]) -> Vec<u32> {
    let start = edges
        .iter()
        .position(|e| e.alive)
        .expect("hull has at least one edge") as u32;
    let mut out = Vec::new();
    let mut cur = start;
    loop {
        out.push(edges[cur as usize].a);
        cur = edges[cur as usize].next;
        if cur == start {
            break;
        }
    }
    super::strip_collinear(points, out)
}

struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull2d::validate::check_hull2d;
    use pargeo_datagen::{on_sphere, uniform_cube};

    #[test]
    fn matches_sequential() {
        let pts = uniform_cube::<2>(20_000, 21);
        let mut got = hull2d_randinc(&pts);
        check_hull2d(&pts, &got).unwrap();
        let mut want = crate::hull2d::hull2d_seq(&pts);
        let rg = got
            .iter()
            .position(|v| v == got.iter().min().unwrap())
            .unwrap();
        got.rotate_left(rg);
        let rw = want
            .iter()
            .position(|v| v == want.iter().min().unwrap())
            .unwrap();
        want.rotate_left(rw);
        assert_eq!(got, want);
    }

    #[test]
    fn large_output_hull() {
        let pts = on_sphere::<2>(5_000, 22);
        let h = hull2d_randinc(&pts);
        check_hull2d(&pts, &h).unwrap();
        assert!(h.len() > 50, "surface data should have a large hull");
    }

    #[test]
    fn seed_changes_order_not_result() {
        let pts = uniform_cube::<2>(5_000, 23);
        let a: std::collections::BTreeSet<u32> =
            hull2d_randinc_seeded(&pts, 1).into_iter().collect();
        let b: std::collections::BTreeSet<u32> =
            hull2d_randinc_seeded(&pts, 2).into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_across_pool_sizes() {
        let pts = uniform_cube::<2>(10_000, 24);
        let a = pargeo_parlay::with_threads(1, || hull2d_randinc(&pts));
        let b = pargeo_parlay::with_threads(4, || hull2d_randinc(&pts));
        let sa: std::collections::BTreeSet<u32> = a.into_iter().collect();
        let sb: std::collections::BTreeSet<u32> = b.into_iter().collect();
        assert_eq!(sa, sb);
    }
}
