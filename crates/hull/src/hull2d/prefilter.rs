//! Octagon prefilter: discard points that provably cannot be hull
//! vertices before running the full 2D hull.
//!
//! The filter computes the extreme point of the input in eight fixed
//! directions (the axes and diagonals), forms the convex octagon those ≤8
//! points span, and discards every point *strictly inside* it — a classic
//! "throw-away" preprocessing step (Akl & Toussaint, 1978). On blob-like
//! distributions it removes the vast majority of points for 8 exact
//! orientation tests each; on adversarial inputs (everything on the hull)
//! it keeps everything and costs one linear pass.
//!
//! **Bit-identity argument.** The octagon is the convex hull of eight
//! *input* points, so it is contained in `hull(P)`; its interior is
//! therefore contained in the interior of `hull(P)` and is disjoint from
//! the hull boundary. Every point on the hull boundary — every vertex,
//! every collinear boundary point, every duplicate of one — survives the
//! filter, and the survivors keep their relative index order, so the
//! downstream algorithm sees the same candidates in the same order and
//! ties resolve to the same original indices. The strictness test uses
//! the exact [`orient2d`] predicate, so "strictly inside" has no rounding
//! slack: a point is only discarded when it is exactly interior. Hence
//! `try_hull2d_prefiltered(P).0 == try_hull2d(P)` bit-for-bit, enforced
//! by the parity tests below and the store-level differential suites.

use super::{sees, try_hull2d};
use pargeo_geometry::{GeoResult, Point2};
use rayon::prelude::*;

/// Below this size the filter's pass costs more than it saves; run the
/// plain hull.
const MIN_PREFILTER: usize = 64;

/// The eight filter directions, counter-clockwise from +x. Extreme points
/// taken in this order trace the octagon counter-clockwise.
const DIRS: [[f64; 2]; 8] = [
    [1.0, 0.0],
    [1.0, 1.0],
    [0.0, 1.0],
    [-1.0, 1.0],
    [-1.0, 0.0],
    [-1.0, -1.0],
    [0.0, -1.0],
    [1.0, -1.0],
];

/// [`try_hull2d`] behind the octagon prefilter. Returns the hull (indices
/// into `points`, identical to the unfiltered result) and the number of
/// points the filter discarded.
pub fn try_hull2d_prefiltered(points: &[Point2]) -> GeoResult<(Vec<u32>, usize)> {
    if points.len() < MIN_PREFILTER {
        return Ok((try_hull2d(points)?, 0));
    }

    // Extreme point per direction, first index on ties (any tie choice is
    // correct — the octagon only needs to be spanned by input points —
    // but first-index keeps the filter deterministic).
    let mut extreme = [0usize; 8];
    for (d, slot) in DIRS.iter().zip(extreme.iter_mut()) {
        let mut best = 0usize;
        let mut best_dot = points[0][0] * d[0] + points[0][1] * d[1];
        for (i, p) in points.iter().enumerate().skip(1) {
            let dot = p[0] * d[0] + p[1] * d[1];
            if dot > best_dot {
                best = i;
                best_dot = dot;
            }
        }
        *slot = best;
    }

    // The extreme points in direction order trace the octagon CCW; drop
    // consecutive duplicates (flat inputs collapse several directions
    // onto one point). A degenerate octagon (< 3 distinct vertices, or
    // zero area) has empty interior: nothing can be strictly inside, so
    // filtering would keep everything — skip straight to the plain hull.
    let mut octagon: Vec<u32> = Vec::with_capacity(8);
    for &e in &extreme {
        let e = e as u32;
        if octagon.last() != Some(&e) && octagon.first() != Some(&e) {
            octagon.push(e);
        }
    }
    if octagon.len() < 3 {
        return Ok((try_hull2d(points)?, 0));
    }

    // Keep a point unless it is strictly left of every CCW octagon edge
    // (exactly interior). `sees(a, b, q)` is true when q is strictly
    // *right* of a→b, so "on or outside some edge" is `sees` with the
    // edge reversed... simpler: q is strictly inside iff it is strictly
    // left of every edge, i.e. the edge "sees" q from the right never
    // happens and no edge is collinear with q. Using `sees(b, a, q)`
    // (reversed edge) gives exactly "strictly left of a→b".
    let keep: Vec<bool> = points
        .par_iter()
        .enumerate()
        .map(|(i, _)| {
            let q = i as u32;
            let inside = octagon.iter().zip(octagon.iter().cycle().skip(1)).all(
                |(&a, &b)| sees(points, b, a, q), // strictly left of a→b
            );
            !inside
        })
        .collect();

    let kept: Vec<u32> = (0..points.len() as u32)
        .filter(|&i| keep[i as usize])
        .collect();
    let discarded = points.len() - kept.len();
    if discarded == 0 {
        return Ok((try_hull2d(points)?, 0));
    }

    let compact: Vec<Point2> = kept.iter().map(|&i| points[i as usize]).collect();
    let hull = try_hull2d(&compact)?;
    Ok((
        hull.into_iter().map(|h| kept[h as usize]).collect(),
        discarded,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::{in_sphere, on_sphere, uniform_cube};

    fn parity(points: &[Point2]) {
        let plain = try_hull2d(points);
        let filtered = try_hull2d_prefiltered(points);
        match (plain, filtered) {
            (Ok(h), Ok((hf, _))) => assert_eq!(h, hf, "prefilter changed the hull"),
            (Err(e), Err(ef)) => assert_eq!(format!("{e:?}"), format!("{ef:?}")),
            (p, f) => panic!("outcome diverged: plain={p:?} filtered={f:?}"),
        }
    }

    #[test]
    fn parity_on_generator_suites() {
        for seed in [1u64, 7, 42] {
            parity(&uniform_cube::<2>(2_000, seed));
            parity(&in_sphere::<2>(2_000, seed));
            // The OS dataset is an annulus (10% inward jitter), so some
            // points are interior — parity still must hold.
            parity(&on_sphere::<2>(500, seed));
        }
    }

    #[test]
    fn exact_ring_discards_nothing() {
        // Points exactly on a circle are never strictly inside the
        // octagon its own extreme points span (chords cut inward).
        let ring: Vec<Point2> = (0..512)
            .map(|i| {
                let t = 2.0 * std::f64::consts::PI * i as f64 / 512.0;
                Point2::new([100.0 * t.cos(), 100.0 * t.sin()])
            })
            .collect();
        let (_, discarded) = try_hull2d_prefiltered(&ring).unwrap();
        assert_eq!(discarded, 0, "circle points are never interior");
        parity(&ring);
    }

    #[test]
    fn discards_interior_bulk_on_blobs() {
        let pts = in_sphere::<2>(10_000, 3);
        let (_, discarded) = try_hull2d_prefiltered(&pts).unwrap();
        // The octagon of a disk-ish blob covers most of it.
        assert!(
            discarded > pts.len() / 2,
            "expected a majority discarded, got {discarded}/{}",
            pts.len()
        );
    }

    #[test]
    fn octagon_is_not_a_slab_intersection() {
        // {(0,0),(10,1),(1,10),(9.0,0.6)}: the last point is inside every
        // axis/diagonal *slab* but outside the octagon (it is a hull
        // vertex). A slab-based filter would wrongly discard it; padding
        // with interior points pushes past MIN_PREFILTER so the filter
        // actually runs.
        let mut pts: Vec<Point2> = vec![
            Point2::new([0.0, 0.0]),
            Point2::new([10.0, 1.0]),
            Point2::new([1.0, 10.0]),
            Point2::new([9.0, 0.6]),
        ];
        for i in 0..200 {
            let t = i as f64 / 200.0;
            pts.push(Point2::new([2.0 + 3.0 * t, 2.0 + 2.0 * t]));
        }
        let (hull, _) = try_hull2d_prefiltered(&pts).unwrap();
        assert!(hull.contains(&3), "the near-edge vertex must survive");
        parity(&pts);
    }

    #[test]
    fn duplicates_and_collinear_boundaries_survive() {
        // Square with duplicated corners and collinear edge midpoints:
        // all on the hull boundary, none may be discarded before the
        // dedup/tie logic downstream sees them.
        let mut pts: Vec<Point2> = Vec::new();
        for _ in 0..2 {
            pts.push(Point2::new([0.0, 0.0]));
            pts.push(Point2::new([4.0, 0.0]));
            pts.push(Point2::new([4.0, 4.0]));
            pts.push(Point2::new([0.0, 4.0]));
            pts.push(Point2::new([2.0, 0.0]));
            pts.push(Point2::new([4.0, 2.0]));
        }
        for i in 0..100 {
            let t = 0.5 + (i as f64) / 50.0;
            pts.push(Point2::new([t.min(3.5), 1.0 + (i % 7) as f64 / 3.0]));
        }
        parity(&pts);
    }

    #[test]
    fn small_and_degenerate_inputs_pass_through() {
        parity(&[]);
        parity(&[Point2::new([1.0, 2.0])]);
        let coincident: Vec<Point2> = vec![Point2::new([3.0, 3.0]); 100];
        parity(&coincident);
        let collinear: Vec<Point2> = (0..100)
            .map(|i| Point2::new([i as f64, 2.0 * i as f64]))
            .collect();
        parity(&collinear);
    }
}
