//! Parallel recursive quickhull for R² — the paper's `QuickHull` entry for
//! 2D (Blelloch's vector-model algorithm \[19\] as implemented in PBBS):
//! the furthest point splits the chord, the two candidate subsets are
//! produced with parallel filters, and the halves recurse in parallel.

use super::{degenerate_hull, lex_max, lex_min, line_dist, proj_along, sees};
use pargeo_geometry::Point2;
use pargeo_parlay as parlay;

const SEQ_CUTOFF: usize = 2048;

/// Parallel quickhull. Returns CCW hull vertex indices.
pub fn hull2d_quickhull_parallel(points: &[Point2]) -> Vec<u32> {
    if let Some(h) = degenerate_hull(points) {
        return h;
    }
    let a = lex_min(points) as u32;
    let b = lex_max(points) as u32;
    let ids: Vec<u32> = (0..points.len() as u32).collect();
    let (below, above) = parlay::par_do(
        || parlay::filter(&ids, |&q| q != a && q != b && sees(points, a, b, q)),
        || parlay::filter(&ids, |&q| q != a && q != b && sees(points, b, a, q)),
    );
    let (mut lower, mut upper) = parlay::par_do(
        || qh_rec(points, a, b, below),
        || qh_rec(points, b, a, above),
    );
    let mut out = Vec::with_capacity(lower.len() + upper.len() + 2);
    out.push(a);
    out.append(&mut lower);
    out.push(b);
    out.append(&mut upper);
    out
}

/// Returns the hull vertices strictly between `a` and `b`, in walk order.
fn qh_rec(points: &[Point2], a: u32, b: u32, cand: Vec<u32>) -> Vec<u32> {
    if cand.is_empty() {
        return Vec::new();
    }
    if cand.len() < SEQ_CUTOFF {
        let mut out = Vec::new();
        let mut c = cand;
        seq_rec(points, a, b, &mut c, &mut out);
        return out;
    }
    // (distance, chord-projection) key: the projection tie-break keeps
    // collinear mid-chain points from being emitted as vertices.
    let f = cand[parlay::max_index_by(&cand, |&q| {
        (line_dist(points, a, b, q), proj_along(points, a, b, q))
    })
    .unwrap()];
    let (left, right) = parlay::par_do(
        || parlay::filter(&cand, |&q| q != f && sees(points, a, f, q)),
        || parlay::filter(&cand, |&q| q != f && sees(points, f, b, q)),
    );
    drop(cand);
    let (mut lo, mut hi) = parlay::par_do(
        || qh_rec(points, a, f, left),
        || qh_rec(points, f, b, right),
    );
    let mut out = Vec::with_capacity(lo.len() + hi.len() + 1);
    out.append(&mut lo);
    out.push(f);
    out.append(&mut hi);
    out
}

fn seq_rec(points: &[Point2], a: u32, b: u32, cand: &mut Vec<u32>, out: &mut Vec<u32>) {
    if cand.is_empty() {
        return;
    }
    let mut best = cand[0];
    let mut best_key = (
        line_dist(points, a, b, best),
        proj_along(points, a, b, best),
    );
    for &q in cand.iter().skip(1) {
        let key = (line_dist(points, a, b, q), proj_along(points, a, b, q));
        if key > best_key {
            best = q;
            best_key = key;
        }
    }
    let f = best;
    let mut left: Vec<u32> = Vec::new();
    let mut right: Vec<u32> = Vec::new();
    for &q in cand.iter() {
        if q == f {
            continue;
        }
        if sees(points, a, f, q) {
            left.push(q);
        } else if sees(points, f, b, q) {
            right.push(q);
        }
    }
    cand.clear();
    seq_rec(points, a, f, &mut left, out);
    out.push(f);
    seq_rec(points, f, b, &mut right, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull2d::validate::check_hull2d;
    use pargeo_datagen::uniform_cube;

    #[test]
    fn matches_sequential_on_large_input() {
        let pts = uniform_cube::<2>(50_000, 11);
        let par = hull2d_quickhull_parallel(&pts);
        let seq = crate::hull2d::hull2d_seq(&pts);
        assert_eq!(par, seq);
        check_hull2d(&pts, &par).unwrap();
    }

    #[test]
    fn deterministic_across_pool_sizes() {
        let pts = uniform_cube::<2>(30_000, 12);
        let a = pargeo_parlay::with_threads(1, || hull2d_quickhull_parallel(&pts));
        let b = pargeo_parlay::with_threads(4, || hull2d_quickhull_parallel(&pts));
        assert_eq!(a, b);
    }
}
