//! Optimized sequential quickhull — the stand-in for the CGAL / Qhull
//! baselines of Figure 8 (see DESIGN.md §5).
//!
//! Classic two-sided quickhull with in-place index partitioning: one scratch
//! vector of candidate ids per recursion side, no per-level allocation
//! beyond the initial split. Orientation tests are exact; furthest-point
//! selection uses plain doubles (selection only affects recursion order).

use super::{degenerate_hull, lex_max, lex_min, line_dist, proj_along, sees};
use pargeo_geometry::Point2;

/// Sequential quickhull. Returns CCW hull vertex indices.
pub fn hull2d_seq(points: &[Point2]) -> Vec<u32> {
    if let Some(h) = degenerate_hull(points) {
        return h;
    }
    let a = lex_min(points) as u32;
    let b = lex_max(points) as u32;
    // Split candidates by side of the chord a–b.
    let mut below: Vec<u32> = Vec::new();
    let mut above: Vec<u32> = Vec::new();
    for q in 0..points.len() as u32 {
        if q == a || q == b {
            continue;
        }
        if sees(points, a, b, q) {
            below.push(q); // right of a→b: lower hull candidates
        } else if sees(points, b, a, q) {
            above.push(q); // right of b→a: upper hull candidates
        }
    }
    let mut out = Vec::new();
    out.push(a);
    qh_rec(points, a, b, &mut below, &mut out);
    out.push(b);
    qh_rec(points, b, a, &mut above, &mut out);
    out
}

/// Emits the hull vertices strictly between `a` and `b` (walking the hull
/// from `a` to `b` with all of `cand` on the right of `a→b`), in order.
fn qh_rec(points: &[Point2], a: u32, b: u32, cand: &mut Vec<u32>, out: &mut Vec<u32>) {
    if cand.is_empty() {
        return;
    }
    // Furthest candidate from the chord becomes a hull vertex. Ties break
    // toward the largest projection along the chord: of a set of collinear
    // tied points, only the chain *endpoints* are true hull vertices, and
    // the projection tie-break always selects one (see the quickhull module
    // notes for the argument).
    let mut best = cand[0];
    let mut best_key = (
        line_dist(points, a, b, best),
        proj_along(points, a, b, best),
    );
    for &q in cand.iter().skip(1) {
        let key = (line_dist(points, a, b, q), proj_along(points, a, b, q));
        if key > best_key {
            best = q;
            best_key = key;
        }
    }
    let f = best;
    // Partition the survivors: right of a→f, right of f→b; the rest are
    // inside the triangle (a, f, b) and are discarded.
    let mut left_side: Vec<u32> = Vec::with_capacity(cand.len() / 2);
    let mut right_side: Vec<u32> = Vec::with_capacity(cand.len() / 2);
    for &q in cand.iter() {
        if q == f {
            continue;
        }
        if sees(points, a, f, q) {
            left_side.push(q);
        } else if sees(points, f, b, q) {
            right_side.push(q);
        }
    }
    cand.clear();
    cand.shrink_to_fit();
    qh_rec(points, a, f, &mut left_side, out);
    out.push(f);
    qh_rec(points, f, b, &mut right_side, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull2d::validate::check_hull2d;

    #[test]
    fn unit_square_corners() {
        let pts = vec![
            Point2::new([0.0, 0.0]),
            Point2::new([1.0, 0.0]),
            Point2::new([1.0, 1.0]),
            Point2::new([0.0, 1.0]),
            Point2::new([0.5, 0.5]),
        ];
        let h = hull2d_seq(&pts);
        assert_eq!(h, vec![0, 1, 2, 3]); // CCW from lex-min
        check_hull2d(&pts, &h).unwrap();
    }

    #[test]
    fn circle_keeps_every_point() {
        let n = 360;
        let pts: Vec<Point2> = (0..n)
            .map(|i| {
                let t = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                Point2::new([t.cos(), t.sin()])
            })
            .collect();
        let h = hull2d_seq(&pts);
        assert_eq!(h.len(), n);
        check_hull2d(&pts, &h).unwrap();
    }

    #[test]
    fn output_is_ccw_starting_at_lex_min() {
        let pts = pargeo_datagen::uniform_cube::<2>(1_000, 9);
        let h = hull2d_seq(&pts);
        check_hull2d(&pts, &h).unwrap();
        let lo = super::lex_min(&pts) as u32;
        assert_eq!(h[0], lo);
    }
}
