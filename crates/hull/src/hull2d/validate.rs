//! Hull verification used by tests, examples, and EXPERIMENTS.md sanity
//! checks.

use pargeo_geometry::{orient2d, Orientation, Point2};

/// Checks that `hull` (indices, CCW) is a strictly convex polygon whose
/// closed region contains every input point. Returns a description of the
/// first violation.
pub fn check_hull2d(points: &[Point2], hull: &[u32]) -> Result<(), String> {
    match hull.len() {
        0 => {
            if points.is_empty() {
                return Ok(());
            }
            return Err("empty hull for non-empty input".into());
        }
        1 => {
            let p = points[hull[0] as usize];
            for (i, q) in points.iter().enumerate() {
                if *q != p {
                    return Err(format!("point {i} differs but hull is a single vertex"));
                }
            }
            return Ok(());
        }
        2 => {
            // All points must be collinear with, and between the bbox of,
            // the two hull vertices.
            let a = points[hull[0] as usize];
            let b = points[hull[1] as usize];
            for (i, q) in points.iter().enumerate() {
                if orient2d(&a, &b, q) != Orientation::Zero {
                    return Err(format!("point {i} off the degenerate hull segment"));
                }
            }
            return Ok(());
        }
        _ => {}
    }
    // Strict convexity: every consecutive triple turns left.
    let m = hull.len();
    for i in 0..m {
        let a = hull[i] as usize;
        let b = hull[(i + 1) % m] as usize;
        let c = hull[(i + 2) % m] as usize;
        if orient2d(&points[a], &points[b], &points[c]) != Orientation::Positive {
            return Err(format!(
                "hull not strictly convex at positions {i}..{} (vertices {a},{b},{c})",
                (i + 2) % m
            ));
        }
    }
    // Containment: no input point strictly outside any edge.
    for i in 0..m {
        let a = hull[i] as usize;
        let b = hull[(i + 1) % m] as usize;
        for (j, q) in points.iter().enumerate() {
            if orient2d(&points[a], &points[b], q) == Orientation::Negative {
                return Err(format!("point {j} outside hull edge ({a},{b})"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_triangle() {
        let pts = vec![
            Point2::new([0.0, 0.0]),
            Point2::new([2.0, 0.0]),
            Point2::new([1.0, 1.0]),
            Point2::new([1.0, 0.5]),
        ];
        assert!(check_hull2d(&pts, &[0, 1, 2]).is_ok());
    }

    #[test]
    fn rejects_clockwise_hull() {
        let pts = vec![
            Point2::new([0.0, 0.0]),
            Point2::new([2.0, 0.0]),
            Point2::new([1.0, 1.0]),
        ];
        assert!(check_hull2d(&pts, &[0, 2, 1]).is_err());
    }

    #[test]
    fn rejects_hull_missing_a_point() {
        let pts = vec![
            Point2::new([0.0, 0.0]),
            Point2::new([2.0, 0.0]),
            Point2::new([1.0, 1.0]),
            Point2::new([1.0, 5.0]), // outside the claimed triangle
        ];
        assert!(check_hull2d(&pts, &[0, 1, 2]).is_err());
    }

    #[test]
    fn rejects_non_strict_convexity() {
        let pts = vec![
            Point2::new([0.0, 0.0]),
            Point2::new([1.0, 0.0]),
            Point2::new([2.0, 0.0]),
            Point2::new([1.0, 1.0]),
        ];
        // Midpoint of the bottom edge included: collinear triple.
        assert!(check_hull2d(&pts, &[0, 1, 2, 3]).is_err());
        assert!(check_hull2d(&pts, &[0, 2, 3]).is_ok());
    }
}
