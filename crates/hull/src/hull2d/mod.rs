//! 2-dimensional convex hull.
//!
//! All algorithms return the hull vertices as indices into the input, in
//! counterclockwise order starting from the lexicographically smallest
//! point. Collinear boundary points are *not* reported (strict hull), and
//! degenerate inputs (≤ 2 distinct points, or all collinear) return the
//! extreme points only.

mod dnc;
mod inc;
mod prefilter;
mod quickhull;
mod randinc;
mod seq;
pub mod validate;

pub use dnc::hull2d_divide_conquer;
pub use inc::{Hull2dIncremental, HullBatchOutcome};
pub use prefilter::try_hull2d_prefiltered;
pub use quickhull::hull2d_quickhull_parallel;
pub use randinc::hull2d_randinc;
pub use seq::hull2d_seq;

use pargeo_geometry::{orient2d, GeoError, GeoResult, Orientation, Point2};

/// Non-panicking 2D hull that *rejects* inputs with no full-dimensional
/// hull — empty, fewer than three points, all coincident, or all collinear
/// — with a typed [`GeoError`] instead of silently returning the extreme
/// points, then runs `algo` (any of this crate's `hull2d_*` entry points).
pub fn try_hull2d_with(points: &[Point2], algo: fn(&[Point2]) -> Vec<u32>) -> GeoResult<Vec<u32>> {
    if points.is_empty() {
        return Err(GeoError::EmptyInput { op: "hull2d" });
    }
    if points.len() < 3 {
        return Err(GeoError::TooFewPoints {
            op: "hull2d",
            needed: 3,
            got: points.len(),
        });
    }
    match degenerate_hull(points) {
        Some(v) if v.len() <= 1 => Err(GeoError::Degenerate {
            op: "hull2d",
            what: "coincident",
        }),
        Some(_) => Err(GeoError::Degenerate {
            op: "hull2d",
            what: "collinear",
        }),
        None => Ok(algo(points)),
    }
}

/// [`try_hull2d_with`] using the parallel quickhull.
pub fn try_hull2d(points: &[Point2]) -> GeoResult<Vec<u32>> {
    try_hull2d_with(points, hull2d_quickhull_parallel)
}

/// True iff `q` lies strictly to the right of the directed line `a → b`
/// (i.e. `q` sees the CCW hull edge `(a, b)` from outside).
#[inline]
pub(crate) fn sees(points: &[Point2], a: u32, b: u32, q: u32) -> bool {
    orient2d(
        &points[a as usize],
        &points[b as usize],
        &points[q as usize],
    ) == Orientation::Negative
}

/// Index of the lexicographically smallest point (min x, then min y).
pub(crate) fn lex_min(points: &[Point2]) -> usize {
    pargeo_parlay::max_index_by(points, |p| (-p[0], -p[1])).expect("non-empty")
}

/// Index of the lexicographically largest point.
pub(crate) fn lex_max(points: &[Point2]) -> usize {
    pargeo_parlay::max_index_by(points, |p| (p[0], p[1])).expect("non-empty")
}

/// Squared "distance" proxy of `q` from line `a → b` (twice the signed
/// triangle area; sign dropped). Used only to *select* split points, never
/// to decide predicates, so plain doubles are fine.
#[inline]
pub(crate) fn line_dist(points: &[Point2], a: u32, b: u32, q: u32) -> f64 {
    let pa = points[a as usize];
    let pb = points[b as usize];
    let pq = points[q as usize];
    ((pb - pa).cross2(&(pq - pa))).abs()
}

/// Projection of `q` along the chord direction `a → b` (tie-break key for
/// furthest-point selection: among points tied at the same distance — a
/// collinear chain parallel to the chord — the extremes of the chain have
/// extremal projections, and only they are true hull vertices, so
/// maximizing `(distance, projection)` never emits a mid-chain point).
#[inline]
pub(crate) fn proj_along(points: &[Point2], a: u32, b: u32, q: u32) -> f64 {
    let pa = points[a as usize];
    let pb = points[b as usize];
    let pq = points[q as usize];
    (pq - pa).dot(&(pb - pa))
}

/// Removes vertices that lie on the segment between their hull neighbors.
///
/// The incremental algorithms never revisit a vertex once added, so a point
/// inserted early can end up exactly *on* a final hull edge (a later point
/// extended the edge past it). Quickhull's strict recursion excludes such
/// points; stripping them here keeps all algorithms' outputs identical
/// (strict hull semantics).
pub(crate) fn strip_collinear(points: &[Point2], hull: Vec<u32>) -> Vec<u32> {
    if hull.len() < 3 {
        return hull;
    }
    let orient = |a: u32, b: u32, c: u32| {
        orient2d(
            &points[a as usize],
            &points[b as usize],
            &points[c as usize],
        )
    };
    let mut out: Vec<u32> = Vec::with_capacity(hull.len());
    for &v in &hull {
        while out.len() >= 2
            && orient(out[out.len() - 2], out[out.len() - 1], v) == Orientation::Zero
        {
            out.pop();
        }
        out.push(v);
    }
    // Wrap-around: the seam at out[0] / out[last] may still be collinear.
    loop {
        let n = out.len();
        if n >= 3 && orient(out[n - 2], out[n - 1], out[0]) == Orientation::Zero {
            out.pop();
            continue;
        }
        let n = out.len();
        if n >= 3 && orient(out[n - 1], out[0], out[1]) == Orientation::Zero {
            out.remove(0);
            continue;
        }
        break;
    }
    out
}

/// Handles the degenerate cases shared by all algorithms. Returns `Some`
/// when the input has no 2D hull (empty, single point, or all collinear);
/// the result is the extreme point(s).
pub(crate) fn degenerate_hull(points: &[Point2]) -> Option<Vec<u32>> {
    if points.is_empty() {
        return Some(Vec::new());
    }
    let lo = lex_min(points) as u32;
    let hi = lex_max(points) as u32;
    if lo == hi || points[lo as usize] == points[hi as usize] {
        return Some(vec![lo.min(hi)]);
    }
    // Any point off the line lo–hi proves full dimensionality.
    let off = (0..points.len() as u32).find(|&q| {
        orient2d(
            &points[lo as usize],
            &points[hi as usize],
            &points[q as usize],
        ) != Orientation::Zero
    });
    if off.is_none() {
        return Some(vec![lo, hi]);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::validate::check_hull2d;
    use super::*;
    use pargeo_datagen::{in_sphere, on_cube, on_sphere, uniform_cube};

    type Algo = fn(&[Point2]) -> Vec<u32>;

    fn algos() -> Vec<(&'static str, Algo)> {
        vec![
            ("seq", hull2d_seq as Algo),
            ("quickhull", hull2d_quickhull_parallel as Algo),
            ("randinc", hull2d_randinc as Algo),
            ("dnc", hull2d_divide_conquer as Algo),
        ]
    }

    /// Hull as coordinate sequence rotated to start at its lexicographic
    /// minimum — identical across algorithms even when duplicate input
    /// points make the index choice ambiguous.
    fn canonical(points: &[Point2], hull: &[u32]) -> Vec<[f64; 2]> {
        let mut coords: Vec<[f64; 2]> = hull.iter().map(|&i| points[i as usize].coords).collect();
        if coords.is_empty() {
            return coords;
        }
        let rot = coords
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        coords.rotate_left(rot);
        coords
    }

    fn check_all(points: &[Point2]) {
        let reference = canonical(points, &hull2d_seq(points));
        for (name, f) in algos() {
            let h = f(points);
            check_hull2d(points, &h).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                canonical(points, &h),
                reference,
                "{name} disagrees with seq"
            );
        }
    }

    #[test]
    fn all_algorithms_agree_uniform() {
        check_all(&uniform_cube::<2>(4_000, 1));
    }

    #[test]
    fn all_algorithms_agree_in_sphere() {
        check_all(&in_sphere::<2>(4_000, 2));
    }

    #[test]
    fn all_algorithms_agree_on_sphere() {
        // Large hull output: stresses the incremental rounds.
        check_all(&on_sphere::<2>(2_000, 3));
    }

    #[test]
    fn all_algorithms_agree_on_cube() {
        check_all(&on_cube::<2>(3_000, 4));
    }

    #[test]
    fn tiny_inputs() {
        for (_, f) in algos() {
            assert!(f(&[]).is_empty());
            assert_eq!(f(&[Point2::new([1.0, 1.0])]), vec![0]);
            let two = [Point2::new([0.0, 0.0]), Point2::new([1.0, 0.0])];
            assert_eq!(f(&two), vec![0, 1]);
            let tri = [
                Point2::new([0.0, 0.0]),
                Point2::new([1.0, 0.0]),
                Point2::new([0.0, 1.0]),
            ];
            let h = f(&tri);
            assert_eq!(h.len(), 3);
        }
    }

    #[test]
    fn collinear_input() {
        let pts: Vec<Point2> = (0..100)
            .map(|i| Point2::new([i as f64, 2.0 * i as f64]))
            .collect();
        for (name, f) in algos() {
            let h = f(&pts);
            assert_eq!(h.len(), 2, "{name}");
            assert!(h.contains(&0) && h.contains(&99), "{name}");
        }
    }

    #[test]
    fn try_hull2d_rejects_degenerate_inputs() {
        assert_eq!(try_hull2d(&[]), Err(GeoError::EmptyInput { op: "hull2d" }));
        let two = [Point2::new([0.0, 0.0]), Point2::new([1.0, 0.0])];
        assert_eq!(
            try_hull2d(&two),
            Err(GeoError::TooFewPoints {
                op: "hull2d",
                needed: 3,
                got: 2
            })
        );
        let same = [Point2::new([1.0, 1.0]); 5];
        assert_eq!(
            try_hull2d(&same),
            Err(GeoError::Degenerate {
                op: "hull2d",
                what: "coincident"
            })
        );
        let collinear: Vec<Point2> = (0..40).map(|i| Point2::new([i as f64, i as f64])).collect();
        for (_, f) in algos() {
            assert_eq!(
                try_hull2d_with(&collinear, f),
                Err(GeoError::Degenerate {
                    op: "hull2d",
                    what: "collinear"
                })
            );
        }
        let tri = [
            Point2::new([0.0, 0.0]),
            Point2::new([1.0, 0.0]),
            Point2::new([0.0, 1.0]),
        ];
        assert_eq!(try_hull2d(&tri).unwrap().len(), 3);
    }

    #[test]
    fn duplicates_everywhere() {
        let mut pts = uniform_cube::<2>(500, 5);
        let dups: Vec<Point2> = pts.iter().step_by(3).copied().collect();
        pts.extend(dups);
        check_all(&pts);
    }

    #[test]
    fn square_with_interior_grid() {
        // Exact corners; every other point strictly inside.
        let mut pts = vec![
            Point2::new([0.0, 0.0]),
            Point2::new([10.0, 0.0]),
            Point2::new([10.0, 10.0]),
            Point2::new([0.0, 10.0]),
        ];
        for i in 1..10 {
            for j in 1..10 {
                pts.push(Point2::new([i as f64, j as f64]));
            }
        }
        for (name, f) in algos() {
            let mut h = f(&pts);
            h.sort();
            assert_eq!(h, vec![0, 1, 2, 3], "{name}");
        }
    }
}
