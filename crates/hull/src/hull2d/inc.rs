//! Resumable batch-insert maintenance of a 2D convex hull.
//!
//! [`Hull2dIncremental`] keeps the hull of a growing *prefix* of a point
//! slice alive across insert batches: each batch walks the new points in
//! index order, finds the contiguous visible chain of the current cycle
//! (the sequential core of the paper's randomized incremental algorithm,
//! without the reservation machinery — batches arriving from a store
//! planner are small relative to the structure), and splices the new
//! vertex in place of the chain. Extraction via [`Hull2dIncremental::hull`]
//! is **bit-identical** to [`try_hull2d`](crate::try_hull2d) on the same
//! prefix:
//!
//! - quickhull's furthest-point selection breaks exact ties toward the
//!   smaller index (`max_index_by` is first-wins), so duplicate-coordinate
//!   corners resolve to the *minimal* index holding that coordinate;
//! - index-order insertion picks the same minimal index: a later duplicate
//!   of a coordinate already in the structure is never strictly outside
//!   and is skipped;
//! - the strictly-convex corner sequence of a full-dimensional point set
//!   is unique once rotated to start at the lexicographically smallest
//!   coordinate, which extraction does (after stripping weak vertices,
//!   exactly like the randomized incremental path).
//!
//! The damage threshold bounds how much of the structure one batch may
//! tear down before the caller is told to rebuild from scratch instead
//! (`destroyed edges / (cycle edges at batch start + batch size)`).

use super::{sees, strip_collinear, try_hull2d};
use pargeo_geometry::{GeoError, GeoResult, Point2};

/// What a batch insert did to the maintained hull.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HullBatchOutcome {
    /// The batch was applied; the engine now covers the longer prefix.
    Applied {
        /// Hull edges destroyed while splicing the batch in.
        destroyed: usize,
    },
    /// The batch tore down more than `max_damage` of the structure; the
    /// engine is poisoned and must be discarded (rebuild from scratch).
    DamageExceeded {
        /// Edges destroyed before the budget ran out.
        destroyed: usize,
    },
}

/// Incrementally maintained strict 2D hull over a growing point prefix.
///
/// The engine never stores coordinates — callers pass the (append-only)
/// point slice to every method, and the engine tracks how long a prefix it
/// has consumed. Deletions are out of scope by design: removing a point
/// can only be answered by a rebuild.
#[derive(Debug, Clone)]
pub struct Hull2dIncremental {
    /// CCW vertex cycle. May contain *weak* (collinear) vertices that a
    /// later insert flattened onto an edge; extraction strips them.
    cycle: Vec<u32>,
    /// `points[..consumed]` is the prefix this cycle is the hull of.
    consumed: usize,
    /// Set when a batch aborted mid-flight; the cycle is no longer a hull.
    poisoned: bool,
}

impl Hull2dIncremental {
    /// Builds the engine from a full hull computation over `points`
    /// (rejecting degenerate inputs exactly like [`try_hull2d`]).
    pub fn try_build(points: &[Point2]) -> GeoResult<Self> {
        let cycle = try_hull2d(points)?;
        Ok(Self {
            cycle,
            consumed: points.len(),
            poisoned: false,
        })
    }

    /// Length of the consumed prefix.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Applies `points[consumed..]` in index order. `points[..consumed]`
    /// must be unchanged since the last call (append-only contract).
    ///
    /// Returns [`HullBatchOutcome::DamageExceeded`] — poisoning the engine
    /// — once more than `max_damage · (cycle edges + batch size)` edges
    /// have been destroyed, or if the cycle is found inconsistent.
    pub fn try_insert_batch(
        &mut self,
        points: &[Point2],
        max_damage: f64,
    ) -> GeoResult<HullBatchOutcome> {
        if self.poisoned {
            return Err(GeoError::BadParameter {
                op: "hull2d_insert_batch",
                what: "engine poisoned by an aborted batch; rebuild required",
            });
        }
        if points.len() < self.consumed {
            return Err(GeoError::BadParameter {
                op: "hull2d_insert_batch",
                what: "point slice shrank below the consumed prefix",
            });
        }
        let budget = max_damage * (self.cycle.len() + (points.len() - self.consumed)) as f64;
        let mut destroyed = 0usize;
        let mut vis = Vec::new();
        for q in self.consumed..points.len() {
            match self.insert_one(points, q as u32, &mut vis) {
                Some(k) => destroyed += k,
                None => {
                    self.poisoned = true;
                    return Ok(HullBatchOutcome::DamageExceeded { destroyed });
                }
            }
            if destroyed as f64 > budget {
                self.poisoned = true;
                return Ok(HullBatchOutcome::DamageExceeded { destroyed });
            }
        }
        self.consumed = points.len();
        Ok(HullBatchOutcome::Applied { destroyed })
    }

    /// Inserts one point, returning the number of edges destroyed (0 when
    /// the point is inside the current hull), or `None` when the cycle is
    /// inconsistent (every edge visible — impossible for a convex cycle).
    fn insert_one(&mut self, points: &[Point2], q: u32, vis: &mut Vec<bool>) -> Option<usize> {
        let m = self.cycle.len();
        vis.clear();
        vis.extend((0..m).map(|i| sees(points, self.cycle[i], self.cycle[(i + 1) % m], q)));
        if !vis.iter().any(|&v| v) {
            return Some(0); // inside or on the boundary: not a strict corner
        }
        // First edge of the (contiguous) visible arc.
        let first = (0..m).find(|&i| vis[i] && !vis[(i + m - 1) % m])?;
        let mut k = 1;
        while vis[(first + k) % m] {
            k += 1;
        }
        // Replace the k-edge chain with the two edges through q: keep the
        // chain's endpoints, drop the k - 1 vertices strictly inside it.
        let mut next = Vec::with_capacity(m + 2 - k);
        next.push(q);
        let mut i = (first + k) % m;
        loop {
            next.push(self.cycle[i]);
            if i == first {
                break;
            }
            i = (i + 1) % m;
        }
        self.cycle = next;
        Some(k)
    }

    /// Extracts the strict hull of `points[..consumed]`: weak vertices
    /// stripped, rotated to start at the lexicographically smallest
    /// coordinate — bit-identical to [`try_hull2d`] on the same prefix.
    pub fn hull(&self, points: &[Point2]) -> GeoResult<Vec<u32>> {
        if self.poisoned {
            return Err(GeoError::BadParameter {
                op: "hull2d_extract",
                what: "engine poisoned by an aborted batch; rebuild required",
            });
        }
        let mut out = strip_collinear(points, self.cycle.clone());
        let lex = |v: u32| {
            let p = points[v as usize];
            (p[0], p[1])
        };
        let rot = out
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| lex(a).partial_cmp(&lex(b)).expect("finite coords"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        out.rotate_left(rot);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::{on_sphere, uniform_cube};
    use pargeo_geometry::Point2;

    /// Incremental batches must stay bit-identical to a full recompute on
    /// every prefix, including duplicate-heavy lattice data where the
    /// index choice is ambiguous.
    #[test]
    fn batches_match_full_recompute_bit_identically() {
        let mut pts: Vec<Point2> = uniform_cube::<2>(600, 7);
        // Duplicate-heavy tail: every third point repeated, plus a coarse
        // lattice (many exactly-collinear and coincident configurations).
        let dups: Vec<Point2> = pts.iter().step_by(3).copied().collect();
        pts.extend(dups);
        for i in 0..12 {
            for j in 0..12 {
                pts.push(Point2::new([i as f64 / 11.0, j as f64 / 11.0]));
            }
        }
        let mut eng = Hull2dIncremental::try_build(&pts[..64]).unwrap();
        let mut at = 64usize;
        for step in [1usize, 3, 17, 64, 200, 400, usize::MAX] {
            let to = at.saturating_add(step).min(pts.len());
            match eng.try_insert_batch(&pts[..to], 1.0).unwrap() {
                HullBatchOutcome::Applied { .. } => {}
                other => panic!("unexpected outcome: {other:?}"),
            }
            at = to;
            assert_eq!(
                eng.hull(&pts[..to]).unwrap(),
                crate::try_hull2d(&pts[..to]).unwrap(),
                "prefix {to}"
            );
        }
        assert_eq!(at, pts.len());
        assert_eq!(eng.consumed(), pts.len());
    }

    /// On-circle data destroys edges aggressively; a tight damage budget
    /// must abort and poison the engine, and a loose one must not.
    #[test]
    fn damage_threshold_aborts_and_poisons() {
        let pts = on_sphere::<2>(2_000, 11);
        let mut eng = Hull2dIncremental::try_build(&pts[..100]).unwrap();
        match eng.try_insert_batch(&pts, 0.05).unwrap() {
            HullBatchOutcome::DamageExceeded { destroyed } => assert!(destroyed > 0),
            other => panic!("expected abort, got {other:?}"),
        }
        assert!(eng.try_insert_batch(&pts, 0.05).is_err());
        assert!(eng.hull(&pts).is_err());

        let mut loose = Hull2dIncremental::try_build(&pts[..100]).unwrap();
        match loose.try_insert_batch(&pts, 1.0).unwrap() {
            HullBatchOutcome::Applied { destroyed } => assert!(destroyed > 0),
            other => panic!("expected apply, got {other:?}"),
        }
        assert_eq!(loose.hull(&pts).unwrap(), crate::try_hull2d(&pts).unwrap());
    }

    /// A batch that is entirely interior destroys nothing and leaves the
    /// extracted hull unchanged.
    #[test]
    fn interior_batch_is_a_cheap_no_op() {
        let mut pts = vec![
            Point2::new([0.0, 0.0]),
            Point2::new([10.0, 0.0]),
            Point2::new([10.0, 10.0]),
            Point2::new([0.0, 10.0]),
        ];
        let before = pts.clone();
        for i in 1..8 {
            for j in 1..8 {
                pts.push(Point2::new([i as f64, j as f64]));
            }
        }
        let mut eng = Hull2dIncremental::try_build(&before).unwrap();
        let h0 = eng.hull(&before).unwrap();
        match eng.try_insert_batch(&pts, 0.0).unwrap() {
            HullBatchOutcome::Applied { destroyed } => assert_eq!(destroyed, 0),
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(eng.hull(&pts).unwrap(), h0);
    }

    /// Shrinking the slice below the consumed prefix is a typed error.
    #[test]
    fn shrunken_prefix_is_rejected() {
        let pts = uniform_cube::<2>(50, 3);
        let mut eng = Hull2dIncremental::try_build(&pts).unwrap();
        assert!(matches!(
            eng.try_insert_batch(&pts[..10], 1.0),
            Err(GeoError::BadParameter { .. })
        ));
    }

    /// Points exactly on existing hull edges (weak vertices) must never
    /// surface as corners, matching quickhull's strict semantics.
    #[test]
    fn on_edge_points_stay_stripped() {
        let mut pts = vec![
            Point2::new([0.0, 0.0]),
            Point2::new([4.0, 0.0]),
            Point2::new([4.0, 4.0]),
            Point2::new([0.0, 4.0]),
        ];
        let mut eng = Hull2dIncremental::try_build(&pts).unwrap();
        // On-boundary points, then a corner-extending point that flattens
        // an old corner onto an edge.
        pts.push(Point2::new([2.0, 0.0]));
        pts.push(Point2::new([4.0, 2.0]));
        pts.push(Point2::new([8.0, 0.0]));
        match eng.try_insert_batch(&pts, 1.0).unwrap() {
            HullBatchOutcome::Applied { .. } => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(eng.hull(&pts).unwrap(), crate::try_hull2d(&pts).unwrap());
    }
}
