//! 3D hull verification for tests and EXPERIMENTS.md sanity checks.

use super::Hull3d;
use pargeo_geometry::{orient3d, Orientation, Point3};

/// Checks that `hull` is a closed, outward-oriented triangulated surface
/// containing every input point (boundary inclusive). For degenerate hulls
/// (no facets) only checks that vertices exist for non-empty input.
pub fn check_hull3d(points: &[Point3], hull: &Hull3d) -> Result<(), String> {
    if hull.facets.is_empty() {
        if points.is_empty() && hull.vertices.is_empty() {
            return Ok(());
        }
        if hull.vertices.is_empty() {
            return Err("no vertices for non-empty input".into());
        }
        return Ok(()); // degenerate (flat) input — 2D checks live elsewhere
    }
    // Containment: no point strictly outside any facet.
    for (fi, f) in hull.facets.iter().enumerate() {
        let a = &points[f[0] as usize];
        let b = &points[f[1] as usize];
        let c = &points[f[2] as usize];
        for (qi, q) in points.iter().enumerate() {
            if orient3d(a, b, c, q) == Orientation::Negative {
                return Err(format!("point {qi} outside facet {fi} {f:?}"));
            }
        }
    }
    // Closed surface: every directed ridge appears exactly once, and its
    // reverse exactly once.
    let mut ridges = std::collections::HashSet::new();
    for f in &hull.facets {
        for i in 0..3 {
            let e = (f[i], f[(i + 1) % 3]);
            if !ridges.insert(e) {
                return Err(format!("directed ridge {e:?} appears twice"));
            }
        }
    }
    for &(a, b) in &ridges {
        if !ridges.contains(&(b, a)) {
            return Err(format!(
                "ridge ({a},{b}) lacks its reverse — surface not closed"
            ));
        }
    }
    // Euler characteristic of a sphere.
    let v = hull.vertices.len() as i64;
    let e = ridges.len() as i64 / 2;
    let f = hull.facets.len() as i64;
    if v - e + f != 2 {
        return Err(format!("Euler check failed: V={v} E={e} F={f}"));
    }
    // Vertex list matches facet usage.
    let mut used: Vec<u32> = hull.facets.iter().flatten().copied().collect();
    used.sort_unstable();
    used.dedup();
    if used != hull.vertices {
        return Err("vertex list does not match facets".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_unit_tetrahedron() {
        let pts = vec![
            Point3::new([0.0, 0.0, 0.0]),
            Point3::new([1.0, 0.0, 0.0]),
            Point3::new([0.0, 1.0, 0.0]),
            Point3::new([0.0, 0.0, 1.0]),
        ];
        let hull = crate::hull3d::hull3d_seq(&pts);
        assert!(check_hull3d(&pts, &hull).is_ok());
    }

    #[test]
    fn rejects_open_surface() {
        let pts = vec![
            Point3::new([0.0, 0.0, 0.0]),
            Point3::new([1.0, 0.0, 0.0]),
            Point3::new([0.0, 1.0, 0.0]),
            Point3::new([0.0, 0.0, 1.0]),
        ];
        let hull = Hull3d {
            facets: vec![[0, 2, 1]], // single facet: not closed
            vertices: vec![0, 1, 2],
        };
        assert!(check_hull3d(&pts, &hull).is_err());
    }

    #[test]
    fn rejects_hull_excluding_a_point() {
        let mut pts = vec![
            Point3::new([0.0, 0.0, 0.0]),
            Point3::new([1.0, 0.0, 0.0]),
            Point3::new([0.0, 1.0, 0.0]),
            Point3::new([0.0, 0.0, 1.0]),
        ];
        let hull = crate::hull3d::hull3d_seq(&pts);
        pts.push(Point3::new([5.0, 5.0, 5.0]));
        assert!(check_hull3d(&pts, &hull).is_err());
    }
}
