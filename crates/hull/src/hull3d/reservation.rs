//! The reservation-based parallel incremental convex hull (paper Figure 5).
//!
//! One driver implements both instantiations:
//!
//! * **RandInc** — the input is randomly permuted and each round attempts a
//!   *prefix* of the remaining visible points.
//! * **QuickHull** — each round attempts the furthest visible point of each
//!   of (up to) `c · numProc` facets with non-empty conflict lists.
//!
//! A round runs four phases: (A) every batch point BFSes its visible region
//! and priority-writes its rank onto the region plus its boundary ring;
//! (A') points that hold *all* their reservations succeed; (B) winners'
//! cavities are replaced by new facet fans (cheap structural surgery,
//! `O(Σ cavity)`); (C) conflict lists of deleted facets are redistributed
//! onto each winner's new facets in parallel (winners own disjoint facet
//! and point sets — the invariant the reservation buys); (D) reservations
//! reset and the visible-point set is packed (Figure 5, line 17). Rank 0
//! always wins every slot it touches, so progress is guaranteed.

use super::mesh::{Facet, Hull3d, HullStats, Mesh};
use super::{degenerate_hull3d, initial_tetrahedron};
use pargeo_geometry::Point3;
use pargeo_parlay as parlay;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

const EMPTY: usize = usize::MAX;

/// Batch scheduling strategy (the two §3 instantiations).
enum Strategy {
    RandInc,
    Quickhull,
}

/// Parallel randomized incremental hull (default seed).
pub fn hull3d_randinc(points: &[Point3]) -> Hull3d {
    hull3d_randinc_seeded(points, 42)
}

/// Parallel randomized incremental hull with an explicit seed.
pub fn hull3d_randinc_seeded(points: &[Point3], seed: u64) -> Hull3d {
    drive(points, Strategy::RandInc, seed).0
}

/// Parallel randomized incremental hull with Figure 12 counters.
pub fn hull3d_randinc_with_stats(points: &[Point3]) -> (Hull3d, HullStats) {
    drive(points, Strategy::RandInc, 42)
}

/// Reservation-based parallel quickhull.
pub fn hull3d_quickhull_parallel(points: &[Point3]) -> Hull3d {
    drive(points, Strategy::Quickhull, 42).0
}

/// Reservation-based parallel quickhull with Figure 12 counters.
pub fn hull3d_quickhull_parallel_with_stats(points: &[Point3]) -> (Hull3d, HullStats) {
    drive(points, Strategy::Quickhull, 42)
}

struct Plan {
    q: u32,
    visible: Vec<u32>,
    boundary: Vec<u32>,
}

fn drive(points: &[Point3], strategy: Strategy, seed: u64) -> (Hull3d, HullStats) {
    let mut stats = HullStats::default();
    let Some(tetra) = initial_tetrahedron(points) else {
        return (degenerate_hull3d(points), stats);
    };
    let mut mesh = Mesh::new_tetrahedron(points, tetra);
    let mut reservations: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(EMPTY)).collect();
    let n = points.len();
    let mut facet_of: Vec<u32> = vec![u32::MAX; n];
    let mut visible: Vec<bool> = vec![false; n];

    // Initial conflict assignment (in permutation order for RandInc).
    let order: Vec<u32> = match strategy {
        Strategy::RandInc => parlay::random_permutation(n, seed),
        Strategy::Quickhull => (0..n as u32).collect(),
    };
    let assignments: Vec<(u32, u32)> = order
        .par_iter()
        .filter_map(|&q| {
            if tetra.contains(&q) {
                return None;
            }
            (0..4u32).find(|&f| mesh.sees(f, q)).map(|f| (q, f))
        })
        .collect();
    for f in 0..4u32 {
        mesh.facets[f as usize].pts = parlay::filter(&assignments, |&(_, g)| g == f)
            .into_iter()
            .map(|(q, _)| q)
            .collect();
    }
    for &(q, f) in &assignments {
        facet_of[q as usize] = f;
        visible[q as usize] = true;
    }
    // RandInc: visible points in permutation order. Quickhull: facet queue.
    let mut p: Vec<u32> = assignments.iter().map(|&(q, _)| q).collect();
    let mut active: Vec<u32> = (0..4u32)
        .filter(|&f| !mesh.facets[f as usize].pts.is_empty())
        .collect();

    loop {
        // ---- batch selection ----
        let r = round_size(mesh.alive_count, parlay::num_threads(), p.len());
        let batch: Vec<u32> = match strategy {
            Strategy::RandInc => {
                if p.is_empty() {
                    break;
                }
                p[..r.min(p.len())].to_vec()
            }
            Strategy::Quickhull => {
                let mut facets_chosen: Vec<u32> = Vec::with_capacity(r);
                while facets_chosen.len() < r {
                    let Some(f) = active.pop() else { break };
                    if mesh.facets[f as usize].alive && !mesh.facets[f as usize].pts.is_empty() {
                        facets_chosen.push(f);
                    }
                }
                if facets_chosen.is_empty() {
                    break;
                }
                // Furthest conflict point of each chosen facet.
                let cands: Vec<u32> = facets_chosen
                    .par_iter()
                    .map(|&f| {
                        *mesh.facets[f as usize]
                            .pts
                            .iter()
                            .max_by(|&&x, &&y| {
                                mesh.height(f, x).partial_cmp(&mesh.height(f, y)).unwrap()
                            })
                            .unwrap()
                    })
                    .collect();
                // Losers' facets must be retried later.
                active.extend(&facets_chosen);
                cands
            }
        };

        // ---- Phase A: visible regions + reservations ----
        let plans: Vec<Plan> = batch
            .par_iter()
            .enumerate()
            .map(|(rank, &q)| {
                let f0 = facet_of[q as usize];
                let vis = mesh.visible_region(f0, q);
                let boundary = mesh.boundary_of(&vis, q);
                for &f in vis.iter().chain(&boundary) {
                    let slot = &reservations[f as usize];
                    if slot.load(Ordering::Relaxed) > rank {
                        slot.fetch_min(rank, Ordering::Relaxed);
                    }
                }
                Plan {
                    q,
                    visible: vis,
                    boundary,
                }
            })
            .collect();
        stats.rounds += 1;
        stats.points_touched += plans.len() as u64;
        stats.facets_touched += plans
            .iter()
            .map(|pl| (pl.visible.len() + pl.boundary.len()) as u64)
            .sum::<u64>();

        // ---- Phase A': check reservations ----
        let success: Vec<bool> = plans
            .par_iter()
            .enumerate()
            .map(|(rank, pl)| {
                pl.visible
                    .iter()
                    .chain(&pl.boundary)
                    .all(|&f| reservations[f as usize].load(Ordering::Relaxed) == rank)
            })
            .collect();

        // ---- Phase B: winners' structural surgery (sequential, cheap) ----
        let mut winners: Vec<(usize, Vec<u32>)> = Vec::new();
        for (rank, pl) in plans.iter().enumerate() {
            if !success[rank] {
                continue;
            }
            let new_facets = mesh.insert_point(pl.q, &pl.visible);
            while reservations.len() < mesh.facets.len() {
                reservations.push(AtomicUsize::new(EMPTY));
            }
            visible[pl.q as usize] = false;
            winners.push((rank, new_facets));
        }

        // ---- Phase C: parallel conflict redistribution ----
        {
            let facets_ptr = SendPtr(mesh.facets.as_mut_ptr());
            let facet_of_ptr = SendPtr(facet_of.as_mut_ptr());
            let visible_ptr = SendPtr(visible.as_mut_ptr());
            let plans_ref = &plans;
            winners.par_iter().for_each(|(rank, new_facets)| {
                let (facets_ptr, facet_of_ptr, visible_ptr) =
                    (facets_ptr, facet_of_ptr, visible_ptr);
                let pl = &plans_ref[*rank];
                // SAFETY: this winner exclusively owns its cavity facets,
                // its new facets, and every point in the cavity's conflict
                // lists (disjointness guaranteed by the reservation).
                unsafe {
                    for &dead in &pl.visible {
                        let pts = std::mem::take(&mut (*facets_ptr.0.add(dead as usize)).pts);
                        for t in pts {
                            if t == pl.q {
                                continue;
                            }
                            let mut placed = false;
                            for &nf in new_facets {
                                if sees_raw(points, facets_ptr.0, nf, t) {
                                    *facet_of_ptr.0.add(t as usize) = nf;
                                    (*facets_ptr.0.add(nf as usize)).pts.push(t);
                                    placed = true;
                                    break;
                                }
                            }
                            if !placed {
                                *visible_ptr.0.add(t as usize) = false;
                            }
                        }
                    }
                }
            });
        }

        // ---- Phase D: reset reservations; maintain work lists ----
        plans.par_iter().for_each(|pl| {
            for &f in pl.visible.iter().chain(&pl.boundary) {
                reservations[f as usize].store(EMPTY, Ordering::Relaxed);
            }
        });
        match strategy {
            Strategy::RandInc => {
                p = parlay::filter(&p, |&t| visible[t as usize]);
            }
            Strategy::Quickhull => {
                for (_, new_facets) in &winners {
                    for &nf in new_facets {
                        if !mesh.facets[nf as usize].pts.is_empty() {
                            active.push(nf);
                        }
                    }
                }
            }
        }
    }
    (mesh.extract(), stats)
}

/// Batch size: at least `c · numProc` (the paper's floor), growing with the
/// remaining-point count so the per-round `ParallelPack` of `P` keeps the
/// total packing work `O(n log n)` instead of `Θ(n · rounds)`. Degraded to
/// one point per round while the hull exposes few facets (Appendix B's
/// contention guard).
fn round_size(alive_facets: usize, threads: usize, remaining: usize) -> usize {
    if alive_facets < 32 {
        return 1;
    }
    let floor = (8 * threads).max(1);
    let adaptive = (remaining / 8).min(alive_facets / 8);
    floor.max(adaptive).max(1)
}

#[inline]
unsafe fn sees_raw(points: &[Point3], facets: *const Facet, f: u32, q: u32) -> bool {
    let fv = unsafe { &(*facets.add(f as usize)).v };
    pargeo_geometry::orient3d(
        &points[fv[0] as usize],
        &points[fv[1] as usize],
        &points[fv[2] as usize],
        &points[q as usize],
    ) == pargeo_geometry::Orientation::Negative
}

struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull3d::validate::check_hull3d;
    use pargeo_datagen::{on_sphere, uniform_cube};

    #[test]
    fn randinc_matches_seq_vertices() {
        let pts = uniform_cube::<3>(4_000, 61);
        let h = hull3d_randinc(&pts);
        check_hull3d(&pts, &h).unwrap();
        let want = crate::hull3d::hull3d_seq(&pts);
        assert_eq!(h.vertices, want.vertices);
    }

    #[test]
    fn quickhull_matches_seq_vertices() {
        let pts = uniform_cube::<3>(4_000, 62);
        let h = hull3d_quickhull_parallel(&pts);
        check_hull3d(&pts, &h).unwrap();
        let want = crate::hull3d::hull3d_seq(&pts);
        assert_eq!(h.vertices, want.vertices);
    }

    #[test]
    fn surface_data_large_hull() {
        let pts = on_sphere::<3>(2_000, 63);
        for h in [hull3d_randinc(&pts), hull3d_quickhull_parallel(&pts)] {
            check_hull3d(&pts, &h).unwrap();
            assert!(h.vertices.len() > 200);
        }
    }

    #[test]
    fn deterministic_across_pool_sizes() {
        let pts = uniform_cube::<3>(3_000, 64);
        let a = parlay::with_threads(1, || hull3d_randinc(&pts));
        let b = parlay::with_threads(4, || hull3d_randinc(&pts));
        assert_eq!(a.vertices, b.vertices);
    }

    #[test]
    fn stats_overhead_is_modest_vs_seq() {
        // Appendix B: the reservation algorithm touches a comparable number
        // of points/facets to the sequential one (within a small factor).
        let pts = uniform_cube::<3>(3_000, 65);
        let (_, seq) = crate::hull3d::hull3d_seq_with_stats(&pts);
        let (_, par) = hull3d_randinc_with_stats(&pts);
        assert!(par.points_touched >= seq.points_touched);
        assert!(
            par.facets_touched < 20 * seq.facets_touched.max(1),
            "par={par:?} seq={seq:?}"
        );
        assert!(par.rounds <= par.points_touched);
    }
}
