//! Pseudohull point culling (Tang et al. \[54\], multicore variant — §3
//! "Point Culling via Pseudohull Computation").
//!
//! Starting from the initial tetrahedron, every facet recursively grows
//! toward its furthest visible point, splitting into three child facets;
//! points interior to the local tetrahedron `(a, b, c, q)` are provably
//! inside the input's hull and are discarded. Unlike Tang et al.'s
//! GPU lock-step expansion, the recursion runs asynchronously in parallel
//! (fork-join); and instead of growing until no visible points remain, a
//! facet stops when its conflict count drops below a threshold — the
//! stack-overflow guard the paper describes. The survivors (a small
//! fraction of the input) are handed to the reservation-based parallel
//! quickhull for the exact final hull.

use super::mesh::Hull3d;
use super::reservation::hull3d_quickhull_parallel;
use super::{degenerate_hull3d, initial_tetrahedron};
use pargeo_geometry::{orient3d, Orientation, Point3};

/// Default facet-size threshold below which the pseudohull stops growing.
pub const DEFAULT_CULL_THRESHOLD: usize = 32;

const SEQ_CUTOFF: usize = 2048;

/// Pseudohull culling followed by parallel quickhull (default threshold).
pub fn hull3d_pseudo(points: &[Point3]) -> Hull3d {
    hull3d_pseudo_with_threshold(points, DEFAULT_CULL_THRESHOLD)
}

/// Pseudohull culling with an explicit stop threshold.
pub fn hull3d_pseudo_with_threshold(points: &[Point3], threshold: usize) -> Hull3d {
    let Some(tetra) = initial_tetrahedron(points) else {
        return degenerate_hull3d(points);
    };
    let threshold = threshold.max(1);
    // Orient the four tetra faces outward and assign each exterior point to
    // its first visible face.
    let centroid = (points[tetra[0] as usize]
        + points[tetra[1] as usize]
        + points[tetra[2] as usize]
        + points[tetra[3] as usize])
        * 0.25;
    let faces: Vec<[u32; 3]> = [
        [tetra[0], tetra[1], tetra[2]],
        [tetra[0], tetra[1], tetra[3]],
        [tetra[0], tetra[2], tetra[3]],
        [tetra[1], tetra[2], tetra[3]],
    ]
    .into_iter()
    .map(|f| orient_outward(points, f, &centroid))
    .collect();
    let mut face_pts: Vec<Vec<u32>> = vec![Vec::new(); 4];
    for q in 0..points.len() as u32 {
        if tetra.contains(&q) {
            continue;
        }
        if let Some(i) = (0..4).find(|&i| sees(points, &faces[i], q)) {
            face_pts[i].push(q);
        }
    }
    // Grow the four pseudohull cones in parallel.
    let mut survivor_lists: Vec<Vec<u32>> = Vec::with_capacity(4);
    let results: Vec<Vec<u32>> = {
        use rayon::prelude::*;
        faces
            .par_iter()
            .zip(face_pts.into_par_iter())
            .map(|(f, pts)| expand(points, *f, pts, threshold))
            .collect()
    };
    survivor_lists.extend(results);
    let mut candidates: Vec<u32> = tetra.to_vec();
    for list in survivor_lists {
        candidates.extend(list);
    }
    candidates.sort_unstable();
    candidates.dedup();
    // Exact hull on the survivors.
    let cand_points: Vec<Point3> = candidates.iter().map(|&i| points[i as usize]).collect();
    let local = hull3d_quickhull_parallel(&cand_points);
    remap(local, &candidates)
}

/// Grows facet `(a, b, c)` toward its furthest conflict point; returns the
/// surviving candidates of this cone (including every pseudohull vertex
/// used along the way).
fn expand(points: &[Point3], f: [u32; 3], pts: Vec<u32>, threshold: usize) -> Vec<u32> {
    if pts.len() <= threshold {
        return pts;
    }
    // Furthest point from the facet plane (selection only: doubles).
    let a = points[f[0] as usize];
    let b = points[f[1] as usize];
    let c = points[f[2] as usize];
    let n = (b - a).cross(&(c - a));
    let q = *pts
        .iter()
        .max_by(|&&x, &&y| {
            let hx = (points[x as usize] - a).dot(&n).abs();
            let hy = (points[y as usize] - a).dot(&n).abs();
            hx.partial_cmp(&hy).unwrap()
        })
        .unwrap();
    // Local tetrahedron (a, b, c, q); its centroid orients the children.
    let g = (a + b + c + points[q as usize]) * 0.25;
    let children = [
        orient_outward(points, [f[0], f[1], q], &g),
        orient_outward(points, [f[1], f[2], q], &g),
        orient_outward(points, [f[2], f[0], q], &g),
    ];
    let mut child_pts: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for &t in &pts {
        if t == q {
            continue;
        }
        // Points visible to no child are inside (a, b, c, q): provably
        // interior to the final hull, discard.
        if let Some(i) = (0..3).find(|&i| sees(points, &children[i], t)) {
            child_pts[i].push(t);
        }
    }
    drop(pts);
    let [p0, p1, p2] = child_pts;
    let (mut s0, (mut s1, mut s2)) = if p0.len() + p1.len() + p2.len() >= SEQ_CUTOFF {
        rayon::join(
            || expand(points, children[0], p0, threshold),
            || {
                rayon::join(
                    || expand(points, children[1], p1, threshold),
                    || expand(points, children[2], p2, threshold),
                )
            },
        )
    } else {
        (
            expand(points, children[0], p0, threshold),
            (
                expand(points, children[1], p1, threshold),
                expand(points, children[2], p2, threshold),
            ),
        )
    };
    let mut out = Vec::with_capacity(1 + s0.len() + s1.len() + s2.len());
    out.push(q);
    out.append(&mut s0);
    out.append(&mut s1);
    out.append(&mut s2);
    out
}

fn orient_outward(points: &[Point3], mut f: [u32; 3], interior: &Point3) -> [u32; 3] {
    if orient3d(
        &points[f[0] as usize],
        &points[f[1] as usize],
        &points[f[2] as usize],
        interior,
    ) != Orientation::Positive
    {
        f.swap(1, 2);
    }
    f
}

#[inline]
fn sees(points: &[Point3], f: &[u32; 3], q: u32) -> bool {
    orient3d(
        &points[f[0] as usize],
        &points[f[1] as usize],
        &points[f[2] as usize],
        &points[q as usize],
    ) == Orientation::Negative
}

fn remap(local: Hull3d, ids: &[u32]) -> Hull3d {
    let facets = local
        .facets
        .into_iter()
        .map(|f| [ids[f[0] as usize], ids[f[1] as usize], ids[f[2] as usize]])
        .collect();
    let mut vertices: Vec<u32> = local
        .vertices
        .into_iter()
        .map(|v| ids[v as usize])
        .collect();
    vertices.sort_unstable();
    Hull3d { facets, vertices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull3d::validate::check_hull3d;
    use pargeo_datagen::{in_sphere, uniform_cube};

    #[test]
    fn culling_preserves_the_exact_hull() {
        let pts = uniform_cube::<3>(5_000, 71);
        let h = hull3d_pseudo(&pts);
        check_hull3d(&pts, &h).unwrap();
        assert_eq!(h.vertices, crate::hull3d::hull3d_seq(&pts).vertices);
    }

    #[test]
    fn threshold_one_prunes_hardest() {
        let pts = in_sphere::<3>(2_000, 72);
        let h = hull3d_pseudo_with_threshold(&pts, 1);
        check_hull3d(&pts, &h).unwrap();
        assert_eq!(h.vertices, crate::hull3d::hull3d_seq(&pts).vertices);
    }

    #[test]
    fn large_threshold_degenerates_to_plain_quickhull() {
        let pts = uniform_cube::<3>(1_000, 73);
        let h = hull3d_pseudo_with_threshold(&pts, usize::MAX >> 1);
        check_hull3d(&pts, &h).unwrap();
        assert_eq!(h.vertices, crate::hull3d::hull3d_seq(&pts).vertices);
    }
}
