//! Divide-and-conquer 3D convex hull (paper §3).
//!
//! `c · numProc` chunks are solved with the sequential quickhull in
//! parallel; the union of sub-hull vertices is resolved with the
//! reservation-based parallel quickhull.

use super::mesh::Hull3d;
use super::reservation::hull3d_quickhull_parallel;
use super::seq::hull3d_seq;
use pargeo_geometry::Point3;
use pargeo_parlay as parlay;
use rayon::prelude::*;

const CHUNKS_PER_PROC: usize = 4;

/// Divide-and-conquer hull.
pub fn hull3d_divide_conquer(points: &[Point3]) -> Hull3d {
    let n = points.len();
    if n < 64 {
        return hull3d_seq(points);
    }
    let nchunks = (CHUNKS_PER_PROC * parlay::num_threads()).clamp(1, n / 16);
    let chunk = n.div_ceil(nchunks);
    let candidate_ids: Vec<u32> = (0..nchunks)
        .into_par_iter()
        .flat_map_iter(|c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(n);
            let local = hull3d_seq(&points[lo..hi]);
            local.vertices.into_iter().map(move |v| v + lo as u32)
        })
        .collect();
    let cand_points: Vec<Point3> = candidate_ids.iter().map(|&i| points[i as usize]).collect();
    let local = hull3d_quickhull_parallel(&cand_points);
    let facets = local
        .facets
        .into_iter()
        .map(|f| {
            [
                candidate_ids[f[0] as usize],
                candidate_ids[f[1] as usize],
                candidate_ids[f[2] as usize],
            ]
        })
        .collect();
    let mut vertices: Vec<u32> = local
        .vertices
        .into_iter()
        .map(|v| candidate_ids[v as usize])
        .collect();
    vertices.sort_unstable();
    Hull3d { facets, vertices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull3d::validate::check_hull3d;
    use pargeo_datagen::{statue_surface, uniform_cube};

    #[test]
    fn matches_sequential() {
        let pts = uniform_cube::<3>(8_000, 81);
        let h = hull3d_divide_conquer(&pts);
        check_hull3d(&pts, &h).unwrap();
        assert_eq!(h.vertices, hull3d_seq(&pts).vertices);
    }

    #[test]
    fn statue_surface_hull() {
        let pts = statue_surface(2_000, 82);
        let h = hull3d_divide_conquer(&pts);
        check_hull3d(&pts, &h).unwrap();
        assert_eq!(h.vertices, hull3d_seq(&pts).vertices);
    }
}
