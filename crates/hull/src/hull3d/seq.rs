//! Optimized sequential 3D quickhull — the CGAL / Qhull baseline stand-in
//! of Figure 9, and the "no-reservation" side of Figure 12.

use super::mesh::{Hull3d, HullStats, Mesh};
use super::{degenerate_hull3d, initial_tetrahedron};
use pargeo_geometry::Point3;

/// Sequential quickhull.
pub fn hull3d_seq(points: &[Point3]) -> Hull3d {
    hull3d_seq_with_stats(points).0
}

/// Sequential quickhull with the Figure 12 work counters.
pub fn hull3d_seq_with_stats(points: &[Point3]) -> (Hull3d, HullStats) {
    let mut stats = HullStats::default();
    let Some(tetra) = initial_tetrahedron(points) else {
        return (degenerate_hull3d(points), stats);
    };
    let mut mesh = Mesh::new_tetrahedron(points, tetra);
    // Initial conflict assignment: each exterior point goes to its first
    // visible facet.
    for q in 0..points.len() as u32 {
        if tetra.contains(&q) {
            continue;
        }
        if let Some(f) = (0..4u32).find(|&f| mesh.sees(f, q)) {
            mesh.facets[f as usize].pts.push(q);
        }
    }
    // Facet work queue (quickhull order: any facet with conflicts; the
    // furthest point of that facet is inserted next).
    let mut active: Vec<u32> = (0..4u32)
        .filter(|&f| !mesh.facets[f as usize].pts.is_empty())
        .collect();
    while let Some(f) = active.pop() {
        if !mesh.facets[f as usize].alive || mesh.facets[f as usize].pts.is_empty() {
            continue;
        }
        // Furthest conflict point of f.
        let q = *mesh.facets[f as usize]
            .pts
            .iter()
            .max_by(|&&x, &&y| mesh.height(f, x).partial_cmp(&mesh.height(f, y)).unwrap())
            .unwrap();
        let visible = mesh.visible_region(f, q);
        stats.points_touched += 1;
        stats.facets_touched += visible.len() as u64;
        stats.rounds += 1;
        let new_facets = mesh.insert_point(q, &visible);
        // Redistribute the dead facets' conflicts onto the new fan.
        for &dead in &visible {
            let pts = std::mem::take(&mut mesh.facets[dead as usize].pts);
            for t in pts {
                if t == q {
                    continue;
                }
                if let Some(&nf) = new_facets.iter().find(|&&nf| mesh.sees(nf, t)) {
                    mesh.facets[nf as usize].pts.push(t);
                }
            }
        }
        for &nf in &new_facets {
            if !mesh.facets[nf as usize].pts.is_empty() {
                active.push(nf);
            }
        }
    }
    (mesh.extract(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull3d::validate::check_hull3d;
    use pargeo_datagen::{on_sphere, uniform_cube};

    #[test]
    fn uniform_hull_is_valid_and_small() {
        let pts = uniform_cube::<3>(5_000, 51);
        let (h, stats) = hull3d_seq_with_stats(&pts);
        check_hull3d(&pts, &h).unwrap();
        // Uniform-in-cube hulls are tiny relative to n.
        assert!(h.vertices.len() < 500);
        assert!(stats.points_touched >= h.vertices.len() as u64 - 4);
    }

    #[test]
    fn sphere_surface_keeps_most_points() {
        let pts = on_sphere::<3>(800, 52);
        let h = hull3d_seq(&pts);
        check_hull3d(&pts, &h).unwrap();
        assert!(h.vertices.len() > 100);
    }

    #[test]
    fn stats_count_work() {
        let pts = uniform_cube::<3>(1_000, 53);
        let (_, stats) = hull3d_seq_with_stats(&pts);
        assert!(stats.facets_touched >= stats.points_touched);
        assert_eq!(stats.rounds, stats.points_touched);
    }
}
