//! 3-dimensional convex hull (paper §3).
//!
//! All algorithms return a [`Hull3d`]: outward-oriented triangles plus the
//! set of hull vertices. Facets are triangles under the strict-visibility
//! rule (a point exactly on a facet's plane is *not* visible), so points
//! interior to faces/edges are never hull vertices.
//!
//! Degenerate inputs (all points collinear or coplanar) have no 3D hull;
//! they are handled by projecting onto the dominant plane and returning the
//! 2D hull vertices with an empty facet list.

mod dnc;
mod mesh;
mod pseudo;
mod reservation;
mod seq;
pub mod validate;

pub use dnc::hull3d_divide_conquer;
pub use mesh::{Hull3d, HullStats};
pub use pseudo::{hull3d_pseudo, hull3d_pseudo_with_threshold};
pub use reservation::{
    hull3d_quickhull_parallel, hull3d_quickhull_parallel_with_stats, hull3d_randinc,
    hull3d_randinc_seeded, hull3d_randinc_with_stats,
};
pub use seq::{hull3d_seq, hull3d_seq_with_stats};

use pargeo_geometry::{orient3d, GeoError, GeoResult, Orientation, Point3};

/// Non-panicking 3D hull that *rejects* inputs with no full-dimensional
/// hull — empty, fewer than four points, or all collinear/coplanar — with
/// a typed [`GeoError`] instead of degrading to the projected 2D hull,
/// then runs `algo` (any of this crate's `hull3d_*` entry points).
pub fn try_hull3d_with(points: &[Point3], algo: fn(&[Point3]) -> Hull3d) -> GeoResult<Hull3d> {
    if points.is_empty() {
        return Err(GeoError::EmptyInput { op: "hull3d" });
    }
    if points.len() < 4 {
        return Err(GeoError::TooFewPoints {
            op: "hull3d",
            needed: 4,
            got: points.len(),
        });
    }
    if initial_tetrahedron(points).is_none() {
        return Err(GeoError::Degenerate {
            op: "hull3d",
            what: "coplanar",
        });
    }
    Ok(algo(points))
}

/// [`try_hull3d_with`] using the parallel quickhull.
pub fn try_hull3d(points: &[Point3]) -> GeoResult<Hull3d> {
    try_hull3d_with(points, hull3d_quickhull_parallel)
}

/// Picks four affinely independent points (used as the initial
/// tetrahedron). Returns `None` when the input is degenerate (flat).
pub(crate) fn initial_tetrahedron(points: &[Point3]) -> Option<[u32; 4]> {
    if points.len() < 4 {
        return None;
    }
    let p0 = pargeo_parlay::max_index_by(points, |p| (-p[0], -p[1], -p[2]))? as u32;
    let a = points[p0 as usize];
    let p1 = pargeo_parlay::max_index_by(points, |p| p.dist_sq(&a))? as u32;
    let b = points[p1 as usize];
    if a == b {
        return None;
    }
    let ab = b - a;
    let p2 = pargeo_parlay::max_index_by(points, |p| ab.cross(&(*p - a)).norm_sq())? as u32;
    let c = points[p2 as usize];
    if ab.cross(&(c - a)).norm_sq() == 0.0 {
        return None; // all collinear
    }
    // Furthest from the plane by |double det| as a heuristic, validated by
    // the exact predicate.
    let p3 =
        pargeo_parlay::max_index_by(points, |p| ((*p - a).dot(&ab.cross(&(c - a)))).abs())? as u32;
    if orient3d(&a, &b, &c, &points[p3 as usize]) == Orientation::Zero {
        return None; // all coplanar
    }
    Some([p0, p1, p2, p3])
}

/// Fallback for flat inputs: project on the dominant plane and take the 2D
/// hull (facets stay empty).
pub(crate) fn degenerate_hull3d(points: &[Point3]) -> Hull3d {
    use pargeo_geometry::Point2;
    if points.is_empty() {
        return Hull3d {
            facets: Vec::new(),
            vertices: Vec::new(),
        };
    }
    // Dominant plane: drop the coordinate with the smallest extent.
    let bbox = pargeo_morton_free_bbox(points);
    let drop_dim = (0..3)
        .min_by(|&i, &j| bbox.side(i).partial_cmp(&bbox.side(j)).unwrap())
        .unwrap();
    let keep: Vec<usize> = (0..3).filter(|&i| i != drop_dim).collect();
    let projected: Vec<Point2> = points
        .iter()
        .map(|p| Point2::new([p[keep[0]], p[keep[1]]]))
        .collect();
    let vertices = crate::hull2d::hull2d_seq(&projected);
    Hull3d {
        facets: Vec::new(),
        vertices,
    }
}

fn pargeo_morton_free_bbox(points: &[Point3]) -> pargeo_geometry::Bbox<3> {
    let mut b = pargeo_geometry::Bbox::empty();
    for p in points {
        b.extend(p);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::validate::check_hull3d;
    use super::*;
    use pargeo_datagen::{in_sphere, on_cube, on_sphere, statue_surface, uniform_cube};

    type Algo = fn(&[Point3]) -> Hull3d;

    fn algos() -> Vec<(&'static str, Algo)> {
        vec![
            ("seq", hull3d_seq as Algo),
            ("randinc", hull3d_randinc as Algo),
            ("quickhull", hull3d_quickhull_parallel as Algo),
            ("dnc", hull3d_divide_conquer as Algo),
            ("pseudo", hull3d_pseudo as Algo),
        ]
    }

    fn check_all(points: &[Point3]) {
        let reference: Vec<[f64; 3]> = {
            let mut v: Vec<[f64; 3]> = hull3d_seq(points)
                .vertices
                .iter()
                .map(|&i| points[i as usize].coords)
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        };
        for (name, f) in algos() {
            let h = f(points);
            check_hull3d(points, &h).unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut got: Vec<[f64; 3]> = h
                .vertices
                .iter()
                .map(|&i| points[i as usize].coords)
                .collect();
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(got, reference, "{name} vertex set differs from seq");
        }
    }

    #[test]
    fn all_algorithms_agree_uniform() {
        check_all(&uniform_cube::<3>(2_000, 41));
    }

    #[test]
    fn all_algorithms_agree_in_sphere() {
        check_all(&in_sphere::<3>(2_000, 42));
    }

    #[test]
    fn all_algorithms_agree_on_sphere() {
        check_all(&on_sphere::<3>(1_000, 43));
    }

    #[test]
    fn all_algorithms_agree_on_cube() {
        check_all(&on_cube::<3>(1_500, 44));
    }

    #[test]
    fn all_algorithms_agree_statue() {
        check_all(&statue_surface(1_000, 45));
    }

    #[test]
    fn tetrahedron_exact() {
        let pts = vec![
            Point3::new([0.0, 0.0, 0.0]),
            Point3::new([1.0, 0.0, 0.0]),
            Point3::new([0.0, 1.0, 0.0]),
            Point3::new([0.0, 0.0, 1.0]),
            Point3::new([0.1, 0.1, 0.1]), // interior
        ];
        for (name, f) in algos() {
            let h = f(&pts);
            check_hull3d(&pts, &h).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(h.vertices, vec![0, 1, 2, 3], "{name}");
            assert_eq!(h.facets.len(), 4, "{name}");
        }
    }

    #[test]
    fn coplanar_input_degrades_to_2d() {
        let pts: Vec<Point3> = (0..100)
            .map(|i| {
                let t = i as f64;
                Point3::new([t.sin() * 10.0, t.cos() * 10.0, 5.0])
            })
            .collect();
        for (name, f) in algos() {
            let h = f(&pts);
            assert!(h.facets.is_empty(), "{name} should have no 3D facets");
            assert!(!h.vertices.is_empty(), "{name}");
        }
    }

    #[test]
    fn try_hull3d_rejects_degenerate_inputs() {
        assert_eq!(try_hull3d(&[]), Err(GeoError::EmptyInput { op: "hull3d" }));
        let tri = [
            Point3::new([0.0, 0.0, 0.0]),
            Point3::new([1.0, 0.0, 0.0]),
            Point3::new([0.0, 1.0, 0.0]),
        ];
        assert_eq!(
            try_hull3d(&tri),
            Err(GeoError::TooFewPoints {
                op: "hull3d",
                needed: 4,
                got: 3
            })
        );
        let coplanar: Vec<Point3> = (0..60)
            .map(|i| {
                let t = i as f64;
                Point3::new([t.sin() * 10.0, t.cos() * 10.0, 5.0])
            })
            .collect();
        for (_, f) in algos() {
            assert_eq!(
                try_hull3d_with(&coplanar, f),
                Err(GeoError::Degenerate {
                    op: "hull3d",
                    what: "coplanar"
                })
            );
        }
        let line: Vec<Point3> = (0..50)
            .map(|i| Point3::new([i as f64, 2.0 * i as f64, -i as f64]))
            .collect();
        assert_eq!(
            try_hull3d(&line),
            Err(GeoError::Degenerate {
                op: "hull3d",
                what: "coplanar"
            })
        );
        let tetra = [
            Point3::new([0.0, 0.0, 0.0]),
            Point3::new([1.0, 0.0, 0.0]),
            Point3::new([0.0, 1.0, 0.0]),
            Point3::new([0.0, 0.0, 1.0]),
        ];
        assert_eq!(try_hull3d(&tetra).unwrap().facets.len(), 4);
    }

    #[test]
    fn collinear_and_tiny_inputs() {
        let line: Vec<Point3> = (0..50)
            .map(|i| Point3::new([i as f64, 2.0 * i as f64, -i as f64]))
            .collect();
        for (name, f) in algos() {
            let h = f(&line);
            assert!(h.facets.is_empty(), "{name}");
            assert!(
                h.vertices.contains(&0) && h.vertices.contains(&49),
                "{name}"
            );
            assert!(f(&[]).vertices.is_empty(), "{name}");
            let single = f(&[Point3::new([1.0, 2.0, 3.0])]);
            assert_eq!(single.vertices, vec![0], "{name}");
        }
    }

    #[test]
    fn duplicates_are_harmless() {
        let mut pts = uniform_cube::<3>(800, 46);
        let dups: Vec<Point3> = pts.iter().step_by(5).copied().collect();
        pts.extend(dups);
        check_all(&pts);
    }

    #[test]
    fn euler_formula_holds() {
        let pts = uniform_cube::<3>(3_000, 47);
        let h = hull3d_seq(&pts);
        // V - E + F = 2 for a triangulated sphere: E = 3F/2.
        let v = h.vertices.len() as i64;
        let f = h.facets.len() as i64;
        assert_eq!(v - 3 * f / 2 + f, 2, "V={v} F={f}");
    }
}
