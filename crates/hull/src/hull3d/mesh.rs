//! The facet mesh: triangles with ridge adjacency and conflict lists.
//!
//! This is the "simple and fast data structure" of §3: each facet stores its
//! three vertices (outward-oriented), its three ridge neighbors, and the
//! conflict list of visible points assigned to it; each visible point keeps
//! a reference to *one* arbitrary visible facet, from which a local BFS
//! recovers the full visible region on demand.

use pargeo_geometry::{orient3d, Orientation, Point3};

/// A 3D convex hull: outward-oriented triangles over the input points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hull3d {
    /// Triangles `[a, b, c]` (indices into the input), oriented so that the
    /// hull interior lies on the `Positive` side of `orient3d(a, b, c, ·)`.
    pub facets: Vec<[u32; 3]>,
    /// Sorted unique hull vertex indices.
    pub vertices: Vec<u32>,
}

impl Hull3d {
    /// Number of hull vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of hull facets.
    pub fn num_facets(&self) -> usize {
        self.facets.len()
    }
}

/// Work counters behind Figure 12 and Appendix B.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HullStats {
    /// Visible points processed (batch members across all rounds, or
    /// insertion attempts for the sequential algorithm).
    pub points_touched: u64,
    /// Visible facets traversed while computing visible regions
    /// (reservation targets included for the parallel algorithms).
    pub facets_touched: u64,
    /// Number of rounds (1 per insertion for the sequential algorithm).
    pub rounds: u64,
}

#[derive(Debug)]
pub(crate) struct Facet {
    /// Vertex ids, outward-oriented.
    pub v: [u32; 3],
    /// `nbr[i]` = facet across the ridge `(v[i], v[(i+1)%3])`.
    pub nbr: [u32; 3],
    /// Conflict list: visible points assigned to this facet.
    pub pts: Vec<u32>,
    /// Visibility-BFS marker (owner point id); facets are marked only by
    /// the point whose cavity exclusively owns them.
    pub mark: u32,
    pub alive: bool,
}

pub(crate) struct Mesh<'a> {
    pub points: &'a [Point3],
    pub facets: Vec<Facet>,
    /// A point strictly inside the hull (centroid of the initial tetra).
    pub interior: Point3,
    pub alive_count: usize,
}

pub(crate) const NO_MARK: u32 = u32::MAX;

impl<'a> Mesh<'a> {
    /// Builds the initial tetrahedron mesh over vertex ids `t`.
    pub fn new_tetrahedron(points: &'a [Point3], t: [u32; 4]) -> Self {
        let centroid = (points[t[0] as usize]
            + points[t[1] as usize]
            + points[t[2] as usize]
            + points[t[3] as usize])
            * 0.25;
        let mut mesh = Mesh {
            points,
            facets: Vec::with_capacity(4),
            interior: centroid,
            alive_count: 4,
        };
        let tris = [
            [t[0], t[1], t[2]],
            [t[0], t[1], t[3]],
            [t[0], t[2], t[3]],
            [t[1], t[2], t[3]],
        ];
        for tri in tris {
            let mut v = tri;
            if orient3d(
                &points[v[0] as usize],
                &points[v[1] as usize],
                &points[v[2] as usize],
                &centroid,
            ) != Orientation::Positive
            {
                v.swap(1, 2);
            }
            debug_assert_eq!(
                orient3d(
                    &points[v[0] as usize],
                    &points[v[1] as usize],
                    &points[v[2] as usize],
                    &centroid,
                ),
                Orientation::Positive
            );
            mesh.facets.push(Facet {
                v,
                nbr: [u32::MAX; 3],
                pts: Vec::new(),
                mark: NO_MARK,
                alive: true,
            });
        }
        // Ridge matching for the 4 initial facets.
        let mut ridge_map: std::collections::HashMap<(u32, u32), (u32, usize)> =
            std::collections::HashMap::new();
        for f in 0..4u32 {
            for i in 0..3usize {
                let a = mesh.facets[f as usize].v[i];
                let b = mesh.facets[f as usize].v[(i + 1) % 3];
                let key = (a.min(b), a.max(b));
                if let Some((g, j)) = ridge_map.insert(key, (f, i)) {
                    mesh.facets[f as usize].nbr[i] = g;
                    mesh.facets[g as usize].nbr[j] = f;
                }
            }
        }
        debug_assert!(mesh
            .facets
            .iter()
            .all(|f| f.nbr.iter().all(|&n| n != u32::MAX)));
        mesh
    }

    /// Strict visibility: `q` sees facet `f` iff it is strictly outside its
    /// plane.
    #[inline]
    pub fn sees(&self, f: u32, q: u32) -> bool {
        let fv = &self.facets[f as usize].v;
        orient3d(
            &self.points[fv[0] as usize],
            &self.points[fv[1] as usize],
            &self.points[fv[2] as usize],
            &self.points[q as usize],
        ) == Orientation::Negative
    }

    /// Signed distance proxy of `q` above facet `f`'s plane (doubles;
    /// selection only).
    #[inline]
    pub fn height(&self, f: u32, q: u32) -> f64 {
        let fv = &self.facets[f as usize].v;
        let a = self.points[fv[0] as usize];
        let b = self.points[fv[1] as usize];
        let c = self.points[fv[2] as usize];
        let n = (b - a).cross(&(c - a));
        (self.points[q as usize] - a).dot(&n)
    }

    /// BFS over the visible region of `q` starting from a visible facet
    /// `f0`. Returns the visible facet ids; does not mark.
    pub fn visible_region(&self, f0: u32, q: u32) -> Vec<u32> {
        debug_assert!(self.facets[f0 as usize].alive);
        debug_assert!(self.sees(f0, q));
        let mut visible = vec![f0];
        let mut seen = std::collections::HashSet::new();
        seen.insert(f0);
        let mut stack = vec![f0];
        while let Some(f) = stack.pop() {
            for &g in &self.facets[f as usize].nbr {
                if seen.insert(g) && self.sees(g, q) {
                    visible.push(g);
                    stack.push(g);
                }
            }
        }
        visible
    }

    /// The boundary ring: alive facets adjacent to the visible region but
    /// not in it.
    pub fn boundary_of(&self, visible: &[u32], q: u32) -> Vec<u32> {
        let mut boundary = Vec::new();
        let mut seen: std::collections::HashSet<u32> = visible.iter().copied().collect();
        for &f in visible {
            for &g in &self.facets[f as usize].nbr {
                if seen.insert(g) && !self.sees(g, q) {
                    boundary.push(g);
                }
            }
        }
        boundary
    }

    /// Replaces the cavity `visible` (all facets strictly visible to `q`)
    /// with the fan of new facets around `q`. Returns the new facet ids.
    ///
    /// The caller guarantees exclusive ownership of `visible`, its points,
    /// and the boundary facets' neighbor slots (sequentially trivial; in
    /// the parallel algorithms guaranteed by the reservation).
    pub fn insert_point(&mut self, q: u32, visible: &[u32]) -> Vec<u32> {
        // Mark the cavity.
        for &f in visible {
            self.facets[f as usize].mark = q;
        }
        // Horizon: directed ridges (a -> b) from visible facet to
        // non-visible neighbor, keyed by start vertex to form the cycle.
        struct HorizonRidge {
            a: u32,
            b: u32,
            outer: u32,
            outer_slot: usize,
        }
        let mut ridges: Vec<HorizonRidge> = Vec::new();
        for &f in visible {
            let facet = &self.facets[f as usize];
            for i in 0..3 {
                let g = facet.nbr[i];
                if self.facets[g as usize].mark != q {
                    let a = facet.v[i];
                    let b = facet.v[(i + 1) % 3];
                    // Locate the ridge slot in the outer facet (directed
                    // b -> a there).
                    let gv = &self.facets[g as usize].v;
                    let outer_slot = (0..3)
                        .find(|&j| gv[j] == b && gv[(j + 1) % 3] == a)
                        .expect("ridge must exist in outer facet");
                    ridges.push(HorizonRidge {
                        a,
                        b,
                        outer: g,
                        outer_slot,
                    });
                }
            }
        }
        debug_assert!(ridges.len() >= 3, "horizon must be a cycle");
        // Order ridges into the horizon cycle.
        let by_start: std::collections::HashMap<u32, usize> =
            ridges.iter().enumerate().map(|(i, r)| (r.a, i)).collect();
        debug_assert_eq!(by_start.len(), ridges.len(), "horizon must be simple");
        let mut order = Vec::with_capacity(ridges.len());
        let mut cur = 0usize;
        for _ in 0..ridges.len() {
            order.push(cur);
            cur = by_start[&ridges[cur].b];
        }
        debug_assert_eq!(cur, 0, "horizon must close");
        // Create the new fan.
        let base = self.facets.len() as u32;
        let k = order.len() as u32;
        for (pos, &ri) in order.iter().enumerate() {
            let r = &ridges[ri];
            let id = base + pos as u32;
            let next = base + ((pos as u32 + 1) % k);
            let prev = base + ((pos as u32 + k - 1) % k);
            debug_assert_ne!(
                orient3d(
                    &self.points[r.a as usize],
                    &self.points[r.b as usize],
                    &self.points[q as usize],
                    &self.interior,
                ),
                Orientation::Negative,
                "new facet must face outward"
            );
            self.facets.push(Facet {
                v: [r.a, r.b, q],
                // slot 0: ridge (a,b) -> outer; slot 1: (b,q) -> next new
                // facet (whose ridge (a',b') has a' = b); slot 2: (q,a) ->
                // previous new facet.
                nbr: [r.outer, next, prev],
                pts: Vec::new(),
                mark: NO_MARK,
                alive: true,
            });
            self.facets[r.outer as usize].nbr[r.outer_slot] = id;
        }
        // Kill the cavity.
        for &f in visible {
            self.facets[f as usize].alive = false;
        }
        self.alive_count += order.len();
        self.alive_count -= visible.len();
        (base..base + k).collect()
    }

    /// Extracts the hull from the alive facets.
    pub fn extract(&self) -> Hull3d {
        let mut facets = Vec::with_capacity(self.alive_count);
        let mut vertices = Vec::new();
        for f in &self.facets {
            if f.alive {
                facets.push(f.v);
                vertices.extend_from_slice(&f.v);
            }
        }
        vertices.sort_unstable();
        vertices.dedup();
        Hull3d { facets, vertices }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull3d::initial_tetrahedron;

    fn cube_points() -> Vec<Point3> {
        let mut pts = Vec::new();
        for x in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for z in [0.0, 1.0] {
                    pts.push(Point3::new([x, y, z]));
                }
            }
        }
        pts
    }

    #[test]
    fn tetra_mesh_is_consistent() {
        let pts = cube_points();
        let t = initial_tetrahedron(&pts).unwrap();
        let mesh = Mesh::new_tetrahedron(&pts, t);
        assert_eq!(mesh.alive_count, 4);
        // Mutual neighbor consistency.
        for (fi, f) in mesh.facets.iter().enumerate() {
            for (i, &g) in f.nbr.iter().enumerate() {
                let a = f.v[i];
                let b = f.v[(i + 1) % 3];
                let gf = &mesh.facets[g as usize];
                let slot = (0..3)
                    .find(|&j| gf.v[j] == b && gf.v[(j + 1) % 3] == a)
                    .expect("reverse ridge");
                assert_eq!(gf.nbr[slot] as usize, fi);
            }
        }
    }

    #[test]
    fn insert_point_grows_hull() {
        let pts = vec![
            Point3::new([0.0, 0.0, 0.0]),
            Point3::new([1.0, 0.0, 0.0]),
            Point3::new([0.0, 1.0, 0.0]),
            Point3::new([0.0, 0.0, 1.0]),
            Point3::new([2.0, 2.0, 2.0]),
        ];
        let t = initial_tetrahedron(&pts).unwrap();
        let mut mesh = Mesh::new_tetrahedron(&pts, t);
        // Find the point not in the tetra and its visible facets.
        let q = (0..5u32).find(|i| !t.contains(i)).unwrap();
        let f0 = (0..4u32).find(|&f| mesh.sees(f, q));
        if let Some(f0) = f0 {
            let visible = mesh.visible_region(f0, q);
            let new = mesh.insert_point(q, &visible);
            assert!(new.len() >= 3);
            let hull = mesh.extract();
            assert!(hull.vertices.contains(&q));
            // Still a closed triangulated surface.
            assert_eq!(
                hull.vertices.len() as i64 - 3 * hull.facets.len() as i64 / 2
                    + hull.facets.len() as i64,
                2
            );
        }
    }
}
