//! # pargeo-hull — parallel convex hull in R² and R³ (paper §3)
//!
//! The paper's first algorithmic contribution: a **reservation-based**
//! parallel incremental convex hull. Instead of inserting one point per
//! round, a batch of *visible points* is processed; every point
//! priority-writes its rank onto its visible facets (`WriteMin`), and only
//! points that won **all** of their reservations mutate the hull this round
//! — their cavities are disjoint, so the mutations are data-race-free. The
//! same skeleton instantiates the randomized incremental algorithm (batch =
//! prefix of a random permutation) and quickhull (batch = per-facet furthest
//! points).
//!
//! Modules:
//!
//! * [`hull2d`] — sequential quickhull (the CGAL/Qhull baseline stand-in),
//!   the PBBS-style parallel recursive quickhull, the reservation-based
//!   randomized incremental algorithm, and the divide-and-conquer wrapper.
//! * [`hull3d`] — the facet/ridge mesh with conflict lists, sequential
//!   quickhull, the reservation-based parallel incremental algorithms
//!   (randinc + quickhull, with the work counters behind Figure 12), the
//!   pseudohull point-culling heuristic of Tang et al. \[54\], and the
//!   divide-and-conquer wrapper.
//!
//! One deliberate deviation from the paper's description: our reservation
//! covers the visible facets **and** the facets just beyond the horizon.
//! The paper reserves only visible facets and resolves shared horizon
//! ridges when linking new facets; reserving the one-facet-wide boundary
//! ring removes that coupling entirely (two winners can never share a
//! ridge), at the cost of slightly fewer winners per round. Work remains
//! within a constant factor (each facet has 3 neighbors), and Figure 12's
//! success-rate claims still hold — see the `fig12_reservation` bench.

#![warn(missing_docs)]

pub mod hull2d;
pub mod hull3d;

pub use hull2d::{
    hull2d_divide_conquer, hull2d_quickhull_parallel, hull2d_randinc, hull2d_seq, try_hull2d,
    try_hull2d_prefiltered, try_hull2d_with, Hull2dIncremental, HullBatchOutcome,
};
pub use hull3d::{
    hull3d_divide_conquer, hull3d_pseudo, hull3d_quickhull_parallel, hull3d_randinc, hull3d_seq,
    try_hull3d, try_hull3d_with, Hull3d, HullStats,
};
