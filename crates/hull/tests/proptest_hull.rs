//! Property-based tests for the convex hull algorithms: validity and
//! cross-algorithm agreement over arbitrary (degenerate-rich) inputs.

use pargeo_geometry::{Point2, Point3};
use pargeo_hull::hull2d::validate::check_hull2d;
use pargeo_hull::hull3d::validate::check_hull3d;
use pargeo_hull::*;
use proptest::prelude::*;

/// Integer grids produce masses of collinear/coplanar/duplicate cases.
fn grid_points2(max: i32) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (0..max, 0..max).prop_map(|(x, y)| Point2::new([x as f64, y as f64])),
        1..120,
    )
}

fn grid_points3(max: i32) -> impl Strategy<Value = Vec<Point3>> {
    prop::collection::vec(
        (0..max, 0..max, 0..max).prop_map(|(x, y, z)| Point3::new([x as f64, y as f64, z as f64])),
        1..100,
    )
}

fn smooth_points2() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(x, y)| Point2::new([x, y])),
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hull2d_all_valid_and_agree_on_grids(pts in grid_points2(12)) {
        let seq = hull2d_seq(&pts);
        check_hull2d(&pts, &seq).unwrap();
        for f in [hull2d_quickhull_parallel, hull2d_randinc, hull2d_divide_conquer] {
            let h = f(&pts);
            check_hull2d(&pts, &h).unwrap();
            // Vertex *positions* agree (duplicate indices may differ).
            let want: std::collections::BTreeSet<[u64; 2]> = seq
                .iter()
                .map(|&i| pts[i as usize].coords.map(f64::to_bits))
                .collect();
            let got: std::collections::BTreeSet<[u64; 2]> = h
                .iter()
                .map(|&i| pts[i as usize].coords.map(f64::to_bits))
                .collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn hull2d_valid_on_smooth_points(pts in smooth_points2()) {
        for f in [hull2d_seq, hull2d_quickhull_parallel, hull2d_randinc, hull2d_divide_conquer] {
            check_hull2d(&pts, &f(&pts)).unwrap();
        }
    }

    /// On degenerate grids, different algorithms may report boundary points
    /// that lie on facet interiors differently (a point inserted early can
    /// end up exactly on a facet spanned by later points), so vertex sets
    /// are not canonical — but the hull *geometry* is. Compare volumes
    /// (signed-tetra sums over the closed, outward-oriented surfaces).
    #[test]
    fn hull3d_all_valid_and_same_volume_on_grids(pts in grid_points3(8)) {
        fn volume(pts: &[Point3], h: &Hull3d) -> f64 {
            h.facets
                .iter()
                .map(|f| {
                    let a = pts[f[0] as usize];
                    let b = pts[f[1] as usize];
                    let c = pts[f[2] as usize];
                    // Signed volume of the tetra (origin, a, b, c); outward
                    // orientation makes the sum the enclosed volume (up to
                    // a global sign fixed by the orientation convention).
                    a.dot(&b.cross(&c)) / 6.0
                })
                .sum::<f64>()
                .abs()
        }
        let seq = hull3d_seq(&pts);
        check_hull3d(&pts, &seq).unwrap();
        let v_ref = volume(&pts, &seq);
        for f in [
            hull3d_randinc,
            hull3d_quickhull_parallel,
            hull3d_divide_conquer,
            hull3d_pseudo,
        ] {
            let h = f(&pts);
            check_hull3d(&pts, &h).unwrap();
            let v = volume(&pts, &h);
            prop_assert!((v - v_ref).abs() <= 1e-9 * (1.0 + v_ref), "{v} vs {v_ref}");
        }
    }

    /// Scaling and translating the input never changes the hull's vertex
    /// set (affine invariance with exactly-representable transforms).
    #[test]
    fn hull2d_affine_invariance(pts in grid_points2(16), shift in 0i32..1000) {
        prop_assume!(pts.len() >= 3);
        let moved: Vec<Point2> = pts
            .iter()
            .map(|p| Point2::new([p[0] * 4.0 + shift as f64, p[1] * 4.0 - shift as f64]))
            .collect();
        let a: std::collections::BTreeSet<u32> = hull2d_seq(&pts).into_iter().collect();
        let b: std::collections::BTreeSet<u32> = hull2d_seq(&moved).into_iter().collect();
        // Same index sets (the transform is injective and order-preserving
        // per coordinate).
        prop_assert_eq!(a, b);
    }
}
