//! # pargeo-morton — Morton (Z-order) encoding and parallel spatial sort
//!
//! The Morton-sort module of the paper's Module (2) and the substrate under
//! the Zd-tree comparator of §6.3. Points are quantized onto a
//! `2^bits_per_dim` grid over a bounding box and their coordinate bits are
//! interleaved into a single `u64` key; sorting by the key arranges points
//! along the Z-order space-filling curve.
//!
//! `bits_per_dim = ⌊63 / D⌋`, so precision falls as dimension grows — the
//! exact overhead the paper cites when explaining why the Zd-tree approach
//! does not extend cheaply beyond 2–3 dimensions.

#![warn(missing_docs)]

use pargeo_geometry::{Bbox, Point};
use pargeo_parlay as parlay;
use rayon::prelude::*;

/// Bits of grid resolution per dimension for `D`-dimensional codes.
pub const fn bits_per_dim(d: usize) -> u32 {
    (63 / d) as u32
}

/// Total significant bits of a `D`-dimensional Morton code
/// (`bits_per_dim(d) * d`; the remaining high bits of the `u64` are zero).
pub const fn total_bits(d: usize) -> u32 {
    bits_per_dim(d) * d as u32
}

/// The shard a Morton code routes to under `shard_bits` bits of prefix
/// routing: the top `shard_bits` significant bits of the code, i.e. the
/// index of the Z-order cell at depth `shard_bits` of the implicit radix
/// tree. `shard_bits = 0` puts everything in shard 0. Shared by the
/// engine's `ShardedIndex` router and the Zd-tree's radix splitter, so
/// both agree on what a prefix means.
pub const fn morton_shard_of<const D: usize>(code: u64, shard_bits: u32) -> u64 {
    if shard_bits == 0 {
        0
    } else {
        code >> (total_bits(D) - shard_bits)
    }
}

/// Morton code of `p` within `bbox` (coordinates outside the box clamp to
/// its boundary).
pub fn morton_code<const D: usize>(p: &Point<D>, bbox: &Bbox<D>) -> u64 {
    let bits = bits_per_dim(D);
    let scale = (1u64 << bits) as f64;
    let mut cells = [0u64; D];
    for i in 0..D {
        let side = (bbox.max[i] - bbox.min[i]).max(f64::MIN_POSITIVE);
        let t = ((p[i] - bbox.min[i]) / side).clamp(0.0, 1.0);
        cells[i] = ((t * scale) as u64).min((1u64 << bits) - 1);
    }
    interleave::<D>(&cells, bits)
}

/// Interleaves `D` coordinate words, `bits` bits each, most significant bit
/// first: output bit layout is `x0_b y0_b z0_b x0_{b-1} …` so that the code
/// order equals the Z-order traversal of the grid.
pub fn interleave<const D: usize>(cells: &[u64; D], bits: u32) -> u64 {
    let mut code = 0u64;
    for b in (0..bits).rev() {
        for c in cells.iter() {
            code = (code << 1) | ((c >> b) & 1);
        }
    }
    code
}

/// Inverse of [`interleave`]: recovers the grid cell of each dimension.
pub fn deinterleave<const D: usize>(code: u64, bits: u32) -> [u64; D] {
    let mut cells = [0u64; D];
    let total = bits * D as u32;
    for i in 0..total {
        let bit = (code >> (total - 1 - i)) & 1;
        let dim = (i as usize) % D;
        cells[dim] = (cells[dim] << 1) | bit;
    }
    cells
}

/// Sorts `points` in place along the Z-order curve over their bounding box.
/// Returns the permutation's original indices alongside.
pub fn morton_sort<const D: usize>(points: &mut [Point<D>]) -> Vec<u32> {
    let bbox = parallel_bbox(points);
    let mut tagged: Vec<(Point<D>, u32)> = if points.len() >= 4096 {
        points
            .par_iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u32))
            .collect()
    } else {
        points
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u32))
            .collect()
    };
    parlay::radix_sort_u64_by_key(&mut tagged, |(p, _)| morton_code(p, &bbox));
    let ids: Vec<u32> = tagged.iter().map(|&(_, id)| id).collect();
    if points.len() >= 4096 {
        points
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, dst)| *dst = tagged[i].0);
    } else {
        for (dst, &(p, _)) in points.iter_mut().zip(&tagged) {
            *dst = p;
        }
    }
    ids
}

/// Computes Morton codes for a point set over a given box, in parallel.
pub fn morton_codes<const D: usize>(points: &[Point<D>], bbox: &Bbox<D>) -> Vec<u64> {
    if points.len() >= 4096 {
        points.par_iter().map(|p| morton_code(p, bbox)).collect()
    } else {
        points.iter().map(|p| morton_code(p, bbox)).collect()
    }
}

/// Parallel bounding box of a point set.
pub fn parallel_bbox<const D: usize>(points: &[Point<D>]) -> Bbox<D> {
    if points.len() >= 4096 {
        points
            .par_chunks(4096)
            .map(|chunk| {
                let mut b = Bbox::empty();
                for p in chunk {
                    b.extend(p);
                }
                b
            })
            .reduce(Bbox::empty, |a, b| a.union(&b))
    } else {
        Bbox::from_points(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_geometry::Point2;

    #[test]
    fn interleave_roundtrip() {
        let cells = [0b1011u64, 0b0110u64];
        let code = interleave::<2>(&cells, 4);
        assert_eq!(deinterleave::<2>(code, 4), cells);
        // Explicit bit check: x=1011, y=0110 -> 10 01 11 10.
        assert_eq!(code, 0b10_01_11_10);
    }

    #[test]
    fn code_order_is_z_order_on_grid() {
        // On a 2x2 grid the Z-order is (0,0), (0,1), (1,0), (1,1) with
        // x-bit major (x interleaved first).
        let bbox = Bbox {
            min: Point2::new([0.0, 0.0]),
            max: Point2::new([1.0, 1.0]),
        };
        let c00 = morton_code(&Point2::new([0.1, 0.1]), &bbox);
        let c01 = morton_code(&Point2::new([0.1, 0.9]), &bbox);
        let c10 = morton_code(&Point2::new([0.9, 0.1]), &bbox);
        let c11 = morton_code(&Point2::new([0.9, 0.9]), &bbox);
        assert!(c00 < c01 && c01 < c10 && c10 < c11);
    }

    #[test]
    fn sort_is_a_permutation_ordered_by_code() {
        let mut pts = pargeo_datagen::uniform_cube::<3>(20_000, 1);
        let orig = pts.clone();
        let ids = morton_sort(&mut pts);
        // Permutation check.
        let mut sorted_ids = ids.clone();
        sorted_ids.sort();
        assert_eq!(sorted_ids, (0..20_000u32).collect::<Vec<_>>());
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(pts[i], orig[id as usize]);
        }
        // Codes ascending.
        let bbox = parallel_bbox(&pts);
        let codes = morton_codes(&pts, &bbox);
        assert!(codes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn locality_smoke() {
        // Consecutive points along the curve are near each other on
        // average: mean consecutive distance far below the domain diameter.
        let mut pts = pargeo_datagen::uniform_cube::<2>(50_000, 2);
        morton_sort(&mut pts);
        let side = pargeo_datagen::cube_side(50_000);
        let mean: f64 = pts.windows(2).map(|w| w[0].dist(&w[1])).sum::<f64>() / 49_999.0;
        assert!(mean < side * 0.05, "mean={mean} side={side}");
    }

    #[test]
    fn clamps_out_of_box_points() {
        let bbox = Bbox {
            min: Point2::new([0.0, 0.0]),
            max: Point2::new([1.0, 1.0]),
        };
        let inside_max = morton_code(&Point2::new([1.0, 1.0]), &bbox);
        let outside = morton_code(&Point2::new([50.0, 50.0]), &bbox);
        assert_eq!(inside_max, outside);
    }

    #[test]
    fn bits_per_dim_budget() {
        assert_eq!(bits_per_dim(2), 31);
        assert_eq!(bits_per_dim(3), 21);
        assert_eq!(bits_per_dim(7), 9);
        for d in 1..=9 {
            assert!(bits_per_dim(d) * d as u32 <= 63);
        }
    }

    #[test]
    fn shard_of_is_the_code_prefix() {
        assert_eq!(total_bits(2), 62);
        assert_eq!(total_bits(3), 63);
        let code = 0b10_01_11_10u64 << (total_bits(2) - 8);
        assert_eq!(morton_shard_of::<2>(code, 0), 0);
        assert_eq!(morton_shard_of::<2>(code, 1), 0b1);
        assert_eq!(morton_shard_of::<2>(code, 2), 0b10);
        assert_eq!(morton_shard_of::<2>(code, 4), 0b1001);
        // Codes sorted by value are also sorted by any prefix: routing by
        // shard preserves Z-order between shards.
        let bbox = Bbox {
            min: Point2::new([0.0, 0.0]),
            max: Point2::new([1.0, 1.0]),
        };
        let pts = pargeo_datagen::uniform_cube::<2>(1_000, 9);
        let mut codes: Vec<u64> = pts.iter().map(|p| morton_code(p, &bbox)).collect();
        codes.sort_unstable();
        for bits in [1u32, 2, 3, 4] {
            let shards: Vec<u64> = codes
                .iter()
                .map(|&c| morton_shard_of::<2>(c, bits))
                .collect();
            assert!(shards.windows(2).all(|w| w[0] <= w[1]));
            assert!(*shards.last().unwrap() < (1 << bits));
        }
    }

    #[test]
    fn sort_accepts_plain_slices() {
        // `&mut [Point<D>]` — a subrange of a larger buffer sorts in place.
        let mut pts = pargeo_datagen::uniform_cube::<2>(512, 6);
        let tail = pts[256..].to_vec();
        let ids = morton_sort(&mut pts[..256]);
        assert_eq!(ids.len(), 256);
        assert_eq!(&pts[256..], &tail[..], "out-of-range points untouched");
        let bbox = parallel_bbox(&pts[..256]);
        let codes = morton_codes(&pts[..256], &bbox);
        assert!(codes.windows(2).all(|w| w[0] <= w[1]));
    }
}
