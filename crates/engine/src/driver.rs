//! The mixed-workload driver.
//!
//! [`run_workload`] replays a generated [`Workload`] against any
//! [`SpatialIndex`] backend, timing each operation class separately and
//! folding every answer into order-sensitive checksums. Because all
//! backends follow the same determinism contract (sorted range ids,
//! `(distance², id)`-ordered k-NN), two backends that served the same
//! workload correctly produce **identical** checksums — the equality the
//! integration suites and the `dyn_engine` bench anchor assert.

use crate::{Snapshot, SpatialIndex};
use pargeo_datagen::{Workload, WorkloadOp};
use pargeo_obs::{HistSummary, Histogram};
use pargeo_parlay::mix64 as mix;
use std::time::Instant;

/// What happened when a workload was replayed against one backend.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadReport {
    /// Backend that served the workload.
    pub backend: &'static str,
    /// Batches per operation class: (insert, delete, knn, range).
    pub ops: (usize, usize, usize, usize),
    /// Points inserted (including the initial load).
    pub inserted: usize,
    /// Points actually deleted.
    pub deleted: usize,
    /// Wall-clock seconds spent in inserts (including the initial load).
    pub insert_secs: f64,
    /// Wall-clock seconds spent in deletes.
    pub delete_secs: f64,
    /// Wall-clock seconds spent answering k-NN batches.
    pub knn_secs: f64,
    /// Wall-clock seconds spent answering range batches.
    pub range_secs: f64,
    /// Total neighbors reported across all k-NN batches.
    pub knn_results: u64,
    /// Order-sensitive digest of every reported neighbor id.
    pub knn_checksum: u64,
    /// Total ids reported across all range batches.
    pub range_results: u64,
    /// Order-sensitive digest of every reported range id.
    pub range_checksum: u64,
    /// Live points after the final operation.
    pub final_live: usize,
    /// The backend's closing epoch statistics.
    pub snapshot: Snapshot,
    /// Per-batch insert latency distribution (nanoseconds; one
    /// observation per batch, the initial load included).
    pub insert_lat: HistSummary,
    /// Per-batch delete latency distribution (nanoseconds).
    pub delete_lat: HistSummary,
    /// Per-batch k-NN latency distribution (nanoseconds).
    pub knn_lat: HistSummary,
    /// Per-batch range latency distribution (nanoseconds).
    pub range_lat: HistSummary,
}

impl WorkloadReport {
    /// Total wall-clock seconds across all operation classes.
    pub fn total_secs(&self) -> f64 {
        self.insert_secs + self.delete_secs + self.knn_secs + self.range_secs
    }

    /// The answer digest: equal digests across backends ⇔ identical
    /// answers to every query batch of the workload.
    pub fn digest(&self) -> (u64, u64) {
        (self.knn_checksum, self.range_checksum)
    }
}

/// Replays `workload` against `index`, returning timings and answer
/// digests. The index is mutated in place (callers pass a fresh one per
/// run).
pub fn run_workload<const D: usize, I: SpatialIndex<D> + ?Sized>(
    index: &mut I,
    workload: &Workload<D>,
) -> WorkloadReport {
    let mut r = WorkloadReport {
        backend: index.backend_name(),
        ..WorkloadReport::default()
    };
    let insert_h = Histogram::new();
    let delete_h = Histogram::new();
    let knn_h = Histogram::new();
    let range_h = Histogram::new();
    let t = Instant::now();
    index.insert(&workload.initial);
    let dt = t.elapsed();
    insert_h.record_duration(dt);
    r.insert_secs += dt.as_secs_f64();
    r.inserted += workload.initial.len();

    for op in &workload.ops {
        match op {
            WorkloadOp::Insert(batch) => {
                let t = Instant::now();
                index.insert(batch);
                let dt = t.elapsed();
                insert_h.record_duration(dt);
                r.insert_secs += dt.as_secs_f64();
                r.inserted += batch.len();
                r.ops.0 += 1;
            }
            WorkloadOp::Delete(batch) => {
                let t = Instant::now();
                r.deleted += index.delete(batch);
                let dt = t.elapsed();
                delete_h.record_duration(dt);
                r.delete_secs += dt.as_secs_f64();
                r.ops.1 += 1;
            }
            WorkloadOp::Knn(queries, k) => {
                let t = Instant::now();
                let rows = index.knn_batch(queries, *k);
                let dt = t.elapsed();
                knn_h.record_duration(dt);
                r.knn_secs += dt.as_secs_f64();
                for row in &rows {
                    r.knn_results += row.len() as u64;
                    for n in row {
                        r.knn_checksum = mix(r.knn_checksum, n.id as u64);
                    }
                }
                r.ops.2 += 1;
            }
            WorkloadOp::Range(boxes) => {
                let t = Instant::now();
                let rows = index.range_batch(boxes);
                let dt = t.elapsed();
                range_h.record_duration(dt);
                r.range_secs += dt.as_secs_f64();
                for row in &rows {
                    r.range_results += row.len() as u64;
                    for id in row {
                        r.range_checksum = mix(r.range_checksum, *id as u64);
                    }
                }
                r.ops.3 += 1;
            }
            // Derived-structure ops are the store façade's job
            // (`pargeo-store::run_store_workload`); a bare index has no
            // whole-dataset algorithms to serve them with.
            WorkloadOp::Derived(_) => {}
        }
    }
    r.final_live = index.len();
    r.snapshot = index.snapshot();
    r.insert_lat = insert_h.summary();
    r.delete_lat = delete_h.summary();
    r.knn_lat = knn_h.summary();
    r.range_lat = range_h.summary();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecIndex;
    use pargeo_bdltree::{BdlTree, ZdTree};
    use pargeo_datagen::{Distribution, WorkloadSpec};
    use pargeo_kdtree::DynKdTree;

    #[test]
    fn all_backends_produce_identical_digests() {
        let mut spec = WorkloadSpec::new("drv", Distribution::UniformCube, 2_000, 24);
        spec.seed = 11;
        let w: Workload<2> = spec.generate();
        let mut oracle = VecIndex::<2>::new();
        let want = run_workload(&mut oracle, &w);
        assert!(want.knn_results > 0, "workload generated no knn work");
        assert!(want.range_results > 0, "workload generated no range work");

        let mut dynkd = DynKdTree::<2>::new();
        let mut bdl = BdlTree::<2>::with_buffer_size(128);
        let mut zd = ZdTree::<2>::new();
        for got in [
            run_workload(&mut dynkd, &w),
            run_workload(&mut bdl, &w),
            run_workload(&mut zd, &w),
        ] {
            assert_eq!(got.digest(), want.digest(), "{} digest", got.backend);
            assert_eq!(got.final_live, want.final_live, "{}", got.backend);
            assert_eq!(got.inserted, want.inserted, "{}", got.backend);
            assert_eq!(got.deleted, want.deleted, "{}", got.backend);
            assert_eq!(got.knn_results, want.knn_results, "{}", got.backend);
            assert_eq!(got.range_results, want.range_results, "{}", got.backend);
        }
    }

    #[test]
    fn report_accounts_for_every_batch() {
        let spec = WorkloadSpec::new("acct", Distribution::OnCube, 500, 16);
        let w: Workload<3> = spec.generate();
        let (i, d, k, g) = {
            let mut v = VecIndex::<3>::new();
            let r = run_workload(&mut v, &w);
            r.ops
        };
        assert_eq!(i + d + k + g, w.ops.len());
        let counts = w.op_counts();
        assert_eq!((i, d, k, g), counts);
    }
}
