//! The brute-force `Vec` oracle.
//!
//! [`VecIndex`] keeps the live points in a flat insertion-ordered vector
//! and answers every query by scanning it. O(n) per query and O(n·batch)
//! per delete — hopeless at scale, trivially correct at any scale, which is
//! exactly what the cross-validation suites and the bench's correctness
//! anchor need.

use crate::{Frozen, Snapshot, SnapshotView, SpatialIndex};
use pargeo_geometry::{Bbox, Point};
use pargeo_kdtree::Neighbor;

/// Brute-force reference implementation of [`SpatialIndex`].
#[derive(Debug, Clone, Default)]
pub struct VecIndex<const D: usize> {
    items: Vec<(Point<D>, u32)>,
    next_id: u32,
    epoch: u64,
}

impl<const D: usize> VecIndex<D> {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self {
            items: Vec::new(),
            next_id: 0,
            epoch: 0,
        }
    }

    /// Builds over an initial point set (one batch insert).
    pub fn from_points(points: &[Point<D>]) -> Self {
        let mut v = Self::new();
        SpatialIndex::insert(&mut v, points);
        v
    }

    /// All live `(point, id)` pairs in insertion order (ids ascend).
    pub fn items(&self) -> &[(Point<D>, u32)] {
        &self.items
    }

    /// The k nearest live neighbors of one query, ascending by
    /// `(distance², id)` — through the canonical [`KnnBuffer`], so the
    /// oracle's tie-breaking is the library's by construction.
    ///
    /// [`KnnBuffer`]: pargeo_kdtree::KnnBuffer
    pub fn knn(&self, q: &Point<D>, k: usize) -> Vec<Neighbor> {
        let mut buf = pargeo_kdtree::KnnBuffer::new(k);
        for (p, id) in &self.items {
            buf.insert(q.dist_sq(p), *id);
        }
        buf.finish()
    }

    /// Sorted ids of the live points inside one query box.
    pub fn range_box(&self, query: &Bbox<D>) -> Vec<u32> {
        // Items stay insertion-ordered, so the filter output is already
        // ascending by id.
        self.items
            .iter()
            .filter(|(p, _)| query.contains(p))
            .map(|&(_, id)| id)
            .collect()
    }
}

impl<const D: usize> SpatialIndex<D> for VecIndex<D> {
    fn backend_name(&self) -> &'static str {
        "vec-oracle"
    }

    fn insert(&mut self, batch: &[Point<D>]) {
        self.epoch += 1;
        self.items.extend(
            batch
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, self.next_id + i as u32)),
        );
        self.next_id += batch.len() as u32;
    }

    fn delete(&mut self, batch: &[Point<D>]) -> usize {
        self.epoch += 1;
        let victims: std::collections::HashSet<[u64; D]> =
            batch.iter().map(Point::bits_key).collect();
        let before = self.items.len();
        self.items.retain(|(p, _)| !victims.contains(&p.bits_key()));
        before - self.items.len()
    }

    fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>> {
        pargeo_parlay::map_batch(queries, 64, |q| self.knn(q, k))
    }

    fn range_batch(&self, queries: &[Bbox<D>]) -> Vec<Vec<u32>> {
        pargeo_parlay::map_batch(queries, 16, |q| self.range_box(q))
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            epoch: self.epoch,
            live: self.items.len(),
            inserted: self.next_id as u64,
            deleted: self.next_id as u64 - self.items.len() as u64,
            rebuilds: 0,
            arena_bytes: self.items.len() * std::mem::size_of::<(Point<D>, u32)>(),
            nodes: 0,
        }
    }

    fn pin(&self) -> Box<dyn SnapshotView<D>> {
        // Clone-freeze: the oracle is the reference implementation of the
        // default pin strategy — an O(n) frozen copy is the semantic every
        // cheaper pin must match bit-for-bit.
        Box::new(Frozen(self.clone()))
    }

    fn live_bbox(&self) -> Bbox<D> {
        let mut b = Bbox::empty();
        for (p, _) in &self.items {
            b.extend(p);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_cube;

    #[test]
    fn oracle_semantics_match_the_contract() {
        let pts = uniform_cube::<2>(500, 1);
        let mut v = VecIndex::from_points(&pts);
        assert_eq!(SpatialIndex::delete(&mut v, &pts[..100]), 100);
        assert_eq!(v.len(), 400);
        // knn of a live point includes itself at distance zero, id intact.
        let got = v.knn(&pts[100], 1);
        assert_eq!(got[0].id, 100);
        assert_eq!(got[0].dist_sq, 0.0);
        // Range output ascends by id.
        let all = v.range_box(&Bbox::from_points(&pts));
        assert_eq!(all, (100u32..500).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_values_all_die() {
        let p = Point::new([1.0, 1.0]);
        let mut v = VecIndex::<2>::new();
        SpatialIndex::insert(&mut v, &[p, p, Point::new([2.0, 2.0])]);
        assert_eq!(SpatialIndex::delete(&mut v, &[p]), 2);
        assert_eq!(v.len(), 1);
    }
}
