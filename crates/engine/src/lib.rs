//! # pargeo-engine — the unified batch-dynamic spatial index engine
//!
//! ParGeo's Module 1 grows three batch-dynamic backends — the
//! delete-marking [`DynKdTree`], the log-structured [`BdlTree`] (paper §5),
//! and the Morton-order [`ZdTree`] (§6.3) — which historically exposed
//! ad-hoc, incompatible APIs. This crate unifies them behind one trait so a
//! single workload can be served by, and cross-validated across, every
//! backend:
//!
//! * [`SpatialIndex`] — batched `insert` / `delete` / `knn_batch` /
//!   `range_batch` plus [`Snapshot`]-style epoch stats, implemented by all
//!   three tree backends and by the brute-force [`VecIndex`] oracle.
//! * [`SnapshotView`] — the epoch-pinned immutable read half:
//!   [`SpatialIndex::pin`] freezes the current epoch into an owned view
//!   that answers bit-identically to a frozen copy while later write
//!   epochs apply on the live side (O(1) for the copy-on-write
//!   `DynKdTree`, per-shard pinned roots + id-map watermarks for
//!   [`ShardedIndex`], clone-freeze elsewhere).
//! * [`VecIndex`] — the `Vec`-of-points oracle: trivially correct answers
//!   for cross-validation in tests and benches.
//! * [`ShardedIndex`] — Morton-prefix sharded execution over any backend:
//!   `S` independent shards, writes applied in parallel across shards,
//!   reads fanned out only to the shards whose region can contribute —
//!   answer-for-answer bit-identical to the unsharded backend.
//! * [`driver`] — [`run_workload`]: applies a generated
//!   [`Workload`](pargeo_datagen::Workload) (mixed insert/delete/k-NN/range
//!   batches from `pargeo-datagen`'s
//!   [`WorkloadSpec`](pargeo_datagen::WorkloadSpec)) to any backend and
//!   returns a [`WorkloadReport`] with per-phase timings and
//!   order-sensitive answer checksums — equal checksums across backends
//!   prove they served identical answers.
//!
//! Read paths stay swappable with the static query structures: the same
//! backends also implement `pargeo-rangequery`'s `BatchQuery` for box
//! count/report, so a `RangeTree2d` can serve the read-only half of a
//! workload interchangeably.
//!
//! ```
//! use pargeo_engine::{SpatialIndex, VecIndex};
//! use pargeo_bdltree::BdlTree;
//! use pargeo_geometry::Point2;
//!
//! let pts: Vec<Point2> = (0..100)
//!     .map(|i| Point2::new([i as f64, (i * 7 % 13) as f64]))
//!     .collect();
//! let mut bdl = BdlTree::<2>::new();
//! let mut oracle = VecIndex::<2>::new();
//! bdl.insert(&pts);
//! oracle.insert(&pts);
//! SpatialIndex::delete(&mut bdl, &pts[..50]);
//! SpatialIndex::delete(&mut oracle, &pts[..50]);
//! assert_eq!(bdl.snapshot().live, oracle.snapshot().live);
//! let knn = SpatialIndex::knn_batch(&bdl, &pts[50..60], 3);
//! let want = SpatialIndex::knn_batch(&oracle, &pts[50..60], 3);
//! for (a, b) in knn.iter().zip(&want) {
//!     assert_eq!(a.len(), b.len());
//! }
//! ```

#![warn(missing_docs)]

pub mod driver;
pub mod oracle;
pub mod shard;

pub use driver::{run_workload, WorkloadReport};
pub use oracle::VecIndex;
pub use shard::ShardedIndex;

use pargeo_bdltree::{BdlTree, ZdTree};
use pargeo_geometry::{Bbox, Point};
use pargeo_kdtree::{DynKdTree, Neighbor};

/// Point-in-time statistics of a [`SpatialIndex`] — the "epoch" view a
/// serving layer reports per update round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Update batches (insert or delete) applied so far.
    pub epoch: u64,
    /// Live points currently stored.
    pub live: usize,
    /// Total points ever inserted (the id counter's high-water mark).
    pub inserted: u64,
    /// Total points deleted (`inserted - live` for value-delete backends).
    pub deleted: u64,
    /// Internal structure (re)builds performed — vEB trees constructed by
    /// the BDL cascade, radix rebuilds of the Zd-tree, threshold rebuilds
    /// of the dynamic kd-tree.
    pub rebuilds: u64,
    /// Heap bytes held by the backend's flat arenas (node slabs,
    /// coordinate columns, id/liveness slabs, insert buffers) — the
    /// `index_arena_bytes` memory gauge.
    pub arena_bytes: usize,
    /// Structure nodes currently allocated across the backend's arenas —
    /// the `index_nodes_total` gauge.
    pub nodes: usize,
}

/// A batch-dynamic spatial index over `D`-dimensional points.
///
/// The unified surface of ParGeo's Module 1: every backend accepts batched
/// updates (the paper's batch-dynamic model — updates arrive as batches,
/// queries run between batches) and answers batched queries data-parallel
/// over the batch. Ids are insertion-order ids assigned by the index;
/// deletion is by point value (all live copies of a matching value go).
///
/// Determinism contract: `range_batch` reports ids sorted ascending;
/// `knn_batch` rows are ordered by `(distance², id)`; all answers are
/// independent of thread count.
pub trait SpatialIndex<const D: usize> {
    /// Short backend name for reports and benches.
    fn backend_name(&self) -> &'static str;

    /// Inserts a batch of points, assigning consecutive insertion-order
    /// ids.
    fn insert(&mut self, batch: &[Point<D>]);

    /// Deletes every live point whose coordinates match a batch point.
    /// Returns the number of points removed.
    fn delete(&mut self, batch: &[Point<D>]) -> usize;

    /// The k nearest live neighbors of every query, data-parallel over the
    /// queries; each row ascends by `(distance², id)`.
    fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>>;

    /// Ids of the live points inside every query box (boundary inclusive),
    /// data-parallel over the queries; each row sorted ascending.
    fn range_batch(&self, queries: &[Bbox<D>]) -> Vec<Vec<u32>>;

    /// Number of live points.
    fn len(&self) -> usize;

    /// True iff no live points are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current epoch statistics.
    fn snapshot(&self) -> Snapshot;

    /// Per-shard epoch statistics: one [`Snapshot`] per shard for sharded
    /// executors, a single-element vector (the whole index) otherwise.
    /// The per-shard `live`/`inserted`/`deleted` counts sum to the
    /// aggregate [`snapshot`](Self::snapshot) — the spread across them is
    /// the router's balance diagnostic.
    fn shard_snapshots(&self) -> Vec<Snapshot> {
        vec![self.snapshot()]
    }

    /// Pins an immutable snapshot of the current epoch. The returned view
    /// owns its state (`'static`, [`Send`] + [`Sync`]) and answers every
    /// read bit-identically to a frozen clone of `self` taken now, no
    /// matter how many insert/delete/rebuild epochs apply to `self`
    /// afterwards — the isolation primitive the pipelined store executor
    /// overlaps read fan-out with write application on.
    ///
    /// Cost: [`DynKdTree`] pins in O(1) (its queryable core is `Arc`-backed
    /// copy-on-write; the *next* write batch pays one copy per pinned
    /// epoch), [`ShardedIndex`] pins in O(S) shard
    /// pins, and the remaining backends clone-freeze (O(n), the default
    /// strategy for any backend without a native persistent core).
    fn pin(&self) -> Box<dyn SnapshotView<D>>;

    /// Bounding box of the live points — the index's current effective
    /// region, which *shrinks* when deletes remove extreme points (unlike
    /// a cumulative routed-points box).
    fn live_bbox(&self) -> Bbox<D>;
}

/// The immutable read half of a [`SpatialIndex`], pinned at one epoch.
///
/// Created by [`SpatialIndex::pin`]; fully owned (no borrow of the live
/// index), so reads against epoch E proceed concurrently with — and are
/// bit-identical regardless of — write batches applying epoch E+1 on the
/// live side. Any backend clone can serve as a view through the
/// [`Frozen`] adapter (the default clone-freeze pin strategy).
///
/// Determinism contract is inherited unchanged: `range_batch` rows sorted
/// ascending, `knn_batch` rows ordered by `(distance², id)`, all answers
/// independent of thread count.
pub trait SnapshotView<const D: usize>: Send + Sync {
    /// Short backend name for reports and benches.
    fn backend_name(&self) -> &'static str;

    /// The k nearest pinned-live neighbors of every query, data-parallel
    /// over the queries; each row ascends by `(distance², id)`.
    fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>>;

    /// Ids of the pinned-live points inside every query box (boundary
    /// inclusive), data-parallel over the queries; each row sorted
    /// ascending.
    fn range_batch(&self, queries: &[Bbox<D>]) -> Vec<Vec<u32>>;

    /// Number of live points at the pinned epoch.
    fn len(&self) -> usize;

    /// True iff the pinned epoch held no live points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Epoch statistics as of the pin.
    fn snapshot(&self) -> Snapshot;

    /// Per-shard epoch statistics as of the pin (single-element for
    /// unsharded backends) — reported against the pinned epoch, never the
    /// live one.
    fn shard_snapshots(&self) -> Vec<Snapshot> {
        vec![self.snapshot()]
    }
}

/// Clone-freeze adapter: hands a frozen clone of any backend out as a
/// [`SnapshotView`]. This is the default pin strategy — O(n) for a deep
/// clone, O(1) for backends with `Arc`-backed copy-on-write cores (the
/// clone shares the core and later writes copy before mutating). A
/// newtype rather than a blanket impl so no backend implements both
/// traits and read-method calls never turn ambiguous at call sites.
pub struct Frozen<T>(pub T);

impl<const D: usize, T: SpatialIndex<D> + Send + Sync> SnapshotView<D> for Frozen<T> {
    fn backend_name(&self) -> &'static str {
        self.0.backend_name()
    }

    fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>> {
        self.0.knn_batch(queries, k)
    }

    fn range_batch(&self, queries: &[Bbox<D>]) -> Vec<Vec<u32>> {
        self.0.range_batch(queries)
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn snapshot(&self) -> Snapshot {
        self.0.snapshot()
    }

    fn shard_snapshots(&self) -> Vec<Snapshot> {
        self.0.shard_snapshots()
    }
}

/// Forwards [`SpatialIndex`] to a tree backend's inherent methods. All
/// three tree backends expose the same surface (`insert`/`delete`/
/// `knn_batch`/`range_box_batch`/`len` plus the `epoch`/`total_inserted`/
/// `rebuilds` counters), so one definition serves them all — a new trait
/// method or `Snapshot` field is added exactly once.
macro_rules! impl_spatial_index {
    ($backend:ident, $name:literal) => {
        impl<const D: usize> SpatialIndex<D> for $backend<D> {
            fn backend_name(&self) -> &'static str {
                $name
            }

            fn insert(&mut self, batch: &[Point<D>]) {
                $backend::insert(self, batch)
            }

            fn delete(&mut self, batch: &[Point<D>]) -> usize {
                $backend::delete(self, batch)
            }

            fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>> {
                $backend::knn_batch(self, queries, k)
            }

            fn range_batch(&self, queries: &[Bbox<D>]) -> Vec<Vec<u32>> {
                $backend::range_box_batch(self, queries)
            }

            fn len(&self) -> usize {
                $backend::len(self)
            }

            fn snapshot(&self) -> Snapshot {
                Snapshot {
                    epoch: self.epoch(),
                    live: $backend::len(self),
                    inserted: self.total_inserted(),
                    deleted: self.total_inserted() - $backend::len(self) as u64,
                    rebuilds: self.rebuilds(),
                    arena_bytes: self.arena_bytes(),
                    nodes: self.node_count(),
                }
            }

            fn pin(&self) -> Box<dyn SnapshotView<D>> {
                // Clone-freeze: `DynKdTree`'s core is `Arc`-backed, so its
                // clone is an O(1) copy-on-write pin; BDL and Zd clones are
                // O(n) frozen copies. Either way `Frozen` makes the clone
                // the view.
                Box::new(Frozen(self.clone()))
            }

            fn live_bbox(&self) -> Bbox<D> {
                $backend::live_bbox(self)
            }
        }
    };
}

impl_spatial_index!(DynKdTree, "dyn-kd");
impl_spatial_index!(BdlTree, "bdl");
impl_spatial_index!(ZdTree, "zd");

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_cube;

    fn backends<const D: usize>() -> Vec<Box<dyn SpatialIndex<D>>> {
        vec![
            Box::new(DynKdTree::<D>::new()),
            Box::new(BdlTree::<D>::with_buffer_size(128)),
            Box::new(ZdTree::<D>::new()),
            Box::new(VecIndex::<D>::new()),
        ]
    }

    #[test]
    fn snapshots_agree_across_backends() {
        let pts = uniform_cube::<2>(2_000, 1);
        for mut b in backends::<2>() {
            b.insert(&pts[..1_500]);
            assert_eq!(b.delete(&pts[..500]), 500, "{}", b.backend_name());
            b.insert(&pts[1_500..]);
            let s = b.snapshot();
            assert_eq!(s.live, 1_500, "{}", b.backend_name());
            assert_eq!(s.inserted, 2_000, "{}", b.backend_name());
            assert_eq!(s.deleted, 500, "{}", b.backend_name());
            assert_eq!(s.epoch, 3, "{}", b.backend_name());
            assert!(s.arena_bytes > 0, "{}", b.backend_name());
            if b.backend_name() != "vec-oracle" {
                assert!(s.nodes > 0, "{}", b.backend_name());
            }
            assert_eq!(b.len(), 1_500);
            assert!(!b.is_empty());
        }
    }

    #[test]
    fn all_backends_answer_identically() {
        let pts = uniform_cube::<2>(3_000, 2);
        let side = pargeo_datagen::cube_side(3_000);
        let queries: Vec<Point<2>> = pts.iter().step_by(101).copied().collect();
        let boxes: Vec<Bbox<2>> = pargeo_datagen::uniform_rects::<2>(40, 3, 0.3);
        let mut rows: Vec<(String, Vec<Vec<Neighbor>>, Vec<Vec<u32>>)> = Vec::new();
        for mut b in backends::<2>() {
            b.insert(&pts[..2_000]);
            b.delete(&pts[..700]);
            b.insert(&pts[2_000..]);
            rows.push((
                b.backend_name().to_string(),
                b.knn_batch(&queries, 5),
                b.range_batch(&boxes),
            ));
        }
        let _ = side;
        let (_, knn0, rng0) = &rows[0];
        for (name, knn, rng) in &rows[1..] {
            assert_eq!(rng, rng0, "range mismatch: {name}");
            for (a, b) in knn.iter().zip(knn0) {
                assert_eq!(a.len(), b.len(), "knn len mismatch: {name}");
                for (x, y) in a.iter().zip(b) {
                    assert!(
                        (x.dist_sq - y.dist_sq).abs() <= 1e-9 * (1.0 + x.dist_sq),
                        "knn mismatch: {name}: {x:?} vs {y:?}"
                    );
                }
            }
        }
    }
}
