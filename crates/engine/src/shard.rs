//! Morton-routed sharded execution over any [`SpatialIndex`] backend.
//!
//! [`ShardedIndex`] partitions space into `S` shards by Morton-code prefix
//! (the Z-order cells at depth `log2 S` of the implicit radix tree — the
//! same prefixes the Zd-tree splits on, via the shared
//! [`morton_shard_of`]) over a universe box fixed by the first non-empty
//! insert batch. Each shard owns an independent backend, so:
//!
//! * **writes** are bucketed per shard and applied *in parallel across
//!   shards* — a write epoch becomes `S` concurrent tree batches instead
//!   of one serial one;
//! * **range queries** fan out only to shards whose region (the bounding
//!   box of everything ever routed to them — tighter than the nominal
//!   prefix cell, and correct even for points that clamp onto the
//!   universe grid from outside) intersects the query box;
//! * **k-NN** searches the home shard first (shards visited in ascending
//!   distance from the query), then expands to neighbor shards only while
//!   the current k-th `(distance², id)` bound still reaches their
//!   regions — expansion stops at the first shard *strictly* beyond the
//!   bound, and at-bound shards are always visited so equal-distance ties
//!   still resolve toward the smaller id.
//!
//! Determinism is preserved exactly: shards assign *global* insertion-order
//! ids through a per-shard id map, per-shard answers follow each backend's
//! canonical contracts, and the merge orders by `(distance², global id)` /
//! ascending id — so a `ShardedIndex` is answer-for-answer **bit-identical**
//! to its unsharded backend at any shard count, which the proptest and
//! bench anchors assert.

use crate::{Snapshot, SpatialIndex};
use pargeo_geometry::{Bbox, Point};
use pargeo_kdtree::{canonical_order, Neighbor};
use pargeo_morton::{morton_code, morton_shard_of, parallel_bbox};
use pargeo_obs::{Counter, Registry};
use pargeo_parlay as parlay;
use rayon::prelude::*;
use std::sync::Arc;

/// Routing below this batch size stays sequential.
const SEQ_CUTOFF: usize = 4096;

/// One shard: an independent backend plus the glue that makes its local
/// answers globally meaningful.
struct Shard<const D: usize> {
    index: Box<dyn SpatialIndex<D> + Send + Sync>,
    /// Local insertion-order id → global id. Strictly increasing (points
    /// route to a shard in global insertion order), so per-shard answers
    /// ordered by local id are already ordered by global id.
    global_ids: Vec<u32>,
    /// Bounding box of every point ever routed here — the shard's
    /// effective region. Never shrunk on delete (conservative), and
    /// covers clamped out-of-universe points exactly.
    bbox: Bbox<D>,
}

/// Cached per-shard metric handles (see [`ShardedIndex::attach_obs`]):
/// recording is pure atomics, so the parallel per-shard write apply and
/// the read fan-out touch them without locks.
struct ShardObs {
    /// Write sub-batches (insert or delete) applied per shard.
    write_ops: Vec<Arc<Counter>>,
    /// Points routed to each shard by insert batches (sums to the
    /// aggregate `inserted` total).
    routed_points: Vec<Arc<Counter>>,
    /// Read visits (k-NN or range) served per shard.
    read_ops: Vec<Arc<Counter>>,
    /// Non-empty shards searched during k-NN expansion.
    knn_visited: Arc<Counter>,
    /// Non-empty shards skipped because their region lay strictly beyond
    /// the k-th neighbor bound.
    knn_pruned: Arc<Counter>,
    /// Shards whose region intersected a range query box.
    range_visited: Arc<Counter>,
    /// Non-empty shards skipped because their region missed the box.
    range_pruned: Arc<Counter>,
}

impl ShardObs {
    fn new(registry: &Registry, shards: usize) -> Self {
        let per_shard = |name: &'static str| -> Vec<Arc<Counter>> {
            (0..shards)
                .map(|s| registry.counter(name, &[("shard", &s.to_string())]))
                .collect()
        };
        Self {
            write_ops: per_shard("shard_write_ops_total"),
            routed_points: per_shard("shard_routed_points_total"),
            read_ops: per_shard("shard_read_ops_total"),
            knn_visited: registry.counter("shard_knn_visited_total", &[]),
            knn_pruned: registry.counter("shard_knn_pruned_total", &[]),
            range_visited: registry.counter("shard_range_visited_total", &[]),
            range_pruned: registry.counter("shard_range_pruned_total", &[]),
        }
    }
}

/// A Morton-prefix-sharded [`SpatialIndex`]: `S` independent backend
/// shards behind the one batch-dynamic surface.
///
/// ```
/// use pargeo_engine::{ShardedIndex, SpatialIndex, VecIndex};
/// use pargeo_bdltree::ZdTree;
/// use pargeo_geometry::Point2;
///
/// let pts: Vec<Point2> = (0..1_000)
///     .map(|i| Point2::new([(i % 37) as f64, (i % 61) as f64]))
///     .collect();
/// let mut sharded = ShardedIndex::<2>::new(8, |_| Box::new(ZdTree::new()));
/// let mut plain = ZdTree::<2>::new();
/// sharded.insert(&pts);
/// SpatialIndex::insert(&mut plain, &pts);
/// // Bit-identical answers at any shard count.
/// assert_eq!(
///     sharded.knn_batch(&pts[..8], 5),
///     SpatialIndex::knn_batch(&plain, &pts[..8], 5),
/// );
/// ```
pub struct ShardedIndex<const D: usize> {
    shards: Vec<Shard<D>>,
    /// `log2(shard count)` — the Morton-prefix depth of the router.
    shard_bits: u32,
    universe: Bbox<D>,
    universe_fixed: bool,
    next_id: u32,
    epoch: u64,
    name: &'static str,
    /// Per-shard metric handles when observed (see [`attach_obs`]).
    ///
    /// [`attach_obs`]: ShardedIndex::attach_obs
    obs: Option<ShardObs>,
}

impl<const D: usize> ShardedIndex<D> {
    /// Creates `shards` empty shards (rounded up to the next power of two
    /// so every Morton prefix is a valid shard), each backed by a fresh
    /// index from `factory` (called with the shard number). The routing
    /// universe is fixed by the first non-empty insert batch, exactly like
    /// the Zd-tree's; later points outside it clamp onto the boundary
    /// cells for routing only — their true coordinates are kept and every
    /// answer stays exact.
    pub fn new<F>(shards: usize, factory: F) -> Self
    where
        F: Fn(usize) -> Box<dyn SpatialIndex<D> + Send + Sync>,
    {
        let shard_bits = shards.max(1).next_power_of_two().trailing_zeros();
        let count = 1usize << shard_bits;
        let shards: Vec<Shard<D>> = (0..count)
            .map(|s| Shard {
                index: factory(s),
                global_ids: Vec::new(),
                bbox: Bbox::empty(),
            })
            .collect();
        let name = match shards[0].index.backend_name() {
            "dyn-kd" => "sharded-dyn-kd",
            "bdl" => "sharded-bdl",
            "zd" => "sharded-zd",
            "vec-oracle" => "sharded-vec-oracle",
            _ => "sharded",
        };
        Self {
            shards,
            shard_bits,
            universe: Bbox {
                min: Point::origin(),
                max: Point::new([1.0; D]),
            },
            universe_fixed: false,
            next_id: 0,
            epoch: 0,
            name,
            obs: None,
        }
    }

    /// Registers this index's per-shard counters on `registry` and starts
    /// recording into them: `shard_write_ops_total{shard=..}` /
    /// `shard_routed_points_total{shard=..}` /
    /// `shard_read_ops_total{shard=..}`, plus the region-pruning totals
    /// `shard_{knn,range}_{visited,pruned}_total` whose ratio is the read
    /// fan-out's pruning hit rate. Unobserved indexes (the default) skip
    /// a single `Option` branch per operation. Observation never changes
    /// answers.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = Some(ShardObs::new(registry, self.shards.len()));
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live points per shard — the router's balance diagnostic.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.index.len()).collect()
    }

    /// The fixed routing universe (meaningful once a batch has been
    /// inserted).
    pub fn universe(&self) -> Bbox<D> {
        self.universe
    }

    /// The shard a point routes to: the top `shard_bits` bits of its
    /// Morton code over the universe.
    fn shard_of(&self, p: &Point<D>) -> usize {
        morton_shard_of::<D>(morton_code(p, &self.universe), self.shard_bits) as usize
    }

    /// Routes a batch (data-parallel when large), then buckets it per
    /// shard preserving batch order inside each bucket — so local
    /// insertion order equals global insertion order.
    fn bucket(&self, batch: &[Point<D>]) -> (Vec<usize>, Vec<Vec<Point<D>>>) {
        let routes: Vec<usize> = if batch.len() >= SEQ_CUTOFF {
            batch.par_iter().map(|p| self.shard_of(p)).collect()
        } else {
            batch.iter().map(|p| self.shard_of(p)).collect()
        };
        let mut buckets: Vec<Vec<Point<D>>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (&s, &p) in routes.iter().zip(batch) {
            buckets[s].push(p);
        }
        (routes, buckets)
    }

    /// One query's k nearest neighbors: home shard first, then neighbor
    /// shards in ascending region distance, stopping at the first shard
    /// strictly beyond the current k-th `(distance², id)` bound.
    fn knn_one(&self, q: &Point<D>, k: usize) -> Vec<Neighbor> {
        let mut order: Vec<(f64, usize)> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.index.is_empty())
            .map(|(i, s)| (s.bbox.dist_sq_to_point(q), i))
            .collect();
        order.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut best: Vec<Neighbor> = Vec::with_capacity(k);
        for (visited, &(region_dist, s)) in order.iter().enumerate() {
            // Inclusive at-bound expansion: an equal-distance point in a
            // farther shard can still win its id tie, so only a region
            // strictly beyond the k-th bound is pruned (and with shards in
            // ascending region distance, everything after it is too).
            if best.len() == k && region_dist > best[k - 1].dist_sq {
                if let Some(o) = &self.obs {
                    o.knn_visited.add(visited as u64);
                    o.knn_pruned.add((order.len() - visited) as u64);
                }
                return best;
            }
            if let Some(o) = &self.obs {
                o.read_ops[s].inc();
            }
            let shard = &self.shards[s];
            let row: Vec<Neighbor> = shard.index.knn_batch(std::slice::from_ref(q), k)[0]
                .iter()
                .map(|n| Neighbor {
                    dist_sq: n.dist_sq,
                    id: shard.global_ids[n.id as usize],
                })
                .collect();
            // Both runs ascend by the canonical order (the shard's local
            // ids translate monotonically), so an O(k) two-way merge keeps
            // `best` the exact global top-k — and `best[k-1]` the exact
            // expansion bound — after every shard.
            let mut merged: Vec<Neighbor> = Vec::with_capacity(k);
            let (mut i, mut j) = (0, 0);
            while merged.len() < k && (i < best.len() || j < row.len()) {
                let from_best = match (best.get(i), row.get(j)) {
                    (Some(a), Some(b)) => canonical_order(a, b) != std::cmp::Ordering::Greater,
                    (Some(_), None) => true,
                    _ => false,
                };
                if from_best {
                    merged.push(best[i]);
                    i += 1;
                } else {
                    merged.push(row[j]);
                    j += 1;
                }
            }
            best = merged;
        }
        if let Some(o) = &self.obs {
            o.knn_visited.add(order.len() as u64);
        }
        best
    }

    /// One box query: fan out to intersecting shards only, translate to
    /// global ids, merge sorted.
    fn range_one(&self, query: &Bbox<D>) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            if shard.index.is_empty() {
                continue;
            }
            if !shard.bbox.intersects(query) {
                if let Some(o) = &self.obs {
                    o.range_pruned.inc();
                }
                continue;
            }
            if let Some(o) = &self.obs {
                o.range_visited.inc();
                o.read_ops[s].inc();
            }
            let rows = shard.index.range_batch(std::slice::from_ref(query));
            out.extend(
                rows.into_iter()
                    .next()
                    .expect("one query, one row")
                    .into_iter()
                    .map(|id| shard.global_ids[id as usize]),
            );
        }
        out.sort_unstable();
        out
    }
}

impl<const D: usize> SpatialIndex<D> for ShardedIndex<D> {
    fn backend_name(&self) -> &'static str {
        self.name
    }

    fn insert(&mut self, batch: &[Point<D>]) {
        self.epoch += 1;
        if batch.is_empty() {
            return;
        }
        if !self.universe_fixed {
            let mut u = parallel_bbox(batch);
            // Inflate slightly (as the Zd-tree does) so boundary points do
            // not saturate the top grid cell.
            let pad = u.diag_sq().sqrt() * 1e-6 + 1e-12;
            for i in 0..D {
                u.min[i] -= pad;
                u.max[i] += pad;
            }
            self.universe = u;
            self.universe_fixed = true;
        }
        let (routes, buckets) = self.bucket(batch);
        // Global ids ascend in batch order; bucketing is a stable
        // partition of it, so appending per shard as we walk the batch
        // keeps every `global_ids` map strictly increasing.
        let mut id = self.next_id;
        for (&s, p) in routes.iter().zip(batch) {
            let shard = &mut self.shards[s];
            shard.global_ids.push(id);
            shard.bbox.extend(p);
            id += 1;
        }
        self.next_id = id;
        if let Some(o) = &self.obs {
            for (s, bucket) in buckets.iter().enumerate() {
                if !bucket.is_empty() {
                    o.write_ops[s].inc();
                    o.routed_points[s].add(bucket.len() as u64);
                }
            }
        }
        // The write epoch's parallel half: every shard applies its
        // sub-batch concurrently.
        self.shards
            .par_iter_mut()
            .zip(buckets.par_iter())
            .for_each(|(shard, bucket)| {
                if !bucket.is_empty() {
                    shard.index.insert(bucket);
                }
            });
    }

    fn delete(&mut self, batch: &[Point<D>]) -> usize {
        self.epoch += 1;
        if batch.is_empty() || self.next_id == 0 {
            return 0;
        }
        // Value routing is deterministic (the universe never moves after
        // fixing), so every victim lands on the shard that holds it.
        let (_, buckets) = self.bucket(batch);
        if let Some(o) = &self.obs {
            for (s, bucket) in buckets.iter().enumerate() {
                if !bucket.is_empty() {
                    o.write_ops[s].inc();
                }
            }
        }
        let removed: Vec<usize> = self
            .shards
            .par_iter_mut()
            .zip(buckets.par_iter())
            .map(|(shard, bucket)| {
                if bucket.is_empty() || shard.index.is_empty() {
                    0
                } else {
                    shard.index.delete(bucket)
                }
            })
            .collect();
        removed.iter().sum()
    }

    fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>> {
        parlay::map_batch(queries, 64, |q| self.knn_one(q, k))
    }

    fn range_batch(&self, queries: &[Bbox<D>]) -> Vec<Vec<u32>> {
        parlay::map_batch(queries, 16, |q| self.range_one(q))
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.index.len()).sum()
    }

    fn snapshot(&self) -> Snapshot {
        let live = self.len();
        Snapshot {
            epoch: self.epoch,
            live,
            inserted: self.next_id as u64,
            deleted: self.next_id as u64 - live as u64,
            rebuilds: self
                .shards
                .iter()
                .map(|s| s.index.snapshot().rebuilds)
                .sum(),
        }
    }

    fn shard_snapshots(&self) -> Vec<Snapshot> {
        self.shards.iter().map(|s| s.index.snapshot()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecIndex;
    use pargeo_bdltree::{BdlTree, ZdTree};
    use pargeo_datagen::uniform_cube;
    use pargeo_kdtree::DynKdTree;

    fn factories() -> Vec<(
        &'static str,
        Box<dyn Fn(usize) -> Box<dyn SpatialIndex<2> + Send + Sync>>,
    )> {
        vec![
            ("dyn-kd", Box::new(|_| Box::new(DynKdTree::<2>::new()))),
            (
                "bdl",
                Box::new(|_| Box::new(BdlTree::<2>::with_buffer_size(64))),
            ),
            ("zd", Box::new(|_| Box::new(ZdTree::<2>::new()))),
            ("vec-oracle", Box::new(|_| Box::new(VecIndex::<2>::new()))),
        ]
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        for (want_bits, s) in [(0u32, 1usize), (1, 2), (2, 3), (2, 4), (3, 5), (4, 16)] {
            let t = ShardedIndex::<2>::new(s, |_| Box::new(VecIndex::new()));
            assert_eq!(t.shard_count(), 1 << want_bits);
            assert_eq!(t.shard_bits, want_bits);
        }
    }

    #[test]
    fn sharded_answers_equal_unsharded_bit_for_bit() {
        let pts = uniform_cube::<2>(4_000, 11);
        let queries: Vec<_> = pts.iter().step_by(53).copied().collect();
        let boxes = pargeo_datagen::uniform_rects::<2>(30, 4, 0.35);
        for (name, factory) in factories() {
            let mut plain = factory(0);
            plain.insert(&pts[..3_000]);
            plain.delete(&pts[..1_000]);
            plain.insert(&pts[3_000..]);
            let want_knn = plain.knn_batch(&queries, 7);
            let want_rng = plain.range_batch(&boxes);
            for s in [1usize, 2, 8] {
                let mut sharded = ShardedIndex::<2>::new(s, |_| factory(0));
                sharded.insert(&pts[..3_000]);
                assert_eq!(sharded.delete(&pts[..1_000]), 1_000, "{name}/{s}");
                sharded.insert(&pts[3_000..]);
                assert_eq!(sharded.len(), plain.len(), "{name}/{s}");
                assert_eq!(sharded.knn_batch(&queries, 7), want_knn, "{name}/{s} knn");
                assert_eq!(sharded.range_batch(&boxes), want_rng, "{name}/{s} range");
            }
        }
    }

    #[test]
    fn writes_actually_spread_across_shards() {
        let pts = uniform_cube::<2>(8_000, 3);
        let mut t = ShardedIndex::<2>::new(8, |_| Box::new(ZdTree::new()));
        t.insert(&pts);
        let lens = t.shard_lens();
        assert_eq!(lens.len(), 8);
        assert_eq!(lens.iter().sum::<usize>(), 8_000);
        // Uniform data over a power-of-two prefix router: every shard gets
        // a meaningful slice (no shard starves, none hoards everything).
        assert!(lens.iter().all(|&l| l > 0), "{lens:?}");
        assert!(*lens.iter().max().unwrap() < 8_000, "{lens:?}");
    }

    #[test]
    fn snapshot_aggregates_the_shards() {
        let pts = uniform_cube::<2>(2_000, 5);
        let mut t = ShardedIndex::<2>::new(4, |_| Box::new(DynKdTree::new()));
        t.insert(&pts[..1_500]);
        assert_eq!(t.delete(&pts[..500]), 500);
        t.insert(&pts[1_500..]);
        let s = t.snapshot();
        assert_eq!(s.epoch, 3);
        assert_eq!(s.live, 1_500);
        assert_eq!(s.inserted, 2_000);
        assert_eq!(s.deleted, 500);
        assert_eq!(t.backend_name(), "sharded-dyn-kd");
    }

    #[test]
    fn out_of_universe_points_route_and_answer_exactly() {
        let pts = uniform_cube::<2>(1_000, 8);
        let mut t = ShardedIndex::<2>::new(8, |_| Box::new(ZdTree::new()));
        let mut plain = ZdTree::<2>::new();
        t.insert(&pts);
        SpatialIndex::insert(&mut plain, &pts);
        // Far outside the fixed universe: clamps onto boundary cells for
        // routing, but the shard bbox covers the true coordinates.
        let far: Vec<Point<2>> = (0..64)
            .map(|i| Point::new([1e4 + i as f64, -1e4 - i as f64]))
            .collect();
        t.insert(&far);
        SpatialIndex::insert(&mut plain, &far);
        let all_box = Bbox {
            min: Point::new([-2e4, -2e4]),
            max: Point::new([2e4, 2e4]),
        };
        assert_eq!(
            t.range_batch(std::slice::from_ref(&all_box)),
            SpatialIndex::range_batch(&plain, std::slice::from_ref(&all_box)),
        );
        assert_eq!(
            t.knn_batch(&far[..4], 6),
            SpatialIndex::knn_batch(&plain, &far[..4], 6),
        );
        assert_eq!(t.delete(&far), 64);
        assert_eq!(t.len(), 1_000);
    }

    #[test]
    fn empty_and_degenerate_batches() {
        let mut t = ShardedIndex::<2>::new(4, |_| Box::new(BdlTree::new()));
        assert_eq!(t.delete(&[Point::new([1.0, 1.0])]), 0);
        t.insert(&[]);
        assert!(t.is_empty());
        assert!(t.knn_batch(&[Point::new([0.0, 0.0])], 3)[0].is_empty());
        assert!(t.range_batch(&[Bbox {
            min: Point::new([0.0, 0.0]),
            max: Point::new([1.0, 1.0]),
        }])[0]
            .is_empty());
        let s = t.snapshot();
        assert_eq!((s.epoch, s.live, s.inserted), (2, 0, 0));
    }
}
