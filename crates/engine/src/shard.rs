//! Morton-routed sharded execution over any [`SpatialIndex`] backend.
//!
//! [`ShardedIndex`] partitions space into `S` shards by Morton-code prefix
//! (the Z-order cells at depth `log2 S` of the implicit radix tree — the
//! same prefixes the Zd-tree splits on, via the shared
//! [`morton_shard_of`]) over a universe box fixed by the first non-empty
//! insert batch. Each shard owns an independent backend, so:
//!
//! * **writes** are bucketed per shard and applied *in parallel across
//!   shards* — a write epoch becomes `S` concurrent tree batches instead
//!   of one serial one;
//! * **range queries** fan out only to shards whose effective region
//!   intersects the query box;
//! * **k-NN** searches the home shard first (shards visited in ascending
//!   distance from the query), then expands to neighbor shards only while
//!   the current k-th `(distance², id)` bound still reaches their
//!   regions — expansion stops at the first shard *strictly* beyond the
//!   bound, and at-bound shards are always visited so equal-distance ties
//!   still resolve toward the smaller id.
//!
//! A shard's *effective region* is the bounding box of the points it
//! currently holds: grown incrementally as inserts route in (covering
//! points that clamp onto the universe grid from outside, at their true
//! coordinates), and **recomputed from the live points after any delete
//! that removed from the shard** — so delete-heavy epochs shrink regions
//! back and stale extremes cannot inflate the read fan-out.
//!
//! Determinism is preserved exactly: shards assign *global* insertion-order
//! ids through a per-shard id map, per-shard answers follow each backend's
//! canonical contracts, and the merge orders by `(distance², global id)` /
//! ascending id — so a `ShardedIndex` is answer-for-answer **bit-identical**
//! to its unsharded backend at any shard count, which the proptest and
//! bench anchors assert.
//!
//! ## Epoch-pinned snapshots
//!
//! [`SpatialIndex::pin`] on a `ShardedIndex` pins every shard's backend
//! (O(1) per copy-on-write backend, clone-freeze otherwise) together with
//! its id map — the maps live behind `Arc`s, appended via `Arc::make_mut`
//! (in place while unpinned, copied once per pinned epoch otherwise), and
//! each pinned map carries its *watermark* (length at pin), below which
//! every local id the pinned backend can return must fall. The resulting
//! view answers reads bit-identically to a frozen copy of the whole
//! sharded index while later write epochs apply, and reports
//! `shard_snapshots()` against the pinned epoch.

use crate::{Snapshot, SnapshotView, SpatialIndex};
use pargeo_geometry::{Bbox, Point};
use pargeo_kdtree::{canonical_order, Neighbor};
use pargeo_morton::{morton_code, morton_shard_of, parallel_bbox};
use pargeo_obs::{Counter, Registry};
use pargeo_parlay as parlay;
use rayon::prelude::*;
use std::sync::Arc;

/// Routing below this batch size stays sequential.
const SEQ_CUTOFF: usize = 4096;

/// One shard: an independent backend plus the glue that makes its local
/// answers globally meaningful.
struct Shard<const D: usize> {
    index: Box<dyn SpatialIndex<D> + Send + Sync>,
    /// Local insertion-order id → global id. Strictly increasing (points
    /// route to a shard in global insertion order), so per-shard answers
    /// ordered by local id are already ordered by global id. Behind an
    /// `Arc` so pins share it copy-on-write: appends go through
    /// `Arc::make_mut` — in place while unpinned, one copy per pinned
    /// epoch otherwise.
    global_ids: Arc<Vec<u32>>,
    /// Bounding box of the points currently held — the shard's effective
    /// region. Grown on insert (covering clamped out-of-universe points
    /// at their true coordinates), recomputed from the live points after
    /// any delete that removed here, so it shrinks back when extremes die.
    bbox: Bbox<D>,
}

/// The per-shard surface the read fan-out needs. Implemented by live
/// [`Shard`]s and pinned [`ShardView`]s, so the home-first k-NN expansion
/// and the region-pruned range fan-out are written exactly once and are
/// bit-identical on both sides by construction.
trait ReadShard<const D: usize> {
    fn is_empty(&self) -> bool;
    fn bbox(&self) -> &Bbox<D>;
    /// One query's k nearest neighbors, already translated to global ids
    /// (the id map is monotone, so canonical order is preserved).
    fn knn(&self, q: &Point<D>, k: usize) -> Vec<Neighbor>;
    /// One box query's matches, already translated to global ids (sorted,
    /// by the same monotonicity).
    fn range(&self, query: &Bbox<D>) -> Vec<u32>;
}

impl<const D: usize> ReadShard<D> for Shard<D> {
    fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn bbox(&self) -> &Bbox<D> {
        &self.bbox
    }

    fn knn(&self, q: &Point<D>, k: usize) -> Vec<Neighbor> {
        self.index.knn_batch(std::slice::from_ref(q), k)[0]
            .iter()
            .map(|n| Neighbor {
                dist_sq: n.dist_sq,
                id: self.global_ids[n.id as usize],
            })
            .collect()
    }

    fn range(&self, query: &Bbox<D>) -> Vec<u32> {
        self.index
            .range_batch(std::slice::from_ref(query))
            .into_iter()
            .next()
            .expect("one query, one row")
            .into_iter()
            .map(|id| self.global_ids[id as usize])
            .collect()
    }
}

/// One query's k nearest neighbors across `shards`: home shard first, then
/// neighbor shards in ascending region distance, stopping at the first
/// shard strictly beyond the current k-th `(distance², id)` bound.
fn knn_one<const D: usize, S: ReadShard<D>>(
    shards: &[S],
    obs: Option<&ShardObs>,
    q: &Point<D>,
    k: usize,
) -> Vec<Neighbor> {
    let mut order: Vec<(f64, usize)> = shards
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(i, s)| (s.bbox().dist_sq_to_point(q), i))
        .collect();
    order.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let mut best: Vec<Neighbor> = Vec::with_capacity(k);
    for (visited, &(region_dist, s)) in order.iter().enumerate() {
        // Inclusive at-bound expansion: an equal-distance point in a
        // farther shard can still win its id tie, so only a region
        // strictly beyond the k-th bound is pruned (and with shards in
        // ascending region distance, everything after it is too).
        if best.len() == k && region_dist > best[k - 1].dist_sq {
            if let Some(o) = obs {
                o.knn_visited.add(visited as u64);
                o.knn_pruned.add((order.len() - visited) as u64);
            }
            return best;
        }
        if let Some(o) = obs {
            o.read_ops[s].inc();
        }
        let row = shards[s].knn(q, k);
        // Both runs ascend by the canonical order (the shard's local ids
        // translate monotonically), so an O(k) two-way merge keeps `best`
        // the exact global top-k — and `best[k-1]` the exact expansion
        // bound — after every shard.
        let mut merged: Vec<Neighbor> = Vec::with_capacity(k);
        let (mut i, mut j) = (0, 0);
        while merged.len() < k && (i < best.len() || j < row.len()) {
            let from_best = match (best.get(i), row.get(j)) {
                (Some(a), Some(b)) => canonical_order(a, b) != std::cmp::Ordering::Greater,
                (Some(_), None) => true,
                _ => false,
            };
            if from_best {
                merged.push(best[i]);
                i += 1;
            } else {
                merged.push(row[j]);
                j += 1;
            }
        }
        best = merged;
    }
    if let Some(o) = obs {
        o.knn_visited.add(order.len() as u64);
    }
    best
}

/// One box query across `shards`: fan out to intersecting regions only,
/// merge the (already global, already sorted) per-shard answers.
fn range_one<const D: usize, S: ReadShard<D>>(
    shards: &[S],
    obs: Option<&ShardObs>,
    query: &Bbox<D>,
) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    for (s, shard) in shards.iter().enumerate() {
        if shard.is_empty() {
            continue;
        }
        if !shard.bbox().intersects(query) {
            if let Some(o) = obs {
                o.range_pruned.inc();
            }
            continue;
        }
        if let Some(o) = obs {
            o.range_visited.inc();
            o.read_ops[s].inc();
        }
        out.extend(shard.range(query));
    }
    out.sort_unstable();
    out
}

/// Cached per-shard metric handles (see [`ShardedIndex::attach_obs`]):
/// recording is pure atomics, so the parallel per-shard write apply and
/// the read fan-out touch them without locks — and pinned views share the
/// same handles through the `Arc`, so reads served from a snapshot still
/// count toward the live index's fan-out/pruning totals.
struct ShardObs {
    /// Write sub-batches (insert or delete) applied per shard.
    write_ops: Vec<Arc<Counter>>,
    /// Points routed to each shard by insert batches (sums to the
    /// aggregate `inserted` total).
    routed_points: Vec<Arc<Counter>>,
    /// Read visits (k-NN or range) served per shard.
    read_ops: Vec<Arc<Counter>>,
    /// Non-empty shards searched during k-NN expansion.
    knn_visited: Arc<Counter>,
    /// Non-empty shards skipped because their region lay strictly beyond
    /// the k-th neighbor bound.
    knn_pruned: Arc<Counter>,
    /// Shards whose region intersected a range query box.
    range_visited: Arc<Counter>,
    /// Non-empty shards skipped because their region missed the box.
    range_pruned: Arc<Counter>,
}

impl ShardObs {
    fn new(registry: &Registry, shards: usize) -> Self {
        let per_shard = |name: &'static str| -> Vec<Arc<Counter>> {
            (0..shards)
                .map(|s| registry.counter(name, &[("shard", &s.to_string())]))
                .collect()
        };
        Self {
            write_ops: per_shard("shard_write_ops_total"),
            routed_points: per_shard("shard_routed_points_total"),
            read_ops: per_shard("shard_read_ops_total"),
            knn_visited: registry.counter("shard_knn_visited_total", &[]),
            knn_pruned: registry.counter("shard_knn_pruned_total", &[]),
            range_visited: registry.counter("shard_range_visited_total", &[]),
            range_pruned: registry.counter("shard_range_pruned_total", &[]),
        }
    }
}

/// A Morton-prefix-sharded [`SpatialIndex`]: `S` independent backend
/// shards behind the one batch-dynamic surface.
///
/// ```
/// use pargeo_engine::{ShardedIndex, SpatialIndex, VecIndex};
/// use pargeo_bdltree::ZdTree;
/// use pargeo_geometry::Point2;
///
/// let pts: Vec<Point2> = (0..1_000)
///     .map(|i| Point2::new([(i % 37) as f64, (i % 61) as f64]))
///     .collect();
/// let mut sharded = ShardedIndex::<2>::new(8, |_| Box::new(ZdTree::new()));
/// let mut plain = ZdTree::<2>::new();
/// sharded.insert(&pts);
/// SpatialIndex::insert(&mut plain, &pts);
/// // Bit-identical answers at any shard count.
/// assert_eq!(
///     sharded.knn_batch(&pts[..8], 5),
///     SpatialIndex::knn_batch(&plain, &pts[..8], 5),
/// );
/// ```
pub struct ShardedIndex<const D: usize> {
    shards: Vec<Shard<D>>,
    /// `log2(shard count)` — the Morton-prefix depth of the router.
    shard_bits: u32,
    universe: Bbox<D>,
    universe_fixed: bool,
    next_id: u32,
    epoch: u64,
    name: &'static str,
    /// Per-shard metric handles when observed (see [`attach_obs`]),
    /// shared with pinned views.
    ///
    /// [`attach_obs`]: ShardedIndex::attach_obs
    obs: Option<Arc<ShardObs>>,
}

impl<const D: usize> ShardedIndex<D> {
    /// Creates `shards` empty shards (rounded up to the next power of two
    /// so every Morton prefix is a valid shard), each backed by a fresh
    /// index from `factory` (called with the shard number). The routing
    /// universe is fixed by the first non-empty insert batch, exactly like
    /// the Zd-tree's; later points outside it clamp onto the boundary
    /// cells for routing only — their true coordinates are kept and every
    /// answer stays exact.
    pub fn new<F>(shards: usize, factory: F) -> Self
    where
        F: Fn(usize) -> Box<dyn SpatialIndex<D> + Send + Sync>,
    {
        let shard_bits = shards.max(1).next_power_of_two().trailing_zeros();
        let count = 1usize << shard_bits;
        let shards: Vec<Shard<D>> = (0..count)
            .map(|s| Shard {
                index: factory(s),
                global_ids: Arc::new(Vec::new()),
                bbox: Bbox::empty(),
            })
            .collect();
        let name = match shards[0].index.backend_name() {
            "dyn-kd" => "sharded-dyn-kd",
            "bdl" => "sharded-bdl",
            "zd" => "sharded-zd",
            "vec-oracle" => "sharded-vec-oracle",
            _ => "sharded",
        };
        Self {
            shards,
            shard_bits,
            universe: Bbox {
                min: Point::origin(),
                max: Point::new([1.0; D]),
            },
            universe_fixed: false,
            next_id: 0,
            epoch: 0,
            name,
            obs: None,
        }
    }

    /// Registers this index's per-shard counters on `registry` and starts
    /// recording into them: `shard_write_ops_total{shard=..}` /
    /// `shard_routed_points_total{shard=..}` /
    /// `shard_read_ops_total{shard=..}`, plus the region-pruning totals
    /// `shard_{knn,range}_{visited,pruned}_total` whose ratio is the read
    /// fan-out's pruning hit rate. Unobserved indexes (the default) skip
    /// a single `Option` branch per operation. Observation never changes
    /// answers.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = Some(Arc::new(ShardObs::new(registry, self.shards.len())));
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live points per shard — the router's balance diagnostic.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.index.len()).collect()
    }

    /// The fixed routing universe (meaningful once a batch has been
    /// inserted).
    pub fn universe(&self) -> Bbox<D> {
        self.universe
    }

    /// Per-shard effective regions (live-point bounding boxes) — the
    /// boxes the read fan-out prunes against. Empty shards report empty
    /// boxes.
    pub fn shard_regions(&self) -> Vec<Bbox<D>> {
        self.shards.iter().map(|s| s.bbox).collect()
    }

    /// The shard a point routes to: the top `shard_bits` bits of its
    /// Morton code over the universe.
    fn shard_of(&self, p: &Point<D>) -> usize {
        morton_shard_of::<D>(morton_code(p, &self.universe), self.shard_bits) as usize
    }

    /// Routes a batch (data-parallel when large), then buckets it per
    /// shard preserving batch order inside each bucket — so local
    /// insertion order equals global insertion order.
    fn bucket(&self, batch: &[Point<D>]) -> (Vec<usize>, Vec<Vec<Point<D>>>) {
        let routes: Vec<usize> = if batch.len() >= SEQ_CUTOFF {
            batch.par_iter().map(|p| self.shard_of(p)).collect()
        } else {
            batch.iter().map(|p| self.shard_of(p)).collect()
        };
        let mut buckets: Vec<Vec<Point<D>>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (&s, &p) in routes.iter().zip(batch) {
            buckets[s].push(p);
        }
        (routes, buckets)
    }
}

impl<const D: usize> SpatialIndex<D> for ShardedIndex<D> {
    fn backend_name(&self) -> &'static str {
        self.name
    }

    fn insert(&mut self, batch: &[Point<D>]) {
        self.epoch += 1;
        if batch.is_empty() {
            return;
        }
        if !self.universe_fixed {
            let mut u = parallel_bbox(batch);
            // Inflate slightly (as the Zd-tree does) so boundary points do
            // not saturate the top grid cell.
            let pad = u.diag_sq().sqrt() * 1e-6 + 1e-12;
            for i in 0..D {
                u.min[i] -= pad;
                u.max[i] += pad;
            }
            self.universe = u;
            self.universe_fixed = true;
        }
        let (routes, buckets) = self.bucket(batch);
        // Global ids ascend in batch order; bucketing is a stable
        // partition of it, so appending per shard as we walk the batch
        // keeps every `global_ids` map strictly increasing. `make_mut`
        // appends in place unless a pin shares the map (then it copies
        // once and the pinned map keeps its watermark-length prefix).
        let mut id = self.next_id;
        for (&s, p) in routes.iter().zip(batch) {
            let shard = &mut self.shards[s];
            Arc::make_mut(&mut shard.global_ids).push(id);
            shard.bbox.extend(p);
            id += 1;
        }
        self.next_id = id;
        if let Some(o) = &self.obs {
            for (s, bucket) in buckets.iter().enumerate() {
                if !bucket.is_empty() {
                    o.write_ops[s].inc();
                    o.routed_points[s].add(bucket.len() as u64);
                }
            }
        }
        // The write epoch's parallel half: every shard applies its
        // sub-batch concurrently.
        self.shards
            .par_iter_mut()
            .zip(buckets.par_iter())
            .for_each(|(shard, bucket)| {
                if !bucket.is_empty() {
                    shard.index.insert(bucket);
                }
            });
    }

    fn delete(&mut self, batch: &[Point<D>]) -> usize {
        self.epoch += 1;
        if batch.is_empty() || self.next_id == 0 {
            return 0;
        }
        // Value routing is deterministic (the universe never moves after
        // fixing), so every victim lands on the shard that holds it.
        let (_, buckets) = self.bucket(batch);
        if let Some(o) = &self.obs {
            for (s, bucket) in buckets.iter().enumerate() {
                if !bucket.is_empty() {
                    o.write_ops[s].inc();
                }
            }
        }
        let removed: Vec<usize> = self
            .shards
            .par_iter_mut()
            .zip(buckets.par_iter())
            .map(|(shard, bucket)| {
                if bucket.is_empty() || shard.index.is_empty() {
                    0
                } else {
                    let n = shard.index.delete(bucket);
                    if n > 0 {
                        // The effective region must shrink with its
                        // points: a cumulative box kept after deleting
                        // extreme points would keep pulling k-NN
                        // expansion and range fan-out into a shard that
                        // can no longer answer there.
                        shard.bbox = shard.index.live_bbox();
                    }
                    n
                }
            })
            .collect();
        removed.iter().sum()
    }

    fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>> {
        parlay::map_batch(queries, 64, |q| {
            knn_one(&self.shards, self.obs.as_deref(), q, k)
        })
    }

    fn range_batch(&self, queries: &[Bbox<D>]) -> Vec<Vec<u32>> {
        parlay::map_batch(queries, 16, |q| {
            range_one(&self.shards, self.obs.as_deref(), q)
        })
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.index.len()).sum()
    }

    fn snapshot(&self) -> Snapshot {
        let live = SpatialIndex::len(self);
        let mut snap = Snapshot {
            epoch: self.epoch,
            live,
            inserted: self.next_id as u64,
            deleted: self.next_id as u64 - live as u64,
            ..Snapshot::default()
        };
        for s in &self.shards {
            let sub = s.index.snapshot();
            snap.rebuilds += sub.rebuilds;
            snap.arena_bytes += sub.arena_bytes;
            snap.nodes += sub.nodes;
        }
        snap
    }

    fn shard_snapshots(&self) -> Vec<Snapshot> {
        self.shards.iter().map(|s| s.index.snapshot()).collect()
    }

    fn pin(&self) -> Box<dyn SnapshotView<D>> {
        Box::new(ShardedView {
            shards: self
                .shards
                .iter()
                .map(|s| ShardView {
                    index: s.index.pin(),
                    global_ids: Arc::clone(&s.global_ids),
                    watermark: s.global_ids.len(),
                    bbox: s.bbox,
                })
                .collect(),
            epoch: self.epoch,
            next_id: self.next_id,
            name: self.name,
            obs: self.obs.clone(),
        })
    }

    fn live_bbox(&self) -> Bbox<D> {
        self.shards
            .iter()
            .fold(Bbox::empty(), |acc, s| acc.union(&s.bbox))
    }
}

/// One pinned shard: the backend's pinned view, the id map as of the pin
/// (shared `Arc`; the live side copies before appending), its watermark,
/// and the pinned effective region.
struct ShardView<const D: usize> {
    index: Box<dyn SnapshotView<D>>,
    global_ids: Arc<Vec<u32>>,
    /// Id-map length at pin time. Every local id the pinned backend can
    /// return is below it — the live side never mutates this `Arc` (it
    /// copies on append), so the invariant `global_ids.len() == watermark`
    /// holds for the view's whole lifetime.
    watermark: usize,
    bbox: Bbox<D>,
}

impl<const D: usize> ReadShard<D> for ShardView<D> {
    fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn bbox(&self) -> &Bbox<D> {
        &self.bbox
    }

    fn knn(&self, q: &Point<D>, k: usize) -> Vec<Neighbor> {
        debug_assert_eq!(self.global_ids.len(), self.watermark);
        self.index.knn_batch(std::slice::from_ref(q), k)[0]
            .iter()
            .map(|n| {
                debug_assert!((n.id as usize) < self.watermark);
                Neighbor {
                    dist_sq: n.dist_sq,
                    id: self.global_ids[n.id as usize],
                }
            })
            .collect()
    }

    fn range(&self, query: &Bbox<D>) -> Vec<u32> {
        self.index
            .range_batch(std::slice::from_ref(query))
            .into_iter()
            .next()
            .expect("one query, one row")
            .into_iter()
            .map(|id| {
                debug_assert!((id as usize) < self.watermark);
                self.global_ids[id as usize]
            })
            .collect()
    }
}

/// An epoch-pinned view of a whole [`ShardedIndex`]: per-shard pinned
/// backends + pinned id maps behind the same fan-out/merge logic as the
/// live reads.
struct ShardedView<const D: usize> {
    shards: Vec<ShardView<D>>,
    epoch: u64,
    next_id: u32,
    name: &'static str,
    obs: Option<Arc<ShardObs>>,
}

impl<const D: usize> SnapshotView<D> for ShardedView<D> {
    fn backend_name(&self) -> &'static str {
        self.name
    }

    fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>> {
        parlay::map_batch(queries, 64, |q| {
            knn_one(&self.shards, self.obs.as_deref(), q, k)
        })
    }

    fn range_batch(&self, queries: &[Bbox<D>]) -> Vec<Vec<u32>> {
        parlay::map_batch(queries, 16, |q| {
            range_one(&self.shards, self.obs.as_deref(), q)
        })
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.index.len()).sum()
    }

    fn snapshot(&self) -> Snapshot {
        let live = self.len();
        let mut snap = Snapshot {
            epoch: self.epoch,
            live,
            inserted: self.next_id as u64,
            deleted: self.next_id as u64 - live as u64,
            ..Snapshot::default()
        };
        for s in &self.shards {
            let sub = s.index.snapshot();
            snap.rebuilds += sub.rebuilds;
            snap.arena_bytes += sub.arena_bytes;
            snap.nodes += sub.nodes;
        }
        snap
    }

    fn shard_snapshots(&self) -> Vec<Snapshot> {
        self.shards.iter().map(|s| s.index.snapshot()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecIndex;
    use pargeo_bdltree::{BdlTree, ZdTree};
    use pargeo_datagen::uniform_cube;
    use pargeo_kdtree::DynKdTree;

    fn factories() -> Vec<(
        &'static str,
        Box<dyn Fn(usize) -> Box<dyn SpatialIndex<2> + Send + Sync>>,
    )> {
        vec![
            ("dyn-kd", Box::new(|_| Box::new(DynKdTree::<2>::new()))),
            (
                "bdl",
                Box::new(|_| Box::new(BdlTree::<2>::with_buffer_size(64))),
            ),
            ("zd", Box::new(|_| Box::new(ZdTree::<2>::new()))),
            ("vec-oracle", Box::new(|_| Box::new(VecIndex::<2>::new()))),
        ]
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        for (want_bits, s) in [(0u32, 1usize), (1, 2), (2, 3), (2, 4), (3, 5), (4, 16)] {
            let t = ShardedIndex::<2>::new(s, |_| Box::new(VecIndex::new()));
            assert_eq!(t.shard_count(), 1 << want_bits);
            assert_eq!(t.shard_bits, want_bits);
        }
    }

    #[test]
    fn sharded_answers_equal_unsharded_bit_for_bit() {
        let pts = uniform_cube::<2>(4_000, 11);
        let queries: Vec<_> = pts.iter().step_by(53).copied().collect();
        let boxes = pargeo_datagen::uniform_rects::<2>(30, 4, 0.35);
        for (name, factory) in factories() {
            let mut plain = factory(0);
            plain.insert(&pts[..3_000]);
            plain.delete(&pts[..1_000]);
            plain.insert(&pts[3_000..]);
            let want_knn = plain.knn_batch(&queries, 7);
            let want_rng = plain.range_batch(&boxes);
            for s in [1usize, 2, 8] {
                let mut sharded = ShardedIndex::<2>::new(s, |_| factory(0));
                sharded.insert(&pts[..3_000]);
                assert_eq!(sharded.delete(&pts[..1_000]), 1_000, "{name}/{s}");
                sharded.insert(&pts[3_000..]);
                assert_eq!(sharded.len(), plain.len(), "{name}/{s}");
                assert_eq!(sharded.knn_batch(&queries, 7), want_knn, "{name}/{s} knn");
                assert_eq!(sharded.range_batch(&boxes), want_rng, "{name}/{s} range");
            }
        }
    }

    #[test]
    fn writes_actually_spread_across_shards() {
        let pts = uniform_cube::<2>(8_000, 3);
        let mut t = ShardedIndex::<2>::new(8, |_| Box::new(ZdTree::new()));
        t.insert(&pts);
        let lens = t.shard_lens();
        assert_eq!(lens.len(), 8);
        assert_eq!(lens.iter().sum::<usize>(), 8_000);
        // Uniform data over a power-of-two prefix router: every shard gets
        // a meaningful slice (no shard starves, none hoards everything).
        assert!(lens.iter().all(|&l| l > 0), "{lens:?}");
        assert!(*lens.iter().max().unwrap() < 8_000, "{lens:?}");
    }

    #[test]
    fn snapshot_aggregates_the_shards() {
        let pts = uniform_cube::<2>(2_000, 5);
        let mut t = ShardedIndex::<2>::new(4, |_| Box::new(DynKdTree::new()));
        t.insert(&pts[..1_500]);
        assert_eq!(t.delete(&pts[..500]), 500);
        t.insert(&pts[1_500..]);
        let s = t.snapshot();
        assert_eq!(s.epoch, 3);
        assert_eq!(s.live, 1_500);
        assert_eq!(s.inserted, 2_000);
        assert_eq!(s.deleted, 500);
        assert_eq!(t.backend_name(), "sharded-dyn-kd");
    }

    #[test]
    fn out_of_universe_points_route_and_answer_exactly() {
        let pts = uniform_cube::<2>(1_000, 8);
        let mut t = ShardedIndex::<2>::new(8, |_| Box::new(ZdTree::new()));
        let mut plain = ZdTree::<2>::new();
        t.insert(&pts);
        SpatialIndex::insert(&mut plain, &pts);
        // Far outside the fixed universe: clamps onto boundary cells for
        // routing, but the shard bbox covers the true coordinates.
        let far: Vec<Point<2>> = (0..64)
            .map(|i| Point::new([1e4 + i as f64, -1e4 - i as f64]))
            .collect();
        t.insert(&far);
        SpatialIndex::insert(&mut plain, &far);
        let all_box = Bbox {
            min: Point::new([-2e4, -2e4]),
            max: Point::new([2e4, 2e4]),
        };
        assert_eq!(
            t.range_batch(std::slice::from_ref(&all_box)),
            SpatialIndex::range_batch(&plain, std::slice::from_ref(&all_box)),
        );
        assert_eq!(
            t.knn_batch(&far[..4], 6),
            SpatialIndex::knn_batch(&plain, &far[..4], 6),
        );
        assert_eq!(t.delete(&far), 64);
        assert_eq!(t.len(), 1_000);
    }

    #[test]
    fn empty_and_degenerate_batches() {
        let mut t = ShardedIndex::<2>::new(4, |_| Box::new(BdlTree::new()));
        assert_eq!(t.delete(&[Point::new([1.0, 1.0])]), 0);
        t.insert(&[]);
        assert!(t.is_empty());
        assert!(t.knn_batch(&[Point::new([0.0, 0.0])], 3)[0].is_empty());
        assert!(t.range_batch(&[Bbox {
            min: Point::new([0.0, 0.0]),
            max: Point::new([1.0, 1.0]),
        }])[0]
            .is_empty());
        let s = t.snapshot();
        assert_eq!((s.epoch, s.live, s.inserted), (2, 0, 0));
    }

    #[test]
    fn shard_regions_shrink_after_deletes() {
        // Two well-separated clusters over a 2-shard router: deleting the
        // whole far cluster must shrink its shard's effective region so
        // queries over the vacated area stop fanning out there.
        let near: Vec<Point<2>> = (0..256)
            .map(|i| Point::new([(i % 16) as f64, (i / 16) as f64]))
            .collect();
        let far: Vec<Point<2>> = (0..256)
            .map(|i| Point::new([1e3 + (i % 16) as f64, 1e3 + (i / 16) as f64]))
            .collect();
        let mut all = near.clone();
        all.extend_from_slice(&far);
        let mut t = ShardedIndex::<2>::new(4, |_| Box::new(DynKdTree::new()));
        t.insert(&all);
        let far_box = Bbox::from_points(&far);
        let covering_before = t
            .shard_regions()
            .iter()
            .filter(|b| b.intersects(&far_box))
            .count();
        assert!(covering_before > 0);
        assert_eq!(t.delete(&far), 256);
        let covering_after = t
            .shard_regions()
            .iter()
            .filter(|b| !b.is_empty() && b.intersects(&far_box))
            .count();
        assert_eq!(
            covering_after,
            0,
            "effective regions must shrink off deleted extremes: {:?}",
            t.shard_regions()
        );
    }

    #[test]
    fn pinned_view_isolates_reads_from_later_epochs() {
        let pts = uniform_cube::<2>(3_000, 21);
        let queries: Vec<_> = pts.iter().step_by(67).copied().collect();
        let boxes = pargeo_datagen::uniform_rects::<2>(25, 6, 0.3);
        for (name, factory) in factories() {
            for s in [1usize, 4] {
                let mut live = ShardedIndex::<2>::new(s, |_| factory(0));
                live.insert(&pts[..2_000]);
                live.delete(&pts[..300]);
                // Frozen reference: a second index fed the same prefix.
                let mut frozen = ShardedIndex::<2>::new(s, |_| factory(0));
                frozen.insert(&pts[..2_000]);
                frozen.delete(&pts[..300]);
                let view = live.pin();
                let pinned_snap = view.snapshot();
                let pinned_shards = view.shard_snapshots();
                // Later epochs on the live side: insert + delete churn.
                live.insert(&pts[2_000..]);
                live.delete(&pts[300..900]);
                assert_eq!(
                    view.knn_batch(&queries, 6),
                    frozen.knn_batch(&queries, 6),
                    "{name}/S={s} knn through pin"
                );
                assert_eq!(
                    view.range_batch(&boxes),
                    frozen.range_batch(&boxes),
                    "{name}/S={s} range through pin"
                );
                assert_eq!(view.len(), frozen.len(), "{name}/S={s}");
                // Stats report the pinned epoch, not the live one.
                assert_eq!(pinned_snap, frozen.snapshot(), "{name}/S={s} snapshot");
                assert_eq!(
                    pinned_shards,
                    frozen.shard_snapshots(),
                    "{name}/S={s} shard snapshots"
                );
                assert_ne!(live.snapshot(), pinned_snap, "{name}/S={s} live moved on");
            }
        }
    }
}
