//! Bit-identicality anchors for the flat-arena/SoA memory layout.
//!
//! The node arenas, columnar point store, and slot-based delete matching
//! are pure layout changes: every answer the engine reports must be
//! byte-for-byte what the boxed-node/AoS layout reported. The constants
//! below were captured by replaying the five workload presets (n = 2 000)
//! against the pre-refactor tree and folding every reported id into the
//! driver's order-sensitive checksums. Any layout change that reorders a
//! range report, perturbs a k-NN tie, or drops a point moves a checksum
//! and fails here — across every backend, shard count, and thread count,
//! and through pin/write interleavings.

use pargeo_bdltree::{BdlTree, ZdTree};
use pargeo_datagen::{Workload, WorkloadSpec};
use pargeo_engine::{run_workload, ShardedIndex, SpatialIndex, VecIndex};
use pargeo_geometry::{Bbox, Point2};
use pargeo_kdtree::DynKdTree;
use proptest::prelude::*;

/// `(preset name, knn_checksum, range_checksum)` from the boxed-node/AoS
/// layout this refactor replaced (presets at n = 2 000, the oracle and
/// every backend × shard count agreed on them then too).
const PRESET_ANCHORS: &[(&str, u64, u64)] = &[
    ("uniform-mixed", 0x72f5d8f67b5b5bb5, 0xed7d1aeb518a54c2),
    ("insert-heavy-IS", 0xdf78db8e1a0932a0, 0x859ff403c4f2feef),
    ("sliding-window", 0x9d09abb6c4d3a5e2, 0x144f3b42c5cc5999),
    ("hotspot-read", 0x46b11f114370f538, 0xf8b1c66a23b6aa49),
    (
        "seed-spreader-churn",
        0xb5581117570e74d6,
        0xcb0a793e464121f6,
    ),
];

fn make(which: usize) -> Box<dyn SpatialIndex<2> + Send + Sync> {
    match which {
        0 => Box::new(DynKdTree::<2>::new()),
        1 => Box::new(BdlTree::<2>::new()),
        _ => Box::new(ZdTree::<2>::new()),
    }
}

#[test]
fn preset_digests_match_pre_refactor_layout() {
    for (spec, &(name, knn, range)) in WorkloadSpec::presets(2_000).iter().zip(PRESET_ANCHORS) {
        assert_eq!(spec.name, name, "preset order changed under the anchors");
        let w: Workload<2> = spec.generate();
        let mut oracle = VecIndex::<2>::new();
        let want = run_workload(&mut oracle, &w);
        assert_eq!(want.digest(), (knn, range), "oracle drifted: {name}");
        for threads in [1usize, 2] {
            pargeo_parlay::with_threads(threads, || {
                for which in 0..3 {
                    let mut b = make(which);
                    let got = run_workload(b.as_mut(), &w);
                    assert_eq!(
                        got.digest(),
                        (knn, range),
                        "{name} backend {which} T={threads}"
                    );
                    let mut s = ShardedIndex::<2>::new(4, |_| make(which));
                    let got = run_workload(&mut s, &w);
                    assert_eq!(
                        got.digest(),
                        (knn, range),
                        "{name} backend {which} S=4 T={threads}"
                    );
                }
            });
        }
    }
}

fn lattice_points() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (0i32..24, 0i32..24).prop_map(|(x, y)| Point2::new([x as f64, y as f64])),
        8..160,
    )
}

type Factory = Box<dyn Fn() -> Box<dyn SpatialIndex<2> + Send + Sync>>;

fn factories() -> Vec<(&'static str, Factory)> {
    vec![
        ("dyn-kd", Box::new(|| Box::new(DynKdTree::<2>::new()))),
        (
            "bdl",
            Box::new(|| Box::new(BdlTree::<2>::with_buffer_size(32))),
        ),
        ("zd", Box::new(|| Box::new(ZdTree::<2>::new()))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A view pinned mid-stream answers from the pinned arenas while the
    /// live side keeps inserting and deleting into (possibly rebuilt)
    /// replacement arenas. The pinned answers must equal a brute-force
    /// oracle frozen at the same cut — for every backend, unsharded and
    /// S=4, at two thread counts — proving COW pinning swaps whole
    /// arenas and never lets a later epoch's slabs leak into a view.
    #[test]
    fn pinned_views_survive_arena_swaps(
        pts in lattice_points(),
        cut in 0usize..64,
        k in 1usize..6,
    ) {
        let half = pts.len() / 2;
        let cut = cut % half.max(1);
        let queries: Vec<Point2> = pts.iter().step_by(5).copied().collect();
        let boxes = [
            Bbox { min: Point2::new([3.0, 3.0]), max: Point2::new([19.0, 19.0]) },
            Bbox { min: Point2::new([10.0, 10.0]), max: Point2::new([14.0, 14.0]) },
        ];
        // Oracle frozen at the pin point.
        let mut frozen = VecIndex::<2>::new();
        SpatialIndex::insert(&mut frozen, &pts[..half]);
        SpatialIndex::delete(&mut frozen, &pts[..cut]);
        let want_knn = frozen.knn_batch(&queries, k);
        let want_rng = frozen.range_batch(&boxes);
        for threads in [1usize, 2] {
            pargeo_parlay::with_threads(threads, || -> Result<(), TestCaseError> {
                for (name, factory) in factories() {
                    for shards in [1usize, 4] {
                        let mut live = ShardedIndex::<2>::new(shards, |_| factory());
                        live.insert(&pts[..half]);
                        live.delete(&pts[..cut]);
                        let view = live.pin();
                        // Later epochs: enough churn to trip rebuilds and
                        // BDL cascade reshuffles on the live side.
                        live.insert(&pts[half..]);
                        live.delete(&pts[cut..half]);
                        live.insert(&pts[..half]);
                        let got_rng = view.range_batch(&boxes);
                        prop_assert_eq!(
                            &got_rng, &want_rng,
                            "{} S={} T={} pinned range", name, shards, threads
                        );
                        let got_knn = view.knn_batch(&queries, k);
                        for (g_row, w_row) in got_knn.iter().zip(&want_knn) {
                            prop_assert_eq!(
                                g_row.len(), w_row.len(),
                                "{} S={} T={} pinned knn len", name, shards, threads
                            );
                            for (g, w) in g_row.iter().zip(w_row) {
                                prop_assert_eq!(
                                    g.dist_sq, w.dist_sq,
                                    "{} S={} T={} pinned knn dist", name, shards, threads
                                );
                            }
                        }
                    }
                }
                Ok(())
            })?;
        }
    }
}
