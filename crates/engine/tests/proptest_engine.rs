//! Property tests for the unified engine: on adversarial (duplicate-heavy,
//! tie-heavy lattice) update streams, every `SpatialIndex` backend must
//! agree with the brute-force `Vec` oracle — identical live sets, identical
//! sorted range reports, identical k-NN distance profiles — at two thread
//! counts.

use pargeo_bdltree::{BdlTree, ZdTree};
use pargeo_engine::{ShardedIndex, SpatialIndex, VecIndex};
use pargeo_geometry::{Bbox, Point2};
use pargeo_kdtree::DynKdTree;
use proptest::prelude::*;

fn lattice_points() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (0i32..24, 0i32..24).prop_map(|(x, y)| Point2::new([x as f64, y as f64])),
        4..200,
    )
}

fn backends() -> Vec<Box<dyn SpatialIndex<2>>> {
    vec![
        Box::new(DynKdTree::<2>::new()),
        Box::new(BdlTree::<2>::with_buffer_size(32)),
        Box::new(ZdTree::<2>::new()),
    ]
}

/// Applies the same interleaved stream to one backend and the oracle, then
/// cross-validates k-NN and range answers.
fn churn_and_check(
    b: &mut dyn SpatialIndex<2>,
    pts: &[Point2],
    cut: usize,
    k: usize,
    q: &Bbox<2>,
) -> Result<(), TestCaseError> {
    let mut oracle = VecIndex::<2>::new();
    let half = pts.len() / 2;
    // insert half, delete a prefix, insert the rest.
    b.insert(&pts[..half]);
    SpatialIndex::insert(&mut oracle, &pts[..half]);
    let want_del = SpatialIndex::delete(&mut oracle, &pts[..cut]);
    prop_assert_eq!(b.delete(&pts[..cut]), want_del, "{}", b.backend_name());
    b.insert(&pts[half..]);
    SpatialIndex::insert(&mut oracle, &pts[half..]);
    prop_assert_eq!(b.len(), oracle.len(), "{}", b.backend_name());

    // Range: exact id equality (sorted-ids contract).
    let got_rows = b.range_batch(std::slice::from_ref(q));
    let want_rows = oracle.range_batch(std::slice::from_ref(q));
    prop_assert_eq!(&got_rows, &want_rows, "{} range", b.backend_name());

    // k-NN: distance profiles must match exactly (lattice distances are
    // exact in f64); ids may differ only among equal-distance ties.
    let queries: Vec<Point2> = pts.iter().step_by(7).copied().collect();
    let got = b.knn_batch(&queries, k);
    let want = oracle.knn_batch(&queries, k);
    for (g_row, w_row) in got.iter().zip(&want) {
        prop_assert_eq!(g_row.len(), w_row.len(), "{} knn len", b.backend_name());
        for (g, w) in g_row.iter().zip(w_row) {
            prop_assert_eq!(g.dist_sq, w.dist_sq, "{} knn dist", b.backend_name());
        }
        // Rows are (dist, id)-ordered: ids must ascend within equal dists.
        for pair in g_row.windows(2) {
            prop_assert!(
                pair[0].dist_sq < pair[1].dist_sq
                    || (pair[0].dist_sq == pair[1].dist_sq && pair[0].id < pair[1].id),
                "{} knn ordering",
                b.backend_name()
            );
        }
    }
    Ok(())
}

type Factory = Box<dyn Fn() -> Box<dyn SpatialIndex<2> + Send + Sync>>;

fn shardable_factories() -> Vec<(&'static str, Factory)> {
    vec![
        ("dyn-kd", Box::new(|| Box::new(DynKdTree::<2>::new()))),
        (
            "bdl",
            Box::new(|| Box::new(BdlTree::<2>::with_buffer_size(32))),
        ),
        ("zd", Box::new(|| Box::new(ZdTree::<2>::new()))),
    ]
}

/// Replays one interleaved stream and returns the exact answer rows the
/// sharded/unsharded/oracle comparison keys on.
#[allow(clippy::type_complexity)]
fn replay(
    index: &mut dyn SpatialIndex<2>,
    pts: &[Point2],
    cut: usize,
    k: usize,
    boxes: &[Bbox<2>],
) -> (
    usize,
    usize,
    Vec<Vec<pargeo_kdtree::Neighbor>>,
    Vec<Vec<u32>>,
) {
    let half = pts.len() / 2;
    index.insert(&pts[..half]);
    let removed = index.delete(&pts[..cut]);
    index.insert(&pts[half..]);
    let queries: Vec<Point2> = pts.iter().step_by(3).copied().collect();
    (
        removed,
        index.len(),
        index.knn_batch(&queries, k),
        index.range_batch(boxes),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backends_match_oracle_under_churn(
        pts in lattice_points(),
        cut in 0usize..100,
        k in 1usize..8,
        x0 in 0i32..24, y0 in 0i32..24, w in 0i32..24, h in 0i32..24,
    ) {
        let cut = cut % (pts.len() / 2).max(1);
        let q = Bbox {
            min: Point2::new([x0 as f64, y0 as f64]),
            max: Point2::new([(x0 + w) as f64, (y0 + h) as f64]),
        };
        for mut b in backends() {
            churn_and_check(b.as_mut(), &pts, cut, k, &q)?;
        }
    }

    /// Sharded execution is invisible in the answers: for S ∈ {1, 2, 8}
    /// (and at two thread counts) a `ShardedIndex` over any backend
    /// returns *exactly* the rows the unsharded backend returns — global
    /// ids included — and agrees with the brute-force oracle. Queries
    /// sweep the whole lattice (straddling every shard boundary) and `k`
    /// runs past per-shard populations, forcing multi-shard expansion.
    #[test]
    fn sharded_is_answer_identical_to_unsharded_and_oracle(
        pts in lattice_points(),
        cut in 0usize..100,
        k in 1usize..32,
        x0 in 0i32..24, y0 in 0i32..24, w in 0i32..24, h in 0i32..24,
    ) {
        let cut = cut % (pts.len() / 2).max(1);
        let boxes = [
            // A random box plus one straddling the center of the lattice
            // (the top-level Morton split at every shard count).
            Bbox {
                min: Point2::new([x0 as f64, y0 as f64]),
                max: Point2::new([(x0 + w) as f64, (y0 + h) as f64]),
            },
            Bbox {
                min: Point2::new([10.0, 10.0]),
                max: Point2::new([14.0, 14.0]),
            },
        ];
        for threads in [1usize, 2] {
            pargeo_parlay::with_threads(threads, || -> Result<(), TestCaseError> {
                let mut oracle = VecIndex::<2>::new();
                let want = replay(&mut oracle, &pts, cut, k, &boxes);
                for (name, factory) in shardable_factories() {
                    let mut plain = factory();
                    let base = replay(plain.as_mut(), &pts, cut, k, &boxes);
                    // Lattice distances are exact in f64, so the canonical
                    // (distance², id) contract makes full rows comparable.
                    prop_assert_eq!(&base, &want, "{} unsharded vs oracle", name);
                    for s in [1usize, 2, 8] {
                        let mut sharded = ShardedIndex::<2>::new(s, |_| factory());
                        let got = replay(&mut sharded, &pts, cut, k, &boxes);
                        prop_assert_eq!(&got, &base, "{} S={} vs unsharded", name, s);
                    }
                }
                Ok(())
            })?;
        }
    }

    #[test]
    fn answers_are_thread_count_invariant(
        pts in lattice_points(),
        cut in 0usize..100,
        k in 1usize..6,
    ) {
        let cut = cut % (pts.len() / 2).max(1);
        let q = Bbox {
            min: Point2::new([4.0, 4.0]),
            max: Point2::new([20.0, 20.0]),
        };
        for threads in [1usize, 2] {
            pargeo_parlay::with_threads(threads, || -> Result<(), TestCaseError> {
                for mut b in backends() {
                    churn_and_check(b.as_mut(), &pts, cut, k, &q)?;
                }
                Ok(())
            })?;
        }
    }
}
