//! Euclidean minimum spanning tree from the WSPD (paper Module 3, the
//! `EMST` row of Table 1).
//!
//! For separation `s ≥ 2` every MST edge is the bichromatic closest pair of
//! some well-separated pair \[25\], so the WSPD pairs' BCCPs are a valid
//! candidate edge set. We run Kruskal over them **lazily**, in the spirit
//! of GeoFilterKruskal \[56\]: pairs are sorted by their box-distance lower
//! bound, BCCPs are realized in parallel batches only once their lower
//! bound surfaces in the edge heap, and pairs whose sides are already
//! connected are filtered before paying for their BCCP.

use crate::bccp::bccp_nodes;
use crate::unionfind::UnionFind;
use crate::wspd::wspd;
use pargeo_geometry::Point;
use pargeo_kdtree::tree::NodeId;
use pargeo_parlay as parlay;
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An MST edge between original point indices, with its length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmstEdge {
    /// First endpoint (index into the input point slice).
    pub u: u32,
    /// Second endpoint (index into the input point slice).
    pub v: u32,
    /// Euclidean length of the edge.
    pub weight: f64,
}

/// Batch of BCCPs realized per refill.
const BATCH: usize = 32_768;

/// Computes the EMST; returns `n - 1` edges for `n > 0` distinct-component
/// inputs (duplicate points yield zero-weight edges as usual).
pub fn emst<const D: usize>(points: &[Point<D>]) -> Vec<EmstEdge> {
    let n = points.len();
    if n <= 1 {
        return Vec::new();
    }
    let (tree, pairs) = wspd(points, 2.0);
    // Lower bounds, sorted ascending (parallel sort by f64 key).
    let mut order: Vec<(f64, u32)> = pairs
        .par_iter()
        .enumerate()
        .map(|(i, &(a, b))| {
            let d = tree.node_bbox(a).dist_sq_to_box(&tree.node_bbox(b));
            (d, i as u32)
        })
        .collect();
    parlay::sort_by_key_f64(&mut order, |&(d, _)| d);

    let mut uf = UnionFind::new(n);
    let mut out: Vec<EmstEdge> = Vec::with_capacity(n - 1);
    // Min-heap of realized edges, keyed by squared length.
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32, u32)>> = BinaryHeap::new();
    let mut next = 0usize; // next unrealized pair in `order`

    // Duplicate-point leaves: a WSPD over collapsed duplicates never emits
    // intra-leaf pairs, so connect duplicates up front (zero-weight edges).
    connect_duplicates(&tree, &mut uf, &mut out);

    while out.len() < n - 1 {
        // Realize pairs until the heap's top is globally minimal.
        let need_refill = match heap.peek() {
            None => next < order.len(),
            Some(Reverse((d, _, _))) => next < order.len() && order[next].0 < d.0,
        };
        if need_refill {
            let hi = (next + BATCH).min(order.len());
            // Also stop the batch at the heap top's key: realizing further
            // is wasted work if the heap already wins.
            let limit = heap.peek().map(|Reverse((d, _, _))| d.0);
            let mut end = hi;
            if let Some(l) = limit {
                end = order[next..hi].partition_point(|&(d, _)| d <= l) + next;
                end = end.max(next + 1);
            }
            let uf_ref = &uf;
            let realize = |&(_, pi): &(f64, u32)| {
                let (a, b) = pairs[pi as usize];
                if sides_connected(&tree, uf_ref, a, b) {
                    return None; // filtered: BCCP can't be an MST edge
                }
                let (u, v, d) = bccp_nodes(&tree, a, b);
                Some((d * d, u, v))
            };
            let realized: Vec<(f64, u32, u32)> = if end - next >= 4096 {
                order[next..end].par_iter().filter_map(realize).collect()
            } else {
                order[next..end].iter().filter_map(realize).collect()
            };
            for (d2, u, v) in realized {
                heap.push(Reverse((OrdF64(d2), u, v)));
            }
            next = end;
            continue;
        }
        let Some(Reverse((_, u, v))) = heap.pop() else {
            break; // no more candidates
        };
        if uf.union(u, v) {
            out.push(EmstEdge {
                u,
                v,
                weight: points[u as usize].dist(&points[v as usize]),
            });
            if out.len() == n - 1 {
                break;
            }
        }
    }
    out
}

/// Cheap pre-filter: both sides already in one component (stale reads are
/// fine — the final `union` re-checks exactly).
fn sides_connected<const D: usize>(
    tree: &pargeo_kdtree::KdTree<D>,
    uf: &UnionFind,
    a: NodeId,
    b: NodeId,
) -> bool {
    let ia = tree.node_point_ids(a)[0];
    let ib = tree.node_point_ids(b)[0];
    // Only exact when both nodes are single-component internally, which
    // holds for singleton/duplicate leaves; for larger nodes this filter
    // simply never fires (conservative).
    tree.node_size(a) == 1 && tree.node_size(b) == 1 && uf.find_readonly(ia) == uf.find_readonly(ib)
}

fn connect_duplicates<const D: usize>(
    tree: &pargeo_kdtree::KdTree<D>,
    uf: &mut UnionFind,
    out: &mut Vec<EmstEdge>,
) {
    // Leaves hold >1 point only when all their points are identical.
    let Some(root) = tree.root_id() else { return };
    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        match tree.node_children(node) {
            Some((l, r)) => {
                stack.push(l);
                stack.push(r);
            }
            None => {
                let ids = tree.node_point_ids(node);
                for w in ids.windows(2) {
                    if uf.union(w[0], w[1]) {
                        out.push(EmstEdge {
                            u: w[0],
                            v: w[1],
                            weight: 0.0,
                        });
                    }
                }
            }
        }
    }
}

/// Total-ordered f64 wrapper (finite values only).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite weights")
    }
}

/// Reference Prim's algorithm for testing (O(n²)); returns the MST weight.
pub fn emst_prim_brute<const D: usize>(points: &[Point<D>]) -> f64 {
    let n = points.len();
    if n <= 1 {
        return 0.0;
    }
    let mut in_tree = vec![false; n];
    let mut dist_sq = vec![f64::INFINITY; n];
    dist_sq[0] = 0.0;
    let mut total = 0.0;
    for _ in 0..n {
        let u = (0..n)
            .filter(|&i| !in_tree[i])
            .min_by(|&i, &j| dist_sq[i].partial_cmp(&dist_sq[j]).unwrap())
            .unwrap();
        in_tree[u] = true;
        if dist_sq[u].is_finite() && dist_sq[u] > 0.0 {
            total += dist_sq[u].sqrt();
        }
        for v in 0..n {
            if !in_tree[v] {
                let d = points[u].dist_sq(&points[v]);
                if d < dist_sq[v] {
                    dist_sq[v] = d;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::{seed_spreader, uniform_cube, SeedSpreaderParams};

    fn check_emst<const D: usize>(points: &[Point<D>]) {
        let edges = emst(points);
        assert_eq!(edges.len(), points.len().saturating_sub(1));
        // Spanning: union-find over the edges connects everything.
        let mut uf = UnionFind::new(points.len());
        for e in &edges {
            uf.union(e.u, e.v);
        }
        assert_eq!(uf.component_count(), 1);
        // Weight matches Prim.
        let total: f64 = edges.iter().map(|e| e.weight).sum();
        let want = emst_prim_brute(points);
        assert!(
            (total - want).abs() <= 1e-7 * (1.0 + want),
            "got {total}, want {want}"
        );
    }

    #[test]
    fn matches_prim_uniform_2d() {
        for seed in 0..3 {
            check_emst(&uniform_cube::<2>(300, seed));
        }
    }

    #[test]
    fn matches_prim_uniform_3d() {
        check_emst(&uniform_cube::<3>(250, 5));
    }

    #[test]
    fn matches_prim_clustered() {
        check_emst(&seed_spreader::<2>(400, 7, SeedSpreaderParams::default()));
    }

    #[test]
    fn duplicates_get_zero_edges() {
        let mut pts = uniform_cube::<2>(50, 8);
        pts.push(pts[0]);
        pts.push(pts[0]);
        let edges = emst(&pts);
        assert_eq!(edges.len(), pts.len() - 1);
        let zero = edges.iter().filter(|e| e.weight == 0.0).count();
        assert!(zero >= 2);
        check_emst(&pts);
    }

    #[test]
    fn tiny_inputs() {
        assert!(emst::<2>(&[]).is_empty());
        assert!(emst(&[Point::new([1.0, 1.0])]).is_empty());
        let two = [Point::new([0.0, 0.0]), Point::new([3.0, 4.0])];
        let e = emst(&two);
        assert_eq!(e.len(), 1);
        assert!((e[0].weight - 5.0).abs() < 1e-12);
    }

    #[test]
    fn larger_instance_spans() {
        let pts = uniform_cube::<2>(5_000, 9);
        let edges = emst(&pts);
        assert_eq!(edges.len(), 4_999);
        let mut uf = UnionFind::new(5_000);
        for e in &edges {
            uf.union(e.u, e.v);
        }
        assert_eq!(uf.component_count(), 1);
    }
}
