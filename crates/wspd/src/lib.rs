//! # pargeo-wspd — well-separated pair decomposition and its clients
//!
//! Paper Modules (2)/(3): the WSPD \[26\] computed from the parallel
//! kd-tree, and the algorithms built on it:
//!
//! * [`mod@wspd`] — Callahan–Kosaraju well-separated pair decomposition with
//!   parallel tree traversal.
//! * [`bccp`] — bichromatic closest pair via pruned dual-tree traversal.
//! * [`mod@emst`] — Euclidean minimum spanning tree: WSPD pairs are candidate
//!   MST edges (for separation `s ≥ 2` the MST is a subset of the pairs'
//!   BCCPs); a lazy batched Kruskal realizes BCCPs only when the pair's
//!   box-distance lower bound surfaces, in the spirit of
//!   GeoFilterKruskal \[56\].
//! * [`mod@spanner`] — the WSPD t-spanner \[26\]: one representative edge per
//!   well-separated pair with `s = 4(t+1)/(t-1)`.
//! * [`unionfind`] — the union-find substrate under Kruskal.
//! * [`dendrogram`] — single-linkage hierarchical clustering from the EMST
//!   (the paper's §2 WSPD → HDBSCAN pipeline).

#![warn(missing_docs)]

pub mod bccp;
pub mod dendrogram;
pub mod emst;
pub mod spanner;
pub mod unionfind;
#[allow(clippy::module_inception)]
pub mod wspd;

pub use bccp::{bccp_nodes, bccp_points};
pub use dendrogram::Dendrogram;
pub use emst::{emst, EmstEdge};
pub use spanner::{spanner, spanner_with_separation};
pub use unionfind::UnionFind;
pub use wspd::{wspd, wspd_from_tree};
