//! Callahan–Kosaraju well-separated pair decomposition over the parallel
//! kd-tree.
//!
//! A pair of tree nodes `(A, B)` is `s`-well-separated when both fit in
//! balls of radius `r` that are at least `s·r` apart. The decomposition
//! covers every unordered point pair exactly once. The recursion follows
//! the standard split-the-larger-node rule and forks in parallel on large
//! subproblems.

use pargeo_geometry::Point;
use pargeo_kdtree::tree::{KdTree, NodeId, SplitRule};

const SEQ_CUTOFF: usize = 2048;

/// Builds a leaf-size-1 kd-tree over `points` and returns it together with
/// its `s`-WSPD. Keeping the tree lets callers resolve [`NodeId`]s to point
/// sets.
pub fn wspd<const D: usize>(points: &[Point<D>], s: f64) -> (KdTree<D>, Vec<(NodeId, NodeId)>) {
    // Leaf size 1: every pair must be splittable down to single points
    // (identical duplicates collapse into one leaf, which is fine — a
    // zero-diameter leaf is well-separated from everything disjoint).
    let tree = KdTree::build_with_leaf_size(points, SplitRule::ObjectMedian, 1);
    let pairs = wspd_from_tree(&tree, s);
    (tree, pairs)
}

/// The `s`-WSPD of an existing tree. The tree must have been built with
/// leaf size 1 (asserted).
pub fn wspd_from_tree<const D: usize>(tree: &KdTree<D>, s: f64) -> Vec<(NodeId, NodeId)> {
    assert!(s > 0.0, "separation must be positive");
    assert!(tree.leaf_size() == 1, "WSPD requires a leaf-size-1 kd-tree");
    let Some(root) = tree.root_id() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    split_node(tree, root, s, &mut out);
    out
}

/// Recurse within one node: pairs among the left child, among the right
/// child, and across.
fn split_node<const D: usize>(
    tree: &KdTree<D>,
    u: NodeId,
    s: f64,
    out: &mut Vec<(NodeId, NodeId)>,
) {
    let Some((l, r)) = tree.node_children(u) else {
        return; // single leaf: no pairs within
    };
    if tree.node_size(u) >= SEQ_CUTOFF {
        let ((mut a, mut b), mut c) = rayon::join(
            || {
                rayon::join(
                    || {
                        let mut v = Vec::new();
                        split_node(tree, l, s, &mut v);
                        v
                    },
                    || {
                        let mut v = Vec::new();
                        split_node(tree, r, s, &mut v);
                        v
                    },
                )
            },
            || {
                let mut v = Vec::new();
                find_pairs(tree, l, r, s, &mut v);
                v
            },
        );
        out.append(&mut a);
        out.append(&mut b);
        out.append(&mut c);
    } else {
        split_node(tree, l, s, out);
        split_node(tree, r, s, out);
        find_pairs(tree, l, r, s, out);
    }
}

/// Emits the well-separated pairs covering `A × B` (disjoint nodes).
fn find_pairs<const D: usize>(
    tree: &KdTree<D>,
    a: NodeId,
    b: NodeId,
    s: f64,
    out: &mut Vec<(NodeId, NodeId)>,
) {
    let ba = tree.node_bbox(a);
    let bb = tree.node_bbox(b);
    if ba.well_separated(&bb, s) {
        out.push((a, b));
        return;
    }
    // Split the node with the larger diameter.
    let split_a = match (tree.node_children(a), tree.node_children(b)) {
        (None, None) => {
            // Two leaves that are not well separated can only be identical
            // zero-diameter leaves at the same location — impossible for
            // disjoint tree nodes with positive separation distance — or a
            // numerical corner; emit them as a pair (distance 0 pairs are
            // exact for duplicates).
            out.push((a, b));
            return;
        }
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (Some(_), Some(_)) => ba.diag_sq() >= bb.diag_sq(),
    };
    let big = tree.node_size(a).max(tree.node_size(b));
    if split_a {
        let (l, r) = tree.node_children(a).unwrap();
        if big >= SEQ_CUTOFF {
            let (mut x, mut y) = rayon::join(
                || {
                    let mut v = Vec::new();
                    find_pairs(tree, l, b, s, &mut v);
                    v
                },
                || {
                    let mut v = Vec::new();
                    find_pairs(tree, r, b, s, &mut v);
                    v
                },
            );
            out.append(&mut x);
            out.append(&mut y);
        } else {
            find_pairs(tree, l, b, s, out);
            find_pairs(tree, r, b, s, out);
        }
    } else {
        let (l, r) = tree.node_children(b).unwrap();
        if big >= SEQ_CUTOFF {
            let (mut x, mut y) = rayon::join(
                || {
                    let mut v = Vec::new();
                    find_pairs(tree, a, l, s, &mut v);
                    v
                },
                || {
                    let mut v = Vec::new();
                    find_pairs(tree, a, r, s, &mut v);
                    v
                },
            );
            out.append(&mut x);
            out.append(&mut y);
        } else {
            find_pairs(tree, a, l, s, out);
            find_pairs(tree, a, r, s, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_cube;

    /// Every unordered point pair must be covered by exactly one WSPD pair.
    fn check_coverage<const D: usize>(points: &[Point<D>], s: f64) {
        let (tree, pairs) = wspd(points, s);
        let n = points.len();
        let mut covered = vec![0u32; n * n];
        for &(a, b) in &pairs {
            for &i in tree.node_point_ids(a) {
                for &j in tree.node_point_ids(b) {
                    assert_ne!(i, j, "pair covers a point against itself");
                    let (lo, hi) = (i.min(j) as usize, i.max(j) as usize);
                    covered[lo * n + hi] += 1;
                }
            }
        }
        for i in 0..n {
            for j in i + 1..n {
                assert_eq!(
                    covered[i * n + j],
                    1,
                    "pair ({i},{j}) covered {} times",
                    covered[i * n + j]
                );
            }
        }
        // Separation: the emitted boxes satisfy the definition.
        for &(a, b) in &pairs {
            let ba = tree.node_bbox(a);
            let bb = tree.node_bbox(b);
            assert!(
                ba.well_separated(&bb, s) || (ba.diag_sq() == 0.0 && bb.diag_sq() == 0.0),
                "unseparated pair emitted"
            );
        }
    }

    #[test]
    fn coverage_small_uniform() {
        check_coverage(&uniform_cube::<2>(60, 1), 2.0);
        check_coverage(&uniform_cube::<3>(40, 2), 2.0);
    }

    #[test]
    fn coverage_high_separation() {
        check_coverage(&uniform_cube::<2>(50, 3), 8.0);
    }

    #[test]
    fn coverage_with_duplicates() {
        let mut pts = uniform_cube::<2>(30, 4);
        let d = pts[0];
        pts.push(d);
        pts.push(d);
        // Duplicates share a leaf; pairs among them are not representable
        // (distance 0). Coverage check must treat the collapsed leaf as
        // covering its internal pairs implicitly — so here we only check
        // distinct positions.
        let (tree, pairs) = wspd(&pts, 2.0);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &pairs {
            for &i in tree.node_point_ids(a) {
                for &j in tree.node_point_ids(b) {
                    seen.insert((i.min(j), i.max(j)));
                }
            }
        }
        // All cross pairs of distinct positions covered.
        for i in 0..pts.len() as u32 {
            for j in i + 1..pts.len() as u32 {
                if pts[i as usize] != pts[j as usize] {
                    assert!(seen.contains(&(i, j)), "({i},{j}) uncovered");
                }
            }
        }
    }

    #[test]
    fn pair_count_is_linear_ish() {
        // O(s^d n) pairs for uniform data: sanity check the constant.
        let n = 4_000;
        let (_, pairs) = wspd(&uniform_cube::<2>(n, 5), 2.0);
        assert!(pairs.len() < 80 * n, "pairs = {}", pairs.len());
        assert!(pairs.len() >= n / 2, "suspiciously few pairs");
    }

    #[test]
    fn empty_and_singleton() {
        let (_, pairs) = wspd::<2>(&[], 2.0);
        assert!(pairs.is_empty());
        let (_, pairs) = wspd(&[Point::new([1.0, 2.0])], 2.0);
        assert!(pairs.is_empty());
    }
}
