//! Single-linkage clustering from the EMST — the paper's §2 pipeline
//! "WSPD → EMST → hierarchical clustering (HDBSCAN)" \[56\].
//!
//! Sorting the MST edges by weight and union-finding them in order yields
//! the single-linkage dendrogram; cutting it at a distance threshold (or
//! into `k` clusters) gives flat clusterings. This is the core of HDBSCAN
//! with `min_pts = 1` (mutual reachability distance degenerates to the
//! Euclidean distance).

use crate::emst::{emst, EmstEdge};
use crate::unionfind::UnionFind;
use pargeo_geometry::Point;

/// A dendrogram node: internal nodes merge two clusters at `height`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// Dendrogram-node id of the left child (`< n` ⇒ leaf/point id).
    pub left: u32,
    /// Dendrogram-node id of the right child.
    pub right: u32,
    /// Merge distance (the MST edge length).
    pub height: f64,
    /// Number of points below this node.
    pub size: u32,
}

/// The single-linkage dendrogram over `n` points: `merges[i]` creates node
/// `n + i`. Ordered by non-decreasing height.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    /// Number of leaves (input points).
    pub n: usize,
    /// `n - 1` merges for a connected input (fewer if duplicates collapse
    /// to zero-weight edges — still `n - 1`, they merge at height 0).
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Builds the dendrogram from points (computes the EMST internally).
    pub fn build<const D: usize>(points: &[Point<D>]) -> Self {
        Self::from_mst_edges(points.len(), emst(points))
    }

    /// Builds from a precomputed MST edge list.
    pub fn from_mst_edges(n: usize, mut edges: Vec<EmstEdge>) -> Self {
        edges.sort_by(|a, b| a.weight.partial_cmp(&b.weight).unwrap());
        let mut uf = UnionFind::new(n);
        // Representative root -> current dendrogram node id and size.
        let mut node_of: Vec<u32> = (0..n as u32).collect();
        let mut size_of: Vec<u32> = vec![1; n];
        let mut merges = Vec::with_capacity(edges.len());
        let mut next_id = n as u32;
        for e in edges {
            let (ru, rv) = (uf.find(e.u), uf.find(e.v));
            if ru == rv {
                continue;
            }
            let (lu, lv) = (node_of[ru as usize], node_of[rv as usize]);
            let size = size_of[ru as usize] + size_of[rv as usize];
            merges.push(Merge {
                left: lu.min(lv),
                right: lu.max(lv),
                height: e.weight,
                size,
            });
            uf.union(ru, rv);
            let root = uf.find(ru);
            node_of[root as usize] = next_id;
            size_of[root as usize] = size;
            next_id += 1;
        }
        Dendrogram { n, merges }
    }

    /// Flat clustering: cut all merges with `height > threshold`.
    /// Returns per-point cluster labels in `0..num_clusters`.
    pub fn cut_at(&self, threshold: f64) -> Vec<u32> {
        let mut uf = UnionFind::new(self.n);
        // Re-run the merges below the threshold over the leaves. Each
        // merge's children expand to leaf sets; running the original MST
        // edges is equivalent, but we only stored node ids — so walk the
        // merges and union any pair of leaves via their recorded subtree
        // representatives. Simpler: remember one representative leaf per
        // dendrogram node.
        let mut rep: Vec<u32> = (0..self.n as u32).collect();
        rep.reserve(self.merges.len());
        for m in &self.merges {
            let rl = rep[m.left as usize];
            let rr = rep[m.right as usize];
            if m.height <= threshold {
                uf.union(rl, rr);
            }
            rep.push(rl);
        }
        relabel(&mut uf, self.n)
    }

    /// Flat clustering into (at most) `k` clusters: undo the `k - 1`
    /// highest merges.
    pub fn cut_into(&self, k: usize) -> Vec<u32> {
        let keep = self.merges.len().saturating_sub(k.saturating_sub(1));
        let mut uf = UnionFind::new(self.n);
        let mut rep: Vec<u32> = (0..self.n as u32).collect();
        for (i, m) in self.merges.iter().enumerate() {
            let rl = rep[m.left as usize];
            let rr = rep[m.right as usize];
            if i < keep {
                uf.union(rl, rr);
            }
            rep.push(rl);
        }
        relabel(&mut uf, self.n)
    }
}

fn relabel(uf: &mut UnionFind, n: usize) -> Vec<u32> {
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut map: std::collections::HashMap<u32, u32> = Default::default();
    for i in 0..n as u32 {
        let r = uf.find(i);
        let l = *map.entry(r).or_insert_with(|| {
            let l = next;
            next += 1;
            l
        });
        labels[i as usize] = l;
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_geometry::Point2;

    fn two_blobs() -> Vec<Point2> {
        let mut pts = Vec::new();
        for i in 0..40 {
            let t = i as f64 * 0.1;
            pts.push(Point2::new([t.sin() * 0.4, t.cos() * 0.4]));
            pts.push(Point2::new([100.0 + t.cos() * 0.4, t.sin() * 0.4]));
        }
        pts
    }

    #[test]
    fn dendrogram_shape() {
        let pts = two_blobs();
        let d = Dendrogram::build(&pts);
        assert_eq!(d.n, pts.len());
        assert_eq!(d.merges.len(), pts.len() - 1);
        // Heights non-decreasing.
        assert!(d
            .merges
            .windows(2)
            .all(|w| w[0].height <= w[1].height + 1e-12));
        // The final merge covers everything.
        assert_eq!(d.merges.last().unwrap().size as usize, pts.len());
    }

    #[test]
    fn cut_at_separates_blobs() {
        let pts = two_blobs();
        let d = Dendrogram::build(&pts);
        let labels = d.cut_at(10.0); // far below the 100-unit gap
        let l0 = labels[0];
        let l1 = labels[1];
        assert_ne!(l0, l1);
        for (i, &l) in labels.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(l, l0, "point {i}");
            } else {
                assert_eq!(l, l1, "point {i}");
            }
        }
    }

    #[test]
    fn cut_into_k() {
        let pts = two_blobs();
        let d = Dendrogram::build(&pts);
        let labels = d.cut_into(2);
        let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
        assert_eq!(distinct.len(), 2);
        let all_one = d.cut_into(1);
        assert!(all_one.iter().all(|&l| l == 0));
        let each_own = d.cut_into(pts.len());
        let distinct: std::collections::HashSet<u32> = each_own.iter().copied().collect();
        assert_eq!(distinct.len(), pts.len());
    }

    #[test]
    fn cut_matches_mst_edge_threshold_semantics() {
        // Cutting at t must produce exactly the components of the graph
        // with MST edges of weight ≤ t.
        let pts = pargeo_datagen::uniform_cube::<2>(200, 3);
        let edges = emst(&pts);
        let d = Dendrogram::from_mst_edges(pts.len(), edges.clone());
        let t = {
            let mut w: Vec<f64> = edges.iter().map(|e| e.weight).collect();
            w.sort_by(|a, b| a.partial_cmp(b).unwrap());
            w[w.len() / 2] // median edge weight
        };
        let labels = d.cut_at(t);
        let mut uf = UnionFind::new(pts.len());
        for e in &edges {
            if e.weight <= t {
                uf.union(e.u, e.v);
            }
        }
        for i in 0..pts.len() as u32 {
            for j in 0..pts.len() as u32 {
                assert_eq!(
                    labels[i as usize] == labels[j as usize],
                    uf.connected(i, j),
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn duplicates_merge_at_height_zero() {
        let mut pts = vec![Point2::new([0.0, 0.0]); 3];
        pts.push(Point2::new([5.0, 0.0]));
        let d = Dendrogram::build(&pts);
        assert_eq!(d.merges[0].height, 0.0);
        let labels = d.cut_at(1.0);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[3]);
    }
}
