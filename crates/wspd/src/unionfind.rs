//! Union-find with path halving and union by rank — the Kruskal substrate.

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Read-only find (no compression) — usable through a shared reference,
    /// e.g. as a concurrent filter (may observe a stale root; callers must
    /// re-check under `find` before relying on it).
    pub fn find_readonly(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `false` if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// True iff `a` and `b` share a set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = UnionFind::new(10);
        assert_eq!(uf.component_count(), 10);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert!(uf.union(0, 3));
        assert!(uf.connected(1, 2));
        assert!(!uf.connected(0, 9));
        assert_eq!(uf.component_count(), 7);
    }

    #[test]
    fn chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 1..n as u32 {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.component_count(), 1);
        assert_eq!(uf.find(0), uf.find(n as u32 - 1));
        assert_eq!(uf.find_readonly(0), uf.find_readonly(n as u32 - 1));
    }
}
