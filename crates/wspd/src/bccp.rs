//! Bichromatic closest pair via pruned dual-tree traversal (paper Module 2).

use pargeo_geometry::Point;
use pargeo_kdtree::tree::{KdTree, NodeId, SplitRule};

/// Closest pair between the point sets under two nodes of the same tree:
/// `(original id in a, original id in b, distance)`. Standard dual-tree
/// descent with box-distance pruning.
pub fn bccp_nodes<const D: usize>(tree: &KdTree<D>, a: NodeId, b: NodeId) -> (u32, u32, f64) {
    let mut best = (u32::MAX, u32::MAX, f64::INFINITY);
    bccp_rec(tree, tree, a, b, &mut best);
    (best.0, best.1, best.2.sqrt())
}

/// Bichromatic closest pair between two point sets: `(index into a, index
/// into b, distance)`.
pub fn bccp_points<const D: usize>(a: &[Point<D>], b: &[Point<D>]) -> (u32, u32, f64) {
    assert!(!a.is_empty() && !b.is_empty(), "bccp of empty set");
    let ta = KdTree::build(a, SplitRule::ObjectMedian);
    let tb = KdTree::build(b, SplitRule::ObjectMedian);
    let mut best = (u32::MAX, u32::MAX, f64::INFINITY);
    bccp_rec(
        &ta,
        &tb,
        ta.root_id().unwrap(),
        tb.root_id().unwrap(),
        &mut best,
    );
    (best.0, best.1, best.2.sqrt())
}

/// `best` holds `(id_a, id_b, dist²)`.
fn bccp_rec<const D: usize>(
    ta: &KdTree<D>,
    tb: &KdTree<D>,
    a: NodeId,
    b: NodeId,
    best: &mut (u32, u32, f64),
) {
    let lower = ta.node_bbox(a).dist_sq_to_box(&tb.node_bbox(b));
    if lower >= best.2 {
        return;
    }
    let ca = ta.node_children(a);
    let cb = tb.node_children(b);
    match (ca, cb) {
        (None, None) => {
            for i in ta.node_range(a) {
                let pa = ta.point_at(i);
                let ia = ta.original_id(i);
                for j in tb.node_range(b) {
                    let d = tb.points().dist_sq(j, &pa);
                    if d < best.2 {
                        *best = (ia, tb.original_id(j), d);
                    }
                }
            }
        }
        (Some((l, r)), None) => {
            let mut kids = [(l, b), (r, b)];
            order_by_lower(ta, tb, &mut kids);
            for (x, y) in kids {
                bccp_rec(ta, tb, x, y, best);
            }
        }
        (None, Some((l, r))) => {
            let mut kids = [(a, l), (a, r)];
            order_by_lower(ta, tb, &mut kids);
            for (x, y) in kids {
                bccp_rec(ta, tb, x, y, best);
            }
        }
        (Some((al, ar)), Some((bl, br))) => {
            let mut kids = [(al, bl), (al, br), (ar, bl), (ar, br)];
            order_by_lower(ta, tb, &mut kids);
            for (x, y) in kids {
                bccp_rec(ta, tb, x, y, best);
            }
        }
    }
}

/// Visits the most promising child pair first (tightens the bound early).
fn order_by_lower<const D: usize, const K: usize>(
    ta: &KdTree<D>,
    tb: &KdTree<D>,
    kids: &mut [(NodeId, NodeId); K],
) {
    kids.sort_by(|x, y| {
        let dx = ta.node_bbox(x.0).dist_sq_to_box(&tb.node_bbox(x.1));
        let dy = ta.node_bbox(y.0).dist_sq_to_box(&tb.node_bbox(y.1));
        dx.partial_cmp(&dy).unwrap()
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_cube;

    fn brute<const D: usize>(a: &[Point<D>], b: &[Point<D>]) -> f64 {
        let mut best = f64::INFINITY;
        for pa in a {
            for pb in b {
                best = best.min(pa.dist(pb));
            }
        }
        best
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..4 {
            let a = uniform_cube::<2>(500, seed);
            let b: Vec<Point<2>> = uniform_cube::<2>(400, seed + 100)
                .into_iter()
                .map(|p| p + Point::new([10.0, 0.0]))
                .collect();
            let (ia, ib, d) = bccp_points(&a, &b);
            assert!((d - brute(&a, &b)).abs() < 1e-9);
            assert!((a[ia as usize].dist(&b[ib as usize]) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn separated_clusters() {
        let a = uniform_cube::<3>(300, 7);
        let b: Vec<Point<3>> = uniform_cube::<3>(300, 8)
            .into_iter()
            .map(|p| p + Point::new([1e5, 1e5, 1e5]))
            .collect();
        let (_, _, d) = bccp_points(&a, &b);
        assert!((d - brute(&a, &b)).abs() < 1e-6);
    }

    #[test]
    fn touching_sets_zero_distance() {
        let mut a = uniform_cube::<2>(100, 9);
        let b = uniform_cube::<2>(100, 10);
        a.push(b[50]);
        let (_, _, d) = bccp_points(&a, &b);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn single_points() {
        let a = [Point::new([0.0, 0.0])];
        let b = [Point::new([3.0, 4.0])];
        let (ia, ib, d) = bccp_points(&a, &b);
        assert_eq!((ia, ib), (0, 0));
        assert!((d - 5.0).abs() < 1e-12);
    }
}
