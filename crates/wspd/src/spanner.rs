//! WSPD-based t-spanner (paper Module 3, Table 1 row "Spanner").
//!
//! One representative edge per well-separated pair with separation
//! `s = 4(t+1)/(t-1)` yields a t-spanner \[26\]: for every point pair the
//! graph distance is at most `t ×` the Euclidean distance.

use crate::wspd::wspd;
use pargeo_geometry::Point;
use rayon::prelude::*;

/// A spanner edge between original point indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpannerEdge {
    /// First endpoint (index into the input point slice).
    pub u: u32,
    /// Second endpoint (index into the input point slice).
    pub v: u32,
    /// Euclidean length of the edge.
    pub weight: f64,
}

/// Builds a `t`-spanner (`t > 1`).
pub fn spanner<const D: usize>(points: &[Point<D>], t: f64) -> Vec<SpannerEdge> {
    assert!(t > 1.0, "stretch must exceed 1");
    let s = 4.0 * (t + 1.0) / (t - 1.0);
    spanner_with_separation(points, s)
}

/// Builds the spanner for an explicit WSPD separation `s` (stretch
/// `t = (s+4)/(s-4)` for `s > 4`).
pub fn spanner_with_separation<const D: usize>(points: &[Point<D>], s: f64) -> Vec<SpannerEdge> {
    let (tree, pairs) = wspd(points, s);
    pairs
        .par_iter()
        .map(|&(a, b)| {
            let u = tree.node_point_ids(a)[0];
            let v = tree.node_point_ids(b)[0];
            SpannerEdge {
                u,
                v,
                weight: points[u as usize].dist(&points[v as usize]),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_cube;

    /// All-pairs shortest paths over the spanner (Floyd–Warshall; tiny n).
    fn stretch_ok<const D: usize>(points: &[Point<D>], edges: &[SpannerEdge], t: f64) {
        let n = points.len();
        let mut dist = vec![f64::INFINITY; n * n];
        for i in 0..n {
            dist[i * n + i] = 0.0;
        }
        for e in edges {
            let (u, v) = (e.u as usize, e.v as usize);
            dist[u * n + v] = dist[u * n + v].min(e.weight);
            dist[v * n + u] = dist[v * n + u].min(e.weight);
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = dist[i * n + k] + dist[k * n + j];
                    if via < dist[i * n + j] {
                        dist[i * n + j] = via;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                let direct = points[i].dist(&points[j]);
                assert!(
                    dist[i * n + j] <= t * direct + 1e-9,
                    "stretch violated for ({i},{j}): {} > {t} × {direct}",
                    dist[i * n + j]
                );
            }
        }
    }

    #[test]
    fn stretch_two() {
        let pts = uniform_cube::<2>(120, 1);
        let edges = spanner(&pts, 2.0);
        stretch_ok(&pts, &edges, 2.0);
    }

    #[test]
    fn stretch_1_5_3d() {
        let pts = uniform_cube::<3>(80, 2);
        let edges = spanner(&pts, 1.5);
        stretch_ok(&pts, &edges, 1.5);
    }

    #[test]
    fn spanner_is_sparse() {
        let n = 2_000;
        let pts = uniform_cube::<2>(n, 3);
        let edges = spanner(&pts, 2.0);
        // Linear in n for constant t and dimension.
        assert!(edges.len() < 200 * n, "edges = {}", edges.len());
        assert!(edges.len() >= n - 1);
    }

    #[test]
    fn tighter_stretch_means_more_edges() {
        let pts = uniform_cube::<2>(1_000, 4);
        let loose = spanner(&pts, 3.0).len();
        let tight = spanner(&pts, 1.2).len();
        assert!(tight > loose, "tight={tight} loose={loose}");
    }
}
