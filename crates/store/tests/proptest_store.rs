//! Property tests for the GeoStore façade: random mixed workloads
//! (interleaved writes, spatial queries, and derived-structure requests
//! with duplicate-heavy lattice points) replayed on every backend, with
//! every `Response` cross-validated against a fresh recomputation from an
//! independent mirror and against the `VecIndex`-oracle store — at two
//! thread counts.

use pargeo_geometry::{Bbox, GeoError, Point2};
use pargeo_store::{digest_responses, Backend, GeoStore, Request, Response};
use proptest::prelude::*;

/// One raw op descriptor; interpreted against the evolving store state.
#[derive(Debug, Clone)]
enum OpSpec {
    /// Insert `len` fresh pool points.
    Insert {
        len: usize,
    },
    /// Delete (by value) a window of previously inserted pool points.
    Delete {
        start: usize,
        len: usize,
    },
    Knn {
        k: usize,
    },
    Range {
        x: i32,
        y: i32,
        w: i32,
        h: i32,
    },
    /// 0 = hull, 1 = seb, 2 = closest pair, 3 = emst, 4 = knn graph,
    /// 5 = delaunay graph.
    Derived {
        which: u8,
        k: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    // The shim's `prop_oneof!` is unweighted; repeating the insert and
    // derived arms biases the mix toward them.
    prop_oneof![
        (1usize..24).prop_map(|len| OpSpec::Insert { len }),
        (1usize..24).prop_map(|len| OpSpec::Insert { len }),
        (0usize..200, 1usize..16).prop_map(|(start, len)| OpSpec::Delete { start, len }),
        (0usize..6).prop_map(|k| OpSpec::Knn { k }),
        (0i32..16, 0i32..16, 0i32..16, 0i32..16).prop_map(|(x, y, w, h)| OpSpec::Range {
            x,
            y,
            w,
            h
        }),
        (0u8..6, 0usize..4).prop_map(|(which, k)| OpSpec::Derived { which, k }),
        (0u8..6, 0usize..4).prop_map(|(which, k)| OpSpec::Derived { which, k }),
    ]
}

/// Duplicate-heavy lattice pool: collisions exercise multi-kill deletes,
/// collinear/coincident live sets exercise the typed degenerate paths.
fn pool() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (0i32..16, 0i32..16).prop_map(|(x, y)| Point2::new([x as f64, y as f64])),
        24..200,
    )
}

/// The independent mirror: `(store id, point)` pairs, live only.
struct Mirror {
    live: Vec<(u32, Point2)>,
    next_id: u32,
}

impl Mirror {
    fn insert(&mut self, batch: &[Point2]) {
        for &p in batch {
            self.live.push((self.next_id, p));
            self.next_id += 1;
        }
    }

    fn delete(&mut self, batch: &[Point2]) -> usize {
        let victims: std::collections::HashSet<[u64; 2]> =
            batch.iter().map(|p| p.bits_key()).collect();
        let before = self.live.len();
        self.live.retain(|(_, p)| !victims.contains(&p.bits_key()));
        before - self.live.len()
    }

    fn ids(&self) -> Vec<u32> {
        self.live.iter().map(|&(id, _)| id).collect()
    }

    fn pts(&self) -> Vec<Point2> {
        self.live.iter().map(|&(_, p)| p).collect()
    }
}

/// Interprets `ops` into concrete requests, stepping the mirror alongside.
/// Returns the request stream plus, per request, the mirror's live
/// snapshot (ids, points) *at that request* for fresh recomputation.
type Snapshots = Vec<Option<(Vec<u32>, Vec<Point2>)>>;
fn interpret(pts: &[Point2], ops: &[OpSpec]) -> (Vec<Request<2>>, Snapshots) {
    let mut mirror = Mirror {
        live: Vec::new(),
        next_id: 0,
    };
    let mut cursor = 0usize;
    let mut inserted: Vec<Point2> = Vec::new();
    let mut reqs = Vec::new();
    let mut snaps: Snapshots = Vec::new();
    for op in ops {
        match op {
            OpSpec::Insert { len } => {
                let got = (*len).min(pts.len() - cursor.min(pts.len()));
                let batch = pts[cursor..cursor + got].to_vec();
                cursor += got;
                inserted.extend_from_slice(&batch);
                mirror.insert(&batch);
                reqs.push(Request::Insert(batch));
                snaps.push(None);
            }
            OpSpec::Delete { start, len } => {
                if inserted.is_empty() {
                    continue;
                }
                let s = start % inserted.len();
                let e = (s + len).min(inserted.len());
                let batch = inserted[s..e].to_vec();
                mirror.delete(&batch);
                reqs.push(Request::Delete(batch));
                snaps.push(None);
            }
            OpSpec::Knn { k } => {
                let queries: Vec<Point2> = pts.iter().step_by(5).take(8).copied().collect();
                reqs.push(Request::Knn { queries, k: *k });
                snaps.push(Some((mirror.ids(), mirror.pts())));
            }
            OpSpec::Range { x, y, w, h } => {
                let q = Bbox {
                    min: Point2::new([*x as f64, *y as f64]),
                    max: Point2::new([(*x + *w) as f64, (*y + *h) as f64]),
                };
                reqs.push(Request::Range(vec![q]));
                snaps.push(Some((mirror.ids(), mirror.pts())));
            }
            OpSpec::Derived { which, k } => {
                reqs.push(match which {
                    0 => Request::Hull,
                    1 => Request::Seb,
                    2 => Request::ClosestPair,
                    3 => Request::Emst,
                    4 => Request::KnnGraph { k: *k },
                    _ => Request::DelaunayGraph,
                });
                snaps.push(Some((mirror.ids(), mirror.pts())));
            }
        }
    }
    (reqs, snaps)
}

fn remap(ids: &[u32], positions: &[u32]) -> Vec<u32> {
    positions.iter().map(|&p| ids[p as usize]).collect()
}

/// Validates one response against a fresh recomputation on the live
/// snapshot `(ids, pts)` the mirror recorded for that request.
fn check_response(
    backend: &str,
    i: usize,
    req: &Request<2>,
    resp: &Result<Response<2>, GeoError>,
    ids: &[u32],
    live: &[Point2],
) -> Result<(), TestCaseError> {
    let ctx = format!("{backend} request {i}");
    match req {
        Request::Knn { k: 0, .. } => {
            prop_assert_eq!(
                resp,
                &Err(GeoError::BadParameter {
                    op: "knn",
                    what: "k must be positive"
                }),
                "{}",
                ctx
            );
        }
        Request::Knn { k, .. } if *k > live.len() => {
            prop_assert_eq!(
                resp,
                &Err(GeoError::KTooLarge {
                    op: "knn",
                    k: *k,
                    n: live.len()
                }),
                "{}",
                ctx
            );
        }
        Request::Knn { .. } | Request::Range(_) => {
            // Spatial queries are validated against the oracle store by
            // the caller (exact equality); nothing to recompute here.
            prop_assert!(resp.is_ok(), "{}: {:?}", ctx, resp);
        }
        Request::Hull => {
            let want = pargeo_hull::try_hull2d(live).map(|h| remap(ids, &h));
            prop_assert_eq!(
                resp,
                &want.map(Response::Hull),
                "{}: memoized hull != fresh recompute",
                ctx
            );
        }
        Request::Seb => match (resp, pargeo_seb::try_seb(live)) {
            (Ok(Response::Seb(got)), Ok(want)) => {
                // Floats may wiggle across thread counts; radius parity
                // within tolerance, containment exactly.
                prop_assert!(
                    (got.radius - want.radius).abs() <= 1e-9 * (1.0 + want.radius),
                    "{}: seb radius {} vs fresh {}",
                    ctx,
                    got.radius,
                    want.radius
                );
            }
            (Err(e), Err(w)) => prop_assert_eq!(*e, w, "{}", ctx),
            (got, want) => prop_assert!(false, "{}: {:?} vs {:?}", ctx, got, want),
        },
        Request::ClosestPair => {
            let want = pargeo_closestpair::try_closest_pair(live).map(|cp| {
                let (a, b) = (ids[cp.a as usize], ids[cp.b as usize]);
                (a.min(b), a.max(b), cp.dist)
            });
            let got = resp.clone().map(|r| match r {
                Response::ClosestPair(cp) => (cp.a, cp.b, cp.dist),
                other => panic!("wrong variant {other:?}"),
            });
            // Equal-distance pairs are genuinely ambiguous on a lattice;
            // distances must match exactly, ids only when unique. Compare
            // distances, and endpoints' actual distance.
            match (got, want) {
                (Ok((a, b, d)), Ok((_, _, wd))) => {
                    prop_assert_eq!(d, wd, "{}: closest-pair distance", ctx);
                    let pa = live[ids.iter().position(|&x| x == a).unwrap()];
                    let pb = live[ids.iter().position(|&x| x == b).unwrap()];
                    prop_assert_eq!(pa.dist(&pb), d, "{}: pair endpoints", ctx);
                }
                (Err(e), Err(w)) => prop_assert_eq!(e, w, "{}", ctx),
                (got, want) => prop_assert!(false, "{}: {:?} vs {:?}", ctx, got, want),
            }
        }
        Request::Emst => {
            let want = if live.len() < 2 {
                Err(GeoError::TooFewPoints {
                    op: "emst",
                    needed: 2,
                    got: live.len(),
                })
            } else {
                Ok(pargeo_wspd::emst(live))
            };
            match (resp, want) {
                (Ok(Response::Emst(got)), Ok(want)) => {
                    prop_assert_eq!(got.len(), want.len(), "{}: emst edge count", ctx);
                    // MSTs with tied weights are ambiguous; total weight is
                    // not (same WSPD code both sides ⇒ exact equality).
                    let gw: f64 = got.iter().map(|e| e.weight).sum();
                    let ww: f64 = want.iter().map(|e| e.weight).sum();
                    prop_assert_eq!(gw, ww, "{}: emst total weight", ctx);
                }
                (Err(e), Err(w)) => prop_assert_eq!(*e, w, "{}", ctx),
                (got, want) => prop_assert!(false, "{}: {:?} vs {:?}", ctx, got, want),
            }
        }
        Request::KnnGraph { k } => {
            let want = if live.is_empty() {
                Err(GeoError::EmptyInput { op: "knn_graph" })
            } else if *k == 0 {
                Err(GeoError::BadParameter {
                    op: "knn_graph",
                    what: "k must be positive",
                })
            } else if *k >= live.len() {
                Err(GeoError::KTooLarge {
                    op: "knn_graph",
                    k: *k,
                    n: live.len(),
                })
            } else {
                Ok(pargeo_graphgen::knn_graph(live, *k)
                    .into_iter()
                    .map(|(u, v)| (ids[u as usize], ids[v as usize]))
                    .collect::<Vec<_>>())
            };
            prop_assert_eq!(
                resp,
                &want.map(Response::KnnGraph),
                "{}: memoized knn graph != fresh recompute",
                ctx
            );
        }
        Request::DelaunayGraph => {
            // The store's canonical Delaunay path is the index-order
            // incremental build (fixed insertion schedule ⇒ unique triangle
            // set even on cocircular lattice inputs); mirror it exactly.
            let want = pargeo_delaunay::DelaunayIncremental::try_build(live)
                .and_then(|d| d.edges())
                .map(|edges| {
                    edges
                        .into_iter()
                        .map(|(u, v)| (ids[u as usize], ids[v as usize]))
                        .collect::<Vec<_>>()
                });
            prop_assert_eq!(
                resp,
                &want.map(Response::DelaunayGraph),
                "{}: memoized delaunay != fresh recompute",
                ctx
            );
        }
        _ => {}
    }
    Ok(())
}

fn run_case(pts: &[Point2], ops: &[OpSpec], threads: usize) -> Result<(), TestCaseError> {
    let (reqs, snaps) = interpret(pts, ops);

    let mut oracle = GeoStore::<2>::builder()
        .backend(Backend::Oracle)
        .threads(threads)
        .build();
    let oracle_responses = oracle.execute(&reqs);

    for backend in Backend::all() {
        let mut store = GeoStore::<2>::builder()
            .backend(backend)
            .threads(threads)
            .build();
        let responses = store.execute(&reqs);
        let name = store.backend().label();
        prop_assert_eq!(responses.len(), reqs.len(), "{}", name);

        // Cross-backend/oracle: digests must agree in full.
        prop_assert_eq!(
            digest_responses(&responses),
            digest_responses(&oracle_responses),
            "{} digest != oracle digest",
            name
        );

        for (i, ((req, resp), snap)) in reqs.iter().zip(&responses).zip(&snaps).enumerate() {
            // Spatial queries: exact row equality with the oracle store
            // (the deterministic (distance², id) / sorted-ids contracts).
            if matches!(req, Request::Knn { .. } | Request::Range(_)) {
                prop_assert_eq!(
                    resp,
                    &oracle_responses[i],
                    "{} request {} != oracle",
                    name,
                    i
                );
            }
            if let Some((ids, live)) = snap {
                check_response(name, i, req, resp, ids, live)?;
            }
        }
    }
    Ok(())
}

/// Deterministic anchor: a scripted case must flow through every code
/// path the property relies on (writes, cache hits, invalidation,
/// degenerate errors), so a silently-empty generator can't pass.
#[test]
fn scripted_case_exercises_the_property_paths() {
    let pts: Vec<Point2> = (0..64)
        .map(|i| Point2::new([(i % 8) as f64, (i / 8) as f64]))
        .collect();
    let ops = vec![
        OpSpec::Insert { len: 20 },
        OpSpec::Derived { which: 0, k: 2 }, // hull (miss)
        OpSpec::Derived { which: 0, k: 2 }, // hull (hit)
        OpSpec::Delete { start: 0, len: 8 },
        OpSpec::Derived { which: 3, k: 2 }, // emst after a write (miss)
        OpSpec::Knn { k: 3 },
        OpSpec::Range {
            x: 0,
            y: 0,
            w: 8,
            h: 8,
        },
        OpSpec::Derived { which: 5, k: 2 }, // delaunay
    ];
    let (reqs, snaps) = interpret(&pts, &ops);
    assert_eq!(reqs.len(), 8);
    assert_eq!(snaps.iter().filter(|s| s.is_some()).count(), 6);
    run_case(&pts, &ops, 1).unwrap();

    // The same stream on one store: the repeated hull must be a hit.
    let mut store = GeoStore::<2>::builder().build();
    let responses = store.execute(&reqs);
    assert!(responses.iter().all(|r| r.is_ok()));
    let stats = store.stats();
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.misses, 3);
    assert_eq!(stats.write_epoch, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mixed workloads: every response — including memoized
    /// hull/EMST served after interleaved writes — must match a fresh
    /// recomputation on an independent mirror and the oracle store, at
    /// two thread counts.
    #[test]
    fn store_matches_mirror_and_oracle_under_mixed_traffic(
        pts in pool(),
        ops in prop::collection::vec(op_strategy(), 4..28),
    ) {
        for threads in [1usize, 2] {
            run_case(&pts, &ops, threads)?;
        }
    }
}
