//! Property tests for snapshot isolation: random interleavings of write
//! epochs, snapshot pins, live derived requests (memo churn and rebuild
//! epochs), and out-of-order snapshot drops. Every snapshot pinned at
//! epoch E must keep answering the full read battery — k-NN, range, all
//! derived structures, statistics — **bit-identically to a brute-force
//! frozen copy of the store at E** (an oracle-backed store replayed to
//! the same write prefix), no matter how many insert, delete, and
//! memo-rebuild epochs the live store applies afterwards.

use pargeo_geometry::{Bbox, Point2};
use pargeo_store::{Backend, GeoStore, Request, StoreSnapshot};
use proptest::prelude::*;

/// One raw op descriptor; interpreted against the evolving store state.
#[derive(Debug, Clone)]
enum OpSpec {
    /// Open a write epoch inserting `len` fresh pool points.
    Insert { len: usize },
    /// Open a write epoch deleting a window of inserted points (lattice
    /// collisions make these multi-kill, and a delete epoch forces the
    /// memoized derived engines down the rebuild path).
    Delete { start: usize, len: usize },
    /// A derived request on the *live* store: churns the memo cache so
    /// pins capture hit/miss/rebuild states, not just fresh ones.
    /// 0 = hull, 1 = emst, 2 = delaunay graph.
    LiveDerived { which: u8 },
    /// Pin a snapshot of the current epoch.
    Pin,
    /// Retire one pinned snapshot, selected anywhere in the pin list —
    /// drops happen out of pin order by construction.
    DropPin { sel: usize },
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    // The shim's `prop_oneof!` is unweighted; repeating arms biases the
    // mix toward writes and pins.
    prop_oneof![
        (1usize..20).prop_map(|len| OpSpec::Insert { len }),
        (1usize..20).prop_map(|len| OpSpec::Insert { len }),
        (0usize..160, 1usize..14).prop_map(|(start, len)| OpSpec::Delete { start, len }),
        (0u8..3).prop_map(|which| OpSpec::LiveDerived { which }),
        (0u8..1).prop_map(|_| OpSpec::Pin),
        (0u8..1).prop_map(|_| OpSpec::Pin),
        (0usize..8).prop_map(|sel| OpSpec::DropPin { sel }),
    ]
}

/// Duplicate-heavy lattice pool: collisions exercise multi-kill deletes
/// and the typed degenerate derived paths inside pinned snapshots.
fn pool() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (0i32..16, 0i32..16).prop_map(|(x, y)| Point2::new([x as f64, y as f64])),
        24..160,
    )
}

/// A live pin plus the write prefix that produced its epoch — enough to
/// reconstruct the brute-force frozen copy it must match.
struct Pin {
    snap: StoreSnapshot<2>,
    prefix: Vec<Request<2>>,
}

/// The read battery: every request class a snapshot serves.
fn battery(queries: &[Point2], qbox: Bbox<2>) -> Vec<Request<2>> {
    vec![
        Request::Knn {
            queries: queries.to_vec(),
            k: 3,
        },
        Request::Knn {
            queries: queries.to_vec(),
            k: 1,
        },
        Request::Range(vec![qbox]),
        Request::Hull,
        Request::Seb,
        Request::ClosestPair,
        Request::Emst,
        Request::KnnGraph { k: 2 },
        Request::DelaunayGraph,
    ]
}

/// Asserts `pin` answers the battery bit-identically to a frozen copy at
/// its epoch: a fresh oracle-backed store replayed with the same write
/// prefix. Ids, distances, typed errors — everything must be exact.
fn check_pin(pin: &Pin, queries: &[Point2], qbox: Bbox<2>, ctx: &str) -> Result<(), TestCaseError> {
    let mut frozen = GeoStore::<2>::builder().backend(Backend::Oracle).build();
    // Replay one request per call: the live store applied each write as
    // its own epoch, so the frozen copy must too (a batched `execute`
    // would coalesce adjacent writes into fewer epochs).
    for req in &pin.prefix {
        let _ = frozen.run(req.clone());
    }

    prop_assert_eq!(pin.snap.len(), frozen.len(), "{}: pinned live count", ctx);
    prop_assert_eq!(
        pin.snap.stats().write_epoch,
        frozen.stats().write_epoch,
        "{}: pinned epoch",
        ctx
    );
    let pinned_live: usize = pin.snap.shard_snapshots().iter().map(|s| s.live).sum();
    prop_assert_eq!(pinned_live, pin.snap.len(), "{}: shard partition", ctx);

    let reqs = battery(queries, qbox);
    let got = pin.snap.execute(&reqs);
    for (i, (req, resp)) in reqs.iter().zip(&got).enumerate() {
        let want = frozen.run(req.clone());
        prop_assert_eq!(
            resp,
            &want,
            "{}: battery request {} ({:?}) != frozen copy",
            ctx,
            i,
            req
        );
    }
    Ok(())
}

fn run_case(
    pts: &[Point2],
    ops: &[OpSpec],
    backend: Backend,
    shards: usize,
) -> Result<(), TestCaseError> {
    let mut store = GeoStore::<2>::builder()
        .backend(backend)
        .shards(shards)
        .build();
    let queries: Vec<Point2> = pts.iter().step_by(7).take(6).copied().collect();
    let qbox = Bbox::from_points(&pts[..pts.len() / 2]);
    let name = backend.label();

    let mut prefix: Vec<Request<2>> = Vec::new();
    let mut inserted: Vec<Point2> = Vec::new();
    let mut cursor = 0usize;
    let mut pins: Vec<Pin> = Vec::new();

    for (step, op) in ops.iter().enumerate() {
        match op {
            OpSpec::Insert { len } => {
                let got = (*len).min(pts.len() - cursor.min(pts.len()));
                let batch = pts[cursor..cursor + got].to_vec();
                cursor += got;
                inserted.extend_from_slice(&batch);
                let req = Request::Insert(batch);
                let _ = store.run(req.clone());
                prefix.push(req);
            }
            OpSpec::Delete { start, len } => {
                if inserted.is_empty() {
                    continue;
                }
                let s = start % inserted.len();
                let e = (s + len).min(inserted.len());
                let req = Request::Delete(inserted[s..e].to_vec());
                let _ = store.run(req.clone());
                prefix.push(req);
            }
            OpSpec::LiveDerived { which } => {
                // Memo churn only; correctness of live answers is covered
                // by proptest_store. A derived request after a delete
                // epoch drives the rebuild path the pins must survive.
                let _ = store.run(match which {
                    0 => Request::Hull,
                    1 => Request::Emst,
                    _ => Request::DelaunayGraph,
                });
            }
            OpSpec::Pin => {
                pins.push(Pin {
                    snap: store.pin(),
                    prefix: prefix.clone(),
                });
            }
            OpSpec::DropPin { sel } => {
                if pins.is_empty() {
                    continue;
                }
                let victim = sel % pins.len();
                // `swap_remove` retires pins out of pin order on purpose.
                drop(pins.swap_remove(victim));
                // A surviving pin must be unaffected by the retirement.
                if let Some(pin) = pins.first() {
                    let ctx = format!("{name} S={shards} step {step} after drop");
                    check_pin(pin, &queries, qbox, &ctx)?;
                }
            }
        }
    }

    // Every surviving pin answers its own epoch after ALL later epochs —
    // including whatever rebuilds and memo churn the tail applied.
    for (i, pin) in pins.iter().enumerate() {
        let ctx = format!("{name} S={shards} final pin {i}");
        check_pin(pin, &queries, qbox, &ctx)?;
    }
    Ok(())
}

/// Deterministic anchor: a scripted interleaving must flow through every
/// path the property relies on (pins across delete + rebuild epochs,
/// memo churn, out-of-order drops), so a silently-degenerate generator
/// can't pass.
#[test]
fn scripted_interleaving_exercises_the_property_paths() {
    let pts: Vec<Point2> = (0..120)
        .map(|i| Point2::new([(i % 12) as f64, (i / 12) as f64]))
        .collect();
    let ops = vec![
        OpSpec::Insert { len: 19 },
        OpSpec::LiveDerived { which: 0 },
        OpSpec::Pin,
        OpSpec::Insert { len: 19 },
        OpSpec::Pin,
        OpSpec::Delete { start: 3, len: 13 },
        OpSpec::LiveDerived { which: 2 },
        OpSpec::Pin,
        OpSpec::DropPin { sel: 1 },
        OpSpec::Insert { len: 19 },
        OpSpec::Delete { start: 20, len: 9 },
        OpSpec::LiveDerived { which: 1 },
    ];
    for shards in [1usize, 4] {
        run_case(&pts, &ops, Backend::DynKd, shards).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random pin/write/read/drop interleavings: a snapshot pinned at
    /// epoch E equals the brute-force frozen copy at E regardless of
    /// later insert, delete, and memo-rebuild epochs, for every backend.
    #[test]
    fn pinned_snapshots_equal_frozen_copies(
        pts in pool(),
        ops in prop::collection::vec(op_strategy(), 4..22),
    ) {
        for backend in Backend::all() {
            run_case(&pts, &ops, backend, 1)?;
        }
        // The sharded executor pins per-shard roots; same property.
        run_case(&pts, &ops, Backend::DynKd, 4)?;
        run_case(&pts, &ops, Backend::Oracle, 1)?;
    }
}
