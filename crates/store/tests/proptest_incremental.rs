//! Property tests for delta maintenance under churn: random streams of
//! interleaved inserts, deletes, and derived-structure requests replayed
//! on an incremental store (the default) and cross-validated three ways —
//! against a `.incremental(false)` wholesale-recompute store, against an
//! independent per-request full recompute from a live-set mirror, and
//! across every backend × shard count × thread count. Bit-identical
//! answers everywhere is the tentpole's correctness anchor.

use pargeo_geometry::{GeoError, Point2};
use pargeo_store::{digest_responses, Backend, DerivedKind, GeoStore, MemoPath, Request, Response};
use proptest::prelude::*;

/// One raw op; interpreted against the evolving stream state.
#[derive(Debug, Clone)]
enum OpSpec {
    /// Insert `len` fresh pool points.
    Insert { len: usize },
    /// Delete (by value) a window of previously inserted pool points.
    Delete { start: usize, len: usize },
    /// 0 = hull, 1 = delaunay graph, 2 = emst, 3 = closest pair.
    Derived { which: u8 },
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    // Insert- and derived-heavy mix: the incremental path only fires on
    // insert-only epochs, so the stream must produce long insert runs
    // punctuated by occasional deletes (which force the rebuild path).
    prop_oneof![
        (1usize..24).prop_map(|len| OpSpec::Insert { len }),
        (1usize..24).prop_map(|len| OpSpec::Insert { len }),
        (1usize..24).prop_map(|len| OpSpec::Insert { len }),
        (0usize..200, 1usize..10).prop_map(|(start, len)| OpSpec::Delete { start, len }),
        (0u8..4).prop_map(|which| OpSpec::Derived { which }),
        (0u8..4).prop_map(|which| OpSpec::Derived { which }),
        (0u8..4).prop_map(|which| OpSpec::Derived { which }),
        (0u8..4).prop_map(|which| OpSpec::Derived { which }),
    ]
}

/// Duplicate-heavy lattice pool: cocircular quadruples everywhere (the
/// worst case for Delaunay uniqueness), duplicates and collinear runs for
/// the degenerate hull paths.
fn pool() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (0i32..16, 0i32..16).prop_map(|(x, y)| Point2::new([x as f64, y as f64])),
        24..200,
    )
}

/// Interprets `ops` into a request stream, tracking the live set so each
/// derived request gets an independent `(ids, points)` snapshot.
type Snapshots = Vec<Option<(Vec<u32>, Vec<Point2>)>>;
fn interpret(pts: &[Point2], ops: &[OpSpec]) -> (Vec<Request<2>>, Snapshots) {
    let mut live: Vec<(u32, Point2)> = Vec::new();
    let mut next_id = 0u32;
    let mut cursor = 0usize;
    let mut inserted: Vec<Point2> = Vec::new();
    let mut reqs = Vec::new();
    let mut snaps: Snapshots = Vec::new();
    for op in ops {
        match op {
            OpSpec::Insert { len } => {
                let got = (*len).min(pts.len().saturating_sub(cursor));
                let batch = pts[cursor..cursor + got].to_vec();
                cursor += got;
                inserted.extend_from_slice(&batch);
                for &p in &batch {
                    live.push((next_id, p));
                    next_id += 1;
                }
                reqs.push(Request::Insert(batch));
                snaps.push(None);
            }
            OpSpec::Delete { start, len } => {
                if inserted.is_empty() {
                    continue;
                }
                let s = start % inserted.len();
                let e = (s + len).min(inserted.len());
                let batch = inserted[s..e].to_vec();
                let victims: std::collections::HashSet<[u64; 2]> =
                    batch.iter().map(|p| p.bits_key()).collect();
                live.retain(|(_, p)| !victims.contains(&p.bits_key()));
                reqs.push(Request::Delete(batch));
                snaps.push(None);
            }
            OpSpec::Derived { which } => {
                reqs.push(match which {
                    0 => Request::Hull,
                    1 => Request::DelaunayGraph,
                    2 => Request::Emst,
                    _ => Request::ClosestPair,
                });
                snaps.push(Some((
                    live.iter().map(|&(id, _)| id).collect(),
                    live.iter().map(|&(_, p)| p).collect(),
                )));
            }
        }
    }
    (reqs, snaps)
}

fn remap(ids: &[u32], positions: &[u32]) -> Vec<u32> {
    positions.iter().map(|&p| ids[p as usize]).collect()
}

/// The independent full-recompute check for the two maintainable kinds:
/// whatever path the store took (hit, incremental apply, rebuild, fresh),
/// the answer must be bit-identical to the canonical algorithm run from
/// scratch on the live snapshot.
fn check_maintained(
    ctx: &str,
    req: &Request<2>,
    resp: &Result<Response<2>, GeoError>,
    ids: &[u32],
    live: &[Point2],
) -> Result<(), TestCaseError> {
    match req {
        Request::Hull => {
            let want = pargeo_hull::try_hull2d(live).map(|h| remap(ids, &h));
            prop_assert_eq!(
                resp,
                &want.map(Response::Hull),
                "{}: hull != independent recompute",
                ctx
            );
        }
        Request::DelaunayGraph => {
            let want = pargeo_delaunay::DelaunayIncremental::try_build(live)
                .and_then(|d| d.edges())
                .map(|edges| {
                    edges
                        .into_iter()
                        .map(|(u, v)| (ids[u as usize], ids[v as usize]))
                        .collect::<Vec<_>>()
                });
            prop_assert_eq!(
                resp,
                &want.map(Response::DelaunayGraph),
                "{}: delaunay != independent recompute",
                ctx
            );
        }
        _ => {}
    }
    Ok(())
}

fn run_case(pts: &[Point2], ops: &[OpSpec], threads: usize) -> Result<(), TestCaseError> {
    let (reqs, snaps) = interpret(pts, ops);

    // The wholesale-recompute baseline: same backend family, incremental
    // maintenance off, unsharded.
    let mut baseline = GeoStore::<2>::builder()
        .backend(Backend::DynKd)
        .incremental(false)
        .threads(threads)
        .build();
    let want = baseline.execute(&reqs);
    let want_digest = digest_responses(&want);

    for backend in Backend::all() {
        for shards in [1usize, 4] {
            let mut store = GeoStore::<2>::builder()
                .backend(backend)
                .shards(shards)
                .threads(threads)
                .build();
            let responses = store.execute(&reqs);
            let name = format!("{} S={shards} T={threads}", backend.label());
            prop_assert_eq!(responses.len(), want.len(), "{}", &name);
            prop_assert_eq!(
                digest_responses(&responses),
                want_digest,
                "{}: incremental digest != wholesale-recompute digest",
                &name
            );
            for (i, ((req, resp), snap)) in reqs.iter().zip(&responses).zip(&snaps).enumerate() {
                // Bit-identical per response, not just digest-equal.
                prop_assert_eq!(
                    resp,
                    &want[i],
                    "{} request {}: incremental != wholesale recompute",
                    &name,
                    i
                );
                if let Some((ids, live)) = snap {
                    check_maintained(&format!("{} request {i}", &name), req, resp, ids, live)?;
                }
            }
        }
    }
    Ok(())
}

/// Deterministic anchor: a scripted churn case must drive the memo state
/// machine through every path — Fresh on first compute, Incremental across
/// an insert-only epoch, Rebuilt after a delete — with the counters and
/// `derived_path` to prove it, so a generator drifting away from the
/// incremental path can't silently pass the property.
#[test]
fn scripted_churn_walks_every_memo_path() {
    // First batch spans the full lattice bbox (corners included), so the
    // follow-up inserts stay inside the Delaunay engine's bounds and the
    // incremental path is reachable for both maintainable kinds.
    let corners = [
        Point2::new([0.0, 0.0]),
        Point2::new([15.0, 0.0]),
        Point2::new([0.0, 15.0]),
        Point2::new([15.0, 15.0]),
    ];
    let interior: Vec<Point2> = (0..48)
        .map(|i| Point2::new([(1 + i % 7) as f64 * 2.0, (1 + i / 7) as f64 * 2.0]))
        .collect();

    // Threshold 1.0 pins the walk: the structure is small enough here
    // that the default 0.5 budget can legitimately refuse the Delaunay
    // batch (cavity kills are ~4.5 per insert even when nothing is
    // "damaged"), and this test is about path mechanics, not the
    // crossover policy — the bench and the property cover the default.
    let mut store: GeoStore<2> = GeoStore::builder().damage_threshold(1.0).build();
    store.insert(&corners);
    store.insert(&interior[..32]);

    // Fresh computes.
    let h1 = store.hull().unwrap();
    let d1 = store.delaunay_graph().unwrap();
    assert_eq!(store.derived_path(DerivedKind::Hull), Some(MemoPath::Fresh));
    assert_eq!(
        store.derived_path(DerivedKind::DelaunayGraph),
        Some(MemoPath::Fresh)
    );

    // Repeat without a write: hits, path unchanged.
    assert_eq!(store.hull().unwrap(), h1);
    assert_eq!(store.derived_path(DerivedKind::Hull), Some(MemoPath::Fresh));

    // Insert-only epoch: both engines absorb the batch in place.
    store.insert(&interior[32..40]);
    let h2 = store.hull().unwrap();
    let d2 = store.delaunay_graph().unwrap();
    assert_eq!(
        store.derived_path(DerivedKind::Hull),
        Some(MemoPath::Incremental)
    );
    assert_eq!(
        store.derived_path(DerivedKind::DelaunayGraph),
        Some(MemoPath::Incremental)
    );

    // Delete epoch: engines die, the next compute is a rebuild.
    store.delete(&interior[..4]);
    let h3 = store.hull().unwrap();
    let d3 = store.delaunay_graph().unwrap();
    assert_eq!(
        store.derived_path(DerivedKind::Hull),
        Some(MemoPath::Rebuilt)
    );
    assert_eq!(
        store.derived_path(DerivedKind::DelaunayGraph),
        Some(MemoPath::Rebuilt)
    );

    // Counters agree with the walk: 6 computes (2 fresh + 2 incremental +
    // 2 rebuilds), 1 hit, and misses covering all three compute paths.
    let stats = store.stats();
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.misses, 6);
    assert_eq!(stats.cache.incremental, 2);
    assert_eq!(stats.cache.rebuilds, 2);

    // Every answer must equal the wholesale-recompute store's on the same
    // stream — replay and compare the three epochs' worth of results.
    let mut plain: GeoStore<2> = GeoStore::builder().incremental(false).build();
    plain.insert(&corners);
    plain.insert(&interior[..32]);
    let p1 = (plain.hull().unwrap(), plain.delaunay_graph().unwrap());
    plain.insert(&interior[32..40]);
    let p2 = (plain.hull().unwrap(), plain.delaunay_graph().unwrap());
    plain.delete(&interior[..4]);
    let p3 = (plain.hull().unwrap(), plain.delaunay_graph().unwrap());
    assert_eq!((h1, d1), p1, "fresh epoch diverged");
    assert_eq!((h2, d2), p2, "incremental epoch diverged");
    assert_eq!((h3, d3), p3, "rebuild epoch diverged");
    assert_eq!(plain.stats().cache.incremental, 0, "baseline stayed plain");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random churn: every response from the delta-maintaining store —
    /// across all backends, shard counts {1, 4}, and two thread counts —
    /// must be bit-identical to the wholesale-recompute baseline and to an
    /// independent per-request recompute on a live-set mirror.
    #[test]
    fn incremental_store_is_bit_identical_under_churn(
        pts in pool(),
        ops in prop::collection::vec(op_strategy(), 4..24),
    ) {
        for threads in [1usize, 2] {
            run_case(&pts, &ops, threads)?;
        }
    }
}
