//! Epoch-pinned store snapshots — the read side of the pipelined executor.
//!
//! [`StoreSnapshot`] is what [`GeoStore::pin`](crate::GeoStore::pin)
//! returns: a fully owned, immutable capture of the store at one write
//! epoch. It holds the index's pinned [`SnapshotView`] (O(1) for the
//! copy-on-write kd-tree and the sharded executor, clone-freeze
//! otherwise), the compacted live view, the epoch's memoized derived
//! values, and the store statistics as of the pin — everything needed to
//! answer every read request class *bit-identically to a frozen copy of
//! the store* while later write epochs apply on the live side.
//!
//! Lifecycle: **pin → overlap → retire.** The pipelined executor pins one
//! snapshot per read run (after the run's derived-memo ensure pass, so
//! memo state matches the epoch-serial planner exactly), overlaps the
//! run's read fan-out against the snapshot with the *next* write epoch's
//! apply on the live store, and retires the snapshot by dropping it —
//! which releases the pinned `Arc`s (memory cost: one copy-on-write delta
//! per pinned epoch plus whatever superseded structures the pin kept
//! alive) and decrements the `geostore_pinned_views` gauge. Snapshots may
//! outlive rebuilds and may be dropped in any order.

use crate::derived::{self, DerivedVal};
use crate::obs::{self, StoreObs};
use crate::request::{DerivedKind, Request, Response, StoreStats};
use pargeo_engine::{Snapshot, SnapshotView};
use pargeo_geometry::{Ball, Bbox, GeoError, GeoResult, Point};
use pargeo_kdtree::Neighbor;
use pargeo_parlay as parlay;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Compacted live view shared with the store: `pts[i]` is the live point
/// with store id `ids[i]`, ids strictly ascending.
pub(crate) type LiveView<const D: usize> = (Vec<u32>, Vec<Point<D>>);

/// An immutable capture of a [`GeoStore`](crate::GeoStore) at one write
/// epoch, created by [`GeoStore::pin`](crate::GeoStore::pin).
///
/// Every read request class — k-NN, range, statistics, and all derived
/// structures — answers against the pinned epoch, bit-identically to a
/// frozen copy of the store taken at pin time, no matter how many write
/// epochs (including delete and rebuild epochs) the live store applies
/// afterwards. Derived structures memoized at pin time are served from
/// the pinned cache; kinds not yet memoized are computed on demand over
/// the pinned live set (and memoized inside the snapshot).
///
/// [`Stats`](Request::Stats) and [`shard_snapshots`](Self::shard_snapshots)
/// report the *pinned* epoch, never the live one.
pub struct StoreSnapshot<const D: usize> {
    view: Box<dyn SnapshotView<D>>,
    live_view: Arc<LiveView<D>>,
    stats: StoreStats,
    /// Derived values at the pinned epoch: seeded from the store's memo
    /// cache, extended lazily for kinds first requested through the
    /// snapshot. A `Mutex`, not `RwLock`: contention is one lock per
    /// derived request, and the store side never touches it.
    derived: Mutex<HashMap<DerivedKind, GeoResult<DerivedVal<D>>>>,
    obs: Option<Arc<StoreObs>>,
}

impl<const D: usize> StoreSnapshot<D> {
    /// Assembles a pinned snapshot (store-side constructor) and counts it
    /// into the `geostore_pinned_views` gauge.
    pub(crate) fn new(
        view: Box<dyn SnapshotView<D>>,
        live_view: Arc<LiveView<D>>,
        stats: StoreStats,
        derived: HashMap<DerivedKind, GeoResult<DerivedVal<D>>>,
        obs: Option<Arc<StoreObs>>,
    ) -> Self {
        if let Some(o) = &obs {
            o.pinned_views.add(1);
        }
        Self {
            view,
            live_view,
            stats,
            derived: Mutex::new(derived),
            obs,
        }
    }

    /// Store statistics as of the pin (index snapshot, write epoch, cache
    /// counters — all frozen at pin time).
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The write epoch this snapshot was pinned at.
    pub fn write_epoch(&self) -> u64 {
        self.stats.write_epoch
    }

    /// Number of live points at the pinned epoch.
    pub fn len(&self) -> usize {
        self.live_view.0.len()
    }

    /// True iff the pinned epoch held no live points.
    pub fn is_empty(&self) -> bool {
        self.live_view.0.is_empty()
    }

    /// Per-shard epoch statistics as of the pin — one [`Snapshot`] per
    /// shard, reported against the pinned epoch rather than the live one.
    pub fn shard_snapshots(&self) -> Vec<Snapshot> {
        self.view.shard_snapshots()
    }

    /// Answers a run of read requests data-parallel against the pinned
    /// epoch, one `Result` per request in request order. Write requests
    /// (`Insert`/`Delete`) come back as typed errors: a snapshot is
    /// immutable by construction.
    pub fn execute(&self, requests: &[Request<D>]) -> Vec<GeoResult<Response<D>>> {
        parlay::map_batch(requests, 2, |req| self.answer(req))
    }

    /// Answers one request against the pinned epoch (see
    /// [`execute`](Self::execute)).
    pub fn answer(&self, req: &Request<D>) -> GeoResult<Response<D>> {
        let Some(o) = self.obs.clone() else {
            return self.answer_inner(req);
        };
        let class = obs::class_of(req);
        if class == 4 {
            // Derived latency is sampled inside the lazy-compute path
            // only — pinned-cache reads mirror the store's hit path,
            // which is unsampled there too.
            return self.answer_inner(req);
        }
        let t = Instant::now();
        let resp = self.answer_inner(req);
        o.class_nanos[class].record_duration(t.elapsed());
        resp
    }

    fn answer_inner(&self, req: &Request<D>) -> GeoResult<Response<D>> {
        match req {
            Request::Insert(_) | Request::Delete(_) => Err(GeoError::BadParameter {
                op: "geostore_snapshot",
                what: "write request against a pinned snapshot",
            }),
            Request::Knn { queries, k } => {
                if *k == 0 {
                    return Err(GeoError::BadParameter {
                        op: "knn",
                        what: "k must be positive",
                    });
                }
                if *k > self.live_view.0.len() {
                    return Err(GeoError::KTooLarge {
                        op: "knn",
                        k: *k,
                        n: self.live_view.0.len(),
                    });
                }
                Ok(Response::Knn(self.view.knn_batch(queries, *k)))
            }
            Request::Range(boxes) => Ok(Response::Range(self.view.range_batch(boxes))),
            Request::Stats => Ok(Response::Stats(self.stats)),
            _ => {
                let Some(kind) = req.derived_kind() else {
                    return Err(GeoError::BadParameter {
                        op: "geostore_snapshot",
                        what: "unroutable request against a pinned snapshot",
                    });
                };
                self.derived_value(kind).map(|v| match v {
                    DerivedVal::Hull(h) => Response::Hull(h),
                    DerivedVal::Seb(b) => Response::Seb(b),
                    DerivedVal::ClosestPair(cp) => Response::ClosestPair(cp),
                    DerivedVal::Emst(e) => Response::Emst(e),
                    DerivedVal::Graph(g) => match kind {
                        DerivedKind::KnnGraph(_) => Response::KnnGraph(g),
                        _ => Response::DelaunayGraph(g),
                    },
                })
            }
        }
    }

    /// The derived value for `kind` at the pinned epoch: served from the
    /// pinned memo when present, computed over the pinned live set (and
    /// memoized in the snapshot) otherwise. Values are bit-identical to
    /// what a frozen copy of the store would compute at the pinned epoch.
    fn derived_value(&self, kind: DerivedKind) -> GeoResult<DerivedVal<D>> {
        let mut memo = self.derived.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = memo.get(&kind) {
            return v.clone();
        }
        let t = self.obs.as_ref().map(|_| Instant::now());
        let (ids, pts) = &*self.live_view;
        let value = derived::compute(kind, ids, pts);
        if let (Some(o), Some(t)) = (&self.obs, t) {
            o.class_nanos[4].record_duration(t.elapsed());
        }
        memo.insert(kind, value.clone());
        value
    }

    // ---- typed sugar over `answer` -------------------------------------

    /// The `k` nearest pinned-live neighbors of every query.
    pub fn knn(&self, queries: &[Point<D>], k: usize) -> GeoResult<Vec<Vec<Neighbor>>> {
        match self.answer(&Request::Knn {
            queries: queries.to_vec(),
            k,
        })? {
            Response::Knn(rows) => Ok(rows),
            _ => unreachable!(),
        }
    }

    /// Sorted pinned-live ids inside every query box.
    pub fn range(&self, boxes: &[Bbox<D>]) -> GeoResult<Vec<Vec<u32>>> {
        match self.answer(&Request::Range(boxes.to_vec()))? {
            Response::Range(rows) => Ok(rows),
            _ => unreachable!(),
        }
    }

    /// Convex hull vertex ids of the pinned live set.
    pub fn hull(&self) -> GeoResult<Vec<u32>> {
        match self.answer(&Request::Hull)? {
            Response::Hull(h) => Ok(h),
            _ => unreachable!(),
        }
    }

    /// Smallest enclosing ball of the pinned live set.
    pub fn seb(&self) -> GeoResult<Ball<D>> {
        match self.answer(&Request::Seb)? {
            Response::Seb(b) => Ok(b),
            _ => unreachable!(),
        }
    }

    /// Closest pair of the pinned live set, over store ids.
    pub fn closest_pair(&self) -> GeoResult<pargeo_closestpair::ClosestPair> {
        match self.answer(&Request::ClosestPair)? {
            Response::ClosestPair(cp) => Ok(cp),
            _ => unreachable!(),
        }
    }

    /// EMST edges of the pinned live set, over store ids.
    pub fn emst(&self) -> GeoResult<Vec<pargeo_wspd::EmstEdge>> {
        match self.answer(&Request::Emst)? {
            Response::Emst(e) => Ok(e),
            _ => unreachable!(),
        }
    }

    /// Directed k-NN graph of the pinned live set, over store ids.
    pub fn knn_graph(&self, k: usize) -> GeoResult<Vec<(u32, u32)>> {
        match self.answer(&Request::KnnGraph { k })? {
            Response::KnnGraph(g) => Ok(g),
            _ => unreachable!(),
        }
    }

    /// Delaunay edges of the pinned live set, over store ids (2D only).
    pub fn delaunay_graph(&self) -> GeoResult<Vec<(u32, u32)>> {
        match self.answer(&Request::DelaunayGraph)? {
            Response::DelaunayGraph(g) => Ok(g),
            _ => unreachable!(),
        }
    }
}

impl<const D: usize> Drop for StoreSnapshot<D> {
    fn drop(&mut self) {
        if let Some(o) = &self.obs {
            o.pinned_views.add(-1);
        }
    }
}
