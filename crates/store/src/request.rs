//! The typed request/response surface of the store.
//!
//! Every capability of the library — batched index updates, batched
//! spatial queries, and whole-dataset derived structures — is one variant
//! of [`Request`]; the store answers each with the matching [`Response`]
//! variant or a typed [`GeoError`](pargeo_geometry::GeoError). Keeping the
//! surface a plain enum (rather than one method per algorithm) is what
//! lets a *mixed* batch travel through the epoch planner as data.

use pargeo_closestpair::ClosestPair;
use pargeo_engine::Snapshot;
use pargeo_geometry::{Ball, Bbox, Point};
use pargeo_kdtree::Neighbor;
use pargeo_parlay::mix64 as mix;
use pargeo_wspd::EmstEdge;

/// A derived structure computed over the whole live point set.
///
/// Derived structures are memoized per write epoch: asking twice without
/// an intervening write returns the cached value; any insert or delete
/// invalidates all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DerivedKind {
    /// Convex hull vertices (2D: CCW order; 3D: sorted ascending).
    Hull,
    /// Smallest enclosing ball.
    Seb,
    /// Closest pair of live points.
    ClosestPair,
    /// Euclidean minimum spanning tree.
    Emst,
    /// Directed k-nearest-neighbor graph with this `k`.
    KnnGraph(usize),
    /// Delaunay edge graph (2D only).
    DelaunayGraph,
}

impl DerivedKind {
    /// Short label for reports and benches.
    pub fn label(&self) -> &'static str {
        match self {
            DerivedKind::Hull => "hull",
            DerivedKind::Seb => "seb",
            DerivedKind::ClosestPair => "closest-pair",
            DerivedKind::Emst => "emst",
            DerivedKind::KnnGraph(_) => "knn-graph",
            DerivedKind::DelaunayGraph => "delaunay-graph",
        }
    }
}

/// One request to a [`GeoStore`](crate::GeoStore).
#[derive(Debug, Clone)]
pub enum Request<const D: usize> {
    /// Insert a batch of points; they receive consecutive store ids.
    Insert(Vec<Point<D>>),
    /// Delete every live point whose coordinates match a batch point.
    Delete(Vec<Point<D>>),
    /// The `k` nearest live neighbors of every query point.
    Knn {
        /// Query points (answered data-parallel over the batch).
        queries: Vec<Point<D>>,
        /// Neighbors per query; must be positive and must not exceed the
        /// live point count.
        k: usize,
    },
    /// Ids of the live points inside every query box (boundary inclusive).
    Range(Vec<Bbox<D>>),
    /// Convex hull of the live set (`D ∈ {2, 3}`).
    Hull,
    /// Smallest enclosing ball of the live set.
    Seb,
    /// Closest pair of the live set.
    ClosestPair,
    /// Euclidean minimum spanning tree of the live set.
    Emst,
    /// Directed k-NN graph of the live set.
    KnnGraph {
        /// Neighbors per vertex; must be positive and below the live
        /// point count (each vertex excludes itself).
        k: usize,
    },
    /// Delaunay edge graph of the live set (`D = 2`).
    DelaunayGraph,
    /// Point-in-time store statistics (a read; never invalidates caches).
    Stats,
}

impl<const D: usize> Request<D> {
    /// True iff the request mutates the store (insert or delete).
    pub fn is_write(&self) -> bool {
        matches!(self, Request::Insert(_) | Request::Delete(_))
    }

    /// The derived structure this request asks for, if any.
    pub fn derived_kind(&self) -> Option<DerivedKind> {
        match self {
            Request::Hull => Some(DerivedKind::Hull),
            Request::Seb => Some(DerivedKind::Seb),
            Request::ClosestPair => Some(DerivedKind::ClosestPair),
            Request::Emst => Some(DerivedKind::Emst),
            Request::KnnGraph { k } => Some(DerivedKind::KnnGraph(*k)),
            Request::DelaunayGraph => Some(DerivedKind::DelaunayGraph),
            _ => None,
        }
    }
}

/// Cache effectiveness counters (monotone over the store's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Derived-structure requests answered from the memo cache.
    pub hits: u64,
    /// Derived-structure requests that had to (re)compute — the sum of
    /// fresh computes, incremental applies, and rebuild fallbacks.
    pub misses: u64,
    /// Coalesced write runs that changed nothing in the live set (empty
    /// batches, deletes matching no live point) and therefore spared the
    /// write epoch and the memo cache instead of invalidating them.
    pub spared: u64,
    /// Misses answered by a delta engine applying the coalesced insert
    /// batch to the previous epoch's structure instead of recomputing.
    pub incremental: u64,
    /// Misses where a previous structure existed but had to be recomputed
    /// wholesale (deletes, damage threshold, bbox growth).
    pub rebuilds: u64,
}

/// Which path produced the memoized derived value of the current epoch.
///
/// Reported by [`GeoStore::derived_path`](crate::GeoStore::derived_path);
/// the per-path totals live in [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoPath {
    /// Computed from scratch with no prior structure for this kind.
    Fresh,
    /// A live delta engine applied the insert batch in place.
    Incremental,
    /// A prior structure existed but was recomputed wholesale (deletes,
    /// damage threshold exceeded, bbox growth, or an unsupported delta).
    Rebuilt,
}

impl MemoPath {
    /// Short label for reports and benches.
    pub fn label(self) -> &'static str {
        match self {
            MemoPath::Fresh => "fresh",
            MemoPath::Incremental => "incremental",
            MemoPath::Rebuilt => "rebuilt",
        }
    }
}

/// Point-in-time view of a store, answered by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// The backing index's epoch statistics.
    pub snapshot: Snapshot,
    /// Write epochs applied by the store's planner (each coalesced write
    /// batch is one epoch; memoized structures are valid for exactly one).
    pub write_epoch: u64,
    /// Memo-cache effectiveness so far.
    pub cache: CacheStats,
}

/// The answer to one [`Request`], variant-matched to it.
#[derive(Debug, Clone, PartialEq)]
pub enum Response<const D: usize> {
    /// Points accepted by an `Insert`, with the first id assigned.
    Inserted {
        /// Number of points inserted.
        count: usize,
        /// Store id of the first point of the batch (consecutive ids
        /// follow); `None` for an empty batch.
        first_id: Option<u32>,
    },
    /// Number of live points removed by a `Delete`.
    Deleted {
        /// Points removed (all live copies of every matched value).
        count: usize,
    },
    /// One row per query, each ascending by `(distance², id)`.
    Knn(Vec<Vec<Neighbor>>),
    /// One row of sorted live ids per query box.
    Range(Vec<Vec<u32>>),
    /// Hull vertex ids — CCW order in 2D, sorted ascending in 3D.
    Hull(Vec<u32>),
    /// Smallest enclosing ball of the live set.
    Seb(Ball<D>),
    /// Closest pair, with `a`/`b` being store ids (`a < b`).
    ClosestPair(ClosestPair),
    /// EMST edges over store ids.
    Emst(Vec<EmstEdge>),
    /// Directed k-NN graph edges over store ids.
    KnnGraph(Vec<(u32, u32)>),
    /// Delaunay edges over store ids.
    DelaunayGraph(Vec<(u32, u32)>),
    /// Store statistics.
    Stats(StoreStats),
}

impl<const D: usize> Response<D> {
    /// Folds the response's *discrete* content (counts, ids, edges) into an
    /// order-sensitive digest. Floating-point payloads (distances, ball
    /// centers) are excluded so the digest is bit-stable across thread
    /// counts; id-level agreement is what the cross-backend anchors assert.
    pub fn fold_digest(&self, mut h: u64) -> u64 {
        match self {
            Response::Inserted { count, first_id } => {
                h = mix(h, *count as u64);
                h = mix(h, first_id.map_or(u64::MAX, |i| i as u64));
            }
            Response::Deleted { count } => h = mix(h, *count as u64),
            Response::Knn(rows) => {
                for row in rows {
                    for n in row {
                        h = mix(h, n.id as u64);
                    }
                }
            }
            Response::Range(rows) => {
                for row in rows {
                    for id in row {
                        h = mix(h, *id as u64);
                    }
                }
            }
            Response::Hull(ids) => {
                for id in ids {
                    h = mix(h, *id as u64);
                }
            }
            Response::Seb(_) => h = mix(h, 0x5EB),
            Response::ClosestPair(cp) => {
                h = mix(h, cp.a as u64);
                h = mix(h, cp.b as u64);
            }
            Response::Emst(edges) => {
                for e in edges {
                    h = mix(h, (e.u as u64) << 32 | e.v as u64);
                }
            }
            Response::KnnGraph(edges) | Response::DelaunayGraph(edges) => {
                for (u, v) in edges {
                    h = mix(h, (*u as u64) << 32 | *v as u64);
                }
            }
            Response::Stats(s) => h = mix(h, s.snapshot.live as u64),
        }
        h
    }
}

/// Folds one response (or typed error, as a tag) into a running digest.
pub fn fold_response_digest<const D: usize>(
    h: u64,
    response: &Result<Response<D>, pargeo_geometry::GeoError>,
) -> u64 {
    match response {
        Ok(resp) => resp.fold_digest(h),
        Err(_) => mix(h, 0xE770_u64),
    }
}

/// Order-sensitive digest over a whole response stream (errors fold in as
/// a tag so two streams only agree when they fail identically too).
pub fn digest_responses<const D: usize>(
    responses: &[Result<Response<D>, pargeo_geometry::GeoError>],
) -> u64 {
    responses.iter().fold(0, fold_response_digest)
}
