//! # pargeo-store — GeoStore, the service façade over every ParGeo module
//!
//! ParGeo's design claim is one library surface spanning trees,
//! computational-geometry kernels, and spatial-graph generators. This
//! crate turns that surface into a *service*: a [`GeoStore`] owns the
//! point set plus a chosen batch-dynamic index backend and serves batched
//! **mixed** traffic — index updates, spatial queries, and whole-dataset
//! derived structures — through one typed [`Request`]/[`Response`] pair.
//!
//! * [`GeoStore`] — built via
//!   [`GeoStore::builder()`](GeoStore::builder)`.backend(..).split_rule(..).threads(..)`;
//!   every backend of `pargeo-engine`'s `SpatialIndex` (dyn-kd, BDL, Zd,
//!   plus the brute-force oracle) serves the same requests with identical
//!   answers.
//! * [`Request`] / [`Response`] — `Insert`, `Delete`, `Knn`, `Range`,
//!   `Hull`, `Seb`, `ClosestPair`, `Emst`, `KnnGraph`, `DelaunayGraph`,
//!   `Stats`. Every algorithm runs through its crate's non-panicking
//!   `try_*` path, so degenerate input (empty store, `k > n`, collinear
//!   2D hulls, coplanar 3D hulls, unsupported dimensions) comes back as a
//!   typed [`GeoError`](pargeo_geometry::GeoError) instead of a panic.
//! * **Epoch planner** — [`GeoStore::execute`] walks a mixed batch once:
//!   adjacent same-kind writes coalesce into single index batches (one
//!   write epoch each) and each maximal run of reads is answered
//!   data-parallel via `pargeo-parlay`.
//! * **Sharded execution** — [`GeoStore::builder()`](GeoStore::builder)`.shards(S)`
//!   routes the index through `pargeo-engine`'s morton-prefix
//!   `ShardedIndex`: each coalesced write batch becomes per-shard
//!   sub-batches applied in parallel across shards, reads fan out only to
//!   the shards whose region can contribute, and answers stay
//!   bit-identical to the unsharded store at any shard count.
//! * **Memoization with delta maintenance** — derived structures (hull,
//!   EMST, Delaunay, …) are cached per write epoch: repeated reads
//!   between writes are free, and any write that changes the live set
//!   invalidates. No-op writes (empty batches, deletes matching nothing
//!   live) spare the cache instead. The memoized 2D hull and Delaunay
//!   graph go further: across insert-only epochs a delta engine applies
//!   the coalesced batch to the existing structure instead of
//!   recomputing, falling back to a full rebuild on deletes or past a
//!   configurable damage threshold
//!   ([`damage_threshold`](GeoStoreBuilder::damage_threshold)) — with
//!   answers bit-identical to a fresh compute either way.
//!   [`CacheStats`] reports hits, misses, spared epochs, incremental
//!   applies, and rebuild fallbacks; [`GeoStore::derived_path`] names
//!   the path ([`MemoPath`]) that produced the current value.
//! * [`run_store_workload`] — replays a `pargeo-datagen`
//!   [`Workload`](pargeo_datagen::Workload) (including its
//!   derived-structure ops) against a store and digests every answer, the
//!   anchor the `geostore` bench asserts across backends.
//!
//! ```
//! use pargeo_store::{Backend, GeoStore, Request, Response};
//! use pargeo_datagen::uniform_cube;
//!
//! let pts = uniform_cube::<2>(1_000, 7);
//! let mut store: GeoStore<2> = GeoStore::builder().backend(Backend::Bdl).build();
//! store.insert(&pts);
//!
//! // One typed surface for index queries and derived structures alike.
//! let hull = store.hull().unwrap();
//! assert!(hull.len() >= 3);
//! let knn = store.knn(&pts[..4], 3).unwrap();
//! assert_eq!(knn.len(), 4);
//!
//! // A second hull between writes is a cache hit …
//! let again = store.hull().unwrap();
//! assert_eq!(hull, again);
//! assert_eq!(store.stats().cache.hits, 1);
//!
//! // … and a write invalidates it.
//! store.delete(&pts[..100]);
//! let fresh = store.hull().unwrap();
//! assert!(fresh.iter().all(|&id| id >= 100));
//! ```

#![warn(missing_docs)]

mod derived;
pub mod driver;
mod obs;
mod pipeline;
pub mod request;
pub mod store;

pub use driver::{run_store_workload, StoreReport};
pub use pargeo_obs::{HistSummary, ObsLevel, Registry};
pub use pipeline::StoreSnapshot;
pub use request::{
    digest_responses, fold_response_digest, CacheStats, DerivedKind, MemoPath, Request, Response,
    StoreStats,
};
pub use store::{Backend, GeoStore, GeoStoreBuilder, DEFAULT_DAMAGE_THRESHOLD};
