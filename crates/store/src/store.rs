//! The store itself: builder, id mirror, epoch planner, memo cache.

use crate::derived::{self, DerivedVal, Engine};
use crate::obs::{self, StoreObs};
use crate::pipeline::{LiveView, StoreSnapshot};
use crate::request::{CacheStats, DerivedKind, MemoPath, Request, Response, StoreStats};
use pargeo_bdltree::{BdlTree, ZdTree};
use pargeo_engine::{ShardedIndex, Snapshot, SpatialIndex, VecIndex};
use pargeo_geometry::{Ball, Bbox, GeoError, GeoResult, Point};
use pargeo_kdtree::{DynKdTree, Neighbor, SplitRule};
use pargeo_obs::{ObsLevel, Registry};
use pargeo_parlay as parlay;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The dynamic index backend serving a store's point queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Delete-marking dynamic kd-tree with threshold rebuilds.
    DynKd,
    /// Log-structured BDL-tree (paper §5).
    Bdl,
    /// Morton-order Zd-tree (paper §6.3).
    Zd,
    /// Brute-force `Vec` oracle — O(n) per query; for cross-validation
    /// in tests and benches, never production traffic.
    Oracle,
}

impl Backend {
    /// Short label for reports and benches.
    pub fn label(self) -> &'static str {
        match self {
            Backend::DynKd => "dyn-kd",
            Backend::Bdl => "bdl",
            Backend::Zd => "zd",
            Backend::Oracle => "vec-oracle",
        }
    }

    /// All production backends (the oracle excluded).
    pub fn all() -> [Backend; 3] {
        [Backend::DynKd, Backend::Bdl, Backend::Zd]
    }
}

/// Configures and creates a [`GeoStore`].
///
/// ```
/// use pargeo_store::{Backend, GeoStore};
/// use pargeo_kdtree::SplitRule;
///
/// let store: GeoStore<2> = GeoStore::builder()
///     .backend(Backend::Bdl)
///     .split_rule(SplitRule::SpatialMedian)
///     .shards(4)
///     .threads(2)
///     .build();
/// assert!(store.is_empty());
/// assert_eq!(store.shard_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct GeoStoreBuilder<const D: usize> {
    backend: Backend,
    split_rule: SplitRule,
    rebuild_fraction: f64,
    buffer_size: Option<usize>,
    threads: Option<usize>,
    shards: Option<usize>,
    incremental: bool,
    damage_threshold: f64,
    observe: ObsLevel,
    slow_op_nanos: Option<u64>,
    pipeline: bool,
    prefilter: bool,
    write_window: Option<usize>,
    window_duration: Option<Duration>,
}

/// Default fraction of a derived structure one coalesced insert batch may
/// tear down before the delta engine gives up and the store recomputes
/// wholesale (see [`GeoStoreBuilder::damage_threshold`]).
pub const DEFAULT_DAMAGE_THRESHOLD: f64 = 0.5;

impl<const D: usize> Default for GeoStoreBuilder<D> {
    fn default() -> Self {
        Self {
            backend: Backend::DynKd,
            split_rule: SplitRule::ObjectMedian,
            rebuild_fraction: pargeo_kdtree::dynamic::DEFAULT_REBUILD_FRACTION,
            buffer_size: None,
            threads: None,
            shards: None,
            incremental: true,
            damage_threshold: DEFAULT_DAMAGE_THRESHOLD,
            observe: ObsLevel::Off,
            slow_op_nanos: None,
            pipeline: false,
            prefilter: false,
            write_window: None,
            window_duration: None,
        }
    }
}

impl<const D: usize> GeoStoreBuilder<D> {
    /// Selects the dynamic index backend (default: [`Backend::DynKd`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Split rule for the kd-tree backend (ignored by the others).
    pub fn split_rule(mut self, rule: SplitRule) -> Self {
        self.split_rule = rule;
        self
    }

    /// Tombstone fraction that triggers a kd-tree rebuild (ignored by the
    /// other backends).
    pub fn rebuild_fraction(mut self, fraction: f64) -> Self {
        self.rebuild_fraction = fraction;
        self
    }

    /// Buffer size of the BDL cascade (ignored by the other backends).
    pub fn buffer_size(mut self, size: usize) -> Self {
        self.buffer_size = Some(size);
        self
    }

    /// Pins every `execute` call to a dedicated pool of exactly this many
    /// worker threads (default: the ambient rayon pool).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Shards the index by Morton prefix into this many independent
    /// backend shards (rounded up to a power of two): the epoch planner's
    /// coalesced write batches become per-shard sub-batches applied in
    /// parallel across shards, and reads fan out only to the shards whose
    /// region can contribute. Answers are bit-identical to the unsharded
    /// store at any shard count. Default: unsharded (one backend).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Keeps memoized 2D hull and Delaunay results alive across
    /// insert-only write epochs by applying the coalesced insert batch to
    /// the existing structure instead of recomputing (default: on).
    /// Answers are bit-identical either way; turning this off forces the
    /// wholesale-recompute baseline.
    pub fn incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Fraction of a derived structure (hull edges, alive triangles —
    /// each relative to structure size plus batch size) one insert batch
    /// may destroy before the delta engine aborts and the store falls
    /// back to a wholesale recompute (default:
    /// [`DEFAULT_DAMAGE_THRESHOLD`]). `0.0` rebuilds on any damage;
    /// `1.0` effectively never falls back.
    pub fn damage_threshold(mut self, fraction: f64) -> Self {
        self.damage_threshold = fraction;
        self
    }

    /// Observability level (default: [`ObsLevel::Off`]).
    ///
    /// `Metrics` gives the store a [`Registry`] with per-request-class
    /// latency histograms, memo-path counters, write-epoch counters, and
    /// per-shard routing counters when sharded; `Trace` additionally
    /// keeps a bounded in-memory ring of serve-path span events. `Off`
    /// registers nothing and the serve path skips one `Option` branch —
    /// answers (and their digests) are bit-identical at every level.
    pub fn observe(mut self, level: ObsLevel) -> Self {
        self.observe = level;
        self
    }

    /// Serves read runs through the pipelined executor (default: off —
    /// the epoch-serial planner).
    ///
    /// The pipelined executor partitions a request stream into exactly
    /// the same write/read runs as the serial planner, but pins a
    /// [`StoreSnapshot`] per read run and overlaps the run's read
    /// fan-out (against the pinned epoch) with the *following* write
    /// epoch's apply on the live index — reads never wait on writes, and
    /// every response is bit-identical to the serial executor's.
    pub fn pipeline(mut self, on: bool) -> Self {
        self.pipeline = on;
        self
    }

    /// Runs the octagon prefilter in front of wholesale 2D hull
    /// recomputes (default: off).
    ///
    /// The filter discards points that are strictly inside the convex
    /// octagon of the input's eight directional extreme points before
    /// handing the rest to the hull algorithm — a large constant-factor
    /// win on blob-like data, a no-op cost on adversarial data. The hull
    /// answer is bit-identical either way (the discarded points are
    /// provably interior, by exact predicates); the discarded count is
    /// exposed as `geostore_prefilter_discarded_total` under
    /// `.observe(..)`. Delta-maintained hulls (`.incremental(true)`
    /// advancing an engine) take precedence — the engine consumes the
    /// full live prefix, so the filter applies only on the
    /// fresh/rebuilt compute paths.
    pub fn prefilter(mut self, on: bool) -> Self {
        self.prefilter = on;
        self
    }

    /// Seals the admission queue into a write epoch once this many write
    /// requests are queued (default: no size window — the queue seals on
    /// [`flush`](GeoStore::flush), on the time window if one is set, or
    /// at the hard queue cap). See [`GeoStore::submit`].
    pub fn write_window(mut self, requests: usize) -> Self {
        self.write_window = Some(requests.max(1));
        self
    }

    /// Seals the admission queue into a write epoch once the oldest
    /// queued request has waited this long (checked at each
    /// [`submit`](GeoStore::submit); default: no time window).
    pub fn window_duration(mut self, window: Duration) -> Self {
        self.window_duration = Some(window);
        self
    }

    /// Captures any serve-path span at least this long into the registry's
    /// slow-op log (requires [`observe`](Self::observe) ≠ `Off`; default:
    /// no slow-op capture).
    pub fn slow_op_threshold(mut self, threshold: Duration) -> Self {
        // Zero disables capture in the registry, so an explicit zero
        // threshold maps to 1ns ("capture everything").
        self.slow_op_nanos = Some((threshold.as_nanos() as u64).max(1));
        self
    }

    /// Creates the (empty) store, returning a typed error if the
    /// dedicated thread pool cannot be constructed.
    pub fn try_build(self) -> GeoResult<GeoStore<D>> {
        let pool = match self.threads {
            None => None,
            Some(t) => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build()
                    .map_err(|_| GeoError::BadParameter {
                        op: "geostore_build",
                        what: "dedicated thread pool construction failed",
                    })?,
            ),
        };
        Ok(self.finish(pool))
    }

    /// Creates the (empty) store. If the dedicated thread pool cannot be
    /// constructed, the store falls back to the ambient rayon pool rather
    /// than panicking (use [`try_build`](Self::try_build) to observe the
    /// failure as a typed error instead).
    pub fn build(self) -> GeoStore<D> {
        let pool = self
            .threads
            .and_then(|t| rayon::ThreadPoolBuilder::new().num_threads(t).build().ok());
        self.finish(pool)
    }

    /// Assembles the store around an already-constructed pool (infallible).
    fn finish(self, pool: Option<rayon::ThreadPool>) -> GeoStore<D> {
        let registry = self.observe.build_registry();
        if let (Some(r), Some(nanos)) = (&registry, self.slow_op_nanos) {
            r.set_slow_op_threshold_nanos(nanos);
        }
        if let (Some(r), Some(p)) = (&registry, &pool) {
            // Scheduler counters (sched_tasks_total, sched_steals_total, …)
            // land in the same registry as the store's own metrics, so an
            // observed store exposes its pool's behavior too.
            p.sched().attach_registry(r);
        }
        let make = || -> Box<dyn SpatialIndex<D> + Send + Sync> {
            match self.backend {
                Backend::DynKd => Box::new(DynKdTree::<D>::with_config(
                    self.split_rule,
                    self.rebuild_fraction,
                )),
                Backend::Bdl => match self.buffer_size {
                    Some(x) => Box::new(BdlTree::<D>::with_buffer_size(x)),
                    None => Box::new(BdlTree::<D>::new()),
                },
                Backend::Zd => Box::new(ZdTree::<D>::new()),
                Backend::Oracle => Box::new(VecIndex::<D>::new()),
            }
        };
        let (index, shard_count): (Box<dyn SpatialIndex<D> + Send + Sync>, usize) =
            match self.shards {
                None => (make(), 1),
                Some(s) => {
                    let mut sharded = ShardedIndex::<D>::new(s, |_| make());
                    if let Some(r) = &registry {
                        sharded.attach_obs(r);
                    }
                    let count = sharded.shard_count();
                    (Box::new(sharded), count)
                }
            };
        GeoStore {
            index,
            obs: registry.map(|r| Arc::new(StoreObs::new(r, self.observe, self.backend.label()))),
            backend: self.backend,
            shard_count,
            pool,
            incremental: self.incremental,
            damage_threshold: self.damage_threshold,
            pipeline: self.pipeline,
            prefilter: self.prefilter,
            write_window: self.write_window,
            window_duration: self.window_duration,
            queue: Vec::new(),
            queued_writes: 0,
            queue_opened: None,
            completed: Vec::new(),
            submitted: 0,
            points: Vec::new(),
            live_ids: Vec::new(),
            by_key: HashMap::new(),
            write_epoch: 0,
            live_view: None,
            cache: HashMap::new(),
            cache_stats: CacheStats::default(),
        }
    }
}

/// Hard cap on the admission queue: a queue this deep seals regardless of
/// the configured size/time windows, bounding worst-case memory and the
/// staleness of unserved responses.
const MAX_QUEUE: usize = 4096;

/// One slot of the per-kind memo cache — the `Fresh | Incremental |
/// Rebuilt` state machine.
///
/// An entry whose `epoch` matches the store's write epoch serves reads
/// directly (a hit). A *stale* entry survives epoch bumps only to carry
/// maintenance state forward: a live [`Engine`] across insert-only epochs
/// (advanced on the next request), or a `rebuild_pending` marker across
/// delete epochs (so the next compute is counted as a rebuild fallback,
/// not a fresh start). Stale values are never served.
struct MemoEntry<const D: usize> {
    /// Write epoch `value` was computed at.
    epoch: u64,
    value: GeoResult<DerivedVal<D>>,
    /// Delta engine for maintainable kinds (2D hull / Delaunay), present
    /// only while `value` is `Ok` and no delete has intervened.
    engine: Option<Engine>,
    /// `(consumed, last_id)` of the engine's live-view prefix: an O(1)
    /// append-only check (live ids ascend, inserts append) guarding the
    /// engine against any planner bug that would reorder the prefix.
    anchor: Option<(usize, u32)>,
    /// How `value` was produced.
    path: MemoPath,
    /// A delete invalidated the prior structure; the next compute is a
    /// rebuild, not a fresh start.
    rebuild_pending: bool,
}

/// One service-grade façade over every ParGeo module.
///
/// A `GeoStore` owns the point set and a chosen batch-dynamic
/// [`SpatialIndex`] backend and serves *mixed* request batches through one
/// typed surface: updates and spatial queries go to the index, and
/// whole-dataset derived structures (hull, smallest enclosing ball,
/// closest pair, EMST, k-NN graph, Delaunay graph) run over the live set
/// through the algorithm crates' non-panicking `try_*` paths — memoized
/// per write epoch.
///
/// [`execute`](GeoStore::execute) is the epoch planner: it splits the
/// request stream into write runs and read runs, coalesces adjacent
/// same-kind writes into single index batches (one write epoch each), and
/// fans the reads of a run out data-parallel. Every request gets a
/// `Result` — malformed or degenerate input yields a typed
/// [`GeoError`], never a panic and never a poisoned store.
pub struct GeoStore<const D: usize> {
    index: Box<dyn SpatialIndex<D> + Send + Sync>,
    /// Metric handles when built with `.observe(..)` ≠ `Off`; `None` (the
    /// default) costs the serve path one skipped branch.
    obs: Option<Arc<StoreObs>>,
    backend: Backend,
    /// Morton-prefix shards of the index (1 = unsharded).
    shard_count: usize,
    /// Dedicated pool when built with `.threads(..)`, constructed once.
    pool: Option<rayon::ThreadPool>,
    /// Delta-maintain memoized hull/Delaunay across insert-only epochs.
    incremental: bool,
    /// Damage fraction past which a delta engine falls back to rebuild.
    damage_threshold: f64,
    /// Serve read runs through the pipelined (snapshot-pinning) executor.
    pipeline: bool,
    /// Octagon-prefilter wholesale 2D hull recomputes.
    prefilter: bool,
    /// Admission-queue size window: seal once this many write requests
    /// are queued.
    write_window: Option<usize>,
    /// Admission-queue time window: seal once the oldest queued request
    /// has waited this long.
    window_duration: Option<Duration>,
    /// The admission queue: requests accepted by `submit` but not yet
    /// formed into epochs.
    queue: Vec<Request<D>>,
    /// Write requests currently queued (the size-window counter).
    queued_writes: usize,
    /// When the oldest queued request was admitted.
    queue_opened: Option<Instant>,
    /// Responses of already-sealed epochs, in ticket order, awaiting
    /// `flush`.
    completed: Vec<GeoResult<Response<D>>>,
    /// Tickets issued by `submit` so far.
    submitted: u64,
    /// Every point ever inserted, indexed by store id. Append-only: store
    /// ids stay stable and `point(id)` remains answerable after deletion,
    /// at the cost of `O(total inserted)` memory (compaction with an id
    /// relocation map is future work).
    points: Vec<Point<D>>,
    /// Live store ids, sorted ascending — maintained incrementally so the
    /// per-epoch live view costs `O(live)`, not `O(ever inserted)`.
    live_ids: Vec<u32>,
    /// Live ids per coordinate value (bitwise key) — the mirror of the
    /// backends' delete-by-value semantics.
    by_key: HashMap<[u64; D], Vec<u32>>,
    /// Coalesced write batches applied so far.
    write_epoch: u64,
    live_view: Option<Arc<LiveView<D>>>,
    /// Per-kind memo state machine. Entries at the current epoch serve
    /// reads; stale entries only carry delta engines (insert-only bumps)
    /// or rebuild markers (delete bumps) into the next compute.
    cache: HashMap<DerivedKind, MemoEntry<D>>,
    cache_stats: CacheStats,
}

impl<const D: usize> Default for GeoStore<D> {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl<const D: usize> GeoStore<D> {
    /// Starts configuring a store.
    pub fn builder() -> GeoStoreBuilder<D> {
        GeoStoreBuilder::default()
    }

    /// The backend this store was built with.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Number of Morton-prefix shards the index runs over (1 when built
    /// without [`shards`](GeoStoreBuilder::shards)).
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The metrics registry, when built with
    /// [`observe`](GeoStoreBuilder::observe) ≠ `Off`. Render it with
    /// [`Registry::render_prometheus`] / [`Registry::render_json`] or
    /// inspect counters directly.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.obs.as_ref().map(|o| &o.registry)
    }

    /// The observability level this store was built at.
    pub fn obs_level(&self) -> ObsLevel {
        self.obs.as_ref().map_or(ObsLevel::Off, |o| o.level)
    }

    /// Per-shard epoch statistics of the backing index: one [`Snapshot`]
    /// per Morton-prefix shard (a single-element vector when unsharded).
    /// The per-shard live counts sum to [`stats`](Self::stats)'s snapshot
    /// — their spread is the router's balance diagnostic.
    pub fn shard_snapshots(&self) -> Vec<Snapshot> {
        self.index.shard_snapshots()
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live_ids.len()
    }

    /// True iff no live points are stored.
    pub fn is_empty(&self) -> bool {
        self.live_ids.is_empty()
    }

    /// The point with this store id (live or deleted); `None` if the id
    /// was never assigned.
    pub fn point(&self, id: u32) -> Option<Point<D>> {
        self.points.get(id as usize).copied()
    }

    /// Current statistics (index snapshot, write epoch, cache counters).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            snapshot: self.index.snapshot(),
            write_epoch: self.write_epoch,
            cache: self.cache_stats,
        }
    }

    /// Executes a mixed request batch, one `Result` per request, in
    /// request order.
    ///
    /// The planner walks the stream once: adjacent writes of the same kind
    /// coalesce into one [`SpatialIndex`] batch (one write epoch), and
    /// every maximal run of read requests is answered data-parallel
    /// against the index state left by the preceding writes. Derived
    /// structures are computed at most once per (kind, epoch) and served
    /// from the memo cache afterwards.
    pub fn execute(&mut self, requests: &[Request<D>]) -> Vec<GeoResult<Response<D>>> {
        match self.pool.take() {
            Some(pool) => {
                let out = pool.install(|| self.execute_dispatch(requests));
                self.pool = Some(pool);
                out
            }
            None => self.execute_dispatch(requests),
        }
    }

    /// Routes a batch to the executor the store was built with: the
    /// epoch-serial planner, or the snapshot-pinning pipelined executor
    /// when built with [`pipeline(true)`](GeoStoreBuilder::pipeline).
    fn execute_dispatch(&mut self, requests: &[Request<D>]) -> Vec<GeoResult<Response<D>>> {
        if self.pipeline {
            self.execute_pipelined(requests)
        } else {
            self.execute_inner(requests)
        }
    }

    /// Executes a single request (sugar over [`execute`](Self::execute)).
    pub fn run(&mut self, request: Request<D>) -> GeoResult<Response<D>> {
        self.execute(std::slice::from_ref(&request))
            .pop()
            .unwrap_or(Err(GeoError::BadParameter {
                op: "geostore",
                what: "planner produced no response for the request",
            }))
    }

    fn execute_inner(&mut self, requests: &[Request<D>]) -> Vec<GeoResult<Response<D>>> {
        // Clone the handle so span guards borrow the local, not `self`
        // (declared before the guard: guards drop first, recording their
        // wall-time on the way out).
        let obs = self.obs.clone();
        let _plan = obs.as_ref().map(|o| {
            for req in requests {
                o.requests[obs::class_of(req)].inc();
            }
            let mut g = o.registry.span("plan_coalesce", Vec::new());
            g.label("epoch", self.write_epoch);
            g.label("requests", requests.len());
            g
        });
        let mut out: Vec<GeoResult<Response<D>>> = Vec::with_capacity(requests.len());
        let mut i = 0;
        while i < requests.len() {
            if requests[i].is_write() {
                // Write run: coalesce adjacent same-kind writes.
                let inserting = matches!(requests[i], Request::Insert(_));
                let mut j = i;
                while j < requests.len() {
                    match (&requests[j], inserting) {
                        (Request::Insert(_), true) | (Request::Delete(_), false) => j += 1,
                        _ => break,
                    }
                }
                if inserting {
                    self.apply_inserts(&requests[i..j], &mut out);
                } else {
                    self.apply_deletes(&requests[i..j], &mut out);
                }
                i = j;
            } else {
                // Read run: everything until the next write.
                let mut j = i;
                while j < requests.len() && !requests[j].is_write() {
                    j += 1;
                }
                self.answer_reads(&requests[i..j], &mut out);
                i = j;
            }
        }
        out
    }

    /// The pipelined executor: identical run partition to
    /// [`execute_inner`](Self::execute_inner), but each read run is served
    /// from a [`StoreSnapshot`] pinned at its epoch, and when a write run
    /// follows, the read fan-out overlaps the write epoch's apply on the
    /// parlay pool — reads never wait on writes, responses stay in request
    /// order and bit-identical to the serial planner's.
    fn execute_pipelined(&mut self, requests: &[Request<D>]) -> Vec<GeoResult<Response<D>>> {
        let obs = self.obs.clone();
        let _plan = obs.as_ref().map(|o| {
            for req in requests {
                o.requests[obs::class_of(req)].inc();
            }
            let mut g = o.registry.span("plan_coalesce", Vec::new());
            g.label("epoch", self.write_epoch);
            g.label("requests", requests.len());
            g.label("executor", "pipelined");
            g
        });
        // Partition into maximal runs with exactly the serial planner's
        // boundaries: adjacent same-kind writes form one run (one coalesced
        // epoch), maximal read spans form read runs.
        #[derive(Clone, Copy, PartialEq)]
        enum RunKind {
            Insert,
            Delete,
            Read,
        }
        let kind_of = |req: &Request<D>| match req {
            Request::Insert(_) => RunKind::Insert,
            Request::Delete(_) => RunKind::Delete,
            _ => RunKind::Read,
        };
        let mut runs: Vec<(RunKind, std::ops::Range<usize>)> = Vec::new();
        let mut i = 0;
        while i < requests.len() {
            let kind = kind_of(&requests[i]);
            let mut j = i + 1;
            while j < requests.len() && kind_of(&requests[j]) == kind {
                j += 1;
            }
            runs.push((kind, i..j));
            i = j;
        }

        let mut out: Vec<GeoResult<Response<D>>> = Vec::with_capacity(requests.len());
        let mut r = 0;
        while r < runs.len() {
            let (kind, range) = runs[r].clone();
            match kind {
                RunKind::Insert => {
                    self.apply_inserts(&requests[range], &mut out);
                    r += 1;
                }
                RunKind::Delete => {
                    self.apply_deletes(&requests[range], &mut out);
                    r += 1;
                }
                RunKind::Read => {
                    // The ensure pass runs on the live store first, exactly
                    // like the serial planner's `answer_reads`, so memo
                    // state (and CacheStats, and therefore any Stats
                    // response) is identical; the snapshot then captures
                    // its result.
                    for req in &requests[range.clone()] {
                        if let Some(kind) = req.derived_kind() {
                            let t = obs.as_ref().map(|_| Instant::now());
                            self.ensure_derived(kind);
                            if let (Some(o), Some(t)) = (&obs, t) {
                                o.class_nanos[4].record_duration(t.elapsed());
                            }
                        }
                    }
                    let snap = self.pin();
                    let read_run = &requests[range];
                    let _span = obs.as_ref().map(|o| {
                        let mut g = o.registry.span("read_fanout", Vec::new());
                        g.label("epoch", self.write_epoch);
                        g.label("requests", read_run.len());
                        g.label("executor", "pipelined");
                        g
                    });
                    if let Some(o) = &obs {
                        o.pipeline_runs.inc();
                    }
                    // Overlap: epoch E's read fan-out (against the pinned
                    // snapshot) runs concurrently with epoch E+1's write
                    // apply (against the live index).
                    let next_write = runs
                        .get(r + 1)
                        .filter(|(k, _)| *k != RunKind::Read)
                        .cloned();
                    if let Some((wkind, wrange)) = next_write {
                        if let Some(o) = &obs {
                            o.pipeline_overlapped.inc();
                        }
                        let (mut wout, reads) = rayon::join(
                            || {
                                let mut wout = Vec::new();
                                match wkind {
                                    RunKind::Insert => {
                                        self.apply_inserts(&requests[wrange], &mut wout)
                                    }
                                    RunKind::Delete => {
                                        self.apply_deletes(&requests[wrange], &mut wout)
                                    }
                                    RunKind::Read => unreachable!("filtered to writes"),
                                }
                                wout
                            },
                            || snap.execute(read_run),
                        );
                        out.extend(reads);
                        out.append(&mut wout);
                        r += 2;
                    } else {
                        out.extend(snap.execute(read_run));
                        r += 1;
                    }
                }
            }
        }
        out
    }

    /// Pins an immutable [`StoreSnapshot`] of the current write epoch: the
    /// index's epoch-pinned view (O(1) for copy-on-write backends), the
    /// compacted live set, the epoch's memoized derived values, and the
    /// statistics as of now. The snapshot answers every read request class
    /// bit-identically to a frozen copy of this store taken at this
    /// instant, regardless of how many write epochs follow; it may outlive
    /// rebuilds and be dropped in any order relative to other snapshots.
    pub fn pin(&mut self) -> StoreSnapshot<D> {
        let view = self.index.pin();
        let live_view = self.live_view();
        let stats = self.stats();
        let derived: HashMap<DerivedKind, GeoResult<DerivedVal<D>>> = self
            .cache
            .iter()
            .filter(|(_, e)| e.epoch == self.write_epoch)
            .map(|(k, e)| (*k, e.value.clone()))
            .collect();
        StoreSnapshot::new(view, live_view, stats, derived, self.obs.clone())
    }

    // ---- continuous admission ------------------------------------------

    /// Admits one request into the admission queue and returns its ticket
    /// (tickets count all submissions, starting at 0). The queue seals
    /// into execution — forming write epochs from the queued stream —
    /// when the configured size window
    /// ([`write_window`](GeoStoreBuilder::write_window)) or time window
    /// ([`window_duration`](GeoStoreBuilder::window_duration)) is hit, at
    /// the hard cap of `MAX_QUEUE` requests, or on
    /// [`flush`](Self::flush). Responses of sealed requests accumulate in
    /// ticket order and are retrieved with `flush`.
    ///
    /// Windowing changes *when* epochs form, never *what* reads see:
    /// responses for any submission order equal the serial executor's on
    /// the same stream, except that [`Stats`](Request::Stats) responses
    /// observe window-dependent epoch/cache counters.
    pub fn submit(&mut self, request: Request<D>) -> u64 {
        let ticket = self.submitted;
        self.submitted += 1;
        if self.queue.is_empty() {
            self.queue_opened = Some(Instant::now());
        }
        if request.is_write() {
            self.queued_writes += 1;
        }
        self.queue.push(request);
        if let Some(o) = &self.obs {
            o.queue_depth.set(self.queue.len() as i64);
        }
        let size_hit = self.write_window.is_some_and(|w| self.queued_writes >= w);
        let time_hit = self
            .window_duration
            .zip(self.queue_opened)
            .is_some_and(|(d, t)| t.elapsed() >= d);
        if size_hit || time_hit || self.queue.len() >= MAX_QUEUE {
            self.seal_queue();
        }
        ticket
    }

    /// Requests currently admitted but not yet sealed into an epoch.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Seals the admission queue (forming its write epochs and serving
    /// its reads) and returns every response accumulated since the last
    /// flush, in ticket order.
    pub fn flush(&mut self) -> Vec<GeoResult<Response<D>>> {
        self.seal_queue();
        std::mem::take(&mut self.completed)
    }

    /// Drains the admission queue through the configured executor.
    fn seal_queue(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.queue);
        self.queued_writes = 0;
        self.queue_opened = None;
        if let Some(o) = &self.obs {
            o.queue_depth.set(0);
        }
        let responses = self.execute(&batch);
        self.completed.extend(responses);
    }

    /// Applies a run of `Insert` requests as one coalesced index batch.
    fn apply_inserts(&mut self, run: &[Request<D>], out: &mut Vec<GeoResult<Response<D>>>) {
        let obs = self.obs.clone();
        let mut span = obs.as_ref().map(|o| {
            let mut g = o.registry.span("write_apply", Vec::new());
            g.label("epoch", self.write_epoch);
            g.label("kind", "insert");
            g
        });
        let t = Instant::now();
        let mut coalesced: Vec<Point<D>> = Vec::new();
        for req in run {
            let Request::Insert(batch) = req else {
                unreachable!("insert run")
            };
            let first_id = if batch.is_empty() {
                None
            } else {
                Some(self.points.len() as u32)
            };
            for &p in batch {
                let id = self.points.len() as u32;
                self.points.push(p);
                self.live_ids.push(id); // fresh ids ascend: order preserved
                self.by_key.entry(p.bits_key()).or_default().push(id);
            }
            coalesced.extend_from_slice(batch);
            out.push(Ok(Response::Inserted {
                count: batch.len(),
                first_id,
            }));
        }
        if coalesced.is_empty() {
            // Nothing entered the live set: the memoized derived
            // structures are still exact, so the epoch (and with it the
            // memo cache) is spared.
            self.cache_stats.spared += 1;
            if let Some(o) = &obs {
                o.memo[obs::MEMO_SPARED].inc();
            }
        } else {
            self.index.insert(&coalesced);
            self.bump_epoch(false);
        }
        if let Some(o) = &obs {
            o.class_nanos[0].record_duration(t.elapsed());
            if let Some(s) = span.as_mut() {
                s.label("points", coalesced.len());
            }
        }
    }

    /// Applies a run of `Delete` requests as one coalesced index batch.
    fn apply_deletes(&mut self, run: &[Request<D>], out: &mut Vec<GeoResult<Response<D>>>) {
        let obs = self.obs.clone();
        let mut span = obs.as_ref().map(|o| {
            let mut g = o.registry.span("write_apply", Vec::new());
            g.label("epoch", self.write_epoch);
            g.label("kind", "delete");
            g
        });
        let t = Instant::now();
        let mut coalesced: Vec<Point<D>> = Vec::new();
        let mut dying: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for req in run {
            let Request::Delete(batch) = req else {
                unreachable!("delete run")
            };
            // Mirror the backends' semantics: every live point whose value
            // matches a batch point dies; requests earlier in the run
            // claim the victims, later duplicates remove nothing.
            let mut count = 0usize;
            for p in batch {
                if let Some(ids) = self.by_key.remove(&p.bits_key()) {
                    count += ids.len();
                    dying.extend(ids);
                }
            }
            coalesced.extend_from_slice(batch);
            out.push(Ok(Response::Deleted { count }));
        }
        if dying.is_empty() {
            // A delete run that matched no live point (or was empty) is a
            // no-op: the id mirror says the index would remove nothing, so
            // the batch is not applied, the epoch does not advance, and
            // the memoized derived structures stay valid.
            self.cache_stats.spared += 1;
            if let Some(o) = &obs {
                o.memo[obs::MEMO_SPARED].inc();
            }
        } else {
            self.live_ids.retain(|id| !dying.contains(id));
            let removed = self.index.delete(&coalesced);
            debug_assert_eq!(removed, dying.len(), "mirror diverged from index");
            self.bump_epoch(true);
        }
        if let Some(o) = &obs {
            o.class_nanos[1].record_duration(t.elapsed());
            if let Some(s) = span.as_mut() {
                s.label("points", dying.len());
            }
        }
    }

    /// Advances the write epoch. Values derived from the previous live
    /// set — memoized structures and the compacted view — expire
    /// immediately, so stale values are never served. What *survives* the
    /// bump is maintenance state: across an insert-only epoch, entries
    /// with a live delta engine (the engine absorbs the batch on the next
    /// request); across a delete epoch, a rebuild marker per maintainable
    /// entry (deletes shuffle compacted positions, so no engine survives).
    fn bump_epoch(&mut self, deleting: bool) {
        self.write_epoch += 1;
        if let Some(o) = &self.obs {
            o.epochs.inc();
            let s = self.index.snapshot();
            o.index_arena_bytes.set(s.arena_bytes as i64);
            o.index_nodes.set(s.nodes as i64);
        }
        self.live_view = None;
        if !self.incremental {
            self.cache.clear();
        } else if deleting {
            self.cache.retain(|_, e| {
                let maintained = e.engine.is_some() || e.rebuild_pending;
                e.engine = None;
                e.anchor = None;
                e.rebuild_pending = maintained;
                maintained
            });
        } else {
            self.cache
                .retain(|_, e| e.engine.is_some() || e.rebuild_pending);
        }
    }

    /// Answers a run of read requests: derived structures are memoized
    /// first (in request order, so cache hit/miss counters reflect the
    /// stream), then all responses are produced data-parallel.
    fn answer_reads(&mut self, run: &[Request<D>], out: &mut Vec<GeoResult<Response<D>>>) {
        let obs = self.obs.clone();
        for req in run {
            if let Some(kind) = req.derived_kind() {
                // The derived class's latency sample is taken here, around
                // the memo ensure, so it captures compute/advance cost —
                // the parallel fetch below is a cache read.
                let t = obs.as_ref().map(|_| Instant::now());
                self.ensure_derived(kind);
                if let (Some(o), Some(t)) = (&obs, t) {
                    o.class_nanos[4].record_duration(t.elapsed());
                }
            }
        }
        let _span = obs.as_ref().map(|o| {
            let mut g = o.registry.span("read_fanout", Vec::new());
            g.label("epoch", self.write_epoch);
            g.label("requests", run.len());
            g
        });
        let responses = parlay::map_batch(run, 2, |req| self.answer_one(req));
        out.extend(responses);
    }

    /// Brings the memo entry for `kind` to the current epoch: a hit when
    /// already current, an incremental engine advance when an insert-only
    /// delta can be applied, and a full (re)compute otherwise.
    fn ensure_derived(&mut self, kind: DerivedKind) {
        let obs = self.obs.clone();
        if let Some(e) = self.cache.get(&kind) {
            if e.epoch == self.write_epoch {
                self.cache_stats.hits += 1;
                if let Some(o) = &obs {
                    o.memo[obs::MEMO_HIT].inc();
                }
                return;
            }
        }
        self.cache_stats.misses += 1;
        let mut span = obs.as_ref().map(|o| {
            let mut g = o.registry.span("derived_memo", Vec::new());
            g.label("epoch", self.write_epoch);
            g.label("kind", kind.label());
            g
        });
        let view = self.live_view();
        let mut prior = self.cache.remove(&kind);
        let had_structure = prior
            .as_ref()
            .is_some_and(|e| e.engine.is_some() || e.rebuild_pending);

        // Incremental path: a live engine whose consumed prefix is intact
        // (live ids ascend and inserts append, so one id pins the prefix)
        // absorbs the delta in place.
        if self.incremental {
            if let Some(mut entry) = prior.take() {
                let anchored = entry.anchor.is_some_and(|(consumed, last_id)| {
                    consumed >= 1 && view.0.len() >= consumed && view.0[consumed - 1] == last_id
                });
                let advanced = match (anchored, entry.engine.as_mut()) {
                    (true, Some(engine)) => {
                        derived::advance_engine(engine, &view.0, &view.1, self.damage_threshold)
                    }
                    _ => None,
                };
                if let (Some(val), Some(&last)) = (advanced, view.0.last()) {
                    self.cache_stats.incremental += 1;
                    if let Some(o) = &obs {
                        o.memo[obs::memo_idx(MemoPath::Incremental)].inc();
                    }
                    if let Some(s) = span.as_mut() {
                        s.label("path", MemoPath::Incremental.label());
                    }
                    entry.epoch = self.write_epoch;
                    entry.value = Ok(val);
                    entry.anchor = Some((view.0.len(), last));
                    entry.path = MemoPath::Incremental;
                    entry.rebuild_pending = false;
                    self.cache.insert(kind, entry);
                    return;
                }
            }
        }

        // Full (re)compute — the rebuild path when a structure existed.
        let (value, engine, prefilter_discarded) =
            derived::compute_full(kind, &view.0, &view.1, self.incremental, self.prefilter);
        let path = if had_structure {
            self.cache_stats.rebuilds += 1;
            MemoPath::Rebuilt
        } else {
            MemoPath::Fresh
        };
        if let Some(o) = &obs {
            o.memo[obs::memo_idx(path)].inc();
            if prefilter_discarded > 0 {
                o.prefilter_discarded.add(prefilter_discarded as u64);
            }
        }
        if let Some(s) = span.as_mut() {
            s.label("path", path.label());
        }
        let anchor = engine
            .as_ref()
            .and_then(|_| view.0.last().map(|&last| (view.0.len(), last)));
        self.cache.insert(
            kind,
            MemoEntry {
                epoch: self.write_epoch,
                value,
                engine,
                anchor,
                path,
                rebuild_pending: false,
            },
        );
    }

    /// Which path produced the memoized value for `kind`, if one is
    /// cached for the current epoch.
    pub fn derived_path(&self, kind: DerivedKind) -> Option<MemoPath> {
        self.cache
            .get(&kind)
            .filter(|e| e.epoch == self.write_epoch)
            .map(|e| e.path)
    }

    /// Answers one read request against the (now read-only) store state,
    /// recording its latency into the per-class histogram for the classes
    /// whose cost lives here (k-NN, range, stats — the derived classes
    /// sample around the memo ensure instead). Runs inside the parallel
    /// fan-out: recording is atomics only.
    fn answer_one(&self, req: &Request<D>) -> GeoResult<Response<D>> {
        let Some(o) = &self.obs else {
            return self.answer_one_inner(req);
        };
        let class = obs::class_of(req);
        if class == 4 {
            return self.answer_one_inner(req);
        }
        let t = Instant::now();
        let resp = self.answer_one_inner(req);
        o.class_nanos[class].record_duration(t.elapsed());
        resp
    }

    /// The untimed body of [`answer_one`](Self::answer_one).
    fn answer_one_inner(&self, req: &Request<D>) -> GeoResult<Response<D>> {
        match req {
            Request::Knn { queries, k } => {
                if *k == 0 {
                    return Err(GeoError::BadParameter {
                        op: "knn",
                        what: "k must be positive",
                    });
                }
                if *k > self.live_ids.len() {
                    return Err(GeoError::KTooLarge {
                        op: "knn",
                        k: *k,
                        n: self.live_ids.len(),
                    });
                }
                Ok(Response::Knn(self.index.knn_batch(queries, *k)))
            }
            Request::Range(boxes) => Ok(Response::Range(self.index.range_batch(boxes))),
            Request::Stats => Ok(Response::Stats(self.stats())),
            _ => {
                // Planner invariants ("only reads reach the fan-out" and
                // "every derived kind was ensured first") are answered
                // with typed errors, not panics: a violation must never
                // take the serve path down.
                let Some(kind) = req.derived_kind() else {
                    return Err(GeoError::BadParameter {
                        op: "geostore",
                        what: "non-read request reached the read fan-out",
                    });
                };
                let entry = self
                    .cache
                    .get(&kind)
                    .filter(|e| e.epoch == self.write_epoch)
                    .ok_or(GeoError::BadParameter {
                        op: "geostore",
                        what: "derived value missing from the memo cache",
                    })?;
                entry.value.clone().map(|v| match v {
                    DerivedVal::Hull(h) => Response::Hull(h),
                    DerivedVal::Seb(b) => Response::Seb(b),
                    DerivedVal::ClosestPair(cp) => Response::ClosestPair(cp),
                    DerivedVal::Emst(e) => Response::Emst(e),
                    DerivedVal::Graph(g) => match kind {
                        DerivedKind::KnnGraph(_) => Response::KnnGraph(g),
                        _ => Response::DelaunayGraph(g),
                    },
                })
            }
        }
    }

    /// The compacted live view for the current epoch (memoized; rebuilt
    /// in `O(live)` from the incrementally maintained live-id list).
    fn live_view(&mut self) -> Arc<LiveView<D>> {
        if let Some(view) = &self.live_view {
            return Arc::clone(view);
        }
        let ids = self.live_ids.clone();
        let pts = ids.iter().map(|&id| self.points[id as usize]).collect();
        let view = Arc::new((ids, pts));
        self.live_view = Some(Arc::clone(&view));
        view
    }

    // ---- typed sugar over `run` ----------------------------------------

    /// Inserts a batch; returns the first assigned id (`None` when empty).
    pub fn insert(&mut self, batch: &[Point<D>]) -> Option<u32> {
        match self.run(Request::Insert(batch.to_vec())) {
            Ok(Response::Inserted { first_id, .. }) => first_id,
            _ => unreachable!("insert is infallible"),
        }
    }

    /// Deletes by value; returns the number of points removed.
    pub fn delete(&mut self, batch: &[Point<D>]) -> usize {
        match self.run(Request::Delete(batch.to_vec())) {
            Ok(Response::Deleted { count }) => count,
            _ => unreachable!("delete is infallible"),
        }
    }

    /// The `k` nearest live neighbors of every query.
    pub fn knn(&mut self, queries: &[Point<D>], k: usize) -> GeoResult<Vec<Vec<Neighbor>>> {
        match self.run(Request::Knn {
            queries: queries.to_vec(),
            k,
        })? {
            Response::Knn(rows) => Ok(rows),
            _ => unreachable!(),
        }
    }

    /// Sorted live ids inside every query box.
    pub fn range(&mut self, boxes: &[Bbox<D>]) -> GeoResult<Vec<Vec<u32>>> {
        match self.run(Request::Range(boxes.to_vec()))? {
            Response::Range(rows) => Ok(rows),
            _ => unreachable!(),
        }
    }

    /// Convex hull vertex ids of the live set (memoized).
    pub fn hull(&mut self) -> GeoResult<Vec<u32>> {
        match self.run(Request::Hull)? {
            Response::Hull(h) => Ok(h),
            _ => unreachable!(),
        }
    }

    /// Smallest enclosing ball of the live set (memoized).
    pub fn seb(&mut self) -> GeoResult<Ball<D>> {
        match self.run(Request::Seb)? {
            Response::Seb(b) => Ok(b),
            _ => unreachable!(),
        }
    }

    /// Closest pair of the live set, over store ids (memoized).
    pub fn closest_pair(&mut self) -> GeoResult<pargeo_closestpair::ClosestPair> {
        match self.run(Request::ClosestPair)? {
            Response::ClosestPair(cp) => Ok(cp),
            _ => unreachable!(),
        }
    }

    /// EMST edges of the live set, over store ids (memoized).
    pub fn emst(&mut self) -> GeoResult<Vec<pargeo_wspd::EmstEdge>> {
        match self.run(Request::Emst)? {
            Response::Emst(e) => Ok(e),
            _ => unreachable!(),
        }
    }

    /// Directed k-NN graph of the live set, over store ids (memoized).
    pub fn knn_graph(&mut self, k: usize) -> GeoResult<Vec<(u32, u32)>> {
        match self.run(Request::KnnGraph { k })? {
            Response::KnnGraph(g) => Ok(g),
            _ => unreachable!(),
        }
    }

    /// Delaunay edges of the live set, over store ids (memoized; 2D only).
    pub fn delaunay_graph(&mut self) -> GeoResult<Vec<(u32, u32)>> {
        match self.run(Request::DelaunayGraph)? {
            Response::DelaunayGraph(g) => Ok(g),
            _ => unreachable!(),
        }
    }
}
