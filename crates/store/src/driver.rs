//! The mixed-workload driver for the store façade.
//!
//! [`run_store_workload`] replays a generated [`Workload`] — including the
//! derived-structure (analytics) ops the index-only engine driver skips —
//! against a [`GeoStore`], timing each traffic class and folding every
//! answer into one order-sensitive digest. Stores over different backends
//! that served the workload correctly produce **identical** digests; the
//! `geostore` bench and the integration suites assert exactly that.

use crate::request::{Request, Response};
use crate::store::GeoStore;
use crate::CacheStats;
use pargeo_datagen::{DerivedOp, Workload, WorkloadOp};
use pargeo_geometry::GeoResult;
use pargeo_obs::{HistSummary, Histogram};
use std::time::Instant;

/// What happened when a workload was replayed against one store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreReport {
    /// Backend label of the store that served the workload.
    pub backend: &'static str,
    /// Morton-prefix shards the index ran over (1 = unsharded; the digest
    /// is shard-count-invariant, the timings are the point).
    pub shards: usize,
    /// Batches per traffic class: (insert, delete, knn, range, derived).
    pub ops: (usize, usize, usize, usize, usize),
    /// Wall-clock seconds in writes (including the initial bulk load).
    pub write_secs: f64,
    /// Wall-clock seconds answering k-NN and range batches.
    pub read_secs: f64,
    /// Wall-clock seconds in derived-structure requests (cache hits
    /// included — their cost is the point).
    pub derived_secs: f64,
    /// Order-sensitive digest over every response (ids and counts;
    /// typed errors fold in as a tag, so two stores agree only if they
    /// also failed identically).
    pub digest: u64,
    /// Requests that returned a typed error (degenerate live sets).
    pub errors: u64,
    /// Live points after the final operation.
    pub final_live: usize,
    /// Memo-cache counters at the end of the run.
    pub cache: CacheStats,
    /// Per-request write latency distribution (nanoseconds; one
    /// observation per insert/delete request, the initial load included).
    pub write_lat: HistSummary,
    /// Per-request read latency distribution (nanoseconds; k-NN and range
    /// requests).
    pub read_lat: HistSummary,
    /// Per-request derived-structure latency distribution (nanoseconds;
    /// cache hits included — their cost is the point).
    pub derived_lat: HistSummary,
    /// Live points per Morton-prefix shard at the end of the run
    /// (single-element when unsharded); sums to `final_live`, and the
    /// spread across entries is the router's balance diagnostic.
    pub shard_live: Vec<usize>,
    /// Heap bytes held by the index's flat arenas after the final
    /// operation (the `index_arena_bytes` gauge's closing value).
    pub arena_bytes: usize,
    /// Structure nodes allocated across the index's arenas after the
    /// final operation (the `index_nodes_total` gauge's closing value).
    pub index_nodes: usize,
}

impl StoreReport {
    /// Total wall-clock seconds across all traffic classes.
    pub fn total_secs(&self) -> f64 {
        self.write_secs + self.read_secs + self.derived_secs
    }
}

fn to_request<const D: usize>(op: &WorkloadOp<D>) -> Request<D> {
    match op {
        WorkloadOp::Insert(batch) => Request::Insert(batch.clone()),
        WorkloadOp::Delete(batch) => Request::Delete(batch.clone()),
        WorkloadOp::Knn(queries, k) => Request::Knn {
            queries: queries.clone(),
            k: *k,
        },
        WorkloadOp::Range(boxes) => Request::Range(boxes.clone()),
        WorkloadOp::Derived(d) => match d {
            DerivedOp::Hull => Request::Hull,
            DerivedOp::Seb => Request::Seb,
            DerivedOp::ClosestPair => Request::ClosestPair,
            DerivedOp::Emst => Request::Emst,
            DerivedOp::KnnGraph(k) => Request::KnnGraph { k: *k },
            DerivedOp::DelaunayGraph => Request::DelaunayGraph,
        },
    }
}

/// Replays `workload` against `store`, returning timings, the answer
/// digest, and cache counters. The store is mutated in place (callers
/// pass a fresh one per run).
pub fn run_store_workload<const D: usize>(
    store: &mut GeoStore<D>,
    workload: &Workload<D>,
) -> StoreReport {
    let mut r = StoreReport {
        backend: store.backend().label(),
        shards: store.shard_count(),
        ..StoreReport::default()
    };
    let write_h = Histogram::new();
    let read_h = Histogram::new();
    let derived_h = Histogram::new();
    let t = Instant::now();
    let resp = store.run(Request::Insert(workload.initial.clone()));
    let dt = t.elapsed();
    write_h.record_duration(dt);
    r.write_secs += dt.as_secs_f64();
    r.digest = fold(r.digest, &resp, &mut r.errors);

    for op in &workload.ops {
        let req = to_request(op);
        let class = match &req {
            Request::Insert(_) => 0,
            Request::Delete(_) => 1,
            Request::Knn { .. } => 2,
            Request::Range(_) => 3,
            _ => 4,
        };
        let t = Instant::now();
        let resp = store.run(req);
        let dt = t.elapsed();
        let secs = dt.as_secs_f64();
        match class {
            0 => {
                write_h.record_duration(dt);
                r.write_secs += secs;
                r.ops.0 += 1;
            }
            1 => {
                write_h.record_duration(dt);
                r.write_secs += secs;
                r.ops.1 += 1;
            }
            2 => {
                read_h.record_duration(dt);
                r.read_secs += secs;
                r.ops.2 += 1;
            }
            3 => {
                read_h.record_duration(dt);
                r.read_secs += secs;
                r.ops.3 += 1;
            }
            _ => {
                derived_h.record_duration(dt);
                r.derived_secs += secs;
                r.ops.4 += 1;
            }
        }
        r.digest = fold(r.digest, &resp, &mut r.errors);
    }
    r.final_live = store.len();
    let stats = store.stats();
    r.cache = stats.cache;
    r.arena_bytes = stats.snapshot.arena_bytes;
    r.index_nodes = stats.snapshot.nodes;
    r.write_lat = write_h.summary();
    r.read_lat = read_h.summary();
    r.derived_lat = derived_h.summary();
    r.shard_live = store.shard_snapshots().iter().map(|s| s.live).collect();
    r
}

fn fold<const D: usize>(digest: u64, resp: &GeoResult<Response<D>>, errors: &mut u64) -> u64 {
    if resp.is_err() {
        *errors += 1;
    }
    crate::request::fold_response_digest(digest, resp)
}
