//! Derived-structure computation over the live point set.
//!
//! Each [`DerivedKind`] maps to one algorithm-crate call through its
//! non-panicking `try_*` entry point, run on the *compacted* live view
//! (positions `0..live`) and remapped to store ids before caching. The
//! dimension-specific algorithms (hull, Delaunay) dispatch on the
//! const-generic `D` at runtime; unsupported dimensions come back as
//! [`GeoError::DimensionUnsupported`], never a panic.
//!
//! The 2D hull and Delaunay kinds are *maintainable*: a full compute can
//! additionally hand back a delta [`Engine`] which later epochs advance
//! in place over insert-only batches ([`advance_engine`]), producing
//! values bit-identical to a fresh compute on the same live view. The
//! canonical full-recompute paths are chosen to make that equivalence
//! exact: quickhull for the hull (minimal-index tie-breaks) and the
//! index-order Bowyer–Watson build for the Delaunay graph (fixed
//! insertion schedule pins the triangle set even on cocircular inputs).

use crate::request::DerivedKind;
use pargeo_closestpair::{try_closest_pair, ClosestPair};
use pargeo_delaunay::{DelaunayBatchOutcome, DelaunayIncremental};
use pargeo_geometry::{Ball, GeoError, GeoResult, Point};
use pargeo_hull::{Hull2dIncremental, HullBatchOutcome};
use pargeo_wspd::EmstEdge;

/// A computed derived structure, id-remapped, ready to cache.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum DerivedVal<const D: usize> {
    /// Hull vertex ids (CCW in 2D, sorted ascending in 3D).
    Hull(Vec<u32>),
    /// Smallest enclosing ball.
    Seb(Ball<D>),
    /// Closest pair over store ids.
    ClosestPair(ClosestPair),
    /// EMST edges over store ids.
    Emst(Vec<EmstEdge>),
    /// Graph edges over store ids (k-NN or Delaunay).
    Graph(Vec<(u32, u32)>),
}

/// Reinterprets a point slice as a different compile-time dimension.
/// Returns `None` unless `D == E`, in which case `Point<D>` and `Point<E>`
/// are the *same* concrete type and the cast is the identity.
fn cast_slice<const D: usize, const E: usize>(pts: &[Point<D>]) -> Option<&[Point<E>]> {
    if D == E {
        // SAFETY: D == E, so Point<D> and Point<E> are the same type; this
        // is an identity cast the type system cannot express directly.
        Some(unsafe { std::slice::from_raw_parts(pts.as_ptr().cast::<Point<E>>(), pts.len()) })
    } else {
        None
    }
}

/// Computes `kind` over the live view: `pts[i]` is the live point with
/// store id `ids[i]` (`ids` strictly ascending).
pub(crate) fn compute<const D: usize>(
    kind: DerivedKind,
    ids: &[u32],
    pts: &[Point<D>],
) -> GeoResult<DerivedVal<D>> {
    match kind {
        DerivedKind::Hull => {
            if let Some(p2) = cast_slice::<D, 2>(pts) {
                let hull = pargeo_hull::try_hull2d(p2)?;
                Ok(DerivedVal::Hull(remap_ids(&hull, ids)))
            } else if let Some(p3) = cast_slice::<D, 3>(pts) {
                let hull = pargeo_hull::try_hull3d(p3)?;
                Ok(DerivedVal::Hull(remap_ids(&hull.vertices, ids)))
            } else {
                Err(GeoError::DimensionUnsupported { op: "hull", dim: D })
            }
        }
        DerivedKind::Seb => Ok(DerivedVal::Seb(pargeo_seb::try_seb(pts)?)),
        DerivedKind::ClosestPair => {
            let cp = try_closest_pair(pts)?;
            let (a, b) = (ids[cp.a as usize], ids[cp.b as usize]);
            Ok(DerivedVal::ClosestPair(ClosestPair {
                a: a.min(b),
                b: a.max(b),
                dist: cp.dist,
            }))
        }
        DerivedKind::Emst => {
            if pts.len() < 2 {
                return Err(GeoError::TooFewPoints {
                    op: "emst",
                    needed: 2,
                    got: pts.len(),
                });
            }
            let edges = pargeo_wspd::emst(pts)
                .into_iter()
                .map(|e| EmstEdge {
                    u: ids[e.u as usize],
                    v: ids[e.v as usize],
                    weight: e.weight,
                })
                .collect();
            Ok(DerivedVal::Emst(edges))
        }
        DerivedKind::KnnGraph(k) => {
            if pts.is_empty() {
                return Err(GeoError::EmptyInput { op: "knn_graph" });
            }
            if k == 0 {
                return Err(GeoError::BadParameter {
                    op: "knn_graph",
                    what: "k must be positive",
                });
            }
            // Each vertex excludes itself, so a k-NN graph needs k < n;
            // reject instead of silently truncating rows (the same typed
            // policy as the Knn request path).
            if k >= pts.len() {
                return Err(GeoError::KTooLarge {
                    op: "knn_graph",
                    k,
                    n: pts.len(),
                });
            }
            let edges = pargeo_graphgen::knn_graph(pts, k);
            Ok(DerivedVal::Graph(remap_edges(&edges, ids)))
        }
        DerivedKind::DelaunayGraph => {
            if let Some(p2) = cast_slice::<D, 2>(pts) {
                // Canonical index-order build (not the randomized parallel
                // variant): on cocircular inputs the triangulation is not
                // unique, and only a fixed insertion schedule keeps full
                // recomputes bit-identical to engine-advanced results.
                let eng = DelaunayIncremental::try_build(p2)?;
                Ok(DerivedVal::Graph(remap_edges(&eng.edges()?, ids)))
            } else {
                Err(GeoError::DimensionUnsupported {
                    op: "delaunay",
                    dim: D,
                })
            }
        }
    }
}

/// A delta-maintenance engine carried inside the memo cache between
/// insert-only epochs. Engines exist only for the maintainable kinds in
/// 2D; everything else always recomputes.
pub(crate) enum Engine {
    /// Incremental 2D hull over the compacted live view.
    Hull2(Hull2dIncremental),
    /// Incremental 2D Delaunay over the compacted live view.
    Delaunay2(DelaunayIncremental),
}

/// Computes `kind` like [`compute`], additionally returning a delta
/// engine for the maintainable kinds when `want_engine` is set (and the
/// value is `Ok`), plus the number of points the octagon prefilter
/// discarded (only ever non-zero for 2D hull with `prefilter` set). The
/// engine-extracted value IS the canonical value: both paths run the same
/// algorithm on the same input. The engine path takes precedence over the
/// prefilter — a delta engine must consume the full live prefix so later
/// batches can advance it, and filtered points would break that anchor.
pub(crate) fn compute_full<const D: usize>(
    kind: DerivedKind,
    ids: &[u32],
    pts: &[Point<D>],
    want_engine: bool,
    prefilter: bool,
) -> (GeoResult<DerivedVal<D>>, Option<Engine>, usize) {
    match kind {
        DerivedKind::Hull if want_engine => {
            let Some(p2) = cast_slice::<D, 2>(pts) else {
                return (compute(kind, ids, pts), None, 0);
            };
            match Hull2dIncremental::try_build(p2) {
                Ok(eng) => match eng.hull(p2) {
                    Ok(h) => (
                        Ok(DerivedVal::Hull(remap_ids(&h, ids))),
                        Some(Engine::Hull2(eng)),
                        0,
                    ),
                    Err(e) => (Err(e), None, 0),
                },
                Err(e) => (Err(e), None, 0),
            }
        }
        DerivedKind::Hull if prefilter => {
            let Some(p2) = cast_slice::<D, 2>(pts) else {
                return (compute(kind, ids, pts), None, 0);
            };
            match pargeo_hull::try_hull2d_prefiltered(p2) {
                Ok((hull, discarded)) => {
                    (Ok(DerivedVal::Hull(remap_ids(&hull, ids))), None, discarded)
                }
                Err(e) => (Err(e), None, 0),
            }
        }
        DerivedKind::DelaunayGraph if want_engine => {
            let Some(p2) = cast_slice::<D, 2>(pts) else {
                return (compute(kind, ids, pts), None, 0);
            };
            match DelaunayIncremental::try_build(p2) {
                Ok(eng) => match eng.edges() {
                    Ok(es) => (
                        Ok(DerivedVal::Graph(remap_edges(&es, ids))),
                        Some(Engine::Delaunay2(eng)),
                        0,
                    ),
                    Err(e) => (Err(e), None, 0),
                },
                Err(e) => (Err(e), None, 0),
            }
        }
        _ => (compute(kind, ids, pts), None, 0),
    }
}

/// Advances a delta engine over the current live view (whose consumed
/// prefix must be unchanged — the store checks the id anchor before
/// calling). Returns the new canonical value, or `None` when the engine
/// declined (damage threshold, bbox growth, shrunken prefix) — the caller
/// must then drop the engine and recompute wholesale.
pub(crate) fn advance_engine<const D: usize>(
    engine: &mut Engine,
    ids: &[u32],
    pts: &[Point<D>],
    max_damage: f64,
) -> Option<DerivedVal<D>> {
    match engine {
        Engine::Hull2(h) => {
            let p2 = cast_slice::<D, 2>(pts)?;
            match h.try_insert_batch(p2, max_damage) {
                Ok(HullBatchOutcome::Applied { .. }) => {
                    let hull = h.hull(p2).ok()?;
                    Some(DerivedVal::Hull(remap_ids(&hull, ids)))
                }
                _ => None,
            }
        }
        Engine::Delaunay2(d) => {
            let p2 = cast_slice::<D, 2>(pts)?;
            let consumed = d.consumed();
            if consumed > p2.len() {
                return None;
            }
            match d.try_insert_batch(&p2[consumed..], max_damage) {
                Ok(DelaunayBatchOutcome::Applied { .. }) => {
                    let edges = d.edges().ok()?;
                    Some(DerivedVal::Graph(remap_edges(&edges, ids)))
                }
                _ => None,
            }
        }
    }
}

fn remap_ids(positions: &[u32], ids: &[u32]) -> Vec<u32> {
    positions.iter().map(|&p| ids[p as usize]).collect()
}

fn remap_edges(edges: &[(u32, u32)], ids: &[u32]) -> Vec<(u32, u32)> {
    edges
        .iter()
        .map(|&(u, v)| (ids[u as usize], ids[v as usize]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_cube;

    #[test]
    fn cast_slice_is_identity_only_for_matching_dims() {
        let pts = uniform_cube::<2>(10, 1);
        assert!(cast_slice::<2, 3>(&pts).is_none());
        match cast_slice::<2, 2>(&pts) {
            Some(p2) => {
                assert_eq!(p2.len(), pts.len());
                assert_eq!(p2[3].coords, pts[3].coords);
            }
            None => panic!("identity cast must succeed"),
        }
    }

    #[test]
    fn hull_rejects_unsupported_dimension() {
        let pts = uniform_cube::<5>(50, 2);
        let ids: Vec<u32> = (0..50).collect();
        assert_eq!(
            compute(DerivedKind::Hull, &ids, &pts),
            Err(GeoError::DimensionUnsupported { op: "hull", dim: 5 })
        );
        assert_eq!(
            compute(DerivedKind::DelaunayGraph, &ids, &pts),
            Err(GeoError::DimensionUnsupported {
                op: "delaunay",
                dim: 5
            })
        );
        // Dimension-agnostic structures still work in 5D.
        assert!(compute(DerivedKind::Seb, &ids, &pts).is_ok());
        assert!(compute(DerivedKind::Emst, &ids, &pts).is_ok());
    }

    #[test]
    fn remapping_translates_compacted_positions_to_store_ids() {
        // Live ids with gaps: position i ↔ id 2i+1.
        let pts = uniform_cube::<2>(40, 3);
        let ids: Vec<u32> = (0..40u32).map(|i| 2 * i + 1).collect();
        let direct = pargeo_hull::try_hull2d(&pts).unwrap();
        match compute(DerivedKind::Hull, &ids, &pts).unwrap() {
            DerivedVal::Hull(h) => {
                assert_eq!(h.len(), direct.len());
                for (got, want) in h.iter().zip(&direct) {
                    assert_eq!(*got, 2 * want + 1);
                }
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
