//! Store-side observability: the metric handles a [`GeoStore`]
//! (crate::GeoStore) registers once at build time and records into on the
//! serve path.
//!
//! All handles are `Arc`s resolved at construction, so the hot path never
//! touches the registry's lock — recording is relaxed atomics only. When
//! the store is built with [`ObsLevel::Off`] (the default) none of this
//! exists and the serve path skips a single `Option` branch.

use crate::request::{MemoPath, Request};
use pargeo_obs::{Counter, Gauge, Histogram, ObsLevel, Registry};
use std::sync::Arc;

/// Request classes metered per store request, in
/// `geostore_requests_total{class=..}` label order.
pub(crate) const CLASSES: [&str; 6] = ["insert", "delete", "knn", "range", "derived", "stats"];

/// Index of `req`'s traffic class in [`CLASSES`].
pub(crate) fn class_of<const D: usize>(req: &Request<D>) -> usize {
    match req {
        Request::Insert(_) => 0,
        Request::Delete(_) => 1,
        Request::Knn { .. } => 2,
        Request::Range(_) => 3,
        Request::Stats => 5,
        _ => 4,
    }
}

/// `geostore_memo_total{path=..}` label order: the three compute paths
/// (mirroring [`MemoPath`]) plus cache hits and spared write runs.
pub(crate) const MEMO_PATHS: [&str; 5] = ["fresh", "incremental", "rebuilt", "hit", "spared"];

/// Index of the memo counter that mirrors `path` in [`MEMO_PATHS`].
pub(crate) fn memo_idx(path: MemoPath) -> usize {
    match path {
        MemoPath::Fresh => 0,
        MemoPath::Incremental => 1,
        MemoPath::Rebuilt => 2,
    }
}

/// Slot of the cache-hit counter in [`MEMO_PATHS`].
pub(crate) const MEMO_HIT: usize = 3;
/// Slot of the spared-write-run counter in [`MEMO_PATHS`].
pub(crate) const MEMO_SPARED: usize = 4;

/// Pre-resolved metric handles for one store. Cloned as an `Arc` at the
/// top of every instrumented method so span guards never borrow `self`.
pub(crate) struct StoreObs {
    /// The registry backing every handle (also serves exposition).
    pub registry: Arc<Registry>,
    /// The level the store was built at (`Metrics` or `Trace`; never
    /// `Off` — an off store has no `StoreObs` at all).
    pub level: ObsLevel,
    /// `geostore_requests_total{class=..}`, indexed by [`CLASSES`].
    pub requests: Vec<Arc<Counter>>,
    /// `geostore_request_nanos{class=..}`, indexed by [`CLASSES`].
    /// Insert/delete observe one coalesced write run per sample; the read
    /// classes observe one sample per request.
    pub class_nanos: Vec<Arc<Histogram>>,
    /// `geostore_memo_total{path=..}`, indexed by [`MEMO_PATHS`].
    pub memo: Vec<Arc<Counter>>,
    /// `geostore_write_epochs_total` — epoch bumps applied.
    pub epochs: Arc<Counter>,
    /// `geostore_pinned_views` — snapshots currently pinned (incremented
    /// at pin, decremented when a [`StoreSnapshot`](crate::StoreSnapshot)
    /// drops).
    pub pinned_views: Arc<Gauge>,
    /// `geostore_queue_depth` — requests sitting in the admission queue.
    pub queue_depth: Arc<Gauge>,
    /// `geostore_pipeline_runs_total` — read runs served through the
    /// pipelined executor (pinned-snapshot path).
    pub pipeline_runs: Arc<Counter>,
    /// `geostore_pipeline_overlapped_total` — read runs whose fan-out
    /// overlapped a following write epoch's apply. The ratio to
    /// `pipeline_runs` is the executor's overlap ratio.
    pub pipeline_overlapped: Arc<Counter>,
    /// `geostore_prefilter_discarded_total` — points the octagon
    /// prefilter removed ahead of wholesale 2D hull recomputes (only
    /// moves when the store was built with `.prefilter(true)`).
    pub prefilter_discarded: Arc<Counter>,
    /// `index_arena_bytes{backend=..}` — heap bytes held by the backing
    /// index's flat arenas (node slabs, coordinate columns, id/liveness
    /// slabs, insert buffers), refreshed from the index [`Snapshot`]
    /// (pargeo_engine::Snapshot) at every write epoch.
    pub index_arena_bytes: Arc<Gauge>,
    /// `index_nodes_total{backend=..}` — structure nodes currently
    /// allocated across the backing index's arenas, refreshed alongside
    /// [`Self::index_arena_bytes`].
    pub index_nodes: Arc<Gauge>,
}

impl StoreObs {
    /// Registers every store-level metric family against `registry`.
    /// `backend` labels the index memory gauges so multi-store registries
    /// keep one time series per backend.
    pub(crate) fn new(registry: Arc<Registry>, level: ObsLevel, backend: &'static str) -> Self {
        let requests = CLASSES
            .iter()
            .map(|c| registry.counter("geostore_requests_total", &[("class", c)]))
            .collect();
        let class_nanos = CLASSES
            .iter()
            .map(|c| registry.histogram("geostore_request_nanos", &[("class", c)]))
            .collect();
        let memo = MEMO_PATHS
            .iter()
            .map(|p| registry.counter("geostore_memo_total", &[("path", p)]))
            .collect();
        let epochs = registry.counter("geostore_write_epochs_total", &[]);
        let pinned_views = registry.gauge("geostore_pinned_views", &[]);
        let queue_depth = registry.gauge("geostore_queue_depth", &[]);
        let pipeline_runs = registry.counter("geostore_pipeline_runs_total", &[]);
        let pipeline_overlapped = registry.counter("geostore_pipeline_overlapped_total", &[]);
        let prefilter_discarded = registry.counter("geostore_prefilter_discarded_total", &[]);
        let index_arena_bytes = registry.gauge("index_arena_bytes", &[("backend", backend)]);
        let index_nodes = registry.gauge("index_nodes_total", &[("backend", backend)]);
        Self {
            registry,
            level,
            requests,
            class_nanos,
            memo,
            epochs,
            pinned_views,
            queue_depth,
            pipeline_runs,
            pipeline_overlapped,
            prefilter_discarded,
            index_arena_bytes,
            index_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::GeoStore;
    use pargeo_datagen::uniform_cube;
    use pargeo_obs::ObsLevel;

    #[test]
    fn memory_gauges_track_the_index_snapshot() {
        let mut store = GeoStore::<2>::builder().observe(ObsLevel::Metrics).build();
        store
            .run(crate::Request::Insert(uniform_cube::<2>(2_000, 7)))
            .expect("insert");
        let snap = store.stats().snapshot;
        assert!(snap.arena_bytes > 0);
        assert!(snap.nodes > 0);
        let text = store
            .registry()
            .expect("observed store")
            .render_prometheus();
        assert!(
            text.contains(&format!(
                "index_arena_bytes{{backend=\"dyn-kd\"}} {}",
                snap.arena_bytes
            )),
            "gauge missing or stale:\n{text}"
        );
        assert!(
            text.contains(&format!(
                "index_nodes_total{{backend=\"dyn-kd\"}} {}",
                snap.nodes
            )),
            "gauge missing or stale:\n{text}"
        );
    }
}
