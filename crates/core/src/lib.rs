//! # ParGeo-rs — a library for parallel computational geometry
//!
//! A Rust reproduction of *"ParGeo: A Library for Parallel Computational
//! Geometry"* (Wang, Yesantharao, Yu, Dhulipala, Gu, Shun — PPoPP 2022).
//! This facade crate re-exports every module; see `DESIGN.md` for the full
//! system inventory and `EXPERIMENTS.md` for the paper-figure
//! reproductions.
//!
//! ## Modules (paper Figure 1)
//!
//! | Paper module | Here |
//! |---|---|
//! | (0) service façade: one typed `Request`/`Response` surface over everything | [`store`] |
//! | (1) static & batch-dynamic kd-trees, k-NN, range search | [`kdtree`], [`bdltree`] |
//! | (1a) unified batch-dynamic engine (`SpatialIndex` over all tree backends) | [`engine`] |
//! | (1b) range / segment / rectangle query engine (Sun & Blelloch) | [`rangequery`] |
//! | (2) computational geometry: hull, SEB, closest pair, BCCP, WSPD, Morton sort | [`hull`], [`seb`], [`closestpair`], [`wspd`], [`morton`] |
//! | (3) spatial graph generators: k-NN graph, β-skeleton, Gabriel, Delaunay, EMST, spanner | [`graphgen`], [`delaunay`], [`wspd`] |
//! | (4) point data generators | [`datagen`] |
//! | — parallel primitives (ParlayLib's role) | [`parlay`] |
//! | — geometry kernel with exact predicates | [`geometry`] |
//! | — observability: metrics registry, spans, latency histograms | [`obs`] |
//!
//! ## Quickstart — the GeoStore façade
//!
//! Every capability below is also reachable through [`store::GeoStore`]:
//! one object owns the point set plus a chosen batch-dynamic index and
//! serves *mixed* batched traffic — updates, spatial queries, and
//! whole-dataset derived structures — through one typed
//! [`Request`](store::Request)/[`Response`](store::Response) surface.
//!
//! ```
//! use pargeo::prelude::*;
//!
//! // 10k uniform points in a square (paper's U distribution).
//! let pts = pargeo::datagen::uniform_cube::<2>(10_000, 42);
//!
//! // Pick a backend (dyn-kd, BDL, or Zd — identical answers), load.
//! let mut store: GeoStore<2> = GeoStore::builder().backend(Backend::DynKd).build();
//! store.insert(&pts);
//!
//! // Batched spatial queries …
//! let nn = store.knn(&pts[..5], 8).unwrap();
//! assert_eq!(nn.len(), 5);
//!
//! // … and whole-dataset derived structures through the same surface.
//! let hull = store.hull().unwrap();
//! assert!(hull.len() >= 3);
//! let ball = store.seb().unwrap();
//! assert!(pts.iter().all(|p| ball.contains(p)));
//! let mst = store.emst().unwrap();
//! assert_eq!(mst.len(), pts.len() - 1);
//!
//! // Mixed batches travel through the epoch planner: adjacent writes
//! // coalesce into one index batch, reads fan out data-parallel, and
//! // derived structures memoize per write epoch.
//! let responses = store.execute(&[
//!     Request::Delete(pts[..100].to_vec()),
//!     Request::Hull,
//!     Request::ClosestPair,
//!     Request::Stats,
//! ]);
//! assert!(responses.iter().all(|r| r.is_ok()));
//!
//! // Shard the spatial core: `.shards(S)` routes the same backend
//! // through a morton-prefix `ShardedIndex` — write batches apply in
//! // parallel across shards, reads fan out only to shards that can
//! // contribute, and answers are bit-identical to the unsharded store.
//! let mut sharded: GeoStore<2> = GeoStore::builder()
//!     .backend(Backend::DynKd)
//!     .shards(8)
//!     .build();
//! sharded.insert(&pts);
//! assert_eq!(sharded.shard_count(), 8);
//! assert_eq!(sharded.knn(&pts[..5], 8).unwrap(), nn);
//!
//! // Observe the serve path: `.observe(..)` gives the store a metrics
//! // registry — per-request-class latency histograms, memo-path
//! // counters, per-shard routing counters — rendered as Prometheus text
//! // or JSON. Off (the default) records nothing; answers are
//! // bit-identical at every level.
//! let mut observed: GeoStore<2> = GeoStore::builder()
//!     .backend(Backend::DynKd)
//!     .shards(4)
//!     .observe(ObsLevel::Metrics)
//!     .build();
//! observed.insert(&pts);
//! assert_eq!(observed.knn(&pts[..5], 8).unwrap(), nn);
//! let registry = observed.registry().unwrap();
//! assert!(registry.render_prometheus().contains("geostore_requests_total"));
//! assert!(registry.render_json().starts_with('{'));
//!
//! // Degenerate input is a typed error, never a panic.
//! let mut empty: GeoStore<2> = GeoStore::builder().build();
//! assert_eq!(empty.hull(), Err(GeoError::EmptyInput { op: "hull2d" }));
//! assert_eq!(
//!     empty.knn(&pts[..1], 3),
//!     Err(GeoError::KTooLarge { op: "knn", k: 3, n: 0 })
//! );
//! ```
//!
//! The per-crate surfaces stay available for direct use:
//!
//! ```
//! use pargeo::prelude::*;
//!
//! let pts = pargeo::datagen::uniform_cube::<2>(10_000, 42);
//!
//! // Convex hull with the reservation-based parallel algorithm.
//! let hull = pargeo::hull::hull2d_randinc(&pts);
//! assert!(hull.len() >= 3);
//!
//! // k-nearest neighbors through a parallel kd-tree.
//! let tree = KdTree::build(&pts, SplitRule::ObjectMedian);
//! let nn = tree.knn(&pts[0], 5);
//! assert_eq!(nn.len(), 5);
//!
//! // Smallest enclosing ball via the sampling-based algorithm.
//! let ball = pargeo::seb::seb_sampling(&pts);
//! assert!(pts.iter().all(|p| ball.contains(p)));
//!
//! // Batched orthogonal range counting through the range tree — the
//! // kd-tree answers the same `BatchQuery` queries interchangeably.
//! let rt = RangeTree2d::build(&pts);
//! let queries: Vec<_> = pargeo::datagen::uniform_rects::<2>(100, 7, 0.2)
//!     .into_iter()
//!     .map(Count)
//!     .collect();
//! let counts = rt.answer_batch(&queries);
//! assert_eq!(counts, tree.answer_batch(&queries));
//! ```
//!
//! ## Module quickstarts
//!
//! **Build a tree** (Module 1) — every spatial index accepts batched
//! updates and batched queries through one [`engine::SpatialIndex`] trait,
//! so backends are interchangeable:
//!
//! ```
//! use pargeo::prelude::*;
//!
//! let pts = pargeo::datagen::uniform_cube::<3>(2_000, 7);
//! // Three batch-dynamic backends, one API.
//! let mut backends: Vec<Box<dyn SpatialIndex<3>>> = vec![
//!     Box::new(DynKdTree::new()),
//!     Box::new(BdlTree::new()),
//!     Box::new(ZdTree::new()),
//! ];
//! for b in &mut backends {
//!     b.insert(&pts[..1_500]);
//!     assert_eq!(b.delete(&pts[..500]), 500);
//!     b.insert(&pts[1_500..]);
//!     let s = b.snapshot();
//!     assert_eq!((s.live, s.inserted, s.deleted), (1_500, 2_000, 500));
//! }
//! // All three serve identical k-NN answers (same neighbor ids, same
//! // order — the deterministic (distance², id) contract).
//! let answers: Vec<Vec<Vec<u32>>> = backends
//!     .iter()
//!     .map(|b| {
//!         b.knn_batch(&pts[500..510], 3)
//!             .into_iter()
//!             .map(|row| row.into_iter().map(|n| n.id).collect())
//!             .collect()
//!     })
//!     .collect();
//! assert_eq!(answers[0], answers[1]);
//! assert_eq!(answers[1], answers[2]);
//! ```
//!
//! **Convex hull** (Module 2) — four parallel 2D methods agree:
//!
//! ```
//! use pargeo::prelude::*;
//!
//! let pts = pargeo::datagen::on_sphere::<2>(2_000, 3);
//! let h1 = hull2d_randinc(&pts);
//! let h2 = hull2d_quickhull_parallel(&pts);
//! let h3 = hull2d_divide_conquer(&pts);
//! assert_eq!(h1.len(), h2.len());
//! assert_eq!(h2.len(), h3.len());
//! ```
//!
//! **Spatial graphs** (Module 3) — k-NN graph and Delaunay triangulation
//! over the same point set:
//!
//! ```
//! use pargeo::prelude::*;
//!
//! let pts = pargeo::datagen::uniform_cube::<2>(500, 5);
//! // Directed k-NN graph: one edge per (point, neighbor) pair.
//! let g = knn_graph(&pts, 4);
//! assert_eq!(g.len(), 500 * 4);
//! // Delaunay triangulation and its edge graph.
//! let tri = delaunay(&pts);
//! let edges = pargeo::delaunay::delaunay_edges(&tri);
//! assert!(edges.len() >= 500); // ≤ 3n - 6, ≥ n for random points
//! ```
//!
//! **Data and workload generation** (Module 4) — deterministic point
//! families plus mixed batch-dynamic operation streams:
//!
//! ```
//! use pargeo::prelude::*;
//!
//! let spec = WorkloadSpec::new("demo", Distribution::InSphere, 1_000, 10);
//! let w: Workload<2> = spec.generate();
//! assert_eq!(w.initial.len(), 1_000);
//! assert_eq!(w.ops.len(), 10);
//! // Replay it on a backend and on the brute-force oracle: identical
//! // answer digests prove the backend served every query correctly.
//! let mut tree = DynKdTree::<2>::new();
//! let mut oracle = VecIndex::<2>::new();
//! let a = run_workload(&mut tree, &w);
//! let b = run_workload(&mut oracle, &w);
//! assert_eq!(a.digest(), b.digest());
//! ```
//!
//! ## Parallelism
//!
//! Every algorithm parallelizes through [`parlay`] on the ambient rayon
//! pool. To measure scaling (the paper's `T1` / `T36h` sweeps), run any
//! closure under a fixed-size pool:
//!
//! ```
//! let t1 = pargeo::parlay::with_threads(1, || {
//!     let pts = pargeo::datagen::uniform_cube::<2>(50_000, 7);
//!     pargeo::hull::hull2d_divide_conquer(&pts).len()
//! });
//! assert!(t1 >= 3);
//! ```

pub use pargeo_bdltree as bdltree;
pub use pargeo_closestpair as closestpair;
pub use pargeo_datagen as datagen;
pub use pargeo_delaunay as delaunay;
pub use pargeo_engine as engine;
pub use pargeo_geometry as geometry;
pub use pargeo_graphgen as graphgen;
pub use pargeo_hull as hull;
pub use pargeo_kdtree as kdtree;
pub use pargeo_morton as morton;
pub use pargeo_obs as obs;
pub use pargeo_parlay as parlay;
pub use pargeo_rangequery as rangequery;
pub use pargeo_sched as sched;
pub use pargeo_seb as seb;
pub use pargeo_store as store;
pub use pargeo_wspd as wspd;

/// The most commonly used types and functions in one import.
pub mod prelude {
    pub use pargeo_bdltree::{BdlTree, ZdTree};
    pub use pargeo_closestpair::{closest_pair, try_closest_pair, ClosestPair};
    pub use pargeo_datagen::{DerivedOp, Distribution, Workload, WorkloadOp, WorkloadSpec};
    pub use pargeo_delaunay::{
        delaunay, delaunay_edges, gabriel_graph, try_delaunay, DelaunayBatchOutcome,
        DelaunayIncremental,
    };
    pub use pargeo_engine::{
        run_workload, Frozen, ShardedIndex, Snapshot, SnapshotView, SpatialIndex, VecIndex,
        WorkloadReport,
    };
    pub use pargeo_geometry::{Ball, Bbox, GeoError, GeoResult, Point, Point2, Point3};
    pub use pargeo_graphgen::{beta_skeleton, knn_graph};
    pub use pargeo_hull::{
        hull2d_divide_conquer, hull2d_quickhull_parallel, hull2d_randinc, hull2d_seq,
        hull3d_divide_conquer, hull3d_pseudo, hull3d_quickhull_parallel, hull3d_randinc,
        hull3d_seq, try_hull2d, try_hull3d, Hull2dIncremental, Hull3d, HullBatchOutcome,
    };
    pub use pargeo_kdtree::{B1Tree, B2Tree, DynKdTree, DynKdView, KdTree, SplitRule, VebTree};
    pub use pargeo_obs::{HistSummary, ObsLevel, Registry};
    pub use pargeo_rangequery::{
        BatchQuery, Count, IntervalTree, RangeTree2d, RectangleSet, Report,
    };
    pub use pargeo_seb::{
        seb_orthant_scan, seb_sampling, seb_welzl_parallel, seb_welzl_parallel_mtf_pivot,
        seb_welzl_seq, try_seb,
    };
    pub use pargeo_store::{
        run_store_workload, Backend, CacheStats, DerivedKind, GeoStore, GeoStoreBuilder, MemoPath,
        Request, Response, StoreReport, StoreSnapshot, StoreStats, DEFAULT_DAMAGE_THRESHOLD,
    };
    pub use pargeo_wspd::{bccp_points, emst, spanner, wspd, EmstEdge};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_wires_everything() {
        let pts = crate::datagen::uniform_cube::<2>(2_000, 1);
        let hull = hull2d_seq(&pts);
        assert!(hull.len() >= 3);
        let ball = seb_welzl_seq(&pts);
        assert!(pts.iter().all(|p| ball.contains(p)));
        let cp = closest_pair(&pts);
        assert!(cp.dist > 0.0);
        let tree = KdTree::build(&pts, SplitRule::ObjectMedian);
        assert_eq!(tree.knn(&pts[0], 3).len(), 3);
        let mst = emst(&pts);
        assert_eq!(mst.len(), pts.len() - 1);
        let rt = RangeTree2d::build(&pts);
        let q = Count(Bbox::from_points(&pts));
        assert_eq!(rt.answer(&q), pts.len());
        assert_eq!(tree.answer(&q), pts.len());
    }
}
