//! Runs every `examples/` walkthrough end-to-end on a small input.
//!
//! `cargo test` builds example targets before running integration tests,
//! so the binaries are guaranteed to exist next to this test's own binary
//! (`target/<profile>/examples/`). Each example honors `PARGEO_N`, which
//! keeps the smoke runs to a few seconds.

use std::path::PathBuf;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "convex_hull_3d",
    "spatial_graphs",
    "dynamic_points",
    "range_queries",
    "geostore",
];

const SMOKE_N: &str = "5000";

fn examples_dir() -> PathBuf {
    // This test binary lives in target/<profile>/deps/; the examples are
    // one level up in target/<profile>/examples/.
    let mut dir = std::env::current_exe().expect("current_exe");
    dir.pop(); // the test binary itself
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir.join("examples")
}

fn run_example(name: &str) {
    let bin = examples_dir().join(name);
    assert!(
        bin.exists(),
        "example binary missing: {} (cargo builds examples before running \
         integration tests, so this indicates a manifest wiring problem)",
        bin.display()
    );
    let out = Command::new(&bin)
        .env("PARGEO_N", SMOKE_N)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
    assert!(
        out.status.success(),
        "example '{name}' exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !out.stdout.is_empty(),
        "example '{name}' printed nothing — walkthroughs should narrate"
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn convex_hull_3d_runs() {
    run_example("convex_hull_3d");
}

#[test]
fn spatial_graphs_runs() {
    run_example("spatial_graphs");
}

#[test]
fn dynamic_points_runs() {
    run_example("dynamic_points");
}

#[test]
fn range_queries_runs() {
    run_example("range_queries");
}

#[test]
fn geostore_runs() {
    run_example("geostore");
}

#[test]
fn smoke_covers_every_example() {
    // Keep EXAMPLES and the per-example tests in sync with the manifest.
    let listed: std::collections::BTreeSet<_> = EXAMPLES.iter().copied().collect();
    assert_eq!(listed.len(), 6);
}
