//! Property tests for the metrics registry: counter monotonicity under
//! concurrent recording, histogram bucket-count conservation, and
//! quantile estimates bounded by bucket-boundary error against a sorted
//! oracle.

use pargeo_obs::{bucket_index, bucket_lower, bucket_upper, Histogram, Registry, NUM_BUCKETS};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Concurrent adds through independently resolved handles of the
    /// same (name, labels) key land on one shared counter, every add is
    /// preserved, and a sampling reader never observes a decrease.
    #[test]
    fn counter_is_monotonic_and_lossless_under_concurrency(
        per_thread in prop::collection::vec(
            prop::collection::vec(1u64..1_000, 1..50),
            1..6,
        ),
    ) {
        let registry = Arc::new(Registry::new());
        let expected: u64 = per_thread.iter().flatten().sum();
        let writers: Vec<_> = per_thread
            .into_iter()
            .map(|adds| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    // Resolve the handle inside the thread: registration
                    // races must still converge on one counter.
                    let c = registry.counter("prop_total", &[("case", "conc")]);
                    for v in adds {
                        c.add(v);
                    }
                })
            })
            .collect();
        let reader = {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let c = registry.counter("prop_total", &[("case", "conc")]);
                let mut last = 0u64;
                for _ in 0..500 {
                    let now = c.get();
                    assert!(now >= last, "counter moved backwards: {last} -> {now}");
                    last = now;
                }
            })
        };
        for w in writers {
            w.join().expect("writer panicked");
        }
        reader.join().expect("reader panicked");
        let got = registry.counter("prop_total", &[("case", "conc")]).get();
        prop_assert_eq!(got, expected);
    }

    /// A histogram conserves its observations: total count equals the
    /// sum of the bucket counts, the sum equals the sum of recorded
    /// values, and the max is exact.
    #[test]
    fn histogram_count_equals_bucket_sum(
        values in prop::collection::vec(0u64..5_000_000_000, 1..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let buckets = h.bucket_counts();
        prop_assert_eq!(buckets.len(), NUM_BUCKETS);
        prop_assert_eq!(buckets.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.max(), values.iter().copied().max().unwrap());
    }

    /// Quantile estimates are bounded by bucket-boundary error: for any
    /// rank the estimate is at least the oracle's rank value and at most
    /// the upper bound of that value's bucket (exact below 4, ≤25%
    /// relative width above).
    #[test]
    fn quantiles_are_within_bucket_boundary_error(
        values in prop::collection::vec(0u64..5_000_000_000, 1..200),
        qs in prop::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in qs {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            let est = h.quantile(q);
            prop_assert!(
                est >= oracle,
                "q={q}: estimate {est} below oracle {oracle}"
            );
            prop_assert!(
                est <= bucket_upper(bucket_index(oracle)),
                "q={q}: estimate {est} above oracle {oracle}'s bucket bound"
            );
        }
    }

    /// Every value lands in a bucket that actually contains it, and the
    /// bucket layout is contiguous and monotone.
    #[test]
    fn bucket_layout_contains_and_orders(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_lower(i) <= v && v <= bucket_upper(i));
        if i > 0 {
            prop_assert_eq!(bucket_upper(i - 1) + 1, bucket_lower(i));
        }
    }
}
