//! The metric primitives: atomic counters, gauges, and log-bucketed
//! latency histograms with quantile estimation.
//!
//! Everything here records through plain atomics — no locks, no
//! allocation — so the parlay fork-join read fan-out can hammer a shared
//! handle from every worker without contention beyond the cache line.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// `inc`/`add` are relaxed atomic adds; the value never decreases, which
/// the proptest suite asserts under concurrent recording.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways (queue depths, live
/// counts, shard spreads).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: values 0–3 get exact buckets, every
/// larger octave `[2^k, 2^{k+1})` splits into 4 sub-buckets, up to the
/// full `u64` range.
pub const NUM_BUCKETS: usize = 252;

/// The bucket a value lands in. Exact below 4; quarter-octave
/// (≤ 25% relative width) above.
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (octave - 2)) & 3) as usize;
        (octave - 1) * 4 + sub
    }
}

/// Largest value that lands in bucket `i` (saturating at `u64::MAX`).
pub fn bucket_upper(i: usize) -> u64 {
    if i < 4 {
        i as u64
    } else {
        let octave = i / 4 + 1;
        let sub = (i % 4) as u128;
        let ub = (1u128 << octave) + ((sub + 1) << (octave - 2)) - 1;
        ub.min(u64::MAX as u128) as u64
    }
}

/// Smallest value that lands in bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        bucket_upper(i - 1).saturating_add(1)
    }
}

/// A log-bucketed histogram of `u64` observations (latencies in
/// nanoseconds, by convention).
///
/// Recording is four relaxed atomic operations; quantile estimation walks
/// a snapshot of the buckets and answers with the containing bucket's
/// upper bound, so estimates are exact below 4 and within the
/// quarter-octave bucket width (≤ 25% relative error) above — the bound
/// the proptest suite asserts against a sorted oracle.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] as nanoseconds (saturating).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the per-bucket counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The `q`-quantile estimate (`0.0 ..= 1.0`): the upper bound of the
    /// bucket holding the rank-`⌈q·n⌉` observation, clamped to the
    /// observed maximum. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Count / sum / max plus the p50/p90/p99 estimates, as one value.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Point-in-time summary of a [`Histogram`] — counts and quantile
/// estimates in the histogram's raw units (nanoseconds by convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Largest observation.
    pub max: u64,
}

impl HistSummary {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Median in milliseconds, reading the raw units as nanoseconds.
    pub fn p50_ms(&self) -> f64 {
        self.p50 as f64 / 1e6
    }

    /// 90th percentile in milliseconds.
    pub fn p90_ms(&self) -> f64 {
        self.p90 as f64 / 1e6
    }

    /// 99th percentile in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.p99 as f64 / 1e6
    }

    /// Maximum in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps into a bucket whose [lower, upper] range
        // contains it, and bucket ranges tile the line in order.
        for i in 1..NUM_BUCKETS {
            assert_eq!(bucket_lower(i), bucket_upper(i - 1).saturating_add(1));
        }
        for v in (0..1_000u64).chain([1 << 20, u64::MAX / 2, u64::MAX]) {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v={v} i={i}");
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        for i in 4..NUM_BUCKETS {
            let lo = bucket_lower(i) as f64;
            let hi = bucket_upper(i) as f64;
            assert!(hi / lo <= 1.25 + 1e-9, "bucket {i}: {lo}..{hi}");
        }
    }

    #[test]
    fn quantiles_of_a_known_set() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        let s = h.summary();
        // Exact below 4, ≤25% above: p50 of 1..=100 is 50.
        assert!(s.p50 >= 50 && s.p50 <= 63, "{s:?}");
        assert!(s.p99 >= 99 && s.p99 <= 100, "{s:?}");
        assert_eq!(s.max, 100);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-25);
        assert_eq!(g.get(), -15);
    }
}
