//! The metrics registry: named, labeled metric families behind one
//! handle, plus structured spans, the bounded trace ring, the slow-op
//! log, and the Prometheus/JSON exposition surface.
//!
//! Lock discipline: the registry map takes a read lock on the fast path
//! (handle lookup) and a write lock only on first registration. Callers
//! on hot paths cache the returned `Arc` handles once, after which every
//! record is pure atomics — the registry lock never sits on a per-point
//! or per-query path.

use crate::metrics::{bucket_upper, Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Owned label set: `(key, value)` pairs, sorted by key at registration.
pub type Labels = Vec<(&'static str, String)>;

/// A metric family key: name plus its sorted label set.
type Key = (&'static str, Labels);

fn key(name: &'static str, labels: &[(&'static str, String)]) -> Key {
    let mut l: Labels = labels.to_vec();
    l.sort_unstable_by_key(|(k, _)| *k);
    (name, l)
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<Key, Arc<Counter>>,
    gauges: BTreeMap<Key, Arc<Gauge>>,
    histograms: BTreeMap<Key, Arc<Histogram>>,
}

/// One completed span or slow op captured with its labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number (gaps mean the ring dropped events).
    pub seq: u64,
    /// The span's scope (e.g. `"epoch"`, `"derived_memo"`).
    pub scope: &'static str,
    /// The labels the span was opened with.
    pub labels: Labels,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
}

struct RingInner {
    events: std::collections::VecDeque<TraceEvent>,
    seq: u64,
    dropped: u64,
}

/// Bounded in-memory ring of completed spans (oldest evicted first).
struct TraceRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner {
                events: std::collections::VecDeque::new(),
                seq: 0,
                dropped: 0,
            }),
        }
    }

    fn push(&self, scope: &'static str, labels: Labels, nanos: u64) {
        let Ok(mut r) = self.inner.lock() else {
            return; // a poisoned trace ring must never take the serve path down
        };
        let seq = r.seq;
        r.seq += 1;
        if r.events.len() == self.capacity {
            r.events.pop_front();
            r.dropped += 1;
        }
        r.events.push_back(TraceEvent {
            seq,
            scope,
            labels,
            nanos,
        });
    }
}

/// Default capacity of the trace ring when tracing is enabled.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// Default capacity of the slow-op log.
pub const DEFAULT_SLOW_CAPACITY: usize = 256;

/// The metrics registry: get-or-create handles to counters, gauges, and
/// histograms keyed by `(name, labels)`, plus spans, the trace ring, and
/// the slow-op log.
///
/// ```
/// use pargeo_obs::Registry;
///
/// let reg = Registry::new();
/// let hits = reg.counter("cache_hits_total", &[("kind", "hull")]);
/// hits.inc();
/// let lat = reg.histogram("request_nanos", &[("class", "knn")]);
/// lat.record(1_500);
/// let text = reg.render_prometheus();
/// assert!(text.contains("cache_hits_total{kind=\"hull\"} 1"));
/// assert!(reg.render_json().starts_with('{'));
/// ```
pub struct Registry {
    inner: RwLock<Inner>,
    trace: Option<TraceRing>,
    slow: TraceRing,
    /// Slow-op threshold in nanoseconds; 0 disables the slow log.
    slow_threshold: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry with metrics only (no trace ring).
    pub fn new() -> Self {
        Self {
            inner: RwLock::new(Inner::default()),
            trace: None,
            slow: TraceRing::new(DEFAULT_SLOW_CAPACITY),
            slow_threshold: AtomicU64::new(0),
        }
    }

    /// A registry that also keeps the last `capacity` completed spans in
    /// an in-memory ring (see [`trace_events`](Self::trace_events)).
    pub fn with_trace(capacity: usize) -> Self {
        Self {
            trace: Some(TraceRing::new(capacity)),
            ..Self::new()
        }
    }

    /// True iff this registry keeps a trace ring.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Captures every span at or above `nanos` wall-time into the slow-op
    /// log (0 disables; the log keeps the most recent
    /// [`DEFAULT_SLOW_CAPACITY`] entries).
    pub fn set_slow_op_threshold_nanos(&self, nanos: u64) {
        self.slow_threshold.store(nanos, Ordering::Relaxed);
    }

    /// The counter registered under `(name, labels)`, created at zero on
    /// first use. Cache the handle on hot paths.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Arc<Counter> {
        let owned: Labels = labels.iter().map(|(k, v)| (*k, v.to_string())).collect();
        let k = key(name, &owned);
        if let Some(c) = self
            .inner
            .read()
            .ok()
            .and_then(|i| i.counters.get(&k).cloned())
        {
            return c;
        }
        let mut i = self.inner.write().unwrap_or_else(|e| e.into_inner());
        i.counters.entry(k).or_default().clone()
    }

    /// The gauge registered under `(name, labels)`.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Arc<Gauge> {
        let owned: Labels = labels.iter().map(|(k, v)| (*k, v.to_string())).collect();
        let k = key(name, &owned);
        if let Some(g) = self
            .inner
            .read()
            .ok()
            .and_then(|i| i.gauges.get(&k).cloned())
        {
            return g;
        }
        let mut i = self.inner.write().unwrap_or_else(|e| e.into_inner());
        i.gauges.entry(k).or_default().clone()
    }

    /// The histogram registered under `(name, labels)`.
    pub fn histogram(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Arc<Histogram> {
        let owned: Labels = labels.iter().map(|(k, v)| (*k, v.to_string())).collect();
        let k = key(name, &owned);
        if let Some(h) = self
            .inner
            .read()
            .ok()
            .and_then(|i| i.histograms.get(&k).cloned())
        {
            return h;
        }
        let mut i = self.inner.write().unwrap_or_else(|e| e.into_inner());
        i.histograms
            .entry(k)
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Opens a span: on drop, its wall-time lands in the
    /// `span_nanos{scope=..}` histogram, the trace ring (if tracing), and
    /// the slow-op log (if at or above the threshold). The labels ride
    /// along into the ring and log only — histogram cardinality stays
    /// bounded by the scope set.
    pub fn span(&self, scope: &'static str, labels: Labels) -> SpanGuard<'_> {
        SpanGuard {
            registry: self,
            hist: self.histogram("span_nanos", &[("scope", scope)]),
            scope,
            labels,
            start: Instant::now(),
        }
    }

    fn finish_span(&self, scope: &'static str, labels: Labels, nanos: u64) {
        let threshold = self.slow_threshold.load(Ordering::Relaxed);
        let slow = threshold != 0 && nanos >= threshold;
        match (&self.trace, slow) {
            (Some(ring), true) => {
                ring.push(scope, labels.clone(), nanos);
                self.slow.push(scope, labels, nanos);
            }
            (Some(ring), false) => ring.push(scope, labels, nanos),
            (None, true) => self.slow.push(scope, labels, nanos),
            (None, false) => {}
        }
    }

    /// The trace ring's events, oldest first (empty when not tracing).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace
            .as_ref()
            .and_then(|t| {
                t.inner
                    .lock()
                    .ok()
                    .map(|r| r.events.iter().cloned().collect())
            })
            .unwrap_or_default()
    }

    /// Spans captured by the slow-op log, oldest first.
    pub fn slow_ops(&self) -> Vec<TraceEvent> {
        self.slow
            .inner
            .lock()
            .ok()
            .map(|r| r.events.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Counter values, sorted by `(name, labels)` — for tests and
    /// programmatic scraping without text parsing.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let i = self.inner.read().unwrap_or_else(|e| e.into_inner());
        i.counters
            .iter()
            .map(|((name, labels), c)| (format!("{name}{}", prom_labels(labels)), c.get()))
            .collect()
    }

    /// Renders every metric in the Prometheus text exposition format:
    /// counters and gauges as single samples, histograms as cumulative
    /// `_bucket{le=..}` samples plus `_sum`/`_count`.
    pub fn render_prometheus(&self) -> String {
        let i = self.inner.read().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let mut last_type: Option<(&str, &str)> = None;
        let mut type_line = |out: &mut String, name: &'static str, kind: &'static str| {
            if last_type != Some((name, kind)) {
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_type = Some((name, kind));
            }
        };
        for ((name, labels), c) in &i.counters {
            type_line(&mut out, name, "counter");
            out.push_str(&format!("{name}{} {}\n", prom_labels(labels), c.get()));
        }
        for ((name, labels), g) in &i.gauges {
            type_line(&mut out, name, "gauge");
            out.push_str(&format!("{name}{} {}\n", prom_labels(labels), g.get()));
        }
        for ((name, labels), h) in &i.histograms {
            type_line(&mut out, name, "histogram");
            let counts = h.bucket_counts();
            let mut cum = 0u64;
            for (b, &n) in counts.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cum += n;
                let mut l = labels.clone();
                l.push(("le", bucket_upper(b).to_string()));
                out.push_str(&format!("{name}_bucket{} {cum}\n", prom_labels(&l)));
            }
            let mut l = labels.clone();
            l.push(("le", "+Inf".to_string()));
            out.push_str(&format!("{name}_bucket{} {cum}\n", prom_labels(&l)));
            out.push_str(&format!("{name}_sum{} {}\n", prom_labels(labels), h.sum()));
            out.push_str(&format!("{name}_count{} {cum}\n", prom_labels(labels)));
        }
        out
    }

    /// Renders the registry — metrics with quantile summaries, the trace
    /// ring, and the slow-op log — as one JSON object.
    pub fn render_json(&self) -> String {
        let i = self.inner.read().unwrap_or_else(|e| e.into_inner());
        let mut out = String::from("{\"counters\":[");
        push_joined(&mut out, i.counters.iter(), |out, ((name, labels), c)| {
            out.push_str(&format!(
                "{{\"name\":{},\"labels\":{},\"value\":{}}}",
                json_str(name),
                json_labels(labels),
                c.get()
            ));
        });
        out.push_str("],\"gauges\":[");
        push_joined(&mut out, i.gauges.iter(), |out, ((name, labels), g)| {
            out.push_str(&format!(
                "{{\"name\":{},\"labels\":{},\"value\":{}}}",
                json_str(name),
                json_labels(labels),
                g.get()
            ));
        });
        out.push_str("],\"histograms\":[");
        push_joined(&mut out, i.histograms.iter(), |out, ((name, labels), h)| {
            let s = h.summary();
            out.push_str(&format!(
                "{{\"name\":{},\"labels\":{},\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                json_str(name),
                json_labels(labels),
                s.count,
                s.sum,
                s.p50,
                s.p90,
                s.p99,
                s.max
            ));
        });
        drop(i);
        out.push_str("],\"trace\":[");
        push_joined(&mut out, self.trace_events().iter(), push_event);
        out.push_str("],\"slow_ops\":[");
        push_joined(&mut out, self.slow_ops().iter(), push_event);
        out.push_str("]}");
        out
    }
}

/// A live span: records its wall-time on drop. Created by
/// [`Registry::span`] or the [`span!`](crate::span!) macro.
pub struct SpanGuard<'r> {
    registry: &'r Registry,
    hist: Arc<Histogram>,
    scope: &'static str,
    labels: Labels,
    start: Instant,
}

impl SpanGuard<'_> {
    /// Appends a label discovered mid-span (e.g. the memo path taken).
    pub fn label(&mut self, k: &'static str, v: impl ToString) {
        self.labels.push((k, v.to_string()));
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.hist.record(nanos);
        self.registry
            .finish_span(self.scope, std::mem::take(&mut self.labels), nanos);
    }
}

/// Opens a [`SpanGuard`] on a registry with `key = value` labels:
///
/// ```
/// use pargeo_obs::{span, Registry};
///
/// let reg = Registry::with_trace(64);
/// {
///     let mut s = span!(reg, "epoch", epoch = 3, class = "insert");
///     s.label("memo_path", "incremental");
/// }
/// let events = reg.trace_events();
/// assert_eq!(events[0].scope, "epoch");
/// assert_eq!(events[0].labels[0], ("epoch", "3".to_string()));
/// ```
#[macro_export]
macro_rules! span {
    ($reg:expr, $scope:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $reg.span($scope, vec![$((stringify!($k), $v.to_string())),*])
    };
}

fn push_joined<T>(out: &mut String, items: impl Iterator<Item = T>, f: impl Fn(&mut String, T)) {
    for (n, item) in items.enumerate() {
        if n > 0 {
            out.push(',');
        }
        f(out, item);
    }
}

fn push_event(out: &mut String, e: &TraceEvent) {
    out.push_str(&format!(
        "{{\"seq\":{},\"scope\":{},\"labels\":{},\"nanos\":{}}}",
        e.seq,
        json_str(e.scope),
        json_labels(&e.labels),
        e.nanos
    ));
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_labels(labels: &[(&'static str, String)]) -> String {
    let mut out = String::from("{");
    for (n, (k, v)) in labels.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json_str(k), json_str(v)));
    }
    out.push('}');
    out
}

/// `{k="v",…}` in Prometheus label syntax (empty string for no labels).
fn prom_labels(labels: &[(&'static str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (n, (k, v)) in labels.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_key() {
        let reg = Registry::new();
        let a = reg.counter("x_total", &[("s", "1")]);
        let b = reg.counter("x_total", &[("s", "1")]);
        let c = reg.counter("x_total", &[("s", "2")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(c.get(), 0);
        // Label order does not split the family.
        let h1 = reg.histogram("h", &[("a", "1"), ("b", "2")]);
        let h2 = reg.histogram("h", &[("b", "2"), ("a", "1")]);
        h1.record(5);
        assert_eq!(h2.count(), 1);
    }

    #[test]
    fn prometheus_rendering_has_types_buckets_and_cumulative_counts() {
        let reg = Registry::new();
        reg.counter("ops_total", &[("class", "knn")]).add(3);
        reg.gauge("live", &[]).set(-7);
        let h = reg.histogram("lat_nanos", &[]);
        h.record(1);
        h.record(1);
        h.record(100);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE ops_total counter"), "{text}");
        assert!(text.contains("ops_total{class=\"knn\"} 3"), "{text}");
        assert!(text.contains("live -7"), "{text}");
        assert!(text.contains("# TYPE lat_nanos histogram"), "{text}");
        assert!(text.contains("lat_nanos_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("lat_nanos_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_nanos_sum 102"), "{text}");
        assert!(text.contains("lat_nanos_count 3"), "{text}");
    }

    #[test]
    fn json_rendering_is_balanced_and_escaped() {
        let reg = Registry::with_trace(8);
        reg.counter("c_total", &[("weird", "a\"b\\c\n")]).inc();
        drop(reg.span("scope", vec![("k", "v".to_string())]));
        let json = reg.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a\\\"b\\\\c\\n\""), "{json}");
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"trace\""));
        // Balanced braces/brackets outside string context is a cheap
        // well-formedness proxy; the CI smoke runs a real JSON parser.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in json.chars() {
            match (in_str, esc, c) {
                (true, true, _) => esc = false,
                (true, false, '\\') => esc = true,
                (true, false, '"') => in_str = false,
                (true, _, _) => {}
                (false, _, '"') => in_str = true,
                (false, _, '{' | '[') => depth += 1,
                (false, _, '}' | ']') => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn trace_ring_is_bounded_and_slow_log_filters() {
        let reg = Registry::with_trace(4);
        reg.set_slow_op_threshold_nanos(1);
        for i in 0..10u64 {
            drop(span!(reg, "op", i = i));
        }
        let events = reg.trace_events();
        assert_eq!(events.len(), 4);
        // Oldest evicted: sequence numbers are the last four.
        assert_eq!(events[0].seq, 6);
        assert_eq!(events[3].seq, 9);
        // Every span took ≥ 1ns, so all land in the slow log (capped).
        assert_eq!(reg.slow_ops().len(), 10.min(DEFAULT_SLOW_CAPACITY));
        let off = Registry::new();
        drop(off.span("op", vec![]));
        assert!(off.slow_ops().is_empty());
        assert!(off.trace_events().is_empty());
        assert!(!off.tracing());
    }
}
