//! # pargeo-obs — observability for the ParGeo serving stack
//!
//! A dependency-free (std-only, shim-style like `crates/shims/`)
//! observability layer the serve path can afford to keep on:
//!
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) — pure-atomic
//!   recording, so the parlay fork-join read fan-out can record from
//!   every worker without locks. Histograms are log-bucketed
//!   (quarter-octave buckets, ≤ 25% relative width) with p50/p90/p99/max
//!   quantile estimation ([`HistSummary`]).
//! * **Registry** ([`Registry`]) — named, labeled metric families with
//!   get-or-create `Arc` handles (read-lock fast path, write lock only on
//!   first registration) and two exposition surfaces:
//!   [`render_prometheus`](Registry::render_prometheus) (text format) and
//!   [`render_json`](Registry::render_json).
//! * **Spans** ([`SpanGuard`], the [`span!`] macro) — wall-time guards
//!   that record into a per-scope histogram and optionally append to a
//!   bounded in-memory trace ring ([`TraceEvent`]: epoch id, request
//!   class, shard id, memo path — whatever labels the caller attaches),
//!   plus a slow-op log capturing every span at or above a configurable
//!   threshold.
//! * **[`ObsLevel`]** — the dial consumers expose (`GeoStore::builder()
//!   .observe(..)`): `Off` compiles the whole layer down to a skipped
//!   `Option` branch, `Metrics` records counters and histograms,
//!   `Trace` adds the ring and slow-op log.
//!
//! Determinism contract: observation never touches answers. An
//! instrumented run must produce bit-identical response digests to an
//! unobserved one — the store's integration suite asserts exactly that.
//!
//! ```
//! use pargeo_obs::{span, ObsLevel, Registry};
//!
//! let reg = Registry::with_trace(256);
//! let requests = reg.counter("requests_total", &[("class", "knn")]);
//! let latency = reg.histogram("request_nanos", &[("class", "knn")]);
//! requests.inc();
//! latency.record(42_000);
//! {
//!     let mut s = span!(reg, "epoch", epoch = 7, class = "insert");
//!     s.label("memo_path", "incremental");
//! } // records wall-time on drop
//! assert_eq!(reg.trace_events().len(), 1);
//! assert!(reg.render_prometheus().contains("requests_total{class=\"knn\"} 1"));
//! assert!(ObsLevel::default() == ObsLevel::Off && !ObsLevel::Off.is_on());
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod registry;

pub use metrics::{
    bucket_index, bucket_lower, bucket_upper, Counter, Gauge, HistSummary, Histogram, NUM_BUCKETS,
};
pub use registry::{
    Labels, Registry, SpanGuard, TraceEvent, DEFAULT_SLOW_CAPACITY, DEFAULT_TRACE_CAPACITY,
};

/// How much the instrumented layers observe. The default is [`Off`]:
/// observation must be asked for, and the off path is a skipped `Option`
/// branch on the serve path — no atomics, no `Instant` reads.
///
/// [`Off`]: ObsLevel::Off
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsLevel {
    /// No observation (the default): no registry is created.
    #[default]
    Off,
    /// Counters and latency histograms (span wall-times included).
    Metrics,
    /// [`Metrics`](ObsLevel::Metrics) plus the bounded trace ring and the
    /// slow-op log.
    Trace,
}

impl ObsLevel {
    /// True iff any observation is on.
    pub fn is_on(self) -> bool {
        self != ObsLevel::Off
    }

    /// True iff the trace ring and slow-op log are kept.
    pub fn tracing(self) -> bool {
        self == ObsLevel::Trace
    }

    /// Builds the registry this level asks for (`None` when off).
    pub fn build_registry(self) -> Option<std::sync::Arc<Registry>> {
        match self {
            ObsLevel::Off => None,
            ObsLevel::Metrics => Some(std::sync::Arc::new(Registry::new())),
            ObsLevel::Trace => Some(std::sync::Arc::new(Registry::with_trace(
                DEFAULT_TRACE_CAPACITY,
            ))),
        }
    }
}
