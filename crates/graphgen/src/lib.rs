//! # pargeo-graphgen — spatial graph generators (paper Module 3)
//!
//! Every generator in Figure 1's graph module:
//!
//! * [`knn_graph`] — directed k-nearest-neighbor graph via the kd-tree's
//!   data-parallel batch k-NN.
//! * [`beta_skeleton`] — lune-based β-skeleton for `β ≥ 1`: candidate edges
//!   come from the Delaunay triangulation (the β ≥ 1 skeleton is a Delaunay
//!   subgraph) and each is verified with kd-tree range searches over the
//!   lune, exactly the paper's "range search is used to generate the
//!   β-skeleton graph".
//! * [`gabriel_graph`] — re-exported from `pargeo-delaunay` (the β = 1
//!   skeleton, extracted locally from the triangulation).
//! * [`delaunay_graph`] — Delaunay edges.
//! * [`spanner`] / [`emst`] — re-exported WSPD clients, completing the
//!   module's generator list.

#![warn(missing_docs)]

use pargeo_delaunay::{delaunay, delaunay_edges};
use pargeo_geometry::{Point, Point2};
use pargeo_kdtree::{KdTree, SplitRule};
use rayon::prelude::*;

pub use pargeo_delaunay::gabriel_graph;
pub use pargeo_wspd::emst::emst;
pub use pargeo_wspd::spanner::spanner;

/// Directed k-NN edges `(i, j)`: `j` is one of the `k` nearest neighbors
/// of `i` (self excluded; duplicates of `i`'s position count as
/// neighbors at distance zero).
pub fn knn_graph<const D: usize>(points: &[Point<D>], k: usize) -> Vec<(u32, u32)> {
    if points.len() <= 1 || k == 0 {
        return Vec::new();
    }
    let tree = KdTree::build(points, SplitRule::ObjectMedian);
    // Ask for k+1 and drop the self hit.
    let rows = tree.knn_batch(points, k + 1);
    rows.into_par_iter()
        .enumerate()
        .flat_map_iter(|(i, row)| {
            row.into_iter()
                .filter(move |n| n.id as usize != i)
                .take(k)
                .map(move |n| (i as u32, n.id))
        })
        .collect()
}

/// The Delaunay graph (undirected, deduplicated edges).
pub fn delaunay_graph(points: &[Point2]) -> Vec<(u32, u32)> {
    delaunay_edges(&delaunay(points))
}

/// Lune-based β-skeleton for `β ≥ 1` (β = 1 is the Gabriel graph; larger β
/// keeps fewer edges).
///
/// An edge `(u, v)` survives iff no third point lies strictly inside the
/// lune — the intersection of the two disks of radius `β·|uv|/2` centered
/// at `(1 − β/2)·u + (β/2)·v` and symmetrically.
pub fn beta_skeleton(points: &[Point2], beta: f64) -> Vec<(u32, u32)> {
    assert!(beta >= 1.0, "lune-based beta-skeleton requires beta >= 1");
    let d = delaunay(points);
    let candidates = delaunay_edges(&d);
    if candidates.is_empty() {
        return Vec::new();
    }
    let tree = KdTree::build(points, SplitRule::ObjectMedian);
    candidates
        .into_par_iter()
        .filter(|&(u, v)| {
            let pu = points[u as usize];
            let pv = points[v as usize];
            let len = pu.dist(&pv);
            if len == 0.0 {
                return true; // duplicate positions: empty lune
            }
            let r = beta * len / 2.0;
            let c1 = pu + (pv - pu) * (beta / 2.0);
            let c2 = pv + (pu - pv) * (beta / 2.0);
            // Range search the smaller disk, then test lune membership
            // (order-insensitive, so skip the sorted-output contract).
            let hits = tree.range_ball_unsorted(&c1, r);
            let r_sq = r * r;
            hits.into_iter().all(|w| {
                if w == u || w == v {
                    return true;
                }
                let pw = points[w as usize];
                let same_as_endpoint = pw == pu || pw == pv;
                // Strictly inside both disks ⇒ inside the open lune.
                let inside = pw.dist_sq(&c1) < r_sq * (1.0 - 1e-12)
                    && pw.dist_sq(&c2) < r_sq * (1.0 - 1e-12);
                same_as_endpoint || !inside
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_cube;
    use pargeo_kdtree::knn_brute_force;

    #[test]
    fn knn_graph_matches_brute_force() {
        let pts = uniform_cube::<2>(300, 1);
        let k = 4;
        let edges = knn_graph(&pts, k);
        assert_eq!(edges.len(), 300 * k);
        let mut adj: std::collections::HashMap<u32, Vec<u32>> = Default::default();
        for (u, v) in edges {
            adj.entry(u).or_default().push(v);
        }
        for (i, p) in pts.iter().enumerate() {
            let want = knn_brute_force(&pts, p, k + 1);
            let want_dists: Vec<f64> = want
                .iter()
                .filter(|n| n.id as usize != i)
                .take(k)
                .map(|n| n.dist_sq)
                .collect();
            let mut got_dists: Vec<f64> = adj[&(i as u32)]
                .iter()
                .map(|&j| p.dist_sq(&pts[j as usize]))
                .collect();
            got_dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (g, w) in got_dists.iter().zip(&want_dists) {
                assert!((g - w).abs() < 1e-9, "point {i}");
            }
        }
    }

    #[test]
    fn beta_one_equals_gabriel() {
        let pts = uniform_cube::<2>(400, 2);
        let d = pargeo_delaunay::delaunay(&pts);
        let mut gabriel = gabriel_graph(&pts, &d);
        gabriel.sort_unstable();
        let mut beta1 = beta_skeleton(&pts, 1.0);
        beta1.sort_unstable();
        assert_eq!(beta1, gabriel);
    }

    #[test]
    fn larger_beta_is_sparser_subset() {
        let pts = uniform_cube::<2>(500, 3);
        let b1: std::collections::HashSet<(u32, u32)> =
            beta_skeleton(&pts, 1.0).into_iter().collect();
        let b15: std::collections::HashSet<(u32, u32)> =
            beta_skeleton(&pts, 1.5).into_iter().collect();
        let b2: std::collections::HashSet<(u32, u32)> =
            beta_skeleton(&pts, 2.0).into_iter().collect();
        assert!(b15.is_subset(&b1));
        assert!(b2.is_subset(&b15));
        assert!(b2.len() < b1.len());
    }

    #[test]
    fn beta_skeleton_brute_force_check() {
        // Direct definition check for a small instance.
        let pts = uniform_cube::<2>(80, 4);
        let beta = 1.3;
        let got: std::collections::HashSet<(u32, u32)> =
            beta_skeleton(&pts, beta).into_iter().collect();
        // Every returned edge must have an empty lune.
        for &(u, v) in &got {
            let pu = pts[u as usize];
            let pv = pts[v as usize];
            let r = beta * pu.dist(&pv) / 2.0;
            let c1 = pu + (pv - pu) * (beta / 2.0);
            let c2 = pv + (pu - pv) * (beta / 2.0);
            for (w, pw) in pts.iter().enumerate() {
                if w as u32 == u || w as u32 == v {
                    continue;
                }
                let inside = pw.dist(&c1) < r * (1.0 - 1e-9) && pw.dist(&c2) < r * (1.0 - 1e-9);
                assert!(!inside, "edge ({u},{v}) has point {w} in its lune");
            }
        }
        assert!(!got.is_empty());
    }

    #[test]
    fn delaunay_graph_size() {
        let n = 500;
        let pts = uniform_cube::<2>(n, 5);
        let edges = delaunay_graph(&pts);
        assert!(edges.len() <= 3 * n - 6);
        assert!(edges.len() >= n - 1);
    }

    #[test]
    fn empty_inputs() {
        assert!(knn_graph::<2>(&[], 3).is_empty());
        assert!(delaunay_graph(&[]).is_empty());
        assert!(beta_skeleton(&[], 1.5).is_empty());
    }
}
