//! `BatchQuery` backends for the batch-dynamic trees.
//!
//! The read path of the engine stays swappable with the static query
//! structures of `pargeo-rangequery`: a [`BdlTree`] or [`ZdTree`] answers
//! the same `Count<Bbox>` / `Report<Bbox>` batched queries as `RangeTree2d`
//! and the static kd-tree, with the same sorted-ids reporting contract —
//! so a serving layer can point read-only traffic at whichever backend the
//! update rate justifies.

use crate::{BdlTree, ZdTree};
use pargeo_geometry::Bbox;
use pargeo_rangequery::{BatchQuery, Count, Report};

/// BDL-tree backend: box counting.
impl<const D: usize> BatchQuery<Count<Bbox<D>>> for BdlTree<D> {
    type Answer = usize;

    fn answer(&self, query: &Count<Bbox<D>>) -> usize {
        self.count_box(&query.0)
    }
}

/// BDL-tree backend: box reporting (sorted insertion-order ids).
impl<const D: usize> BatchQuery<Report<Bbox<D>>> for BdlTree<D> {
    type Answer = Vec<u32>;

    fn answer(&self, query: &Report<Bbox<D>>) -> Vec<u32> {
        self.range_box(&query.0)
    }
}

/// Zd-tree backend: box counting.
impl<const D: usize> BatchQuery<Count<Bbox<D>>> for ZdTree<D> {
    type Answer = usize;

    fn answer(&self, query: &Count<Bbox<D>>) -> usize {
        self.count_box(&query.0)
    }
}

/// Zd-tree backend: box reporting (sorted insertion-order ids).
impl<const D: usize> BatchQuery<Report<Bbox<D>>> for ZdTree<D> {
    type Answer = Vec<u32>;

    fn answer(&self, query: &Report<Bbox<D>>) -> Vec<u32> {
        self.range_box(&query.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::{uniform_cube, uniform_rects};

    #[test]
    fn dynamic_backends_match_direct_calls() {
        let pts = uniform_cube::<2>(2_000, 1);
        let boxes = uniform_rects::<2>(40, 2, 0.3);
        let mut bdl = BdlTree::<2>::with_buffer_size(128);
        bdl.insert(&pts);
        let mut zd = ZdTree::from_points(&pts[..1_000]);
        zd.insert(&pts[1_000..]);
        let counts: Vec<Count<Bbox<2>>> = boxes.iter().map(|&b| Count(b)).collect();
        let reports: Vec<Report<Bbox<2>>> = boxes.iter().map(|&b| Report(b)).collect();
        for (c, r) in bdl
            .answer_batch(&counts)
            .iter()
            .zip(bdl.answer_batch(&reports))
        {
            assert_eq!(*c, r.len());
        }
        // Both dynamic backends report the same ids (insertion order is the
        // same update stream).
        assert_eq!(bdl.answer_batch(&reports), zd.answer_batch(&reports));
    }
}
