//! The BDL-tree (paper §5, Appendix C.2–C.4).

use pargeo_geometry::{Bbox, Point};
use pargeo_kdtree::knn::{KnnBuffer, Neighbor};
use pargeo_kdtree::tree::{BuildParams, SplitRule};
use pargeo_kdtree::veb::VebTree;
use rayon::prelude::*;

/// Default buffer-tree size `X` (tunable; the paper treats it as a
/// performance constant).
pub const DEFAULT_BUFFER_SIZE: usize = 1024;

/// A parallel batch-dynamic kd-tree: log-structured set of vEB-layout
/// static trees with capacities `X·2^i`, plus a flat buffer of size `< X`.
#[derive(Debug, Clone)]
pub struct BdlTree<const D: usize> {
    /// Buffer holding `< x` points (the paper's buffer kd-tree; at this
    /// size a flat scan is the fastest possible "tree").
    buffer: Vec<(Point<D>, u32)>,
    /// `trees[i]` has capacity `x << i` when occupied.
    trees: Vec<Option<VebTree<D>>>,
    x: usize,
    rule: SplitRule,
    /// Points per vEB leaf (defaults from [`BuildParams`], so the
    /// `PARGEO_LEAF` override applies to the whole cascade).
    leaf_size: usize,
    live: usize,
    next_id: u32,
    epoch: u64,
    rebuilds: u64,
}

impl<const D: usize> BdlTree<D> {
    /// Creates an empty BDL-tree with the default buffer size.
    pub fn new() -> Self {
        Self::with_buffer_size(DEFAULT_BUFFER_SIZE)
    }

    /// Creates an empty BDL-tree with buffer size `x ≥ 1`.
    pub fn with_buffer_size(x: usize) -> Self {
        Self::with_config(x, SplitRule::ObjectMedian)
    }

    /// Creates an empty BDL-tree with an explicit buffer size and split
    /// rule (object vs spatial median, the §6.3 comparison axis).
    pub fn with_config(x: usize, rule: SplitRule) -> Self {
        assert!(x >= 1);
        Self {
            buffer: Vec::with_capacity(x),
            trees: Vec::new(),
            x,
            rule,
            leaf_size: BuildParams::default().leaf_size,
            live: 0,
            next_id: 0,
            epoch: 0,
            rebuilds: 0,
        }
    }

    /// Builds a BDL-tree from an initial point set (a single batch insert).
    pub fn from_points(points: &[Point<D>]) -> Self {
        let mut t = Self::new();
        t.insert(points);
        t
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff no points are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Buffer size `X`.
    pub fn buffer_size(&self) -> usize {
        self.x
    }

    /// Update batches (inserts or deletes) applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Static vEB trees constructed so far by the logarithmic cascade
    /// (including rebuild-after-shrink constructions).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Total points ever inserted (ids are assigned from this counter).
    pub fn total_inserted(&self) -> u64 {
        self.next_id as u64
    }

    /// Occupancy bitmask `F` of the static trees (bit `i` ⇔ `trees[i]`
    /// holds points).
    pub fn bitmask(&self) -> u64 {
        let mut f = 0u64;
        for (i, t) in self.trees.iter().enumerate() {
            if t.as_ref().map(|t| !t.is_empty()).unwrap_or(false) {
                f |= 1 << i;
            }
        }
        f
    }

    /// Batch insert (Algorithm 3).
    pub fn insert(&mut self, batch: &[Point<D>]) {
        self.epoch += 1;
        let items: Vec<(Point<D>, u32)> = batch
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, self.next_id + i as u32))
            .collect();
        self.next_id += batch.len() as u32;
        self.insert_items(items);
    }

    /// Internal insert preserving existing ids (used by delete's
    /// reinsertion step).
    fn insert_items(&mut self, mut items: Vec<(Point<D>, u32)>) {
        self.live += items.len();
        // Route |items| mod X into the buffer; on overflow the buffer
        // contributes X points back to the batch.
        let rem = items.len() % self.x;
        let spill: Vec<(Point<D>, u32)> = items.split_off(items.len() - rem);
        self.buffer.extend(spill);
        if self.buffer.len() >= self.x {
            let take: Vec<(Point<D>, u32)> = self.buffer.drain(..self.x).collect();
            items.extend(take);
        }
        if items.is_empty() {
            return;
        }
        debug_assert_eq!(items.len() % self.x, 0);
        let k = (items.len() / self.x) as u64;
        let f = self.bitmask();
        let f_new = f + k;
        let to_destroy = f & !f_new;
        let to_create = f_new & !f;
        // Gather points of destroyed trees plus the batch into a pool.
        let mut pool = items;
        for i in 0..64 {
            if to_destroy >> i & 1 == 1 {
                if let Some(t) = self.trees.get_mut(i).and_then(|t| t.take()) {
                    pool.extend(t.collect_live());
                }
            }
        }
        // Grow the tree list as needed.
        let top_bit = 64 - f_new.leading_zeros() as usize;
        while self.trees.len() < top_bit {
            self.trees.push(None);
        }
        // Construct the new trees in parallel: ascending bits take their
        // exact capacity from the pool (binary arithmetic guarantees the
        // pool covers them when no deletions occurred; shortfalls from past
        // deletions land in the highest new tree).
        let mut jobs: Vec<(usize, Vec<(Point<D>, u32)>)> = Vec::new();
        let mut create_bits: Vec<usize> = (0..64).filter(|i| to_create >> i & 1 == 1).collect();
        if let Some(&last) = create_bits.last() {
            let mut offset = 0usize;
            for &i in &create_bits[..create_bits.len() - 1] {
                let cap = self.x << i;
                let take = cap.min(pool.len() - offset);
                jobs.push((i, pool[offset..offset + take].to_vec()));
                offset += take;
            }
            jobs.push((last, pool[offset..].to_vec()));
        }
        create_bits.clear();
        let rule = self.rule;
        let leaf_size = self.leaf_size;
        let built: Vec<(usize, VebTree<D>)> = jobs
            .into_par_iter()
            .map(|(i, pts)| (i, VebTree::build_with(&pts, leaf_size, rule)))
            .collect();
        self.rebuilds += built.len() as u64;
        for (i, t) in built {
            debug_assert!(self.trees[i].is_none());
            if !t.is_empty() {
                self.trees[i] = Some(t);
            }
        }
    }

    /// Batch delete by point value (Algorithm 4). All live copies of each
    /// query point are removed. Returns the number of deleted points.
    pub fn delete(&mut self, batch: &[Point<D>]) -> usize {
        self.epoch += 1;
        if batch.is_empty() || self.live == 0 {
            return 0;
        }
        // Buffer deletion.
        let victims: std::collections::HashSet<_> = batch.iter().map(Point::bits_key).collect();
        let before_buf = self.buffer.len();
        self.buffer
            .retain(|(p, _)| !victims.contains(&p.bits_key()));
        let mut deleted = before_buf - self.buffer.len();
        // Parallel bulk erase across all occupied trees.
        let counts: Vec<usize> = self
            .trees
            .par_iter_mut()
            .map(|slot| match slot {
                Some(t) => t.erase(batch),
                None => 0,
            })
            .collect();
        deleted += counts.iter().sum::<usize>();
        self.live -= deleted;
        // Drain trees below half capacity and reinsert their survivors.
        let mut reinsert: Vec<(Point<D>, u32)> = Vec::new();
        for (i, slot) in self.trees.iter_mut().enumerate() {
            let drain = match slot {
                Some(t) => t.is_empty() || 2 * t.len() < (self.x << i),
                None => false,
            };
            if drain {
                let t = slot.take().unwrap();
                reinsert.extend(t.collect_live());
            }
        }
        if !reinsert.is_empty() {
            self.live -= reinsert.len();
            self.insert_items(reinsert);
        }
        deleted
    }

    /// k nearest live neighbors of `q` (ids are insertion-order ids),
    /// ascending by distance. One shared buffer accumulates across the
    /// buffer and every occupied static tree (Appendix C.4).
    pub fn knn(&self, q: &Point<D>, k: usize) -> Vec<Neighbor> {
        let mut buf = KnnBuffer::new(k);
        for (p, id) in &self.buffer {
            buf.insert(q.dist_sq(p), *id);
        }
        for t in self.trees.iter().flatten() {
            t.knn_into(q, &mut buf);
        }
        buf.finish()
    }

    /// Data-parallel batch k-NN (parallel over the queries `S`).
    pub fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>> {
        pargeo_parlay::map_batch(queries, 64, |q| self.knn(q, k))
    }

    /// Insertion-order ids of all live points inside `query` (boundary
    /// inclusive), sorted ascending. One answer accumulates across the
    /// buffer and every occupied static tree, mirroring the shared-buffer
    /// k-NN strategy.
    pub fn range_box(&self, query: &Bbox<D>) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .buffer
            .iter()
            .filter(|(p, _)| query.contains(p))
            .map(|&(_, id)| id)
            .collect();
        for t in self.trees.iter().flatten() {
            t.range_into(query, &mut out);
        }
        out.sort_unstable();
        out
    }

    /// Number of live points inside `query` without materializing them.
    pub fn count_box(&self, query: &Bbox<D>) -> usize {
        let buffered = self
            .buffer
            .iter()
            .filter(|(p, _)| query.contains(p))
            .count();
        buffered
            + self
                .trees
                .iter()
                .flatten()
                .map(|t| t.count_box(query))
                .sum::<usize>()
    }

    /// Data-parallel batch box reporting (parallel over the queries).
    pub fn range_box_batch(&self, queries: &[Bbox<D>]) -> Vec<Vec<u32>> {
        pargeo_parlay::map_batch(queries, 16, |q| self.range_box(q))
    }

    /// All live `(point, id)` pairs (diagnostics / tests).
    pub fn collect_live(&self) -> Vec<(Point<D>, u32)> {
        let mut out: Vec<(Point<D>, u32)> = self.buffer.clone();
        for t in self.trees.iter().flatten() {
            out.extend(t.collect_live());
        }
        out
    }

    /// Bounding box of the live points — the cascade's current effective
    /// region (shrinks when deletes remove extreme points).
    pub fn live_bbox(&self) -> Bbox<D> {
        let mut b = Bbox::empty();
        for (p, _) in self.collect_live() {
            b.extend(&p);
        }
        b
    }

    /// Sizes of the occupied static trees, smallest first (diagnostics).
    pub fn tree_sizes(&self) -> Vec<usize> {
        self.trees
            .iter()
            .map(|t| t.as_ref().map(|t| t.len()).unwrap_or(0))
            .collect()
    }

    /// Heap bytes held by the cascade's flat arenas (every vEB tree's
    /// slabs plus the insert buffer) — the `index_arena_bytes` gauge.
    pub fn arena_bytes(&self) -> usize {
        self.buffer.len() * std::mem::size_of::<(Point<D>, u32)>()
            + self
                .trees
                .iter()
                .flatten()
                .map(|t| t.arena_bytes())
                .sum::<usize>()
    }

    /// Total nodes across every occupied vEB tree — the
    /// `index_nodes_total` gauge.
    pub fn node_count(&self) -> usize {
        self.trees.iter().flatten().map(|t| t.node_count()).sum()
    }
}

impl<const D: usize> Default for BdlTree<D> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_cube;
    use pargeo_kdtree::knn::knn_brute_force;

    fn check_knn<const D: usize>(t: &BdlTree<D>, reference: &[Point<D>], k: usize) {
        for q in reference.iter().step_by(197) {
            let got = t.knn(q, k);
            let want = knn_brute_force(reference, q, k);
            assert_eq!(got.len(), want.len().min(k));
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g.dist_sq - w.dist_sq).abs() <= 1e-9 * (1.0 + g.dist_sq),
                    "{g:?} vs {w:?}"
                );
            }
        }
    }

    #[test]
    fn bitmask_cascade_matches_figure7() {
        // Figure 7 walkthrough with X = 8 (> 2).
        let x = 8;
        let mut t = BdlTree::<2>::with_buffer_size(x);
        let pts = uniform_cube::<2>(4 * x + 1, 1);
        // (a) insert X points -> F = 1.
        t.insert(&pts[..x]);
        assert_eq!(t.bitmask(), 0b1);
        // (b) insert X+1 -> one in buffer, F = 2.
        t.insert(&pts[x..2 * x + 1]);
        assert_eq!(t.bitmask(), 0b10);
        assert_eq!(t.len(), 2 * x + 1);
        // (c) insert X+1 again -> two in buffer, F = 3.
        t.insert(&pts[2 * x + 1..3 * x + 2]);
        assert_eq!(t.bitmask(), 0b11);
        // (d) insert X-1 -> buffer fills, F = 4.
        t.insert(&pts[3 * x + 2..4 * x + 1]);
        assert_eq!(t.bitmask(), 0b100);
        // 4X points went into tree 2 (capacity 4X); one stayed in the buffer.
        assert_eq!(t.len(), 4 * x + 1);
        assert_eq!(t.collect_live().len(), 4 * x + 1);
        assert_eq!(t.tree_sizes()[2], 4 * x);
    }

    #[test]
    fn insert_preserves_all_points() {
        let pts = uniform_cube::<3>(5_000, 2);
        let mut t = BdlTree::<3>::with_buffer_size(64);
        for chunk in pts.chunks(500) {
            t.insert(chunk);
        }
        assert_eq!(t.len(), 5_000);
        let mut live = t.collect_live();
        live.sort_by_key(|&(_, id)| id);
        assert_eq!(live.len(), 5_000);
        for (i, (p, id)) in live.iter().enumerate() {
            assert_eq!(*id as usize, i);
            assert_eq!(*p, pts[i]);
        }
    }

    #[test]
    fn knn_exact_after_batched_construction() {
        let pts = uniform_cube::<2>(3_000, 3);
        let mut t = BdlTree::<2>::with_buffer_size(128);
        for chunk in pts.chunks(300) {
            t.insert(chunk);
        }
        check_knn(&t, &pts, 5);
    }

    #[test]
    fn delete_batches_and_knn_stays_exact() {
        let pts = uniform_cube::<2>(4_000, 4);
        let mut t = BdlTree::<2>::with_buffer_size(128);
        t.insert(&pts);
        // Delete 10 batches of 10%.
        for chunk in pts.chunks(400).take(5) {
            let removed = t.delete(chunk);
            assert_eq!(removed, 400);
        }
        assert_eq!(t.len(), 2_000);
        check_knn(&t, &pts[2_000..], 4);
        // Delete the rest.
        for chunk in pts[2_000..].chunks(400) {
            t.delete(chunk);
        }
        assert!(t.is_empty());
        assert!(t.knn(&pts[0], 3).is_empty());
    }

    #[test]
    fn interleaved_inserts_and_deletes() {
        let pts = uniform_cube::<3>(3_000, 5);
        let mut t = BdlTree::<3>::with_buffer_size(64);
        t.insert(&pts[..1_000]);
        t.delete(&pts[..200]);
        t.insert(&pts[1_000..2_000]);
        t.delete(&pts[500..900]);
        t.insert(&pts[2_000..]);
        let expected: Vec<Point<3>> = pts
            .iter()
            .enumerate()
            .filter(|(i, _)| !(*i < 200 || (500..900).contains(i)))
            .map(|(_, p)| *p)
            .collect();
        assert_eq!(t.len(), expected.len());
        check_knn(&t, &expected, 3);
    }

    #[test]
    fn delete_nonexistent_is_noop() {
        let pts = uniform_cube::<2>(500, 6);
        let mut t = BdlTree::from_points(&pts);
        assert_eq!(t.delete(&[Point::new([-99.0, -99.0])]), 0);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn small_batches_stay_in_buffer() {
        let mut t = BdlTree::<2>::with_buffer_size(1000);
        let pts = uniform_cube::<2>(50, 7);
        t.insert(&pts);
        assert_eq!(t.bitmask(), 0);
        assert_eq!(t.len(), 50);
        check_knn(&t, &pts, 5);
    }

    #[test]
    fn tree_sizes_are_log_structured() {
        let pts = uniform_cube::<2>(10_000, 8);
        let mut t = BdlTree::<2>::with_buffer_size(64);
        for chunk in pts.chunks(1000) {
            t.insert(chunk);
        }
        for (i, &sz) in t.tree_sizes().iter().enumerate() {
            assert!(sz <= 64 << i, "tree {i} oversize: {sz}");
        }
    }
}
