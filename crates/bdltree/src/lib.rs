//! # pargeo-bdltree — the parallel batch-dynamic log-structured kd-tree
//!
//! The BDL-tree of the paper's §5: a set of static [`VebTree`]s of
//! exponentially growing capacities `X·2^0, X·2^1, …` plus a size-`X`
//! buffer, maintained with the logarithmic method of Bentley–Saxe:
//!
//! * **Batch insert** (Algorithm 3) — a bitmask `F` records which static
//!   trees are occupied; inserting `|P|` points advances it to
//!   `F + ⌊|P|/X⌋`, and the bitwise difference determines exactly which
//!   trees are destroyed and which larger trees are rebuilt (in parallel)
//!   from the union of their points and the batch.
//! * **Batch delete** (Algorithm 4) — points are bulk-erased from every
//!   tree in parallel (Algorithm 2 with subtree collapse); any tree that
//!   falls below half capacity is drained and its survivors reinserted.
//! * **Data-parallel k-NN** (Appendix C.4) — one shared k-NN buffer per
//!   query accumulates results across the buffer and every occupied tree.
//!
//! [`zdtree`] hosts the Morton-based comparator of §6.3, and [`batchq`]
//! plugs both trees into `pargeo-rangequery`'s `BatchQuery` machinery so
//! the read path stays swappable with the static query structures.
//!
//! [`VebTree`]: pargeo_kdtree::VebTree

#![warn(missing_docs)]

pub mod batchq;
pub mod bdl;
pub mod zdtree;

pub use bdl::BdlTree;
pub use zdtree::ZdTree;
