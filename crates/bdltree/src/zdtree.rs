//! The Zd-tree comparator (§6.3 "Comparison with Zd-tree").
//!
//! A batch-dynamic spatial tree in the style of Blelloch–Dobson \[21\]: the
//! points are kept sorted by Morton code over a fixed universe box, and the
//! tree structure is the implicit binary radix tree over the code bits.
//! Batch updates are merges into / filters out of the sorted array followed
//! by an `O(n / leaf)` parallel structure rebuild — no median finding, which
//! is why construction and updates are much faster than any kd-tree variant
//! in 2–3 dimensions (the trend the paper reports), while k-NN is
//! comparable. Precision per dimension falls with `D` (see
//! [`pargeo_morton::bits_per_dim`]), matching the paper's observation that
//! the approach does not extend cheaply to high dimensions.

use pargeo_geometry::{Bbox, Point, SoaPoints};
use pargeo_kdtree::knn::{KnnBuffer, Neighbor};
use pargeo_morton::{morton_code, morton_shard_of, parallel_bbox, total_bits};
use pargeo_parlay as parlay;
use rayon::prelude::*;

const SEQ_CUTOFF: usize = 4096;

/// Splits a code-sorted `(code, point, id)` run into the tree's columnar
/// representation: a dense code column plus a [`SoaPoints`] arena in the
/// same order (parallel per-column fill for large runs).
fn split_columns<const D: usize>(merged: Vec<(u64, Point<D>, u32)>) -> (Vec<u64>, SoaPoints<D>) {
    let n = merged.len();
    let codes: Vec<u64>;
    let mut pts = SoaPoints::with_len(n);
    if n >= SEQ_CUTOFF {
        codes = merged.par_iter().map(|&(c, _, _)| c).collect();
        for d in 0..D {
            pts.axis_mut(d)
                .par_iter_mut()
                .enumerate()
                .for_each(|(i, v)| *v = merged[i].1[d]);
        }
        pts.ids_mut()
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = merged[i].2);
    } else {
        codes = merged.iter().map(|&(c, _, _)| c).collect();
        for (i, &(_, p, id)) in merged.iter().enumerate() {
            pts.set(i, p, id);
        }
    }
    (codes, pts)
}

#[derive(Debug, Clone)]
struct ZNode<const D: usize> {
    bbox: Bbox<D>,
    /// Child node indices; `u32::MAX` marks a leaf.
    left: u32,
    right: u32,
    start: u32,
    end: u32,
}

impl<const D: usize> ZNode<D> {
    #[inline]
    fn is_leaf(&self) -> bool {
        self.left == u32::MAX
    }
}

/// A Morton-order batch-dynamic tree over a fixed universe box.
#[derive(Debug, Clone)]
pub struct ZdTree<const D: usize> {
    universe: Bbox<D>,
    /// Morton codes sorted ascending (ties broken arbitrarily).
    codes: Vec<u64>,
    /// Coordinate columns + ids in code order (row `i` ↔ `codes[i]`).
    pts: SoaPoints<D>,
    nodes: Vec<ZNode<D>>,
    leaf_size: usize,
    next_id: u32,
    epoch: u64,
    rebuilds: u64,
    /// False until a non-empty point set establishes the universe; an
    /// empty-start tree adopts its first non-empty insert batch's bounding
    /// box instead of clamping everything onto a meaningless default grid.
    universe_fixed: bool,
}

impl<const D: usize> ZdTree<D> {
    /// Creates an empty tree. The Morton universe is fixed by the first
    /// non-empty insert batch (its slightly inflated bounding box); points
    /// inserted after that clamp onto the universe grid for Morton-code
    /// purposes only — their true coordinates are kept and all queries
    /// stay exact, so out-of-universe points cost code locality, never
    /// correctness.
    pub fn new() -> Self {
        Self::empty(pargeo_kdtree::tree::BuildParams::default().leaf_size)
    }

    /// Builds over an initial point set; the bounding box of this set
    /// (slightly inflated) becomes the fixed universe. Points inserted
    /// later clamp onto the universe grid for code purposes (their true
    /// coordinates are kept and all queries remain exact).
    pub fn from_points(points: &[Point<D>]) -> Self {
        Self::with_leaf_size(
            points,
            pargeo_kdtree::tree::BuildParams::default().leaf_size,
        )
    }

    /// Builds with an explicit leaf size.
    pub fn with_leaf_size(points: &[Point<D>], leaf_size: usize) -> Self {
        let mut t = Self::empty(leaf_size);
        // The initial load counts as epoch 1 (even when empty), matching
        // every other backend's `from_points`; `new()` stays at epoch 0.
        t.insert(points);
        t
    }

    /// An empty tree at epoch 0 with an unadopted universe.
    fn empty(leaf_size: usize) -> Self {
        Self {
            universe: derive_universe::<D>(&[]),
            codes: Vec::new(),
            pts: SoaPoints::new(),
            nodes: Vec::new(),
            leaf_size,
            next_id: 0,
            epoch: 0,
            rebuilds: 0,
            universe_fixed: false,
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The fixed universe box.
    pub fn universe(&self) -> Bbox<D> {
        self.universe
    }

    /// Update batches (inserts or deletes) applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Radix-structure rebuilds performed so far (one per update batch —
    /// the Zd-tree rebuilds its implicit tree after every merge/filter).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Total points ever inserted (ids are assigned from this counter).
    pub fn total_inserted(&self) -> u64 {
        self.next_id as u64
    }

    /// Bounding box of the stored points — the tree's current effective
    /// region (every stored point is live; deletes remove entries).
    pub fn live_bbox(&self) -> Bbox<D> {
        let mut b = Bbox::empty();
        for i in 0..self.pts.len() {
            b.extend(&self.pts.get(i));
        }
        b
    }

    fn code_of(&self, p: &Point<D>) -> u64 {
        morton_code(p, &self.universe)
    }

    /// Materializes the stored columns as `(code, point, id)` rows — the
    /// transient AoS form the merge/filter update paths operate on before
    /// scattering back into columns.
    fn rows(&self) -> Vec<(u64, Point<D>, u32)> {
        let n = self.codes.len();
        if n >= SEQ_CUTOFF {
            (0..n)
                .into_par_iter()
                .map(|i| (self.codes[i], self.pts.get(i), self.pts.id(i)))
                .collect()
        } else {
            (0..n)
                .map(|i| (self.codes[i], self.pts.get(i), self.pts.id(i)))
                .collect()
        }
    }

    /// Batch insert: Morton-sort the batch, merge into the sorted array,
    /// rebuild the radix structure.
    pub fn insert(&mut self, batch: &[Point<D>]) {
        self.epoch += 1;
        if batch.is_empty() {
            return;
        }
        if !self.universe_fixed {
            self.universe = derive_universe(batch);
            self.universe_fixed = true;
        }
        let mut add: Vec<(u64, Point<D>, u32)> = if batch.len() >= SEQ_CUTOFF {
            batch
                .par_iter()
                .enumerate()
                .map(|(i, &p)| (self.code_of(&p), p, self.next_id + i as u32))
                .collect()
        } else {
            batch
                .iter()
                .enumerate()
                .map(|(i, &p)| (self.code_of(&p), p, self.next_id + i as u32))
                .collect()
        };
        self.next_id += batch.len() as u32;
        parlay::radix_sort_u64_by_key(&mut add, |t| t.0);
        // Merge two sorted runs, then scatter back into columns.
        let merged = merge_sorted(self.rows(), add);
        let (codes, pts) = split_columns(merged);
        self.codes = codes;
        self.pts = pts;
        self.rebuild_nodes();
    }

    /// Batch delete by point value (all matching copies). Returns the
    /// number deleted.
    pub fn delete(&mut self, batch: &[Point<D>]) -> usize {
        self.epoch += 1;
        if batch.is_empty() || self.codes.is_empty() {
            return 0;
        }
        let mut victims: Vec<(u64, Point<D>)> =
            batch.iter().map(|&p| (self.code_of(&p), p)).collect();
        parlay::radix_sort_u64_by_key(&mut victims, |t| t.0);
        let before = self.codes.len();
        // Merge-subtract over the two code-sorted runs; codes collide, so
        // matches compare full coordinates within the code-equal window.
        let mut out = Vec::with_capacity(before);
        let mut j = 0usize;
        for it in self.rows() {
            while j < victims.len() && victims[j].0 < it.0 {
                j += 1;
            }
            let mut dead = false;
            let mut k = j;
            while k < victims.len() && victims[k].0 == it.0 {
                // Bitwise identity — the library-wide delete-by-value
                // semantic (`Point::bits_key`), not float `==`.
                if victims[k].1.bits_key() == it.1.bits_key() {
                    dead = true;
                    break;
                }
                k += 1;
            }
            if !dead {
                out.push(it);
            }
        }
        let (codes, pts) = split_columns(out);
        self.codes = codes;
        self.pts = pts;
        self.rebuild_nodes();
        before - self.codes.len()
    }

    /// k nearest neighbors of `q`, ascending by distance.
    pub fn knn(&self, q: &Point<D>, k: usize) -> Vec<Neighbor> {
        let mut buf = KnnBuffer::new(k);
        if !self.nodes.is_empty() {
            self.knn_rec(0, q, &mut buf);
        }
        buf.finish()
    }

    /// Data-parallel batch k-NN.
    pub fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>> {
        parlay::map_batch(queries, 64, |q| self.knn(q, k))
    }

    fn knn_rec(&self, idx: u32, q: &Point<D>, buf: &mut KnnBuffer) {
        let node = &self.nodes[idx as usize];
        if node.is_leaf() {
            for i in node.start as usize..node.end as usize {
                buf.insert(self.pts.dist_sq(i, q), self.pts.id(i));
            }
            return;
        }
        let (a, b) = (node.left, node.right);
        let da = self.nodes[a as usize].bbox.dist_sq_to_point(q);
        let db = self.nodes[b as usize].bbox.dist_sq_to_point(q);
        let ((first, df), (second, ds)) = if da <= db {
            ((a, da), (b, db))
        } else {
            ((b, db), (a, da))
        };
        if df <= buf.bound() {
            self.knn_rec(first, q, buf);
        }
        if ds <= buf.bound() {
            self.knn_rec(second, q, buf);
        }
    }

    /// Insertion-order ids of all points inside `query` (boundary
    /// inclusive), sorted ascending.
    pub fn range_box(&self, query: &Bbox<D>) -> Vec<u32> {
        let mut out = Vec::new();
        if !self.nodes.is_empty() {
            self.range_rec(0, query, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn range_rec(&self, idx: u32, query: &Bbox<D>, out: &mut Vec<u32>) {
        let node = &self.nodes[idx as usize];
        if !node.bbox.intersects(query) {
            return;
        }
        if query.contains_box(&node.bbox) {
            out.extend_from_slice(&self.pts.ids()[node.start as usize..node.end as usize]);
            return;
        }
        if node.is_leaf() {
            for i in node.start as usize..node.end as usize {
                if query.contains_soa(&self.pts, i) {
                    out.push(self.pts.id(i));
                }
            }
            return;
        }
        self.range_rec(node.left, query, out);
        self.range_rec(node.right, query, out);
    }

    /// Number of points inside `query` without materializing them.
    pub fn count_box(&self, query: &Bbox<D>) -> usize {
        fn go<const D: usize>(t: &ZdTree<D>, idx: u32, query: &Bbox<D>) -> usize {
            let node = &t.nodes[idx as usize];
            if !node.bbox.intersects(query) {
                return 0;
            }
            if query.contains_box(&node.bbox) {
                return (node.end - node.start) as usize;
            }
            if node.is_leaf() {
                return (node.start as usize..node.end as usize)
                    .filter(|&i| query.contains_soa(&t.pts, i))
                    .count();
            }
            go(t, node.left, query) + go(t, node.right, query)
        }
        if self.nodes.is_empty() {
            0
        } else {
            go(self, 0, query)
        }
    }

    /// Data-parallel batch box reporting (parallel over the queries).
    pub fn range_box_batch(&self, queries: &[Bbox<D>]) -> Vec<Vec<u32>> {
        parlay::map_batch(queries, 16, |q| self.range_box(q))
    }

    /// Rebuilds the implicit radix-tree structure over the sorted codes.
    fn rebuild_nodes(&mut self) {
        self.rebuilds += 1;
        self.nodes.clear();
        let n = self.codes.len();
        if n == 0 {
            return;
        }
        let boxed = build_rec(
            &self.codes,
            &self.pts,
            0,
            n,
            total_bits(D) as i32 - 1,
            self.leaf_size,
        );
        flatten(&boxed, &mut self.nodes);
    }

    /// Number of structure nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Heap bytes held by the flat arenas (code column, coordinate
    /// columns, id column, node array).
    pub fn arena_bytes(&self) -> usize {
        self.codes.len() * std::mem::size_of::<u64>()
            + self.pts.bytes()
            + self.nodes.len() * std::mem::size_of::<ZNode<D>>()
    }
}

impl<const D: usize> Default for ZdTree<D> {
    fn default() -> Self {
        Self::new()
    }
}

/// The slightly inflated bounding box of a point set (unit cube for an
/// empty set — a placeholder replaced by the first real batch).
fn derive_universe<const D: usize>(points: &[Point<D>]) -> Bbox<D> {
    let mut universe = parallel_bbox(points);
    if universe.is_empty() {
        universe = Bbox {
            min: Point::origin(),
            max: Point::new([1.0; D]),
        };
    } else {
        // Inflate slightly so boundary points do not saturate the grid.
        let pad = universe.diag_sq().sqrt() * 1e-6 + 1e-12;
        for i in 0..D {
            universe.min[i] -= pad;
            universe.max[i] += pad;
        }
    }
    universe
}

enum BNode<const D: usize> {
    Leaf(Bbox<D>, usize, usize),
    Internal(Bbox<D>, usize, usize, Box<BNode<D>>, Box<BNode<D>>),
}

fn bnode_bbox<const D: usize>(b: &BNode<D>) -> Bbox<D> {
    match b {
        BNode::Leaf(bb, ..) => *bb,
        BNode::Internal(bb, ..) => *bb,
    }
}

fn build_rec<const D: usize>(
    codes: &[u64],
    pts: &SoaPoints<D>,
    start: usize,
    end: usize,
    bit: i32,
    leaf_size: usize,
) -> BNode<D> {
    let n = end - start;
    if n <= leaf_size || bit < 0 {
        // Columnar bbox: one min/max sweep per axis over dense columns.
        let mut bb = Bbox::empty();
        for d in 0..D {
            for &v in &pts.axis(d)[start..end] {
                bb.min[d] = bb.min[d].min(v);
                bb.max[d] = bb.max[d].max(v);
            }
        }
        return BNode::Leaf(bb, start, end);
    }
    // Codes are sorted: the split is the first index whose `bit` is set —
    // equivalently, the first whose depth-(total-bit) Z-order prefix is
    // odd. Sharing `morton_shard_of` with the engine's router keeps both
    // crates' notion of a prefix identical.
    let depth = total_bits(D) - bit as u32;
    let range = &codes[start..end];
    let mid = start + range.partition_point(|&c| morton_shard_of::<D>(c, depth) & 1 == 0);
    if mid == start || mid == end {
        // Bit constant in this range — skip the level.
        return build_rec(codes, pts, start, end, bit - 1, leaf_size);
    }
    let (l, r) = if n >= SEQ_CUTOFF {
        rayon::join(
            || build_rec(codes, pts, start, mid, bit - 1, leaf_size),
            || build_rec(codes, pts, mid, end, bit - 1, leaf_size),
        )
    } else {
        (
            build_rec(codes, pts, start, mid, bit - 1, leaf_size),
            build_rec(codes, pts, mid, end, bit - 1, leaf_size),
        )
    };
    let bb = bnode_bbox(&l).union(&bnode_bbox(&r));
    BNode::Internal(bb, start, end, Box::new(l), Box::new(r))
}

fn flatten<const D: usize>(b: &BNode<D>, out: &mut Vec<ZNode<D>>) -> u32 {
    let my = out.len() as u32;
    match b {
        BNode::Leaf(bb, s, e) => out.push(ZNode {
            bbox: *bb,
            left: u32::MAX,
            right: u32::MAX,
            start: *s as u32,
            end: *e as u32,
        }),
        BNode::Internal(bb, s, e, l, r) => {
            out.push(ZNode {
                bbox: *bb,
                left: 0,
                right: 0,
                start: *s as u32,
                end: *e as u32,
            });
            let li = flatten(l, out);
            let ri = flatten(r, out);
            out[my as usize].left = li;
            out[my as usize].right = ri;
        }
    }
    my
}

/// Merges two code-sorted runs (parallel for large inputs).
fn merge_sorted<const D: usize>(
    a: Vec<(u64, Point<D>, u32)>,
    b: Vec<(u64, Point<D>, u32)>,
) -> Vec<(u64, Point<D>, u32)> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    if a.len() + b.len() < SEQ_CUTOFF {
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i].0 <= b[j].0 {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        return out;
    }
    // Parallel path: concatenate and radix sort (stable, O(n) passes) —
    // simple and fully parallel, and the constant is tiny for u64 keys.
    out.extend_from_slice(&a);
    out.extend_from_slice(&b);
    parlay::radix_sort_u64_by_key(&mut out, |t| t.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_cube;
    use pargeo_kdtree::knn::knn_brute_force;

    fn check_knn<const D: usize>(t: &ZdTree<D>, reference: &[Point<D>], k: usize) {
        for q in reference.iter().step_by(173) {
            let got = t.knn(q, k);
            let want = knn_brute_force(reference, q, k);
            assert_eq!(got.len(), want.len().min(k));
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g.dist_sq - w.dist_sq).abs() <= 1e-9 * (1.0 + g.dist_sq),
                    "{g:?} vs {w:?}"
                );
            }
        }
    }

    #[test]
    fn build_and_knn_exact() {
        let pts = uniform_cube::<3>(3_000, 1);
        let t = ZdTree::from_points(&pts);
        assert_eq!(t.len(), 3_000);
        check_knn(&t, &pts, 5);
    }

    #[test]
    fn codes_stay_sorted_across_updates() {
        let pts = uniform_cube::<2>(5_000, 2);
        let mut t = ZdTree::from_points(&pts[..2_000]);
        t.insert(&pts[2_000..4_000]);
        t.insert(&pts[4_000..]);
        assert!(t.codes.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(t.len(), 5_000);
        check_knn(&t, &pts, 4);
    }

    #[test]
    fn delete_batches() {
        let pts = uniform_cube::<3>(3_000, 3);
        let mut t = ZdTree::from_points(&pts);
        let removed = t.delete(&pts[..1_000]);
        assert_eq!(removed, 1_000);
        assert_eq!(t.len(), 2_000);
        check_knn(&t, &pts[1_000..], 5);
        t.delete(&pts[1_000..]);
        assert!(t.is_empty());
        assert!(t.knn(&pts[0], 2).is_empty());
    }

    #[test]
    fn inserts_outside_universe_clamp_but_stay_exact() {
        let pts = uniform_cube::<2>(1_000, 4);
        let mut t = ZdTree::from_points(&pts);
        let far: Vec<Point<2>> = (0..100)
            .map(|i| Point::new([1e4 + i as f64, -1e4 - i as f64]))
            .collect();
        t.insert(&far);
        assert_eq!(t.len(), 1_100);
        // Nearest neighbor of a far point is still found exactly.
        let all: Vec<Point<2>> = pts.iter().chain(&far).copied().collect();
        let got = t.knn(&far[0], 3);
        let want = knn_brute_force(&all, &far[0], 3);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist_sq - w.dist_sq).abs() < 1e-9 * (1.0 + g.dist_sq));
        }
    }

    #[test]
    fn duplicate_points_delete_all_copies() {
        let p = Point::new([0.5, 0.5]);
        let mut base = uniform_cube::<2>(100, 5);
        base.push(p);
        base.push(p);
        let mut t = ZdTree::from_points(&base);
        assert_eq!(t.delete(&[p]), 2);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn empty_build() {
        let t = ZdTree::<2>::from_points(&[]);
        assert!(t.is_empty());
        assert!(t.knn(&Point::new([0.0, 0.0]), 1).is_empty());
    }
}
