//! Property-based tests for the spatial indexes: exactness of k-NN and
//! range queries against brute force on adversarial (duplicate-heavy,
//! axis-aligned) inputs, and consistency of the dynamic structures.

use pargeo_geometry::{Bbox, Point, Point2};
use pargeo_kdtree::knn::knn_brute_force;
use pargeo_kdtree::{B1Tree, B2Tree, KdTree, SplitRule, VebTree};
use proptest::prelude::*;

fn lattice_points() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (0i32..32, 0i32..32).prop_map(|(x, y)| Point2::new([x as f64, y as f64])),
        1..250,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn knn_exact_both_split_rules(pts in lattice_points(), k in 1usize..10, qi in 0usize..250) {
        let q = pts[qi % pts.len()];
        let want = knn_brute_force(&pts, &q, k);
        for rule in [SplitRule::ObjectMedian, SplitRule::SpatialMedian] {
            let tree = KdTree::build(&pts, rule);
            let got = tree.knn(&q, k);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g.dist_sq - w.dist_sq).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn range_box_exact(pts in lattice_points(),
                       x0 in 0i32..32, y0 in 0i32..32, w in 0i32..32, h in 0i32..32) {
        let tree = KdTree::build(&pts, SplitRule::ObjectMedian);
        let q = Bbox {
            min: Point2::new([x0 as f64, y0 as f64]),
            max: Point2::new([(x0 + w) as f64, (y0 + h) as f64]),
        };
        // No sort: reporting output is sorted ascending by contract.
        let got = tree.range_box(&q);
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains(p))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(tree.count_box(&q), want.len());
    }

    #[test]
    fn range_ball_exact(pts in lattice_points(), ci in 0usize..250, r in 0f64..20.0) {
        let c = pts[ci % pts.len()];
        let tree = KdTree::build(&pts, SplitRule::SpatialMedian);
        let got = tree.range_ball(&c, r);
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| c.dist_sq(p) <= r * r)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(tree.count_ball(&c, r), want.len());
    }

    /// Insert+delete through B1, B2, and the vEB tree leave exactly the
    /// expected survivors answering k-NN exactly.
    #[test]
    fn dynamic_trees_agree_after_churn(pts in lattice_points(), cut in 0usize..200) {
        prop_assume!(pts.len() >= 4);
        let cut = cut % (pts.len() / 2).max(1);
        let (victims, keep): (Vec<Point2>, Vec<Point2>) = {
            let v: Vec<Point2> = pts[..cut].to_vec();
            // Survivors: points whose *coordinates* don't appear among the
            // victims (deletion is by value).
            let vict: std::collections::HashSet<[u64; 2]> =
                v.iter().map(|p| p.coords.map(f64::to_bits)).collect();
            let k: Vec<Point2> = pts
                .iter()
                .filter(|p| !vict.contains(&p.coords.map(f64::to_bits)))
                .copied()
                .collect();
            (v, k)
        };
        prop_assume!(!keep.is_empty());
        let mut b1 = B1Tree::from_points(&pts, SplitRule::ObjectMedian);
        let mut b2 = B2Tree::from_points(&pts, SplitRule::ObjectMedian);
        let items: Vec<(Point2, u32)> =
            pts.iter().enumerate().map(|(i, &p)| (p, i as u32)).collect();
        let mut veb = VebTree::build(&items);
        b1.delete(&victims);
        b2.delete(&victims);
        veb.erase(&victims);
        prop_assert_eq!(b1.len(), keep.len());
        prop_assert_eq!(b2.len(), keep.len());
        prop_assert_eq!(veb.len(), keep.len());
        let q = keep[0];
        let want = knn_brute_force(&keep, &q, 3);
        for got in [b1.knn(&q, 3), b2.knn(&q, 3), veb.knn(&q, 3)] {
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g.dist_sq - w.dist_sq).abs() < 1e-9);
            }
        }
    }

    /// Higher-dimensional smoke: 4D lattice k-NN stays exact.
    #[test]
    fn knn_4d_exact(raw in prop::collection::vec((0i32..8, 0i32..8, 0i32..8, 0i32..8), 5..120),
                    k in 1usize..6) {
        let pts: Vec<Point<4>> = raw
            .iter()
            .map(|&(a, b, c, d)| Point::new([a as f64, b as f64, c as f64, d as f64]))
            .collect();
        let tree = KdTree::build(&pts, SplitRule::ObjectMedian);
        let q = pts[0];
        let got = tree.knn(&q, k);
        let want = knn_brute_force(&pts, &q, k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.dist_sq - w.dist_sq).abs() < 1e-9);
        }
    }
}
