//! The batch-dynamic baselines of §6.3.
//!
//! * [`B1Tree`] — rebuilds the whole kd-tree on every batch insert/delete.
//!   Always perfectly balanced (best queries, slowest updates).
//! * [`B2Tree`] — inserts points directly into the existing spatial
//!   structure (leaf buffers) and deletes by tombstoning, never recomputing
//!   splits. Fastest updates; queries degrade as the tree skews, which is
//!   exactly the effect Appendix D measures.

use crate::knn::{KnnBuffer, Neighbor};
use crate::tree::{KdTree, SplitRule};
use pargeo_geometry::{Bbox, Point};
use rayon::prelude::*;

/// Baseline B1: rebuild on every update.
#[derive(Debug, Clone)]
pub struct B1Tree<const D: usize> {
    points: Vec<Point<D>>,
    ids: Vec<u32>,
    tree: KdTree<D>,
    rule: SplitRule,
    next_id: u32,
}

impl<const D: usize> B1Tree<D> {
    /// Creates an empty tree with the given split rule.
    pub fn new(rule: SplitRule) -> Self {
        Self {
            points: Vec::new(),
            ids: Vec::new(),
            tree: KdTree::build(&[], rule),
            rule,
            next_id: 0,
        }
    }

    /// Builds directly over an initial point set.
    pub fn from_points(points: &[Point<D>], rule: SplitRule) -> Self {
        let mut t = Self::new(rule);
        t.insert(points);
        t
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Batch insert: appends and rebuilds.
    pub fn insert(&mut self, batch: &[Point<D>]) {
        self.points.extend_from_slice(batch);
        self.ids
            .extend((0..batch.len()).map(|i| self.next_id + i as u32));
        self.next_id += batch.len() as u32;
        self.rebuild();
    }

    /// Batch delete by point value (all matching copies) and rebuild.
    /// Returns the number of points removed.
    pub fn delete(&mut self, batch: &[Point<D>]) -> usize {
        let victims: std::collections::HashSet<_> = batch.iter().map(Point::bits_key).collect();
        let before = self.points.len();
        let mut kept_pts = Vec::with_capacity(before);
        let mut kept_ids = Vec::with_capacity(before);
        for (p, id) in self.points.iter().zip(&self.ids) {
            if !victims.contains(&p.bits_key()) {
                kept_pts.push(*p);
                kept_ids.push(*id);
            }
        }
        self.points = kept_pts;
        self.ids = kept_ids;
        self.rebuild();
        before - self.points.len()
    }

    fn rebuild(&mut self) {
        self.tree = KdTree::build(&self.points, self.rule);
    }

    /// k nearest neighbors of `q` (ids are insertion-order ids).
    pub fn knn(&self, q: &Point<D>, k: usize) -> Vec<Neighbor> {
        self.tree
            .knn(q, k)
            .into_iter()
            .map(|n| Neighbor {
                dist_sq: n.dist_sq,
                id: self.ids[n.id as usize],
            })
            .collect()
    }

    /// Data-parallel batch k-NN.
    pub fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>> {
        if queries.len() < 64 {
            queries.iter().map(|q| self.knn(q, k)).collect()
        } else {
            queries.par_iter().map(|q| self.knn(q, k)).collect()
        }
    }
}

// ---------------- B2 ----------------

#[derive(Debug)]
enum B2Node<const D: usize> {
    Leaf {
        bbox: Bbox<D>,
        points: Vec<(Point<D>, u32)>,
        alive: Vec<bool>,
        live: usize,
    },
    Internal {
        bbox: Bbox<D>,
        dim: u8,
        val: f64,
        left: Box<B2Node<D>>,
        right: Box<B2Node<D>>,
    },
}

/// Baseline B2: fixed spatial structure, buffered leaves, tombstone deletes.
#[derive(Debug)]
pub struct B2Tree<const D: usize> {
    root: Option<Box<B2Node<D>>>,
    rule: SplitRule,
    leaf_size: usize,
    live: usize,
    next_id: u32,
}

const B2_SEQ_CUTOFF: usize = 2048;

impl<const D: usize> B2Tree<D> {
    /// Creates an empty tree.
    pub fn new(rule: SplitRule) -> Self {
        Self {
            root: None,
            rule,
            leaf_size: crate::tree::LEAF_SIZE,
            live: 0,
            next_id: 0,
        }
    }

    /// Builds directly over an initial point set.
    pub fn from_points(points: &[Point<D>], rule: SplitRule) -> Self {
        let mut t = Self::new(rule);
        t.insert(points);
        t
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Batch insert. The first batch establishes the spatial structure
    /// (a balanced build); later batches are routed into existing leaves
    /// without recomputing any split.
    pub fn insert(&mut self, batch: &[Point<D>]) {
        let mut items: Vec<(Point<D>, u32)> = batch
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, self.next_id + i as u32))
            .collect();
        self.next_id += batch.len() as u32;
        self.live += batch.len();
        match &mut self.root {
            None => {
                self.root = Some(Box::new(build_b2(&mut items, self.rule, self.leaf_size)));
            }
            Some(root) => insert_rec(root, items),
        }
    }

    /// Batch delete by point value (all matching live copies are
    /// tombstoned). Returns the number deleted.
    pub fn delete(&mut self, batch: &[Point<D>]) -> usize {
        match &mut self.root {
            None => 0,
            Some(root) => {
                let deleted = delete_rec(root, batch.to_vec());
                self.live -= deleted;
                deleted
            }
        }
    }

    /// k nearest live neighbors of `q`.
    pub fn knn(&self, q: &Point<D>, k: usize) -> Vec<Neighbor> {
        let mut buf = KnnBuffer::new(k);
        if let Some(root) = &self.root {
            knn_rec(root, q, &mut buf);
        }
        buf.finish()
    }

    /// Data-parallel batch k-NN.
    pub fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>> {
        if queries.len() < 64 {
            queries.iter().map(|q| self.knn(q, k)).collect()
        } else {
            queries.par_iter().map(|q| self.knn(q, k)).collect()
        }
    }

    /// Maximum leaf occupancy — the skew diagnostic used in Appendix D.
    pub fn max_leaf_size(&self) -> usize {
        fn go<const D: usize>(n: &B2Node<D>) -> usize {
            match n {
                B2Node::Leaf { points, .. } => points.len(),
                B2Node::Internal { left, right, .. } => go(left).max(go(right)),
            }
        }
        self.root.as_ref().map(|r| go(r)).unwrap_or(0)
    }
}

fn build_b2<const D: usize>(
    items: &mut [(Point<D>, u32)],
    rule: SplitRule,
    leaf_size: usize,
) -> B2Node<D> {
    let n = items.len();
    let mut bbox = Bbox::empty();
    for (p, _) in items.iter() {
        bbox.extend(p);
    }
    if n <= leaf_size || bbox.diag_sq() == 0.0 {
        return B2Node::Leaf {
            bbox,
            // Extra headroom: B2 pre-allocates leaf buffers for future
            // inserts (the cost §6.3 attributes to its construction).
            points: {
                let mut v = Vec::with_capacity(4 * leaf_size);
                v.extend_from_slice(items);
                v
            },
            alive: vec![true; n],
            live: n,
        };
    }
    let dim = bbox.widest_dim();
    let (mid, val) = match rule {
        SplitRule::ObjectMedian => {
            let mid = n / 2;
            items.select_nth_unstable_by(mid, |a, b| a.0[dim].partial_cmp(&b.0[dim]).unwrap());
            (mid, items[mid].0[dim])
        }
        SplitRule::SpatialMedian => {
            let val = 0.5 * (bbox.min[dim] + bbox.max[dim]);
            let mut i = 0;
            let mut j = n;
            while i < j {
                if items[i].0[dim] < val {
                    i += 1;
                } else {
                    j -= 1;
                    items.swap(i, j);
                }
            }
            if i == 0 || i == n {
                let mid = n / 2;
                items.select_nth_unstable_by(mid, |a, b| a.0[dim].partial_cmp(&b.0[dim]).unwrap());
                (mid, items[mid].0[dim])
            } else {
                (i, val)
            }
        }
    };
    let (lo, hi) = items.split_at_mut(mid);
    let (l, r) = if n >= B2_SEQ_CUTOFF {
        rayon::join(
            || build_b2(lo, rule, leaf_size),
            || build_b2(hi, rule, leaf_size),
        )
    } else {
        (build_b2(lo, rule, leaf_size), build_b2(hi, rule, leaf_size))
    };
    B2Node::Internal {
        bbox,
        dim: dim as u8,
        val,
        left: Box::new(l),
        right: Box::new(r),
    }
}

fn insert_rec<const D: usize>(node: &mut B2Node<D>, mut items: Vec<(Point<D>, u32)>) {
    if items.is_empty() {
        return;
    }
    match node {
        B2Node::Leaf {
            bbox,
            points,
            alive,
            live,
        } => {
            for (p, _) in &items {
                bbox.extend(p);
            }
            *live += items.len();
            alive.extend(std::iter::repeat_n(true, items.len()));
            points.append(&mut items);
        }
        B2Node::Internal {
            bbox,
            dim,
            val,
            left,
            right,
        } => {
            for (p, _) in &items {
                bbox.extend(p);
            }
            let dim = *dim as usize;
            let val = *val;
            let (l_items, r_items): (Vec<_>, Vec<_>) =
                items.into_iter().partition(|(p, _)| p[dim] < val);
            if l_items.len() + r_items.len() >= B2_SEQ_CUTOFF {
                rayon::join(|| insert_rec(left, l_items), || insert_rec(right, r_items));
            } else {
                insert_rec(left, l_items);
                insert_rec(right, r_items);
            }
        }
    }
}

fn delete_rec<const D: usize>(node: &mut B2Node<D>, queries: Vec<Point<D>>) -> usize {
    if queries.is_empty() {
        return 0;
    }
    match node {
        B2Node::Leaf {
            points,
            alive,
            live,
            ..
        } => {
            let mut deleted = 0;
            for q in &queries {
                for (i, (p, _)) in points.iter().enumerate() {
                    // Bitwise identity, matching every other backend's
                    // delete-by-value semantic.
                    if alive[i] && p.bits_key() == q.bits_key() {
                        alive[i] = false;
                        *live -= 1;
                        deleted += 1;
                    }
                }
            }
            deleted
        }
        B2Node::Internal {
            dim,
            val,
            left,
            right,
            ..
        } => {
            let dim = *dim as usize;
            let val = *val;
            // Superset routing on ties, mirroring object-median ambiguity.
            let mut ql = Vec::new();
            let mut qr = Vec::new();
            for q in &queries {
                if q[dim] <= val {
                    ql.push(*q);
                }
                if q[dim] >= val {
                    qr.push(*q);
                }
            }
            if ql.len() + qr.len() >= B2_SEQ_CUTOFF {
                let (a, b) = rayon::join(|| delete_rec(left, ql), || delete_rec(right, qr));
                a + b
            } else {
                delete_rec(left, ql) + delete_rec(right, qr)
            }
        }
    }
}

fn knn_rec<const D: usize>(node: &B2Node<D>, q: &Point<D>, buf: &mut KnnBuffer) {
    match node {
        B2Node::Leaf { points, alive, .. } => {
            for (i, (p, id)) in points.iter().enumerate() {
                if alive[i] {
                    buf.insert(q.dist_sq(p), *id);
                }
            }
        }
        B2Node::Internal {
            dim,
            val,
            left,
            right,
            ..
        } => {
            let (near, far) = if q[*dim as usize] <= *val {
                (left, right)
            } else {
                (right, left)
            };
            if node_bbox(near).dist_sq_to_point(q) <= buf.bound() {
                knn_rec(near, q, buf);
            }
            if node_bbox(far).dist_sq_to_point(q) <= buf.bound() {
                knn_rec(far, q, buf);
            }
        }
    }
}

fn node_bbox<const D: usize>(node: &B2Node<D>) -> Bbox<D> {
    match node {
        B2Node::Leaf { bbox, .. } => *bbox,
        B2Node::Internal { bbox, .. } => *bbox,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::knn_brute_force;
    use pargeo_datagen::uniform_cube;

    fn check_knn_against_brute<const D: usize>(
        knn: impl Fn(&Point<D>, usize) -> Vec<Neighbor>,
        reference: &[Point<D>],
        queries: &[Point<D>],
        k: usize,
    ) {
        for q in queries {
            let got = knn(q, k);
            let want = knn_brute_force(reference, q, k);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g.dist_sq - w.dist_sq).abs() <= 1e-9 * (1.0 + g.dist_sq),
                    "{g:?} vs {w:?}"
                );
            }
        }
    }

    #[test]
    fn b1_insert_delete_knn() {
        let pts = uniform_cube::<2>(2_000, 1);
        let mut t = B1Tree::from_points(&pts[..1_000], SplitRule::ObjectMedian);
        t.insert(&pts[1_000..]);
        assert_eq!(t.len(), 2_000);
        let queries: Vec<_> = pts.iter().copied().step_by(97).collect();
        check_knn_against_brute(|q, k| t.knn(q, k), &pts, &queries, 5);
        let removed = t.delete(&pts[..500]);
        assert_eq!(removed, 500);
        assert_eq!(t.len(), 1_500);
        check_knn_against_brute(|q, k| t.knn(q, k), &pts[500..], &queries, 5);
    }

    #[test]
    fn b2_insert_delete_knn() {
        let pts = uniform_cube::<2>(2_000, 2);
        let mut t = B2Tree::from_points(&pts[..500], SplitRule::ObjectMedian);
        // Three more batches routed into the fixed structure.
        t.insert(&pts[500..1_000]);
        t.insert(&pts[1_000..1_500]);
        t.insert(&pts[1_500..]);
        assert_eq!(t.len(), 2_000);
        let queries: Vec<_> = pts.iter().copied().step_by(89).collect();
        check_knn_against_brute(|q, k| t.knn(q, k), &pts, &queries, 5);
        let removed = t.delete(&pts[..700]);
        assert_eq!(removed, 700);
        assert_eq!(t.len(), 1_300);
        check_knn_against_brute(|q, k| t.knn(q, k), &pts[700..], &queries, 5);
    }

    #[test]
    fn b2_skews_under_adversarial_insertion() {
        // All later inserts land in one corner: leaves there overflow.
        let pts = uniform_cube::<2>(1_000, 3);
        let mut t = B2Tree::from_points(&pts, SplitRule::ObjectMedian);
        let corner: Vec<_> = (0..2_000)
            .map(|i| Point::new([1e-3 * (i % 17) as f64, 1e-3 * (i % 13) as f64]))
            .collect();
        t.insert(&corner);
        assert!(t.max_leaf_size() > 4 * crate::tree::LEAF_SIZE);
        // Queries remain exact despite the skew.
        let all: Vec<_> = pts.iter().chain(&corner).copied().collect();
        let queries: Vec<_> = all.iter().copied().step_by(211).collect();
        check_knn_against_brute(|q, k| t.knn(q, k), &all, &queries, 3);
    }

    #[test]
    fn b1_delete_nonexistent() {
        let pts = uniform_cube::<2>(100, 4);
        let mut t = B1Tree::from_points(&pts, SplitRule::SpatialMedian);
        assert_eq!(t.delete(&[Point::new([-5.0, -5.0])]), 0);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn b2_spatial_median_rule() {
        let pts = uniform_cube::<3>(1_500, 5);
        let mut t = B2Tree::from_points(&pts[..750], SplitRule::SpatialMedian);
        t.insert(&pts[750..]);
        let queries: Vec<_> = pts.iter().copied().step_by(131).collect();
        check_knn_against_brute(|q, k| t.knn(q, k), &pts, &queries, 4);
    }

    #[test]
    fn empty_trees() {
        let t1 = B1Tree::<2>::new(SplitRule::ObjectMedian);
        assert!(t1.is_empty());
        assert!(t1.knn(&Point::new([0.0, 0.0]), 3).is_empty());
        let t2 = B2Tree::<2>::new(SplitRule::ObjectMedian);
        assert!(t2.is_empty());
        assert!(t2.knn(&Point::new([0.0, 0.0]), 3).is_empty());
    }
}
