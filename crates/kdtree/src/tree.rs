//! The static kd-tree with parallel construction.
//!
//! The tree is a flat node arena (children by `u32` index); points live in
//! a columnar [`SoaPoints`] permutation of the input so that every leaf
//! owns a range `start..end` whose axis scans are dense sequential reads.
//! Construction is a per-*level* frontier sweep: each round splits every
//! frontier node in parallel over an AoS work buffer (parallel selection
//! for object-median, parallel partition for spatial-median — the "split
//! in parallel" optimization of §2 of the paper), then bulk-appends the
//! next level's nodes to the arena in one go. Nothing allocates per node:
//! the arena grows by whole levels and the work buffer is scattered into
//! columns once, at the end.

use pargeo_geometry::{Bbox, Point, SoaPoints};
use pargeo_parlay as parlay;
use rayon::prelude::*;

/// How internal nodes choose their splitting hyperplane (paper §5/§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitRule {
    /// Median *point* along the widest dimension (balanced; costlier split).
    ObjectMedian,
    /// Midpoint of the bounding box along the widest dimension (cheap split;
    /// possibly unbalanced).
    SpatialMedian,
}

/// Default number of points per leaf (overridable per build via
/// [`BuildParams`], or process-wide via `PARGEO_LEAF`).
pub const LEAF_SIZE: usize = 16;

/// Default sequential cutoff for construction: below this size a node's
/// bbox/selection/partition run serially.
pub const SEQ_BUILD_CUTOFF: usize = 4096;

/// Tunable construction knobs, so scale sweeps can explore the
/// leaf-size/cutoff space without recompiling.
///
/// `Default` honors the `PARGEO_LEAF` environment variable (read once) for
/// the leaf size, falling back to [`LEAF_SIZE`]. Neither knob affects
/// *answers* — only tree shape and build/query constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildParams {
    /// Maximum points per leaf (≥ 1).
    pub leaf_size: usize,
    /// Size below which per-node build steps run serially (≥ 2).
    pub seq_cutoff: usize,
}

impl Default for BuildParams {
    fn default() -> Self {
        Self {
            leaf_size: env_leaf_size(),
            seq_cutoff: SEQ_BUILD_CUTOFF,
        }
    }
}

impl BuildParams {
    /// Params with an explicit leaf size (ignoring `PARGEO_LEAF`).
    pub fn with_leaf_size(leaf_size: usize) -> Self {
        Self {
            leaf_size,
            seq_cutoff: SEQ_BUILD_CUTOFF,
        }
    }
}

/// `PARGEO_LEAF` if set and valid, else [`LEAF_SIZE`]; read once.
fn env_leaf_size() -> usize {
    static LEAF: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *LEAF.get_or_init(|| {
        std::env::var("PARGEO_LEAF")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&v| v >= 1)
            .unwrap_or(LEAF_SIZE)
    })
}

#[derive(Debug, Clone)]
pub(crate) struct Node<const D: usize> {
    /// Bounding box of all points below this node.
    pub bbox: Bbox<D>,
    /// Splitting dimension (unused for leaves).
    pub dim: u8,
    /// Splitting coordinate (unused for leaves).
    pub val: f64,
    /// Index of the left child, `u32::MAX` for leaves.
    pub left: u32,
    /// Index of the right child, `u32::MAX` for leaves.
    pub right: u32,
    /// Start of this node's range in the reordered point array.
    pub start: u32,
    /// End (exclusive) of this node's range.
    pub end: u32,
}

impl<const D: usize> Node<D> {
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.left == u32::MAX
    }
}

/// A static kd-tree over `D`-dimensional points.
#[derive(Debug, Clone)]
pub struct KdTree<const D: usize> {
    pub(crate) pts: SoaPoints<D>,
    pub(crate) nodes: Vec<Node<D>>,
    leaf_size: usize,
}

/// Raw-pointer window for the per-level parallel phases: frontier nodes
/// own pairwise-disjoint item ranges and distinct arena slots, so handing
/// each task mutable access to its own range/slot is sound.
struct SharedMut<T>(*mut T);
unsafe impl<T: Send> Send for SharedMut<T> {}
unsafe impl<T: Send> Sync for SharedMut<T> {}

impl<T> SharedMut<T> {
    /// Safety: callers must hand out non-overlapping ranges.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice(&self, start: usize, end: usize) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(start), end - start)
    }

    /// Safety: callers must not alias `i` across tasks.
    #[allow(clippy::mut_from_ref)]
    unsafe fn at(&self, i: usize) -> &mut T {
        &mut *self.0.add(i)
    }
}

impl<const D: usize> KdTree<D> {
    /// Builds a kd-tree over `points` with the default (env-overridable)
    /// parameters.
    pub fn build(points: &[Point<D>], rule: SplitRule) -> Self {
        Self::build_with_params(points, rule, BuildParams::default())
    }

    /// Builds a kd-tree with an explicit leaf size.
    pub fn build_with_leaf_size(points: &[Point<D>], rule: SplitRule, leaf_size: usize) -> Self {
        Self::build_with_params(points, rule, BuildParams::with_leaf_size(leaf_size))
    }

    /// Builds a kd-tree with explicit [`BuildParams`].
    ///
    /// The build proceeds level by level: every frontier node computes its
    /// bbox and split over its disjoint slice of the AoS work buffer (in
    /// parallel across nodes, and within a node above `seq_cutoff`), then
    /// the next level's nodes are appended to the arena in bulk. The work
    /// buffer is scattered into the columnar store once at the end.
    pub fn build_with_params(points: &[Point<D>], rule: SplitRule, params: BuildParams) -> Self {
        let leaf_size = params.leaf_size.max(1);
        let cutoff = params.seq_cutoff.max(2);
        let n = points.len();
        let mut items: Vec<(Point<D>, u32)> = if n >= cutoff {
            points
                .par_iter()
                .enumerate()
                .map(|(i, &p)| (p, i as u32))
                .collect()
        } else {
            points
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i as u32))
                .collect()
        };
        let mut tree = KdTree {
            pts: SoaPoints::new(),
            nodes: Vec::new(),
            leaf_size,
        };
        if n == 0 {
            return tree;
        }
        tree.nodes.reserve(4 * n / leaf_size.max(1) + 2);
        tree.nodes.push(Node {
            bbox: Bbox::empty(),
            dim: 0,
            val: 0.0,
            left: u32::MAX,
            right: u32::MAX,
            start: 0,
            end: n as u32,
        });
        let mut frontier: Vec<u32> = vec![0];
        while !frontier.is_empty() {
            // Phase 1 — parallel over the frontier: each node fills its
            // bbox and, if it splits, partitions its item range in place
            // and records the split point. Ranges are disjoint by
            // construction, arena slots distinct.
            let items_ptr = SharedMut(items.as_mut_ptr());
            let nodes_ptr = SharedMut(tree.nodes.as_mut_ptr());
            let split_one = |&ni: &u32| -> Option<u32> {
                let node = unsafe { nodes_ptr.at(ni as usize) };
                let seg = unsafe { items_ptr.slice(node.start as usize, node.end as usize) };
                node.bbox = compute_bbox(seg, cutoff);
                if seg.len() <= leaf_size || node.bbox.diag_sq() == 0.0 {
                    // All-identical point sets cannot be split spatially;
                    // stop.
                    return None;
                }
                let (dim, val, mid) = split_segment(seg, &node.bbox, rule, cutoff);
                node.dim = dim as u8;
                node.val = val;
                Some(mid as u32)
            };
            let mids: Vec<Option<u32>> = if frontier.len() == 1 {
                frontier.iter().map(split_one).collect()
            } else {
                frontier.par_iter().map(split_one).collect()
            };
            // Phase 2 — serial bulk append: two arena slots per split
            // node, wired up and pushed onto the next frontier.
            let mut next = Vec::with_capacity(2 * frontier.len());
            for (&ni, &mid) in frontier.iter().zip(&mids) {
                let Some(mid) = mid else { continue };
                let base = tree.nodes.len() as u32;
                let (start, end) = {
                    let node = &mut tree.nodes[ni as usize];
                    node.left = base;
                    node.right = base + 1;
                    (node.start, node.end)
                };
                for (s, e) in [(start, start + mid), (start + mid, end)] {
                    tree.nodes.push(Node {
                        bbox: Bbox::empty(),
                        dim: 0,
                        val: 0.0,
                        left: u32::MAX,
                        right: u32::MAX,
                        start: s,
                        end: e,
                    });
                }
                next.push(base);
                next.push(base + 1);
            }
            frontier = next;
        }
        tree.pts = scatter_soa(&items, cutoff);
        tree
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// True iff the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Bounding box of the whole point set.
    pub fn bbox(&self) -> Bbox<D> {
        if self.nodes.is_empty() {
            Bbox::empty()
        } else {
            self.nodes[0].bbox
        }
    }

    /// Leaf size this tree was built with.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// The reordered points, in columnar layout (leaf ranges index into
    /// this).
    pub fn points(&self) -> &SoaPoints<D> {
        &self.pts
    }

    /// Reordered point `i`, materialized (the API-boundary conversion).
    pub fn point_at(&self, i: usize) -> Point<D> {
        self.pts.get(i)
    }

    /// Original input index of reordered point `i`.
    pub fn original_id(&self, i: usize) -> u32 {
        self.pts.id(i)
    }

    /// Heap bytes held by the node arena and the point columns.
    pub fn arena_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node<D>>() + self.pts.bytes()
    }

    // --- internal accessors used by the sibling modules and by WSPD ---

    pub(crate) fn root(&self) -> Option<&Node<D>> {
        self.nodes.first()
    }

    pub(crate) fn node(&self, i: u32) -> &Node<D> {
        &self.nodes[i as usize]
    }

    /// Number of tree nodes (for tests and diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (for tests and diagnostics).
    pub fn depth(&self) -> usize {
        fn go<const D: usize>(t: &KdTree<D>, i: u32) -> usize {
            let n = t.node(i);
            if n.is_leaf() {
                1
            } else {
                1 + go(t, n.left).max(go(t, n.right))
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            go(self, 0)
        }
    }
}

/// Opaque node handle for traversals that need direct structural access
/// (WSPD, dual-tree algorithms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(pub(crate) u32);

impl<const D: usize> KdTree<D> {
    /// Root handle, if the tree is non-empty.
    pub fn root_id(&self) -> Option<NodeId> {
        if self.nodes.is_empty() {
            None
        } else {
            Some(NodeId(0))
        }
    }

    /// Bounding box of a node.
    pub fn node_bbox(&self, id: NodeId) -> Bbox<D> {
        self.node(id.0).bbox
    }

    /// Children of an internal node; `None` for leaves.
    pub fn node_children(&self, id: NodeId) -> Option<(NodeId, NodeId)> {
        let n = self.node(id.0);
        if n.is_leaf() {
            None
        } else {
            Some((NodeId(n.left), NodeId(n.right)))
        }
    }

    /// Number of points under a node.
    pub fn node_size(&self, id: NodeId) -> usize {
        let n = self.node(id.0);
        (n.end - n.start) as usize
    }

    /// The reordered point range owned by a node — index it through
    /// [`KdTree::point_at`] / [`KdTree::original_id`] (or the columns of
    /// [`KdTree::points`]).
    pub fn node_range(&self, id: NodeId) -> std::ops::Range<usize> {
        let n = self.node(id.0);
        n.start as usize..n.end as usize
    }

    /// Original ids of the points owned by a node.
    pub fn node_point_ids(&self, id: NodeId) -> &[u32] {
        let n = self.node(id.0);
        &self.pts.ids()[n.start as usize..n.end as usize]
    }
}

/// One node's split decision: `(dim, val, mid)` with the segment
/// partitioned in place around `mid`. Depends only on the segment's
/// multiset and bbox — never on thread count — so tree shape is
/// reproducible.
fn split_segment<const D: usize>(
    seg: &mut [(Point<D>, u32)],
    bbox: &Bbox<D>,
    rule: SplitRule,
    cutoff: usize,
) -> (usize, f64, usize) {
    let n = seg.len();
    let dim = bbox.widest_dim();
    let mid = match rule {
        SplitRule::ObjectMedian => {
            let mid = n / 2;
            if n >= cutoff {
                parlay::select_nth_unstable_by(seg, mid, |a, b| {
                    a.0[dim].partial_cmp(&b.0[dim]).unwrap()
                });
            } else {
                seg.select_nth_unstable_by(mid, |a, b| a.0[dim].partial_cmp(&b.0[dim]).unwrap());
            }
            mid
        }
        SplitRule::SpatialMedian => {
            let splitval = 0.5 * (bbox.min[dim] + bbox.max[dim]);
            let mid = partition_by(seg, cutoff, |p| p[dim] < splitval);
            if mid == 0 || mid == n {
                // Degenerate spatial split (points concentrated at the
                // boundary) — fall back to the object median.
                let mid = n / 2;
                seg.select_nth_unstable_by(mid, |a, b| a.0[dim].partial_cmp(&b.0[dim]).unwrap());
                mid
            } else {
                mid
            }
        }
    };
    let val = match rule {
        SplitRule::ObjectMedian => seg[mid].0[dim],
        SplitRule::SpatialMedian => 0.5 * (bbox.min[dim] + bbox.max[dim]),
    };
    (dim, val, mid)
}

fn compute_bbox<const D: usize>(items: &[(Point<D>, u32)], cutoff: usize) -> Bbox<D> {
    if items.len() >= cutoff {
        items
            .par_chunks(cutoff)
            .map(|chunk| {
                let mut b = Bbox::empty();
                for (p, _) in chunk {
                    b.extend(p);
                }
                b
            })
            .reduce(Bbox::empty, |a, b| a.union(&b))
    } else {
        let mut b = Bbox::empty();
        for (p, _) in items {
            b.extend(p);
        }
        b
    }
}

/// Unstable in-place partition; returns the number of elements satisfying
/// `pred`. Parallel for large slices (out-of-place pack + copy back).
fn partition_by<const D: usize>(
    items: &mut [(Point<D>, u32)],
    cutoff: usize,
    pred: impl Fn(&Point<D>) -> bool + Sync,
) -> usize {
    let n = items.len();
    if n < cutoff {
        let mut i = 0usize;
        let mut j = n;
        while i < j {
            if pred(&items[i].0) {
                i += 1;
            } else {
                j -= 1;
                items.swap(i, j);
            }
        }
        return i;
    }
    let (yes, no) = parlay::split_two(items, |(p, _)| pred(p));
    let mid = yes.len();
    items[..mid].copy_from_slice(&yes);
    items[mid..].copy_from_slice(&no);
    mid
}

/// Scatters the AoS work buffer into columns, in parallel chunks of
/// `cutoff` rows.
pub(crate) fn scatter_soa<const D: usize>(
    items: &[(Point<D>, u32)],
    cutoff: usize,
) -> SoaPoints<D> {
    let n = items.len();
    let mut pts = SoaPoints::with_len(n);
    if n < cutoff.max(2) {
        for (i, &(p, id)) in items.iter().enumerate() {
            pts.set(i, p, id);
        }
        return pts;
    }
    let cols: Vec<SharedMut<f64>> = (0..D)
        .map(|d| SharedMut(pts.axis_mut(d).as_mut_ptr()))
        .collect();
    let ids = SharedMut(pts.ids_mut().as_mut_ptr());
    let chunks = n.div_ceil(cutoff);
    (0..chunks).into_par_iter().for_each(|c| {
        let lo = c * cutoff;
        let hi = ((c + 1) * cutoff).min(n);
        for d in 0..D {
            let col = unsafe { cols[d].slice(lo, hi) };
            for (x, (p, _)) in col.iter_mut().zip(&items[lo..hi]) {
                *x = p.coords[d];
            }
        }
        let out = unsafe { ids.slice(lo, hi) };
        for (slot, (_, id)) in out.iter_mut().zip(&items[lo..hi]) {
            *slot = *id;
        }
    });
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_cube;

    fn check_structure<const D: usize>(t: &KdTree<D>) {
        // Every point is inside its leaf bbox; leaf ranges tile 0..n.
        let mut covered = vec![false; t.len()];
        fn go<const D: usize>(t: &KdTree<D>, i: u32, covered: &mut [bool]) {
            let n = t.node(i);
            for j in n.start..n.end {
                assert!(n.bbox.contains(&t.pts.get(j as usize)));
            }
            if n.is_leaf() {
                for j in n.start..n.end {
                    assert!(!covered[j as usize]);
                    covered[j as usize] = true;
                }
            } else {
                let l = t.node(n.left);
                let r = t.node(n.right);
                assert_eq!(l.start, n.start);
                assert_eq!(r.end, n.end);
                assert_eq!(l.end, r.start);
                go(t, n.left, covered);
                go(t, n.right, covered);
            }
        }
        if let Some(root) = t.root_id() {
            go(t, root.0, &mut covered);
        }
        assert!(covered.iter().all(|&c| c));
        // ids are a permutation.
        let mut ids: Vec<u32> = t.pts.ids().to_vec();
        ids.sort();
        assert_eq!(ids, (0..t.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn build_object_median_structure() {
        let pts = uniform_cube::<3>(5_000, 1);
        let t = KdTree::build(&pts, SplitRule::ObjectMedian);
        assert_eq!(t.len(), 5_000);
        check_structure(&t);
        // Object-median trees over distinct points are balanced.
        assert!(t.depth() <= 2 + (5_000f64 / 16.0).log2().ceil() as usize + 2);
        assert!(t.arena_bytes() >= 5_000 * (3 * 8 + 4));
    }

    #[test]
    fn build_spatial_median_structure() {
        let pts = uniform_cube::<2>(5_000, 2);
        let t = KdTree::build(&pts, SplitRule::SpatialMedian);
        check_structure(&t);
    }

    #[test]
    fn build_handles_duplicates() {
        let mut pts = uniform_cube::<2>(100, 3);
        let dup = pts[0];
        pts.extend(std::iter::repeat_n(dup, 500));
        let t = KdTree::build(&pts, SplitRule::ObjectMedian);
        check_structure(&t);
        let t2 = KdTree::build(&pts, SplitRule::SpatialMedian);
        check_structure(&t2);
    }

    #[test]
    fn build_all_identical_points() {
        let pts = vec![pargeo_geometry::Point2::new([1.0, 1.0]); 1000];
        let t = KdTree::build(&pts, SplitRule::ObjectMedian);
        assert_eq!(t.node_count(), 1); // single leaf, no infinite recursion
        check_structure(&t);
    }

    #[test]
    fn build_empty_and_singleton() {
        let t = KdTree::<2>::build(&[], SplitRule::ObjectMedian);
        assert!(t.is_empty());
        assert!(t.root_id().is_none());
        let t1 = KdTree::build(
            &[pargeo_geometry::Point2::new([3.0, 4.0])],
            SplitRule::ObjectMedian,
        );
        assert_eq!(t1.len(), 1);
        check_structure(&t1);
    }

    #[test]
    fn parallel_build_matches_sequential_build_shape() {
        let pts = uniform_cube::<3>(20_000, 5);
        let a = pargeo_parlay::with_threads(1, || KdTree::build(&pts, SplitRule::ObjectMedian));
        let b = pargeo_parlay::with_threads(4, || KdTree::build(&pts, SplitRule::ObjectMedian));
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.depth(), b.depth());
        check_structure(&a);
        check_structure(&b);
    }

    #[test]
    fn large_leaf_size() {
        let pts = uniform_cube::<2>(1_000, 7);
        let t = KdTree::build_with_leaf_size(&pts, SplitRule::ObjectMedian, 1_000);
        assert_eq!(t.node_count(), 1);
        let t2 = KdTree::build_with_leaf_size(&pts, SplitRule::ObjectMedian, 1);
        check_structure(&t2);
    }

    #[test]
    fn build_params_answers_are_invariant() {
        // Leaf size and sequential cutoff shift the leaf/split frontier
        // but never the answers.
        let pts = uniform_cube::<2>(6_000, 8);
        let base = KdTree::build_with_params(&pts, SplitRule::ObjectMedian, BuildParams::default());
        let queries: Vec<_> = pts.iter().copied().step_by(251).collect();
        for params in [
            BuildParams {
                leaf_size: 1,
                seq_cutoff: 64,
            },
            BuildParams {
                leaf_size: 64,
                seq_cutoff: 100_000,
            },
            BuildParams {
                leaf_size: 7,
                seq_cutoff: 2,
            },
        ] {
            let t = KdTree::build_with_params(&pts, SplitRule::ObjectMedian, params);
            check_structure(&t);
            assert_eq!(t.leaf_size(), params.leaf_size);
            for q in &queries {
                assert_eq!(t.knn(q, 4), base.knn(q, 4));
            }
            let b = Bbox {
                min: pts[0].min(&pts[1]),
                max: pts[0].max(&pts[1]),
            };
            assert_eq!(t.range_box(&b), base.range_box(&b));
        }
    }
}
