//! The static kd-tree with parallel construction.
//!
//! The tree is stored as a flat node array (children by index); points are
//! reordered into a contiguous permutation of the input so that every leaf
//! owns a slice `points[start..end]`. Construction recurses with fork-join
//! parallelism; the split step itself is parallel (parallel selection for
//! object-median, parallel partition for spatial-median), which is the
//! "split in parallel" optimization called out in §2 of the paper.

use pargeo_geometry::{Bbox, Point};
use pargeo_parlay as parlay;
use rayon::prelude::*;

/// How internal nodes choose their splitting hyperplane (paper §5/§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitRule {
    /// Median *point* along the widest dimension (balanced; costlier split).
    ObjectMedian,
    /// Midpoint of the bounding box along the widest dimension (cheap split;
    /// possibly unbalanced).
    SpatialMedian,
}

/// Default number of points per leaf.
pub const LEAF_SIZE: usize = 16;

/// Sequential cutoff for recursive construction.
const SEQ_BUILD_CUTOFF: usize = 4096;

#[derive(Debug, Clone)]
pub(crate) struct Node<const D: usize> {
    /// Bounding box of all points below this node.
    pub bbox: Bbox<D>,
    /// Splitting dimension (unused for leaves).
    pub dim: u8,
    /// Splitting coordinate (unused for leaves).
    pub val: f64,
    /// Index of the left child, `u32::MAX` for leaves.
    pub left: u32,
    /// Index of the right child, `u32::MAX` for leaves.
    pub right: u32,
    /// Start of this node's range in the reordered point array.
    pub start: u32,
    /// End (exclusive) of this node's range.
    pub end: u32,
}

impl<const D: usize> Node<D> {
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.left == u32::MAX
    }
}

/// A static kd-tree over `D`-dimensional points.
#[derive(Debug, Clone)]
pub struct KdTree<const D: usize> {
    pub(crate) points: Vec<Point<D>>,
    pub(crate) ids: Vec<u32>,
    pub(crate) nodes: Vec<Node<D>>,
    leaf_size: usize,
}

/// Intermediate boxed tree produced by the parallel recursion, flattened
/// into arrays afterwards.
enum BuildNode<const D: usize> {
    Leaf {
        bbox: Bbox<D>,
        start: usize,
        end: usize,
    },
    Internal {
        bbox: Bbox<D>,
        dim: u8,
        val: f64,
        start: usize,
        end: usize,
        left: Box<BuildNode<D>>,
        right: Box<BuildNode<D>>,
    },
}

impl<const D: usize> KdTree<D> {
    /// Builds a kd-tree over `points` with the default leaf size.
    pub fn build(points: &[Point<D>], rule: SplitRule) -> Self {
        Self::build_with_leaf_size(points, rule, LEAF_SIZE)
    }

    /// Builds a kd-tree with an explicit leaf size.
    pub fn build_with_leaf_size(points: &[Point<D>], rule: SplitRule, leaf_size: usize) -> Self {
        assert!(leaf_size >= 1);
        let n = points.len();
        let mut items: Vec<(Point<D>, u32)> = if n >= SEQ_BUILD_CUTOFF {
            points
                .par_iter()
                .enumerate()
                .map(|(i, &p)| (p, i as u32))
                .collect()
        } else {
            points
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i as u32))
                .collect()
        };
        let mut tree = KdTree {
            points: Vec::new(),
            ids: Vec::new(),
            nodes: Vec::new(),
            leaf_size,
        };
        if n == 0 {
            return tree;
        }
        let root = build_recursive(&mut items, 0, rule, leaf_size);
        // Flatten into arrays (preorder).
        tree.nodes.reserve(2 * n / leaf_size + 2);
        flatten(&root, &mut tree.nodes);
        tree.points = items.iter().map(|&(p, _)| p).collect();
        tree.ids = items.iter().map(|&(_, id)| id).collect();
        tree
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Bounding box of the whole point set.
    pub fn bbox(&self) -> Bbox<D> {
        if self.nodes.is_empty() {
            Bbox::empty()
        } else {
            self.nodes[0].bbox
        }
    }

    /// Leaf size this tree was built with.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// The reordered points (leaf ranges index into this).
    pub fn points(&self) -> &[Point<D>] {
        &self.points
    }

    /// Original input index of reordered point `i`.
    pub fn original_id(&self, i: usize) -> u32 {
        self.ids[i]
    }

    // --- internal accessors used by the sibling modules and by WSPD ---

    pub(crate) fn root(&self) -> Option<&Node<D>> {
        self.nodes.first()
    }

    pub(crate) fn node(&self, i: u32) -> &Node<D> {
        &self.nodes[i as usize]
    }

    /// Number of tree nodes (for tests and diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (for tests and diagnostics).
    pub fn depth(&self) -> usize {
        fn go<const D: usize>(t: &KdTree<D>, i: u32) -> usize {
            let n = t.node(i);
            if n.is_leaf() {
                1
            } else {
                1 + go(t, n.left).max(go(t, n.right))
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            go(self, 0)
        }
    }
}

/// Opaque node handle for traversals that need direct structural access
/// (WSPD, dual-tree algorithms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(pub(crate) u32);

impl<const D: usize> KdTree<D> {
    /// Root handle, if the tree is non-empty.
    pub fn root_id(&self) -> Option<NodeId> {
        if self.nodes.is_empty() {
            None
        } else {
            Some(NodeId(0))
        }
    }

    /// Bounding box of a node.
    pub fn node_bbox(&self, id: NodeId) -> Bbox<D> {
        self.node(id.0).bbox
    }

    /// Children of an internal node; `None` for leaves.
    pub fn node_children(&self, id: NodeId) -> Option<(NodeId, NodeId)> {
        let n = self.node(id.0);
        if n.is_leaf() {
            None
        } else {
            Some((NodeId(n.left), NodeId(n.right)))
        }
    }

    /// Number of points under a node.
    pub fn node_size(&self, id: NodeId) -> usize {
        let n = self.node(id.0);
        (n.end - n.start) as usize
    }

    /// The reordered point range owned by a node.
    pub fn node_points(&self, id: NodeId) -> &[Point<D>] {
        let n = self.node(id.0);
        &self.points[n.start as usize..n.end as usize]
    }

    /// Original ids of the points owned by a node.
    pub fn node_point_ids(&self, id: NodeId) -> &[u32] {
        let n = self.node(id.0);
        &self.ids[n.start as usize..n.end as usize]
    }
}

fn compute_bbox<const D: usize>(items: &[(Point<D>, u32)]) -> Bbox<D> {
    if items.len() >= SEQ_BUILD_CUTOFF {
        items
            .par_chunks(SEQ_BUILD_CUTOFF)
            .map(|chunk| {
                let mut b = Bbox::empty();
                for (p, _) in chunk {
                    b.extend(p);
                }
                b
            })
            .reduce(Bbox::empty, |a, b| a.union(&b))
    } else {
        let mut b = Bbox::empty();
        for (p, _) in items {
            b.extend(p);
        }
        b
    }
}

fn build_recursive<const D: usize>(
    items: &mut [(Point<D>, u32)],
    offset: usize,
    rule: SplitRule,
    leaf_size: usize,
) -> BuildNode<D> {
    let n = items.len();
    let bbox = compute_bbox(items);
    if n <= leaf_size || bbox.diag_sq() == 0.0 {
        // All-identical point sets cannot be split spatially; stop.
        return BuildNode::Leaf {
            bbox,
            start: offset,
            end: offset + n,
        };
    }
    let dim = bbox.widest_dim();
    let mid = match rule {
        SplitRule::ObjectMedian => {
            let mid = n / 2;
            if n >= SEQ_BUILD_CUTOFF {
                parlay::select_nth_unstable_by(items, mid, |a, b| {
                    a.0[dim].partial_cmp(&b.0[dim]).unwrap()
                });
            } else {
                items.select_nth_unstable_by(mid, |a, b| a.0[dim].partial_cmp(&b.0[dim]).unwrap());
            }
            mid
        }
        SplitRule::SpatialMedian => {
            let splitval = 0.5 * (bbox.min[dim] + bbox.max[dim]);
            let mid = partition_by(items, |p| p[dim] < splitval);
            if mid == 0 || mid == n {
                // Degenerate spatial split (points concentrated at the
                // boundary) — fall back to the object median.
                let mid = n / 2;
                items.select_nth_unstable_by(mid, |a, b| a.0[dim].partial_cmp(&b.0[dim]).unwrap());
                mid
            } else {
                mid
            }
        }
    };
    let val = match rule {
        SplitRule::ObjectMedian => items[mid].0[dim],
        SplitRule::SpatialMedian => 0.5 * (bbox.min[dim] + bbox.max[dim]),
    };
    let (lo, hi) = items.split_at_mut(mid);
    let (left, right) = if n >= SEQ_BUILD_CUTOFF {
        rayon::join(
            || build_recursive(lo, offset, rule, leaf_size),
            || build_recursive(hi, offset + mid, rule, leaf_size),
        )
    } else {
        (
            build_recursive(lo, offset, rule, leaf_size),
            build_recursive(hi, offset + mid, rule, leaf_size),
        )
    };
    BuildNode::Internal {
        bbox,
        dim: dim as u8,
        val,
        start: offset,
        end: offset + n,
        left: Box::new(left),
        right: Box::new(right),
    }
}

/// Unstable in-place partition; returns the number of elements satisfying
/// `pred`. Parallel for large slices (out-of-place pack + copy back).
fn partition_by<const D: usize>(
    items: &mut [(Point<D>, u32)],
    pred: impl Fn(&Point<D>) -> bool + Sync,
) -> usize {
    let n = items.len();
    if n < SEQ_BUILD_CUTOFF {
        let mut i = 0usize;
        let mut j = n;
        while i < j {
            if pred(&items[i].0) {
                i += 1;
            } else {
                j -= 1;
                items.swap(i, j);
            }
        }
        return i;
    }
    let (yes, no) = parlay::split_two(items, |(p, _)| pred(p));
    let mid = yes.len();
    items[..mid].copy_from_slice(&yes);
    items[mid..].copy_from_slice(&no);
    mid
}

fn flatten<const D: usize>(node: &BuildNode<D>, out: &mut Vec<Node<D>>) -> u32 {
    let my = out.len() as u32;
    match node {
        BuildNode::Leaf { bbox, start, end } => {
            out.push(Node {
                bbox: *bbox,
                dim: 0,
                val: 0.0,
                left: u32::MAX,
                right: u32::MAX,
                start: *start as u32,
                end: *end as u32,
            });
        }
        BuildNode::Internal {
            bbox,
            dim,
            val,
            start,
            end,
            left,
            right,
        } => {
            out.push(Node {
                bbox: *bbox,
                dim: *dim,
                val: *val,
                left: 0,
                right: 0,
                start: *start as u32,
                end: *end as u32,
            });
            let l = flatten(left, out);
            let r = flatten(right, out);
            out[my as usize].left = l;
            out[my as usize].right = r;
        }
    }
    my
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::uniform_cube;

    fn check_structure<const D: usize>(t: &KdTree<D>) {
        // Every point is inside its leaf bbox; leaf ranges tile 0..n.
        let mut covered = vec![false; t.len()];
        fn go<const D: usize>(t: &KdTree<D>, i: u32, covered: &mut [bool]) {
            let n = t.node(i);
            for j in n.start..n.end {
                assert!(n.bbox.contains(&t.points[j as usize]));
            }
            if n.is_leaf() {
                for j in n.start..n.end {
                    assert!(!covered[j as usize]);
                    covered[j as usize] = true;
                }
            } else {
                let l = t.node(n.left);
                let r = t.node(n.right);
                assert_eq!(l.start, n.start);
                assert_eq!(r.end, n.end);
                assert_eq!(l.end, r.start);
                go(t, n.left, covered);
                go(t, n.right, covered);
            }
        }
        if let Some(root) = t.root_id() {
            go(t, root.0, &mut covered);
        }
        assert!(covered.iter().all(|&c| c));
        // ids are a permutation.
        let mut ids: Vec<u32> = t.ids.clone();
        ids.sort();
        assert_eq!(ids, (0..t.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn build_object_median_structure() {
        let pts = uniform_cube::<3>(5_000, 1);
        let t = KdTree::build(&pts, SplitRule::ObjectMedian);
        assert_eq!(t.len(), 5_000);
        check_structure(&t);
        // Object-median trees over distinct points are balanced.
        assert!(t.depth() <= 2 + (5_000f64 / 16.0).log2().ceil() as usize + 2);
    }

    #[test]
    fn build_spatial_median_structure() {
        let pts = uniform_cube::<2>(5_000, 2);
        let t = KdTree::build(&pts, SplitRule::SpatialMedian);
        check_structure(&t);
    }

    #[test]
    fn build_handles_duplicates() {
        let mut pts = uniform_cube::<2>(100, 3);
        let dup = pts[0];
        pts.extend(std::iter::repeat_n(dup, 500));
        let t = KdTree::build(&pts, SplitRule::ObjectMedian);
        check_structure(&t);
        let t2 = KdTree::build(&pts, SplitRule::SpatialMedian);
        check_structure(&t2);
    }

    #[test]
    fn build_all_identical_points() {
        let pts = vec![pargeo_geometry::Point2::new([1.0, 1.0]); 1000];
        let t = KdTree::build(&pts, SplitRule::ObjectMedian);
        assert_eq!(t.node_count(), 1); // single leaf, no infinite recursion
        check_structure(&t);
    }

    #[test]
    fn build_empty_and_singleton() {
        let t = KdTree::<2>::build(&[], SplitRule::ObjectMedian);
        assert!(t.is_empty());
        assert!(t.root_id().is_none());
        let t1 = KdTree::build(
            &[pargeo_geometry::Point2::new([3.0, 4.0])],
            SplitRule::ObjectMedian,
        );
        assert_eq!(t1.len(), 1);
        check_structure(&t1);
    }

    #[test]
    fn parallel_build_matches_sequential_build_shape() {
        let pts = uniform_cube::<3>(20_000, 5);
        let a = pargeo_parlay::with_threads(1, || KdTree::build(&pts, SplitRule::ObjectMedian));
        let b = pargeo_parlay::with_threads(4, || KdTree::build(&pts, SplitRule::ObjectMedian));
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.depth(), b.depth());
        check_structure(&a);
        check_structure(&b);
    }

    #[test]
    fn large_leaf_size() {
        let pts = uniform_cube::<2>(1_000, 7);
        let t = KdTree::build_with_leaf_size(&pts, SplitRule::ObjectMedian, 1_000);
        assert_eq!(t.node_count(), 1);
        let t2 = KdTree::build_with_leaf_size(&pts, SplitRule::ObjectMedian, 1);
        check_structure(&t2);
    }
}
