//! Orthogonal (box) and spherical range search.
//!
//! Standard kd-tree range reporting: subtrees entirely inside the query are
//! reported wholesale, disjoint subtrees are pruned, straddling subtrees
//! recurse. Batch variants are data-parallel over queries.
//!
//! Reporting output is **deterministic**: ids come back sorted ascending
//! regardless of tree shape, split rule, or thread count — the contract the
//! `pargeo-rangequery` `BatchQuery` backends rely on so kd-tree and
//! range-tree answers are comparable verbatim.

use crate::tree::{KdTree, Node};
use pargeo_geometry::{Bbox, Point};
use rayon::prelude::*;

impl<const D: usize> KdTree<D> {
    /// Original ids of all points inside `query` (boundary inclusive),
    /// sorted ascending.
    pub fn range_box(&self, query: &Bbox<D>) -> Vec<u32> {
        let mut out = Vec::new();
        if let Some(root) = self.root() {
            self.range_box_rec(root, query, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn range_box_rec(&self, node: &Node<D>, query: &Bbox<D>, out: &mut Vec<u32>) {
        if !node.bbox.intersects(query) {
            return;
        }
        if query.contains_box(&node.bbox) {
            out.extend_from_slice(&self.pts.ids()[node.start as usize..node.end as usize]);
            return;
        }
        if node.is_leaf() {
            for i in node.start as usize..node.end as usize {
                if query.contains_soa(&self.pts, i) {
                    out.push(self.pts.id(i));
                }
            }
            return;
        }
        self.range_box_rec(self.node(node.left), query, out);
        self.range_box_rec(self.node(node.right), query, out);
    }

    /// *Slot* indices (positions in the reordered point store, not
    /// original ids) of all points inside `query`, in traversal order —
    /// the candidate probe the dynamic tree's bitwise delete matching
    /// uses so it never needs its own copy of the point set.
    pub(crate) fn range_box_slots(&self, query: &Bbox<D>) -> Vec<u32> {
        fn go<const D: usize>(t: &KdTree<D>, node: &Node<D>, query: &Bbox<D>, out: &mut Vec<u32>) {
            if !node.bbox.intersects(query) {
                return;
            }
            if node.is_leaf() || query.contains_box(&node.bbox) {
                for i in node.start as usize..node.end as usize {
                    if query.contains_soa(&t.pts, i) {
                        out.push(i as u32);
                    }
                }
                return;
            }
            go(t, t.node(node.left), query, out);
            go(t, t.node(node.right), query, out);
        }
        let mut out = Vec::new();
        if let Some(root) = self.root() {
            go(self, root, query, &mut out);
        }
        out
    }

    /// Original ids of all points within distance `radius` of `center`
    /// (boundary inclusive), sorted ascending.
    pub fn range_ball(&self, center: &Point<D>, radius: f64) -> Vec<u32> {
        let mut out = self.range_ball_unsorted(center, radius);
        out.sort_unstable();
        out
    }

    /// Like [`KdTree::range_ball`] but in traversal order (unspecified):
    /// for membership-style consumers that don't need the sorted-output
    /// contract and sit in hot loops (e.g. β-skeleton lune tests).
    pub fn range_ball_unsorted(&self, center: &Point<D>, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        let r_sq = radius * radius;
        if let Some(root) = self.root() {
            self.range_ball_rec(root, center, r_sq, &mut out);
        }
        out
    }

    fn range_ball_rec(&self, node: &Node<D>, c: &Point<D>, r_sq: f64, out: &mut Vec<u32>) {
        if node.bbox.dist_sq_to_point(c) > r_sq {
            return;
        }
        if node.bbox.max_dist_sq_to_point(c) <= r_sq {
            out.extend_from_slice(&self.pts.ids()[node.start as usize..node.end as usize]);
            return;
        }
        if node.is_leaf() {
            for i in node.start as usize..node.end as usize {
                if self.pts.dist_sq(i, c) <= r_sq {
                    out.push(self.pts.id(i));
                }
            }
            return;
        }
        self.range_ball_rec(self.node(node.left), c, r_sq, out);
        self.range_ball_rec(self.node(node.right), c, r_sq, out);
    }

    /// Number of points within `radius` of `center` without materializing
    /// them (allocation-free: the data-parallel form used by Table 1's
    /// range-search row).
    pub fn count_ball(&self, center: &Point<D>, radius: f64) -> usize {
        fn go<const D: usize>(t: &KdTree<D>, node: &Node<D>, c: &Point<D>, r_sq: f64) -> usize {
            if node.bbox.dist_sq_to_point(c) > r_sq {
                return 0;
            }
            if node.bbox.max_dist_sq_to_point(c) <= r_sq {
                return (node.end - node.start) as usize;
            }
            if node.is_leaf() {
                return (node.start as usize..node.end as usize)
                    .filter(|&i| t.pts.dist_sq(i, c) <= r_sq)
                    .count();
            }
            go(t, t.node(node.left), c, r_sq) + go(t, t.node(node.right), c, r_sq)
        }
        match self.root() {
            Some(root) => go(self, root, center, radius * radius),
            None => 0,
        }
    }

    /// Data-parallel batch ball counting.
    pub fn count_ball_batch(&self, queries: &[(Point<D>, f64)]) -> Vec<usize> {
        if queries.len() < 16 {
            queries
                .iter()
                .map(|(c, r)| self.count_ball(c, *r))
                .collect()
        } else {
            queries
                .par_iter()
                .map(|(c, r)| self.count_ball(c, *r))
                .collect()
        }
    }

    /// Number of points inside `query` without materializing them.
    pub fn count_box(&self, query: &Bbox<D>) -> usize {
        fn go<const D: usize>(t: &KdTree<D>, node: &Node<D>, query: &Bbox<D>) -> usize {
            if !node.bbox.intersects(query) {
                return 0;
            }
            if query.contains_box(&node.bbox) {
                return (node.end - node.start) as usize;
            }
            if node.is_leaf() {
                return (node.start as usize..node.end as usize)
                    .filter(|&i| query.contains_soa(&t.pts, i))
                    .count();
            }
            go(t, t.node(node.left), query) + go(t, t.node(node.right), query)
        }
        match self.root() {
            Some(root) => go(self, root, query),
            None => 0,
        }
    }

    /// Data-parallel batch box search.
    pub fn range_box_batch(&self, queries: &[Bbox<D>]) -> Vec<Vec<u32>> {
        if queries.len() < 16 {
            queries.iter().map(|q| self.range_box(q)).collect()
        } else {
            queries.par_iter().map(|q| self.range_box(q)).collect()
        }
    }

    /// Data-parallel batch ball search.
    pub fn range_ball_batch(&self, queries: &[(Point<D>, f64)]) -> Vec<Vec<u32>> {
        if queries.len() < 16 {
            queries
                .iter()
                .map(|(c, r)| self.range_ball(c, *r))
                .collect()
        } else {
            queries
                .par_iter()
                .map(|(c, r)| self.range_ball(c, *r))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SplitRule;
    use pargeo_datagen::uniform_cube;
    use pargeo_geometry::Point2;

    fn brute_box<const D: usize>(pts: &[Point<D>], q: &Bbox<D>) -> Vec<u32> {
        pts.iter()
            .enumerate()
            .filter(|(_, p)| q.contains(p))
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn brute_ball<const D: usize>(pts: &[Point<D>], c: &Point<D>, r: f64) -> Vec<u32> {
        pts.iter()
            .enumerate()
            .filter(|(_, p)| c.dist_sq(p) <= r * r)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn box_search_matches_brute_force() {
        let pts = uniform_cube::<2>(3_000, 1);
        let side = pargeo_datagen::cube_side(3_000);
        for rule in [SplitRule::ObjectMedian, SplitRule::SpatialMedian] {
            let t = KdTree::build(&pts, rule);
            for i in 0..20 {
                let f = i as f64 / 20.0;
                let q = Bbox {
                    min: Point2::new([side * f * 0.5, side * 0.1]),
                    max: Point2::new([side * (0.3 + f * 0.5), side * (0.2 + f * 0.6)]),
                };
                // No sort on `got`: reporting output is sorted by contract.
                let got = t.range_box(&q);
                assert_eq!(got, brute_box(&pts, &q));
                assert_eq!(t.count_box(&q), got.len());
            }
        }
    }

    #[test]
    fn ball_search_matches_brute_force() {
        let pts = uniform_cube::<3>(2_000, 2);
        let side = pargeo_datagen::cube_side(2_000);
        let t = KdTree::build(&pts, SplitRule::ObjectMedian);
        for (i, c) in pts.iter().step_by(211).enumerate() {
            let r = side * (0.05 + 0.05 * i as f64);
            assert_eq!(t.range_ball(c, r), brute_ball(&pts, c, r));
        }
    }

    #[test]
    fn empty_query_and_full_query() {
        let pts = uniform_cube::<2>(1_000, 3);
        let t = KdTree::build(&pts, SplitRule::ObjectMedian);
        let empty = Bbox {
            min: Point2::new([-10.0, -10.0]),
            max: Point2::new([-5.0, -5.0]),
        };
        assert!(t.range_box(&empty).is_empty());
        let all = t.bbox();
        let got = t.range_box(&all);
        assert_eq!(got.len(), 1_000);
    }

    #[test]
    fn batch_matches_individual() {
        let pts = uniform_cube::<2>(2_000, 4);
        let t = KdTree::build(&pts, SplitRule::SpatialMedian);
        let queries: Vec<(Point2, f64)> = pts.iter().step_by(83).map(|p| (*p, 3.0)).collect();
        let batch = t.range_ball_batch(&queries);
        for ((c, r), row) in queries.iter().zip(&batch) {
            assert_eq!(row, &t.range_ball(c, *r));
        }
    }

    #[test]
    fn reporting_is_sorted_regardless_of_split_rule() {
        let pts = uniform_cube::<2>(3_000, 7);
        let side = pargeo_datagen::cube_side(3_000);
        let q = Bbox {
            min: Point2::new([side * 0.2, side * 0.2]),
            max: Point2::new([side * 0.8, side * 0.8]),
        };
        let want = brute_box(&pts, &q); // ascending by construction
        for rule in [SplitRule::ObjectMedian, SplitRule::SpatialMedian] {
            let t = KdTree::build(&pts, rule);
            assert_eq!(t.range_box(&q), want);
            assert!(t
                .range_ball(&q.center(), side * 0.3)
                .windows(2)
                .all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn count_ball_matches_range_ball() {
        let pts = uniform_cube::<2>(2_000, 6);
        let t = KdTree::build(&pts, SplitRule::ObjectMedian);
        for (i, c) in pts.iter().step_by(173).enumerate() {
            let r = 1.0 + i as f64;
            assert_eq!(t.count_ball(c, r), t.range_ball(c, r).len());
        }
        let queries: Vec<(Point2, f64)> = pts.iter().step_by(97).map(|p| (*p, 5.0)).collect();
        let counts = t.count_ball_batch(&queries);
        for ((c, r), cnt) in queries.iter().zip(counts) {
            assert_eq!(cnt, t.range_ball(c, *r).len());
        }
    }

    #[test]
    fn zero_radius_ball_finds_exact_point() {
        let pts = uniform_cube::<2>(500, 5);
        let t = KdTree::build(&pts, SplitRule::ObjectMedian);
        let got = t.range_ball(&pts[42], 0.0);
        assert!(got.contains(&42));
    }
}
