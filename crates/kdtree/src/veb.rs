//! The van Emde Boas layout static kd-tree (paper Appendix C.1).
//!
//! This is the building block of the BDL-tree: a balanced object-median
//! kd-tree whose nodes are stored in the recursive vEB order of Agarwal et
//! al. \[9\] (top half of the levels first, then the bottom subtrees
//! left-to-right, recursively), making root-to-leaf traversals
//! cache-oblivious. It supports
//!
//! * parallel construction (Algorithm 1),
//! * parallel bulk deletion with subtree collapse (Algorithm 2) — deleted
//!   points are tombstoned in their leaves and fully dead subtrees are
//!   spliced out of the tree by child-pointer rewiring,
//! * k-NN search into a shared [`KnnBuffer`] (the hook the BDL-tree uses to
//!   combine answers across its log-structured set of trees).
//!
//! Construction builds the balanced tree with fork-join parallelism (the
//! `O(n log n)` part), then computes the vEB slot permutation in two linear
//! passes — same layout as the paper's one-pass Algorithm 1, expressed as
//! build-then-permute.
//!
//! Storage is **flat**: the partitioned points land in one tree-level
//! columnar [`SoaPoints`] arena and one liveness slab, and each leaf holds
//! only a `[start, end)` range into them — no per-leaf heap allocations,
//! so a 10M-point tree costs a handful of slabs instead of ~600k vectors.

use crate::knn::KnnBuffer;
use crate::tree::{scatter_soa, SplitRule};
use pargeo_geometry::{Bbox, Point, SoaPoints};
use pargeo_parlay as parlay;
use rayon::prelude::*;

const SEQ_CUTOFF: usize = 4096;

/// Default points per leaf.
pub const VEB_LEAF_SIZE: usize = 16;

/// A leaf's range `[start, end)` into the tree-level point arena plus its
/// live (non-tombstoned) count.
#[derive(Debug, Clone, Copy)]
struct VLeaf {
    start: u32,
    end: u32,
    live: u32,
}

#[derive(Debug, Clone)]
struct VNode<const D: usize> {
    bbox: Bbox<D>,
    dim: u8,
    val: f64,
    /// Child slots; `u32::MAX` marks a leaf node.
    left: u32,
    right: u32,
    /// Leaf payload index (valid when `left == u32::MAX`).
    leaf: u32,
}

impl<const D: usize> VNode<D> {
    #[inline]
    fn is_leaf(&self) -> bool {
        self.left == u32::MAX
    }
}

/// A static kd-tree in van Emde Boas layout with tombstone deletion.
#[derive(Debug, Clone)]
pub struct VebTree<const D: usize> {
    nodes: Vec<VNode<D>>,
    leaves: Vec<VLeaf>,
    /// Columnar point arena in build-partition order; leaves hold ranges.
    pts: SoaPoints<D>,
    /// Liveness of arena slot `i` (false = tombstoned).
    alive: Vec<bool>,
    /// Current root slot (`u32::MAX` when the whole tree died).
    root: u32,
    live: usize,
}

// ---------- construction ----------

/// Arena node used between the parallel build and the vEB permutation.
struct ArenaNode<const D: usize> {
    bbox: Bbox<D>,
    dim: u8,
    val: f64,
    left: usize,  // usize::MAX for leaf
    right: usize, // usize::MAX for leaf
    leaf: usize,
    height: usize,
}

impl<const D: usize> VebTree<D> {
    /// Builds a vEB tree over `(point, original id)` pairs
    /// (object-median splits, leaf size from [`crate::tree::BuildParams`]
    /// — so `PARGEO_LEAF` applies here too).
    pub fn build(items: &[(Point<D>, u32)]) -> Self {
        Self::build_with(
            items,
            crate::tree::BuildParams::default().leaf_size,
            SplitRule::ObjectMedian,
        )
    }

    /// Builds with an explicit leaf size (object-median splits).
    pub fn build_with_leaf_size(items: &[(Point<D>, u32)], leaf_size: usize) -> Self {
        Self::build_with(items, leaf_size, SplitRule::ObjectMedian)
    }

    /// Builds with an explicit leaf size and split rule (the paper's
    /// object-median vs spatial-median comparison, §6.3).
    pub fn build_with(items: &[(Point<D>, u32)], leaf_size: usize, rule: SplitRule) -> Self {
        assert!(leaf_size >= 1);
        if items.is_empty() {
            return VebTree {
                nodes: Vec::new(),
                leaves: Vec::new(),
                pts: SoaPoints::new(),
                alive: Vec::new(),
                root: u32::MAX,
                live: 0,
            };
        }
        let mut work: Vec<(Point<D>, u32)> = items.to_vec();
        // Phase 1: parallel balanced build into a boxed tree. Leaves record
        // ranges into `work`, whose partition order is final once a segment
        // bottoms out.
        let boxed = build_boxed(&mut work, 0, leaf_size, rule);
        // Phase 2: flatten to a preorder arena.
        let mut arena: Vec<ArenaNode<D>> = Vec::new();
        let mut leaves: Vec<VLeaf> = Vec::new();
        let root_arena = flatten(boxed, &mut arena, &mut leaves);
        debug_assert_eq!(root_arena, 0);
        // Phase 3: compute the vEB slot of every arena node.
        let m = arena.len();
        let mut slot = vec![0usize; m];
        let mut assigner = VebAssign {
            arena: &arena,
            slot: &mut slot,
        };
        let h = arena[0].height;
        let assigned = assigner.assign(0, h, 0);
        debug_assert_eq!(assigned, m);
        // Phase 4: scatter into the final node array in slot order.
        let mut nodes: Vec<VNode<D>> = vec![
            VNode {
                bbox: Bbox::empty(),
                dim: 0,
                val: 0.0,
                left: u32::MAX,
                right: u32::MAX,
                leaf: u32::MAX,
            };
            m
        ];
        for (i, a) in arena.iter().enumerate() {
            nodes[slot[i]] = VNode {
                bbox: a.bbox,
                dim: a.dim,
                val: a.val,
                left: if a.left == usize::MAX {
                    u32::MAX
                } else {
                    slot[a.left] as u32
                },
                right: if a.right == usize::MAX {
                    u32::MAX
                } else {
                    slot[a.right] as u32
                },
                leaf: if a.leaf == usize::MAX {
                    u32::MAX
                } else {
                    a.leaf as u32
                },
            };
        }
        // Phase 5: columnar scatter of the partitioned points — one arena
        // for the whole tree, leaves address it by range.
        VebTree {
            nodes,
            leaves,
            pts: scatter_soa(&work, SEQ_CUTOFF),
            alive: vec![true; items.len()],
            root: slot[0] as u32,
            live: items.len(),
        }
    }

    /// Number of live (non-tombstoned) points.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff no live points remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Bounding box of the (original) point set. Conservative after
    /// deletions: a superset of the live points' box.
    pub fn bbox(&self) -> Bbox<D> {
        if self.root == u32::MAX {
            Bbox::empty()
        } else {
            self.nodes[self.root as usize].bbox
        }
    }

    /// All live `(point, id)` pairs.
    pub fn collect_live(&self) -> Vec<(Point<D>, u32)> {
        let mut out = Vec::with_capacity(self.live);
        for i in 0..self.pts.len() {
            if self.alive[i] {
                out.push((self.pts.get(i), self.pts.id(i)));
            }
        }
        out
    }

    /// Heap bytes held by the tree's flat arenas (node array, leaf table,
    /// coordinate columns, liveness slab).
    pub fn arena_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<VNode<D>>()
            + self.leaves.len() * std::mem::size_of::<VLeaf>()
            + self.pts.bytes()
            + self.alive.len() * std::mem::size_of::<bool>()
    }

    // ---------- deletion (Algorithm 2) ----------

    /// Deletes every live point whose coordinates match a query point
    /// (all duplicates of a matched value are removed). Fully-dead subtrees
    /// are spliced out. Returns the number of points deleted.
    pub fn erase(&mut self, queries: &[Point<D>]) -> usize {
        if self.root == u32::MAX || queries.is_empty() {
            return 0;
        }
        let mut q: Vec<Point<D>> = queries.to_vec();
        let ctx = EraseCtx {
            nodes: self.nodes.as_mut_ptr(),
            leaves: self.leaves.as_mut_ptr(),
            alive: self.alive.as_mut_ptr(),
        };
        let (new_root, deleted) = erase_rec(ctx, &self.pts, self.root, &mut q);
        self.root = new_root.unwrap_or(u32::MAX);
        self.live -= deleted;
        deleted
    }

    // ---------- k-NN ----------

    /// Accumulates the k nearest live points to `q` into `buf`.
    pub fn knn_into(&self, q: &Point<D>, buf: &mut KnnBuffer) {
        if self.root != u32::MAX {
            self.knn_rec(self.root, q, buf);
        }
    }

    fn knn_rec(&self, idx: u32, q: &Point<D>, buf: &mut KnnBuffer) {
        let node = &self.nodes[idx as usize];
        if node.is_leaf() {
            let leaf = &self.leaves[node.leaf as usize];
            for i in leaf.start as usize..leaf.end as usize {
                if self.alive[i] {
                    buf.insert(self.pts.dist_sq(i, q), self.pts.id(i));
                }
            }
            return;
        }
        let (near, far) = if q[node.dim as usize] <= node.val {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if self.nodes[near as usize].bbox.dist_sq_to_point(q) <= buf.bound() {
            self.knn_rec(near, q, buf);
        }
        if self.nodes[far as usize].bbox.dist_sq_to_point(q) <= buf.bound() {
            self.knn_rec(far, q, buf);
        }
    }

    /// Standalone k-NN over this tree only.
    pub fn knn(&self, q: &Point<D>, k: usize) -> Vec<crate::knn::Neighbor> {
        let mut buf = KnnBuffer::new(k);
        self.knn_into(q, &mut buf);
        buf.finish()
    }

    // ---------- range search ----------

    /// Appends the ids of all live points inside `query` (boundary
    /// inclusive) to `out`, in unspecified order — the hook the BDL-tree
    /// uses to accumulate one answer across its forest of trees.
    ///
    /// Node bounding boxes are conservative after deletions (supersets of
    /// the live points), so pruning may over-visit but never misses.
    pub fn range_into(&self, query: &Bbox<D>, out: &mut Vec<u32>) {
        if self.root != u32::MAX {
            self.range_rec(self.root, query, out);
        }
    }

    fn range_rec(&self, idx: u32, query: &Bbox<D>, out: &mut Vec<u32>) {
        let node = &self.nodes[idx as usize];
        if !node.bbox.intersects(query) {
            return;
        }
        if node.is_leaf() {
            let leaf = &self.leaves[node.leaf as usize];
            let whole = query.contains_box(&node.bbox);
            for i in leaf.start as usize..leaf.end as usize {
                if self.alive[i] && (whole || query.contains_soa(&self.pts, i)) {
                    out.push(self.pts.id(i));
                }
            }
            return;
        }
        self.range_rec(node.left, query, out);
        self.range_rec(node.right, query, out);
    }

    /// Number of live points inside `query` without materializing them.
    pub fn count_box(&self, query: &Bbox<D>) -> usize {
        fn go<const D: usize>(t: &VebTree<D>, idx: u32, query: &Bbox<D>) -> usize {
            let node = &t.nodes[idx as usize];
            if !node.bbox.intersects(query) {
                return 0;
            }
            if node.is_leaf() {
                let leaf = &t.leaves[node.leaf as usize];
                let whole = query.contains_box(&node.bbox);
                return (leaf.start as usize..leaf.end as usize)
                    .filter(|&i| t.alive[i] && (whole || query.contains_soa(&t.pts, i)))
                    .count();
            }
            go(t, node.left, query) + go(t, node.right, query)
        }
        if self.root == u32::MAX {
            0
        } else {
            go(self, self.root, query)
        }
    }

    /// Number of tree nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

// Boxed intermediate tree. Leaves carry `[start, end)` ranges into the
// build work buffer — the points themselves stay put and scatter into the
// tree-level columnar arena once at the end.
enum Boxed<const D: usize> {
    Leaf(Bbox<D>, usize, usize),
    Internal(Bbox<D>, u8, f64, Box<Boxed<D>>, Box<Boxed<D>>),
}

fn build_boxed<const D: usize>(
    items: &mut [(Point<D>, u32)],
    offset: usize,
    leaf_size: usize,
    rule: SplitRule,
) -> Boxed<D> {
    let n = items.len();
    let bbox = {
        if n >= SEQ_CUTOFF {
            items
                .par_chunks(SEQ_CUTOFF)
                .map(|c| {
                    let mut b = Bbox::empty();
                    for (p, _) in c {
                        b.extend(p);
                    }
                    b
                })
                .reduce(Bbox::empty, |a, b| a.union(&b))
        } else {
            let mut b = Bbox::empty();
            for (p, _) in items.iter() {
                b.extend(p);
            }
            b
        }
    };
    if n <= leaf_size || bbox.diag_sq() == 0.0 {
        return Boxed::Leaf(bbox, offset, offset + n);
    }
    let dim = bbox.widest_dim();
    let (mid, val) = match rule {
        SplitRule::ObjectMedian => {
            let mid = n / 2;
            if n >= SEQ_CUTOFF {
                parlay::select_nth_unstable_by(items, mid, |a, b| {
                    a.0[dim].partial_cmp(&b.0[dim]).unwrap()
                });
            } else {
                items.select_nth_unstable_by(mid, |a, b| a.0[dim].partial_cmp(&b.0[dim]).unwrap());
            }
            (mid, items[mid].0[dim])
        }
        SplitRule::SpatialMedian => {
            let splitval = 0.5 * (bbox.min[dim] + bbox.max[dim]);
            let mut i = 0usize;
            let mut j = n;
            while i < j {
                if items[i].0[dim] < splitval {
                    i += 1;
                } else {
                    j -= 1;
                    items.swap(i, j);
                }
            }
            if i == 0 || i == n {
                // Degenerate spatial split: fall back to the object median.
                let mid = n / 2;
                items.select_nth_unstable_by(mid, |a, b| a.0[dim].partial_cmp(&b.0[dim]).unwrap());
                (mid, items[mid].0[dim])
            } else {
                (i, splitval)
            }
        }
    };
    let (lo, hi) = items.split_at_mut(mid);
    let (l, r) = if n >= SEQ_CUTOFF {
        rayon::join(
            || build_boxed(lo, offset, leaf_size, rule),
            || build_boxed(hi, offset + mid, leaf_size, rule),
        )
    } else {
        (
            build_boxed(lo, offset, leaf_size, rule),
            build_boxed(hi, offset + mid, leaf_size, rule),
        )
    };
    Boxed::Internal(bbox, dim as u8, val, Box::new(l), Box::new(r))
}

fn flatten<const D: usize>(
    b: Boxed<D>,
    arena: &mut Vec<ArenaNode<D>>,
    leaves: &mut Vec<VLeaf>,
) -> usize {
    let my = arena.len();
    match b {
        Boxed::Leaf(bbox, start, end) => {
            leaves.push(VLeaf {
                start: start as u32,
                end: end as u32,
                live: (end - start) as u32,
            });
            arena.push(ArenaNode {
                bbox,
                dim: 0,
                val: 0.0,
                left: usize::MAX,
                right: usize::MAX,
                leaf: leaves.len() - 1,
                height: 1,
            });
        }
        Boxed::Internal(bbox, dim, val, l, r) => {
            arena.push(ArenaNode {
                bbox,
                dim,
                val,
                left: 0,
                right: 0,
                leaf: usize::MAX,
                height: 0,
            });
            let li = flatten(*l, arena, leaves);
            let ri = flatten(*r, arena, leaves);
            let h = arena[li].height.max(arena[ri].height) + 1;
            let a = &mut arena[my];
            a.left = li;
            a.right = ri;
            a.height = h;
        }
    }
    my
}

/// Recursive vEB slot assignment.
///
/// `assign(node, cap, base)` assigns contiguous slots starting at `base` to
/// exactly the nodes of `node`'s subtree at depth `< cap`, in vEB order:
/// split `cap = lt + lb`, lay out the truncated top (`cap = lt`) first, then
/// each depth-`lt` boundary subtree (budget `lb`) left to right. Returns the
/// number of slots consumed.
struct VebAssign<'a, const D: usize> {
    arena: &'a [ArenaNode<D>],
    slot: &'a mut [usize],
}

impl<const D: usize> VebAssign<'_, D> {
    fn assign(&mut self, node: usize, cap: usize, base: usize) -> usize {
        let h = cap.min(self.arena[node].height);
        debug_assert!(h >= 1);
        if h == 1 || self.arena[node].left == usize::MAX {
            self.slot[node] = base;
            return 1;
        }
        if h == 2 {
            // Root, then left subtree-top, then right subtree-top.
            self.slot[node] = base;
            let a = self.assign(self.arena[node].left, 1, base + 1);
            let b = self.assign(self.arena[node].right, 1, base + 1 + a);
            return 1 + a + b;
        }
        // lb = hyperceiling(floor((h+1)/2)), clamped so both halves advance.
        let lb = hyperceiling(h.div_ceil(2)).clamp(1, h - 1);
        let lt = h - lb;
        let mut used = self.assign(node, lt, base);
        let mut roots = Vec::new();
        boundary_roots(self.arena, node, lt, &mut roots);
        for b in roots {
            used += self.assign(b, lb, base + used);
        }
        used
    }
}

/// Collects the depth-`depth` descendants of `node` (left to right), not
/// descending through leaves that end earlier.
fn boundary_roots<const D: usize>(
    arena: &[ArenaNode<D>],
    node: usize,
    depth: usize,
    out: &mut Vec<usize>,
) {
    if depth == 0 {
        out.push(node);
        return;
    }
    let a = &arena[node];
    if a.left == usize::MAX {
        return; // leaf shallower than the boundary: already assigned in top
    }
    boundary_roots(arena, a.left, depth - 1, out);
    boundary_roots(arena, a.right, depth - 1, out);
}

/// Smallest power of two `≥ n` (the paper's ⌈⌈n⌉⌉).
fn hyperceiling(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

// ---------- parallel erase ----------

/// Raw shared pointers into the node array, leaf table, and liveness slab.
/// Sound because concurrent recursive calls operate on disjoint subtrees
/// (the tree is a tree), so they touch disjoint nodes, leaves, and
/// disjoint `[start, end)` slab ranges.
#[derive(Clone, Copy)]
struct EraseCtx<const D: usize> {
    nodes: *mut VNode<D>,
    leaves: *mut VLeaf,
    alive: *mut bool,
}
unsafe impl<const D: usize> Send for EraseCtx<D> {}
unsafe impl<const D: usize> Sync for EraseCtx<D> {}

fn erase_rec<const D: usize>(
    ctx: EraseCtx<D>,
    pts: &SoaPoints<D>,
    idx: u32,
    queries: &mut [Point<D>],
) -> (Option<u32>, usize) {
    // SAFETY: each recursive call touches only node `idx`, its leaf entry,
    // its slab range, and its descendants; sibling calls are disjoint.
    let node = unsafe { &mut *ctx.nodes.add(idx as usize) };
    if node.is_leaf() {
        let leaf = unsafe { &mut *ctx.leaves.add(node.leaf as usize) };
        let mut deleted = 0usize;
        for q in queries.iter() {
            for i in leaf.start as usize..leaf.end as usize {
                // Bitwise identity (`Point::bits_key`) — the library-wide
                // delete-by-value semantic shared by every backend.
                let alive = unsafe { &mut *ctx.alive.add(i) };
                if *alive && pts.get(i).bits_key() == q.bits_key() {
                    *alive = false;
                    leaf.live -= 1;
                    deleted += 1;
                }
            }
        }
        if leaf.live == 0 {
            return (None, deleted);
        }
        return (Some(idx), deleted);
    }
    let dim = node.dim as usize;
    let val = node.val;
    // Queries equal to the split coordinate may live on either side, so they
    // go to both children (superset routing keeps deletion exact).
    let mut ql: Vec<Point<D>> = Vec::new();
    let mut qr: Vec<Point<D>> = Vec::new();
    for q in queries.iter() {
        if q[dim] <= val {
            ql.push(*q);
        }
        if q[dim] >= val {
            qr.push(*q);
        }
    }
    let (left, right) = (node.left, node.right);
    let ((l_new, dl), (r_new, dr)) = if ql.len() + qr.len() >= SEQ_CUTOFF {
        rayon::join(
            move || {
                if ql.is_empty() {
                    (Some(left), 0)
                } else {
                    erase_rec(ctx, pts, left, &mut ql)
                }
            },
            move || {
                if qr.is_empty() {
                    (Some(right), 0)
                } else {
                    erase_rec(ctx, pts, right, &mut qr)
                }
            },
        )
    } else {
        (
            if ql.is_empty() {
                (Some(left), 0)
            } else {
                erase_rec(ctx, pts, left, &mut ql)
            },
            if qr.is_empty() {
                (Some(right), 0)
            } else {
                erase_rec(ctx, pts, right, &mut qr)
            },
        )
    };
    let deleted = dl + dr;
    let result = match (l_new, r_new) {
        (Some(l), Some(r)) => {
            node.left = l;
            node.right = r;
            Some(idx)
        }
        (Some(l), None) => Some(l),
        (None, Some(r)) => Some(r),
        (None, None) => None,
    };
    (result, deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::knn_brute_force;
    use pargeo_datagen::uniform_cube;

    fn items<const D: usize>(pts: &[Point<D>]) -> Vec<(Point<D>, u32)> {
        pts.iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u32))
            .collect()
    }

    #[test]
    fn build_and_collect_roundtrip() {
        let pts = uniform_cube::<3>(5_000, 1);
        let t = VebTree::build(&items(&pts));
        assert_eq!(t.len(), 5_000);
        let mut live = t.collect_live();
        live.sort_by_key(|&(_, id)| id);
        assert_eq!(live.len(), 5_000);
        for (i, (p, id)) in live.iter().enumerate() {
            assert_eq!(*id as usize, i);
            assert_eq!(*p, pts[i]);
        }
    }

    #[test]
    fn veb_slots_are_a_permutation() {
        let pts = uniform_cube::<2>(3_000, 2);
        let t = VebTree::build(&items(&pts));
        // Every node reachable exactly once from the root.
        let mut seen = vec![false; t.node_count()];
        fn go<const D: usize>(t: &VebTree<D>, i: u32, seen: &mut [bool]) -> usize {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
            let n = &t.nodes[i as usize];
            if n.is_leaf() {
                1
            } else {
                1 + go(t, n.left, seen) + go(t, n.right, seen)
            }
        }
        let cnt = go(&t, t.root, &mut seen);
        assert_eq!(cnt, t.node_count());
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn veb_layout_top_precedes_bottom() {
        // For a perfectly balanced tree of 8 leaves with leaf_size 1 the
        // paper's Figure 13 layout applies: root region (3 nodes) first,
        // then four 3-node bottom subtrees. Check the root sits at slot 0
        // and its grandchildren live in slots 1..3 while depth-2 subtree
        // roots land at 3, 6, 9, 12.
        let pts: Vec<Point<1>> = (0..8).map(|i| Point::new([i as f64])).collect();
        let t = VebTree::build_with_leaf_size(&items(&pts), 1);
        assert_eq!(t.node_count(), 15);
        assert_eq!(t.root, 0);
        let root = &t.nodes[0];
        assert!(
            root.left < 3 && root.right < 3,
            "top half must occupy slots 0..3"
        );
        let l = &t.nodes[root.left as usize];
        let r = &t.nodes[root.right as usize];
        let mut bottoms = vec![l.left, l.right, r.left, r.right];
        bottoms.sort();
        assert_eq!(bottoms, vec![3, 6, 9, 12]);
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = uniform_cube::<3>(2_000, 3);
        let t = VebTree::build(&items(&pts));
        for q in pts.iter().step_by(101) {
            let got = t.knn(q, 6);
            let want = knn_brute_force(&pts, q, 6);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist_sq - w.dist_sq).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn erase_removes_batch_and_knn_respects_it() {
        let pts = uniform_cube::<2>(2_000, 4);
        let mut t = VebTree::build(&items(&pts));
        let victims: Vec<_> = pts.iter().copied().take(500).collect();
        let deleted = t.erase(&victims);
        assert_eq!(deleted, 500);
        assert_eq!(t.len(), 1_500);
        let survivors: Vec<_> = pts[500..].to_vec();
        for q in survivors.iter().step_by(53) {
            let got = t.knn(q, 4);
            let want = knn_brute_force(&survivors, q, 4);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist_sq - w.dist_sq).abs() < 1e-9);
            }
        }
        // Deleted points are no longer reported.
        let got = t.knn(&pts[0], 1);
        assert!(got[0].dist_sq > 0.0 || survivors.contains(&pts[0]));
    }

    #[test]
    fn erase_everything_collapses_tree() {
        let pts = uniform_cube::<2>(1_000, 5);
        let mut t = VebTree::build(&items(&pts));
        let deleted = t.erase(&pts);
        assert_eq!(deleted, 1_000);
        assert!(t.is_empty());
        assert_eq!(t.root, u32::MAX);
        assert!(t.collect_live().is_empty());
        // knn on a dead tree returns nothing.
        assert!(t.knn(&pts[0], 3).is_empty());
    }

    #[test]
    fn erase_missing_points_is_noop() {
        let pts = uniform_cube::<2>(500, 6);
        let mut t = VebTree::build(&items(&pts));
        let outside = vec![Point::new([-1000.0, -1000.0]); 10];
        assert_eq!(t.erase(&outside), 0);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn erase_duplicates_removes_all_copies() {
        let p = Point::new([1.0, 2.0]);
        let q = Point::new([3.0, 4.0]);
        let items: Vec<_> = vec![(p, 0), (p, 1), (q, 2)];
        let mut t = VebTree::build(&items);
        assert_eq!(t.erase(&[p]), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_build() {
        let t = VebTree::<2>::build(&[]);
        assert!(t.is_empty());
        assert!(t.collect_live().is_empty());
    }

    #[test]
    fn hyperceiling_values() {
        assert_eq!(hyperceiling(1), 1);
        assert_eq!(hyperceiling(2), 2);
        assert_eq!(hyperceiling(3), 4);
        assert_eq!(hyperceiling(5), 8);
    }
}
