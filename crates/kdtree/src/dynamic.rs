//! A batch-dynamic kd-tree via delete-marking and threshold rebuilds.
//!
//! [`DynKdTree`] is the simplest industrial-strength way to make the static
//! [`KdTree`] dynamic, sitting between the §6.3 baselines: **B1** rebuilds
//! on every update (best queries, slowest updates) and **B2** never rebuilds
//! (fastest updates, queries degrade). Here updates are O(batch) —
//! insertions buffer into a flat side array, deletions tombstone points in
//! place — and the whole structure is rebuilt from its live points only when
//! the *rebuild fraction* is exceeded (buffered or tombstoned points
//! outgrowing a fixed fraction of the indexed set), which keeps queries
//! within a constant factor of a freshly built tree while amortizing
//! rebuild cost over many batches.
//!
//! Points carry insertion-order ids (like [`BdlTree`]'s), all query output
//! follows the library-wide deterministic contract — range reports sorted
//! ascending by id, k-NN ordered by `(distance², id)` — and batch queries
//! are data-parallel over the queries.
//!
//! ## Epoch-pinned snapshots
//!
//! Every queryable field lives behind an [`Arc`] in one shared core, so
//! [`DynKdTree::pin_view`] is O(1): it bumps the reference counts and
//! freezes the current epoch into a [`DynKdView`]. Subsequent writes go
//! through `Arc::make_mut` — they mutate in place while nothing is pinned
//! (the unpinned tree pays only an `Arc` deref) and copy-on-write exactly
//! once per pinned epoch otherwise. A threshold rebuild swaps whole `Arc`s,
//! so a pinned view keeps the *old* root alive untouched while the live
//! side rebuilds — reads never wait on writes and never see them.
//!
//! [`BdlTree`]: https://docs.rs/pargeo-bdltree

use crate::knn::{KnnBuffer, Neighbor};
use crate::tree::{KdTree, Node, SplitRule};
use pargeo_geometry::{Bbox, Point};
use std::sync::Arc;

/// Default rebuild threshold: rebuild when pending inserts or tombstones
/// exceed this fraction of the indexed points.
pub const DEFAULT_REBUILD_FRACTION: f64 = 0.25;

/// Pending-insert floor below which no rebuild is triggered (tiny trees
/// would otherwise rebuild on every batch).
const MIN_PENDING: usize = 256;

/// The copy-on-write queryable state shared between the live tree and its
/// pinned views. Writes use `Arc::make_mut`: in place when unpinned,
/// cloned once per pinned epoch otherwise; rebuilds replace the `Arc`s
/// wholesale (pinned views keep the old allocations alive).
#[derive(Debug, Clone)]
struct DynCore<const D: usize> {
    /// Static tree over the points of the last rebuild. Its columnar
    /// point store is the *only* copy of the indexed coordinates: delete
    /// matching probes it by slot (`range_box_slots`), so no duplicate
    /// input-order point array is kept alive per epoch.
    tree: Arc<KdTree<D>>,
    /// External insertion-order id of build-input position `i`.
    ext: Arc<Vec<u32>>,
    /// Liveness of build-input position `i` (false = tombstoned).
    alive: Arc<Vec<bool>>,
    /// Inserts not yet folded into the static tree.
    buffer: Arc<Vec<(Point<D>, u32)>>,
    /// Number of tombstones in `alive`.
    dead: usize,
    /// Live points (tree survivors + buffer).
    live: usize,
}

impl<const D: usize> DynCore<D> {
    fn empty(rule: SplitRule) -> Self {
        Self {
            tree: Arc::new(KdTree::build(&[], rule)),
            ext: Arc::new(Vec::new()),
            alive: Arc::new(Vec::new()),
            buffer: Arc::new(Vec::new()),
            dead: 0,
            live: 0,
        }
    }

    fn knn(&self, q: &Point<D>, k: usize) -> Vec<Neighbor> {
        let mut buf = KnnBuffer::new(k);
        for (p, id) in self.buffer.iter() {
            buf.insert(q.dist_sq(p), *id);
        }
        if let Some(root) = self.tree.root() {
            self.knn_rec(root, q, &mut buf);
        }
        buf.finish()
    }

    fn knn_rec(&self, node: &Node<D>, q: &Point<D>, buf: &mut KnnBuffer) {
        if node.is_leaf() {
            let pts = self.tree.points();
            for i in node.start as usize..node.end as usize {
                let pos = pts.id(i) as usize;
                if self.alive[pos] {
                    buf.insert(pts.dist_sq(i, q), self.ext[pos]);
                }
            }
            return;
        }
        let (near, far) = if q[node.dim as usize] <= node.val {
            (self.tree.node(node.left), self.tree.node(node.right))
        } else {
            (self.tree.node(node.right), self.tree.node(node.left))
        };
        if near.bbox.dist_sq_to_point(q) <= buf.bound() {
            self.knn_rec(near, q, buf);
        }
        if far.bbox.dist_sq_to_point(q) <= buf.bound() {
            self.knn_rec(far, q, buf);
        }
    }

    fn range_box(&self, query: &Bbox<D>) -> Vec<u32> {
        let mut out = Vec::new();
        for (p, id) in self.buffer.iter() {
            if query.contains(p) {
                out.push(*id);
            }
        }
        if let Some(root) = self.tree.root() {
            self.range_rec(root, query, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn range_rec(&self, node: &Node<D>, query: &Bbox<D>, out: &mut Vec<u32>) {
        if !node.bbox.intersects(query) {
            return;
        }
        let whole = query.contains_box(&node.bbox);
        if node.is_leaf() || (whole && self.dead == 0) {
            let pts = self.tree.points();
            for i in node.start as usize..node.end as usize {
                let pos = pts.id(i) as usize;
                if self.alive[pos] && (whole || query.contains_soa(pts, i)) {
                    out.push(self.ext[pos]);
                }
            }
            return;
        }
        self.range_rec(self.tree.node(node.left), query, out);
        self.range_rec(self.tree.node(node.right), query, out);
    }

    fn count_box(&self, query: &Bbox<D>) -> usize {
        fn go<const D: usize>(t: &DynCore<D>, node: &Node<D>, query: &Bbox<D>) -> usize {
            if !node.bbox.intersects(query) {
                return 0;
            }
            let whole = query.contains_box(&node.bbox);
            if whole && t.dead == 0 {
                return (node.end - node.start) as usize;
            }
            if node.is_leaf() {
                let pts = t.tree.points();
                return (node.start as usize..node.end as usize)
                    .filter(|&i| {
                        let pos = pts.id(i) as usize;
                        t.alive[pos] && (whole || query.contains_soa(pts, i))
                    })
                    .count();
            }
            go(t, t.tree.node(node.left), query) + go(t, t.tree.node(node.right), query)
        }
        let buffered = self
            .buffer
            .iter()
            .filter(|(p, _)| query.contains(p))
            .count();
        match self.tree.root() {
            Some(root) => buffered + go(self, root, query),
            None => buffered,
        }
    }

    fn collect_live(&self) -> Vec<(Point<D>, u32)> {
        let mut out: Vec<(Point<D>, u32)> = self.buffer.as_ref().clone();
        let pts = self.tree.points();
        for slot in 0..pts.len() {
            let pos = pts.id(slot) as usize;
            if self.alive[pos] {
                out.push((pts.get(slot), self.ext[pos]));
            }
        }
        out.sort_unstable_by_key(|&(_, id)| id);
        out
    }

    fn live_bbox(&self) -> Bbox<D> {
        let mut b = Bbox::empty();
        for (p, _) in self.buffer.iter() {
            b.extend(p);
        }
        let pts = self.tree.points();
        for slot in 0..pts.len() {
            if self.alive[pts.id(slot) as usize] {
                b.extend(&pts.get(slot));
            }
        }
        b
    }

    /// Heap bytes held by this epoch's arenas: the tree's node slab and
    /// coordinate columns plus the dynamic side slabs (ids, liveness,
    /// insert buffer).
    fn arena_bytes(&self) -> usize {
        self.tree.arena_bytes()
            + self.ext.len() * std::mem::size_of::<u32>()
            + self.alive.len() * std::mem::size_of::<bool>()
            + self.buffer.len() * std::mem::size_of::<(Point<D>, u32)>()
    }
}

/// A batch-dynamic kd-tree: tombstone deletes, buffered inserts, and a
/// full parallel rebuild once either outgrows a threshold fraction.
#[derive(Debug, Clone)]
pub struct DynKdTree<const D: usize> {
    core: DynCore<D>,
    rule: SplitRule,
    rebuild_fraction: f64,
    next_id: u32,
    epoch: u64,
    rebuilds: u64,
}

impl<const D: usize> DynKdTree<D> {
    /// Creates an empty tree with object-median splits and the default
    /// rebuild fraction.
    pub fn new() -> Self {
        Self::with_config(SplitRule::ObjectMedian, DEFAULT_REBUILD_FRACTION)
    }

    /// Creates an empty tree with an explicit split rule and rebuild
    /// fraction (`0 < rebuild_fraction`; smaller = more eager rebuilds).
    pub fn with_config(rule: SplitRule, rebuild_fraction: f64) -> Self {
        assert!(rebuild_fraction > 0.0);
        Self {
            core: DynCore::empty(rule),
            rule,
            rebuild_fraction,
            next_id: 0,
            epoch: 0,
            rebuilds: 0,
        }
    }

    /// Builds directly over an initial point set (one batch insert).
    pub fn from_points(points: &[Point<D>]) -> Self {
        let mut t = Self::new();
        t.insert(points);
        t
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.core.live
    }

    /// True iff no points are stored.
    pub fn is_empty(&self) -> bool {
        self.core.live == 0
    }

    /// Number of update batches applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of full structure rebuilds performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Total points ever inserted (ids are assigned from this counter).
    pub fn total_inserted(&self) -> u64 {
        self.next_id as u64
    }

    /// Points currently buffered outside the static tree (diagnostics).
    pub fn pending(&self) -> usize {
        self.core.buffer.len()
    }

    /// Tombstoned points still occupying tree slots (diagnostics).
    pub fn tombstones(&self) -> usize {
        self.core.dead
    }

    /// Heap bytes held by the current epoch's flat arenas (node slab,
    /// coordinate columns, id/liveness/insert slabs) — the
    /// `index_arena_bytes` memory gauge.
    pub fn arena_bytes(&self) -> usize {
        self.core.arena_bytes()
    }

    /// Nodes in the static tree's arena — the `index_nodes_total` gauge.
    pub fn node_count(&self) -> usize {
        self.core.tree.node_count()
    }

    /// Pins an immutable O(1) snapshot of the current epoch: the view
    /// shares the tree's copy-on-write core and answers every query
    /// bit-identically to a frozen clone taken now, no matter how many
    /// insert/delete/rebuild epochs the live tree applies afterwards.
    pub fn pin_view(&self) -> DynKdView<D> {
        DynKdView {
            core: self.core.clone(),
            epoch: self.epoch,
            rebuilds: self.rebuilds,
            next_id: self.next_id,
        }
    }

    /// Batch insert: appends to the side buffer, then rebuilds if the
    /// buffer outgrew the threshold.
    pub fn insert(&mut self, batch: &[Point<D>]) {
        self.epoch += 1;
        let next_id = self.next_id;
        Arc::make_mut(&mut self.core.buffer).extend(
            batch
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, next_id + i as u32)),
        );
        self.next_id += batch.len() as u32;
        self.core.live += batch.len();
        self.maybe_rebuild();
    }

    /// Batch delete by point value (all live copies of each query point are
    /// removed). Tombstones tree points in place, filters the buffer, and
    /// rebuilds if tombstones outgrew the threshold. Returns the number of
    /// points deleted.
    pub fn delete(&mut self, batch: &[Point<D>]) -> usize {
        self.epoch += 1;
        if batch.is_empty() || self.core.live == 0 {
            return 0;
        }
        let mut deleted = 0usize;
        // Buffer deletion by coordinate match (copy-on-write only when a
        // match exists and a view pins the buffer).
        if !self.core.buffer.is_empty() {
            let victims: std::collections::HashSet<[u64; D]> =
                batch.iter().map(Point::bits_key).collect();
            if self
                .core
                .buffer
                .iter()
                .any(|(p, _)| victims.contains(&p.bits_key()))
            {
                let buffer = Arc::make_mut(&mut self.core.buffer);
                let before = buffer.len();
                buffer.retain(|(p, _)| !victims.contains(&p.bits_key()));
                deleted += before - buffer.len();
            }
        }
        // Tree deletion: locate each victim's candidate *slots* with a
        // degenerate box query against the tree's own columnar store
        // (data-parallel over the batch), keep only bitwise matches (the
        // box query compares with float `<=`, which would also admit
        // `-0.0` for `+0.0` — the library-wide semantic is bitwise
        // identity), then tombstone their build-input positions serially.
        let tree = &self.core.tree;
        let hits: Vec<Vec<u32>> = pargeo_parlay::map_batch(batch, 64, |q| {
            let hit = Bbox { min: *q, max: *q };
            tree.range_box_slots(&hit)
                .into_iter()
                .filter(|&slot| tree.point_at(slot as usize).bits_key() == q.bits_key())
                .map(|slot| tree.points().id(slot as usize))
                .collect()
        });
        if hits.iter().any(|h| !h.is_empty()) {
            let alive = Arc::make_mut(&mut self.core.alive);
            for positions in &hits {
                for &pos in positions {
                    let pos = pos as usize;
                    if alive[pos] {
                        alive[pos] = false;
                        self.core.dead += 1;
                        deleted += 1;
                    }
                }
            }
        }
        self.core.live -= deleted;
        self.maybe_rebuild();
        deleted
    }

    /// Rebuilds the static tree from live points when pending inserts or
    /// tombstones exceed `rebuild_fraction` of the indexed set. The new
    /// structure lands in fresh `Arc`s — pinned views keep the old one.
    fn maybe_rebuild(&mut self) {
        let indexed = self.core.tree.len();
        let threshold = ((indexed as f64 * self.rebuild_fraction) as usize).max(MIN_PENDING);
        if self.core.buffer.len() <= threshold && self.core.dead <= threshold {
            return;
        }
        // Collect survivors in external-id order: tree points (via the id
        // permutation back to build-input positions), then the buffer.
        let mut survivors: Vec<(Point<D>, u32)> = Vec::with_capacity(self.core.live);
        let old = self.core.tree.points();
        for slot in 0..old.len() {
            let pos = old.id(slot) as usize;
            if self.core.alive[pos] {
                survivors.push((old.get(slot), self.core.ext[pos]));
            }
        }
        survivors.extend(self.core.buffer.iter().copied());
        survivors.sort_unstable_by_key(|&(_, id)| id);
        let pts: Vec<Point<D>> = survivors.iter().map(|&(p, _)| p).collect();
        self.core.tree = Arc::new(KdTree::build(&pts, self.rule));
        self.core.ext = Arc::new(survivors.iter().map(|&(_, id)| id).collect());
        self.core.alive = Arc::new(vec![true; pts.len()]);
        self.core.dead = 0;
        self.core.buffer = Arc::new(Vec::new());
        self.rebuilds += 1;
        debug_assert_eq!(self.core.tree.len(), self.core.live);
    }

    // ---------- queries ----------

    /// k nearest live neighbors of `q`, ascending by `(distance², id)`
    /// (ids are insertion-order ids).
    pub fn knn(&self, q: &Point<D>, k: usize) -> Vec<Neighbor> {
        self.core.knn(q, k)
    }

    /// Data-parallel batch k-NN (parallel over the queries).
    pub fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>> {
        pargeo_parlay::map_batch(queries, 64, |q| self.core.knn(q, k))
    }

    /// Insertion-order ids of all live points inside `query` (boundary
    /// inclusive), sorted ascending.
    pub fn range_box(&self, query: &Bbox<D>) -> Vec<u32> {
        self.core.range_box(query)
    }

    /// Number of live points inside `query` without materializing them.
    pub fn count_box(&self, query: &Bbox<D>) -> usize {
        self.core.count_box(query)
    }

    /// Data-parallel batch box reporting.
    pub fn range_box_batch(&self, queries: &[Bbox<D>]) -> Vec<Vec<u32>> {
        pargeo_parlay::map_batch(queries, 16, |q| self.core.range_box(q))
    }

    /// All live `(point, id)` pairs, id-ascending (diagnostics / tests).
    pub fn collect_live(&self) -> Vec<(Point<D>, u32)> {
        self.core.collect_live()
    }

    /// Bounding box of the live points (tombstones excluded) — the tree's
    /// current effective region.
    pub fn live_bbox(&self) -> Bbox<D> {
        self.core.live_bbox()
    }
}

impl<const D: usize> Default for DynKdTree<D> {
    fn default() -> Self {
        Self::new()
    }
}

/// An immutable snapshot of a [`DynKdTree`] pinned at one epoch.
///
/// Created by [`DynKdTree::pin_view`] in O(1); holds `Arc`s into the
/// tree's copy-on-write core, so it stays valid — and keeps answering
/// bit-identically to a frozen clone taken at pin time — across any
/// number of later insert, delete, and threshold-rebuild epochs on the
/// live tree. Dropping views in any order is safe; each drop releases its
/// reference counts.
#[derive(Debug, Clone)]
pub struct DynKdView<const D: usize> {
    core: DynCore<D>,
    epoch: u64,
    rebuilds: u64,
    next_id: u32,
}

impl<const D: usize> DynKdView<D> {
    /// Number of live points at pin time.
    pub fn len(&self) -> usize {
        self.core.live
    }

    /// True iff the pinned epoch held no live points.
    pub fn is_empty(&self) -> bool {
        self.core.live == 0
    }

    /// The epoch this view was pinned at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Rebuild count at pin time.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Total points ever inserted at pin time.
    pub fn total_inserted(&self) -> u64 {
        self.next_id as u64
    }

    /// Heap bytes held by the pinned epoch's arenas.
    pub fn arena_bytes(&self) -> usize {
        self.core.arena_bytes()
    }

    /// k nearest live neighbors of `q` at the pinned epoch.
    pub fn knn(&self, q: &Point<D>, k: usize) -> Vec<Neighbor> {
        self.core.knn(q, k)
    }

    /// Data-parallel batch k-NN at the pinned epoch.
    pub fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>> {
        pargeo_parlay::map_batch(queries, 64, |q| self.core.knn(q, k))
    }

    /// Sorted ids of the pinned live points inside `query`.
    pub fn range_box(&self, query: &Bbox<D>) -> Vec<u32> {
        self.core.range_box(query)
    }

    /// Data-parallel batch box reporting at the pinned epoch.
    pub fn range_box_batch(&self, queries: &[Bbox<D>]) -> Vec<Vec<u32>> {
        pargeo_parlay::map_batch(queries, 16, |q| self.core.range_box(q))
    }

    /// Pinned live `(point, id)` pairs, id-ascending.
    pub fn collect_live(&self) -> Vec<(Point<D>, u32)> {
        self.core.collect_live()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::knn_brute_force;
    use pargeo_datagen::uniform_cube;

    fn check_knn<const D: usize>(t: &DynKdTree<D>, reference: &[Point<D>], k: usize) {
        for q in reference.iter().step_by(163) {
            let got = t.knn(q, k);
            let want = knn_brute_force(reference, q, k);
            assert_eq!(got.len(), want.len().min(k));
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g.dist_sq - w.dist_sq).abs() <= 1e-9 * (1.0 + g.dist_sq),
                    "{g:?} vs {w:?}"
                );
            }
        }
    }

    #[test]
    fn insert_batches_preserve_all_points() {
        let pts = uniform_cube::<3>(5_000, 1);
        let mut t = DynKdTree::<3>::new();
        for chunk in pts.chunks(500) {
            t.insert(chunk);
        }
        assert_eq!(t.len(), 5_000);
        let live = t.collect_live();
        for (i, (p, id)) in live.iter().enumerate() {
            assert_eq!(*id as usize, i);
            assert_eq!(*p, pts[i]);
        }
        assert!(t.rebuilds() > 0, "threshold rebuilds should have fired");
        check_knn(&t, &pts, 5);
    }

    #[test]
    fn delete_tombstones_then_rebuilds() {
        let pts = uniform_cube::<2>(4_000, 2);
        let mut t = DynKdTree::from_points(&pts);
        assert_eq!(t.delete(&pts[..400]), 400);
        assert!(t.tombstones() > 0 || t.rebuilds() > 1);
        check_knn(&t, &pts[400..], 4);
        // Keep deleting until the threshold forces a rebuild.
        let r0 = t.rebuilds();
        for chunk in pts[400..2_400].chunks(400) {
            t.delete(chunk);
        }
        assert!(t.rebuilds() > r0);
        assert_eq!(t.len(), 1_600);
        check_knn(&t, &pts[2_400..], 5);
    }

    #[test]
    fn interleaved_updates_stay_exact() {
        let pts = uniform_cube::<3>(3_000, 3);
        let mut t = DynKdTree::<3>::new();
        t.insert(&pts[..1_000]);
        t.delete(&pts[..200]);
        t.insert(&pts[1_000..2_000]);
        t.delete(&pts[500..900]);
        t.insert(&pts[2_000..]);
        let expected: Vec<Point<3>> = pts
            .iter()
            .enumerate()
            .filter(|(i, _)| !(*i < 200 || (500..900).contains(i)))
            .map(|(_, p)| *p)
            .collect();
        assert_eq!(t.len(), expected.len());
        assert_eq!(t.epoch(), 5);
        check_knn(&t, &expected, 3);
    }

    #[test]
    fn range_box_matches_brute_force_under_churn() {
        let pts = uniform_cube::<2>(3_000, 4);
        let mut t = DynKdTree::from_points(&pts);
        t.delete(&pts[1_000..1_500]);
        t.insert(&pts[1_000..1_250]); // re-insert some under fresh ids
        let side = pargeo_datagen::cube_side(3_000);
        let live = t.collect_live();
        for f in [0.1, 0.3, 0.7] {
            let q = Bbox {
                min: Point::new([side * 0.1 * f, side * 0.2]),
                max: Point::new([side * (0.2 + 0.6 * f), side * (0.3 + 0.5 * f)]),
            };
            let want: Vec<u32> = live
                .iter()
                .filter(|(p, _)| q.contains(p))
                .map(|&(_, id)| id)
                .collect();
            assert_eq!(t.range_box(&q), want);
            assert_eq!(t.count_box(&q), want.len());
        }
    }

    #[test]
    fn delete_nonexistent_is_noop() {
        let pts = uniform_cube::<2>(500, 5);
        let mut t = DynKdTree::from_points(&pts);
        assert_eq!(t.delete(&[Point::new([-9.0, -9.0])]), 0);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn duplicates_delete_all_copies() {
        let p = Point::new([0.25, 0.75]);
        let mut base = uniform_cube::<2>(300, 6);
        base.push(p);
        base.push(p);
        let mut t = DynKdTree::from_points(&base);
        assert_eq!(t.delete(&[p]), 2);
        assert_eq!(t.len(), 300);
    }

    #[test]
    fn empty_tree_queries() {
        let t = DynKdTree::<2>::default();
        assert!(t.is_empty());
        assert!(t.knn(&Point::new([0.0, 0.0]), 3).is_empty());
        assert!(t
            .range_box(&Bbox {
                min: Point::new([0.0, 0.0]),
                max: Point::new([1.0, 1.0]),
            })
            .is_empty());
    }

    #[test]
    fn pinned_view_survives_rebuild_and_churn() {
        let pts = uniform_cube::<2>(3_000, 7);
        let mut t = DynKdTree::<2>::new();
        t.insert(&pts[..1_000]);
        let frozen = t.clone();
        let view = t.pin_view();
        assert_eq!(view.epoch(), 1);
        assert_eq!(view.len(), 1_000);
        // Churn hard enough to force threshold rebuilds on the live side.
        t.delete(&pts[..600]);
        for chunk in pts[1_000..].chunks(250) {
            t.insert(chunk);
        }
        assert!(t.rebuilds() > frozen.rebuilds(), "rebuilds should fire");
        // The view answers bit-identically to the frozen clone at pin.
        let queries: Vec<Point<2>> = pts.iter().step_by(97).copied().collect();
        assert_eq!(view.knn_batch(&queries, 5), frozen.knn_batch(&queries, 5));
        let boxes = pargeo_datagen::uniform_rects::<2>(20, 9, 0.4);
        assert_eq!(view.range_box_batch(&boxes), frozen.range_box_batch(&boxes));
        assert_eq!(view.collect_live(), frozen.collect_live());
        assert_eq!(view.total_inserted(), 1_000);
    }

    #[test]
    fn views_drop_out_of_order() {
        let pts = uniform_cube::<2>(2_000, 8);
        let mut t = DynKdTree::<2>::new();
        t.insert(&pts[..500]);
        let v1 = t.pin_view();
        t.insert(&pts[500..1_000]);
        let f2 = t.clone();
        let v2 = t.pin_view();
        t.delete(&pts[..250]);
        drop(v1); // older view dies first; v2 must stay exact
        let queries: Vec<Point<2>> = pts.iter().step_by(111).copied().collect();
        assert_eq!(v2.knn_batch(&queries, 4), f2.knn_batch(&queries, 4));
        drop(v2);
        assert_eq!(t.len(), 750);
    }

    #[test]
    fn live_bbox_shrinks_after_deletes() {
        let mut t = DynKdTree::<2>::new();
        let near: Vec<Point<2>> = (0..300)
            .map(|i| Point::new([(i % 17) as f64, (i % 13) as f64]))
            .collect();
        let far = vec![Point::new([1e3, 1e3])];
        t.insert(&near);
        t.insert(&far);
        assert!(t.live_bbox().contains(&far[0]));
        t.delete(&far);
        let b = t.live_bbox();
        assert!(!b.contains(&far[0]));
        assert!(b.max[0] <= 16.0 && b.max[1] <= 12.0);
    }
}
