//! A batch-dynamic kd-tree via delete-marking and threshold rebuilds.
//!
//! [`DynKdTree`] is the simplest industrial-strength way to make the static
//! [`KdTree`] dynamic, sitting between the §6.3 baselines: **B1** rebuilds
//! on every update (best queries, slowest updates) and **B2** never rebuilds
//! (fastest updates, queries degrade). Here updates are O(batch) —
//! insertions buffer into a flat side array, deletions tombstone points in
//! place — and the whole structure is rebuilt from its live points only when
//! the *rebuild fraction* is exceeded (buffered or tombstoned points
//! outgrowing a fixed fraction of the indexed set), which keeps queries
//! within a constant factor of a freshly built tree while amortizing
//! rebuild cost over many batches.
//!
//! Points carry insertion-order ids (like [`BdlTree`]'s), all query output
//! follows the library-wide deterministic contract — range reports sorted
//! ascending by id, k-NN ordered by `(distance², id)` — and batch queries
//! are data-parallel over the queries.
//!
//! [`BdlTree`]: https://docs.rs/pargeo-bdltree

use crate::knn::{KnnBuffer, Neighbor};
use crate::tree::{KdTree, Node, SplitRule};
use pargeo_geometry::{Bbox, Point};

/// Default rebuild threshold: rebuild when pending inserts or tombstones
/// exceed this fraction of the indexed points.
pub const DEFAULT_REBUILD_FRACTION: f64 = 0.25;

/// Pending-insert floor below which no rebuild is triggered (tiny trees
/// would otherwise rebuild on every batch).
const MIN_PENDING: usize = 256;

/// A batch-dynamic kd-tree: tombstone deletes, buffered inserts, and a
/// full parallel rebuild once either outgrows a threshold fraction.
#[derive(Debug, Clone)]
pub struct DynKdTree<const D: usize> {
    /// Static tree over the points of the last rebuild.
    tree: KdTree<D>,
    /// Build-input points in input order (`range_box` candidate positions
    /// index into this for bitwise delete matching).
    pts: Vec<Point<D>>,
    /// External insertion-order id of build-input position `i`.
    ext: Vec<u32>,
    /// Liveness of build-input position `i` (false = tombstoned).
    alive: Vec<bool>,
    /// Number of tombstones in `alive`.
    dead: usize,
    /// Inserts not yet folded into the static tree.
    buffer: Vec<(Point<D>, u32)>,
    rule: SplitRule,
    rebuild_fraction: f64,
    next_id: u32,
    live: usize,
    epoch: u64,
    rebuilds: u64,
}

impl<const D: usize> DynKdTree<D> {
    /// Creates an empty tree with object-median splits and the default
    /// rebuild fraction.
    pub fn new() -> Self {
        Self::with_config(SplitRule::ObjectMedian, DEFAULT_REBUILD_FRACTION)
    }

    /// Creates an empty tree with an explicit split rule and rebuild
    /// fraction (`0 < rebuild_fraction`; smaller = more eager rebuilds).
    pub fn with_config(rule: SplitRule, rebuild_fraction: f64) -> Self {
        assert!(rebuild_fraction > 0.0);
        Self {
            tree: KdTree::build(&[], rule),
            pts: Vec::new(),
            ext: Vec::new(),
            alive: Vec::new(),
            dead: 0,
            buffer: Vec::new(),
            rule,
            rebuild_fraction,
            next_id: 0,
            live: 0,
            epoch: 0,
            rebuilds: 0,
        }
    }

    /// Builds directly over an initial point set (one batch insert).
    pub fn from_points(points: &[Point<D>]) -> Self {
        let mut t = Self::new();
        t.insert(points);
        t
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff no points are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of update batches applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of full structure rebuilds performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Total points ever inserted (ids are assigned from this counter).
    pub fn total_inserted(&self) -> u64 {
        self.next_id as u64
    }

    /// Points currently buffered outside the static tree (diagnostics).
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Tombstoned points still occupying tree slots (diagnostics).
    pub fn tombstones(&self) -> usize {
        self.dead
    }

    /// Batch insert: appends to the side buffer, then rebuilds if the
    /// buffer outgrew the threshold.
    pub fn insert(&mut self, batch: &[Point<D>]) {
        self.epoch += 1;
        self.buffer.extend(
            batch
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, self.next_id + i as u32)),
        );
        self.next_id += batch.len() as u32;
        self.live += batch.len();
        self.maybe_rebuild();
    }

    /// Batch delete by point value (all live copies of each query point are
    /// removed). Tombstones tree points in place, filters the buffer, and
    /// rebuilds if tombstones outgrew the threshold. Returns the number of
    /// points deleted.
    pub fn delete(&mut self, batch: &[Point<D>]) -> usize {
        self.epoch += 1;
        if batch.is_empty() || self.live == 0 {
            return 0;
        }
        let mut deleted = 0usize;
        // Buffer deletion by coordinate match.
        if !self.buffer.is_empty() {
            let victims: std::collections::HashSet<[u64; D]> =
                batch.iter().map(Point::bits_key).collect();
            let before = self.buffer.len();
            self.buffer
                .retain(|(p, _)| !victims.contains(&p.bits_key()));
            deleted += before - self.buffer.len();
        }
        // Tree deletion: locate each victim's candidate positions with a
        // degenerate box query (data-parallel over the batch), keep only
        // bitwise matches (the box query compares with float `<=`, which
        // would also admit `-0.0` for `+0.0` — the library-wide semantic is
        // bitwise identity), then tombstone serially.
        let tree = &self.tree;
        let pts = &self.pts;
        let hits: Vec<Vec<u32>> = pargeo_parlay::map_batch(batch, 64, |q| {
            let hit = Bbox { min: *q, max: *q };
            let mut positions = tree.range_box(&hit);
            positions.retain(|&pos| pts[pos as usize].bits_key() == q.bits_key());
            positions
        });
        for positions in &hits {
            for &pos in positions {
                let pos = pos as usize;
                if self.alive[pos] {
                    self.alive[pos] = false;
                    self.dead += 1;
                    deleted += 1;
                }
            }
        }
        self.live -= deleted;
        self.maybe_rebuild();
        deleted
    }

    /// Rebuilds the static tree from live points when pending inserts or
    /// tombstones exceed `rebuild_fraction` of the indexed set.
    fn maybe_rebuild(&mut self) {
        let indexed = self.tree.len();
        let threshold = ((indexed as f64 * self.rebuild_fraction) as usize).max(MIN_PENDING);
        if self.buffer.len() <= threshold && self.dead <= threshold {
            return;
        }
        // Collect survivors in external-id order: tree points (via the id
        // permutation back to build-input positions), then the buffer.
        let mut survivors: Vec<(Point<D>, u32)> = Vec::with_capacity(self.live);
        for (slot, p) in self.tree.points().iter().enumerate() {
            let pos = self.tree.original_id(slot) as usize;
            if self.alive[pos] {
                survivors.push((*p, self.ext[pos]));
            }
        }
        survivors.extend(self.buffer.iter().copied());
        survivors.sort_unstable_by_key(|&(_, id)| id);
        let pts: Vec<Point<D>> = survivors.iter().map(|&(p, _)| p).collect();
        self.tree = KdTree::build(&pts, self.rule);
        self.ext = survivors.iter().map(|&(_, id)| id).collect();
        self.alive = vec![true; pts.len()];
        self.pts = pts;
        self.dead = 0;
        self.buffer.clear();
        self.rebuilds += 1;
        debug_assert_eq!(self.tree.len(), self.live);
    }

    // ---------- queries ----------

    /// k nearest live neighbors of `q`, ascending by `(distance², id)`
    /// (ids are insertion-order ids).
    pub fn knn(&self, q: &Point<D>, k: usize) -> Vec<Neighbor> {
        let mut buf = KnnBuffer::new(k);
        for (p, id) in &self.buffer {
            buf.insert(q.dist_sq(p), *id);
        }
        if let Some(root) = self.tree.root() {
            self.knn_rec(root, q, &mut buf);
        }
        buf.finish()
    }

    fn knn_rec(&self, node: &Node<D>, q: &Point<D>, buf: &mut KnnBuffer) {
        if node.is_leaf() {
            for i in node.start..node.end {
                let pos = self.tree.original_id(i as usize) as usize;
                if self.alive[pos] {
                    buf.insert(q.dist_sq(&self.tree.points()[i as usize]), self.ext[pos]);
                }
            }
            return;
        }
        let (near, far) = if q[node.dim as usize] <= node.val {
            (self.tree.node(node.left), self.tree.node(node.right))
        } else {
            (self.tree.node(node.right), self.tree.node(node.left))
        };
        if near.bbox.dist_sq_to_point(q) <= buf.bound() {
            self.knn_rec(near, q, buf);
        }
        if far.bbox.dist_sq_to_point(q) <= buf.bound() {
            self.knn_rec(far, q, buf);
        }
    }

    /// Data-parallel batch k-NN (parallel over the queries).
    pub fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>> {
        pargeo_parlay::map_batch(queries, 64, |q| self.knn(q, k))
    }

    /// Insertion-order ids of all live points inside `query` (boundary
    /// inclusive), sorted ascending.
    pub fn range_box(&self, query: &Bbox<D>) -> Vec<u32> {
        let mut out = Vec::new();
        for (p, id) in &self.buffer {
            if query.contains(p) {
                out.push(*id);
            }
        }
        if let Some(root) = self.tree.root() {
            self.range_rec(root, query, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn range_rec(&self, node: &Node<D>, query: &Bbox<D>, out: &mut Vec<u32>) {
        if !node.bbox.intersects(query) {
            return;
        }
        let whole = query.contains_box(&node.bbox);
        if node.is_leaf() || (whole && self.dead == 0) {
            for i in node.start..node.end {
                let pos = self.tree.original_id(i as usize) as usize;
                if self.alive[pos] && (whole || query.contains(&self.tree.points()[i as usize])) {
                    out.push(self.ext[pos]);
                }
            }
            return;
        }
        self.range_rec(self.tree.node(node.left), query, out);
        self.range_rec(self.tree.node(node.right), query, out);
    }

    /// Number of live points inside `query` without materializing them.
    pub fn count_box(&self, query: &Bbox<D>) -> usize {
        fn go<const D: usize>(t: &DynKdTree<D>, node: &Node<D>, query: &Bbox<D>) -> usize {
            if !node.bbox.intersects(query) {
                return 0;
            }
            let whole = query.contains_box(&node.bbox);
            if whole && t.dead == 0 {
                return (node.end - node.start) as usize;
            }
            if node.is_leaf() {
                return (node.start..node.end)
                    .filter(|&i| {
                        let pos = t.tree.original_id(i as usize) as usize;
                        t.alive[pos] && (whole || query.contains(&t.tree.points()[i as usize]))
                    })
                    .count();
            }
            go(t, t.tree.node(node.left), query) + go(t, t.tree.node(node.right), query)
        }
        let buffered = self
            .buffer
            .iter()
            .filter(|(p, _)| query.contains(p))
            .count();
        match self.tree.root() {
            Some(root) => buffered + go(self, root, query),
            None => buffered,
        }
    }

    /// Data-parallel batch box reporting.
    pub fn range_box_batch(&self, queries: &[Bbox<D>]) -> Vec<Vec<u32>> {
        pargeo_parlay::map_batch(queries, 16, |q| self.range_box(q))
    }

    /// All live `(point, id)` pairs, id-ascending (diagnostics / tests).
    pub fn collect_live(&self) -> Vec<(Point<D>, u32)> {
        let mut out: Vec<(Point<D>, u32)> = self.buffer.clone();
        for (slot, p) in self.tree.points().iter().enumerate() {
            let pos = self.tree.original_id(slot) as usize;
            if self.alive[pos] {
                out.push((*p, self.ext[pos]));
            }
        }
        out.sort_unstable_by_key(|&(_, id)| id);
        out
    }
}

impl<const D: usize> Default for DynKdTree<D> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::knn_brute_force;
    use pargeo_datagen::uniform_cube;

    fn check_knn<const D: usize>(t: &DynKdTree<D>, reference: &[Point<D>], k: usize) {
        for q in reference.iter().step_by(163) {
            let got = t.knn(q, k);
            let want = knn_brute_force(reference, q, k);
            assert_eq!(got.len(), want.len().min(k));
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g.dist_sq - w.dist_sq).abs() <= 1e-9 * (1.0 + g.dist_sq),
                    "{g:?} vs {w:?}"
                );
            }
        }
    }

    #[test]
    fn insert_batches_preserve_all_points() {
        let pts = uniform_cube::<3>(5_000, 1);
        let mut t = DynKdTree::<3>::new();
        for chunk in pts.chunks(500) {
            t.insert(chunk);
        }
        assert_eq!(t.len(), 5_000);
        let live = t.collect_live();
        for (i, (p, id)) in live.iter().enumerate() {
            assert_eq!(*id as usize, i);
            assert_eq!(*p, pts[i]);
        }
        assert!(t.rebuilds() > 0, "threshold rebuilds should have fired");
        check_knn(&t, &pts, 5);
    }

    #[test]
    fn delete_tombstones_then_rebuilds() {
        let pts = uniform_cube::<2>(4_000, 2);
        let mut t = DynKdTree::from_points(&pts);
        assert_eq!(t.delete(&pts[..400]), 400);
        assert!(t.tombstones() > 0 || t.rebuilds() > 1);
        check_knn(&t, &pts[400..], 4);
        // Keep deleting until the threshold forces a rebuild.
        let r0 = t.rebuilds();
        for chunk in pts[400..2_400].chunks(400) {
            t.delete(chunk);
        }
        assert!(t.rebuilds() > r0);
        assert_eq!(t.len(), 1_600);
        check_knn(&t, &pts[2_400..], 5);
    }

    #[test]
    fn interleaved_updates_stay_exact() {
        let pts = uniform_cube::<3>(3_000, 3);
        let mut t = DynKdTree::<3>::new();
        t.insert(&pts[..1_000]);
        t.delete(&pts[..200]);
        t.insert(&pts[1_000..2_000]);
        t.delete(&pts[500..900]);
        t.insert(&pts[2_000..]);
        let expected: Vec<Point<3>> = pts
            .iter()
            .enumerate()
            .filter(|(i, _)| !(*i < 200 || (500..900).contains(i)))
            .map(|(_, p)| *p)
            .collect();
        assert_eq!(t.len(), expected.len());
        assert_eq!(t.epoch(), 5);
        check_knn(&t, &expected, 3);
    }

    #[test]
    fn range_box_matches_brute_force_under_churn() {
        let pts = uniform_cube::<2>(3_000, 4);
        let mut t = DynKdTree::from_points(&pts);
        t.delete(&pts[1_000..1_500]);
        t.insert(&pts[1_000..1_250]); // re-insert some under fresh ids
        let side = pargeo_datagen::cube_side(3_000);
        let live = t.collect_live();
        for f in [0.1, 0.3, 0.7] {
            let q = Bbox {
                min: Point::new([side * 0.1 * f, side * 0.2]),
                max: Point::new([side * (0.2 + 0.6 * f), side * (0.3 + 0.5 * f)]),
            };
            let want: Vec<u32> = live
                .iter()
                .filter(|(p, _)| q.contains(p))
                .map(|&(_, id)| id)
                .collect();
            assert_eq!(t.range_box(&q), want);
            assert_eq!(t.count_box(&q), want.len());
        }
    }

    #[test]
    fn delete_nonexistent_is_noop() {
        let pts = uniform_cube::<2>(500, 5);
        let mut t = DynKdTree::from_points(&pts);
        assert_eq!(t.delete(&[Point::new([-9.0, -9.0])]), 0);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn duplicates_delete_all_copies() {
        let p = Point::new([0.25, 0.75]);
        let mut base = uniform_cube::<2>(300, 6);
        base.push(p);
        base.push(p);
        let mut t = DynKdTree::from_points(&base);
        assert_eq!(t.delete(&[p]), 2);
        assert_eq!(t.len(), 300);
    }

    #[test]
    fn empty_tree_queries() {
        let t = DynKdTree::<2>::default();
        assert!(t.is_empty());
        assert!(t.knn(&Point::new([0.0, 0.0]), 3).is_empty());
        assert!(t
            .range_box(&Bbox {
                min: Point::new([0.0, 0.0]),
                max: Point::new([1.0, 1.0]),
            })
            .is_empty());
    }
}
