//! # pargeo-kdtree — static parallel kd-trees (paper Module 1)
//!
//! * [`tree`] — the flat-array static kd-tree with fully parallel
//!   construction. Splits are chosen along the widest dimension of the
//!   node's bounding box, by **object median** (parallel selection) or
//!   **spatial median** (parallel partition), the two heuristics compared
//!   throughout the paper's §6.3.
//! * [`knn`] — exact k-nearest-neighbor search. Each query carries a
//!   *k-NN buffer* (Appendix C.1.3): a `2k`-slot array with amortized O(1)
//!   insertion via periodic selection. Batch queries are data-parallel.
//! * [`range`] — orthogonal (box) and spherical range search.
//! * [`veb`] — the van Emde Boas layout static tree of Appendix C.1
//!   (Algorithm 1: parallel construction; Algorithm 2: parallel bulk
//!   deletion), the building block of the BDL-tree.
//! * [`baselines`] — the §6.3 comparison baselines: **B1** (rebuild on every
//!   batch update) and **B2** (in-place leaf insertion + tombstone deletes,
//!   no rebalancing).
//! * [`dynamic`] — [`DynKdTree`], the delete-marking + threshold-rebuild
//!   dynamic tree that backs the engine's kd-tree `SpatialIndex` backend.

#![warn(missing_docs)]

pub mod baselines;
pub mod dynamic;
pub mod knn;
pub mod range;
pub mod tree;
pub mod veb;

pub use baselines::{B1Tree, B2Tree};
pub use dynamic::{DynKdTree, DynKdView};
pub use knn::{canonical_order, knn_brute_force, KnnBuffer, Neighbor};
pub use tree::{KdTree, SplitRule};
pub use veb::VebTree;
