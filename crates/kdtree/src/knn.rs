//! Exact k-nearest-neighbor search with the paper's k-NN buffer
//! (Appendix C.1.3).
//!
//! The buffer holds up to `2k` candidates; when full it partitions around
//! the k-th smallest distance with a serial selection and discards the far
//! half — amortized O(1) per insertion. Batch queries parallelize over the
//! query points ("data-parallel k-NN"), each query descending the tree
//! serially with near-side-first ordering and bound pruning.
//!
//! Output is **deterministic**: neighbors come back ordered by
//! `(distance², id)`, so equal-distance ties resolve by ascending id — the
//! same canonical contract the range-reporting paths follow. Results are
//! identical across thread counts and repeat runs.

use crate::tree::{KdTree, Node};
use pargeo_geometry::Point;
use rayon::prelude::*;

/// A `(distance², original point id)` result pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Squared Euclidean distance from the query.
    pub dist_sq: f64,
    /// Original input index of the neighbor.
    pub id: u32,
}

/// The canonical `(distance², id)` ordering every k-NN answer follows —
/// equal distances resolve toward the smaller id. The one definition the
/// buffer, the oracle, and the sharded merge all compare with.
pub fn canonical_order(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    a.dist_sq
        .partial_cmp(&b.dist_sq)
        .expect("NaN distance")
        .then(a.id.cmp(&b.id))
}

/// The k-NN buffer: maintains the k nearest candidates seen so far with
/// amortized O(1) inserts using a 2k-slot scratch area.
#[derive(Debug, Clone)]
pub struct KnnBuffer {
    k: usize,
    items: Vec<Neighbor>,
    /// Upper bound on the k-th nearest distance² (∞ until k items seen).
    bound: f64,
}

impl KnnBuffer {
    /// Creates a buffer for `k ≥ 1` neighbors.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        Self {
            k,
            items: Vec::with_capacity(2 * k),
            bound: f64::INFINITY,
        }
    }

    /// Current pruning bound: the k-th nearest distance² if known, else ∞.
    #[inline]
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Offers a candidate. Candidates strictly beyond the bound are
    /// rejected; ones *at* the bound are kept so that equal-distance ties
    /// can still resolve toward the smaller id.
    #[inline]
    pub fn insert(&mut self, dist_sq: f64, id: u32) {
        if dist_sq > self.bound {
            return;
        }
        self.items.push(Neighbor { dist_sq, id });
        if self.items.len() == 2 * self.k {
            self.compact();
        }
    }

    /// Partitions around the k-th smallest `(distance², id)` pair and
    /// discards the rest. The id tie-break makes the retained set — not
    /// just its distances — deterministic.
    fn compact(&mut self) {
        let k = self.k;
        self.items.select_nth_unstable_by(k - 1, canonical_order);
        self.items.truncate(k);
        self.bound = self.items[k - 1].dist_sq;
    }

    /// Consumes the buffer, returning the k nearest ascending by
    /// `(distance², id)` (fewer if the data set had fewer points).
    pub fn finish(mut self) -> Vec<Neighbor> {
        if self.items.len() > self.k {
            self.compact();
        }
        self.items.sort_unstable_by(canonical_order);
        self.items.truncate(self.k);
        self.items
    }

    /// Number of candidates currently held (before truncation).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no candidate has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<const D: usize> KdTree<D> {
    /// The k nearest neighbors of `q`, ascending by distance. A point at
    /// distance zero (e.g. `q` itself if it is in the set) is included.
    pub fn knn(&self, q: &Point<D>, k: usize) -> Vec<Neighbor> {
        let mut buf = KnnBuffer::new(k);
        self.knn_into(q, &mut buf);
        buf.finish()
    }

    /// Runs a k-NN search accumulating into an existing buffer — the hook
    /// the BDL-tree uses to share one buffer across its log-structured set
    /// of trees (§5 "Data-Parallel k-NN").
    pub fn knn_into(&self, q: &Point<D>, buf: &mut KnnBuffer) {
        if let Some(root) = self.root() {
            self.knn_rec(root, q, buf);
        }
    }

    fn knn_rec(&self, node: &Node<D>, q: &Point<D>, buf: &mut KnnBuffer) {
        if node.is_leaf() {
            // Columnar scan: distances accumulate axis-by-axis over dense
            // coordinate columns; ids join in only at insert time.
            for i in node.start as usize..node.end as usize {
                let d = self.pts.dist_sq(i, q);
                buf.insert(d, self.pts.id(i));
            }
            return;
        }
        let (near, far) = if q[node.dim as usize] <= node.val {
            (self.node(node.left), self.node(node.right))
        } else {
            (self.node(node.right), self.node(node.left))
        };
        if near.bbox.dist_sq_to_point(q) <= buf.bound() {
            self.knn_rec(near, q, buf);
        }
        if far.bbox.dist_sq_to_point(q) <= buf.bound() {
            self.knn_rec(far, q, buf);
        }
    }

    /// Nearest neighbor of `q` (`None` for an empty tree).
    pub fn nearest(&self, q: &Point<D>) -> Option<Neighbor> {
        if self.is_empty() {
            return None;
        }
        self.knn(q, 1).into_iter().next()
    }

    /// Data-parallel batch k-NN: the k nearest neighbors of every query, as
    /// a flat row-major matrix (`queries.len() × k`, padded rows only if the
    /// tree holds fewer than k points).
    pub fn knn_batch(&self, queries: &[Point<D>], k: usize) -> Vec<Vec<Neighbor>> {
        if queries.len() < 64 {
            queries.iter().map(|q| self.knn(q, k)).collect()
        } else {
            queries.par_iter().map(|q| self.knn(q, k)).collect()
        }
    }
}

/// Brute-force k-NN over a raw point set (testing / tiny inputs).
pub fn knn_brute_force<const D: usize>(
    points: &[Point<D>],
    q: &Point<D>,
    k: usize,
) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = points
        .iter()
        .enumerate()
        .map(|(i, p)| Neighbor {
            dist_sq: q.dist_sq(p),
            id: i as u32,
        })
        .collect();
    all.sort_by(|a, b| {
        a.dist_sq
            .partial_cmp(&b.dist_sq)
            .unwrap()
            .then(a.id.cmp(&b.id))
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SplitRule;
    use pargeo_datagen::{on_sphere, uniform_cube};

    fn same_distances(a: &[Neighbor], b: &[Neighbor]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.dist_sq - y.dist_sq).abs() <= 1e-9 * (1.0 + x.dist_sq),
                "{x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn knn_matches_brute_force_uniform() {
        let pts = uniform_cube::<3>(2_000, 1);
        let t = KdTree::build(&pts, SplitRule::ObjectMedian);
        let queries = uniform_cube::<3>(50, 99);
        for q in &queries {
            let got = t.knn(q, 5);
            let want = knn_brute_force(&pts, q, 5);
            same_distances(&got, &want);
        }
    }

    #[test]
    fn knn_matches_brute_force_surface_and_spatial_median() {
        let pts = on_sphere::<3>(2_000, 2);
        let t = KdTree::build(&pts, SplitRule::SpatialMedian);
        for q in pts.iter().step_by(97) {
            let got = t.knn(q, 8);
            let want = knn_brute_force(&pts, q, 8);
            same_distances(&got, &want);
        }
    }

    #[test]
    fn knn_k_larger_than_n() {
        let pts = uniform_cube::<2>(7, 3);
        let t = KdTree::build(&pts, SplitRule::ObjectMedian);
        let got = t.knn(&pts[0], 20);
        assert_eq!(got.len(), 7);
    }

    #[test]
    fn knn_includes_self_at_distance_zero() {
        let pts = uniform_cube::<2>(500, 4);
        let t = KdTree::build(&pts, SplitRule::ObjectMedian);
        let got = t.knn(&pts[123], 1);
        assert_eq!(got[0].dist_sq, 0.0);
        assert_eq!(got[0].id, 123);
    }

    #[test]
    fn nearest_on_empty_tree() {
        let t = KdTree::<2>::build(&[], SplitRule::ObjectMedian);
        assert!(t
            .nearest(&pargeo_geometry::Point2::new([0.0, 0.0]))
            .is_none());
    }

    #[test]
    fn batch_knn_matches_individual() {
        let pts = uniform_cube::<2>(3_000, 5);
        let t = KdTree::build(&pts, SplitRule::ObjectMedian);
        let queries: Vec<_> = pts.iter().copied().step_by(13).collect();
        let batch = t.knn_batch(&queries, 3);
        for (q, row) in queries.iter().zip(&batch) {
            let want = t.knn(q, 3);
            same_distances(row, &want);
        }
    }

    #[test]
    fn buffer_amortized_compaction() {
        let mut buf = KnnBuffer::new(2);
        for i in (0..100u32).rev() {
            buf.insert(i as f64, i);
        }
        let out = buf.finish();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].id, 0);
        assert_eq!(out[1].id, 1);
    }

    #[test]
    fn buffer_bound_tightens() {
        let mut buf = KnnBuffer::new(1);
        assert_eq!(buf.bound(), f64::INFINITY);
        buf.insert(5.0, 0);
        buf.insert(1.0, 1); // triggers compaction at 2k = 2
        assert!(buf.bound() <= 1.0);
        // Candidates at/beyond the bound are rejected without growth.
        buf.insert(3.0, 2);
        assert_eq!(buf.finish()[0].id, 1);
    }
}
