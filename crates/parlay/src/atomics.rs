//! Priority writes ("reducing contention through priority updates",
//! Shun et al. \[49\]).
//!
//! `WriteMin` is the primitive at the heart of the paper's reservation
//! technique (Figure 5, lines 6–8): every visible point writes its ID into
//! each of its visible facets, and the smallest ID wins. `fetch_min` on a
//! relaxed atomic is exactly this operation; the test-first fast path avoids
//! the RMW when the stored value is already smaller, which is where the
//! contention reduction of \[49\] comes from.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Atomically sets `*a = min(*a, v)`. Returns `true` if `v` became (or tied)
/// the minimum, i.e. the caller's write "won".
#[inline]
pub fn write_min_usize(a: &AtomicUsize, v: usize) -> bool {
    // Fast path: read first — most writers lose and can skip the RMW.
    let cur = a.load(Ordering::Relaxed);
    if cur < v {
        return false;
    }
    a.fetch_min(v, Ordering::Relaxed) >= v || a.load(Ordering::Relaxed) == v
}

/// Atomically sets `*a = max(*a, v)`. Returns `true` if `v` won.
#[inline]
pub fn write_max_usize(a: &AtomicUsize, v: usize) -> bool {
    let cur = a.load(Ordering::Relaxed);
    if cur > v {
        return false;
    }
    a.fetch_max(v, Ordering::Relaxed) <= v || a.load(Ordering::Relaxed) == v
}

/// A reusable reservation slot: an atomic priority register that holds the
/// smallest ID written this round (the facet "reservation field" of the
/// paper). `EMPTY` means unreserved.
#[derive(Debug)]
pub struct AtomicMinIndex {
    slot: AtomicUsize,
}

impl AtomicMinIndex {
    /// Sentinel for "no reservation".
    pub const EMPTY: usize = usize::MAX;

    /// Creates an unreserved slot.
    pub fn new() -> Self {
        Self {
            slot: AtomicUsize::new(Self::EMPTY),
        }
    }

    /// Priority-writes `id`; the smallest id across the round wins.
    #[inline]
    pub fn reserve(&self, id: usize) {
        let cur = self.slot.load(Ordering::Relaxed);
        if cur > id {
            self.slot.fetch_min(id, Ordering::Relaxed);
        }
    }

    /// True iff `id` holds the reservation after all `reserve` calls.
    #[inline]
    pub fn check(&self, id: usize) -> bool {
        self.slot.load(Ordering::Relaxed) == id
    }

    /// Current holder (or [`Self::EMPTY`]).
    #[inline]
    pub fn holder(&self) -> usize {
        self.slot.load(Ordering::Relaxed)
    }

    /// Clears the reservation for the next round.
    #[inline]
    pub fn reset(&self) {
        self.slot.store(Self::EMPTY, Ordering::Relaxed);
    }
}

impl Default for AtomicMinIndex {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn write_min_sequential() {
        let a = AtomicUsize::new(100);
        assert!(write_min_usize(&a, 50));
        assert!(!write_min_usize(&a, 70));
        assert!(write_min_usize(&a, 50)); // ties count as a win
        assert_eq!(a.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn write_max_sequential() {
        let a = AtomicUsize::new(10);
        assert!(write_max_usize(&a, 20));
        assert!(!write_max_usize(&a, 5));
        assert_eq!(a.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn concurrent_write_min_takes_global_min() {
        let a = AtomicUsize::new(usize::MAX);
        (0..100_000usize).into_par_iter().for_each(|i| {
            write_min_usize(&a, (i * 2_654_435_761) % 1_000_003);
        });
        let want = (0..100_000usize)
            .map(|i| (i * 2_654_435_761) % 1_000_003)
            .min()
            .unwrap();
        assert_eq!(a.load(Ordering::Relaxed), want);
    }

    #[test]
    fn reservation_exactly_one_winner() {
        let slot = AtomicMinIndex::new();
        let ids: Vec<usize> = (0..10_000).map(|i| (i * 97) % 10_000).collect();
        ids.par_iter().for_each(|&id| slot.reserve(id));
        let winners: usize = ids.iter().filter(|&&id| slot.check(id)).count();
        assert_eq!(winners, 1);
        assert_eq!(slot.holder(), 0);
        slot.reset();
        assert_eq!(slot.holder(), AtomicMinIndex::EMPTY);
    }
}
