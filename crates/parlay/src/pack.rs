//! Parallel packing and filtering.
//!
//! `ParallelPack` (paper Figure 5, line 17) keeps the elements whose flag is
//! set, preserving relative order, in `O(n)` work. The implementation counts
//! survivors per block, scans the counts for destination offsets, and
//! scatters each block independently.

use crate::scan::scan_inplace_exclusive;
use crate::GRANULARITY;
use rayon::prelude::*;

/// Packs `items[i]` for every `i` with `flags[i] == true`, preserving order.
///
/// ```
/// let kept = pargeo_parlay::pack(&[10, 20, 30, 40], &[true, false, true, false]);
/// assert_eq!(kept, vec![10, 30]);
/// ```
pub fn pack<T: Copy + Send + Sync>(items: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(items.len(), flags.len(), "pack: length mismatch");
    let n = items.len();
    if n <= GRANULARITY {
        return items
            .iter()
            .zip(flags)
            .filter(|(_, &f)| f)
            .map(|(&x, _)| x)
            .collect();
    }
    let mut counts: Vec<usize> = flags
        .par_chunks(GRANULARITY)
        .map(|c| c.iter().filter(|&&f| f).count())
        .collect();
    let total = scan_inplace_exclusive(&mut counts);
    let mut out: Vec<T> = Vec::with_capacity(total);
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(total);
    }
    let out_ptr = SendPtr(out.as_mut_ptr());
    items
        .par_chunks(GRANULARITY)
        .zip(flags.par_chunks(GRANULARITY))
        .zip(counts.par_iter())
        .for_each(|((ichunk, fchunk), &offset)| {
            let p = out_ptr;
            let mut k = offset;
            for (&x, &f) in ichunk.iter().zip(fchunk.iter()) {
                if f {
                    // SAFETY: each block writes the disjoint range
                    // [offset, offset + count_of_block), established by the
                    // exclusive scan over per-block survivor counts.
                    unsafe { p.0.add(k).write(x) };
                    k += 1;
                }
            }
        });
    out
}

/// Returns the indices `i` with `flags[i] == true`, in increasing order.
pub fn pack_index(flags: &[bool]) -> Vec<usize> {
    let n = flags.len();
    if n <= GRANULARITY {
        return flags
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| i)
            .collect();
    }
    let mut counts: Vec<usize> = flags
        .par_chunks(GRANULARITY)
        .map(|c| c.iter().filter(|&&f| f).count())
        .collect();
    let total = scan_inplace_exclusive(&mut counts);
    let mut out: Vec<usize> = Vec::with_capacity(total);
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(total);
    }
    let out_ptr = SendPtr(out.as_mut_ptr());
    flags
        .par_chunks(GRANULARITY)
        .enumerate()
        .zip(counts.par_iter())
        .for_each(|((b, fchunk), &offset)| {
            let p = out_ptr;
            let mut k = offset;
            for (j, &f) in fchunk.iter().enumerate() {
                if f {
                    // SAFETY: disjoint destination ranges per block (see pack).
                    unsafe { p.0.add(k).write(b * GRANULARITY + j) };
                    k += 1;
                }
            }
        });
    out
}

/// Keeps the elements satisfying `pred`, preserving order, in parallel.
pub fn filter<T, F>(items: &[T], pred: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    let n = items.len();
    if n <= GRANULARITY {
        return items.iter().copied().filter(|x| pred(x)).collect();
    }
    let mut counts: Vec<usize> = items
        .par_chunks(GRANULARITY)
        .map(|c| c.iter().filter(|x| pred(x)).count())
        .collect();
    let total = scan_inplace_exclusive(&mut counts);
    let mut out: Vec<T> = Vec::with_capacity(total);
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(total);
    }
    let out_ptr = SendPtr(out.as_mut_ptr());
    items
        .par_chunks(GRANULARITY)
        .zip(counts.par_iter())
        .for_each(|(chunk, &offset)| {
            let p = out_ptr;
            let mut k = offset;
            for &x in chunk {
                if pred(&x) {
                    // SAFETY: disjoint destination ranges per block (see pack).
                    unsafe { p.0.add(k).write(x) };
                    k += 1;
                }
            }
        });
    out
}

/// Stable two-way split: `(matching, non_matching)` in one parallel pass each.
pub fn split_two<T, F>(items: &[T], pred: F) -> (Vec<T>, Vec<T>)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    let flags: Vec<bool> = if items.len() <= GRANULARITY {
        items.iter().map(&pred).collect()
    } else {
        items.par_iter().map(&pred).collect()
    };
    let yes = pack(items, &flags);
    let inv: Vec<bool> = if flags.len() <= GRANULARITY {
        flags.iter().map(|&f| !f).collect()
    } else {
        flags.par_iter().map(|&f| !f).collect()
    };
    let no = pack(items, &inv);
    (yes, no)
}

/// A raw pointer wrapper asserting cross-thread transfer is safe because all
/// writers target disjoint index ranges.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_matches_reference() {
        for n in [0usize, 1, 5, GRANULARITY, GRANULARITY * 3 + 17, 100_000] {
            let items: Vec<u32> = (0..n as u32).collect();
            let flags: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let got = pack(&items, &flags);
            let want: Vec<u32> = items
                .iter()
                .zip(&flags)
                .filter(|(_, &f)| f)
                .map(|(&x, _)| x)
                .collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn pack_index_matches_reference() {
        let n = 70_000;
        let flags: Vec<bool> = (0..n).map(|i| (i * i) % 7 == 1).collect();
        let got = pack_index(&flags);
        let want: Vec<usize> = (0..n).filter(|&i| flags[i]).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn filter_matches_reference() {
        let items: Vec<i64> = (0..60_000).map(|i| (i * 31) % 997 - 500).collect();
        let got = filter(&items, |&x| x > 0);
        let want: Vec<i64> = items.iter().copied().filter(|&x| x > 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn split_two_partitions_everything() {
        let items: Vec<u32> = (0..30_000).collect();
        let (yes, no) = split_two(&items, |&x| x % 2 == 0);
        assert_eq!(yes.len() + no.len(), items.len());
        assert!(yes.iter().all(|&x| x % 2 == 0));
        assert!(no.iter().all(|&x| x % 2 == 1));
        // Stability.
        assert!(yes.windows(2).all(|w| w[0] < w[1]));
        assert!(no.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn all_false_and_all_true() {
        let items: Vec<u8> = vec![7; 10_000];
        assert!(pack(&items, &vec![false; 10_000]).is_empty());
        assert_eq!(pack(&items, &vec![true; 10_000]).len(), 10_000);
    }
}
