//! Parallel prefix sums (scans) over arbitrary associative operators.
//!
//! The implementation is the classic two-pass blocked scan: the input is cut
//! into blocks, each block is reduced in parallel, the block sums are scanned
//! sequentially (there are only `O(n / GRANULARITY)` of them), and finally
//! every block computes its local prefix in parallel seeded with its block
//! offset. Work is `O(n)` and depth is `O(GRANULARITY + n / GRANULARITY)`.

use crate::GRANULARITY;
use rayon::prelude::*;

/// Exclusive scan: `out[i] = id ⊕ a[0] ⊕ … ⊕ a[i-1]`.
///
/// Returns `(out, total)` where `total` is the reduction of the whole input.
/// `op` must be associative; `id` must be its identity.
///
/// ```
/// let a = [1u64, 2, 3, 4];
/// let (pre, tot) = pargeo_parlay::scan_exclusive(&a, 0u64, |x, y| x + y);
/// assert_eq!(pre, vec![0, 1, 3, 6]);
/// assert_eq!(tot, 10);
/// ```
pub fn scan_exclusive<T, F>(a: &[T], id: T, op: F) -> (Vec<T>, T)
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let n = a.len();
    if n == 0 {
        return (Vec::new(), id);
    }
    if n <= GRANULARITY {
        let mut out = Vec::with_capacity(n);
        let mut acc = id;
        for &x in a {
            out.push(acc);
            acc = op(acc, x);
        }
        return (out, acc);
    }
    let nblocks = n.div_ceil(GRANULARITY);
    // Pass 1: per-block reductions.
    let mut block_sums: Vec<T> = a
        .par_chunks(GRANULARITY)
        .map(|chunk| {
            let mut acc = id;
            for &x in chunk {
                acc = op(acc, x);
            }
            acc
        })
        .collect();
    // Sequential scan over the (few) block sums.
    let mut acc = id;
    for b in block_sums.iter_mut().take(nblocks) {
        let s = *b;
        *b = acc;
        acc = op(acc, s);
    }
    let total = acc;
    // Pass 2: per-block local scans seeded with block offsets.
    let mut out: Vec<T> = Vec::with_capacity(n);
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n);
    }
    out.par_chunks_mut(GRANULARITY)
        .zip(a.par_chunks(GRANULARITY))
        .zip(block_sums.par_iter())
        .for_each(|((ochunk, ichunk), &offset)| {
            let mut acc = offset;
            for (o, &x) in ochunk.iter_mut().zip(ichunk.iter()) {
                *o = acc;
                acc = op(acc, x);
            }
        });
    (out, total)
}

/// Inclusive scan: `out[i] = a[0] ⊕ … ⊕ a[i]`.
pub fn scan_inclusive<T, F>(a: &[T], id: T, op: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let (mut out, _) = scan_exclusive(a, id, &op);
    crate::parallel_for(a.len(), |_| {});
    out.par_iter_mut()
        .zip(a.par_iter())
        .for_each(|(o, &x)| *o = op(*o, x));
    out
}

/// In-place exclusive scan over `usize` values; returns the total.
///
/// This is the workhorse used by [`crate::pack()`] where allocating a second
/// vector for the prefix array would double memory traffic.
pub fn scan_inplace_exclusive(a: &mut [usize]) -> usize {
    let n = a.len();
    if n == 0 {
        return 0;
    }
    if n <= GRANULARITY {
        let mut acc = 0usize;
        for x in a.iter_mut() {
            let s = *x;
            *x = acc;
            acc += s;
        }
        return acc;
    }
    let mut block_sums: Vec<usize> = a
        .par_chunks(GRANULARITY)
        .map(|c| c.iter().sum::<usize>())
        .collect();
    let mut acc = 0usize;
    for b in block_sums.iter_mut() {
        let s = *b;
        *b = acc;
        acc += s;
    }
    let total = acc;
    a.par_chunks_mut(GRANULARITY)
        .zip(block_sums.par_iter())
        .for_each(|(chunk, &offset)| {
            let mut acc = offset;
            for x in chunk.iter_mut() {
                let s = *x;
                *x = acc;
                acc += s;
            }
        });
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_exclusive(a: &[u64]) -> (Vec<u64>, u64) {
        let mut out = Vec::with_capacity(a.len());
        let mut acc = 0u64;
        for &x in a {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn empty_input() {
        let (out, tot) = scan_exclusive::<u64, _>(&[], 0, |x, y| x + y);
        assert!(out.is_empty());
        assert_eq!(tot, 0);
    }

    #[test]
    fn matches_reference_small_and_large() {
        for n in [1usize, 2, 100, GRANULARITY, GRANULARITY + 1, 100_000] {
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % 101).collect();
            let (got, tot) = scan_exclusive(&a, 0, |x, y| x + y);
            let (want, wtot) = reference_exclusive(&a);
            assert_eq!(got, want, "n={n}");
            assert_eq!(tot, wtot, "n={n}");
        }
    }

    #[test]
    fn inclusive_scan_matches() {
        let a: Vec<u64> = (0..50_000).map(|i| i % 13).collect();
        let got = scan_inclusive(&a, 0, |x, y| x + y);
        let mut acc = 0;
        let want: Vec<u64> = a
            .iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn inplace_matches_out_of_place() {
        let a: Vec<usize> = (0..30_000).map(|i| i % 5).collect();
        let mut b = a.clone();
        let total = scan_inplace_exclusive(&mut b);
        let (want, wtot) = scan_exclusive(&a, 0usize, |x, y| x + y);
        assert_eq!(b, want);
        assert_eq!(total, wtot);
    }

    #[test]
    fn max_scan_non_commutative_safety() {
        // scan must only rely on associativity; max is associative and
        // idempotent, a good smoke test for block boundary handling.
        let a: Vec<u64> = (0..20_000).map(|i| (i * 2_654_435_761) % 1_000).collect();
        let (got, tot) = scan_exclusive(&a, 0, |x, y| x.max(y));
        let mut acc = 0;
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(got[i], acc);
            acc = acc.max(x);
        }
        assert_eq!(tot, acc);
    }
}
