//! Parallel selection (`nth_element`) — the object-median kd-tree split.
//!
//! Parallel quickselect: sample a pivot, three-way split the slice in
//! parallel (less / equal / greater), write the groups back contiguously, and
//! recurse into the single group containing the target rank. Expected work
//! `O(n)`, depth `O(log^2 n)`.

use crate::pack::pack;
use crate::GRANULARITY;
use rayon::prelude::*;
use std::cmp::Ordering;

/// Reorders `a` so that `a[nth]` holds the element of rank `nth` and every
/// element before it compares `<=` (under `cmp`) and every element after
/// compares `>=`. Same contract as `slice::select_nth_unstable_by`.
pub fn select_nth_unstable_by<T, F>(a: &mut [T], nth: usize, cmp: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    assert!(nth < a.len(), "select: nth out of bounds");
    select_rec(a, nth, &cmp);
}

fn select_rec<T, F>(a: &mut [T], nth: usize, cmp: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = a.len();
    if n <= GRANULARITY.max(32) {
        a.select_nth_unstable_by(nth, |x, y| cmp(x, y));
        return;
    }
    let pivot = sample_pivot(a, cmp);
    let flags_lt: Vec<bool> = a
        .par_iter()
        .map(|x| cmp(x, &pivot) == Ordering::Less)
        .collect();
    let flags_eq: Vec<bool> = a
        .par_iter()
        .map(|x| cmp(x, &pivot) == Ordering::Equal)
        .collect();
    let less = pack(a, &flags_lt);
    let equal = pack(a, &flags_eq);
    let flags_gt: Vec<bool> = flags_lt
        .par_iter()
        .zip(flags_eq.par_iter())
        .map(|(&l, &e)| !l && !e)
        .collect();
    let greater = pack(a, &flags_gt);
    let (nl, ne) = (less.len(), equal.len());
    // Write the three groups back contiguously.
    a[..nl].copy_from_slice(&less);
    a[nl..nl + ne].copy_from_slice(&equal);
    a[nl + ne..].copy_from_slice(&greater);
    if nth < nl {
        select_rec(&mut a[..nl], nth, cmp);
    } else if nth >= nl + ne {
        let off = nl + ne;
        select_rec(&mut a[off..], nth - off, cmp);
    }
    // Otherwise the pivot block covers the target rank.
}

/// Median of 25 evenly spaced samples — good enough to keep the expected
/// recursion geometric on adversarial-ish inputs without a full BFPRT.
fn sample_pivot<T, F>(a: &[T], cmp: &F) -> T
where
    T: Copy,
    F: Fn(&T, &T) -> Ordering,
{
    const S: usize = 25;
    let n = a.len();
    let mut samples: Vec<T> = (0..S).map(|i| a[i * (n - 1) / (S - 1)]).collect();
    samples.sort_by(|x, y| cmp(x, y));
    samples[S / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: &[u64], nth: usize) {
        let mut b = a.to_vec();
        select_nth_unstable_by(&mut b, nth, |x, y| x.cmp(y));
        let mut sorted = a.to_vec();
        sorted.sort();
        assert_eq!(b[nth], sorted[nth]);
        assert!(b[..nth].iter().all(|x| x <= &b[nth]));
        assert!(b[nth + 1..].iter().all(|x| x >= &b[nth]));
        let mut b2 = b.clone();
        b2.sort();
        assert_eq!(b2, sorted, "selection must preserve the multiset");
    }

    #[test]
    fn select_small() {
        let a: Vec<u64> = vec![5, 3, 9, 1, 7];
        for nth in 0..a.len() {
            check(&a, nth);
        }
    }

    #[test]
    fn select_large_median() {
        let a: Vec<u64> = (0..100_000)
            .map(|i: u64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1_000)
            .collect();
        check(&a, a.len() / 2);
        check(&a, 0);
        check(&a, a.len() - 1);
        check(&a, a.len() / 4);
    }

    #[test]
    fn select_with_many_duplicates() {
        let a: Vec<u64> = (0..50_000).map(|i| i % 3).collect();
        check(&a, 25_000);
    }

    #[test]
    fn select_all_equal() {
        let a: Vec<u64> = vec![42; 30_000];
        check(&a, 15_000);
    }
}
