//! Parallel reductions, including argmax/argmin ("parallel maximum-finding
//! routine" used by quickhull's furthest-point step and Welzl's pivot
//! heuristic).

use crate::GRANULARITY;
use rayon::prelude::*;

/// Parallel reduction of `a` under the associative operator `op` with
/// identity `id`.
pub fn reduce<T, F>(a: &[T], id: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    if a.len() <= GRANULARITY {
        return a.iter().fold(id, |acc, &x| op(acc, x));
    }
    a.par_chunks(GRANULARITY)
        .map(|c| c.iter().fold(id, |acc, &x| op(acc, x)))
        .reduce(|| id, &op)
}

/// Maps every element through `f` and reduces the results.
pub fn reduce_map<T, U, M, F>(a: &[T], id: U, map: M, op: F) -> U
where
    T: Sync,
    U: Copy + Send + Sync,
    M: Fn(&T) -> U + Sync,
    F: Fn(U, U) -> U + Sync,
{
    if a.len() <= GRANULARITY {
        return a.iter().fold(id, |acc, x| op(acc, map(x)));
    }
    a.par_chunks(GRANULARITY)
        .map(|c| c.iter().fold(id, |acc, x| op(acc, map(x))))
        .reduce(|| id, &op)
}

/// Index of the element maximizing `key`, breaking ties toward the smaller
/// index (deterministic regardless of thread schedule). Returns `None` on an
/// empty slice.
pub fn max_index_by<T, K, F>(a: &[T], key: F) -> Option<usize>
where
    T: Sync,
    K: PartialOrd + Copy + Send + Sync,
    F: Fn(&T) -> K + Sync,
{
    if a.is_empty() {
        return None;
    }
    let seq = |lo: usize, chunk: &[T]| -> (usize, K) {
        let mut best = (lo, key(&chunk[0]));
        for (j, x) in chunk.iter().enumerate().skip(1) {
            let k = key(x);
            if k > best.1 {
                best = (lo + j, k);
            }
        }
        best
    };
    let combine = |x: (usize, K), y: (usize, K)| -> (usize, K) {
        // Ties break to the smaller index for determinism.
        if y.1 > x.1 || (y.1 == x.1 && y.0 < x.0) {
            y
        } else {
            x
        }
    };
    if a.len() <= GRANULARITY {
        return Some(seq(0, a).0);
    }
    let best = a
        .par_chunks(GRANULARITY)
        .enumerate()
        .map(|(b, c)| seq(b * GRANULARITY, c))
        .reduce_with(combine)
        .expect("non-empty");
    Some(best.0)
}

/// Index of the element minimizing `key`; ties toward the smaller index.
pub fn min_index_by<T, K, F>(a: &[T], key: F) -> Option<usize>
where
    T: Sync,
    K: PartialOrd + std::ops::Neg<Output = K> + Copy + Send + Sync,
    F: Fn(&T) -> K + Sync,
{
    max_index_by(a, |x| -key(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_sum_matches() {
        let a: Vec<u64> = (0..100_000).collect();
        assert_eq!(reduce(&a, 0, |x, y| x + y), a.iter().sum::<u64>());
    }

    #[test]
    fn reduce_map_counts() {
        let a: Vec<u32> = (0..50_000).collect();
        let evens = reduce_map(&a, 0usize, |&x| (x % 2 == 0) as usize, |x, y| x + y);
        assert_eq!(evens, 25_000);
    }

    #[test]
    fn max_index_matches_reference() {
        let a: Vec<f64> = (0..80_000)
            .map(|i| ((i as f64) * 1.618).sin() * 1000.0)
            .collect();
        let got = max_index_by(&a, |&x| x).unwrap();
        let want = a
            .iter()
            .enumerate()
            .max_by(|(i, x), (j, y)| x.partial_cmp(y).unwrap().then(j.cmp(i)))
            .unwrap()
            .0;
        assert_eq!(got, want);
    }

    #[test]
    fn max_index_ties_break_low() {
        let a = vec![1.0f64; 10_000];
        assert_eq!(max_index_by(&a, |&x| x), Some(0));
    }

    #[test]
    fn min_index_basic() {
        let a: Vec<f64> = vec![3.0, 1.0, 2.0, 1.0];
        assert_eq!(min_index_by(&a, |&x| x), Some(1));
    }

    #[test]
    fn empty_returns_none() {
        let a: Vec<f64> = vec![];
        assert_eq!(max_index_by(&a, |&x| x), None);
    }
}
