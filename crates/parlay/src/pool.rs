//! Thread-pool helpers for the paper's thread-count sweeps (Figure 11's
//! `1, 2, 4, …, 36h` x-axes).

/// Runs `f` on a dedicated rayon pool with exactly `n` worker threads and
/// returns its result. All `pargeo` parallel primitives invoked inside `f`
/// inherit the pool, so `with_threads(1, …)` measures `T1` and
/// `with_threads(p, …)` measures `Tp`.
pub fn with_threads<R: Send>(n: usize, f: impl FnOnce() -> R + Send) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

/// Number of worker threads in the current pool (the machine default if no
/// explicit pool is installed).
pub fn num_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_controls_pool_size() {
        let inside = with_threads(3, num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn with_threads_single() {
        let inside = with_threads(1, num_threads);
        assert_eq!(inside, 1);
    }

    #[test]
    fn returns_closure_result() {
        let v = with_threads(2, || {
            let a: Vec<u64> = (0..10_000).collect();
            crate::reduce(&a, 0, |x, y| x + y)
        });
        assert_eq!(v, (0..10_000u64).sum());
    }
}
